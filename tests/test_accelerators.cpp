/**
 * @file
 * Tests for the accelerator cycle models: closed-form checks against the
 * dense baseline, the paper's qualitative orderings (BitVert fastest,
 * balanced BBS => near-zero inter-PE stall), and memory-footprint
 * relations.
 */
#include <gtest/gtest.h>

#include "accel/ant_accel.hpp"
#include "accel/bitlet.hpp"
#include "accel/bitvert.hpp"
#include "accel/bitwave.hpp"
#include "accel/factory.hpp"
#include "accel/pragmatic.hpp"
#include "accel/sparten.hpp"
#include "accel/stripes.hpp"
#include "models/workload.hpp"
#include "sim/prepared_model.hpp"

namespace bbs {
namespace {

/** Small synthetic 2-layer model for fast accelerator tests. */
PreparedModel
smallModel(const GlobalPruneConfig *bbs = nullptr, std::uint64_t seed = 5)
{
    ModelDesc desc;
    desc.name = "tiny";
    desc.dataset = "synthetic";
    LayerDesc l1;
    l1.name = "conv";
    l1.kind = LayerKind::Conv;
    l1.weightShape = Shape{64, 32, 3, 3};
    l1.outputPositions = 16 * 16;
    l1.reluActivations = true;
    LayerDesc l2;
    l2.name = "linear";
    l2.kind = LayerKind::Linear;
    l2.weightShape = Shape{64, 576};
    l2.outputPositions = 64;
    desc.layers = {l1, l2};

    MaterializeOptions opts;
    opts.seed = seed;
    MaterializedModel mm = materializeModel(desc, opts);
    return prepareModel(mm, bbs);
}

TEST(Stripes, DenseCyclesMatchClosedForm)
{
    PreparedModel pm = smallModel();
    SimConfig cfg;
    StripesAccelerator stripes;
    LayerSim sim = stripes.simulateLayer(pm.layers[0], cfg);

    // Closed form: channels=64 -> 4 tiles of 16 columns; groups/channel =
    // ceil(288/16) = 18; 8 cycles each; position tiles = ceil(256/16)=16.
    double expected = 4.0 * 18.0 * 8.0 * 16.0;
    EXPECT_DOUBLE_EQ(sim.computeCycles, expected);
    EXPECT_DOUBLE_EQ(sim.interPeStallLaneCycles, 0.0);
}

TEST(Accelerators, EqualMultiplierBudgetScalesColumns)
{
    SimConfig cfg;
    // 4096 multipliers, 16 rows: 16-lane PEs get 16 columns, 8-lane get 32.
    EXPECT_EQ(StripesAccelerator().peColumns(cfg), 16);
    EXPECT_EQ(PragmaticAccelerator().peColumns(cfg), 16);
    EXPECT_EQ(BitletAccelerator().peColumns(cfg), 32);
    EXPECT_EQ(BitVertAccelerator(moderateConfig()).peColumns(cfg), 32);
    cfg.peColumnsOverride = 4;
    EXPECT_EQ(StripesAccelerator().peColumns(cfg), 4);
    EXPECT_EQ(BitletAccelerator().peColumns(cfg), 4);
}

TEST(Accelerators, EverySparsityAwareModelBeatsStripes)
{
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel pm = smallModel(&mod);
    SimConfig cfg;

    double stripes =
        StripesAccelerator().simulateModel(pm, cfg).totalCycles();
    EXPECT_GT(stripes, 0.0);

    for (const char *name :
         {"Pragmatic", "Bitlet", "BitWave", "BitVert (mod)"}) {
        double cycles =
            makeAccelerator(name)->simulateModel(pm, cfg).totalCycles();
        EXPECT_LT(cycles, stripes) << name;
    }
}

TEST(BitVert, ModeratePruningIsFasterThanConservative)
{
    GlobalPruneConfig cons = conservativeConfig();
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel pmCons = smallModel(&cons);
    PreparedModel pmMod = smallModel(&mod);
    SimConfig cfg;
    double cCons = BitVertAccelerator(cons, "cons")
                       .simulateModel(pmCons, cfg)
                       .totalCycles();
    double cMod = BitVertAccelerator(mod, "mod")
                      .simulateModel(pmMod, cfg)
                      .totalCycles();
    EXPECT_LT(cMod, cCons);
}

TEST(BitVert, DeterministicLatencyMeansMinimalInterPeStall)
{
    // The paper's Fig 15 claim: structured BBS balances PE columns.
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel pm = smallModel(&mod);
    SimConfig cfg;

    ModelSim bv =
        BitVertAccelerator(mod, "BitVert").simulateModel(pm, cfg);
    ModelSim prag = PragmaticAccelerator().simulateModel(pm, cfg);

    double bvTotal = bv.usefulLaneCycles() +
                     bv.intraPeStallLaneCycles() +
                     bv.interPeStallLaneCycles();
    double pragTotal = prag.usefulLaneCycles() +
                       prag.intraPeStallLaneCycles() +
                       prag.interPeStallLaneCycles();
    double bvInterFrac = bv.interPeStallLaneCycles() / bvTotal;
    double pragInterFrac = prag.interPeStallLaneCycles() / pragTotal;
    EXPECT_LT(bvInterFrac, 0.05);
    EXPECT_LT(bvInterFrac, pragInterFrac);
}

TEST(BitVert, CompressedWeightsShrinkDramTraffic)
{
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel pm = smallModel(&mod);
    SimConfig cfg;
    LayerSim bv = BitVertAccelerator(mod, "BitVert")
                      .simulateLayer(pm.layers[0], cfg);
    LayerSim st = StripesAccelerator().simulateLayer(pm.layers[0], cfg);
    EXPECT_LT(bv.dramBits, st.dramBits);
}

TEST(Pragmatic, LoadImbalanceGrowsWithColumns)
{
    PreparedModel pm = smallModel();
    PragmaticAccelerator prag;
    StripesAccelerator stripes;

    auto speedupAt = [&](int cols) {
        SimConfig cfg;
        cfg.peColumnsOverride = cols;
        double s = stripes.simulateModel(pm, cfg).totalCycles();
        double p = prag.simulateModel(pm, cfg).totalCycles();
        return s / p;
    };
    // The paper's Fig 14: speedup over Stripes decays as more weight
    // groups run in lock-step.
    EXPECT_GT(speedupAt(2), speedupAt(32));
}

TEST(BitVert, SpeedupStableAcrossColumns)
{
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel pm = smallModel(&mod);
    BitVertAccelerator bv(mod, "BitVert");
    StripesAccelerator stripes;

    auto speedupAt = [&](int cols) {
        SimConfig cfg;
        cfg.peColumnsOverride = cols;
        double s = stripes.simulateModel(pm, cfg).totalCycles();
        double b = bv.simulateModel(pm, cfg).totalCycles();
        return s / b;
    };
    double s2 = speedupAt(2);
    double s32 = speedupAt(32);
    EXPECT_NEAR(s32 / s2, 1.0, 0.10); // nearly constant (Fig 14)
}

TEST(Sparten, TransformerActivationsGiveNoBenefit)
{
    // Dense activations (transformers): SparTen ~ dense + overhead.
    PreparedModel pm = smallModel();
    SimConfig cfg;
    // Force dense activations on both layers.
    for (auto &l : pm.layers)
        l.activationDensity = 1.0;
    double sp =
        SpartenAccelerator().simulateModel(pm, cfg).totalCycles();
    double st =
        StripesAccelerator().simulateModel(pm, cfg).totalCycles();
    // Near-dense 8-bit values: SparTen cannot beat the dense bit-serial
    // baseline by much, if at all (paper Fig 12 transformer bars).
    EXPECT_GT(sp, 0.85 * st);
}

TEST(Sparten, ReluActivationsHelp)
{
    PreparedModel pm = smallModel();
    SimConfig cfg;
    PreparedModel dense = pm;
    for (auto &l : dense.layers)
        l.activationDensity = 1.0;
    double withRelu =
        SpartenAccelerator().simulateModel(pm, cfg).totalCycles();
    double withoutRelu =
        SpartenAccelerator().simulateModel(dense, cfg).totalCycles();
    EXPECT_LT(withRelu, withoutRelu);
}

TEST(Factory, LineupMatchesPaperOrder)
{
    auto lineup = evaluationLineup();
    ASSERT_EQ(lineup.size(), 8u);
    EXPECT_EQ(lineup[0]->name(), "SparTen");
    EXPECT_EQ(lineup[2]->name(), "Stripes");
    EXPECT_EQ(lineup[7]->name(), "BitVert (mod)");
}

TEST(Accelerators, EnergyBreakdownIsPopulated)
{
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel pm = smallModel(&mod);
    SimConfig cfg;
    for (auto &acc : evaluationLineup()) {
        ModelSim ms = acc->simulateModel(pm, cfg);
        EXPECT_GT(ms.totalEnergyPj(), 0.0) << acc->name();
        EXPECT_GT(ms.offChipEnergyPj(), 0.0) << acc->name();
        EXPECT_GT(ms.onChipEnergyPj(), 0.0) << acc->name();
        EXPECT_GT(ms.totalCycles(), 0.0) << acc->name();
    }
}


TEST(Accelerators, WeightStorageReflectsEachEncoding)
{
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel pm = smallModel(&mod);
    SimConfig cfg;
    double dense = 0.0, bitwave = 0.0, ant = 0.0, bitvert = 0.0;
    for (auto &acc : evaluationLineup()) {
        LayerSim sim = acc->simulateLayer(pm.layers[0], cfg);
        // dramBits = weights + activations; isolate weights by comparing
        // totals (activation terms are equal for 8-bit-act designs).
        if (acc->name() == "Stripes")
            dense = sim.dramBits;
        else if (acc->name() == "BitWave")
            bitwave = sim.dramBits;
        else if (acc->name() == "ANT")
            ant = sim.dramBits;
        else if (acc->name() == "BitVert (mod)")
            bitvert = sim.dramBits;
    }
    // BitWave stores only surviving columns; ANT 6-bit everything;
    // BitVert (mod) ~4.25 bits on 80% of channels. All below dense.
    EXPECT_LT(bitwave, dense);
    EXPECT_LT(ant, dense);
    EXPECT_LT(bitvert, dense);
    EXPECT_LT(bitvert, bitwave);
}

TEST(Accelerators, FcLayersAreMemoryBound)
{
    // A classifier head reuses each weight once: DRAM dominates and
    // totalCycles == dramCycles for every design.
    ModelDesc desc;
    desc.name = "fc-only";
    LayerDesc l;
    l.name = "fc";
    l.kind = LayerKind::Linear;
    l.weightShape = Shape{256, 4096};
    l.outputPositions = 1;
    desc.layers = {l};
    MaterializeOptions opts;
    MaterializedModel mm = materializeModel(desc, opts);
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel pm = prepareModel(mm, &mod);
    SimConfig cfg;
    for (auto &acc : evaluationLineup()) {
        LayerSim sim = acc->simulateLayer(pm.layers[0], cfg);
        EXPECT_DOUBLE_EQ(sim.totalCycles, sim.dramCycles) << acc->name();
    }
}

TEST(BitVert, BbsAloneDoublesThroughputWithoutPruning)
{
    // beta = 1: every channel stays 8-bit — no binary pruning at all.
    // BBS's guaranteed <= 50% effectual bits still lets each 8-lane PE
    // cover 16 weights in 8 cycles, i.e. up to 2x Stripes throughput per
    // multiplier before memory effects (the paper's §III-A argument that
    // balanced BBS alone accelerates bit-serial computing).
    GlobalPruneConfig all = moderateConfig();
    all.beta = 1.0;
    PreparedModel pm = smallModel(&all);
    SimConfig cfg;
    BitVertAccelerator bv(all, "BitVert");
    StripesAccelerator stripes;
    double bvCycles = bv.simulateModel(pm, cfg).totalCycles();
    double stCycles = stripes.simulateModel(pm, cfg).totalCycles();
    EXPECT_LT(bvCycles, stCycles);            // BBS alone helps
    EXPECT_GE(bvCycles, stCycles * 0.5 - 1.0); // bounded by 2x compute
}
} // namespace
} // namespace bbs
