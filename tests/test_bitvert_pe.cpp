/**
 * @file
 * Tests for the cycle-accurate BitVert PE and its Fig 8 scheduler.
 */
#include <bit>

#include <gtest/gtest.h>

#include "accel/bitvert_pe.hpp"
#include "common/bit_utils.hpp"
#include "common/random.hpp"
#include "core/bbs_dot.hpp"
#include "engine/engine.hpp"

namespace bbs {
namespace {

class SchedulerCoverage : public ::testing::TestWithParam<int>
{
};

TEST_P(SchedulerCoverage, EveryColumnIsFullyCovered)
{
    // Exhaustive: for every possible sub-group column, the staggered 5:1
    // muxes must cover every effectual bit (BBS bounds them at n/2).
    int n = GetParam();
    for (std::uint32_t col = 0; col < (1u << n); ++col) {
        SubGroupSchedule sched = scheduleSubGroupColumn(col, n);
        std::uint32_t mask = (1u << n) - 1u;
        std::uint32_t effectual =
            sched.inverted ? (~col & mask) : (col & mask);

        std::uint32_t covered = 0;
        for (const LaneSelect &lane : sched.lanes) {
            if (!lane.valid)
                continue;
            // Mux j reaches only positions {j, ..., j+4}.
            int j = static_cast<int>(&lane - sched.lanes.data());
            EXPECT_GE(lane.select, j);
            EXPECT_LE(lane.select, j + 4);
            EXPECT_LT(lane.select, n);
            // No double selection.
            EXPECT_EQ(covered & (1u << lane.select), 0u);
            covered |= 1u << lane.select;
        }
        EXPECT_EQ(covered, effectual) << "col=" << col << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(SubGroupSizes, SchedulerCoverage,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Scheduler, InvertsIffOnesDominate)
{
    EXPECT_FALSE(scheduleSubGroupColumn(0b00001111, 8).inverted);
    EXPECT_TRUE(scheduleSubGroupColumn(0b00011111, 8).inverted);
    EXPECT_FALSE(scheduleSubGroupColumn(0b00000000, 8).inverted);
    EXPECT_TRUE(scheduleSubGroupColumn(0b11111111, 8).inverted);
}

std::vector<std::int8_t>
randomVec(Rng &rng, std::size_t n)
{
    std::vector<std::int8_t> v(n);
    for (auto &x : v)
        x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return v;
}

struct PeParam
{
    PruneStrategy strategy;
    int targetColumns;
    std::size_t n;
};

class BitVertPeProperty : public ::testing::TestWithParam<PeParam>
{
};

TEST_P(BitVertPeProperty, MatchesMathematicalDotProduct)
{
    auto [strategy, target, n] = GetParam();
    Rng rng(0xbe + target + n);
    for (int iter = 0; iter < 200; ++iter) {
        auto w = randomVec(rng, n);
        auto a = randomVec(rng, n);
        CompressedGroup cg = compressGroup(w, target, strategy);
        std::vector<std::int8_t> rec = cg.decompress();

        PeRunResult pe = runBitVertPe(cg, a);
        EXPECT_EQ(pe.value,
                  engine::dot(rec, a, engine::DotMethod::Reference)
                      .value);
        // One cycle per stored column.
        EXPECT_EQ(pe.cycles, cg.storedBits);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BitVertPeProperty,
    ::testing::Values(PeParam{PruneStrategy::RoundedAveraging, 2, 16},
                      PeParam{PruneStrategy::RoundedAveraging, 4, 16},
                      PeParam{PruneStrategy::ZeroPointShifting, 4, 16},
                      PeParam{PruneStrategy::ZeroPointShifting, 6, 16},
                      PeParam{PruneStrategy::ZeroPointShifting, 2, 12},
                      PeParam{PruneStrategy::RoundedAveraging, 0, 16}));

TEST(BitVertPe, UncompressedEightBitGroupTakesEightCycles)
{
    Rng rng(0xfe);
    auto w = randomVec(rng, 16);
    auto a = randomVec(rng, 16);
    // Sensitive channels run uncompressed: storedBits = 8, pruned = 0,
    // constant = 0.
    PeRunResult pe = runBitVertPe(w, 8, 0, 0, a);
    EXPECT_EQ(pe.value,
              engine::dot(w, a, engine::DotMethod::Reference).value);
    EXPECT_EQ(pe.cycles, 8);
}

TEST(BitVertPe, HandlesShortGroups)
{
    Rng rng(0xaa);
    for (std::size_t n : {1u, 5u, 8u, 9u, 15u}) {
        auto w = randomVec(rng, n);
        auto a = randomVec(rng, n);
        PeRunResult pe = runBitVertPe(w, 8, 0, 0, a);
        EXPECT_EQ(pe.value,
                  engine::dot(w, a, engine::DotMethod::Reference).value)
            << "n=" << n;
    }
}

} // namespace
} // namespace bbs
