/**
 * @file
 * Tests for precision-generalized BBS: the >= 50% guarantee and exactness
 * of the bi-directional dot product must hold for every precision — the
 * paper's §VI "does not depend on the operand precision" claim.
 */
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "core/bbs_wide.hpp"

namespace bbs {
namespace {

std::vector<std::int16_t>
randomValues(Rng &rng, std::size_t n, int bits)
{
    std::int32_t lo = -(1 << (bits - 1));
    std::int32_t hi = (1 << (bits - 1)) - 1;
    std::vector<std::int16_t> v(n);
    for (auto &x : v)
        x = static_cast<std::int16_t>(rng.uniformInt(lo, hi));
    return v;
}

class WidePrecision : public ::testing::TestWithParam<int>
{
};

TEST_P(WidePrecision, SparsityGuaranteeHoldsAtEveryPrecision)
{
    int bits = GetParam();
    Rng rng(100 + bits);
    auto v = randomValues(rng, 4096, bits);
    for (std::int64_t vs : {4, 8, 16}) {
        double s = bbsSparsityWide(v, bits, vs);
        EXPECT_GE(s, 0.5) << "bits=" << bits << " vs=" << vs;
        EXPECT_LE(s, 1.0);
    }
    // BBS dominates plain zero-bit sparsity... they can be equal only when
    // no column is ones-dominant.
    EXPECT_GE(bbsSparsityWide(v, bits, 8) + 1e-12,
              std::min(bitSparsityWide(v, bits),
                       1.0 - bitSparsityWide(v, bits)));
}

TEST_P(WidePrecision, DotProductExactAtEveryPrecision)
{
    int bits = GetParam();
    Rng rng(200 + bits);
    for (int iter = 0; iter < 100; ++iter) {
        auto w = randomValues(rng, 16, bits);
        std::vector<std::int32_t> a(16);
        for (auto &x : a)
            x = static_cast<std::int32_t>(rng.uniformInt(-1000, 1000));

        std::int64_t ref = 0;
        for (std::size_t i = 0; i < w.size(); ++i)
            ref += static_cast<std::int64_t>(w[i]) * a[i];
        EXPECT_EQ(dotBitSerialBbsWide(w, a, bits), ref)
            << "bits=" << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(Precisions, WidePrecision,
                         ::testing::Values(2, 4, 6, 8, 12, 16));

TEST(WidePrecision, SixteenBitWeightsStayBalanced)
{
    // Gaussian 16-bit weights (e.g. FP16-trained models quantized wide):
    // 2's-complement zero-bit sparsity hovers near 50%, BBS exceeds it.
    Rng rng(300);
    std::vector<std::int16_t> v(8192);
    for (auto &x : v)
        x = static_cast<std::int16_t>(
            std::clamp<long>(std::lround(rng.gaussian(0, 4000.0)),
                             -32768l, 32767l));
    EXPECT_GE(bbsSparsityWide(v, 16, 8), 0.5);
    EXPECT_GT(bbsSparsityWide(v, 16, 8), bitSparsityWide(v, 16) - 0.05);
}

} // namespace
} // namespace bbs
