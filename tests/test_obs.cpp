/**
 * @file
 * Observability layer tests: the metrics primitives' torn-free snapshot
 * guarantees (stressed with concurrent writers — this file runs in the
 * TSAN CI job), Prometheus text round-tripping through our own parser,
 * the trace ring's bounded-history semantics, and the server-level
 * exposition surface (metricsText, latency-window saturation fields).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <span>
#include <sstream>
#include <thread>

#include "common/json_writer.hpp"
#include "common/metrics.hpp"
#include "common/random.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace bbs {
namespace {

TEST(ObsHistogram, BucketPlacementAndTornFreeCount)
{
    const double bounds[] = {1.0, 10.0, 100.0};
    obs::Histogram h(bounds);
    h.observe(0.5);   // le=1
    h.observe(1.0);   // le=1 (inclusive upper bound)
    h.observe(9.9);   // le=10
    h.observe(100.0); // le=100
    h.observe(1e9);   // +Inf tail
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u); // implicit +Inf
    // The count IS the bucket sum — no separate total to tear against.
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 9.9 + 100.0 + 1e9);
}

TEST(ObsHistogram, LatencyLadderIsStrictlyAscending)
{
    std::span<const double> b = obs::Histogram::latencyBoundsUs();
    ASSERT_GE(b.size(), 8u);
    for (std::size_t i = 1; i < b.size(); ++i)
        EXPECT_LT(b[i - 1], b[i]) << "at " << i;
    EXPECT_LE(b.front(), 1.0);      // resolves a microsecond run
    EXPECT_GE(b.back(), 1'000'000); // and a multi-second stall
}

TEST(ObsHistogram, QuantileInterpolatesWithinOwningBucket)
{
    obs::MetricSnapshot h;
    h.type = obs::MetricSnapshot::Type::Histogram;
    h.bounds = {10.0, 20.0, 40.0};

    // Empty histograms and non-histograms report 0.
    h.bucketCounts = {0, 0, 0, 0};
    h.count = 0;
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, 0.5), 0.0);
    obs::MetricSnapshot counter;
    counter.type = obs::MetricSnapshot::Type::Counter;
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(counter, 0.5), 0.0);

    // 10 observations in (10, 20]: rank q*10 interpolates linearly
    // between the bucket's lower and upper bound.
    h.bucketCounts = {0, 10, 0, 0};
    h.count = 10;
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, 0.5), 15.0);
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, 1.0), 20.0);
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, 0.0), 11.0); // rank 1

    // Split 5/5: the median closes the first bucket, p75 sits halfway
    // up the second, and the first bucket interpolates from 0.
    h.bucketCounts = {5, 5, 0, 0};
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, 0.5), 10.0);
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, 0.75), 15.0);
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, 0.2), 4.0);

    // A quantile landing in the +Inf tail clamps to the last finite
    // bound — the estimator cannot invent values past the ladder.
    h.bucketCounts = {5, 0, 0, 5};
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, 0.99), 40.0);
}

TEST(ObsHistogram, QuantileAgreesWithRawPercentileWithinBucketWidth)
{
    // The bucket estimator vs the exact raw-sample percentile on the
    // same data: they can only disagree within the owning bucket's
    // width. This is the ServerStats cross-check (p50HistUs/p99HistUs
    // next to the ring-derived p50Us/p99Us).
    Rng rng(0x9a77);
    obs::Histogram h(obs::Histogram::latencyBoundsUs());
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i) {
        // Log-uniform latencies, the shape the ladder was built for.
        double v = std::pow(10.0, rng.uniformReal(0.5, 5.0));
        samples.push_back(v);
        h.observe(v);
    }
    obs::MetricSnapshot snap;
    snap.type = obs::MetricSnapshot::Type::Histogram;
    snap.bounds = h.bounds();
    for (std::size_t i = 0; i <= h.bounds().size(); ++i)
        snap.bucketCounts.push_back(h.bucketCount(i));
    snap.count = h.count();
    snap.sum = h.sum();

    std::sort(samples.begin(), samples.end());
    for (double q : {0.5, 0.9, 0.99}) {
        double exact = samples[static_cast<std::size_t>(
            q * (samples.size() - 1))];
        double est = obs::histogramQuantile(snap, q);
        // Locate the owning bucket of the exact value; the estimate
        // must land within that bucket's bounds.
        std::size_t b = 0;
        while (b < snap.bounds.size() && exact > snap.bounds[b])
            ++b;
        double lower = b == 0 ? 0.0 : snap.bounds[b - 1];
        ASSERT_LT(b, snap.bounds.size()) << "q=" << q;
        EXPECT_GE(est, lower) << "q=" << q;
        EXPECT_LE(est, snap.bounds[b]) << "q=" << q;
    }
}

TEST(ObsRegistry, GetOrCreateSharesSeriesAndKeepsOrder)
{
    obs::Registry reg;
    obs::Counter &a = reg.counter("bbs_test_events_total", "help");
    obs::Counter &b = reg.counter("bbs_test_events_total");
    EXPECT_EQ(&a, &b); // same (name, labels) -> same instance
    obs::Counter &lbl =
        reg.counter("bbs_test_events_total", "", "kind=\"x\"");
    EXPECT_NE(&a, &lbl); // labels split the series
    reg.gauge("bbs_test_depth");

    a.inc(3);
    lbl.inc();
    std::vector<obs::MetricSnapshot> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u); // registration order, no duplicates
    EXPECT_EQ(snap[0].name, "bbs_test_events_total");
    EXPECT_EQ(snap[0].counterValue, 3u);
    EXPECT_EQ(snap[1].labels, "kind=\"x\"");
    EXPECT_EQ(snap[1].counterValue, 1u);
    EXPECT_EQ(snap[2].type, obs::MetricSnapshot::Type::Gauge);
}

/** The load-bearing concurrency claim (runs under TSAN in CI): scrapes
 *  taken while writers hammer the registry are monotone per metric, and
 *  a histogram's count can never exceed a later-read total. */
TEST(ObsRegistry, SnapshotsAreMonotoneUnderConcurrentWriters)
{
    constexpr int kWriters = 4;
    constexpr std::uint64_t kPerWriter = 20'000;
    obs::Registry reg;
    obs::Counter &events = reg.counter("bbs_stress_events_total");
    obs::Gauge &depth = reg.gauge("bbs_stress_depth");
    const double bounds[] = {10.0, 100.0, 1000.0};
    obs::Histogram &lat = reg.histogram("bbs_stress_us", bounds);

    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&, t] {
            Rng rng(0xbeef + static_cast<std::uint64_t>(t));
            for (std::uint64_t i = 0; i < kPerWriter; ++i) {
                events.inc();
                depth.add(t % 2 == 0 ? 1 : -1);
                lat.observe(rng.uniformReal(0.0, 2000.0));
            }
        });
    }

    std::thread scraper([&] {
        std::uint64_t prevEvents = 0, prevLatCount = 0;
        while (!done.load(std::memory_order_acquire)) {
            std::vector<obs::MetricSnapshot> snap = reg.snapshot();
            ASSERT_EQ(snap.size(), 3u);
            EXPECT_GE(snap[0].counterValue, prevEvents);
            prevEvents = snap[0].counterValue;
            const obs::MetricSnapshot &h = snap[2];
            std::uint64_t bucketSum = 0;
            for (std::uint64_t c : h.bucketCounts)
                bucketSum += c;
            // Per-metric consistency: the reported count is exactly the
            // bucket reads it was derived from, and monotone.
            EXPECT_EQ(h.count, bucketSum);
            EXPECT_GE(h.count, prevLatCount);
            prevLatCount = h.count;
        }
    });

    for (auto &w : writers)
        w.join();
    done.store(true, std::memory_order_release);
    scraper.join();

    std::vector<obs::MetricSnapshot> fin = reg.snapshot();
    EXPECT_EQ(fin[0].counterValue, kWriters * kPerWriter);
    EXPECT_EQ(fin[1].gaugeValue, 0); // two +1 writers, two -1 writers
    EXPECT_EQ(fin[2].count, kWriters * kPerWriter);
}

TEST(ObsExposition, PrometheusTextRoundTrips)
{
    obs::Registry reg;
    reg.counter("bbs_rt_events_total", "Events").inc(42);
    reg.gauge("bbs_rt_depth", "Depth").set(-7);
    const double bounds[] = {1.0, 5.0};
    obs::Histogram &h = reg.histogram("bbs_rt_us", bounds, "Latency",
                                      "kind=\"a\"");
    h.observe(0.5);
    h.observe(3.0);
    h.observe(9.0);

    std::string text = obs::prometheusText(reg.snapshot());
    obs::ParsedExposition parsed;
    ASSERT_TRUE(obs::parsePrometheusText(text, parsed)) << text;

    EXPECT_EQ(parsed.types.at("bbs_rt_events_total"), "counter");
    EXPECT_EQ(parsed.types.at("bbs_rt_depth"), "gauge");
    EXPECT_EQ(parsed.types.at("bbs_rt_us"), "histogram");

    const obs::ParsedSample *events = parsed.find("bbs_rt_events_total");
    ASSERT_NE(events, nullptr);
    EXPECT_DOUBLE_EQ(events->value, 42.0);
    const obs::ParsedSample *depth = parsed.find("bbs_rt_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_DOUBLE_EQ(depth->value, -7.0);

    // Cumulative bucket series: le="5" includes the le="1" observation.
    const obs::ParsedSample *b1 =
        parsed.find("bbs_rt_us_bucket", "kind=\"a\",le=\"1\"");
    const obs::ParsedSample *b5 =
        parsed.find("bbs_rt_us_bucket", "kind=\"a\",le=\"5\"");
    const obs::ParsedSample *binf =
        parsed.find("bbs_rt_us_bucket", "kind=\"a\",le=\"+Inf\"");
    ASSERT_NE(b1, nullptr);
    ASSERT_NE(b5, nullptr);
    ASSERT_NE(binf, nullptr);
    EXPECT_DOUBLE_EQ(b1->value, 1.0);
    EXPECT_DOUBLE_EQ(b5->value, 2.0);
    EXPECT_DOUBLE_EQ(binf->value, 3.0);
    const obs::ParsedSample *cnt =
        parsed.find("bbs_rt_us_count", "kind=\"a\"");
    const obs::ParsedSample *sum =
        parsed.find("bbs_rt_us_sum", "kind=\"a\"");
    ASSERT_NE(cnt, nullptr);
    ASSERT_NE(sum, nullptr);
    EXPECT_DOUBLE_EQ(cnt->value, 3.0);
    EXPECT_DOUBLE_EQ(sum->value, 12.5);
}

TEST(ObsExposition, LabelValueEscapingRoundTrips)
{
    // Label values are caller-controlled strings (model names reach
    // them); the exposition-format escapes must survive emission AND
    // the round-trip parser — in particular a `}` or `"` inside a
    // quoted value must not truncate the label body.
    EXPECT_EQ(obs::escapeLabelValue("plain"), "plain");
    EXPECT_EQ(obs::escapeLabelValue("quo\"te"), "quo\\\"te");
    EXPECT_EQ(obs::escapeLabelValue("back\\slash"), "back\\\\slash");
    EXPECT_EQ(obs::escapeLabelValue("new\nline"), "new\\nline");

    obs::Registry reg;
    std::string evil = "mo\"de}l\\x";
    std::string label =
        "model=\"" + obs::escapeLabelValue(evil) + "\"";
    reg.counter("bbs_esc_total", "Escaping", label).inc(3);
    reg.counter("bbs_esc_after_total", "Must survive the evil line")
        .inc(7);

    std::string text = obs::prometheusText(reg.snapshot());
    obs::ParsedExposition parsed;
    ASSERT_TRUE(obs::parsePrometheusText(text, parsed)) << text;

    const obs::ParsedSample *evilSample =
        parsed.find("bbs_esc_total", label);
    ASSERT_NE(evilSample, nullptr) << text;
    EXPECT_DOUBLE_EQ(evilSample->value, 3.0);
    // The series AFTER the evil one parsed intact: the label body did
    // not swallow the rest of the exposition.
    const obs::ParsedSample *after =
        parsed.find("bbs_esc_after_total");
    ASSERT_NE(after, nullptr);
    EXPECT_DOUBLE_EQ(after->value, 7.0);
}

TEST(ObsExposition, ParserRejectsMalformedLines)
{
    obs::ParsedExposition out;
    EXPECT_FALSE(obs::parsePrometheusText("not a sample line", out));
    EXPECT_FALSE(obs::parsePrometheusText("name{unclosed 1", out));
    EXPECT_FALSE(obs::parsePrometheusText("name notanumber", out));
    // Comments and blanks are fine.
    EXPECT_TRUE(obs::parsePrometheusText("# HELP x y\n\nx 1\n", out));
    ASSERT_EQ(out.samples.size(), 1u);
    EXPECT_EQ(out.samples[0].name, "x");
}

TEST(ObsExposition, JsonRecordsEmitOneObjectPerMetric)
{
    obs::Registry reg;
    reg.counter("bbs_j_total").inc(5);
    const double bounds[] = {1.0};
    reg.histogram("bbs_j_us", bounds).observe(0.5);

    std::ostringstream os;
    JsonWriter w(os);
    obs::writeJsonRecords(reg.snapshot(), w);
    EXPECT_TRUE(w.complete());
    std::string text = os.str();
    EXPECT_NE(text.find("\"bbs_j_total\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"bbs_j_us\""), std::string::npos);
    EXPECT_NE(text.find("\"metrics\""), std::string::npos);
}

TEST(ObsTrace, RingKeepsMostRecentAndCountsDropped)
{
    obs::TraceRing ring(4);
    for (std::uint64_t i = 1; i <= 6; ++i) {
        obs::TraceSpan s;
        s.id = i;
        s.setModel("m");
        s.submitUs = static_cast<double>(i);
        ring.record(s);
    }
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 2u);

    std::ostringstream os;
    ring.dumpJson(os, nullptr);
    std::string text = os.str();
    EXPECT_NE(text.find("\"dropped\": 2"), std::string::npos) << text;
    // Oldest-first: span 3 (the oldest survivor) precedes span 6.
    std::size_t p3 = text.find("\"id\": 3");
    std::size_t p6 = text.find("\"id\": 6");
    ASSERT_NE(p3, std::string::npos);
    ASSERT_NE(p6, std::string::npos);
    EXPECT_LT(p3, p6);
    // Span 2 was overwritten.
    EXPECT_EQ(text.find("\"id\": 2"), std::string::npos);

    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(ObsTrace, SamplingShedsDeterministicallyAndCountsSeparately)
{
    // 1-in-3: spans 1, 4, 7, 10 survive (the first of every three).
    obs::TraceRing ring(16, 3);
    EXPECT_EQ(ring.sampleEvery(), 3u);
    for (std::uint64_t i = 1; i <= 10; ++i) {
        obs::TraceSpan s;
        s.id = i;
        s.setModel("m");
        ring.record(s);
    }
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.sampledOut(), 6u);
    EXPECT_EQ(ring.dropped(), 0u); // sampling shed is NOT ring overflow

    std::ostringstream os;
    ring.dumpJson(os, nullptr);
    std::string text = os.str();
    EXPECT_NE(text.find("\"sampled_out\": 6"), std::string::npos) << text;
    EXPECT_NE(text.find("\"sample_every\": 3"), std::string::npos);
    for (int kept : {1, 4, 7, 10})
        EXPECT_NE(text.find("\"id\": " + std::to_string(kept)),
                  std::string::npos)
            << text;
    EXPECT_EQ(text.find("\"id\": 2"), std::string::npos);

    // Overflow and sampling count independently: a 2-slot ring at
    // 1-in-2 offered 8 spans keeps {7}, drops {1, 3} from the ring,
    // and sheds {2, 4, 6, 8}.
    obs::TraceRing tiny(2, 2);
    for (std::uint64_t i = 1; i <= 8; ++i) {
        obs::TraceSpan s;
        s.id = i;
        tiny.record(s);
    }
    EXPECT_EQ(tiny.size(), 2u);
    EXPECT_EQ(tiny.sampledOut(), 4u);
    EXPECT_EQ(tiny.dropped(), 2u);

    tiny.clear();
    EXPECT_EQ(tiny.sampledOut(), 0u);

    // The environment knob: an unset / invalid value keeps every span.
    obs::TraceRing everything(4);
    EXPECT_GE(everything.sampleEvery(), 1u);
}

TEST(ObsTrace, ModelNameTruncatesToFit)
{
    obs::TraceSpan s;
    s.setModel("a-model-name-well-beyond-the-inline-buffer");
    EXPECT_EQ(std::string_view(s.model).size(),
              obs::TraceSpan::kModelChars - 1);
}

/** The server's exposition surface end to end: serve real traffic, then
 *  assert the Prometheus text parses and agrees with the snapshot API,
 *  and that the estimator-saturation fields mean what they claim. */
TEST(ObsServe, MetricsTextMatchesSnapshotAndWindowFieldsAreExact)
{
    Rng rng(0x0b5);
    Network net;
    net.add(std::make_unique<Dense>(16, 24, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(24, 4, rng));
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("m", Int8Network::fromNetwork(
                           net, 32, 2, PruneStrategy::ZeroPointShifting));

    ServerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxDelayUs = 200;
    cfg.workers = 1;
    InferenceServer server(registry, cfg);

    std::vector<float> input(16, 0.25f);
    constexpr std::uint64_t kRequests = 40;
    for (std::uint64_t i = 0; i < kRequests; ++i)
        ASSERT_EQ(server.submit("m", input).get().status, ServeStatus::Ok);

    StatsSnapshot s = server.stats();
    EXPECT_EQ(s.completed, kRequests);
    // Satellite semantics: latencyWindow is the estimator ring's
    // CAPACITY; dropped counts completions that aged out of it.
    EXPECT_EQ(s.latencyWindow, ServerStats::kLatencyWindow);
    EXPECT_EQ(s.latencyDropped, 0u); // 40 << 65536: nothing aged out
    EXPECT_EQ(s.queueDepth, 0u);     // all futures resolved

    // The bucket-derived percentiles (histogramQuantile over
    // bbs_serve_latency_us) must bracket the exact ring-derived ones
    // within one bucket of the latency ladder: same data, bucket
    // resolution.
    EXPECT_GT(s.p50HistUs, 0.0);
    EXPECT_GE(s.p99HistUs, s.p50HistUs);
    std::span<const double> ladder = obs::Histogram::latencyBoundsUs();
    auto owningBucket = [&](double v) {
        std::size_t b = 0;
        while (b < ladder.size() && v > ladder[b])
            ++b;
        return b;
    };
    EXPECT_LE(owningBucket(s.p50HistUs), owningBucket(s.p50Us) + 1);
    EXPECT_GE(owningBucket(s.p50HistUs) + 1, owningBucket(s.p50Us));
    EXPECT_LE(owningBucket(s.p99HistUs), owningBucket(s.p99Us) + 1);
    EXPECT_GE(owningBucket(s.p99HistUs) + 1, owningBucket(s.p99Us));

    std::string text = server.metricsText(/*includeGlobal=*/false);
    obs::ParsedExposition parsed;
    ASSERT_TRUE(obs::parsePrometheusText(text, parsed)) << text;
    const obs::ParsedSample *completed =
        parsed.find("bbs_serve_requests_completed_total");
    ASSERT_NE(completed, nullptr);
    EXPECT_DOUBLE_EQ(completed->value, static_cast<double>(kRequests));
    const obs::ParsedSample *latCount =
        parsed.find("bbs_serve_latency_us_count");
    ASSERT_NE(latCount, nullptr);
    EXPECT_DOUBLE_EQ(latCount->value, static_cast<double>(kRequests));
    EXPECT_NE(parsed.find("bbs_serve_queue_depth"), nullptr);

    // After stop() (workers joined — a span is recorded after the
    // future resolves, so only now is the count settled), the trace
    // ring saw every request.
    server.stop();
    EXPECT_EQ(server.trace().size() + server.trace().dropped(),
              kRequests);
}

} // namespace
} // namespace bbs
