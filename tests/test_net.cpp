/**
 * @file
 * Tests for the socket front-end: protocol codec round-trips and
 * hostile-input rejection, end-to-end serving over a real TCP
 * connection (bit-identical to the in-process oracle), the stats frame
 * round-tripping through parsePrometheusText (including a model name
 * carrying a quote), admission control answering Overloaded over the
 * wire, and the frame fuzzer — truncated frames, oversized lengths,
 * garbage magic, and mid-frame disconnects must never crash the
 * listener, leak a connection slot, or stall other connections.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/random.hpp"
#include "net/net_client.hpp"
#include "net/net_server.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "obs/exposition.hpp"
#include "llm/transformer.hpp"
#include "serve/generation.hpp"
#include "serve/server.hpp"

namespace bbs {
namespace {

Int8Network
makeEngine(std::int64_t in, std::int64_t hidden, std::int64_t out,
           int targetColumns, std::uint64_t seed)
{
    Rng rng(seed);
    Network net;
    net.add(std::make_unique<Dense>(in, hidden, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(hidden, out, rng));
    return Int8Network::fromNetwork(net, 32, targetColumns,
                                    PruneStrategy::ZeroPointShifting);
}

std::vector<float>
makeSample(std::int64_t features, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> s(static_cast<std::size_t>(features));
    for (float &v : s)
        v = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    return s;
}

/** Poll @p pred up to @p timeoutMs (asynchronous server state). */
bool
eventually(const std::function<bool()> &pred, int timeoutMs = 2000)
{
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(timeoutMs);
    while (std::chrono::steady_clock::now() < until) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return pred();
}

/** Server + net front-end wired up for one test. */
struct NetFixture
{
    std::shared_ptr<ModelRegistry> registry;
    std::unique_ptr<InferenceServer> server;
    std::unique_ptr<net::NetServer> net;

    explicit NetFixture(ServerConfig cfg = {},
                        net::NetServerConfig netCfg = {})
    {
        registry = std::make_shared<ModelRegistry>();
        registry->add("clf", makeEngine(16, 24, 4, 2, 0xd00d));
        server = std::make_unique<InferenceServer>(registry, cfg);
        net = std::make_unique<net::NetServer>(*server, netCfg);
        net->start();
    }

    ~NetFixture()
    {
        net->stop();
        server->stop();
    }

    net::NetClient connect(int recvTimeoutMs = 5000)
    {
        net::NetClient c;
        EXPECT_TRUE(c.connect("127.0.0.1", net->port(), recvTimeoutMs));
        return c;
    }
};

TEST(NetProtocol, RequestAndResponseFramesRoundTrip)
{
    net::RequestFrame req;
    req.tag = 0xfeedface;
    req.deadlineUs = 12345;
    req.model = "clf";
    req.input = {1.0f, -2.5f, 0.0f};

    std::vector<std::uint8_t> wire;
    net::encodeRequest(req, wire);
    net::FrameHeader h;
    ASSERT_TRUE(net::decodeHeader(
        {wire.data(), net::kHeaderBytes}, h));
    EXPECT_EQ(h.type, net::FrameType::Request);
    ASSERT_EQ(wire.size(), net::kHeaderBytes + h.bodyLen);
    net::RequestFrame back;
    ASSERT_TRUE(net::decodeRequest(
        {wire.data() + net::kHeaderBytes, h.bodyLen}, back));
    EXPECT_EQ(back.tag, req.tag);
    EXPECT_EQ(back.deadlineUs, req.deadlineUs);
    EXPECT_EQ(back.model, req.model);
    EXPECT_EQ(back.input, req.input);

    std::vector<float> logits = {0.5f, 2.0f};
    wire.clear();
    net::encodeResponse(77, 0, 1, logits, wire);
    ASSERT_TRUE(net::decodeHeader(
        {wire.data(), net::kHeaderBytes}, h));
    EXPECT_EQ(h.type, net::FrameType::Response);
    net::ResponseFrame resp;
    ASSERT_TRUE(net::decodeResponse(
        {wire.data() + net::kHeaderBytes, h.bodyLen}, resp));
    EXPECT_EQ(resp.tag, 77u);
    EXPECT_EQ(resp.status, 0);
    EXPECT_EQ(resp.predicted, 1);
    EXPECT_EQ(resp.logits, logits);
}

TEST(NetProtocol, HeaderRejectsHostileFields)
{
    net::RequestFrame req;
    req.model = "m";
    std::vector<std::uint8_t> wire;
    net::encodeRequest(req, wire);

    auto mutated = [&](std::size_t offset, std::uint8_t value) {
        std::vector<std::uint8_t> bad = wire;
        bad[offset] = value;
        net::FrameHeader h;
        return net::decodeHeader({bad.data(), net::kHeaderBytes}, h);
    };
    EXPECT_TRUE(mutated(6, 0x00));  // unchanged reserved: still fine
    EXPECT_FALSE(mutated(0, 0x00)); // magic
    EXPECT_FALSE(mutated(4, 0x7f)); // version
    EXPECT_FALSE(mutated(5, 0x00)); // type 0: invalid
    EXPECT_FALSE(mutated(5, 0x63)); // type 99: invalid
    EXPECT_FALSE(mutated(6, 0x01)); // reserved must be zero
    EXPECT_FALSE(mutated(11, 0xff)); // bodyLen top byte: > kMaxBody

    // Truncated header.
    net::FrameHeader h;
    EXPECT_FALSE(net::decodeHeader({wire.data(), 11}, h));
}

TEST(NetProtocol, BodyDecodersBoundEveryLengthField)
{
    net::RequestFrame req;
    req.tag = 1;
    req.model = "clf";
    req.input = {1.0f, 2.0f};
    std::vector<std::uint8_t> wire;
    net::encodeRequest(req, wire);
    std::span<const std::uint8_t> body{wire.data() + net::kHeaderBytes,
                                       wire.size() - net::kHeaderBytes};

    net::RequestFrame out;
    ASSERT_TRUE(net::decodeRequest(body, out));
    // Truncate anywhere: must reject, never over-read.
    for (std::size_t cut = 0; cut < body.size(); ++cut)
        EXPECT_FALSE(net::decodeRequest(body.first(cut), out))
            << "cut=" << cut;

    // floatCount lies (claims more than the body holds).
    std::vector<std::uint8_t> lying(wire.begin() + net::kHeaderBytes,
                                    wire.end());
    std::size_t floatCountAt = 8 + 8 + 2 + req.model.size();
    lying[floatCountAt] = 200;
    EXPECT_FALSE(net::decodeRequest(lying, out));

    // modelLen overruns the body.
    std::vector<std::uint8_t> overrun = lying;
    overrun[floatCountAt] = 2;
    overrun[8 + 8] = 0xff;
    overrun[8 + 8 + 1] = 0x00;
    EXPECT_FALSE(net::decodeRequest(overrun, out));
}

TEST(NetServe, EndToEndBitIdenticalWithTagEcho)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.shards = 2;
    NetFixture fx(cfg);

    auto sample = makeSample(16, 0x5a5a);
    // In-process oracle through the future API.
    auto oracle = fx.server->submit("clf", sample).get();
    ASSERT_EQ(oracle.status, ServeStatus::Ok);

    net::NetClient client = fx.connect();
    auto resp = client.request("clf", sample, 0, /*tag=*/0xabcd);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->tag, 0xabcdu);
    EXPECT_EQ(resp->status,
              static_cast<std::uint8_t>(ServeStatus::Ok));
    EXPECT_EQ(resp->logits, oracle.logits);
    EXPECT_EQ(resp->predicted, oracle.predicted);

    // Unknown model answers over the wire, not by disconnect.
    auto unknown = client.request("nope", sample);
    ASSERT_TRUE(unknown.has_value());
    EXPECT_EQ(unknown->status,
              static_cast<std::uint8_t>(ServeStatus::UnknownModel));
    EXPECT_TRUE(unknown->logits.empty());
}

TEST(NetServe, PipelinedRequestsOnOneConnectionAllAnswer)
{
    ServerConfig cfg;
    cfg.workers = 1;
    NetFixture fx(cfg);
    auto sample = makeSample(16, 0x1212);
    auto oracle = fx.server->submit("clf", sample).get();

    net::NetClient client = fx.connect();
    constexpr int kPipelined = 32;
    for (int i = 0; i < kPipelined; ++i) {
        net::RequestFrame r;
        r.tag = static_cast<std::uint64_t>(i);
        r.model = "clf";
        r.input = sample;
        ASSERT_TRUE(client.sendRequest(r));
    }
    // Same model, one connection: completions keep request order here,
    // and every tag must come back exactly once.
    std::vector<bool> seen(kPipelined, false);
    for (int i = 0; i < kPipelined; ++i) {
        net::ResponseFrame resp;
        ASSERT_TRUE(client.recvResponse(resp)) << "response " << i;
        ASSERT_LT(resp.tag, static_cast<std::uint64_t>(kPipelined));
        EXPECT_FALSE(seen[static_cast<std::size_t>(resp.tag)]);
        seen[static_cast<std::size_t>(resp.tag)] = true;
        EXPECT_EQ(resp.logits, oracle.logits);
    }
}

TEST(NetServe, StatsFrameRoundTripsIncludingQuotedModelName)
{
    ServerConfig cfg;
    cfg.workers = 1;
    NetFixture fx(cfg);
    // A model whose NAME carries a quote and a closing brace: the
    // escaping fix is what keeps the scrape parseable.
    std::string evil = "mo\"del}v1";
    fx.registry->add(evil, makeEngine(16, 24, 4, 2, 0xbeef));

    net::NetClient client = fx.connect();
    auto sample = makeSample(16, 0x9c9c);
    auto resp = client.request(evil, sample);
    ASSERT_TRUE(resp.has_value());
    ASSERT_EQ(resp->status, static_cast<std::uint8_t>(ServeStatus::Ok));

    auto text = client.stats();
    ASSERT_TRUE(text.has_value());
    obs::ParsedExposition parsed;
    ASSERT_TRUE(obs::parsePrometheusText(*text, parsed)) << *text;
    std::string label =
        "model=\"" + obs::escapeLabelValue(evil) + "\"";
    const obs::ParsedSample *series =
        parsed.find("bbs_serve_model_requests_total", label);
    ASSERT_NE(series, nullptr) << *text;
    EXPECT_DOUBLE_EQ(series->value, 1.0);
    // Net-layer series ride the same scrape.
    EXPECT_NE(parsed.find("bbs_net_connections_accepted_total"),
              nullptr);
}

TEST(NetServe, OverloadAnswersOverloadedOverTheWire)
{
    ServerConfig cfg;
    cfg.workers = 0; // nobody drains: the queue can only fill
    cfg.maxShardDepth = 2;
    NetFixture fx(cfg);

    net::NetClient client = fx.connect();
    auto sample = makeSample(16, 0x6f6f);
    for (int i = 0; i < 3; ++i) {
        net::RequestFrame r;
        r.tag = static_cast<std::uint64_t>(i);
        r.model = "clf";
        r.input = sample;
        ASSERT_TRUE(client.sendRequest(r));
    }
    // Only the third answers now (the first two wait for a drain that
    // never comes); it must be the Overloaded shed, delivered promptly.
    net::ResponseFrame resp;
    ASSERT_TRUE(client.recvResponse(resp));
    EXPECT_EQ(resp.tag, 2u);
    EXPECT_EQ(resp.status,
              static_cast<std::uint8_t>(ServeStatus::Overloaded));
    EXPECT_EQ(fx.server->stats().overloaded, 1u);
}

TEST(NetFuzz, GarbageFramesNeverKillTheListenerOrLeakSlots)
{
    ServerConfig cfg;
    cfg.workers = 1;
    NetFixture fx(cfg);
    auto sample = makeSample(16, 0x4242);
    auto oracle = fx.server->submit("clf", sample).get();

    Rng rng(0xfa22);
    constexpr int kRounds = 60;
    for (int round = 0; round < kRounds; ++round) {
        net::NetClient fuzz = fx.connect();
        ASSERT_TRUE(fuzz.connected());
        switch (rng.uniformInt(0, 4)) {
        case 0: { // garbage magic
            std::uint8_t junk[32];
            for (auto &b : junk)
                b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
            fuzz.sendRaw(junk, sizeof junk);
            break;
        }
        case 1: { // oversized length prefix, patched into a real header
            std::vector<std::uint8_t> wire;
            net::encodeStatsRequest(wire);
            wire[8] = 0xff;
            wire[9] = 0xff;
            wire[10] = 0xff;
            wire[11] = 0x7f;
            fuzz.sendRaw(wire.data(), wire.size());
            break;
        }
        case 2: { // truncated valid frame, then disconnect
            net::RequestFrame r;
            r.model = "clf";
            r.input = sample;
            std::vector<std::uint8_t> wire;
            net::encodeRequest(r, wire);
            std::size_t cut = static_cast<std::size_t>(rng.uniformInt(
                1, static_cast<std::int64_t>(wire.size()) - 1));
            fuzz.sendRaw(wire.data(), cut);
            break;
        }
        case 3: { // valid header, hostile body
            net::RequestFrame r;
            r.model = "clf";
            r.input = sample;
            std::vector<std::uint8_t> wire;
            net::encodeRequest(r, wire);
            for (int i = 0; i < 6; ++i) {
                std::size_t at = static_cast<std::size_t>(rng.uniformInt(
                    net::kHeaderBytes,
                    static_cast<std::int64_t>(wire.size()) - 1));
                wire[at] = static_cast<std::uint8_t>(
                    rng.uniformInt(0, 255));
            }
            fuzz.sendRaw(wire.data(), wire.size());
            break;
        }
        case 4: { // server-to-client frame type from a client
            std::vector<std::uint8_t> wire;
            net::encodeResponse(0, 0, -1, {}, wire);
            fuzz.sendRaw(wire.data(), wire.size());
            break;
        }
        }
        fuzz.close();
    }

    // The listener survived: a fresh, well-behaved connection serves
    // bit-identical answers...
    net::NetClient good = fx.connect();
    auto resp = good.request("clf", sample);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, static_cast<std::uint8_t>(ServeStatus::Ok));
    EXPECT_EQ(resp->logits, oracle.logits);
    good.close();

    // ...and every fuzzed connection's slot came back.
    EXPECT_TRUE(eventually(
        [&] { return fx.net->activeConnections() == 0; }))
        << fx.net->activeConnections() << " connections leaked";
    EXPECT_GE(fx.net->acceptedTotal(),
              static_cast<std::uint64_t>(kRounds));
}

TEST(NetFuzz, StalledMidFrameConnectionDoesNotStallOthers)
{
    ServerConfig cfg;
    cfg.workers = 1;
    NetFixture fx(cfg);
    auto sample = makeSample(16, 0x7777);

    // Stall: send half a request frame and just sit there.
    net::NetClient stalled = fx.connect();
    net::RequestFrame r;
    r.model = "clf";
    r.input = sample;
    std::vector<std::uint8_t> wire;
    net::encodeRequest(r, wire);
    ASSERT_TRUE(stalled.sendRaw(wire.data(), wire.size() / 2));

    // Other connections keep full service while the stalled one hangs.
    net::NetClient live = fx.connect();
    for (int i = 0; i < 10; ++i) {
        auto resp = live.request("clf", sample, 0,
                                 static_cast<std::uint64_t>(i));
        ASSERT_TRUE(resp.has_value()) << "request " << i;
        EXPECT_EQ(resp->status,
                  static_cast<std::uint8_t>(ServeStatus::Ok));
    }
    EXPECT_EQ(fx.net->protocolErrors(), 0u); // a stall is not an error

    // Completing the frame later still works: the framing state kept
    // the partial bytes.
    ASSERT_TRUE(
        stalled.sendRaw(wire.data() + wire.size() / 2,
                        wire.size() - wire.size() / 2));
    net::ResponseFrame late;
    ASSERT_TRUE(stalled.recvResponse(late));
    EXPECT_EQ(late.status, static_cast<std::uint8_t>(ServeStatus::Ok));
}

TEST(NetServe, ConnectionSlotsAreBoundedAndRecycled)
{
    ServerConfig cfg;
    cfg.workers = 1;
    net::NetServerConfig netCfg;
    netCfg.maxConnections = 2;
    NetFixture fx(cfg, netCfg);

    net::NetClient a = fx.connect();
    net::NetClient b = fx.connect();
    auto sample = makeSample(16, 0x3030);
    ASSERT_TRUE(a.request("clf", sample).has_value());
    ASSERT_TRUE(b.request("clf", sample).has_value());

    // Third connection: accepted at the TCP level, then closed by the
    // server (slots exhausted) — the client observes EOF on first read.
    net::NetClient c;
    ASSERT_TRUE(c.connect("127.0.0.1", fx.net->port(), 2000));
    auto rejected = c.request("clf", sample);
    EXPECT_FALSE(rejected.has_value());
    EXPECT_TRUE(eventually(
        [&] { return fx.net->rejectedTotal() == 1; }));

    // Releasing a slot readmits new connections.
    a.close();
    EXPECT_TRUE(eventually(
        [&] { return fx.net->activeConnections() < 2; }));
    net::NetClient d = fx.connect();
    EXPECT_TRUE(d.request("clf", sample).has_value());
}

TEST(NetProtocol, GenerateAndStreamChunkFramesRoundTrip)
{
    net::GenerateFrame g;
    g.tag = 0xabadcafe;
    g.model = "llm";
    g.maxNewTokens = 17;
    g.prompt = {3, 1, 4, 1, 5, 9};

    std::vector<std::uint8_t> wire;
    net::encodeGenerate(g, wire);
    net::FrameHeader h;
    ASSERT_TRUE(net::decodeHeader({wire.data(), net::kHeaderBytes}, h));
    EXPECT_EQ(h.type, net::FrameType::Generate);
    ASSERT_EQ(wire.size(), net::kHeaderBytes + h.bodyLen);
    net::GenerateFrame back;
    ASSERT_TRUE(net::decodeGenerate(
        {wire.data() + net::kHeaderBytes, h.bodyLen}, back));
    EXPECT_EQ(back.tag, g.tag);
    EXPECT_EQ(back.model, g.model);
    EXPECT_EQ(back.maxNewTokens, g.maxNewTokens);
    EXPECT_EQ(back.prompt, g.prompt);

    // Hostile lengths: truncated token payload and an overlong name
    // must both be rejected, never over-read.
    net::GenerateFrame bad;
    EXPECT_FALSE(net::decodeGenerate(
        {wire.data() + net::kHeaderBytes, h.bodyLen - 1}, bad));
    std::vector<std::uint8_t> tail(wire.begin() + net::kHeaderBytes,
                                   wire.end());
    tail[8] = 0xff; // modelLen low byte -> claims a huge name
    tail[9] = 0xff;
    EXPECT_FALSE(net::decodeGenerate(tail, bad));

    net::StreamChunkFrame s;
    s.tag = 0xabadcafe;
    s.status = 0;
    s.last = true;
    s.index = 41;
    s.token = -7;
    wire.clear();
    net::encodeStreamChunk(s, wire);
    ASSERT_TRUE(net::decodeHeader({wire.data(), net::kHeaderBytes}, h));
    EXPECT_EQ(h.type, net::FrameType::StreamChunk);
    net::StreamChunkFrame sBack;
    ASSERT_TRUE(net::decodeStreamChunk(
        {wire.data() + net::kHeaderBytes, h.bodyLen}, sBack));
    EXPECT_EQ(sBack.tag, s.tag);
    EXPECT_EQ(sBack.status, s.status);
    EXPECT_EQ(sBack.last, s.last);
    EXPECT_EQ(sBack.index, s.index);
    EXPECT_EQ(sBack.token, s.token);
    EXPECT_FALSE(net::decodeStreamChunk(
        {wire.data() + net::kHeaderBytes, h.bodyLen - 1}, sBack));
}

TEST(NetServe, GenerateStreamsByteExactTokens)
{
    llm::TransformerConfig mcfg;
    mcfg.dModel = 64;
    mcfg.nHeads = 2;
    mcfg.dFf = 128;
    mcfg.nLayers = 2;
    mcfg.vocab = 96;
    mcfg.maxSeq = 96;
    mcfg.seed = 11;
    llm::TransformerModel model(mcfg);
    serve::GenerationConfig gcfg;
    gcfg.workers = 1;
    serve::GenerationScheduler sched(model, gcfg);

    NetFixture fx;
    // attachGeneration requires a not-yet-started server; rebuild the
    // front-end with the generator wired in.
    fx.net->stop();
    fx.net = std::make_unique<net::NetServer>(*fx.server);
    fx.net->attachGeneration("llm", &sched);
    fx.net->start();

    std::vector<std::int32_t> prompt{5, 40, 2, 17, 33, 8, 21};
    auto expected = model.generateReference(prompt, 12);

    net::NetClient c = fx.connect();
    // Streamed tokens must be byte-exact vs in-process generation, with
    // ordered indices and exactly one last chunk.
    std::vector<std::int32_t> got;
    std::uint32_t nextIndex = 0;
    int lastSeen = 0;
    ASSERT_TRUE(c.generate(
        "llm", prompt, 12,
        [&](const net::StreamChunkFrame &chunk) {
            EXPECT_EQ(chunk.status, 0);
            EXPECT_EQ(chunk.index, nextIndex++);
            got.push_back(chunk.token);
            lastSeen += chunk.last ? 1 : 0;
        },
        99));
    EXPECT_EQ(got, expected);
    EXPECT_EQ(lastSeen, 1);
    EXPECT_EQ(fx.net->streamChunksOut(), 12u);

    // The collected variant agrees.
    auto collected = c.generateCollect("llm", prompt, 12, 100);
    ASSERT_TRUE(collected.has_value());
    EXPECT_EQ(*collected, expected);

    // Unknown model answers a terminal UnknownModel chunk.
    bool sawUnknown = false;
    ASSERT_TRUE(c.generate(
        "nope", prompt, 4,
        [&](const net::StreamChunkFrame &chunk) {
            EXPECT_TRUE(chunk.last);
            sawUnknown =
                chunk.status ==
                static_cast<std::uint8_t>(ServeStatus::UnknownModel);
        },
        101));
    EXPECT_TRUE(sawUnknown);

    // A bad prompt (out-of-vocab token) fails with BadInput end to end.
    std::vector<std::int32_t> bad{1, 2, 9999};
    EXPECT_FALSE(c.generateCollect("llm", bad, 4, 102).has_value());
}

} // namespace
} // namespace bbs
