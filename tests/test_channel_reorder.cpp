/**
 * @file
 * Tests for channel reordering (paper §IV-C, Fig 9) including the
 * residual-block correctness scenario that motivates output unshuffling.
 */
#include <gtest/gtest.h>

#include "core/channel_reorder.hpp"
#include "common/random.hpp"

namespace bbs {
namespace {

TEST(ChannelOrder, SensitiveChannelsComeFirst)
{
    std::vector<bool> sens = {false, true, false, true, false, false};
    ChannelOrder order = buildChannelOrder(sens);
    EXPECT_EQ(order.sensitiveCount, 2);
    EXPECT_EQ(order.originalIndex[0], 1);
    EXPECT_EQ(order.originalIndex[1], 3);
    EXPECT_EQ(order.originalIndex[2], 0);
    EXPECT_EQ(order.originalIndex[5], 5);
}

TEST(ChannelOrder, ForwardAndInverseAreConsistent)
{
    std::vector<bool> sens = {true, false, true, false};
    ChannelOrder order = buildChannelOrder(sens);
    for (std::int64_t p = 0;
         p < static_cast<std::int64_t>(order.originalIndex.size()); ++p) {
        std::int64_t orig = order.originalIndex[static_cast<std::size_t>(p)];
        EXPECT_EQ(order.reorderedPosition[static_cast<std::size_t>(orig)],
                  p);
    }
}

TEST(ChannelReorder, ReorderThenUnshuffleIsIdentity)
{
    Rng rng(1);
    Int8Tensor w(Shape{8, 16});
    for (std::int64_t i = 0; i < w.numel(); ++i)
        w.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    std::vector<bool> sens = {false, true, true, false,
                              false, true, false, false};
    ChannelOrder order = buildChannelOrder(sens);
    Int8Tensor reordered = reorderChannels(w, order);

    // Treat the reordered tensor as "outputs computed in reordered order"
    // and restore: must equal the original.
    Int32Tensor asOutput(Shape{8, 16});
    for (std::int64_t i = 0; i < w.numel(); ++i)
        asOutput.flat(i) = reordered.flat(i);
    Int32Tensor restored = unshuffleOutput(asOutput, order);
    for (std::int64_t i = 0; i < w.numel(); ++i)
        EXPECT_EQ(restored.flat(i), w.flat(i));
}

/**
 * The Fig 9(b)/(c) scenario: two weight tensors with different reorders
 * multiply the same input; a residual add of the raw (shuffled) outputs is
 * wrong, but adding the unshuffled outputs matches the reference.
 */
TEST(ChannelReorder, ResidualAddCorrectnessAfterUnshuffle)
{
    const std::int64_t K = 6, C = 4, N = 3;
    Rng rng(7);

    FloatTensor w1(Shape{K, C}), w2(Shape{K, C});
    FloatTensor x(Shape{N, C});
    for (std::int64_t i = 0; i < w1.numel(); ++i) {
        w1.flat(i) = static_cast<float>(rng.uniformInt(-5, 5));
        w2.flat(i) = static_cast<float>(rng.uniformInt(-5, 5));
    }
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x.flat(i) = static_cast<float>(rng.uniformInt(-5, 5));

    auto matmulKxN = [&](const FloatTensor &w) {
        FloatTensor y(Shape{K, N}); // output channel-major like hardware
        for (std::int64_t k = 0; k < K; ++k)
            for (std::int64_t n = 0; n < N; ++n) {
                float acc = 0.0f;
                for (std::int64_t c = 0; c < C; ++c)
                    acc += w.at(k, c) * x.at(n, c);
                y.at(k, n) = acc;
            }
        return y;
    };

    // Reference residual sum in original channel order.
    FloatTensor ref1 = matmulKxN(w1), ref2 = matmulKxN(w2);

    // Different sensitivity patterns -> different channel orders.
    std::vector<bool> sens1 = {true, false, false, true, false, false};
    std::vector<bool> sens2 = {false, false, true, false, true, true};
    ChannelOrder o1 = buildChannelOrder(sens1);
    ChannelOrder o2 = buildChannelOrder(sens2);

    auto reorderW = [&](const FloatTensor &w, const ChannelOrder &o) {
        FloatTensor out(w.shape());
        for (std::int64_t p = 0; p < K; ++p)
            for (std::int64_t c = 0; c < C; ++c)
                out.at(p, c) =
                    w.at(o.originalIndex[static_cast<std::size_t>(p)], c);
        return out;
    };

    FloatTensor y1 = matmulKxN(reorderW(w1, o1));
    FloatTensor y2 = matmulKxN(reorderW(w2, o2));

    // Naive SparTen-style same-position add is wrong whenever the two
    // orders differ.
    bool naiveWrong = false;
    FloatTensor naive(Shape{K, N});
    for (std::int64_t i = 0; i < naive.numel(); ++i)
        naive.flat(i) = y1.flat(i) + y2.flat(i);
    for (std::int64_t k = 0; k < K && !naiveWrong; ++k)
        for (std::int64_t n = 0; n < N && !naiveWrong; ++n)
            naiveWrong = naive.at(k, n) != ref1.at(k, n) + ref2.at(k, n);
    EXPECT_TRUE(naiveWrong);

    // BitVert: unshuffle each output on write-back, then add.
    FloatTensor u1 = unshuffleOutput(y1, o1);
    FloatTensor u2 = unshuffleOutput(y2, o2);
    for (std::int64_t k = 0; k < K; ++k)
        for (std::int64_t n = 0; n < N; ++n)
            EXPECT_FLOAT_EQ(u1.at(k, n) + u2.at(k, n),
                            ref1.at(k, n) + ref2.at(k, n));
}

} // namespace
} // namespace bbs
