/**
 * @file
 * Tests for max pooling and layer normalization, including finite-
 * difference gradient checks and end-to-end training through them.
 */
#include <gtest/gtest.h>

#include "nn/dataset.hpp"
#include "nn/evaluate.hpp"
#include "nn/pooling_norm.hpp"

namespace bbs {
namespace {

TEST(MaxPool, ForwardPicksWindowMaxima)
{
    MaxPool2d pool(1, 4);
    Batch x(Shape{1, 16});
    for (std::int64_t i = 0; i < 16; ++i)
        x.flat(i) = static_cast<float>(i);
    Batch y = pool.forward(x, false);
    ASSERT_EQ(y.shape().dim(1), 4);
    // Row-major 4x4 ramp: window maxima are 5, 7, 13, 15.
    EXPECT_FLOAT_EQ(y.flat(0), 5.0f);
    EXPECT_FLOAT_EQ(y.flat(1), 7.0f);
    EXPECT_FLOAT_EQ(y.flat(2), 13.0f);
    EXPECT_FLOAT_EQ(y.flat(3), 15.0f);
}

TEST(MaxPool, BackwardRoutesGradToArgmax)
{
    MaxPool2d pool(1, 4);
    Batch x(Shape{1, 16});
    for (std::int64_t i = 0; i < 16; ++i)
        x.flat(i) = static_cast<float>(i);
    pool.forward(x, /*train=*/true);
    Batch g(Shape{1, 4});
    for (std::int64_t i = 0; i < 4; ++i)
        g.flat(i) = static_cast<float>(i + 1);
    Batch gi = pool.backward(g);
    EXPECT_FLOAT_EQ(gi.flat(5), 1.0f);
    EXPECT_FLOAT_EQ(gi.flat(7), 2.0f);
    EXPECT_FLOAT_EQ(gi.flat(13), 3.0f);
    EXPECT_FLOAT_EQ(gi.flat(15), 4.0f);
    // Everything else zero.
    EXPECT_FLOAT_EQ(gi.flat(0), 0.0f);
    EXPECT_FLOAT_EQ(gi.flat(6), 0.0f);
}

TEST(LayerNorm, NormalizesPerRow)
{
    LayerNorm ln(8);
    Rng rng(3);
    Batch x(Shape{4, 8});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x.flat(i) = static_cast<float>(rng.gaussian(3.0, 2.0));
    Batch y = ln.forward(x, false);
    for (std::int64_t i = 0; i < 4; ++i) {
        double mean = 0.0, var = 0.0;
        for (std::int64_t j = 0; j < 8; ++j)
            mean += y.at(i, j);
        mean /= 8.0;
        for (std::int64_t j = 0; j < 8; ++j)
            var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
        var /= 8.0;
        EXPECT_NEAR(mean, 0.0, 1e-5);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(LayerNorm, GradientMatchesFiniteDifferences)
{
    LayerNorm ln(6);
    Rng rng(5);
    Batch x(Shape{2, 6});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x.flat(i) = static_cast<float>(rng.gaussian(0.0, 1.0));

    // Loss = sum of squares of outputs.
    Batch y = ln.forward(x, /*train=*/true);
    Batch g(y.shape());
    for (std::int64_t i = 0; i < y.numel(); ++i)
        g.flat(i) = 2.0f * y.flat(i);
    Batch gi = ln.backward(g);

    const float eps = 1e-3f;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        Batch xp = x, xm = x;
        xp.flat(i) += eps;
        xm.flat(i) -= eps;
        double lp = 0.0, lm = 0.0;
        Batch yp = ln.forward(xp, false);
        Batch ym = ln.forward(xm, false);
        for (std::int64_t k = 0; k < yp.numel(); ++k) {
            lp += yp.flat(k) * yp.flat(k);
            lm += ym.flat(k) * ym.flat(k);
        }
        double numeric = (lp - lm) / (2 * eps);
        EXPECT_NEAR(gi.flat(i), numeric, 5e-2) << "i=" << i;
    }
}

TEST(PoolingNorm, CnnWithPoolingTrains)
{
    Dataset ds = makeShapeDataset(100, 12, 404);
    Rng rng(6);
    Network net;
    net.add(std::make_unique<Conv2d>(1, 6, 3, 12, 1, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<MaxPool2d>(6, 12));
    net.add(std::make_unique<Dense>(6 * 6 * 6, 32, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(32, ds.numClasses, rng));

    double before = net.evalLoss(ds.trainX, ds.trainY);
    TrainOptions opts;
    opts.epochs = 8;
    trainNetwork(net, ds.trainX, ds.trainY, opts);
    EXPECT_LT(net.evalLoss(ds.trainX, ds.trainY), before * 0.8);
    EXPECT_GT(accuracyPercent(net, ds.testX, ds.testY), 40.0);
}

TEST(PoolingNorm, MlpWithLayerNormTrains)
{
    Dataset ds = makeClusterDataset(120, 4, 16, 505);
    Rng rng(7);
    Network net;
    net.add(std::make_unique<Dense>(ds.features, 48, rng));
    net.add(std::make_unique<LayerNorm>(48));
    net.add(std::make_unique<GeluLayer>());
    net.add(std::make_unique<Dense>(48, ds.numClasses, rng));

    TrainOptions opts;
    opts.epochs = 12;
    trainNetwork(net, ds.trainX, ds.trainY, opts);
    EXPECT_GT(accuracyPercent(net, ds.testX, ds.testY), 55.0);
}

} // namespace
} // namespace bbs
