/**
 * @file
 * Tests for the model zoo (layer shapes must aggregate to the published
 * parameter counts) and workload materialization.
 */
#include <gtest/gtest.h>

#include "models/model_zoo.hpp"
#include "models/workload.hpp"

namespace bbs {
namespace {

double
millions(std::int64_t n)
{
    return static_cast<double>(n) / 1e6;
}

TEST(ModelZoo, Vgg16WeightCountMatchesPublished)
{
    // VGG-16 has ~138.3M weights (conv + fc, biases excluded).
    EXPECT_NEAR(millions(buildVgg16().totalWeights()), 138.3, 2.0);
}

TEST(ModelZoo, ResNet34WeightCountMatchesPublished)
{
    EXPECT_NEAR(millions(buildResNet34().totalWeights()), 21.8, 1.0);
}

TEST(ModelZoo, ResNet50WeightCountMatchesPublished)
{
    EXPECT_NEAR(millions(buildResNet50().totalWeights()), 25.5, 1.5);
}

TEST(ModelZoo, ViTWeightCountsMatchPublished)
{
    // Encoder + patch embed + head (no class token / position embeddings).
    EXPECT_NEAR(millions(buildViTSmall().totalWeights()), 21.7, 1.5);
    EXPECT_NEAR(millions(buildViTBase().totalWeights()), 85.8, 4.0);
}

TEST(ModelZoo, BertEncoderWeightCountMatchesPublished)
{
    // 12 encoder blocks of BERT-base: ~85M weights (embeddings excluded).
    EXPECT_NEAR(millions(buildBertMrpc().totalWeights()), 85.6, 3.0);
}

TEST(ModelZoo, LlamaWeightCountMatchesPublished)
{
    // Llama-3-8B decoder blocks: ~7.0B (embeddings/head excluded).
    EXPECT_NEAR(millions(buildLlama3_8B().totalWeights()) / 1000.0, 6.98,
                0.3);
}

TEST(ModelZoo, BenchmarkLineupMatchesPaperTable1)
{
    auto models = benchmarkModels();
    ASSERT_EQ(models.size(), 7u);
    EXPECT_EQ(models[0].name, "VGG-16");
    EXPECT_EQ(models[6].name, "Bert-SST2");
    for (const auto &m : models) {
        EXPECT_GT(m.fp32Accuracy, 70.0);
        EXPECT_GT(m.totalMacs(), 0);
    }
}

TEST(ModelZoo, MacsAreWeightTimesPositions)
{
    LayerDesc l;
    l.kind = LayerKind::Conv;
    l.weightShape = Shape{64, 3, 3, 3};
    l.outputPositions = 224 * 224;
    EXPECT_EQ(l.macs(), 64 * 3 * 3 * 3 * 224 * 224);
}

TEST(Workload, MaterializationIsDeterministic)
{
    ModelDesc m = buildResNet34();
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 50000;
    MaterializedModel a = materializeModel(m, opts);
    MaterializedModel b = materializeModel(m, opts);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t i = 0; i < a.layers.size(); ++i) {
        const auto &ta = a.layers[i].weights.values;
        const auto &tb = b.layers[i].weights.values;
        ASSERT_EQ(ta.numel(), tb.numel());
        for (std::int64_t j = 0; j < ta.numel(); ++j)
            EXPECT_EQ(ta.flat(j), tb.flat(j));
    }
}

TEST(Workload, ChannelCapKeepsWholeChannels)
{
    ModelDesc m = buildVgg16();
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 100000;
    MaterializedModel mm = materializeModel(m, opts);
    for (const auto &l : mm.layers) {
        EXPECT_LE(l.weights.values.numel(),
                  opts.maxWeightsPerLayer +
                      l.desc.weightShape.channelSize());
        // Channel size preserved (whole channels kept).
        EXPECT_EQ(l.weights.values.shape().channelSize(),
                  l.desc.weightShape.channelSize());
    }
}

TEST(Workload, ScalesArePerChannel)
{
    ModelDesc m = buildResNet50();
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 30000;
    MaterializedModel mm = materializeModel(m, opts);
    for (const auto &l : mm.layers)
        EXPECT_EQ(static_cast<std::int64_t>(l.weights.scales.size()),
                  l.weights.values.shape().dim(0));
}

TEST(ModelZoo, LookupByName)
{
    EXPECT_EQ(modelByName("ResNet-50").name, "ResNet-50");
    EXPECT_EQ(modelByName("Llama-3-8B").layers.size(), 7u);
}

} // namespace
} // namespace bbs
