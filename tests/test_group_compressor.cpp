/**
 * @file
 * Tests for bit-level binary pruning: rounded column averaging (paper
 * Fig 4), zero-point shifting (Fig 5 / Algorithm 1) and the BBS encoding.
 */
#include <gtest/gtest.h>

#include "common/bit_utils.hpp"
#include "common/random.hpp"
#include "core/group_compressor.hpp"

namespace bbs {
namespace {

std::vector<std::int8_t>
randomGroup(Rng &rng, std::size_t n)
{
    std::vector<std::int8_t> g(n);
    for (auto &v : g)
        v = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return g;
}

double
groupSseAgainst(std::span<const std::int8_t> group,
                const std::vector<std::int8_t> &rec)
{
    double sse = 0.0;
    for (std::size_t i = 0; i < group.size(); ++i) {
        double d = static_cast<double>(rec[i]) -
                   static_cast<double>(group[i]);
        sse += d * d;
    }
    return sse;
}

TEST(RoundedAveraging, ReproducesPaperFig4)
{
    // Fig 4: group {-11, 20, -57, 13}, 4 sparse columns total:
    // 1 redundant column + 3 averaged low columns, constant 5, and the
    // compressed values decode to {-11, 21, -59, 13}.
    std::vector<std::int8_t> group = {-11, 20, -57, 13};
    CompressedGroup cg = compressGroupRoundedAveraging(group, 4);
    EXPECT_EQ(cg.meta.numRedundantColumns, 1);
    EXPECT_EQ(cg.prunedColumns, 3);
    EXPECT_EQ(cg.storedBits, 4);
    EXPECT_EQ(cg.meta.constant, 5);

    std::vector<std::int8_t> rec = cg.decompress();
    EXPECT_EQ(rec[0], -11);
    EXPECT_EQ(rec[1], 21);
    EXPECT_EQ(rec[2], -59);
    EXPECT_EQ(rec[3], 13);
}

TEST(ZeroPointShifting, MatchesPaperFig5Quality)
{
    // Fig 5: group {-7, 1, -20, 81}, 4 sparse columns via zero-point
    // shifting. The paper's example uses shift -14 giving values
    // {-2, -2, -18, 78}; the optimal search must do at least as well.
    std::vector<std::int8_t> group = {-7, 1, -20, 81};
    std::vector<std::int8_t> paperResult = {-2, -2, -18, 78};
    double paperSse = groupSseAgainst(group, paperResult);

    CompressedGroup cg = compressGroupZeroPointShifting(group, 4);
    std::vector<std::int8_t> rec = cg.decompress();
    EXPECT_LE(groupSseAgainst(group, rec), paperSse + 1e-9);
    EXPECT_EQ(cg.storedBits, 4);
    EXPECT_EQ(cg.meta.numRedundantColumns + cg.prunedColumns, 4);
}

TEST(Metadata, PackUnpackRoundTrip)
{
    for (int r = 0; r <= 3; ++r) {
        for (std::int32_t c = 0; c < 64; ++c) {
            GroupMetadata m{r, c};
            GroupMetadata back = GroupMetadata::unpack(
                m.pack(PruneStrategy::RoundedAveraging),
                PruneStrategy::RoundedAveraging);
            EXPECT_EQ(back.numRedundantColumns, r);
            EXPECT_EQ(back.constant, c);
        }
        for (std::int32_t c = -32; c < 32; ++c) {
            GroupMetadata m{r, c};
            GroupMetadata back = GroupMetadata::unpack(
                m.pack(PruneStrategy::ZeroPointShifting),
                PruneStrategy::ZeroPointShifting);
            EXPECT_EQ(back.numRedundantColumns, r);
            EXPECT_EQ(back.constant, c);
        }
    }
}

struct CompressorParam
{
    PruneStrategy strategy;
    int targetColumns;
    std::size_t groupSize;
};

class CompressorProperty
    : public ::testing::TestWithParam<CompressorParam>
{
};

TEST_P(CompressorProperty, DecompressionIsConsistentAndEncodable)
{
    auto [strategy, target, n] = GetParam();
    Rng rng(0xabc + target + n);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<std::int8_t> group = randomGroup(rng, n);
        CompressedGroup cg = compressGroup(group, target, strategy);

        // Invariant: pruned + redundant = target; storedBits consistent.
        EXPECT_EQ(cg.meta.numRedundantColumns + cg.prunedColumns, target);
        EXPECT_EQ(cg.storedBits, kWeightBits - target);
        EXPECT_LE(cg.meta.numRedundantColumns, kMaxRedundantColumns);

        // Stored values fit in storedBits.
        for (std::int8_t s : cg.stored) {
            EXPECT_GE(s, -(1 << (cg.storedBits - 1)));
            EXPECT_LE(s, (1 << (cg.storedBits - 1)) - 1);
        }

        // Metadata survives the 8-bit encoding.
        GroupMetadata back =
            GroupMetadata::unpack(cg.meta.pack(strategy), strategy);
        EXPECT_EQ(back.numRedundantColumns, cg.meta.numRedundantColumns);
        EXPECT_EQ(back.constant, cg.meta.constant);

        // Decompression stays in INT8 and is idempotent: re-compressing
        // the reconstruction must be lossless.
        std::vector<std::int8_t> rec = cg.decompress();
        ASSERT_EQ(rec.size(), group.size());
        CompressedGroup cg2 = compressGroup(rec, target, strategy);
        std::vector<std::int8_t> rec2 = cg2.decompress();
        EXPECT_EQ(rec2, rec);

        // Error bound: each weight moves at most the span of the pruned
        // low columns plus clipping slack at the extremes.
        double sse = groupSseAgainst(group, rec);
        double maxPerWeight = (1 << target) * (1 << target);
        EXPECT_LE(sse, maxPerWeight * static_cast<double>(n) * 4.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndTargets, CompressorProperty,
    ::testing::Values(
        CompressorParam{PruneStrategy::RoundedAveraging, 0, 32},
        CompressorParam{PruneStrategy::RoundedAveraging, 2, 32},
        CompressorParam{PruneStrategy::RoundedAveraging, 4, 32},
        CompressorParam{PruneStrategy::RoundedAveraging, 6, 32},
        CompressorParam{PruneStrategy::RoundedAveraging, 2, 16},
        CompressorParam{PruneStrategy::RoundedAveraging, 3, 7},
        CompressorParam{PruneStrategy::ZeroPointShifting, 0, 32},
        CompressorParam{PruneStrategy::ZeroPointShifting, 2, 32},
        CompressorParam{PruneStrategy::ZeroPointShifting, 4, 32},
        CompressorParam{PruneStrategy::ZeroPointShifting, 6, 32},
        CompressorParam{PruneStrategy::ZeroPointShifting, 4, 16},
        CompressorParam{PruneStrategy::ZeroPointShifting, 3, 7}));

TEST(ZeroPointShifting, NeverWorseThanPlainTruncation)
{
    // Shift 0 (constant 0) with plain low-column zeroing is inside the
    // search space, so the optimum can never lose to it.
    Rng rng(77);
    for (int iter = 0; iter < 100; ++iter) {
        std::vector<std::int8_t> group = randomGroup(rng, 32);
        int target = 4;
        CompressedGroup cg = compressGroupZeroPointShifting(group, target);

        // Plain truncation baseline.
        double truncSse = 0.0;
        for (std::int8_t w : group) {
            std::int32_t t = (static_cast<std::int32_t>(w) >> target)
                             << target;
            truncSse += static_cast<double>(w - t) *
                        static_cast<double>(w - t);
        }
        EXPECT_LE(groupSse(group, cg), truncSse + 1e-9);
    }
}

TEST(ZeroPointShifting, BeatsRoundedAveragingAtEagerCompression)
{
    // The paper's Fig 6 claim: for 4 pruned columns, zero-point shifting
    // achieves lower error than rounded averaging on realistic groups.
    Rng rng(99);
    double sseZp = 0.0, sseRa = 0.0;
    for (int iter = 0; iter < 300; ++iter) {
        std::vector<std::int8_t> group(32);
        for (auto &v : group)
            v = static_cast<std::int8_t>(
                clampToBits(static_cast<std::int32_t>(
                    std::lround(rng.gaussian(0.0, 25.0))), 8));
        sseZp += groupSse(group, compressGroupZeroPointShifting(group, 4));
        sseRa += groupSse(group, compressGroupRoundedAveraging(group, 4));
    }
    EXPECT_LT(sseZp, sseRa);
}

TEST(RoundedAveraging, ConstantIsRoundedMeanOfLowBits)
{
    std::vector<std::int8_t> group = {7, 6, 5, 4}; // low 2 bits: 3,2,1,0
    CompressedGroup cg = compressGroupRoundedAveraging(group, 2);
    // No redundant pruning is possible against 2-bit target? Small values
    // have 3 redundant columns, capped by the target to 2 -> k = 0.
    // Force averaging with a large member instead.
    std::vector<std::int8_t> g2 = {127, 126, 125, 124};
    CompressedGroup cg2 = compressGroupRoundedAveraging(g2, 2);
    EXPECT_EQ(cg2.meta.numRedundantColumns, 0);
    EXPECT_EQ(cg2.prunedColumns, 2);
    // Low bits 3,2,1,0 -> mean 1.5 -> rounds to 2.
    EXPECT_EQ(cg2.meta.constant, 2);
    (void)cg;
}

TEST(Compressor, TargetZeroIsLossless)
{
    Rng rng(5);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<std::int8_t> group = randomGroup(rng, 32);
        for (auto strategy : {PruneStrategy::RoundedAveraging,
                              PruneStrategy::ZeroPointShifting}) {
            CompressedGroup cg = compressGroup(group, 0, strategy);
            std::vector<std::int8_t> rec = cg.decompress();
            for (std::size_t i = 0; i < group.size(); ++i)
                EXPECT_EQ(rec[i], group[i]);
        }
    }
}

TEST(Compressor, StorageBitsAccounting)
{
    std::vector<std::int8_t> group(32, 1);
    CompressedGroup cg = compressGroupRoundedAveraging(group, 4);
    // 32 weights x 4 stored bits + 8 metadata bits.
    EXPECT_EQ(cg.storageBits(), 32 * 4 + 8);
}

} // namespace
} // namespace bbs
