/**
 * @file
 * Tests for BBS sparsity measurement (paper §III-A, Fig 3).
 */
#include <gtest/gtest.h>

#include "core/bbs.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"

namespace bbs {
namespace {

Int8Tensor
randomCodes(Shape shape, std::uint64_t seed)
{
    Rng rng(seed);
    WeightDistribution dist;
    FloatTensor w = generateWeights(shape, dist, rng);
    return quantizePerChannel(w, 8).values;
}

class BbsSparsityProperty : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(BbsSparsityProperty, AtLeastHalfForAnyVectorSize)
{
    std::int64_t vs = GetParam();
    Int8Tensor codes = randomCodes(Shape{32, 256}, 17);
    EXPECT_GE(bbsSparsity(codes, vs), 0.5);
}

INSTANTIATE_TEST_SUITE_P(VectorSizes, BbsSparsityProperty,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(BbsSparsity, ExceedsZeroBitSparsityOfBothFormats)
{
    // The paper's Fig 3 ordering on quantized DNN weights:
    // value << bit(2's comp) < BBS, and BBS >= sign-magnitude bit sparsity
    // is typical for Gaussian weights at vector size 8.
    Int8Tensor codes = randomCodes(Shape{64, 512}, 23);
    double value = valueSparsity(codes);
    double twos = bitSparsityTwosComplement(codes);
    double bbs = bbsSparsity(codes, 8);
    EXPECT_LT(value, 0.10);
    EXPECT_GT(twos, 0.40);
    EXPECT_GT(bbs, twos);
    EXPECT_GE(bbs, 0.5);
}

TEST(BbsSparsity, SignMagnitudeBeatsTwosComplementOnSmallWeights)
{
    // Gaussian-like weights are mostly small; sign-magnitude zeroes the
    // high columns of negative values too (paper §II-B).
    Int8Tensor codes = randomCodes(Shape{64, 512}, 29);
    EXPECT_GT(bitSparsitySignMagnitude(codes),
              bitSparsityTwosComplement(codes));
}

TEST(BbsSparsity, AllZerosAndAllOnesAreFullySparse)
{
    Int8Tensor zeros(Shape{64});
    EXPECT_DOUBLE_EQ(bbsSparsity(zeros, 8), 1.0);
    EXPECT_DOUBLE_EQ(bitSparsityTwosComplement(zeros), 1.0);

    Int8Tensor minusOnes(Shape{64});
    for (std::int64_t i = 0; i < 64; ++i)
        minusOnes.flat(i) = -1;
    // All bits are one: zero-bit sparsity collapses, BBS stays perfect.
    EXPECT_DOUBLE_EQ(bitSparsityTwosComplement(minusOnes), 0.0);
    EXPECT_DOUBLE_EQ(bbsSparsity(minusOnes, 8), 1.0);
}

TEST(BbsSparsity, GroupHelperAgreesWithTensorVersion)
{
    Int8Tensor codes = randomCodes(Shape{1, 8}, 31);
    std::vector<std::int8_t> group(codes.data().begin(),
                                   codes.data().end());
    EXPECT_DOUBLE_EQ(bbsSparsityGroup(group), bbsSparsity(codes, 8));
}

TEST(EffectualBits, BbsWorkBoundedByZeroSkipWork)
{
    Int8Tensor codes = randomCodes(Shape{32, 128}, 37);
    EffectualBitStats st = effectualBitStats(codes, 8);
    EXPECT_LE(st.meanBbs, st.meanZeroSkip + 1e-12);
    EXPECT_LE(st.maxBbs, 4.0);      // never more than half of 8
    EXPECT_LE(st.maxZeroSkip, 8.0); // can be the full column
    EXPECT_GT(st.meanBbs, 0.0);
}

TEST(EffectualBits, BbsTightensTheWorstCase)
{
    // Adversarial all-ones columns: zero-skip max work is the whole
    // column, BBS max work is zero.
    Int8Tensor minusOnes(Shape{64});
    for (std::int64_t i = 0; i < 64; ++i)
        minusOnes.flat(i) = -1;
    EffectualBitStats st = effectualBitStats(minusOnes, 8);
    EXPECT_DOUBLE_EQ(st.maxZeroSkip, 8.0);
    EXPECT_DOUBLE_EQ(st.maxBbs, 0.0);
}

} // namespace
} // namespace bbs
