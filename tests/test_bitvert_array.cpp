/**
 * @file
 * Tests for the functional whole-array BitVert simulation: outputs must be
 * bit-exact against an integer GEMM over the pruned weights, cycles must
 * follow the deterministic BBS latency, and the residual-block scenario of
 * §IV-C must come out correct end to end.
 */
#include <gtest/gtest.h>

#include "accel/bitvert_array.hpp"
#include "core/compressed_tensor.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"

namespace bbs {
namespace {

struct LayerData
{
    Int8Tensor weights;
    std::vector<float> scales;
};

LayerData
makeLayer(std::int64_t k, std::int64_t c, std::uint64_t seed)
{
    Rng rng(seed);
    WeightDistribution dist;
    dist.outlierChannelFraction = 0.1;
    FloatTensor w = generateWeights(Shape{k, c}, dist, rng);
    QuantizedTensor q = quantizePerChannel(w, 8);
    return {q.values, q.scales};
}

Int8Tensor
makeActs(std::int64_t c, std::int64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor acts(Shape{c, n});
    for (std::int64_t i = 0; i < acts.numel(); ++i)
        acts.flat(i) =
            static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return acts;
}

/** Pruned weights the array effectively computes with. */
Int8Tensor
effectiveWeights(const LayerData &layer, const GlobalPruneConfig &cfg)
{
    std::vector<PrunableLayer> model(1);
    model[0].name = "l";
    model[0].codes = layer.weights;
    model[0].scales = layer.scales;
    PrunedModel pm = globalBinaryPrune(model, cfg);
    return pm.layers[0].codes;
}

TEST(BitVertArray, OutputsExactlyMatchGemmOnPrunedWeights)
{
    LayerData layer = makeLayer(64, 96, 11);
    Int8Tensor acts = makeActs(96, 5, 12);
    GlobalPruneConfig cfg = moderateConfig();

    BitVertArrayResult res =
        runBitVertArray(layer.weights, layer.scales, acts, cfg);
    Int32Tensor ref = gemmReference(effectiveWeights(layer, cfg), acts);

    ASSERT_TRUE(res.outputs.shape() == ref.shape());
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        EXPECT_EQ(res.outputs.flat(i), ref.flat(i)) << "i=" << i;
}

TEST(BitVertArray, BothStrategiesAndOperatingPointsAreExact)
{
    LayerData layer = makeLayer(32, 64, 21);
    Int8Tensor acts = makeActs(64, 3, 22);
    for (const GlobalPruneConfig &cfg :
         {conservativeConfig(), moderateConfig()}) {
        BitVertArrayResult res =
            runBitVertArray(layer.weights, layer.scales, acts, cfg);
        Int32Tensor ref =
            gemmReference(effectiveWeights(layer, cfg), acts);
        for (std::int64_t i = 0; i < ref.numel(); ++i)
            ASSERT_EQ(res.outputs.flat(i), ref.flat(i));
    }
}

TEST(BitVertArray, CyclesFollowDeterministicBbsLatency)
{
    // All-normal channels (beta 0): every 32-group takes (8 - target)
    // cycles per 16-weight half; cycles = channels/32-tiles * groups *
    // halves * (8 - target).
    LayerData layer = makeLayer(32, 64, 31);
    GlobalPruneConfig cfg = moderateConfig();
    cfg.beta = 0.0;
    Int8Tensor acts = makeActs(64, 2, 32);
    BitVertArrayResult res =
        runBitVertArray(layer.weights, layer.scales, acts, cfg);
    // 1 tile of 32 channels; 2 groups of 32 per channel; 2 halves each;
    // 4 cycles per half.
    EXPECT_EQ(res.cycles, 2 * 2 * 4);
}

TEST(BitVertArray, SensitiveChannelsCostFullPrecisionCycles)
{
    LayerData layer = makeLayer(32, 64, 41);
    GlobalPruneConfig cfg = moderateConfig();
    cfg.beta = 1.0; // everything sensitive
    Int8Tensor acts = makeActs(64, 2, 42);
    BitVertArrayResult res =
        runBitVertArray(layer.weights, layer.scales, acts, cfg);
    EXPECT_EQ(res.cycles, 2 * 2 * 8);

    // And the outputs equal the unpruned GEMM.
    Int32Tensor ref = gemmReference(layer.weights, acts);
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        ASSERT_EQ(res.outputs.flat(i), ref.flat(i));
}

TEST(BitVertArray, ResidualAddIsCorrectAcrossTwoReorderedLayers)
{
    // The §IV-C scenario end to end: two weight tensors with different
    // sensitivity patterns process the same input; because each output is
    // unshuffled on write-back, the element-wise residual add matches the
    // reference.
    LayerData a = makeLayer(64, 64, 51);
    LayerData b = makeLayer(64, 64, 52);
    Int8Tensor acts = makeActs(64, 4, 53);
    GlobalPruneConfig cfg = conservativeConfig();

    BitVertArrayResult ra =
        runBitVertArray(a.weights, a.scales, acts, cfg);
    BitVertArrayResult rb =
        runBitVertArray(b.weights, b.scales, acts, cfg);
    Int32Tensor refA = gemmReference(effectiveWeights(a, cfg), acts);
    Int32Tensor refB = gemmReference(effectiveWeights(b, cfg), acts);

    for (std::int64_t i = 0; i < refA.numel(); ++i)
        EXPECT_EQ(ra.outputs.flat(i) + rb.outputs.flat(i),
                  refA.flat(i) + refB.flat(i));
}

TEST(BitVertArray, CompressionShrinksStreamedWeights)
{
    LayerData layer = makeLayer(64, 128, 61);
    Int8Tensor acts = makeActs(128, 2, 62);
    GlobalPruneConfig mod = moderateConfig();
    GlobalPruneConfig none = moderateConfig();
    none.beta = 1.0;
    BitVertArrayResult compressed =
        runBitVertArray(layer.weights, layer.scales, acts, mod);
    BitVertArrayResult dense =
        runBitVertArray(layer.weights, layer.scales, acts, none);
    EXPECT_LT(compressed.weightBits, dense.weightBits);
    EXPECT_LT(compressed.cycles, dense.cycles);
}

} // namespace
} // namespace bbs
