/**
 * @file
 * Tests for the bit-packed BBS memory layout: serialize/deserialize
 * round-trips must preserve the decompressed weights exactly, and the
 * serialized size must match the effective-bits accounting.
 */
#include <gtest/gtest.h>

#include "core/serialization.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"

namespace bbs {
namespace {

Int8Tensor
randomCodes(Shape shape, std::uint64_t seed)
{
    Rng rng(seed);
    WeightDistribution dist;
    FloatTensor w = generateWeights(shape, dist, rng);
    return quantizePerChannel(w, 8).values;
}

struct SerParam
{
    PruneStrategy strategy;
    int targetColumns;
    std::int64_t numel;
};

class SerializationRoundTrip : public ::testing::TestWithParam<SerParam>
{
};

TEST_P(SerializationRoundTrip, PreservesDecompressedValues)
{
    auto [strategy, target, numel] = GetParam();
    Int8Tensor codes = randomCodes(Shape{numel}, 17 + numel);
    CompressedTensor ct =
        CompressedTensor::compress(codes, 32, target, strategy);
    Int8Tensor expected = ct.decompress();

    SerializedTensor blob = serializeCompressed(ct);
    CompressedTensor back = deserializeCompressed(
        blob, codes.shape(), 32, target, strategy);
    Int8Tensor actual = back.decompress();

    ASSERT_EQ(actual.numel(), expected.numel());
    for (std::int64_t i = 0; i < expected.numel(); ++i)
        EXPECT_EQ(actual.flat(i), expected.flat(i)) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SerializationRoundTrip,
    ::testing::Values(
        SerParam{PruneStrategy::RoundedAveraging, 2, 256},
        SerParam{PruneStrategy::RoundedAveraging, 4, 1024},
        SerParam{PruneStrategy::ZeroPointShifting, 4, 256},
        SerParam{PruneStrategy::ZeroPointShifting, 6, 1024},
        SerParam{PruneStrategy::ZeroPointShifting, 4, 40})); // short tail

TEST(Serialization, SizeMatchesEffectiveBits)
{
    Int8Tensor codes = randomCodes(Shape{32 * 64}, 5);
    CompressedTensor ct = CompressedTensor::compress(
        codes, 32, 4, PruneStrategy::ZeroPointShifting);
    SerializedTensor blob = serializeCompressed(ct);
    // 4 header bytes + 64 metadata bytes + 64 groups x 32 weights x 4
    // bits (= 16 bytes, byte-aligned exactly).
    EXPECT_EQ(blob.bytes.size(), 4u + 64u + 64u * 16u);
    EXPECT_EQ(serializedBytes(ct),
              static_cast<std::int64_t>(blob.bytes.size()));
}

TEST(Serialization, GroupOffsetsAreMonotone)
{
    Int8Tensor codes = randomCodes(Shape{32 * 8}, 7);
    CompressedTensor ct = CompressedTensor::compress(
        codes, 32, 2, PruneStrategy::RoundedAveraging);
    SerializedTensor blob = serializeCompressed(ct);
    ASSERT_EQ(blob.groupOffsets.size(), 8u);
    for (std::size_t i = 1; i < blob.groupOffsets.size(); ++i)
        EXPECT_GT(blob.groupOffsets[i], blob.groupOffsets[i - 1]);
}

} // namespace
} // namespace bbs
