/**
 * @file
 * Tests for the bit-packed BBS memory layout: serialize/deserialize
 * round-trips must preserve the decompressed weights exactly, and the
 * serialized size must match the effective-bits accounting.
 */
#include <gtest/gtest.h>

#include "core/serialization.hpp"
#include "engine/engine.hpp"
#include "gemm/compressed_gemm.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"

namespace bbs {
namespace {

Int8Tensor
randomCodes(Shape shape, std::uint64_t seed)
{
    Rng rng(seed);
    WeightDistribution dist;
    FloatTensor w = generateWeights(shape, dist, rng);
    return quantizePerChannel(w, 8).values;
}

struct SerParam
{
    PruneStrategy strategy;
    int targetColumns;
    std::int64_t numel;
};

class SerializationRoundTrip : public ::testing::TestWithParam<SerParam>
{
};

TEST_P(SerializationRoundTrip, PreservesDecompressedValues)
{
    auto [strategy, target, numel] = GetParam();
    Int8Tensor codes = randomCodes(Shape{numel}, 17 + numel);
    CompressedTensor ct =
        CompressedTensor::compress(codes, 32, target, strategy);
    Int8Tensor expected = ct.decompress();

    SerializedTensor blob = serializeCompressed(ct);
    CompressedTensor back = deserializeCompressed(
        blob, codes.shape(), 32, target, strategy);
    Int8Tensor actual = back.decompress();

    ASSERT_EQ(actual.numel(), expected.numel());
    for (std::int64_t i = 0; i < expected.numel(); ++i)
        EXPECT_EQ(actual.flat(i), expected.flat(i)) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SerializationRoundTrip,
    ::testing::Values(
        SerParam{PruneStrategy::RoundedAveraging, 2, 256},
        SerParam{PruneStrategy::RoundedAveraging, 4, 1024},
        SerParam{PruneStrategy::ZeroPointShifting, 4, 256},
        SerParam{PruneStrategy::ZeroPointShifting, 6, 1024},
        SerParam{PruneStrategy::ZeroPointShifting, 4, 40})); // short tail

/**
 * Golden end-to-end round trip through the GEMM path: the serializer's
 * only real consumer is a deployment that reloads the DRAM image and
 * *executes* it, so pin compressed-GEMM outputs bit-identical between the
 * freshly-compressed weights and the serialize->deserialize copy (and
 * both against the dense reference on the decompressed weights).
 */
class SerializationGemmRoundTrip : public ::testing::TestWithParam<SerParam>
{
};

TEST_P(SerializationGemmRoundTrip, GemmCompressedBitIdenticalAfterReload)
{
    auto [strategy, target, numel] = GetParam();
    const std::int64_t rows = 8;
    ASSERT_EQ(numel % (rows * 32), 0) << "pick numel = rows * k * 32";
    Shape shape{rows, numel / rows};
    Int8Tensor codes = randomCodes(shape, 91 + numel);
    CompressedTensor ct =
        CompressedTensor::compress(codes, 32, target, strategy);

    SerializedTensor blob = serializeCompressed(ct);
    CompressedTensor back =
        deserializeCompressed(blob, shape, 32, target, strategy);

    CompressedRowPlanes pre = CompressedRowPlanes::prepare(ct);
    CompressedRowPlanes post = CompressedRowPlanes::prepare(back);

    Rng rng(7 + static_cast<std::uint64_t>(target));
    Int8Tensor acts(Shape{5, shape.channelSize()});
    for (std::int64_t i = 0; i < acts.numel(); ++i)
        acts.flat(i) =
            static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    BitSerialMatrix packed = BitSerialMatrix::pack(acts);

    Int32Tensor before = engine::matmulCompressed(pre, packed);
    Int32Tensor after = engine::matmulCompressed(post, packed);
    ASSERT_TRUE(before.shape() == after.shape());
    for (std::int64_t i = 0; i < before.numel(); ++i)
        ASSERT_EQ(before.flat(i), after.flat(i)) << "i=" << i;

    // Both must also equal the dense reference over the reloaded
    // weights — reload-then-execute is the deployment path.
    Int8Tensor dec = back.decompress();
    for (std::int64_t r = 0; r < acts.shape().dim(0); ++r)
        for (std::int64_t k = 0; k < rows; ++k) {
            std::int64_t ref = 0;
            for (std::int64_t c = 0; c < shape.channelSize(); ++c)
                ref += static_cast<std::int64_t>(acts.at(r, c)) *
                       static_cast<std::int64_t>(dec.at(k, c));
            ASSERT_EQ(static_cast<std::int64_t>(after.at(r, k)), ref)
                << "r=" << r << " k=" << k;
        }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SerializationGemmRoundTrip,
    ::testing::Values(
        SerParam{PruneStrategy::RoundedAveraging, 0, 8 * 2 * 32},
        SerParam{PruneStrategy::RoundedAveraging, 3, 8 * 4 * 32},
        SerParam{PruneStrategy::ZeroPointShifting, 4, 8 * 4 * 32},
        SerParam{PruneStrategy::ZeroPointShifting, 6, 8 * 8 * 32}));

TEST(Serialization, SizeMatchesEffectiveBits)
{
    Int8Tensor codes = randomCodes(Shape{32 * 64}, 5);
    CompressedTensor ct = CompressedTensor::compress(
        codes, 32, 4, PruneStrategy::ZeroPointShifting);
    SerializedTensor blob = serializeCompressed(ct);
    // 4 header bytes + 64 metadata bytes + 64 groups x 32 weights x 4
    // bits (= 16 bytes, byte-aligned exactly).
    EXPECT_EQ(blob.bytes.size(), 4u + 64u + 64u * 16u);
    EXPECT_EQ(serializedBytes(ct),
              static_cast<std::int64_t>(blob.bytes.size()));
}

TEST(Serialization, GroupOffsetsAreMonotone)
{
    Int8Tensor codes = randomCodes(Shape{32 * 8}, 7);
    CompressedTensor ct = CompressedTensor::compress(
        codes, 32, 2, PruneStrategy::RoundedAveraging);
    SerializedTensor blob = serializeCompressed(ct);
    ASSERT_EQ(blob.groupOffsets.size(), 8u);
    for (std::size_t i = 1; i < blob.groupOffsets.size(); ++i)
        EXPECT_GT(blob.groupOffsets[i], blob.groupOffsets[i - 1]);
}

} // namespace
} // namespace bbs
