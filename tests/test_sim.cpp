/**
 * @file
 * Tests for the simulator framework: wavefront aggregation, memory model,
 * result aggregation and model preparation.
 */
#include <gtest/gtest.h>

#include "models/model_zoo.hpp"
#include "models/workload.hpp"
#include "sim/dataflow.hpp"
#include "sim/memory_model.hpp"
#include "sim/prepared_model.hpp"
#include "sim/result.hpp"

namespace bbs {
namespace {

TEST(Dataflow, SingleColumnSumsLatencies)
{
    std::vector<std::vector<GroupWork>> work(1);
    work[0] = {{3.0, 10.0, 2.0}, {5.0, 20.0, 0.0}};
    WavefrontAggregate agg = aggregateWavefronts(work, 1, 4);
    EXPECT_DOUBLE_EQ(agg.cycles, 8.0);
    EXPECT_DOUBLE_EQ(agg.usefulLaneCycles, 30.0);
    EXPECT_DOUBLE_EQ(agg.intraStallLaneCycles, 2.0);
    EXPECT_DOUBLE_EQ(agg.interStallLaneCycles, 0.0);
}

TEST(Dataflow, LockStepTakesTheMaxAcrossColumns)
{
    // Two channels in one tile: wavefront latency is the max; the faster
    // channel accrues inter-PE stall.
    std::vector<std::vector<GroupWork>> work(2);
    work[0] = {{8.0, 0.0, 0.0}};
    work[1] = {{2.0, 0.0, 0.0}};
    WavefrontAggregate agg = aggregateWavefronts(work, 2, 4);
    EXPECT_DOUBLE_EQ(agg.cycles, 8.0);
    EXPECT_DOUBLE_EQ(agg.interStallLaneCycles, (8.0 - 2.0) * 4);
}

TEST(Dataflow, ChannelsBeyondColumnsFormNewTiles)
{
    std::vector<std::vector<GroupWork>> work(4);
    for (auto &w : work)
        w = {{4.0, 0.0, 0.0}};
    // 2 columns -> 2 tiles, each 4 cycles.
    WavefrontAggregate agg = aggregateWavefronts(work, 2, 4);
    EXPECT_DOUBLE_EQ(agg.cycles, 8.0);
}

TEST(Dataflow, MissingGroupsCountAsFullStall)
{
    std::vector<std::vector<GroupWork>> work(2);
    work[0] = {{4.0, 0.0, 0.0}, {4.0, 0.0, 0.0}};
    work[1] = {{4.0, 0.0, 0.0}}; // one group fewer
    WavefrontAggregate agg = aggregateWavefronts(work, 2, 4);
    EXPECT_DOUBLE_EQ(agg.cycles, 8.0);
    EXPECT_DOUBLE_EQ(agg.interStallLaneCycles, 4.0 * 4);
}

TEST(MemoryModel, CyclesAndEnergyScaleWithTraffic)
{
    SimConfig cfg;
    MemoryTraffic t;
    t.weightBits = 8000.0;
    t.inputActBits = 1000.0;
    t.outputActBits = 1000.0;
    t.sramBytes = 500.0;
    EXPECT_DOUBLE_EQ(dramCycles(t, cfg),
                     10000.0 / 8.0 / cfg.dramBytesPerCycle);
    EXPECT_DOUBLE_EQ(dramEnergyPj(t, cfg), 10000.0 * cfg.dramPjPerBit);
    EXPECT_DOUBLE_EQ(sramEnergyPj(t, cfg), 500.0 * cfg.sramPjPerByte);
}

TEST(Result, ModelSimAggregatesLayers)
{
    ModelSim ms;
    LayerSim a;
    a.totalCycles = 10.0;
    a.dramEnergyPj = 5.0;
    a.coreEnergyPj = 2.0;
    LayerSim b;
    b.totalCycles = 20.0;
    b.sramEnergyPj = 3.0;
    ms.layers = {a, b};
    EXPECT_DOUBLE_EQ(ms.totalCycles(), 30.0);
    EXPECT_DOUBLE_EQ(ms.totalEnergyPj(), 10.0);
    EXPECT_DOUBLE_EQ(ms.offChipEnergyPj(), 5.0);
    EXPECT_DOUBLE_EQ(ms.onChipEnergyPj(), 5.0);
    EXPECT_DOUBLE_EQ(ms.edp(), 300.0);
}

TEST(PreparedModel, ActivationDensityFollowsLayerKind)
{
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 20000;
    MaterializedModel vgg = materializeModel(buildVgg16(), opts);
    PreparedModel pm = prepareModel(vgg);
    // conv1_1 takes the dense image; later convs take post-ReLU inputs.
    EXPECT_DOUBLE_EQ(pm.layers[0].activationDensity, 1.0);
    EXPECT_DOUBLE_EQ(pm.layers[1].activationDensity, 0.5);
}

TEST(PreparedModel, ChannelScaleReflectsSampling)
{
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 20000;
    MaterializedModel vgg = materializeModel(buildVgg16(), opts);
    PreparedModel pm = prepareModel(vgg);
    // fc6 (4096 x 25088) is heavily sampled; scale > 1 compensates.
    bool foundSampled = false;
    for (const auto &l : pm.layers)
        if (l.channelScale > 1.0)
            foundSampled = true;
    EXPECT_TRUE(foundSampled);
}

TEST(PreparedModel, SensitiveSplitOnlyWithConfig)
{
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 20000;
    MaterializedModel m = materializeModel(buildResNet34(), opts);
    PreparedModel noBbs = prepareModel(m);
    for (const auto &l : noBbs.layers)
        for (bool s : l.sensitive)
            EXPECT_FALSE(s);

    GlobalPruneConfig cfg = moderateConfig();
    PreparedModel withBbs = prepareModel(m, &cfg);
    std::int64_t sens = 0;
    for (const auto &l : withBbs.layers)
        for (bool s : l.sensitive)
            sens += s;
    EXPECT_GT(sens, 0);
}

} // namespace
} // namespace bbs
