/**
 * @file
 * Unit and property tests for the bit-manipulation primitives everything
 * else builds on.
 */
#include <gtest/gtest.h>

#include "common/bit_utils.hpp"

namespace bbs {
namespace {

TEST(BitUtils, BitOfExtractsTwosComplementBits)
{
    // -11 = 1111'0101b
    EXPECT_EQ(bitOf(-11, 0), 1);
    EXPECT_EQ(bitOf(-11, 1), 0);
    EXPECT_EQ(bitOf(-11, 2), 1);
    EXPECT_EQ(bitOf(-11, 3), 0);
    EXPECT_EQ(bitOf(-11, 4), 1);
    EXPECT_EQ(bitOf(-11, 5), 1);
    EXPECT_EQ(bitOf(-11, 6), 1);
    EXPECT_EQ(bitOf(-11, 7), 1);
}

TEST(BitUtils, Popcount8CountsLowByte)
{
    EXPECT_EQ(popcount8(0), 0);
    EXPECT_EQ(popcount8(-1), 8);
    EXPECT_EQ(popcount8(0x55), 4);
    EXPECT_EQ(popcount8(-128), 1);
}

class SignMagnitudeRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(SignMagnitudeRoundTrip, AllValuesRoundTripExceptMin)
{
    int bits = GetParam();
    std::int32_t lo = -(1 << (bits - 1));
    std::int32_t hi = (1 << (bits - 1)) - 1;
    for (std::int32_t v = lo; v <= hi; ++v) {
        std::uint32_t sm = toSignMagnitude(v, bits);
        std::int32_t back = fromSignMagnitude(sm, bits);
        if (v == lo) {
            // The most negative value saturates to -(2^(bits-1) - 1).
            EXPECT_EQ(back, -hi);
        } else {
            EXPECT_EQ(back, v) << "v=" << v << " bits=" << bits;
        }
        // Encoding stays within the declared width.
        EXPECT_LT(sm, 1u << bits);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SignMagnitudeRoundTrip,
                         ::testing::Values(2, 4, 6, 8));

TEST(BitUtils, SignMagnitudeKnownEncodings)
{
    EXPECT_EQ(toSignMagnitude(5, 8), 0x05u);
    EXPECT_EQ(toSignMagnitude(-5, 8), 0x85u);
    EXPECT_EQ(toSignMagnitude(0, 8), 0x00u);
    EXPECT_EQ(toSignMagnitude(127, 8), 0x7fu);
    EXPECT_EQ(toSignMagnitude(-127, 8), 0xffu);
}

TEST(BitUtils, EssentialBitsSignMagnitudeSmallNegativesAreSparse)
{
    // -1 in two's complement is all ones (8 essential bits); in
    // sign-magnitude it is sign + 1 bit = 2 essential bits. This asymmetry
    // is why BitWave uses sign-magnitude (paper II-B).
    EXPECT_EQ(popcount8(-1), 8);
    EXPECT_EQ(essentialBitsSignMagnitude(-1), 2);
}

TEST(BitUtils, ExtractColumnPacksGroupBits)
{
    std::vector<std::int8_t> group = {1, 0, 3, -1};
    // Bit 0: 1,0,1,1 -> 0b1101
    EXPECT_EQ(extractColumn(group, 0), 0b1101ull);
    // Bit 1: 0,0,1,1 -> 0b1100
    EXPECT_EQ(extractColumn(group, 1), 0b1100ull);
    // Bit 7: 0,0,0,1 -> 0b1000
    EXPECT_EQ(extractColumn(group, 7), 0b1000ull);
}

TEST(BitUtils, ColumnPopcountRespectsGroupSize)
{
    BitColumn col = 0xffull;
    EXPECT_EQ(columnPopcount(col, 4), 4);
    EXPECT_EQ(columnPopcount(col, 8), 8);
    EXPECT_EQ(columnPopcount(col, 64), 8);
}

class BbsEffectualProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BbsEffectualProperty, NeverExceedsHalfTheVector)
{
    int n = GetParam();
    // Exhaustive for n <= 12: every possible column.
    for (std::uint64_t col = 0; col < (1ull << n); ++col) {
        int eff = bbsEffectualBits(col, n);
        EXPECT_LE(eff, n / 2) << "col=" << col << " n=" << n;
        EXPECT_GE(eff, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(VectorSizes, BbsEffectualProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12));

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(signExtend(0b111, 3), -1);
    EXPECT_EQ(signExtend(0b011, 3), 3);
    EXPECT_EQ(signExtend(0b100, 3), -4);
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
}

TEST(BitUtils, ClampToBits)
{
    EXPECT_EQ(clampToBits(200, 8), 127);
    EXPECT_EQ(clampToBits(-200, 8), -128);
    EXPECT_EQ(clampToBits(5, 8), 5);
    EXPECT_EQ(clampToBits(8, 4), 7);
    EXPECT_EQ(clampToBits(-9, 4), -8);
}

TEST(BitUtils, RedundantColumnsOfSmallValues)
{
    // All small positive values: bits 6..4 all zero like the sign -> 3
    // redundant columns (capped).
    std::vector<std::int8_t> small = {1, 2, 3, 4};
    EXPECT_EQ(countRedundantColumns(small), 3);

    // Mixed small values around zero still share sign-extension columns.
    std::vector<std::int8_t> mixed = {-3, 2, -1, 3};
    EXPECT_EQ(countRedundantColumns(mixed), 3);

    // A large positive breaks redundancy immediately.
    std::vector<std::int8_t> large = {100, 2, 3, 4};
    EXPECT_EQ(countRedundantColumns(large), 0);
}

TEST(BitUtils, RedundantColumnsMatchPaperFig4)
{
    // Fig 4: group {-11, 20, -57, 13} has exactly 1 redundant column.
    std::vector<std::int8_t> group = {-11, 20, -57, 13};
    EXPECT_EQ(countRedundantColumns(group), 1);
}

TEST(BitUtils, RedundantColumnRemovalPreservesValue)
{
    // Removing r redundant columns means the value fits in (8 - r) bits.
    std::vector<std::int8_t> group = {-11, 20, -57, 13};
    int r = countRedundantColumns(group);
    for (std::int8_t w : group) {
        std::int32_t reduced = signExtend(
            static_cast<std::uint32_t>(static_cast<std::uint8_t>(w)),
            8 - r);
        EXPECT_EQ(reduced, w);
    }
}

} // namespace
} // namespace bbs
