/**
 * @file
 * Zero-allocation hot-path tests (common/alloc_count.hpp): linking this
 * test replaces global operator new/delete with the counting forwarders,
 * and the tests assert the serving runtime's steady-state guarantee —
 * once the per-thread buffers have grown to their high-water mark,
 * forming a batch, running the whole quantize -> GEMM -> dequant
 * forward, and completing the response futures performs ZERO heap
 * allocations — exactly what bench/micro_serve gates in CI.
 */
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/alloc_count.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "engine/engine.hpp"
#include "gemm/bit_serial_matrix.hpp"
#include "nn/int8_infer.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "serve/server.hpp"

namespace bbs {
namespace {

Int8Network
makeEngine(std::int64_t in, std::int64_t hidden, std::int64_t out,
           std::uint64_t seed)
{
    Rng rng(seed);
    Network net;
    net.add(std::make_unique<Dense>(in, hidden, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(hidden, out, rng));
    return Int8Network::fromNetwork(net, 32, 4,
                                    PruneStrategy::ZeroPointShifting);
}

Batch
randomBatch(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    Batch x(Shape{rows, cols});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x.flat(i) = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    return x;
}

// ----------------------------------------------------- counter plumbing

TEST(AllocCountTest, CountersObserveOperatorNew)
{
    std::uint64_t t0 = threadAllocCount();
    {
        std::vector<int> v(4096);
        EXPECT_GT(threadAllocCount(), t0);
    }
    // The process-wide counter only accumulates while enabled.
    bool was = allocCountingEnabled();
    setAllocCounting(false);
    std::uint64_t p0 = processAllocCount();
    { std::vector<int> v(4096); }
    EXPECT_EQ(processAllocCount(), p0);
    setAllocCounting(true);
    { std::vector<int> v(4096); }
    EXPECT_GT(processAllocCount(), p0);
    setAllocCounting(was);
}

// ------------------------------------------------ building-block reuse

TEST(HotPathTest, ResizeToAndPackIntoReuseWarmCapacity)
{
    // Tensor::resizeTo never shrinks capacity: growing once to the high
    // water then cycling smaller/equal shapes is allocation-free.
    Int8Tensor t(Shape{64, 128});
    std::uint64_t a0 = threadAllocCount();
    t.resizeTo(Shape{8, 128});
    t.resizeTo(Shape{1, 128});
    t.resizeTo(Shape{64, 128});
    EXPECT_EQ(threadAllocCount(), a0);

    // BitSerialMatrix::packInto reuses the destination's planes.
    Rng rng(0x9a7);
    Int8Tensor m(Shape{32, 128});
    for (std::int64_t i = 0; i < m.numel(); ++i)
        m.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    BitSerialMatrix warm;
    BitSerialMatrix::packInto(m, warm); // grows once
    BitSerialMatrix cold = BitSerialMatrix::pack(m);
    a0 = threadAllocCount();
    BitSerialMatrix::packInto(m, warm); // steady state: reuse
    EXPECT_EQ(threadAllocCount(), a0);
    EXPECT_EQ(warm.rows(), cold.rows());
    EXPECT_EQ(warm.cols(), cold.cols());
}

// ------------------------------------------------- forward steady state

TEST(HotPathTest, ForwardIntoIsAllocationFreeWhenWarm)
{
    Int8Network engine = makeEngine(96, 64, 10, 0xfeed);
    InferencePolicy policy{engine::Calibration::PerRow,
                           engine::PlanKind::Auto};

    Batch big = randomBatch(32, 96, 0x111);
    Batch small = randomBatch(4, 96, 0x222);
    Batch out;
    // Warm-up: grows the thread-local forward scratch (quantized input,
    // INT32 product, row scales, ping/pong activations) and the GEMM
    // arenas to the 32-row high-water mark.
    engine.forwardInto(big, policy, out);
    engine.forwardInto(small, policy, out);
    engine.forwardInto(big, policy, out);

    bool was = allocCountingEnabled();
    setAllocCounting(true);
    std::uint64_t p0 = processAllocCount();
    std::uint64_t t0 = threadAllocCount();
    engine.forwardInto(big, policy, out);
    engine.forwardInto(small, policy, out); // smaller batch reuses too
    engine.forwardInto(big, policy, out);
    std::uint64_t threadAllocs = threadAllocCount() - t0;
    std::uint64_t processAllocs = processAllocCount() - p0;
    setAllocCounting(was);
    EXPECT_EQ(threadAllocs, 0u);
    EXPECT_EQ(processAllocs, 0u); // pool workers included

    // The warm path computes the same thing as the allocating one.
    Batch fresh = engine.forward(big, policy);
    ASSERT_EQ(out.shape(), fresh.shape());
    for (std::int64_t i = 0; i < out.numel(); ++i)
        ASSERT_EQ(out.flat(i), fresh.flat(i)) << "i=" << i;
}

// ------------------------------------------------- serving steady state

TEST(HotPathTest, ServingDrainPathIsAllocationFreeWhenWarm)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("m", makeEngine(64, 48, 8, 0xbeef));
    std::shared_ptr<const Int8Network> engine = registry->find("m");

    ServerConfig cfg;
    cfg.maxBatch = 16;
    cfg.maxDelayUs = 0; // serve whatever is queued right now
    cfg.workers = 0;    // drained below, on the measuring thread
    InferenceServer server(registry, cfg);

    std::vector<std::vector<float>> pool(
        static_cast<std::size_t>(cfg.maxBatch));
    Rng rng(0xab);
    for (auto &sample : pool) {
        sample.resize(64);
        for (float &v : sample)
            v = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    }

    auto serveRound = [&](std::int64_t rows,
                          std::uint64_t *threadAllocs,
                          std::uint64_t *processAllocs) {
        std::vector<std::future<InferenceResponse>> futs;
        futs.reserve(static_cast<std::size_t>(rows));
        for (std::int64_t i = 0; i < rows; ++i)
            futs.push_back(
                server.submit("m", pool[static_cast<std::size_t>(i)]));
        bool was = allocCountingEnabled();
        if (processAllocs != nullptr)
            setAllocCounting(true);
        std::uint64_t p0 = processAllocCount();
        std::uint64_t t0 = threadAllocCount();
        for (std::int64_t served = 0; served < rows;)
            served += server.drainOnce();
        if (threadAllocs != nullptr)
            *threadAllocs = threadAllocCount() - t0;
        if (processAllocs != nullptr) {
            *processAllocs = processAllocCount() - p0;
            setAllocCounting(was);
        }
        for (auto &f : futs) {
            InferenceResponse resp = f.get();
            ASSERT_EQ(resp.status, ServeStatus::Ok);
            ASSERT_EQ(resp.logits.size(), 8u);
        }
    };

    // Warm-up: the first max-size batches grow the drain thread's batch
    // vector, forward scratch, and GEMM arenas to their high water.
    for (int round = 0; round < 3; ++round)
        serveRound(cfg.maxBatch, nullptr, nullptr);

    // Steady state: the whole drain path — batch formation, gather,
    // forward, response completion — allocates nothing, at the full
    // batch size and at smaller ones (including the batch-of-1 per-dot
    // fast path).
    for (std::int64_t rows : {cfg.maxBatch, std::int64_t{5},
                              std::int64_t{1}}) {
        std::uint64_t threadAllocs = ~0ull, processAllocs = ~0ull;
        serveRound(rows, &threadAllocs, &processAllocs);
        EXPECT_EQ(threadAllocs, 0u) << "rows=" << rows;
        EXPECT_EQ(processAllocs, 0u) << "rows=" << rows;
    }

    // The guarantee is steady-state only: responses still match the
    // engine run directly (reuse must not leak rows between batches).
    Batch x(Shape{1, 64});
    for (std::int64_t c = 0; c < 64; ++c)
        x.at(0, c) = pool[0][static_cast<std::size_t>(c)];
    Batch y = engine->forward(
        x, InferencePolicy{engine::Calibration::PerRow,
                           engine::PlanKind::Auto});
    std::future<InferenceResponse> fut = server.submit("m", pool[0]);
    ASSERT_EQ(server.drainOnce(), 1); // workers = 0: drain it ourselves
    InferenceResponse resp = fut.get();
    for (std::int64_t c = 0; c < 8; ++c)
        ASSERT_EQ(resp.logits[static_cast<std::size_t>(c)], y.at(0, c));
}

} // namespace
} // namespace bbs
