/**
 * @file
 * Tests of the packed bit-plane substrate: pack/unpack round trips, the
 * word-level primitives against their per-element definitions, and exact
 * packed-vs-scalar equivalence of every kernel that was refactored onto
 * the planes (sparsity, all dot-product forms, redundant columns).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/bit_utils.hpp"
#include "common/random.hpp"
#include "core/bbs.hpp"
#include "core/bbs_dot.hpp"
#include "engine/engine.hpp"
#include "core/bitplane.hpp"
#include "core/compressed_tensor.hpp"
#include "sim/prepared_model.hpp"
#include "tensor/tensor.hpp"

namespace bbs {
namespace {

std::vector<std::int8_t>
randomVec(Rng &rng, std::size_t n, int lo = -128, int hi = 127)
{
    std::vector<std::int8_t> v(n);
    for (auto &x : v)
        x = static_cast<std::int8_t>(rng.uniformInt(lo, hi));
    return v;
}

TEST(PackedGroup, RoundTripAllSizes)
{
    Rng rng(0xb17);
    for (std::size_t n = 1; n <= 64; ++n) {
        auto vals = randomVec(rng, n);
        // Force MSB-negative and boundary members into every group.
        vals[0] = -128;
        if (n > 1)
            vals[1] = 127;
        if (n > 2)
            vals[2] = -1;
        PackedGroup pg = packGroup(vals);
        EXPECT_EQ(pg.size, static_cast<int>(n));
        std::vector<std::int8_t> back = unpackGroup(pg);
        EXPECT_EQ(back, vals) << "size " << n;
    }
}

TEST(PackedGroup, RoundTripNarrowWidths)
{
    Rng rng(0xb18);
    for (int bits = 2; bits <= 8; ++bits) {
        int lo = -(1 << (bits - 1));
        int hi = (1 << (bits - 1)) - 1;
        for (std::size_t n : {1u, 7u, 8u, 9u, 33u, 64u}) {
            auto vals = randomVec(rng, n, lo, hi);
            vals[0] = static_cast<std::int8_t>(lo); // most negative
            PackedGroup pg = packGroup(vals, bits);
            EXPECT_EQ(pg.bits, bits);
            EXPECT_EQ(unpackGroup(pg), vals)
                << "bits " << bits << " size " << n;
        }
    }
}

TEST(PackedGroup, PlanesMatchExtractColumn)
{
    Rng rng(0xb19);
    for (int iter = 0; iter < 200; ++iter) {
        std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 64));
        auto vals = randomVec(rng, n);
        PackedGroup pg = packGroup(vals);
        for (int b = 0; b < kWeightBits; ++b) {
            EXPECT_EQ(pg.planes[static_cast<std::size_t>(b)],
                      extractColumn(vals, b))
                << "b=" << b << " n=" << n;
            EXPECT_EQ(packedColumnOnes(pg, b),
                      columnPopcount(extractColumn(vals, b),
                                     static_cast<int>(n)));
        }
    }
}

TEST(PackedGroup, SignMagnitudePlanesMatchScalarEncoding)
{
    Rng rng(0xb1a);
    for (int iter = 0; iter < 100; ++iter) {
        std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 64));
        auto vals = randomVec(rng, n);
        vals[0] = -128; // saturating sign-magnitude case
        PackedGroup sm = packGroupSignMagnitude(vals);
        for (int b = 0; b < kWeightBits; ++b) {
            BitColumn expect = 0;
            for (std::size_t i = 0; i < n; ++i)
                expect |= static_cast<BitColumn>(
                              (toSignMagnitude(vals[i]) >> b) & 1u)
                          << i;
            EXPECT_EQ(sm.planes[static_cast<std::size_t>(b)], expect);
        }
    }
}

TEST(PackedGroup, PrimitivesMatchScalarDefinitions)
{
    Rng rng(0xb1b);
    for (int iter = 0; iter < 300; ++iter) {
        std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 64));
        // Mix dense and sparse groups so zero/non-zero counting is hit.
        auto vals = rng.bernoulli(0.5) ? randomVec(rng, n)
                                       : randomVec(rng, n, -2, 2);
        PackedGroup pg = packGroup(vals);

        int onesTotal = 0, maxOnes = 0, effectual = 0, nnz = 0;
        for (std::size_t i = 0; i < n; ++i)
            nnz += (vals[i] != 0);
        for (int b = 0; b < kWeightBits; ++b) {
            int ones = columnPopcount(extractColumn(vals, b),
                                      static_cast<int>(n));
            onesTotal += ones;
            maxOnes = std::max(maxOnes, ones);
            effectual += std::min(ones, static_cast<int>(n) - ones);
        }
        EXPECT_EQ(packedOnesTotal(pg), onesTotal);
        EXPECT_EQ(packedMaxColumnOnes(pg), maxOnes);
        EXPECT_EQ(packedEffectualOps(pg), effectual);
        EXPECT_EQ(packedNonZeroValues(pg), nnz);
        EXPECT_EQ(countRedundantColumnsPacked(pg),
                  countRedundantColumns(vals));
    }
}

TEST(PackedGroup, GatherSumTouchesOnlySetBits)
{
    Rng rng(0xb1c);
    for (int iter = 0; iter < 100; ++iter) {
        std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 64));
        auto acts = randomVec(rng, n);
        BitColumn word = 0;
        std::int64_t expect = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (rng.bernoulli(0.4)) {
                word |= 1ull << i;
                expect += acts[i];
            }
        }
        EXPECT_EQ(gatherSum(word, acts), expect);
    }
}

TEST(BitPlaneTensor, PerChannelGroupingAndGather)
{
    Rng rng(0xb1d);
    for (int iter = 0; iter < 50; ++iter) {
        std::int64_t channels = rng.uniformInt(1, 8);
        std::int64_t cs = rng.uniformInt(1, 100);
        std::int64_t groupSize = rng.uniformInt(1, 64);
        Int8Tensor codes(Shape{channels, cs});
        for (std::int64_t i = 0; i < codes.numel(); ++i)
            codes.flat(i) =
                static_cast<std::int8_t>(rng.uniformInt(-128, 127));

        BitPlaneTensor planes = BitPlaneTensor::pack(codes, groupSize);
        EXPECT_EQ(planes.numChannels(), channels);
        EXPECT_EQ(planes.groupsPerChannel(),
                  (cs + groupSize - 1) / groupSize);

        // The plane-major total must agree with summing the gathered
        // per-group primitive.
        std::int64_t perGroup = 0;
        for (std::int64_t g = 0; g < planes.numGroups(); ++g)
            perGroup += packedEffectualOps(planes.group(g));
        EXPECT_EQ(packedEffectualOpsTotal(planes), perGroup);

        // Every gathered group must match a direct pack of the channel
        // slice — groups never span two channels.
        for (std::int64_t c = 0; c < channels; ++c) {
            auto ch = codes.channel(c);
            for (std::int64_t i = 0; i < planes.groupsPerChannel(); ++i) {
                std::int64_t begin = i * groupSize;
                std::int64_t len =
                    std::min<std::int64_t>(groupSize, cs - begin);
                PackedGroup direct = packGroup(
                    std::span<const std::int8_t>(
                        ch.data() + begin,
                        static_cast<std::size_t>(len)));
                PackedGroup gathered =
                    planes.group(planes.groupIndex(c, i));
                EXPECT_EQ(gathered.size, direct.size);
                EXPECT_EQ(gathered.planes, direct.planes);
            }
        }
    }
}

TEST(PlaneCache, CopyAndAssignmentNeverServeStalePlanes)
{
    Rng rng(0xb22);
    auto makeLayer = [&](std::int8_t fill) {
        PreparedLayer l;
        l.codes = Int8Tensor(Shape{4, 32});
        for (std::int64_t i = 0; i < l.codes.numel(); ++i)
            l.codes.flat(i) = fill;
        return l;
    };
    PreparedLayer a = makeLayer(3);
    PreparedLayer b = makeLayer(-5);

    // Fill a's cache, then copy-assign b over it: the cache must be
    // re-derived from the new codes, not retain the old planes.
    (void)a.packedPlanes(16);
    a = b;
    PackedGroup got = a.packedPlanes(16).group(0);
    PackedGroup want = packGroup(b.codes.group(0, 16));
    EXPECT_EQ(got.planes, want.planes);

    // Same for move assignment.
    PreparedLayer c = makeLayer(17);
    (void)c.packedPlanes(16);
    c = makeLayer(-60);
    PackedGroup got2 = c.packedPlanes(16).group(0);
    Int8Tensor ref(Shape{4, 32});
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        ref.flat(i) = -60;
    EXPECT_EQ(got2.planes, packGroup(ref.group(0, 16)).planes);
}

TEST(PackedVsScalar, BbsSparsityMatches)
{
    Rng rng(0xb1e);
    for (int iter = 0; iter < 50; ++iter) {
        std::int64_t n = rng.uniformInt(1, 500);
        std::int64_t vectorSize = rng.uniformInt(1, 64);
        Int8Tensor codes(Shape{n});
        for (std::int64_t i = 0; i < n; ++i)
            codes.flat(i) =
                static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        EXPECT_DOUBLE_EQ(bbsSparsity(codes, vectorSize),
                         bbsSparsityScalar(codes, vectorSize))
            << "n=" << n << " vec=" << vectorSize;
    }
}

TEST(PackedVsScalar, DotFormsMatchExactly)
{
    Rng rng(0xb1f);
    for (int iter = 0; iter < 500; ++iter) {
        std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 64));
        auto w = randomVec(rng, n);
        auto a = randomVec(rng, n);
        if (rng.bernoulli(0.3))
            w[0] = -128; // MSB-negative weight

        EXPECT_EQ(engine::dot(w, a, engine::DotMethod::ZeroSkip).value,
                  engine::dot(w, a, engine::DotMethod::ZeroSkipScalar)
                      .value);

        BbsDotResult packed = engine::dot(w, a);
        BbsDotResult scalar =
            engine::dot(w, a, engine::DotMethod::BbsScalar);
        EXPECT_EQ(packed.value, scalar.value);
        EXPECT_EQ(packed.effectualOps, scalar.effectualOps);
        EXPECT_EQ(packed.invertedColumns, scalar.invertedColumns);
        EXPECT_EQ(packed.value,
                  engine::dot(w, a, engine::DotMethod::Reference)
                      .value);
    }
}

TEST(PackedVsScalar, DotCompressedMatchesExactly)
{
    Rng rng(0xb20);
    for (int iter = 0; iter < 300; ++iter) {
        std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 64));
        int target = static_cast<int>(rng.uniformInt(0, 6));
        PruneStrategy strategy =
            rng.bernoulli(0.5) ? PruneStrategy::RoundedAveraging
                               : PruneStrategy::ZeroPointShifting;
        auto w = randomVec(rng, n);
        auto a = randomVec(rng, n);

        CompressedGroup cg = compressGroup(w, target, strategy);
        BbsDotResult packed = engine::dotCompressed(cg, a);
        BbsDotResult scalar = engine::dotCompressed(cg, a, true);
        EXPECT_EQ(packed.value, scalar.value);
        EXPECT_EQ(packed.effectualOps, scalar.effectualOps);
        EXPECT_EQ(packed.invertedColumns, scalar.invertedColumns);

        // The compressed-domain form still equals the dense reference on
        // the reconstructed weights (the repo-wide exactness invariant).
        std::vector<std::int8_t> rec = cg.decompress();
        EXPECT_EQ(packed.value,
                  engine::dot(rec, a, engine::DotMethod::Reference)
                      .value);
    }
}

TEST(PackedVsScalar, CompressedTensorPackedGroupsMatchStoredValues)
{
    Rng rng(0xb21);
    for (int iter = 0; iter < 20; ++iter) {
        std::int64_t n = rng.uniformInt(1, 300);
        std::int64_t groupSize = rng.uniformInt(1, 64);
        int target = static_cast<int>(rng.uniformInt(0, 6));
        Int8Tensor codes(Shape{n});
        for (std::int64_t i = 0; i < n; ++i)
            codes.flat(i) =
                static_cast<std::int8_t>(rng.uniformInt(-128, 127));

        CompressedTensor ct = CompressedTensor::compress(
            codes, groupSize, target, PruneStrategy::RoundedAveraging);
        ASSERT_EQ(ct.packedGroups().size(), ct.groups().size());
        for (std::size_t g = 0; g < ct.groups().size(); ++g) {
            const CompressedGroup &cg = ct.groups()[g];
            const PackedGroup &pg = ct.packedGroups()[g];
            EXPECT_EQ(pg.bits, cg.storedBits);
            EXPECT_EQ(pg.size, static_cast<int>(cg.stored.size()));
            for (int b = 0; b < cg.storedBits; ++b)
                EXPECT_EQ(pg.planes[static_cast<std::size_t>(b)],
                          extractColumn(cg.stored, b));
        }
    }
}

} // namespace
} // namespace bbs
