/**
 * @file
 * Tests for the measured plan autotuner and its persistent tuning cache
 * (engine/autotune.hpp), the runtime cache-topology detection backing
 * the default GEMM depth block (engine/cache_topology.hpp), and the
 * tiny-shape selectKind crossovers TuningParams promoted to data.
 *
 * The load-bearing invariants: every tuning-parameter combination is
 * bit-identical (tuning moves wall-clock time only); a deployed cache
 * steers plan decisions; and every cache defect — missing file, garbage,
 * truncation, unknown version — degrades silently to the hand heuristic.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/parallel.hpp"
#include "common/random.hpp"
#include "engine/engine.hpp"
#include "gemm/gemm.hpp"

namespace bbs {
namespace {

using bbs::engine::AutotuneOptions;
using bbs::engine::EngineConfig;
using bbs::engine::MatmulPlan;
using bbs::engine::PackedOperand;
using bbs::engine::PackOptions;
using bbs::engine::PlanKind;
using bbs::engine::Session;
using bbs::engine::ShapeHints;
using bbs::engine::TuneEntry;
using bbs::engine::TuneShape;
using bbs::engine::TuningCache;
using bbs::engine::TuningParams;

Int8Tensor
randomMatrix(std::int64_t rows, std::int64_t cols, Rng &rng)
{
    Int8Tensor t(Shape{rows, cols});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return t;
}

/**
 * Unique temp path per scenario: Session memoizes cache loads (including
 * failures) by path for the life of the process, so scenarios must never
 * share one.
 */
std::string
tempCachePath(const char *tag)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("bbs_test_tune_") + tag + ".json"))
        .string();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path, std::ios::trunc);
    ASSERT_TRUE(f.good());
    f << content;
}

/** The key the runtime will look up with (simd level x thread cap). */
TuneEntry
entryForRuntime(std::int64_t rows, std::int64_t depth, std::int64_t batch,
                double storedBits, PlanKind kind)
{
    TuneEntry e;
    e.simd = simdLevelName(activeSimdLevel());
    e.threads = maxWorkerThreads();
    e.rows = rows;
    e.depth = depth;
    e.batch = batch;
    e.storedBits = storedBits;
    e.kind = kind;
    e.seconds = 1e-5;
    return e;
}

// -------------------------------------------------------- cache topology

TEST(CacheTopologyTest, DetectionAndDepthBlockDerivation)
{
    const engine::CacheTopology &topo = engine::cacheTopology();
    // Whether detected or defaulted, the numbers must be usable.
    EXPECT_GT(topo.l1dBytes, 0);
    EXPECT_GE(topo.l2Bytes, topo.l1dBytes);
    EXPECT_GT(topo.lineBytes, 0);
    EXPECT_TRUE(std::string(topo.source) == "sysfs" ||
                std::string(topo.source) == "cpuid" ||
                std::string(topo.source) == "default");

    // 32 KiB L1d reproduces the old hard-coded 512-word block; the
    // derivation clamps to [128, 4096] and always lands on a power of 2.
    EXPECT_EQ(engine::defaultDepthBlockWords(32 * 1024), 512);
    EXPECT_EQ(engine::defaultDepthBlockWords(1024), 128);        // floor
    EXPECT_EQ(engine::defaultDepthBlockWords(1 << 30), 4096);    // ceil
    for (std::int64_t l1 : {16 * 1024, 48 * 1024, 64 * 1024,
                            128 * 1024}) {
        std::int64_t words = engine::defaultDepthBlockWords(l1);
        EXPECT_GE(words, 128);
        EXPECT_LE(words, 4096);
        EXPECT_EQ(words & (words - 1), 0) << "not a power of two";
        // Four resident plane rows fit in at most half the L1d (the
        // 128-word floor never binds at these sizes).
        EXPECT_LE(4 * words * 8, l1 / 2);
    }

    TuningParams p;
    EXPECT_EQ(p.resolvedDepthBlockWords(),
              engine::defaultDepthBlockWords(topo.l1dBytes));
    p.depthBlockWords = 256; // explicit value passes through untouched
    EXPECT_EQ(p.resolvedDepthBlockWords(), 256);
}

// --------------------------------------------- selectKind tiny crossovers

TEST(SelectKindTest, TinyShapesStayPerDotAtModerateBatch)
{
    // Tiny weight rows: the batched kernels cannot amortize staging over
    // 2 output channels, so moderate batches stay per-dot...
    EXPECT_EQ(MatmulPlan::selectKind(2, 512, 4, true, 5.0),
              PlanKind::PerDot);
    // ...and tiny depth (half a packed word) behaves the same.
    EXPECT_EQ(MatmulPlan::selectKind(8, 16, 4, true, 5.0),
              PlanKind::PerDot);
    // Past tinyBatchMax, batching wins regardless of shape.
    EXPECT_EQ(MatmulPlan::selectKind(2, 512, 16, true, 5.0),
              PlanKind::CompressedBatched);
    EXPECT_EQ(MatmulPlan::selectKind(8, 16, 16, true, 5.0),
              PlanKind::CompressedBatched);
    // Non-tiny shapes keep the plain batch-1 crossover.
    EXPECT_EQ(MatmulPlan::selectKind(8, 64, 4, true, 5.0),
              PlanKind::CompressedBatched);
}

TEST(SelectKindTest, CrossoversComeFromTuningParams)
{
    TuningParams t; // defaults
    EXPECT_EQ(MatmulPlan::selectKind(64, 256, 2, true, 5.0, t),
              PlanKind::CompressedBatched);
    t.perDotMaxBatch = 8; // raise the per-dot crossover
    EXPECT_EQ(MatmulPlan::selectKind(64, 256, 2, true, 5.0, t),
              PlanKind::PerDot);
    EXPECT_EQ(MatmulPlan::selectKind(64, 256, 8, true, 5.0, t),
              PlanKind::PerDot);
    EXPECT_EQ(MatmulPlan::selectKind(64, 256, 9, true, 5.0, t),
              PlanKind::CompressedBatched);

    t = TuningParams{};
    t.denseStoredBits = 5.0; // incompressible operands go tiled earlier
    EXPECT_EQ(MatmulPlan::selectKind(64, 256, 16, true, 5.0, t),
              PlanKind::TiledBitSerial);
    t.tinyDepth = 256; // widen "tiny" and batch 4 flips to per-dot
    EXPECT_EQ(MatmulPlan::selectKind(64, 256, 4, true, 4.0, t),
              PlanKind::PerDot);
}

// ---------------------------------------- tuning-parameter bit-identity

TEST(TuningParamsTest, DepthBlockAndTileChoicesAreBitIdentical)
{
    Rng rng(0x7ab5);
    for (int iter = 0; iter < 4; ++iter) {
        std::int64_t k = rng.uniformInt(3, 40);
        std::int64_t c = rng.uniformInt(1, 9) * 64;
        std::int64_t n = rng.uniformInt(1, 33);
        Int8Tensor weights = randomMatrix(k, c, rng);
        Int8Tensor acts = randomMatrix(n, c, rng);
        Int32Tensor ref = gemmReferenceBatch(acts, weights);

        for (std::int64_t block : {std::int64_t{0}, std::int64_t{128},
                                   std::int64_t{512},
                                   std::int64_t{4096}}) {
            for (int tile : {1, 2}) {
                EngineConfig cfg;
                cfg.tuneCachePath = "none";
                cfg.tuning.depthBlockWords = block;
                cfg.tuning.tileRows = tile;
                cfg.tuning.tileCols = tile;
                Session s(cfg);
                MatmulPlan plan = s.plan(s.pack(weights));
                Int32Tensor out = plan.run(acts);
                for (std::int64_t i = 0; i < ref.numel(); ++i)
                    ASSERT_EQ(out.flat(i), ref.flat(i))
                        << "block=" << block << " tile=" << tile
                        << " iter=" << iter << " i=" << i;
            }
        }
    }
}

// ------------------------------------------------- cache save/load/lookup

TEST(TuningCacheTest, SaveLoadRoundTripPreservesEntries)
{
    TuningCache cache;
    TuneEntry e = entryForRuntime(64, 256, 8, 5.0, PlanKind::PerDot);
    e.depthBlockWords = 256;
    e.tileRows = 1;
    e.tileCols = 2;
    e.rowTile = 4; // non-default: pins the JSON field, not the fallback
    e.seconds = 3.25e-4;
    cache.entries.push_back(e);
    cache.entries.push_back(
        entryForRuntime(128, 512, 64, 4.5, PlanKind::TiledBitSerial));

    std::string path = tempCachePath("roundtrip");
    ASSERT_TRUE(cache.save(path));

    TuningCache loaded;
    ASSERT_TRUE(TuningCache::load(path, loaded));
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.entries[0].simd, e.simd);
    EXPECT_EQ(loaded.entries[0].threads, e.threads);
    EXPECT_EQ(loaded.entries[0].rows, 64);
    EXPECT_EQ(loaded.entries[0].depth, 256);
    EXPECT_EQ(loaded.entries[0].batch, 8);
    EXPECT_DOUBLE_EQ(loaded.entries[0].storedBits, 5.0);
    EXPECT_EQ(loaded.entries[0].kind, PlanKind::PerDot);
    EXPECT_EQ(loaded.entries[0].depthBlockWords, 256);
    EXPECT_EQ(loaded.entries[0].tileRows, 1);
    EXPECT_EQ(loaded.entries[0].tileCols, 2);
    EXPECT_EQ(loaded.entries[0].rowTile, 4);
    EXPECT_NEAR(loaded.entries[0].seconds, 3.25e-4, 1e-9);
    EXPECT_EQ(loaded.entries[1].kind, PlanKind::TiledBitSerial);
    EXPECT_TRUE(loaded.hasKind(PlanKind::TiledBitSerial));
    EXPECT_FALSE(loaded.hasKind(PlanKind::CompressedBatched));
    std::remove(path.c_str());
}

TEST(TuningCacheTest, LookupMatchesNearestShapeClassWithinRadius)
{
    TuningCache cache;
    cache.entries.push_back(
        entryForRuntime(64, 256, 8, 5.0, PlanKind::CompressedBatched));
    cache.entries.push_back(
        entryForRuntime(64, 256, 256, 5.0, PlanKind::TiledBitSerial));

    const char *simd = simdLevelName(activeSimdLevel());
    unsigned threads = maxWorkerThreads();

    // Exact hits.
    const TuneEntry *hit = cache.lookup(64, 256, 8, 5.0, simd, threads);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->kind, PlanKind::CompressedBatched);
    // A nearby batch resolves to the nearest class...
    hit = cache.lookup(64, 256, 192, 5.0, simd, threads);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->kind, PlanKind::TiledBitSerial);
    // ...a far-away shape is a miss (outside the acceptance radius)...
    EXPECT_EQ(cache.lookup(4096, 8192, 8, 5.0, simd, threads), nullptr);
    // ...and a different SIMD level never matches (its measured winners
    // are meaningless here).
    const char *otherSimd =
        activeSimdLevel() == SimdLevel::Scalar ? "avx2" : "scalar";
    EXPECT_EQ(cache.lookup(64, 256, 8, 5.0, otherSimd, threads), nullptr);
}

// ------------------------------------------------ Session + plan wiring

TEST(TuningCacheTest, DeployedCacheSteersPlanDecisions)
{
    // A cache pinning batch 8 on this shape to PerDot — the heuristic
    // would choose CompressedBatched — must flip the plan's decision,
    // with bit-identical results.
    const std::int64_t k = 64, c = 256;
    TuningCache cache;
    cache.entries.push_back(
        entryForRuntime(k, c, 8, 5.0, PlanKind::PerDot));
    std::string path = tempCachePath("steers");
    ASSERT_TRUE(cache.save(path));

    Rng rng(0xcafe);
    Int8Tensor weights = randomMatrix(k, c, rng);
    Int8Tensor acts = randomMatrix(8, c, rng);
    PackOptions popts;
    popts.targetColumns = 3;

    EngineConfig tunedCfg;
    tunedCfg.tuneCachePath = path;
    Session tuned(tunedCfg);
    ASSERT_NE(tuned.tuningCache(), nullptr);
    EngineConfig heurCfg;
    heurCfg.tuneCachePath = "none";
    Session heuristic(heurCfg);
    ASSERT_EQ(heuristic.tuningCache(), nullptr);

    MatmulPlan tunedPlan = tuned.plan(tuned.pack(weights, popts));
    MatmulPlan heurPlan = heuristic.plan(heuristic.pack(weights, popts));
    EXPECT_EQ(tunedPlan.kindForBatch(8), PlanKind::PerDot);
    EXPECT_EQ(heurPlan.kindForBatch(8), PlanKind::CompressedBatched);

    Int32Tensor a = tunedPlan.run(acts);
    Int32Tensor b = heurPlan.run(acts);
    for (std::int64_t i = 0; i < a.numel(); ++i)
        ASSERT_EQ(a.flat(i), b.flat(i)) << "i=" << i;
    std::remove(path.c_str());
}

TEST(TuningCacheTest, EveryCacheDefectDegradesToTheHeuristic)
{
    struct Defect
    {
        const char *tag;
        std::string content;
        bool skipWrite = false;
    };
    std::vector<Defect> defects;
    defects.push_back({"missing", "", true});
    defects.push_back({"garbage", "not json at all {{{"});
    defects.push_back(
        {"badversion",
         "{\"bench\": \"autotune\", \"version\": 99, \"records\": [\n"
         "{\"kernel\": \"per-dot\", \"simd\": \"scalar\", \"threads\": 1, "
         "\"rows\": 64, \"depth\": 256, \"batch\": 8, \"storedBits\": 5.0, "
         "\"seconds\": 1e-5}\n]}\n"});
    // A valid cache chopped mid-record (crashed writer).
    {
        TuningCache cache;
        cache.entries.push_back(
            entryForRuntime(64, 256, 8, 5.0, PlanKind::PerDot));
        cache.entries.push_back(
            entryForRuntime(64, 256, 64, 5.0, PlanKind::PerDot));
        std::string full = tempCachePath("full_tmp");
        ASSERT_TRUE(cache.save(full));
        std::ifstream f(full);
        std::string content((std::istreambuf_iterator<char>(f)),
                            std::istreambuf_iterator<char>());
        std::remove(full.c_str());
        defects.push_back(
            {"truncated", content.substr(0, content.size() * 2 / 3)});
    }

    Rng rng(0xdead);
    const std::int64_t k = 64, c = 256;
    Int8Tensor weights = randomMatrix(k, c, rng);
    Int8Tensor acts = randomMatrix(8, c, rng);
    PackOptions popts;
    popts.targetColumns = 3;

    EngineConfig heurCfg;
    heurCfg.tuneCachePath = "none";
    Session heuristic(heurCfg);
    MatmulPlan heurPlan = heuristic.plan(heuristic.pack(weights, popts));
    Int32Tensor ref = heurPlan.run(acts);

    for (const Defect &d : defects) {
        std::string path = tempCachePath(d.tag);
        if (!d.skipWrite)
            writeFile(path, d.content);
        else
            std::remove(path.c_str());

        // Loading must not throw, must report failure cleanly...
        TuningCache direct;
        EXPECT_FALSE(TuningCache::load(path, direct)) << d.tag;
        EXPECT_TRUE(direct.empty()) << d.tag;

        // ...and a Session over the defective path behaves exactly like
        // the heuristic-only engine.
        EngineConfig cfg;
        cfg.tuneCachePath = path;
        Session s(cfg);
        EXPECT_EQ(s.tuningCache(), nullptr) << d.tag;
        MatmulPlan plan = s.plan(s.pack(weights, popts));
        EXPECT_EQ(plan.kindForBatch(8), heurPlan.kindForBatch(8)) << d.tag;
        Int32Tensor out = plan.run(acts);
        for (std::int64_t i = 0; i < ref.numel(); ++i)
            ASSERT_EQ(out.flat(i), ref.flat(i)) << d.tag << " i=" << i;
        if (!d.skipWrite)
            std::remove(path.c_str());
    }
}

// ------------------------------------------------------- live autotuner

TEST(AutotunerTest, MeasuredWinnerRoundTripsIntoPlanDecisions)
{
    AutotuneOptions opts;
    opts.reps = 1;
    opts.warmup = 0;
    opts.targetColumns = 3;
    std::vector<TuneShape> shapes;
    shapes.push_back({16, 64, 4});
    shapes.push_back({16, 64, 32});
    engine::TuningCache cache = engine::autotuneShapes(shapes, opts);
    ASSERT_EQ(cache.entries.size(), 2u);
    for (const TuneEntry &e : cache.entries) {
        EXPECT_NE(e.kind, PlanKind::Auto);
        EXPECT_GT(e.seconds, 0.0);
        EXPECT_EQ(e.simd, simdLevelName(activeSimdLevel()));
    }

    std::string path = tempCachePath("live");
    ASSERT_TRUE(cache.save(path));
    EngineConfig cfg;
    cfg.tuneCachePath = path;
    Session tuned(cfg);
    ASSERT_NE(tuned.tuningCache(), nullptr);

    // The plan must adopt the measured winner for the exact shapes...
    Rng rng(0xf00);
    Int8Tensor weights = randomMatrix(16, 64, rng);
    PackOptions popts;
    popts.targetColumns = 3;
    MatmulPlan plan = tuned.plan(tuned.pack(weights, popts));
    EXPECT_EQ(plan.kindForBatch(4), cache.entries[0].kind);
    EXPECT_EQ(plan.kindForBatch(32), cache.entries[1].kind);

    // ...and tuned results stay bit-identical to the heuristic engine
    // across fuzzed activations (tuning never changes arithmetic).
    EngineConfig heurCfg;
    heurCfg.tuneCachePath = "none";
    Session heuristic(heurCfg);
    MatmulPlan heurPlan = heuristic.plan(heuristic.pack(weights, popts));
    for (std::int64_t batch : {1, 4, 7, 32}) {
        Int8Tensor acts = randomMatrix(batch, 64, rng);
        Int32Tensor a = plan.run(acts);
        Int32Tensor b = heurPlan.run(acts);
        for (std::int64_t i = 0; i < a.numel(); ++i)
            ASSERT_EQ(a.flat(i), b.flat(i))
                << "batch=" << batch << " i=" << i;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace bbs
