/**
 * @file
 * Tests for the quantization substrate: per-channel PTQ, requantization,
 * BitWave bit-flip pruning, Microscaling, ANT and OliVe.
 */
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/bit_utils.hpp"
#include "metrics/error.hpp"
#include "quant/ant.hpp"
#include "quant/bitwave.hpp"
#include "quant/microscaling.hpp"
#include "quant/olive.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"

namespace bbs {
namespace {

FloatTensor
randomWeights(Shape shape, std::uint64_t seed = 1)
{
    Rng rng(seed);
    WeightDistribution dist;
    return generateWeights(shape, dist, rng);
}

TEST(Quantizer, PerChannelErrorBoundedByHalfScale)
{
    FloatTensor w = randomWeights(Shape{8, 128});
    QuantizedTensor q = quantizePerChannel(w, 8);
    FloatTensor deq = q.dequantize();
    for (std::int64_t k = 0; k < 8; ++k) {
        float s = q.scales[static_cast<std::size_t>(k)];
        auto orig = w.channel(k);
        auto rec = deq.channel(k);
        for (std::size_t i = 0; i < orig.size(); ++i)
            EXPECT_LE(std::abs(orig[i] - rec[i]), 0.5f * s + 1e-6f);
    }
}

TEST(Quantizer, ScalesTrackChannelMagnitude)
{
    FloatTensor w(Shape{2, 16});
    for (std::int64_t i = 0; i < 16; ++i) {
        w.at(0, i) = 0.01f;
        w.at(1, i) = 1.0f;
    }
    QuantizedTensor q = quantizePerChannel(w, 8);
    EXPECT_LT(q.scales[0], q.scales[1]);
    // Max magnitude maps to the max code.
    EXPECT_EQ(q.values.at(1, 0), 127);
}

TEST(Quantizer, MseClipNeverWorseThanMinMaxAtLowBits)
{
    FloatTensor w = randomWeights(Shape{16, 256}, 3);
    QuantizedTensor minmax = quantizePerChannel(w, 4);
    QuantizedTensor clipped = quantizePerChannelMseClip(w, 4);
    double eMinmax = mse(w, minmax.dequantize());
    double eClip = mse(w, clipped.dequantize());
    EXPECT_LE(eClip, eMinmax * 1.0001);
}

TEST(Quantizer, RequantizeReducesLevelCount)
{
    FloatTensor w = randomWeights(Shape{4, 512}, 5);
    QuantizedTensor q = quantizePerChannel(w, 8);
    Int8Tensor r = requantizeInt8(q.values, 4);
    // Each channel must use at most 2^4 distinct levels.
    for (std::int64_t k = 0; k < 4; ++k) {
        std::set<int> levels;
        for (std::int8_t v : r.channel(k))
            levels.insert(v);
        EXPECT_LE(levels.size(), 16u);
    }
}

TEST(Bitwave, InherentZeroColumnsCountedForFree)
{
    // All values small: sign-magnitude high columns are inherently zero.
    std::vector<std::int8_t> group = {1, 2, 3, -2, 1, 0, -3, 2};
    BitwaveGroupResult r = bitwavePruneGroup(group, 3);
    EXPECT_GE(r.inherentZeroColumns, 3);
    // Values unchanged when the target is covered by inherent columns.
    for (std::size_t i = 0; i < group.size(); ++i)
        EXPECT_EQ(r.values[i], group[i]);
}

TEST(Bitwave, FlipsLowColumnsFirst)
{
    std::vector<std::int8_t> group = {127, -127, 85, -85};
    BitwaveGroupResult r = bitwavePruneGroup(group, 2);
    EXPECT_EQ(r.zeroColumns, 2);
    // Flipping magnitude bits only reduces |value| (toward zero).
    for (std::size_t i = 0; i < group.size(); ++i) {
        EXPECT_LE(std::abs(r.values[i]), std::abs(group[i]));
        // Sign preserved.
        if (group[i] != 0)
            EXPECT_EQ(r.values[i] < 0, group[i] < 0);
    }
}

TEST(Bitwave, PruneTensorMatchesGroupResults)
{
    Rng rng(2);
    Int8Tensor t(Shape{64});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    Int8Tensor pruned = bitwavePrune(t, 32, 4);
    for (std::int64_t g = 0; g < 2; ++g) {
        auto grp = t.group(g, 32);
        BitwaveGroupResult r = bitwavePruneGroup(grp, 4);
        for (std::size_t i = 0; i < 32; ++i)
            EXPECT_EQ(pruned.flat(g * 32 + static_cast<std::int64_t>(i)),
                      r.values[i]);
    }
}

TEST(Microscaling, SharedExponentUnderflowsSmallValues)
{
    // One huge value per group forces small ones to underflow — the
    // failure mode the paper contrasts with BBS (§V-B).
    FloatTensor w(Shape{1, 32});
    w.at(0, 0) = 100.0f;
    for (std::int64_t i = 1; i < 32; ++i)
        w.at(0, i) = 0.01f;
    MxConfig cfg;
    cfg.elementBits = 6;
    double uf = mxUnderflowFraction(w, cfg);
    EXPECT_GT(uf, 0.9);
}

TEST(Microscaling, RoundTripErrorBounded)
{
    FloatTensor w = randomWeights(Shape{8, 64}, 9);
    MxConfig cfg;
    FloatTensor deq = mxQuantizeDequantize(w, cfg);
    EXPECT_LT(mse(w, deq), mse(w, FloatTensor(w.shape())));
    EXPECT_NEAR(cfg.effectiveBits(), 6.25, 1e-9);
}

TEST(Ant, CodebooksAreSortedAndDistinct)
{
    for (AntType t : {AntType::Int, AntType::Po2, AntType::Flint}) {
        auto cb = antCodebook(t, 6);
        EXPECT_EQ(cb.size(), 32u);
        for (std::size_t i = 1; i < cb.size(); ++i)
            EXPECT_GT(cb[i], cb[i - 1]) << antTypeName(t) << " @ " << i;
    }
}

TEST(Ant, Po2ReachesLargerRangeThanInt)
{
    auto po2 = antCodebook(AntType::Po2, 6);
    auto in = antCodebook(AntType::Int, 6);
    EXPECT_GT(po2.back(), in.back());
}

TEST(Ant, PicksBestTypePerChannel)
{
    // Channel 0: uniform ramp (int-friendly); channel 1: a mass of small
    // values plus one large outlier — the shape flint's dense-near-zero /
    // sparse-at-magnitude levels are built for.
    FloatTensor w(Shape{2, 32});
    for (std::int64_t i = 0; i < 32; ++i) {
        w.at(0, i) = static_cast<float>(i) / 31.0f;
        w.at(1, i) = 0.02f * static_cast<float>(i % 8);
    }
    w.at(1, 31) = 128.0f;
    AntResult r = antQuantize(w, 6);
    EXPECT_EQ(r.perChannel[0], AntType::Int);
    EXPECT_NE(r.perChannel[1], AntType::Int);
    EXPECT_LT(mse(w, r.dequantized), 1.0);
}

TEST(Olive, OutliersKeepMagnitudeVictimsGoToZero)
{
    Rng rng(4);
    FloatTensor w(Shape{1, 64});
    for (std::int64_t i = 0; i < 64; ++i)
        w.flat(i) = static_cast<float>(rng.gaussian(0.0, 0.1));
    w.flat(10) = 5.0f; // clear outlier

    OliveResult r = oliveQuantize(w);
    EXPECT_GT(r.outlierFraction, 0.0);
    // The outlier survives with power-of-two magnitude (4 or 8 around 5).
    float rec = r.dequantized.flat(10);
    EXPECT_NEAR(std::log2(rec), std::round(std::log2(5.0f)), 1e-6);
    // Its victim pair neighbour is zeroed.
    EXPECT_EQ(r.dequantized.flat(11), 0.0f);
}

TEST(Olive, NoOutliersMeansPlainUniformQuant)
{
    FloatTensor w(Shape{1, 32});
    for (std::int64_t i = 0; i < 32; ++i)
        w.flat(i) = 0.1f * static_cast<float>(i % 5 - 2);
    OliveResult r = oliveQuantize(w);
    EXPECT_DOUBLE_EQ(r.outlierFraction, 0.0);
    EXPECT_DOUBLE_EQ(r.victimFraction, 0.0);
    EXPECT_LT(mse(w, r.dequantized), 0.01);
}


TEST(Quantizer, RequantizeMseMonotoneInBits)
{
    FloatTensor w = randomWeights(Shape{8, 512}, 21);
    QuantizedTensor q = quantizePerChannel(w, 8);
    double prev = 1e300;
    for (int bits : {3, 4, 5, 6, 7}) {
        Int8Tensor r = requantizeInt8(q.values, bits);
        double e = mse(q.values, r);
        EXPECT_LE(e, prev * 1.05) << "bits=" << bits;
        prev = e;
    }
}

TEST(Quantizer, DeterministicPerInput)
{
    FloatTensor w = randomWeights(Shape{4, 64}, 33);
    QuantizedTensor a = quantizePerChannel(w, 8);
    QuantizedTensor b = quantizePerChannel(w, 8);
    for (std::int64_t i = 0; i < a.values.numel(); ++i)
        EXPECT_EQ(a.values.flat(i), b.values.flat(i));
    EXPECT_EQ(a.scales, b.scales);
}

TEST(Quantizer, ScalesAreStrictlyPositive)
{
    FloatTensor w(Shape{3, 8}); // includes an all-zero channel
    for (std::int64_t i = 0; i < 8; ++i)
        w.at(1, i) = 0.5f;
    QuantizedTensor q = quantizePerChannel(w, 8);
    for (float s : q.scales)
        EXPECT_GT(s, 0.0f);
}

TEST(Bitwave, AdditionalFlipSemanticsFlipBeyondInherent)
{
    // Small values: 3+ inherent zero magnitude columns. With the
    // performance semantics, 2 *additional* columns get flipped.
    std::vector<std::int8_t> group = {1, 2, 3, -2, 1, 0, -3, 2};
    BitwaveGroupResult budget = bitwavePruneGroup(group, 2, true);
    BitwaveGroupResult extra = bitwavePruneGroup(group, 2, false);
    EXPECT_GT(extra.zeroColumns, budget.zeroColumns);
    // Flipping low columns only shrinks magnitudes.
    for (std::size_t i = 0; i < group.size(); ++i)
        EXPECT_LE(std::abs(extra.values[i]), std::abs(group[i]));
}

TEST(Microscaling, LargerGroupsUnderflowMore)
{
    FloatTensor w = randomWeights(Shape{16, 512}, 55);
    MxConfig small;
    small.groupSize = 8;
    MxConfig large;
    large.groupSize = 128;
    // Bigger groups share one exponent across more diverse magnitudes.
    EXPECT_LE(mse(w, mxQuantizeDequantize(w, small)),
              mse(w, mxQuantizeDequantize(w, large)) * 1.05);
}
} // namespace
} // namespace bbs
