/**
 * @file
 * Randomized cross-module fuzz tests: random shapes, betas, group sizes
 * and operating points hammer the full pipeline, checking only invariants
 * (never golden values), so they hold for any seed.
 */
#include <gtest/gtest.h>

#include <thread>

#include "accel/bitvert_array.hpp"
#include "accel/factory.hpp"
#include "core/bbs_dot.hpp"
#include "core/serialization.hpp"
#include "nn/layers.hpp"
#include "quant/quantizer.hpp"
#include "serve/server.hpp"
#include "sim/prepared_model.hpp"
#include "tensor/distribution.hpp"

namespace bbs {
namespace {

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PipelineFuzz, CompressionInvariantsHoldForRandomConfigs)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 10; ++iter) {
        std::int64_t channels = rng.uniformInt(1, 40);
        std::int64_t cs = rng.uniformInt(1, 200);
        int target = static_cast<int>(rng.uniformInt(0, 6));
        std::int64_t groupSize = rng.uniformInt(1, 64);
        PruneStrategy strategy =
            rng.bernoulli(0.5) ? PruneStrategy::RoundedAveraging
                               : PruneStrategy::ZeroPointShifting;

        WeightDistribution dist;
        FloatTensor w =
            generateWeights(Shape{channels, cs}, dist, rng);
        Int8Tensor codes = quantizePerChannel(w, 8).values;

        CompressedTensor ct = CompressedTensor::compress(
            codes, groupSize, target, strategy);
        Int8Tensor rec = ct.decompress();

        // Invariant: reconstruction error bounded by the pruned span.
        double bound = static_cast<double>(1 << target);
        for (std::int64_t i = 0; i < codes.numel(); ++i) {
            double err = std::abs(static_cast<double>(rec.flat(i)) -
                                  codes.flat(i));
            EXPECT_LE(err, bound * 2.0)
                << "i=" << i << " target=" << target;
        }

        // Invariant: effective bits = (8 - target) + 8/groupSize within
        // rounding of the tail group.
        double expectBits = (8.0 - target) +
                            8.0 / static_cast<double>(groupSize);
        EXPECT_NEAR(ct.effectiveBitsPerWeight(), expectBits,
                    expectBits * 0.2 + 0.5);

        // Invariant: serialization round-trips.
        SerializedTensor blob = serializeCompressed(ct);
        Int8Tensor back =
            deserializeCompressed(blob, codes.shape(), groupSize,
                                  target, strategy)
                .decompress();
        for (std::int64_t i = 0; i < rec.numel(); ++i)
            ASSERT_EQ(back.flat(i), rec.flat(i));
    }
}

TEST_P(PipelineFuzz, CompressedDotAlwaysExact)
{
    Rng rng(GetParam() ^ 0xfeed);
    for (int iter = 0; iter < 50; ++iter) {
        std::size_t n = static_cast<std::size_t>(rng.uniformInt(1, 64));
        int target = static_cast<int>(rng.uniformInt(0, 6));
        std::vector<std::int8_t> w(n), a(n);
        for (auto &x : w)
            x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        for (auto &x : a)
            x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        PruneStrategy strategy =
            rng.bernoulli(0.5) ? PruneStrategy::RoundedAveraging
                               : PruneStrategy::ZeroPointShifting;
        CompressedGroup cg = compressGroup(w, target, strategy);
        EXPECT_EQ(engine::dotCompressed(cg, a).value,
                  engine::dot(cg.decompress(), a,
                              engine::DotMethod::Reference)
                      .value);
    }
}

TEST_P(PipelineFuzz, FunctionalArrayExactForRandomShapes)
{
    Rng rng(GetParam() ^ 0xa11a);
    std::int64_t k = rng.uniformInt(1, 48);
    std::int64_t c = rng.uniformInt(1, 120);
    std::int64_t n = rng.uniformInt(1, 6);

    WeightDistribution dist;
    FloatTensor w = generateWeights(Shape{k, c}, dist, rng);
    QuantizedTensor q = quantizePerChannel(w, 8);
    Int8Tensor acts(Shape{c, n});
    for (std::int64_t i = 0; i < acts.numel(); ++i)
        acts.flat(i) =
            static_cast<std::int8_t>(rng.uniformInt(-128, 127));

    GlobalPruneConfig cfg = moderateConfig();
    cfg.beta = rng.uniformReal(0.0, 0.5);
    BitVertArrayResult res =
        runBitVertArray(q.values, q.scales, acts, cfg);

    // Decompressed-weight reference.
    std::vector<PrunableLayer> model(1);
    model[0].name = "l";
    model[0].codes = q.values;
    model[0].scales = q.scales;
    PrunedModel pm = globalBinaryPrune(model, cfg);
    Int32Tensor ref = gemmReference(pm.layers[0].codes, acts);

    for (std::int64_t i = 0; i < ref.numel(); ++i)
        ASSERT_EQ(res.outputs.flat(i), ref.flat(i))
            << "k=" << k << " c=" << c << " n=" << n;
}

TEST_P(PipelineFuzz, SimulatorsProduceFiniteConsistentResults)
{
    Rng rng(GetParam() ^ 0x51f7);
    ModelDesc desc;
    desc.name = "fuzz";
    LayerDesc l;
    l.name = "lin";
    l.kind = LayerKind::Linear;
    l.weightShape = Shape{rng.uniformInt(8, 128),
                          rng.uniformInt(8, 256)};
    l.outputPositions = rng.uniformInt(1, 64);
    l.reluActivations = rng.bernoulli(0.5);
    desc.layers = {l};

    MaterializeOptions opts;
    opts.seed = GetParam();
    MaterializedModel mm = materializeModel(desc, opts);
    GlobalPruneConfig cfg = moderateConfig();
    PreparedModel pm = prepareModel(mm, &cfg);
    SimConfig simCfg;

    for (auto &acc : evaluationLineup()) {
        ModelSim ms = acc->simulateModel(pm, simCfg);
        EXPECT_TRUE(std::isfinite(ms.totalCycles())) << acc->name();
        EXPECT_GT(ms.totalCycles(), 0.0) << acc->name();
        EXPECT_GE(ms.totalCycles(),
                  ms.layers[0].dramCycles - 1e-9)
            << acc->name(); // total = max(compute, dram)
        EXPECT_GE(ms.totalEnergyPj(), 0.0) << acc->name();
        EXPECT_GE(ms.usefulLaneCycles(), 0.0) << acc->name();
        EXPECT_GE(ms.intraPeStallLaneCycles(), -1e-6) << acc->name();
        EXPECT_GE(ms.interPeStallLaneCycles(), -1e-6) << acc->name();
    }
}

TEST_P(PipelineFuzz, BatcherNeverDropsOrDuplicatesRequests)
{
    // Batcher-shape fuzzer: random (numRequests, inputDim, maxBatch,
    // flushDelay) tuples against the serving runtime. Invariants: every
    // request resolves exactly once with Ok, its logits bit-match its
    // own single-sample per-dot-policy oracle (a dropped, duplicated or
    // row-swapped request cannot pass), and the batch-size histogram
    // accounts for every request exactly once.
    Rng rng(GetParam() ^ 0xba7c);
    for (int iter = 0; iter < 3; ++iter) {
        std::int64_t numRequests = rng.uniformInt(1, 80);
        std::int64_t inputDim = rng.uniformInt(4, 48);
        std::int64_t hidden = rng.uniformInt(4, 40);
        std::int64_t classes = rng.uniformInt(2, 10);
        std::int64_t groupSize = rng.uniformInt(4, 64);
        int target = static_cast<int>(rng.uniformInt(0, 4));

        Network net;
        Rng wrng(rng.next());
        net.add(std::make_unique<Dense>(inputDim, hidden, wrng));
        net.add(std::make_unique<ReluLayer>());
        net.add(std::make_unique<Dense>(hidden, classes, wrng));
        auto registry = std::make_shared<ModelRegistry>();
        registry->add("m", Int8Network::fromNetwork(
                               net, groupSize, target,
                               rng.bernoulli(0.5)
                                   ? PruneStrategy::RoundedAveraging
                                   : PruneStrategy::ZeroPointShifting));
        auto engine = registry->find("m");

        // Distinct random inputs and their serial oracles.
        std::vector<std::vector<float>> inputs(
            static_cast<std::size_t>(numRequests));
        std::vector<std::vector<float>> oracle(inputs.size());
        for (std::size_t j = 0; j < inputs.size(); ++j) {
            inputs[j].resize(static_cast<std::size_t>(inputDim));
            for (float &v : inputs[j])
                v = static_cast<float>(rng.uniformReal(-2.0, 2.0));
            Batch x(Shape{1, inputDim});
            for (std::int64_t c = 0; c < inputDim; ++c)
                x.at(0, c) = inputs[j][static_cast<std::size_t>(c)];
            Batch y = engine->forward(
                x, InferencePolicy{bbs::engine::Calibration::PerBatch,
                                   bbs::engine::PlanKind::PerDot});
            oracle[j].resize(static_cast<std::size_t>(classes));
            for (std::int64_t c = 0; c < classes; ++c)
                oracle[j][static_cast<std::size_t>(c)] = y.at(0, c);
        }

        ServerConfig cfg;
        cfg.maxBatch = rng.uniformInt(1, 16);
        cfg.maxDelayUs = rng.uniformInt(0, 2000);
        cfg.workers = 1;
        InferenceServer server(registry, cfg);

        // A few producers interleave the submissions.
        constexpr int kThreads = 4;
        std::vector<std::future<InferenceResponse>> futs(inputs.size());
        std::vector<std::thread> producers;
        for (int t = 0; t < kThreads; ++t) {
            producers.emplace_back([&, t] {
                for (std::size_t j = static_cast<std::size_t>(t);
                     j < inputs.size(); j += kThreads)
                    futs[j] = server.submit("m", inputs[j]);
            });
        }
        for (auto &p : producers)
            p.join();

        for (std::size_t j = 0; j < futs.size(); ++j) {
            InferenceResponse resp = futs[j].get();
            ASSERT_EQ(resp.status, ServeStatus::Ok)
                << serveStatusName(resp.status) << " j=" << j;
            ASSERT_EQ(resp.logits, oracle[j])
                << "j=" << j << " maxBatch=" << cfg.maxBatch
                << " delay=" << cfg.maxDelayUs;
            ASSERT_GE(resp.batchRows, 1);
            ASSERT_LE(resp.batchRows, cfg.maxBatch);
        }
        server.stop();

        StatsSnapshot s = server.stats();
        EXPECT_EQ(s.completed,
                  static_cast<std::uint64_t>(numRequests));
        EXPECT_EQ(s.expired + s.shutdownRejected + s.badRequests, 0u);
        std::uint64_t histRows = 0;
        for (std::size_t n = 0; n < s.batchHist.size(); ++n)
            histRows += s.batchHist[n] * n;
        EXPECT_EQ(histRows, s.completed);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace bbs
