/**
 * @file
 * Tests for the analytical gate/PE area-power model (Tables IV-VI).
 */
#include <gtest/gtest.h>

#include "hw/gates.hpp"
#include "hw/pe_model.hpp"

namespace bbs {
namespace {

TEST(Gates, CostsScaleWithSize)
{
    EXPECT_GT(adder(16).ge, adder(8).ge);
    EXPECT_GT(subtractor(8).ge, adder(8).ge);
    EXPECT_GT(mux(16, 8).ge, mux(5, 8).ge);
    EXPECT_GT(mux(8, 16).ge, mux(8, 8).ge);
    EXPECT_GT(multiplier(8, 8).ge, multiplier(4, 8).ge);
    EXPECT_GT(variableShifter(16, 16).ge, variableShifter(16, 4).ge);
    EXPECT_EQ(mux(1, 8).ge, 0.0);
}

TEST(Gates, AdderTreeSumsLevels)
{
    // 8-leaf tree: 4 + 2 + 1 adders of widths 8, 9, 10.
    HwCost tree = adderTree(8, 8);
    HwCost manual = adder(8) * 4.0 + adder(9) * 2.0 + adder(10);
    EXPECT_DOUBLE_EQ(tree.ge, manual.ge);
}

TEST(Gates, AreaPowerConversion)
{
    HwCost c{100.0, 50.0};
    EXPECT_DOUBLE_EQ(c.areaUm2(), 100.0 * kAreaPerGe);
    EXPECT_DOUBLE_EQ(c.powerMw(), 50.0 * kPowerPerGe);
}

TEST(PeModel, StripesIsTheLeanestBitSerialPe)
{
    double stripes = stripesPe().totalArea();
    EXPECT_LT(stripes, pragmaticPe().totalArea());
    EXPECT_LT(stripes, bitletPe().totalArea());
    EXPECT_LT(stripes, bitwavePe().totalArea());
    EXPECT_LT(stripes, bitvertPe().totalArea());
}

TEST(PeModel, BitletMuxOverheadDominates)
{
    // Table V: Bitlet is by far the largest PE, with "others" (muxes)
    // dominating its area.
    PeCost bitlet = bitletPe();
    EXPECT_GT(bitlet.totalArea(), pragmaticPe().totalArea());
    EXPECT_GT(bitlet.totalArea(), bitvertPe().totalArea());
    EXPECT_GT(bitlet.othersArea, bitlet.multiplierArea);
}

TEST(PeModel, PaperTable5Orderings)
{
    // Area ordering: Stripes < BitWave < BitVert < Pragmatic < Bitlet.
    double s = stripesPe().totalArea();
    double w = bitwavePe().totalArea();
    double v = bitvertPe().totalArea();
    double p = pragmaticPe().totalArea();
    double b = bitletPe().totalArea();
    EXPECT_LT(s, w);
    EXPECT_LT(w, v);
    EXPECT_LT(v, p);
    EXPECT_LT(p, b);
    // BitVert power is below Pragmatic/Bitlet/BitWave (Table V).
    EXPECT_LT(bitvertPe().powerMw, pragmaticPe().powerMw);
    EXPECT_LT(bitvertPe().powerMw, bitletPe().powerMw);
    EXPECT_LT(bitvertPe().powerMw, bitwavePe().powerMw);
}

TEST(PeModel, OptimizationShrinksEverySubGroupSize)
{
    for (int sg : {4, 8, 16}) {
        PeCost base = bitvertPe(sg, false);
        PeCost opt = bitvertPe(sg, true);
        EXPECT_LT(opt.totalArea(), base.totalArea()) << "sg=" << sg;
        EXPECT_LE(opt.powerMw, base.powerMw) << "sg=" << sg;
    }
}

TEST(PeModel, SubGroup8IsTheSweetSpot)
{
    // Table IV: sub-group 16 unoptimized is much larger; optimized 8 has
    // the best area x power.
    PeCost sg16 = bitvertPe(16, true);
    PeCost sg8 = bitvertPe(8, true);
    EXPECT_LT(sg8.totalArea(), sg16.totalArea());

    double edp8 = sg8.totalArea() * sg8.powerMw;
    double edp16 = bitvertPe(16, true).totalArea() *
                   bitvertPe(16, true).powerMw;
    double edp4 = bitvertPe(4, true).totalArea() *
                  bitvertPe(4, true).powerMw;
    EXPECT_LE(edp8, edp16);
    EXPECT_LE(edp8, edp4 * 1.05); // allow a hair of slack vs sg4
}

TEST(PeModel, OlivePeIsSmallButSlowPerMultiply)
{
    // Table VI: Olive's PE is smaller than BitVert's but computes only one
    // multiplication per cycle; BitVert wins performance per area.
    PeCost olive = olivePe();
    PeCost bv = bitvertPe();
    EXPECT_LT(olive.totalArea(), bv.totalArea());
    // Perf: BitVert computes 16 MACs in 4 cycles (moderate pruning) = 4
    // MACs/cycle vs Olive's 1.
    double perfPerAreaRatio =
        (4.0 / bv.totalArea()) / (1.0 / olive.totalArea());
    EXPECT_GT(perfPerAreaRatio, 1.0);
}

} // namespace
} // namespace bbs
