/**
 * @file
 * Tests for integer inference through the compressed-domain kernels: the
 * INT8 engine must track the float network closely, and BBS compression
 * inside it must behave like the fake-quantized path.
 */
#include <gtest/gtest.h>

#include "accel/bitvert_array.hpp"
#include "nn/dataset.hpp"
#include "nn/evaluate.hpp"
#include "engine/engine.hpp"
#include "nn/int8_infer.hpp"

namespace bbs {
namespace {

class Int8InferTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ds_ = makeClusterDataset(100, 4, 16, 909);
        Rng rng(31);
        net_.add(std::make_unique<Dense>(ds_.features, 48, rng));
        net_.add(std::make_unique<ReluLayer>());
        net_.add(std::make_unique<Dense>(48, 24, rng));
        net_.add(std::make_unique<GeluLayer>());
        net_.add(std::make_unique<Dense>(24, ds_.numClasses, rng));
        TrainOptions opts;
        opts.epochs = 12;
        trainNetwork(net_, ds_.trainX, ds_.trainY, opts);
        floatAcc_ = accuracyPercent(net_, ds_.testX, ds_.testY);
    }

    Dataset ds_;
    Network net_;
    double floatAcc_ = 0.0;
};

TEST_F(Int8InferTest, UncompressedInt8TracksFloatNetwork)
{
    // targetColumns = 0: plain INT8 integer inference.
    Int8Network engine = Int8Network::fromNetwork(
        net_, 32, 0, PruneStrategy::RoundedAveraging);
    std::vector<int> pred = engine.predict(ds_.testX);

    std::int64_t hits = 0;
    for (std::size_t i = 0; i < ds_.testY.size(); ++i)
        hits += (pred[i] == ds_.testY[i]);
    double acc = 100.0 * static_cast<double>(hits) /
                 static_cast<double>(ds_.testY.size());
    EXPECT_NEAR(acc, floatAcc_, 4.0);
    EXPECT_NEAR(engine.effectiveBits(), 8.0 + 8.0 / 32.0, 0.3);
}

TEST_F(Int8InferTest, LogitsCloseToFloatReference)
{
    Int8Network engine = Int8Network::fromNetwork(
        net_, 32, 0, PruneStrategy::RoundedAveraging);
    Batch intLogits = engine.forward(ds_.testX);
    Batch floatLogits = net_.forward(ds_.testX);

    // Per-element deviation bounded by accumulated quantization noise.
    double maxAbs = 0.0;
    for (std::int64_t i = 0; i < floatLogits.numel(); ++i)
        maxAbs = std::max(maxAbs,
                          static_cast<double>(
                              std::abs(floatLogits.flat(i))));
    for (std::int64_t i = 0; i < floatLogits.numel(); ++i) {
        double err = std::abs(static_cast<double>(intLogits.flat(i)) -
                              floatLogits.flat(i));
        EXPECT_LE(err, 0.15 * maxAbs + 0.3) << "i=" << i;
    }
}

TEST_F(Int8InferTest, BbsCompressionInsideIntegerPathKeepsAccuracy)
{
    Int8Network cons = Int8Network::fromNetwork(
        net_, 32, 2, PruneStrategy::RoundedAveraging);
    Int8Network mod = Int8Network::fromNetwork(
        net_, 32, 4, PruneStrategy::ZeroPointShifting);

    auto accOf = [&](Int8Network &engine) {
        std::vector<int> pred = engine.predict(ds_.testX);
        std::int64_t hits = 0;
        for (std::size_t i = 0; i < ds_.testY.size(); ++i)
            hits += (pred[i] == ds_.testY[i]);
        return 100.0 * static_cast<double>(hits) /
               static_cast<double>(ds_.testY.size());
    };

    EXPECT_GT(accOf(cons), floatAcc_ - 6.0);
    EXPECT_GT(accOf(mod), floatAcc_ - 8.0);
    EXPECT_NEAR(cons.effectiveBits(), 6.25, 0.3);
    EXPECT_NEAR(mod.effectiveBits(), 4.25, 0.3);
}

TEST_F(Int8InferTest, GemmForwardBitIdenticalToPerDotReference)
{
    // Every execution kind of the per-layer plans is the same integer
    // arithmetic followed by the same float rescale, so logits must be
    // bit-identical — across compression operating points and batch
    // sizes (including one straddling 64-column words).
    const InferencePolicy perDotPolicy{bbs::engine::Calibration::PerBatch,
                                       bbs::engine::PlanKind::PerDot};
    const InferencePolicy batchedPolicy{
        bbs::engine::Calibration::PerBatch, bbs::engine::PlanKind::CompressedBatched};
    for (int target : {0, 3}) {
        Int8Network engine = Int8Network::fromNetwork(
            net_, 32, target, PruneStrategy::ZeroPointShifting);
        for (std::int64_t rows : {std::int64_t{1}, std::int64_t{7},
                                  ds_.testX.shape().dim(0)}) {
            Batch x(Shape{rows, ds_.testX.shape().dim(1)});
            for (std::int64_t i = 0; i < x.numel(); ++i)
                x.flat(i) = ds_.testX.flat(i);
            Batch gemm = engine.forward(x); // Auto execution
            Batch perDot = engine.forward(x, perDotPolicy);
            Batch batched = engine.forward(x, batchedPolicy);
            ASSERT_TRUE(gemm.shape() == perDot.shape());
            for (std::int64_t i = 0; i < gemm.numel(); ++i) {
                ASSERT_EQ(gemm.flat(i), perDot.flat(i))
                    << "target=" << target << " rows=" << rows
                    << " i=" << i;
                ASSERT_EQ(gemm.flat(i), batched.flat(i))
                    << "target=" << target << " rows=" << rows
                    << " i=" << i;
            }
#if BBS_LEGACY_WRAPPERS
            // The legacy wrapper must resolve to the same policy.
            Batch legacy = engine.forwardPerDot(x);
            for (std::int64_t i = 0; i < gemm.numel(); ++i)
                ASSERT_EQ(legacy.flat(i), perDot.flat(i)) << "i=" << i;
#endif
        }
    }
}

TEST_F(Int8InferTest, BatchedEvaluationMatchesWholeSetEvaluation)
{
    Int8Network engine = Int8Network::fromNetwork(
        net_, 32, 0, PruneStrategy::RoundedAveraging);

    // Mini-batched accuracy through the GEMM engine must track the
    // float network like the whole-set path does (activation scales are
    // calibrated per batch, so tiny deviations are expected, not drift).
    double whole = accuracyPercent(engine, ds_.testX, ds_.testY,
                                   ds_.testX.shape().dim(0));
    double batched = accuracyPercent(engine, ds_.testX, ds_.testY, 16);
    EXPECT_NEAR(batched, whole, 8.0);
    EXPECT_NEAR(whole, floatAcc_, 4.0);

    // Perplexity over the integer logits is finite and sane.
    double ppl = perplexity(engine, ds_.testX, ds_.testY, 32);
    EXPECT_GT(ppl, 1.0);
    EXPECT_LT(ppl, static_cast<double>(ds_.numClasses) * 2.0);
}

TEST(BitVertArrayConv, ConvViaIm2colMatchesDirectReference)
{
    Rng rng(77);
    Int8Tensor w(Shape{8, 3, 3, 3});
    Int8Tensor input(Shape{3, 6, 6});
    for (std::int64_t i = 0; i < w.numel(); ++i)
        w.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    for (std::int64_t i = 0; i < input.numel(); ++i)
        input.flat(i) =
            static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    std::vector<float> scales(8, 1.0f);

    GlobalPruneConfig cfg = moderateConfig();
    cfg.beta = 1.0; // lossless: everything sensitive
    BitVertArrayResult res =
        runBitVertArrayConv(w, scales, input, /*pad=*/1, cfg);
    Int32Tensor ref = convReference(w, input, 1);

    ASSERT_TRUE(res.outputs.shape() == ref.shape());
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        EXPECT_EQ(res.outputs.flat(i), ref.flat(i)) << "i=" << i;
}

TEST(BitVertArrayConv, PrunedConvMatchesPrunedReference)
{
    Rng rng(78);
    Int8Tensor w(Shape{32, 4, 3, 3});
    Int8Tensor input(Shape{4, 5, 5});
    for (std::int64_t i = 0; i < w.numel(); ++i)
        w.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    for (std::int64_t i = 0; i < input.numel(); ++i)
        input.flat(i) =
            static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    std::vector<float> scales(32);
    for (auto &s : scales)
        s = static_cast<float>(rng.uniformReal(0.5, 2.0));

    GlobalPruneConfig cfg = moderateConfig();
    BitVertArrayResult res =
        runBitVertArrayConv(w, scales, input, 1, cfg);

    // Reference over the pruned flattened weights.
    Int8Tensor flat(Shape{32, 36});
    std::copy(w.data().begin(), w.data().end(), flat.data().begin());
    std::vector<PrunableLayer> model(1);
    model[0].name = "conv";
    model[0].codes = flat;
    model[0].scales = scales;
    PrunedModel pm = globalBinaryPrune(model, cfg);
    Int32Tensor ref =
        gemmReference(pm.layers[0].codes, im2colInt8(input, 3, 1));

    for (std::int64_t i = 0; i < ref.numel(); ++i)
        EXPECT_EQ(res.outputs.flat(i), ref.flat(i)) << "i=" << i;
}

} // namespace
} // namespace bbs
