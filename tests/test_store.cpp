/**
 * @file
 * The model store's contracts:
 *
 *  - ROUND-TRIP BIT-IDENTITY: a network or operand packed into a BBMS
 *    container and mapped back produces bit-identical plan outputs and
 *    forward passes — the mapped-view PackedOperand path IS the owned
 *    path, byte for byte (the tentpole claim).
 *  - HOSTILE INPUT: a container is untrusted. tryOpen carries the
 *    tryDeserialize contract — every truncation, bounds, alignment,
 *    overlap and payload-field corruption is rejected with a
 *    diagnostic, never UB (CI runs this file under ASan/UBSan).
 *  - HOT-SWAP + LRU: registry swaps are versioned and atomic under
 *    concurrent lookups; the store's LRU eviction respects the budget
 *    and never evicts a pinned (refcounted) model.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include <unistd.h>

#include "common/random.hpp"
#include "engine/engine.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "serve/model_registry.hpp"
#include "store/container.hpp"
#include "store/model_store.hpp"

namespace bbs {
namespace {

using engine::PackedOperand;
using engine::PackKind;
using engine::PackOptions;
using engine::Session;
using store::MappedContainer;
using store::ModelStore;
using store::StoreConfig;

Int8Tensor
randomMatrix(std::int64_t rows, std::int64_t cols, Rng &rng)
{
    Int8Tensor t(Shape{rows, cols});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return t;
}

Int8Network
makeEngine(std::int64_t in, std::int64_t hidden, std::int64_t out,
           int targetColumns, std::uint64_t seed)
{
    Rng rng(seed);
    Network net;
    net.add(std::make_unique<Dense>(in, hidden, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(hidden, out, rng));
    return Int8Network::fromNetwork(net, 32, targetColumns,
                                    PruneStrategy::ZeroPointShifting);
}

Batch
randomBatch(std::int64_t n, std::int64_t features, std::uint64_t seed)
{
    Rng rng(seed);
    Batch x(Shape{n, features});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x.flat(i) = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    return x;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "bbs_store_" + name + "_" +
           std::to_string(::getpid()) + ".bbms";
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Every logit of two forward passes, bit-for-bit. */
void
expectSameLogits(const Batch &a, const Batch &b, const char *what)
{
    ASSERT_EQ(a.numel(), b.numel()) << what;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        ASSERT_EQ(a.flat(i), b.flat(i)) << what << " i=" << i;
}

// ------------------------------------------------- round-trip identity

TEST(StoreContainerTest, ModelRoundTripBitIdentity)
{
    Int8Network owned = makeEngine(24, 48, 8, 3, 0xab1e);
    std::string path = tempPath("model_rt");
    std::size_t bytes = store::writeModelContainer(owned, path);
    EXPECT_GT(bytes, 0u);

    auto container = MappedContainer::open(path);
    EXPECT_EQ(container->bytes(), bytes);
    EXPECT_EQ(container->layerCount(), owned.layers().size());
    Int8Network mapped = store::mapModel(container);

    EXPECT_EQ(mapped.inputFeatures(), owned.inputFeatures());
    EXPECT_EQ(mapped.outputFeatures(), owned.outputFeatures());
    EXPECT_DOUBLE_EQ(mapped.effectiveBits(), owned.effectiveBits());
    for (std::size_t i = 0; i < owned.layers().size(); ++i)
        EXPECT_TRUE(mapped.layers()[i].planes->mappedView());

    Batch x = randomBatch(7, owned.inputFeatures(), 99);
    for (auto calib :
         {engine::Calibration::PerBatch, engine::Calibration::PerRow}) {
        InferencePolicy policy;
        policy.calibration = calib;
        expectSameLogits(owned.forward(x, policy),
                         mapped.forward(x, policy), "model");
    }
    std::remove(path.c_str());
}

TEST(StoreContainerTest, OperandRoundTripBitIdentity)
{
    // Both representations, several operating points (including
    // all-pruned groups at target 0 via high targets and ragged tails).
    Rng rng(77);
    Session s;
    std::string path = tempPath("operand_rt");
    for (int target : {0, 3, 6}) {
        Int8Tensor w = randomMatrix(6, 96, rng);
        Int8Tensor acts = randomMatrix(9, 96, rng);
        std::vector<PackedOperand> ops;
        ops.push_back(s.pack(
            w, PackOptions{32, target, PruneStrategy::ZeroPointShifting}));
        ops.push_back(PackedOperand::packDense(w));
        store::writeOperandContainer(ops, path);

        auto container = MappedContainer::open(path);
        ASSERT_EQ(container->operandCount(), 2u);
        ASSERT_EQ(container->layerCount(), 0u);
        for (std::size_t i = 0; i < ops.size(); ++i) {
            PackedOperand mapped = store::mapOperand(container, i);
            EXPECT_TRUE(mapped.mapped());
            EXPECT_EQ(mapped.kind(), ops[i].kind());
            EXPECT_EQ(mapped.rows(), ops[i].rows());
            EXPECT_EQ(mapped.cols(), ops[i].cols());
            EXPECT_DOUBLE_EQ(mapped.meanStoredBits(),
                             ops[i].meanStoredBits());

            Int32Tensor before = s.plan(ops[i]).run(acts);
            Int32Tensor after = s.plan(mapped).run(acts);
            for (std::int64_t k = 0; k < before.numel(); ++k)
                ASSERT_EQ(before.flat(k), after.flat(k))
                    << "target=" << target << " op=" << i << " k=" << k;

            // unpack() reconstructs the same INT8 matrix from the view.
            Int8Tensor a = ops[i].unpack(), b = mapped.unpack();
            for (std::int64_t k = 0; k < a.numel(); ++k)
                ASSERT_EQ(a.flat(k), b.flat(k));
        }
    }
    std::remove(path.c_str());
}

TEST(StoreContainerTest, MappingOutlivesContainerHandle)
{
    // The aliasing shared_ptr contract: dropping every direct container
    // reference must keep the mapping alive while a network or plan
    // built over it exists (this is what makes hot-swap drain safe).
    Int8Network owned = makeEngine(16, 24, 4, 2, 0xfeed);
    std::string path = tempPath("lifetime");
    store::writeModelContainer(owned, path);

    Batch x = randomBatch(5, owned.inputFeatures(), 5);
    Batch expected = owned.forward(x);
    Int8Network mapped = [&] {
        auto container = MappedContainer::open(path);
        return store::mapModel(container);
    }(); // container handle gone; pages must still be mapped
    expectSameLogits(expected, mapped.forward(x), "after handle drop");
    std::remove(path.c_str());
}

// --------------------------------------------------- hostile containers

class StoreFuzzTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tempPath("fuzz");
        std::string goldenPath = tempPath("fuzz_golden");
        store::writeModelContainer(makeEngine(16, 24, 4, 3, 0x5eed),
                                   goldenPath);
        golden_ = readFile(goldenPath);
        std::remove(goldenPath.c_str());
        ASSERT_GE(golden_.size(), 4096u);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** tryOpen on @p bytes must reject without dying. */
    void
    expectRejected(const std::vector<std::uint8_t> &bytes,
                   const char *what)
    {
        writeFile(path_, bytes);
        std::shared_ptr<const MappedContainer> c;
        std::string error;
        EXPECT_FALSE(MappedContainer::tryOpen(path_, c, &error)) << what;
        EXPECT_FALSE(error.empty()) << what;
        EXPECT_EQ(c, nullptr) << what;
    }

    /** golden_ with bytes [at, at+n) overwritten by @p v. */
    std::vector<std::uint8_t>
    mutated(std::size_t at, std::initializer_list<std::uint8_t> v)
    {
        std::vector<std::uint8_t> bytes = golden_;
        std::size_t i = at;
        for (std::uint8_t b : v)
            bytes[i++] = b;
        return bytes;
    }

    std::string path_;
    std::vector<std::uint8_t> golden_;
};

TEST_F(StoreFuzzTest, TruncationsAtEveryBoundary)
{
    // Every interesting prefix: empty, partial header, header only,
    // partial directory, one page, all-but-one byte. (fileBytes
    // mismatch catches the ones the structural checks don't.)
    for (std::size_t keep :
         {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
          std::size_t{96}, std::size_t{4095}, std::size_t{4096},
          golden_.size() / 2, golden_.size() - 1}) {
        std::vector<std::uint8_t> bytes(golden_.begin(),
                                        golden_.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                keep));
        expectRejected(bytes, "truncation");
    }
}

TEST_F(StoreFuzzTest, HeaderCorruptions)
{
    expectRejected(mutated(0, {0xde, 0xad}), "bad magic");
    expectRejected(mutated(4, {0x7f}), "unsupported version");
    expectRejected(mutated(8, {0x63}), "bad header size");
    expectRejected(mutated(12, {0xff, 0xff, 0xff, 0x7f}),
                   "huge entryCount");
    expectRejected(mutated(16, {0x01}), "fileBytes mismatch");
    expectRejected(mutated(24, {0x03, 0x01}), "non-power-of-two align");
    expectRejected(mutated(40, {0xaa, 0xbb}), "layout tag mismatch");
}

TEST_F(StoreFuzzTest, DirectoryCorruptions)
{
    const std::size_t dir = sizeof(store::FileHeader); // first entry
    // kind (offset +0), index (+4), offset (+8), length (+16)
    expectRejected(mutated(dir + 0, {0x00}), "kind zero");
    expectRejected(mutated(dir + 0, {0x63}), "unknown kind");
    expectRejected(mutated(dir + 8, {0x01}), "misaligned offset");
    expectRejected(mutated(dir + 8,
                           {0xf6, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                            0xff}),
                   "offset near UINT64_MAX (offset+length wraps)");
    expectRejected(mutated(dir + 16,
                           {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                            0x7f}),
                   "length beyond file");
    expectRejected(mutated(dir + 16, {0x00, 0x00, 0x00, 0x00, 0x00,
                                      0x00, 0x00, 0x00}),
                   "zero length");

    // Second entry aliasing the first extent.
    {
        std::vector<std::uint8_t> bytes = golden_;
        std::memcpy(bytes.data() + dir + sizeof(store::DirEntry) + 8,
                    bytes.data() + dir + 8, 16);
        expectRejected(bytes, "overlapping extents");
    }
}

TEST_F(StoreFuzzTest, HostileGroupFields)
{
    // Locate the Groups payload through the real directory, then plant
    // field values the kernels would turn into OOB indexing / shift UB.
    store::FileHeader header;
    std::memcpy(&header, golden_.data(), sizeof(header));
    std::uint64_t groupsOff = 0, shiftsOff = 0;
    for (std::uint32_t i = 0; i < header.entryCount; ++i) {
        store::DirEntry e;
        std::memcpy(&e,
                    golden_.data() + sizeof(header) +
                        i * sizeof(store::DirEntry),
                    sizeof(e));
        if (e.kind == static_cast<std::uint32_t>(
                          store::SectionKind::Groups) &&
            groupsOff == 0)
            groupsOff = e.offset;
        if (e.kind == static_cast<std::uint32_t>(
                          store::SectionKind::Shifts) &&
            shiftsOff == 0)
            shiftsOff = e.offset;
    }
    ASSERT_NE(groupsOff, 0u);
    ASSERT_NE(shiftsOff, 0u);

    const std::size_t sizeAt = groupsOff + offsetof(PackedGroup, size);
    const std::size_t bitsAt = groupsOff + offsetof(PackedGroup, bits);
    expectRejected(mutated(bitsAt, {9}), "bits > kWeightBits");
    expectRejected(mutated(bitsAt, {0xff, 0xff, 0xff, 0xff}),
                   "negative bits");
    expectRejected(mutated(sizeAt, {65}), "size > 64");
    expectRejected(mutated(sizeAt, {0xff, 0xff, 0xff, 0xff}),
                   "negative size");
    expectRejected(mutated(sizeAt, {7}),
                   "size disagrees with the column tiling");
    expectRejected(mutated(shiftsOff, {9}), "shift > 8");
    expectRejected(mutated(shiftsOff, {0xf7}), "negative shift");
}

TEST_F(StoreFuzzTest, RandomMutationsNeverCrash)
{
    // Byte-flip fuzz over the structured region (header + directory +
    // first metadata page): every outcome must be a clean rejection or
    // a successful open whose model still runs (ASan/UBSan in CI turn
    // any liberty taken here into a failure).
    Rng rng(0xfa22);
    std::size_t structured = std::min<std::size_t>(golden_.size(), 8192);
    for (int iter = 0; iter < 300; ++iter) {
        std::vector<std::uint8_t> bytes = golden_;
        int flips = 1 + static_cast<int>(rng.uniformInt(0, 3));
        for (int f = 0; f < flips; ++f) {
            std::size_t at = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(structured) - 1));
            bytes[at] ^= static_cast<std::uint8_t>(
                1u << rng.uniformInt(0, 7));
        }
        writeFile(path_, bytes);
        std::shared_ptr<const MappedContainer> c;
        if (!MappedContainer::tryOpen(path_, c))
            continue;
        if (!c->hasModel())
            continue;
        Int8Network mapped = store::mapModel(c);
        Batch x = randomBatch(2, mapped.inputFeatures(),
                              static_cast<std::uint64_t>(iter));
        (void)mapped.forward(x); // must not crash / trip sanitizers
    }
}

TEST_F(StoreFuzzTest, ChecksumsCatchFlippedPayloadBits)
{
    // The structural open never reads dense payload bytes (that is the
    // point: open stays page-fault-bound), so a flipped bit deep in a
    // payload section sails through tryOpen — and must be caught by
    // the opt-in CRC pass.
    writeFile(path_, golden_);
    std::shared_ptr<const MappedContainer> c;
    ASSERT_TRUE(MappedContainer::tryOpen(path_, c));
    EXPECT_TRUE(c->hasChecksums());
    EXPECT_TRUE(c->verifyChecksums());

    // Flip one bit in the middle of a Constants section: a payload the
    // structural validation never inspects.
    store::FileHeader header;
    std::memcpy(&header, golden_.data(), sizeof(header));
    store::DirEntry target = {};
    for (std::uint32_t i = 0; i < header.entryCount; ++i) {
        store::DirEntry e;
        std::memcpy(&e,
                    golden_.data() + sizeof(header) +
                        i * sizeof(store::DirEntry),
                    sizeof(e));
        if (e.kind == static_cast<std::uint32_t>(
                          store::SectionKind::Constants)) {
            target = e;
            break;
        }
    }
    ASSERT_NE(target.offset, 0u);
    ASSERT_NE(target.reserved & store::kDirHasCrc, 0u);
    std::vector<std::uint8_t> corrupt = golden_;
    corrupt[target.offset + target.length / 2] ^= 0x10;
    writeFile(path_, corrupt);

    std::shared_ptr<const MappedContainer> bad;
    ASSERT_TRUE(MappedContainer::tryOpen(path_, bad))
        << "structural open must not notice payload corruption";
    std::string error;
    EXPECT_FALSE(bad->verifyChecksums(&error));
    EXPECT_NE(error.find("checksum mismatch"), std::string::npos)
        << error;

    // The store surfaces the same rejection when asked to verify —
    // and stays lazy (accepting the corrupt file) when not.
    obs::Registry metrics;
    StoreConfig config;
    config.registry = &metrics;
    config.verifyChecksums = true;
    ModelStore verifying(config);
    std::shared_ptr<const store::MappedModel> model;
    error.clear();
    EXPECT_FALSE(verifying.tryLoad(path_, model, &error));
    EXPECT_NE(error.find("checksum mismatch"), std::string::npos);
    config.verifyChecksums = false;
    ModelStore lazy(config);
    EXPECT_TRUE(lazy.tryLoad(path_, model, &error)) << error;
}

TEST_F(StoreFuzzTest, ChecksumWordEncodingIsValidated)
{
    // The reserved word has exactly two legal shapes; anything else is
    // rejected at open, cheaply, before any CRC is computed.
    const std::size_t reservedAt = sizeof(store::FileHeader) + 24;
    expectRejected(mutated(reservedAt + 5, {0x7a}),
                   "non-zero bits above the CRC flag");
    store::DirEntry first;
    std::memcpy(&first, golden_.data() + sizeof(store::FileHeader),
                sizeof(first));
    ASSERT_NE(static_cast<std::uint32_t>(first.reserved), 0u)
        << "test needs a non-zero stored CRC to exercise the "
           "flag-clear-but-crc-set rejection";
    expectRejected(mutated(reservedAt + 4, {0x00}),
                   "CRC flag clear but low bits set");
}

// ------------------------------------------------- registry hot-swap

TEST(ModelRegistryTest, SwapIsVersionedAndAtomicUnderLoad)
{
    // Two engines with IDENTICAL weights, one owned and one mapped:
    // every response during a swap storm must match the single oracle,
    // proving lookups never see a torn or half-registered model.
    Int8Network owned = makeEngine(16, 24, 4, 2, 0xd00d);
    std::string path = tempPath("swap");
    store::writeModelContainer(owned, path);
    auto container = MappedContainer::open(path);

    auto a = std::make_shared<const Int8Network>(
        makeEngine(16, 24, 4, 2, 0xd00d));
    auto b = std::make_shared<const Int8Network>(
        store::mapModel(container));

    Batch x = randomBatch(3, owned.inputFeatures(), 11);
    Batch expected = owned.forward(x);

    ModelRegistry registry;
    EXPECT_EQ(registry.version("m"), 0u);
    EXPECT_EQ(registry.swap("m", a), 1u);
    EXPECT_EQ(registry.version("m"), 1u);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> lookups{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                std::shared_ptr<const Int8Network> engine =
                    registry.find("m");
                ASSERT_NE(engine, nullptr);
                Batch got = engine->forward(x);
                for (std::int64_t i = 0; i < expected.numel(); ++i)
                    ASSERT_EQ(got.flat(i), expected.flat(i));
                lookups.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    std::uint64_t version = 1;
    for (int swapCount = 0; swapCount < 200; ++swapCount) {
        std::uint64_t v =
            registry.swap("m", swapCount % 2 == 0 ? b : a);
        EXPECT_EQ(v, ++version);
        if (swapCount % 16 == 0) // let lookups land between swaps
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Don't stop until every reader has verified at least a few
    // responses against the oracle with swaps completed around it.
    while (lookups.load(std::memory_order_relaxed) < 16)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stop.store(true);
    for (auto &r : readers)
        r.join();
    EXPECT_GT(lookups.load(), 0u);
    EXPECT_EQ(registry.version("m"), 201u);
    std::remove(path.c_str());
}

// ---------------------------------------------------- store LRU/budget

TEST(ModelStoreTest, ParseByteSize)
{
    EXPECT_EQ(store::parseByteSize(""), 0u);
    EXPECT_EQ(store::parseByteSize("junk"), 0u);
    EXPECT_EQ(store::parseByteSize("123"), 123u);
    EXPECT_EQ(store::parseByteSize("8K"), 8192u);
    EXPECT_EQ(store::parseByteSize("2m"), 2u << 20);
    EXPECT_EQ(store::parseByteSize("3G"), 3ull << 30);
    EXPECT_EQ(store::parseByteSize("1T"), 0u);   // unknown suffix
    EXPECT_EQ(store::parseByteSize("K"), 0u);    // no digits
    EXPECT_EQ(store::parseByteSize("1 K"), 0u);  // embedded junk
    EXPECT_EQ(store::parseByteSize("99999999999999999999"), 0u);
}

TEST(ModelStoreTest, LoadFailsCleanlyOnGarbage)
{
    obs::Registry metrics;
    StoreConfig config;
    config.registry = &metrics;
    ModelStore modelStore(config);
    std::string path = tempPath("garbage");
    writeFile(path, std::vector<std::uint8_t>(256, 0x5a));
    std::shared_ptr<const store::MappedModel> model;
    std::string error;
    EXPECT_FALSE(modelStore.tryLoad(path, model, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(modelStore.tryLoad(path + ".missing", model, &error));
    EXPECT_EQ(modelStore.residentModels(), 0u);
    std::remove(path.c_str());
}

TEST(ModelStoreTest, LruEvictionSkipsPinnedModels)
{
    std::string pa = tempPath("lru_a"), pb = tempPath("lru_b"),
                pc = tempPath("lru_c");
    store::writeModelContainer(makeEngine(16, 24, 4, 2, 0xaaaa), pa);
    store::writeModelContainer(makeEngine(16, 24, 4, 2, 0xbbbb), pb);
    store::writeModelContainer(makeEngine(16, 24, 4, 2, 0xcccc), pc);
    std::size_t one = readFile(pa).size();

    obs::Registry metrics;
    StoreConfig config;
    config.budgetBytes = one * 2 + one / 2; // room for two, not three
    config.registry = &metrics;
    ModelStore modelStore(config);

    // A stays pinned (we hold the ref); B is released and becomes the
    // LRU victim when C arrives.
    std::shared_ptr<const store::MappedModel> a = modelStore.load(pa);
    modelStore.load(pb);
    EXPECT_EQ(modelStore.residentModels(), 2u);
    std::shared_ptr<const store::MappedModel> c = modelStore.load(pc);
    EXPECT_EQ(modelStore.residentModels(), 2u);
    EXPECT_LE(modelStore.residentBytes(), config.budgetBytes);

    // A survived eviction (it was pinned *and* older than B): a fresh
    // load must be a cache hit handing back the same mapping.
    std::shared_ptr<const store::MappedModel> again = modelStore.load(pa);
    EXPECT_EQ(again, a);
    // B was evicted: loading it again is a fresh mapping.
    std::shared_ptr<const store::MappedModel> b2 = modelStore.load(pb);
    ASSERT_NE(b2, nullptr);

    // The pinned model's network still runs after all that churn.
    Batch x = randomBatch(2, a->network->inputFeatures(), 3);
    (void)a->network->forward(x);

    // Dropping every pin lets evictUnpinned clear the store.
    a.reset();
    c.reset();
    again.reset();
    b2.reset();
    modelStore.evictUnpinned();
    EXPECT_EQ(modelStore.residentModels(), 0u);
    EXPECT_EQ(modelStore.residentBytes(), 0u);

    std::remove(pa.c_str());
    std::remove(pb.c_str());
    std::remove(pc.c_str());
}

TEST(ModelStoreTest, BudgetFromEnvironment)
{
    ::setenv("BBS_STORE_BUDGET", "512K", 1);
    obs::Registry metrics;
    StoreConfig config;
    config.registry = &metrics;
    ModelStore fromEnv(config);
    EXPECT_EQ(fromEnv.budgetBytes(), 512u << 10);
    config.budgetBytes = 1024;
    ModelStore explicitBudget(config);
    EXPECT_EQ(explicitBudget.budgetBytes(), 1024u);
    ::unsetenv("BBS_STORE_BUDGET");
}

} // namespace
} // namespace bbs
