/**
 * @file
 * Transformer decode subsystem tests. The load-bearing invariants:
 *
 *  - **KV append = repack.** Incrementally appending token K/V rows into
 *    the cache's bit planes is word-identical to packing the full token
 *    matrix from scratch with `BitSerialMatrix::pack` — for ragged head
 *    widths, token counts off the 64-column boundary, and any append
 *    order over layers.
 *  - **Compressed-domain attention is exact.** `scores()` / `values()`
 *    running the bit-plane GEMM kernels row-bounded over the cache
 *    reproduce scalar integer dot products.
 *  - **Batch composition is unobservable.** A sequence's token stream
 *    from the continuous-batching scheduler is identical to
 *    `generateReference` (the naive unbatched oracle) no matter what it
 *    was co-batched with, when it was admitted, or how prefill was
 *    chunked.
 *  - **The concurrency contract holds under TSAN.** A reader honouring
 *    the documented committed-prefix rules races with an appending
 *    writer without a data race.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "engine/engine.hpp"
#include "llm/kv_cache.hpp"
#include "llm/transformer.hpp"
#include "serve/generation.hpp"

namespace bbs {
namespace {

std::vector<std::int8_t>
randomRow(Rng &rng, std::int64_t n)
{
    std::vector<std::int8_t> row(static_cast<std::size_t>(n));
    for (auto &v : row)
        v = static_cast<std::int8_t>(rng.uniformInt(-127, 127));
    return row;
}

/** Append T random tokens into a fresh cache; returns per-token rows
 *  [t][layer] as heads*dHead int8 vectors (K and V). */
struct AppendedTokens
{
    std::vector<std::vector<std::vector<std::int8_t>>> k, v;
};

AppendedTokens
appendRandomTokens(llm::KvCache &cache, std::int64_t tokens, Rng &rng)
{
    AppendedTokens out;
    std::int64_t width = cache.heads() * cache.dHead();
    for (std::int64_t t = 0; t < tokens; ++t) {
        out.k.emplace_back();
        out.v.emplace_back();
        for (std::int64_t l = 0; l < cache.layers(); ++l) {
            out.k.back().push_back(randomRow(rng, width));
            out.v.back().push_back(randomRow(rng, width));
            cache.append(l, t, out.k.back().back(),
                         static_cast<float>(rng.uniformReal(0.5, 2.0)),
                         out.v.back().back(),
                         static_cast<float>(rng.uniformReal(0.5, 2.0)));
        }
        cache.commit(t + 1);
    }
    return out;
}

TEST(KvCache, AppendMatchesFromScratchPack)
{
    engine::Session session;
    Rng rng(0xfeed0);
    struct Shape
    {
        std::int64_t layers, heads, dHead, capacity, tokens;
    };
    // Ragged head widths (64, sub-word 48, odd 17, degenerate 1) and
    // token counts straddling the 64-column V-word boundary.
    const Shape shapes[] = {
        {1, 1, 64, 64, 64},  {2, 2, 48, 128, 65},
        {1, 3, 17, 192, 63}, {2, 1, 1, 64, 7},
        {1, 2, 32, 256, 200},
    };
    for (const Shape &s : shapes) {
        llm::KvCache cache(
            session, {s.layers, s.heads, s.dHead, s.capacity});
        AppendedTokens toks = appendRandomTokens(cache, s.tokens, rng);
        ASSERT_EQ(cache.length(), s.tokens);

        for (std::int64_t l = 0; l < s.layers; ++l) {
            for (std::int64_t h = 0; h < s.heads; ++h) {
                // K reference: the [capacity, dHead] token matrix
                // (unwritten rows zero) packed from scratch.
                std::vector<std::int8_t> kFull(static_cast<std::size_t>(
                    cache.capacity() * s.dHead));
                // V reference: its [dHead, capacity] transpose.
                std::vector<std::int8_t> vFull(static_cast<std::size_t>(
                    s.dHead * cache.capacity()));
                for (std::int64_t t = 0; t < s.tokens; ++t) {
                    const std::int8_t *kRow =
                        toks.k[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(l)]
                                  .data() +
                        h * s.dHead;
                    const std::int8_t *vRow =
                        toks.v[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(l)]
                                  .data() +
                        h * s.dHead;
                    for (std::int64_t d = 0; d < s.dHead; ++d) {
                        kFull[static_cast<std::size_t>(t * s.dHead + d)] =
                            kRow[d];
                        vFull[static_cast<std::size_t>(
                            d * cache.capacity() + t)] = vRow[d];
                    }
                }
                BitSerialMatrix kRef = BitSerialMatrix::pack(
                    kFull, cache.capacity(), s.dHead);
                BitSerialMatrix vRef = BitSerialMatrix::pack(
                    vFull, s.dHead, cache.capacity());

                auto kGot = cache.kView(l, h).planeWords();
                auto kWant = kRef.planeWords();
                ASSERT_EQ(kGot.size(), kWant.size());
                EXPECT_TRUE(std::equal(kGot.begin(), kGot.end(),
                                       kWant.begin()))
                    << "K planes diverge at layer " << l << " head " << h;

                auto vGot = cache.vView(l, h).planeWords();
                auto vWant = vRef.planeWords();
                ASSERT_EQ(vGot.size(), vWant.size());
                EXPECT_TRUE(std::equal(vGot.begin(), vGot.end(),
                                       vWant.begin()))
                    << "V planes diverge at layer " << l << " head " << h;
            }
        }
    }
}

TEST(KvCache, ScoresAndValuesMatchScalarDots)
{
    engine::Session session;
    Rng rng(0xfeed1);
    const std::int64_t layers = 2, heads = 2, dHead = 48, capacity = 128;
    const std::int64_t tokens = 90; // off the word boundary
    llm::KvCache cache(session, {layers, heads, dHead, capacity});
    AppendedTokens toks = appendRandomTokens(cache, tokens, rng);

    std::vector<std::int8_t> q = randomRow(rng, dHead);
    BitSerialMatrix qPacked = BitSerialMatrix::pack(q, 1, dHead);
    engine::PackedOperand qOp = engine::PackedOperand::viewDense(qPacked);

    std::vector<std::int8_t> c(static_cast<std::size_t>(cache.capacity()),
                               0);
    for (std::int64_t t = 0; t < tokens; ++t)
        c[static_cast<std::size_t>(t)] =
            static_cast<std::int8_t>(rng.uniformInt(-127, 127));
    BitSerialMatrix cPacked =
        BitSerialMatrix::pack(c, 1, cache.capacity());
    engine::PackedOperand cOp = engine::PackedOperand::viewDense(cPacked);

    Int32Tensor s32, o32;
    for (std::int64_t l = 0; l < layers; ++l) {
        for (std::int64_t h = 0; h < heads; ++h) {
            cache.scores(l, h, qOp, tokens, s32);
            ASSERT_EQ(s32.shape().dim(0), 1);
            ASSERT_EQ(s32.shape().dim(1), tokens);
            for (std::int64_t t = 0; t < tokens; ++t) {
                std::int64_t want = 0;
                const std::int8_t *kRow =
                    toks.k[static_cast<std::size_t>(t)]
                          [static_cast<std::size_t>(l)]
                              .data() +
                    h * dHead;
                for (std::int64_t d = 0; d < dHead; ++d)
                    want += static_cast<std::int64_t>(q[static_cast<
                                std::size_t>(d)]) *
                            kRow[d];
                EXPECT_EQ(s32.at(0, t), want)
                    << "score l=" << l << " h=" << h << " t=" << t;
            }

            cache.values(l, h, cOp, o32);
            ASSERT_EQ(o32.shape().dim(0), 1);
            ASSERT_EQ(o32.shape().dim(1), dHead);
            for (std::int64_t d = 0; d < dHead; ++d) {
                std::int64_t want = 0;
                for (std::int64_t t = 0; t < tokens; ++t)
                    want +=
                        static_cast<std::int64_t>(
                            c[static_cast<std::size_t>(t)]) *
                        toks.v[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(l)]
                                  [static_cast<std::size_t>(h * dHead +
                                                            d)];
                EXPECT_EQ(o32.at(0, d), want)
                    << "value l=" << l << " h=" << h << " d=" << d;
            }
        }
    }
}

/** Writer appends and commits while a reader consumes the committed
 *  prefix per the documented contract. TSAN is the real assertion. */
TEST(KvCache, AppendUnderConcurrentRead)
{
    engine::Session session;
    const std::int64_t layers = 1, heads = 2, dHead = 32, capacity = 256;
    llm::KvCache cache(session, {layers, heads, dHead, capacity});
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> sink{0};

    std::thread reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            std::int64_t len = cache.length(); // acquire
            std::uint64_t acc = 0;
            for (std::int64_t h = 0; h < heads; ++h) {
                const BitSerialMatrix &k = cache.kView(0, h);
                for (std::int64_t t = 0; t < len; ++t)
                    acc ^= k.rowPlane(0, t)[0];
                // V: words strictly below len/64 only — the in-fill
                // word is writer-private until it holds 64 tokens.
                const BitSerialMatrix &v = cache.vView(0, h);
                std::int64_t words = len >> 6;
                for (std::int64_t d = 0; d < dHead; ++d) {
                    const std::uint64_t *plane = v.rowPlane(0, d);
                    for (std::int64_t w = 0; w < words; ++w)
                        acc ^= plane[w];
                }
            }
            sink.fetch_add(acc ^ 1, std::memory_order_relaxed);
        }
    });

    Rng rng(0xfeed2);
    std::int64_t width = heads * dHead;
    for (std::int64_t t = 0; t < capacity; ++t) {
        std::vector<std::int8_t> k = randomRow(rng, width);
        std::vector<std::int8_t> v = randomRow(rng, width);
        cache.append(0, t, k, 1.0f, v, 1.0f);
        cache.commit(t + 1);
    }
    stop.store(true, std::memory_order_release);
    reader.join();
    EXPECT_EQ(cache.length(), capacity);
}

llm::TransformerConfig
smallConfig()
{
    llm::TransformerConfig cfg;
    cfg.dModel = 64;
    cfg.nHeads = 2;
    cfg.dFf = 128;
    cfg.nLayers = 2;
    cfg.vocab = 96;
    cfg.maxSeq = 96;
    cfg.groupSize = 32;
    cfg.expectedBatch = 8;
    cfg.seed = 7;
    return cfg;
}

std::vector<std::int32_t>
randomPrompt(Rng &rng, std::int64_t len, std::int64_t vocab)
{
    std::vector<std::int32_t> p(static_cast<std::size_t>(len));
    for (auto &t : p)
        t = static_cast<std::int32_t>(rng.uniformInt(0, vocab - 1));
    return p;
}

TEST(Transformer, GenerateReferenceIsDeterministic)
{
    llm::TransformerModel model(smallConfig());
    Rng rng(0x9e9);
    auto prompt = randomPrompt(rng, 12, model.config().vocab);
    auto a = model.generateReference(prompt, 8);
    auto b = model.generateReference(prompt, 8);
    ASSERT_EQ(a.size(), 8u);
    EXPECT_EQ(a, b);
}

/** One collected stream per request. */
struct Collected
{
    std::vector<std::int32_t> tokens;
    ServeStatus status = ServeStatus::Ok;
    bool finished = false;
};

serve::StreamFn
collector(Collected &into)
{
    return [&into](const serve::StreamToken &t) {
        into.status = t.status;
        if (t.status == ServeStatus::Ok) {
            EXPECT_EQ(t.index, into.tokens.size());
            into.tokens.push_back(t.token);
        }
        if (t.last)
            into.finished = true;
    };
}

TEST(GenerationScheduler, ContinuousBatchingIsBitIdentical)
{
    llm::TransformerModel model(smallConfig());
    Rng rng(0xba7c);

    // Prompt lengths chosen to exercise chunked prefill (longer than
    // prefillChunk), single-token prompts, and mid-flight admission.
    const std::int64_t lens[] = {1, 3, 9, 17, 30, 5, 24, 2, 40, 11};
    const std::int64_t news[] = {6, 12, 3, 9, 1, 20, 7, 15, 4, 10};
    std::vector<std::vector<std::int32_t>> prompts;
    std::vector<std::vector<std::int32_t>> expected;
    for (std::size_t i = 0; i < std::size(lens); ++i) {
        prompts.push_back(
            randomPrompt(rng, lens[i], model.config().vocab));
        expected.push_back(
            model.generateReference(prompts.back(), news[i]));
    }

    serve::GenerationConfig gcfg;
    gcfg.maxStepRows = 8; // small: forces prefill chunking + queueing
    gcfg.maxActiveSeqs = 4;
    gcfg.prefillChunk = 5;
    gcfg.workers = 0;
    serve::GenerationScheduler sched(model, gcfg);

    std::vector<Collected> got(prompts.size());
    // Staggered submission: half up front, the rest mid-flight.
    for (std::size_t i = 0; i < prompts.size() / 2; ++i)
        sched.submit(prompts[i], news[i], collector(got[i]));
    int steps = 0;
    bool submittedRest = false;
    while (sched.stepOnce() || !submittedRest) {
        if (++steps == 3 && !submittedRest) {
            for (std::size_t i = prompts.size() / 2; i < prompts.size();
                 ++i)
                sched.submit(prompts[i], news[i], collector(got[i]));
            submittedRest = true;
        }
        ASSERT_LT(steps, 10000);
    }

    for (std::size_t i = 0; i < prompts.size(); ++i) {
        EXPECT_TRUE(got[i].finished) << "request " << i;
        EXPECT_EQ(got[i].status, ServeStatus::Ok);
        EXPECT_EQ(got[i].tokens, expected[i]) << "request " << i;
    }
    EXPECT_EQ(sched.activeSequences(), 0);
    EXPECT_EQ(sched.queuedSequences(), 0);
}

TEST(GenerationScheduler, WorkerThreadDrivesToCompletion)
{
    llm::TransformerModel model(smallConfig());
    Rng rng(0x3ead);
    auto prompt = randomPrompt(rng, 13, model.config().vocab);
    auto expected = model.generateReference(prompt, 10);

    serve::GenerationConfig gcfg;
    gcfg.workers = 1;
    serve::GenerationScheduler sched(model, gcfg);

    std::mutex m;
    std::condition_variable cv;
    Collected got;
    sched.submit(prompt, 10, [&](const serve::StreamToken &t) {
        std::lock_guard<std::mutex> lock(m);
        if (t.status == ServeStatus::Ok)
            got.tokens.push_back(t.token);
        got.status = t.status;
        if (t.last) {
            got.finished = true;
            cv.notify_one();
        }
    });
    std::unique_lock<std::mutex> lock(m);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                            [&] { return got.finished; }));
    EXPECT_EQ(got.tokens, expected);
}

TEST(GenerationScheduler, SubmitValidationAndShutdown)
{
    llm::TransformerModel model(smallConfig());
    serve::GenerationConfig gcfg;
    gcfg.maxQueuedSeqs = 1;
    gcfg.workers = 0;
    serve::GenerationScheduler sched(model, gcfg);

    Collected bad;
    sched.submit({}, 4, collector(bad)); // empty prompt
    EXPECT_TRUE(bad.finished);
    EXPECT_EQ(bad.status, ServeStatus::BadInput);

    std::vector<std::int32_t> outOfVocab{
        0, static_cast<std::int32_t>(model.config().vocab)};
    Collected bad2;
    sched.submit(outOfVocab, 4, collector(bad2));
    EXPECT_EQ(bad2.status, ServeStatus::BadInput);

    std::vector<std::int32_t> tooLong(
        static_cast<std::size_t>(model.config().maxSeq), 1);
    Collected bad3;
    sched.submit(tooLong, 4, collector(bad3)); // len + 4 - 1 > maxSeq
    EXPECT_EQ(bad3.status, ServeStatus::BadInput);

    std::vector<std::int32_t> ok{1, 2, 3};
    Collected q1, q2;
    sched.submit(ok, 4, collector(q1));
    sched.submit(ok, 4, collector(q2)); // queue is full (maxQueuedSeqs=1)
    EXPECT_FALSE(q1.finished);
    EXPECT_TRUE(q2.finished);
    EXPECT_EQ(q2.status, ServeStatus::Overloaded);

    sched.stop();
    EXPECT_TRUE(q1.finished); // queued request failed with ShutDown
    EXPECT_EQ(q1.status, ServeStatus::ShutDown);

    Collected late;
    sched.submit(ok, 4, collector(late));
    EXPECT_TRUE(late.finished);
    EXPECT_EQ(late.status, ServeStatus::ShutDown);
}

} // namespace
} // namespace bbs
