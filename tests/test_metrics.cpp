/**
 * @file
 * Tests for histograms, KL divergence and error metrics.
 */
#include <gtest/gtest.h>

#include "metrics/error.hpp"
#include "metrics/histogram.hpp"
#include "metrics/kl_divergence.hpp"

namespace bbs {
namespace {

TEST(Histogram, CountsAndLevels)
{
    Histogram h(-4, 3);
    h.add(0);
    h.add(0);
    h.add(-4);
    h.add(3);
    EXPECT_EQ(h.total(), 4);
    EXPECT_EQ(h.count(0), 2);
    EXPECT_EQ(h.count(2), 0);
    EXPECT_EQ(h.levelsUsed(), 3);
    EXPECT_DOUBLE_EQ(h.probability(0), 0.5);
}

TEST(KlDivergence, ZeroForIdenticalDistributions)
{
    Histogram p(-2, 2), q(-2, 2);
    for (int i = 0; i < 100; ++i) {
        p.add(i % 5 - 2);
        q.add(i % 5 - 2);
    }
    EXPECT_NEAR(klDivergence(p, q), 0.0, 1e-9);
}

TEST(KlDivergence, NonNegativeAndAsymmetric)
{
    Histogram p(-2, 2), q(-2, 2);
    for (int i = 0; i < 90; ++i)
        p.add(0);
    for (int i = 0; i < 10; ++i)
        p.add(1);
    for (int i = 0; i < 50; ++i)
        q.add(0);
    for (int i = 0; i < 50; ++i)
        q.add(1);
    double pq = klDivergence(p, q);
    double qp = klDivergence(q, p);
    EXPECT_GT(pq, 0.0);
    EXPECT_GT(qp, 0.0);
    EXPECT_NE(pq, qp);
}

TEST(KlDivergence, LostQuantizationLevelsArePenalized)
{
    // q1 keeps all of p's levels; q2 collapses half of them. The paper's
    // core argument (Fig 1): level-destroying compression has much higher
    // KL than level-preserving compression.
    Int8Tensor p(Shape{256});
    Int8Tensor qKeep(Shape{256});
    Int8Tensor qCollapse(Shape{256});
    for (std::int64_t i = 0; i < 256; ++i) {
        auto v = static_cast<std::int8_t>(i - 128);
        p.flat(i) = v;
        qKeep.flat(i) = v;
        qCollapse.flat(i) = static_cast<std::int8_t>((v / 2) * 2);
    }
    double klKeep = klDivergence(p, qKeep);
    double klCollapse = klDivergence(p, qCollapse);
    EXPECT_LT(klKeep, 1e-9);
    EXPECT_GT(klCollapse, 100.0 * (klKeep + 1e-12));
}

TEST(ErrorMetrics, MseBasics)
{
    Int8Tensor a(Shape{4}), b(Shape{4});
    for (std::int64_t i = 0; i < 4; ++i) {
        a.flat(i) = static_cast<std::int8_t>(i);
        b.flat(i) = static_cast<std::int8_t>(i + 2);
    }
    EXPECT_DOUBLE_EQ(mse(a, b), 4.0);
    EXPECT_DOUBLE_EQ(maxAbsError(a, b), 2.0);
    EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(ErrorMetrics, CosineSimilarity)
{
    FloatTensor a(Shape{3}), b(Shape{3}), c(Shape{3});
    a.flat(0) = 1.0f;
    b.flat(0) = 2.0f; // same direction
    c.flat(1) = 1.0f; // orthogonal
    EXPECT_NEAR(cosineSimilarity(a, b), 1.0, 1e-6);
    EXPECT_NEAR(cosineSimilarity(a, c), 0.0, 1e-6);
}

} // namespace
} // namespace bbs
