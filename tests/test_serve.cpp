/**
 * @file
 * Concurrency and correctness tests for the serving runtime. The load-
 * bearing invariant: a request's response is bit-identical to running
 * that sample alone through the per-dot policy — the serial
 * oracle — no matter which co-riders the batcher coalesced it with, how
 * many producer threads raced, or which worker drained the batch. Also
 * covered: flush-on-timeout, shutdown with pending requests, deadline
 * expiry, submit-time rejection, and multi-model batching hygiene.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/alloc_count.hpp"
#include "common/random.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "obs/exposition.hpp"
#include "serve/batcher.hpp"
#include "engine/engine.hpp"
#include "serve/server.hpp"

namespace bbs {
namespace {

/** Random (untrained) dense->relu->dense engine; weights are whatever
 *  init drew, which is all the bit-exactness tests need. */
Int8Network
makeEngine(std::int64_t in, std::int64_t hidden, std::int64_t out,
           int targetColumns, std::uint64_t seed)
{
    Rng rng(seed);
    Network net;
    net.add(std::make_unique<Dense>(in, hidden, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(hidden, out, rng));
    return Int8Network::fromNetwork(net, 32, targetColumns,
                                    PruneStrategy::ZeroPointShifting);
}

/** Pool of distinct random samples, as flat vectors. */
std::vector<std::vector<float>>
makePool(std::size_t count, std::int64_t features, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> pool(count);
    for (auto &sample : pool) {
        sample.resize(static_cast<std::size_t>(features));
        for (float &v : sample)
            v = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    }
    return pool;
}

/** Serial single-sample oracle: per-dot policy on a one-row batch. */
std::vector<std::vector<float>>
oracleLogits(const Int8Network &engine,
             const std::vector<std::vector<float>> &pool)
{
    std::vector<std::vector<float>> out(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
        Batch x(Shape{1, engine.inputFeatures()});
        for (std::int64_t c = 0; c < engine.inputFeatures(); ++c)
            x.at(0, c) = pool[i][static_cast<std::size_t>(c)];
        Batch y = engine.forward(
            x, InferencePolicy{bbs::engine::Calibration::PerBatch,
                               bbs::engine::PlanKind::PerDot});
        out[i].resize(static_cast<std::size_t>(y.shape().dim(1)));
        for (std::int64_t c = 0; c < y.shape().dim(1); ++c)
            out[i][static_cast<std::size_t>(c)] = y.at(0, c);
    }
    return out;
}

int
argmaxOf(const std::vector<float> &logits)
{
    int best = 0;
    for (std::size_t i = 1; i < logits.size(); ++i)
        if (logits[i] > logits[static_cast<std::size_t>(best)])
            best = static_cast<int>(i);
    return best;
}

TEST(RowCalibratedForward, BitIdenticalToSingleSampleOracle)
{
    // The serving math itself, before any threading: row r of a
    // row-calibrated batch == that sample alone through the per-dot
    // plan kind.
    Int8Network engine = makeEngine(24, 32, 8, 3, 0xc0de);
    auto pool = makePool(9, 24, 0x5eed);
    auto oracle = oracleLogits(engine, pool);

    Batch x(Shape{9, 24});
    for (std::int64_t r = 0; r < 9; ++r)
        for (std::int64_t c = 0; c < 24; ++c)
            x.at(r, c) = pool[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(c)];
    Batch y = engine.forward(
        x, InferencePolicy{bbs::engine::Calibration::PerRow,
                           bbs::engine::PlanKind::Auto});
    ASSERT_EQ(y.shape().dim(1), 8);
    for (std::int64_t r = 0; r < 9; ++r)
        for (std::int64_t c = 0; c < 8; ++c)
            ASSERT_EQ(y.at(r, c),
                      oracle[static_cast<std::size_t>(r)]
                            [static_cast<std::size_t>(c)])
                << "r=" << r << " c=" << c;
}

TEST(ServeStress, ConcurrentProducersGetBitIdenticalResponses)
{
    constexpr int kProducers = 6;
    constexpr int kPerProducer = 40;
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", makeEngine(24, 32, 8, 3, 0xc0de));
    auto pool = makePool(16, 24, 0xfeed);
    auto oracle = oracleLogits(*registry->find("clf"), pool);

    ServerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxDelayUs = 500;
    cfg.workers = 2;
    InferenceServer server(registry, cfg);

    struct Pending
    {
        std::size_t poolIdx;
        std::future<InferenceResponse> fut;
    };
    std::vector<std::vector<Pending>> perThread(kProducers);
    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t) {
        producers.emplace_back([&, t] {
            Rng rng(0xabba + static_cast<std::uint64_t>(t));
            for (int i = 0; i < kPerProducer; ++i) {
                std::size_t idx = static_cast<std::size_t>(
                    rng.uniformInt(0, static_cast<std::int64_t>(
                                          pool.size()) - 1));
                perThread[static_cast<std::size_t>(t)].push_back(
                    {idx, server.submit("clf", pool[idx])});
            }
        });
    }
    for (auto &p : producers)
        p.join();

    std::int64_t completed = 0;
    for (auto &thread : perThread) {
        for (Pending &p : thread) {
            InferenceResponse resp = p.fut.get();
            ASSERT_EQ(resp.status, ServeStatus::Ok)
                << serveStatusName(resp.status);
            ASSERT_EQ(resp.logits, oracle[p.poolIdx]);
            EXPECT_EQ(resp.predicted, argmaxOf(oracle[p.poolIdx]));
            EXPECT_GE(resp.batchRows, 1);
            EXPECT_LE(resp.batchRows, cfg.maxBatch);
            EXPECT_GE(resp.totalUs, resp.queueUs);
            ++completed;
        }
    }
    server.stop();

    StatsSnapshot s = server.stats();
    EXPECT_EQ(s.completed,
              static_cast<std::uint64_t>(kProducers * kPerProducer));
    EXPECT_EQ(completed, kProducers * kPerProducer);
    std::uint64_t histRows = 0;
    for (std::size_t n = 0; n < s.batchHist.size(); ++n)
        histRows += s.batchHist[n] * n;
    EXPECT_EQ(histRows, s.completed); // every request in exactly one batch
    EXPECT_LE(s.p50Us, s.p99Us);
    EXPECT_GE(s.meanBatchRows, 1.0);
    EXPECT_EQ(s.expired, 0u);
    EXPECT_EQ(s.shutdownRejected, 0u);
}

TEST(Serve, FlushOnTimeoutServesPartialBatch)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", makeEngine(16, 24, 4, 2, 0xd00d));
    auto pool = makePool(3, 16, 0x1234);
    auto oracle = oracleLogits(*registry->find("clf"), pool);

    ServerConfig cfg;
    cfg.maxBatch = 64; // far more than we will ever submit
    cfg.maxDelayUs = 3000;
    cfg.workers = 1;
    InferenceServer server(registry, cfg);

    std::vector<std::future<InferenceResponse>> futs;
    for (std::size_t i = 0; i < pool.size(); ++i)
        futs.push_back(server.submit("clf", pool[i]));
    for (std::size_t i = 0; i < futs.size(); ++i) {
        // get() returning at all proves the flush timer fired: the batch
        // can never fill to maxBatch.
        InferenceResponse resp = futs[i].get();
        ASSERT_EQ(resp.status, ServeStatus::Ok);
        EXPECT_EQ(resp.logits, oracle[i]);
        EXPECT_GE(resp.batchRows, 1);
        EXPECT_LE(resp.batchRows, 3);
    }
}

TEST(Serve, ShutdownCompletesEveryPendingFuture)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", makeEngine(16, 24, 4, 2, 0xd00d));
    auto pool = makePool(5, 16, 0x4321);

    ServerConfig cfg;
    cfg.workers = 0; // nobody drains: submissions stay pending
    InferenceServer server(registry, cfg);

    std::vector<std::future<InferenceResponse>> futs;
    for (const auto &sample : pool)
        futs.push_back(server.submit("clf", sample));
    server.stop();

    for (auto &f : futs) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_EQ(f.get().status, ServeStatus::ShutDown);
    }
    EXPECT_EQ(server.stats().shutdownRejected, 5u);

    // Submissions after stop() resolve immediately with ShutDown too.
    auto late = server.submit("clf", pool[0]);
    EXPECT_EQ(late.get().status, ServeStatus::ShutDown);
}

TEST(Serve, DeadlineExpiredRequestsAreRejectedNotExecuted)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", makeEngine(16, 24, 4, 2, 0xd00d));
    auto pool = makePool(2, 16, 0x9999);
    auto oracle = oracleLogits(*registry->find("clf"), pool);

    ServerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxDelayUs = 0; // serve exactly what is queued
    cfg.workers = 0;    // manual drain => deterministic expiry
    InferenceServer server(registry, cfg);

    auto doomed = server.submit("clf", pool[0], /*deadlineUs=*/1000);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto live = server.submit("clf", pool[1]);

    EXPECT_EQ(server.drainOnce(), 1); // only the live request executes
    EXPECT_EQ(doomed.get().status, ServeStatus::DeadlineExpired);
    InferenceResponse ok = live.get();
    ASSERT_EQ(ok.status, ServeStatus::Ok);
    EXPECT_EQ(ok.logits, oracle[1]);

    StatsSnapshot s = server.stats();
    EXPECT_EQ(s.expired, 1u);
    EXPECT_EQ(s.completed, 1u);
}

TEST(BatcherDirect, SameModelRequestInFlightHoldsTheBatchToTimeout)
{
    // A claimed-but-uncompleted request (a request executing on another
    // worker: popped, promise pending, markCompleted not yet called)
    // keeps its model's live count up, so the next same-model batch must
    // wait out maxDelayUs for co-riders — the leader's deadline can
    // expire during that wait, which is what the server's flush-time
    // re-check guards (claimed requests are returned, never dropped).
    RequestQueue queue;
    auto pushNamed = [&](const char *model, std::int64_t deadlineUs) {
        InferenceRequest r;
        r.model = model;
        r.enqueued = std::chrono::steady_clock::now();
        r.deadline = deadlineUs > 0
                         ? r.enqueued + std::chrono::microseconds(
                                            deadlineUs)
                         : std::chrono::steady_clock::time_point::max();
        queue.push(std::move(r));
    };
    Batcher batcher(queue, BatcherConfig{64, 20'000});

    pushNamed("m", 0);
    std::vector<InferenceRequest> held = batcher.nextBatch();
    ASSERT_EQ(held.size(), 1u); // claimed, never completed: stays live
    EXPECT_EQ(queue.liveCount("m"), 1);

    pushNamed("m", 3000);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<InferenceRequest> batch = batcher.nextBatch();
    double waitedUs = microsBetween(t0, std::chrono::steady_clock::now());
    ASSERT_EQ(batch.size(), 1u);
    // The in-flight same-model request blocked the all-aboard flush, so
    // the batch waited for the flush timeout and the claimed leader is
    // now past its 3 ms deadline (the server-side flush re-check would
    // reject it instead of executing).
    EXPECT_GE(waitedUs, 15'000.0);
    EXPECT_LE(batch.front().deadline, std::chrono::steady_clock::now());

    // Completion releases the live count.
    queue.markCompleted("m", 2);
    EXPECT_EQ(queue.liveCount("m"), 0);
    // Unset promises above: futures were never taken, so dropping the
    // requests is fine — this test only exercises batch formation.
}

TEST(Serve, OtherModelRequestsDoNotHoldABatchOpen)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", makeEngine(16, 24, 4, 2, 0xd00d));
    registry->add("other", makeEngine(16, 24, 4, 2, 0xeeee));
    auto pool = makePool(1, 16, 0x7777);

    ServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.maxDelayUs = 30'000; // would dwarf the deadline if waited out
    cfg.workers = 0;         // drive the drain by hand: no pop-time race
    InferenceServer server(registry, cfg);

    // The queued other-model request can never join a clf batch, so the
    // per-model all-aboard flush must fire immediately: the clf request
    // executes well inside its 5 ms deadline instead of expiring during
    // a 30 ms co-rider wait.
    auto fut = server.submit("clf", pool[0], /*deadlineUs=*/5000);
    auto other = server.submit("other", pool[0]);
    EXPECT_EQ(server.drainOnce(), 1);
    EXPECT_EQ(fut.get().status, ServeStatus::Ok);

    EXPECT_EQ(server.drainOnce(), 1);
    EXPECT_EQ(other.get().status, ServeStatus::Ok);
    StatsSnapshot s = server.stats();
    EXPECT_EQ(s.expired, 0u);
    EXPECT_EQ(s.completed, 2u);
}

TEST(Serve, UnknownModelAndBadInputRejectedAtSubmit)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", makeEngine(16, 24, 4, 2, 0xd00d));
    InferenceServer server(registry, ServerConfig{.workers = 0});

    auto unknown = server.submit("not-registered",
                                 std::vector<float>(16, 0.5f));
    EXPECT_EQ(unknown.get().status, ServeStatus::UnknownModel);

    auto narrow = server.submit("clf", std::vector<float>(7, 0.5f));
    EXPECT_EQ(narrow.get().status, ServeStatus::BadInput);

    EXPECT_EQ(server.stats().badRequests, 2u);
    EXPECT_EQ(server.stats().completed, 0u);
}

TEST(Serve, TwoHostedModelsNeverShareABatch)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("small", makeEngine(16, 24, 4, 2, 0xaaaa));
    registry->add("wide", makeEngine(24, 32, 8, 4, 0xbbbb));
    auto poolSmall = makePool(8, 16, 0x1111);
    auto poolWide = makePool(8, 24, 0x2222);
    auto oracleSmall = oracleLogits(*registry->find("small"), poolSmall);
    auto oracleWide = oracleLogits(*registry->find("wide"), poolWide);

    ServerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxDelayUs = 300;
    cfg.workers = 2;
    InferenceServer server(registry, cfg);

    constexpr int kThreads = 4, kPer = 30;
    struct Pending
    {
        bool wide;
        std::size_t idx;
        std::future<InferenceResponse> fut;
    };
    std::vector<std::vector<Pending>> perThread(kThreads);
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&, t] {
            Rng rng(0xcafe + static_cast<std::uint64_t>(t));
            for (int i = 0; i < kPer; ++i) {
                bool wide = rng.bernoulli(0.5);
                const auto &pool = wide ? poolWide : poolSmall;
                std::size_t idx = static_cast<std::size_t>(
                    rng.uniformInt(0, static_cast<std::int64_t>(
                                          pool.size()) - 1));
                perThread[static_cast<std::size_t>(t)].push_back(
                    {wide, idx,
                     server.submit(wide ? "wide" : "small", pool[idx])});
            }
        });
    }
    for (auto &p : producers)
        p.join();

    for (auto &thread : perThread) {
        for (Pending &p : thread) {
            InferenceResponse resp = p.fut.get();
            ASSERT_EQ(resp.status, ServeStatus::Ok);
            // Logit width and exact values prove the request ran on its
            // own model: a cross-model batch would misshape or corrupt.
            const auto &oracle = p.wide ? oracleWide : oracleSmall;
            ASSERT_EQ(resp.logits, oracle[p.idx]);
        }
    }
    server.stop();
    EXPECT_EQ(server.stats().completed,
              static_cast<std::uint64_t>(kThreads * kPer));
}

TEST(BatcherDirect, GroupsSameModelRunsAndPreservesOthers)
{
    RequestQueue queue;
    auto pushNamed = [&](const char *model) {
        InferenceRequest r;
        r.model = model;
        r.enqueued = std::chrono::steady_clock::now();
        r.deadline = std::chrono::steady_clock::time_point::max();
        queue.push(std::move(r));
    };
    pushNamed("a");
    pushNamed("b");
    pushNamed("a");
    pushNamed("a");
    pushNamed("b");

    Batcher batcher(queue, BatcherConfig{8, 0});
    std::vector<InferenceRequest> first = batcher.nextBatch();
    ASSERT_EQ(first.size(), 3u); // all the a's, skipping the b's
    for (const auto &r : first)
        EXPECT_EQ(r.model, "a");

    std::vector<InferenceRequest> second = batcher.nextBatch();
    ASSERT_EQ(second.size(), 2u);
    for (const auto &r : second)
        EXPECT_EQ(r.model, "b");

    queue.shutdown();
    EXPECT_TRUE(batcher.nextBatch().empty());
    // Unset promises above: futures were never taken, so dropping the
    // requests is fine — this test only exercises batch formation.
}

TEST(RequestQueueDirect, ShutdownRejectsPendingAndRefusesPushes)
{
    RequestQueue queue;
    std::vector<std::future<InferenceResponse>> futs;
    for (int i = 0; i < 3; ++i) {
        InferenceRequest r;
        r.model = "m";
        r.enqueued = std::chrono::steady_clock::now();
        r.deadline = std::chrono::steady_clock::time_point::max();
        futs.push_back(r.promise.get_future());
        EXPECT_TRUE(queue.push(std::move(r)));
    }
    EXPECT_EQ(queue.size(), 3u);
    queue.shutdown();
    EXPECT_EQ(queue.size(), 0u);
    for (auto &f : futs)
        EXPECT_EQ(f.get().status, ServeStatus::ShutDown);

    InferenceRequest late;
    late.model = "m";
    late.enqueued = std::chrono::steady_clock::now();
    late.deadline = std::chrono::steady_clock::time_point::max();
    auto lateFut = late.promise.get_future();
    EXPECT_FALSE(queue.push(std::move(late)));
    EXPECT_EQ(lateFut.get().status, ServeStatus::ShutDown);
    EXPECT_EQ(queue.shutdownCount(), 4u);
    EXPECT_FALSE(queue.waitFront().has_value());
}

TEST(RequestQueueDirect, DepthBoundRejectsWithOverloadedExactly)
{
    RequestQueue queue;
    queue.setMaxDepth(2);
    auto makeReq = [] {
        InferenceRequest r;
        r.model = "m";
        r.enqueued = std::chrono::steady_clock::now();
        r.deadline = std::chrono::steady_clock::time_point::max();
        return r;
    };
    EXPECT_EQ(queue.tryPush(makeReq()), PushResult::Ok);
    EXPECT_EQ(queue.tryPush(makeReq()), PushResult::Ok);

    InferenceRequest third = makeReq();
    auto fut = third.promise.get_future();
    EXPECT_EQ(queue.tryPush(std::move(third)), PushResult::Overloaded);
    // Terminal state delivered before tryPush returned.
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(fut.get().status, ServeStatus::Overloaded);
    EXPECT_EQ(queue.overloadedCount(), 1u);
    EXPECT_EQ(queue.size(), 2u);
    queue.shutdown();
}

TEST(RequestQueueDirect, RejectionCallbackRunsOutsideTheQueueLock)
{
    // The out-of-lock completion discipline, pinned: a rejection's
    // onComplete may call back INTO the queue (query it, even push
    // another doomed request, which lands in the same thread_local
    // rejection scratch mid-iteration). Under the old
    // complete-under-mutex_ scheme both calls deadlock on the
    // non-recursive queue mutex.
    RequestQueue queue;
    queue.setMaxDepth(1);
    auto makeReq = [] {
        InferenceRequest r;
        r.model = "m";
        r.enqueued = std::chrono::steady_clock::now();
        r.deadline = std::chrono::steady_clock::time_point::max();
        return r;
    };
    EXPECT_EQ(queue.tryPush(makeReq()), PushResult::Ok);

    bool outerRan = false;
    std::future<InferenceResponse> nestedFut;
    InferenceRequest outer = makeReq();
    outer.onComplete = [&](InferenceResponse &&resp) {
        EXPECT_EQ(resp.status, ServeStatus::Overloaded);
        EXPECT_EQ(queue.size(), 1u); // would deadlock under mutex_
        InferenceRequest nested = makeReq();
        nestedFut = nested.promise.get_future();
        // Also rejected (depth still 1): a nested rejection completing
        // inside the outer rejection's callback.
        EXPECT_EQ(queue.tryPush(std::move(nested)),
                  PushResult::Overloaded);
        outerRan = true;
    };
    EXPECT_EQ(queue.tryPush(std::move(outer)), PushResult::Overloaded);
    EXPECT_TRUE(outerRan);
    ASSERT_TRUE(nestedFut.valid());
    EXPECT_EQ(nestedFut.get().status, ServeStatus::Overloaded);
    EXPECT_EQ(queue.overloadedCount(), 2u);
    queue.shutdown();
}

TEST(Serve, FlushTimeExpiryCountsThroughTheQueuePath)
{
    // The counting-unification fix, pinned end to end: an expiry noticed
    // at FLUSH time (after the request left the queue) must move the
    // queue's own expired tally, StatsSnapshot::expired and the
    // Prometheus series together — before the fix the flush path bumped
    // only the registry counter, so queue.expiredCount() drifted from
    // snapshot.expired forever.
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", makeEngine(16, 24, 4, 2, 0xd00d));
    auto pool = makePool(2, 16, 0x8811);

    ServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.maxDelayUs = 20'000;
    cfg.workers = 0;
    InferenceServer server(registry, cfg);
    RequestQueue &queue = server.queues().shard(0);

    // Act as a wedged worker: claim the first request and never finish
    // it. Its live count holds the next clf batch open to the timeout.
    auto stuck = server.submit("clf", pool[0]);
    std::optional<InferenceRequest> claimed = queue.waitFront();
    ASSERT_TRUE(claimed.has_value());
    ASSERT_EQ(queue.liveCount("clf"), 1);

    // This request becomes the next batch's leader; the claimed
    // in-flight request forces the batcher to wait out maxDelayUs, by
    // which time the 3 ms deadline has long expired — the flush-time
    // re-check rejects it.
    auto doomed = server.submit("clf", pool[1], /*deadlineUs=*/3000);
    EXPECT_EQ(server.drainOnce(), 1);
    EXPECT_EQ(doomed.get().status, ServeStatus::DeadlineExpired);

    StatsSnapshot s = server.stats();
    EXPECT_EQ(s.expired, 1u);
    EXPECT_EQ(queue.expiredCount(), 1u); // the unified tally
    obs::ParsedExposition parsed;
    ASSERT_TRUE(
        obs::parsePrometheusText(server.metricsText(false), parsed));
    const obs::ParsedSample *series =
        parsed.find("bbs_serve_requests_expired_total");
    ASSERT_NE(series, nullptr);
    EXPECT_EQ(series->value, 1.0);

    // Release the claimed request so stop() isn't held up; its promise
    // is abandoned (the future reports broken_promise, which this test
    // never reads).
    queue.markCompleted("clf", 1);
    claimed.reset();
    stuck = {};
    server.stop();
}

TEST(Serve, ShardDepthBoundShedsWithOverloaded)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", makeEngine(16, 24, 4, 2, 0xd00d));
    auto pool = makePool(1, 16, 0x2244);

    ServerConfig cfg;
    cfg.workers = 0; // nobody drains: the queue only fills
    cfg.maxShardDepth = 2;
    InferenceServer server(registry, cfg);

    auto a = server.submit("clf", pool[0]);
    auto b = server.submit("clf", pool[0]);
    auto c = server.submit("clf", pool[0]);
    ASSERT_EQ(c.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(c.get().status, ServeStatus::Overloaded);

    StatsSnapshot s = server.stats();
    EXPECT_EQ(s.overloaded, 1u);
    EXPECT_EQ(s.queueDepth, 2u);
    EXPECT_EQ(server.queues().shard(0).overloadedCount(), 1u);

    server.stop();
    EXPECT_EQ(a.get().status, ServeStatus::ShutDown);
    EXPECT_EQ(b.get().status, ServeStatus::ShutDown);
}

TEST(Serve, DeadlineAwareShedRejectsDoomedRequestsAtSubmit)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", makeEngine(16, 24, 4, 2, 0xd00d));
    auto pool = makePool(1, 16, 0x3355);

    ServerConfig cfg;
    cfg.workers = 0;
    cfg.maxBatch = 8;
    cfg.maxDelayUs = 50'000; // dwarfs the deadline below
    cfg.maxShardDepth = 100; // depth bound never hit: the SHED rejects
    InferenceServer server(registry, cfg);

    // Arm the service-time estimator with one served batch.
    auto warm = server.submit("clf", pool[0]);
    EXPECT_EQ(server.drainOnce(), 1);
    EXPECT_EQ(warm.get().status, ServeStatus::Ok);

    // Estimated wait >= one flush delay (50 ms) >> the 1 ms deadline:
    // rejected at the door, in microseconds, instead of accepted and
    // expired after the full wait.
    auto doomed = server.submit("clf", pool[0], /*deadlineUs=*/1000);
    ASSERT_EQ(doomed.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(doomed.get().status, ServeStatus::Overloaded);
    EXPECT_EQ(server.stats().overloaded, 1u);
    EXPECT_EQ(server.stats().expired, 0u);
    // A deadline the estimate can meet is still accepted.
    auto fine = server.submit("clf", pool[0], /*deadlineUs=*/5'000'000);
    EXPECT_EQ(server.drainOnce(), 1);
    EXPECT_EQ(fine.get().status, ServeStatus::Ok);
    server.stop();
}

TEST(Serve, ShardedServerServesBitIdenticalAcrossModels)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("a", makeEngine(16, 24, 4, 2, 0xaa00));
    registry->add("b", makeEngine(16, 24, 4, 2, 0xbb00));
    registry->add("c", makeEngine(24, 32, 8, 4, 0xcc00));
    auto poolA = makePool(6, 16, 0x0a);
    auto poolB = makePool(6, 16, 0x0b);
    auto poolC = makePool(6, 24, 0x0c);
    auto oracleA = oracleLogits(*registry->find("a"), poolA);
    auto oracleB = oracleLogits(*registry->find("b"), poolB);
    auto oracleC = oracleLogits(*registry->find("c"), poolC);

    ServerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxDelayUs = 300;
    cfg.workers = 1; // raised to one drain thread per shard
    cfg.shards = 4;
    InferenceServer server(registry, cfg);
    ASSERT_EQ(server.queues().shardCount(), 4u);

    constexpr int kThreads = 3, kPer = 40;
    struct Pending
    {
        int which;
        std::size_t idx;
        std::future<InferenceResponse> fut;
    };
    std::vector<std::vector<Pending>> perThread(kThreads);
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&, t] {
            Rng rng(0xd1ce + static_cast<std::uint64_t>(t));
            for (int i = 0; i < kPer; ++i) {
                int which = static_cast<int>(rng.uniformInt(0, 2));
                const auto &pool =
                    which == 0 ? poolA : which == 1 ? poolB : poolC;
                std::size_t idx = static_cast<std::size_t>(
                    rng.uniformInt(0, static_cast<std::int64_t>(
                                          pool.size()) - 1));
                const char *name =
                    which == 0 ? "a" : which == 1 ? "b" : "c";
                perThread[static_cast<std::size_t>(t)].push_back(
                    {which, idx, server.submit(name, pool[idx])});
            }
        });
    }
    for (auto &p : producers)
        p.join();

    for (auto &thread : perThread) {
        for (Pending &p : thread) {
            InferenceResponse resp = p.fut.get();
            ASSERT_EQ(resp.status, ServeStatus::Ok)
                << serveStatusName(resp.status);
            const auto &oracle = p.which == 0   ? oracleA
                                 : p.which == 1 ? oracleB
                                                : oracleC;
            ASSERT_EQ(resp.logits, oracle[p.idx]);
        }
    }
    server.stop();
    EXPECT_EQ(server.stats().completed,
              static_cast<std::uint64_t>(kThreads * kPer));
}

TEST(Serve, SubmitAsyncDeliversThroughCallback)
{
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", makeEngine(16, 24, 4, 2, 0xd00d));
    auto pool = makePool(1, 16, 0x6611);
    auto oracle = oracleLogits(*registry->find("clf"), pool);

    ServerConfig cfg;
    cfg.workers = 0;
    InferenceServer server(registry, cfg);

    InferenceResponse got;
    std::atomic<int> calls{0};
    server.submitAsync("clf", pool[0], 0,
                       [&](InferenceResponse &&resp) {
                           got = std::move(resp);
                           calls.fetch_add(1);
                       });
    EXPECT_EQ(server.drainOnce(), 1);
    ASSERT_EQ(calls.load(), 1);
    EXPECT_EQ(got.status, ServeStatus::Ok);
    EXPECT_EQ(got.logits, oracle[0]);

    // Immediate rejection also arrives through the callback, on the
    // submitting thread, exactly once.
    server.submitAsync("nope", pool[0], 0,
                       [&](InferenceResponse &&resp) {
                           EXPECT_EQ(resp.status,
                                     ServeStatus::UnknownModel);
                           calls.fetch_add(1);
                       });
    EXPECT_EQ(calls.load(), 2);
    server.stop();
}

TEST(Serve, RegistrationSharesPlanesInsteadOfCopying)
{
    // A network's weight payloads (prepacked planes, plan state) are
    // shared_ptr-held; registering it must move those pointers into the
    // registry, never duplicate a plane buffer. Pointer equality is the
    // proof; the allocation bound catches a reintroduced deep copy
    // (copying even this small model's planes would blow well past it).
    Int8Network engine = makeEngine(16, 24, 4, 2, 0x90ab);
    std::vector<const CompressedRowPlanes *> planes;
    std::vector<const void *> scaleData;
    for (const auto &l : engine.layers()) {
        planes.push_back(l.planes.get());
        scaleData.push_back(l.wScales.data());
    }

    auto registry = std::make_shared<ModelRegistry>();
    std::uint64_t before = threadAllocCount();
    registry->add("m", std::move(engine));
    std::uint64_t registrationAllocs = threadAllocCount() - before;

    std::shared_ptr<const Int8Network> found = registry->find("m");
    ASSERT_NE(found, nullptr);
    ASSERT_EQ(found->layers().size(), planes.size());
    for (std::size_t i = 0; i < planes.size(); ++i) {
        EXPECT_EQ(found->layers()[i].planes.get(), planes[i])
            << "layer " << i << " planes were copied, not shared";
        EXPECT_EQ(found->layers()[i].wScales.data(), scaleData[i])
            << "layer " << i << " scales were copied, not moved";
    }
    // Registration bookkeeping: one shared Int8Network, a map node and
    // a key — not a weight payload in sight.
    EXPECT_LE(registrationAllocs, 32u);

    // Hot-swap bumps the version and replaces the engine atomically;
    // the pre-swap pointer keeps serving its holder.
    EXPECT_EQ(registry->version("m"), 1u);
    EXPECT_EQ(registry->swap("m",
                             std::make_shared<const Int8Network>(
                                 makeEngine(16, 24, 4, 2, 0x90ac))),
              2u);
    EXPECT_NE(registry->find("m"), found);
    EXPECT_EQ(found->layers()[0].planes.get(), planes[0]);
}

TEST(Serve, ArgmaxGuardsZeroWidthOutput)
{
    // execute() computes predicted through argmaxLogits; an empty logits
    // vector (a zero-width output — constructible only through layers
    // outside the Shape-validated factory path, but the serving contract
    // is defensive) must yield -1, never an indexing of logits[0].
    EXPECT_EQ(argmaxLogits({}), -1);
    EXPECT_EQ(argmaxLogits({-3.0f}), 0);
    EXPECT_EQ(argmaxLogits({2.0f, 5.0f, 5.0f, 1.0f}), 1); // first max
}

} // namespace
} // namespace bbs
