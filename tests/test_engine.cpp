/**
 * @file
 * Tests for the engine facade (engine/engine.hpp): EngineConfig's single
 * env parse path, plan-kind selection boundaries (batch 1 vs 2 vs 64,
 * all-pruned groups, uncompressed-in-effect operands), bit-identity of
 * every plan kind against the references, PackedOperand
 * serialize -> reload -> plan.run golden cases, and Session config
 * scoping (thread cap + SIMD level applied per call, restored after).
 */
#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "common/random.hpp"
#include "engine/engine.hpp"
#include "gemm/gemm.hpp"
#include "nn/dataset.hpp"
#include "nn/evaluate.hpp"
#include "nn/int8_infer.hpp"

namespace bbs {
namespace {

using bbs::engine::EngineConfig;
using bbs::engine::MatmulPlan;
using bbs::engine::PackedOperand;
using bbs::engine::PackKind;
using bbs::engine::PackOptions;
using bbs::engine::PlanKind;
using bbs::engine::PlanOptions;
using bbs::engine::Session;
using bbs::engine::ShapeHints;

Int8Tensor
randomMatrix(std::int64_t rows, std::int64_t cols, Rng &rng)
{
    Int8Tensor t(Shape{rows, cols});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return t;
}

// ----------------------------------------------------------- EngineConfig

TEST(EngineConfigTest, ParseSimdLevel)
{
    EXPECT_EQ(EngineConfig::parseSimdLevel(nullptr), -1);
    EXPECT_EQ(EngineConfig::parseSimdLevel("scalar"),
              static_cast<int>(SimdLevel::Scalar));
    EXPECT_EQ(EngineConfig::parseSimdLevel("avx2"),
              static_cast<int>(SimdLevel::Avx2));
    EXPECT_EQ(EngineConfig::parseSimdLevel("avx512"),
              static_cast<int>(SimdLevel::Avx512));
    EXPECT_EQ(EngineConfig::parseSimdLevel("AVX2"), -1);  // case-sensitive
    EXPECT_EQ(EngineConfig::parseSimdLevel("sse42"), -1); // unknown
    EXPECT_EQ(EngineConfig::parseSimdLevel(""), -1);
}

TEST(EngineConfigTest, ParseThreadCap)
{
    // The one parse path behind BBS_THREADS (parallel.hpp consumes it
    // through threadCapFromEnv): only a positive integer strictly below
    // the hardware count clamps.
    EXPECT_EQ(EngineConfig::parseThreadCap(nullptr, 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("1", 8), 1u);
    EXPECT_EQ(EngineConfig::parseThreadCap("7", 8), 7u);
    EXPECT_EQ(EngineConfig::parseThreadCap("8", 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("99", 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("0", 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("-3", 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("nope", 8), 8u);
}

TEST(EngineConfigTest, FromEnvSnapshotsResolvedState)
{
    // fromEnv() must only ever produce an applicable config: a supported
    // SIMD level (or inherit) and a thread cap below the ceiling (or
    // inherit). It cannot assert anything env-specific here (the CI
    // matrix legitimately sets BBS_SIMD), only the resolution contract.
    EngineConfig cfg = EngineConfig::fromEnv();
    if (cfg.simdLevel.has_value())
        EXPECT_TRUE(simdLevelSupported(*cfg.simdLevel));
    unsigned resolved = EngineConfig::threadCapFromEnv();
    EXPECT_GE(resolved, 1u);
    if (cfg.threadCap != 0)
        EXPECT_EQ(cfg.threadCap, resolved);
}

// --------------------------------------------------------- plan selection

TEST(PlanSelectionTest, BatchBoundaries)
{
    // Compressed weights: per-dot at batch 1 (nothing amortizes the
    // activation pack), batched compressed GEMM from batch 2 up.
    EXPECT_EQ(MatmulPlan::selectKind(8, 64, 1, true, 5.0),
              PlanKind::PerDot);
    EXPECT_EQ(MatmulPlan::selectKind(8, 64, 2, true, 5.0),
              PlanKind::CompressedBatched);
    EXPECT_EQ(MatmulPlan::selectKind(8, 64, 64, true, 5.0),
              PlanKind::CompressedBatched);
    // Batch 0 (planning before any run) behaves like batch 1.
    EXPECT_EQ(MatmulPlan::selectKind(8, 64, 0, true, 5.0),
              PlanKind::PerDot);

    // Dense weights always take the tiled bit-serial kernel.
    for (std::int64_t batch : {1, 2, 64})
        EXPECT_EQ(MatmulPlan::selectKind(8, 64, batch, false, 8.0),
                  PlanKind::TiledBitSerial);

    // "Compressed" weights that kept all 8 columns everywhere: the
    // group-windowed kernel pays overhead for nothing; the plan re-packs
    // dense. All-pruned operands (0 stored bits) stay compressed-batched
    // — their whole contribution is the constant multiplier term.
    EXPECT_EQ(MatmulPlan::selectKind(8, 64, 16, true, 8.0),
              PlanKind::TiledBitSerial);
    EXPECT_EQ(MatmulPlan::selectKind(8, 64, 16, true, 0.0),
              PlanKind::CompressedBatched);
    EXPECT_EQ(MatmulPlan::selectKind(8, 64, 1, true, 0.0),
              PlanKind::PerDot);
}

TEST(PlanSelectionTest, PlanResolvesKindPerBatchAndHonoursForce)
{
    Rng rng(11);
    Session s;
    Int8Tensor w = randomMatrix(6, 96, rng);
    PackedOperand packed =
        s.pack(w, PackOptions{32, 4, PruneStrategy::ZeroPointShifting});
    EXPECT_EQ(packed.kind(), PackKind::CompressedRows);
    EXPECT_LT(packed.meanStoredBits(), 8.0);

    MatmulPlan plan = s.plan(packed);
    EXPECT_EQ(plan.kindForBatch(1), PlanKind::PerDot);
    EXPECT_EQ(plan.kindForBatch(2), PlanKind::CompressedBatched);
    EXPECT_EQ(plan.kindForBatch(64), PlanKind::CompressedBatched);

    MatmulPlan forced =
        s.plan(packed, {}, PlanOptions{PlanKind::CompressedBatched});
    EXPECT_EQ(forced.kindForBatch(1), PlanKind::CompressedBatched);

    // Uncompressed-in-effect operand (targetColumns 0 keeps every
    // column unless sign-extension redundancy removes some): when the
    // mean stored bits stay at 8, Auto resolves the dense tiled kernel
    // at batch >= 2.
    Int8Tensor full = randomMatrix(4, 64, rng);
    PackedOperand nop =
        s.pack(full, PackOptions{32, 0, PruneStrategy::RoundedAveraging});
    if (nop.meanStoredBits() >= 8.0 - 1e-9) {
        MatmulPlan nopPlan = s.plan(nop);
        EXPECT_EQ(nopPlan.kindForBatch(16), PlanKind::TiledBitSerial);
        EXPECT_EQ(nopPlan.kindForBatch(1), PlanKind::PerDot);
    }
}

// ------------------------------------------------- execution bit-identity

TEST(PlanExecutionTest, AllKindsBitIdenticalAcrossShapes)
{
    Rng rng(22);
    Session s;
    const std::int64_t shapes[][4] = {
        // {N, K, C, groupSize} — C multiples and non-multiples of 64
        // (whole-tensor packing needs groupSize | C, so ragged column
        // counts pair with a divisor group size)
        {1, 3, 32, 32}, {2, 5, 96, 32}, {7, 4, 70, 35},
        {64, 6, 128, 32}, {3, 2, 33, 11},
    };
    for (const auto &sh : shapes) {
        Int8Tensor acts = randomMatrix(sh[0], sh[2], rng);
        Int8Tensor w = randomMatrix(sh[1], sh[2], rng);
        PackedOperand packed = s.pack(
            w, PackOptions{sh[3], 3, PruneStrategy::ZeroPointShifting});
        MatmulPlan plan = s.plan(packed, ShapeHints{sh[0]});

        Int32Tensor ref =
            gemmReferenceBatch(acts, packed.unpack()); // oracle
        Int32Tensor autoOut = plan.run(acts);
        Int32Tensor perDot, batched, tiled;
        plan.runAs(PlanKind::PerDot, acts, perDot);
        plan.runAs(PlanKind::CompressedBatched, acts, batched);
        plan.runAs(PlanKind::TiledBitSerial, acts, tiled); // escape hatch
        ASSERT_TRUE(autoOut.shape() == ref.shape());
        for (std::int64_t i = 0; i < ref.numel(); ++i) {
            ASSERT_EQ(autoOut.flat(i), ref.flat(i)) << "i=" << i;
            ASSERT_EQ(perDot.flat(i), ref.flat(i)) << "i=" << i;
            ASSERT_EQ(batched.flat(i), ref.flat(i)) << "i=" << i;
            ASSERT_EQ(tiled.flat(i), ref.flat(i)) << "i=" << i;
        }
    }
}

TEST(PlanExecutionTest, AllPrunedGroupsThroughEveryKind)
{
    // Constant rows at target 6 compress to all-pruned groups: the whole
    // output flows through the constant x sum-of-activations term, and
    // every plan kind must still agree with the dense reference.
    Rng rng(33);
    Session s;
    Int8Tensor w(Shape{3, 64});
    for (std::int64_t o = 0; o < 3; ++o)
        for (std::int64_t i = 0; i < 64; ++i)
            w.at(o, i) = static_cast<std::int8_t>(8 * (o + 1));
    for (std::int64_t n : {1, 2, 64}) {
        Int8Tensor acts = randomMatrix(n, 64, rng);
        PackedOperand packed = s.pack(
            w, PackOptions{32, 6, PruneStrategy::ZeroPointShifting});
        MatmulPlan plan = s.plan(packed);
        EXPECT_EQ(plan.kindForBatch(n),
                  n == 1 ? PlanKind::PerDot : PlanKind::CompressedBatched);
        Int32Tensor ref = gemmReferenceBatch(acts, packed.unpack());
        Int32Tensor autoOut = plan.run(acts);
        Int32Tensor perDot, batched;
        plan.runAs(PlanKind::PerDot, acts, perDot);
        plan.runAs(PlanKind::CompressedBatched, acts, batched);
        for (std::int64_t i = 0; i < ref.numel(); ++i) {
            ASSERT_EQ(autoOut.flat(i), ref.flat(i)) << "n=" << n;
            ASSERT_EQ(perDot.flat(i), ref.flat(i)) << "n=" << n;
            ASSERT_EQ(batched.flat(i), ref.flat(i)) << "n=" << n;
        }
    }
}

TEST(PlanExecutionTest, DensePackedOperandRuns)
{
    Rng rng(44);
    Session s;
    Int8Tensor acts = randomMatrix(5, 80, rng);
    Int8Tensor w = randomMatrix(7, 80, rng);
    PackedOperand wOp = s.pack(w);
    EXPECT_EQ(wOp.kind(), PackKind::DenseBitPlanes);
    EXPECT_EQ(wOp.meanStoredBits(), 8.0);
    MatmulPlan plan = s.plan(wOp);
    Int32Tensor got = plan.run(acts);
    Int32Tensor ref = gemmReferenceBatch(acts, w);
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        ASSERT_EQ(got.flat(i), ref.flat(i)) << "i=" << i;

    // Prepacked activations through the same plan.
    Int32Tensor got2;
    plan.run(s.pack(acts), got2);
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        ASSERT_EQ(got2.flat(i), ref.flat(i)) << "i=" << i;
}

TEST(PlanExecutionTest, PackedActivationsAtBatchOneFallBack)
{
    // Auto would pick per-dot at one row, but a prepacked activation
    // operand has no element access — the plan must fall back to the
    // (bit-identical) compressed-batched kernel instead of rejecting.
    Rng rng(99);
    Session s;
    Int8Tensor w = randomMatrix(4, 64, rng);
    Int8Tensor acts = randomMatrix(1, 64, rng);
    PackedOperand packed =
        s.pack(w, PackOptions{32, 3, PruneStrategy::ZeroPointShifting});
    MatmulPlan plan = s.plan(packed);
    ASSERT_EQ(plan.kindForBatch(1), PlanKind::PerDot);
    Int32Tensor got;
    plan.run(s.pack(acts), got);
    Int32Tensor ref = gemmReferenceBatch(acts, packed.unpack());
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        ASSERT_EQ(got.flat(i), ref.flat(i)) << "i=" << i;
}

// --------------------------------------------- serialize/reload identity

TEST(PackedOperandTest, SerializeReloadRunBitIdentity)
{
    // The golden contract: an operand round-tripped through bytes must
    // produce bit-identical plan outputs, for both representations and
    // across operating points (including all-pruned groups).
    Rng rng(55);
    Session s;
    for (int target : {0, 3, 6}) {
        Int8Tensor w = randomMatrix(6, 96, rng);
        Int8Tensor acts = randomMatrix(9, 96, rng);
        PackedOperand original = s.pack(
            w, PackOptions{32, target, PruneStrategy::ZeroPointShifting});
        std::vector<std::uint8_t> bytes = original.serialize();
        PackedOperand reloaded = PackedOperand::deserialize(bytes);
        EXPECT_EQ(reloaded.kind(), PackKind::CompressedRows);
        EXPECT_EQ(reloaded.rows(), original.rows());
        EXPECT_EQ(reloaded.cols(), original.cols());
        EXPECT_DOUBLE_EQ(reloaded.meanStoredBits(),
                         original.meanStoredBits());

        Int32Tensor before = s.plan(original).run(acts);
        Int32Tensor after = s.plan(reloaded).run(acts);
        for (std::int64_t i = 0; i < before.numel(); ++i)
            ASSERT_EQ(before.flat(i), after.flat(i))
                << "target=" << target << " i=" << i;

        // The byte image itself is deterministic for identical packs.
        EXPECT_EQ(original.serialize(), bytes);
    }

    // Dense operands round-trip through raw values.
    Int8Tensor dw = randomMatrix(4, 70, rng);
    Int8Tensor dacts = randomMatrix(3, 70, rng);
    PackedOperand dense = s.pack(dw);
    PackedOperand reloaded =
        PackedOperand::deserialize(dense.serialize());
    EXPECT_EQ(reloaded.kind(), PackKind::DenseBitPlanes);
    Int32Tensor before = s.plan(dense).run(dacts);
    Int32Tensor after = s.plan(reloaded).run(dacts);
    for (std::int64_t i = 0; i < before.numel(); ++i)
        ASSERT_EQ(before.flat(i), after.flat(i)) << "i=" << i;
}

TEST(PackedOperandTest, DeserializeRejectsCorruptBlobs)
{
    // The blob is untrusted input (it is the deployment wire format):
    // every validation path must fail loudly, never allocate from
    // attacker-controlled sizes. BBS_REQUIRE exits with code 1.
    Rng rng(123);
    Session s;
    Int8Tensor w = randomMatrix(4, 64, rng);
    std::vector<std::uint8_t> good =
        s.pack(w, PackOptions{32, 3, PruneStrategy::ZeroPointShifting})
            .serialize();

    auto expectRejected = [](std::vector<std::uint8_t> blob,
                             const char *what) {
        EXPECT_EXIT(PackedOperand::deserialize(blob),
                    ::testing::ExitedWithCode(1), "") << what;
    };

    // Bad magic.
    {
        std::vector<std::uint8_t> bad = good;
        bad[0] ^= 0xff;
        expectRejected(bad, "magic");
    }
    // Unknown kind.
    {
        std::vector<std::uint8_t> bad = good;
        bad[4] = 0x7f;
        expectRejected(bad, "kind");
    }
    // Truncated mid-header and mid-payload.
    expectRejected({good.begin(), good.begin() + 6}, "header cut");
    expectRejected({good.begin(), good.end() - 3}, "payload cut");

    // Dense blob with an overflowing rows*cols: the division-based
    // bound must reject it instead of wrapping and allocating.
    {
        std::vector<std::uint8_t> dense =
            s.pack(randomMatrix(2, 8, rng)).serialize();
        // rows field lives at offset 7 (magic 4 + kind/strategy/target);
        // overwrite with 2^62.
        for (int i = 0; i < 8; ++i)
            dense[7 + static_cast<std::size_t>(i)] = 0;
        dense[7 + 7] = 0x40;
        expectRejected(dense, "rows overflow");
    }
    // Compressed blob with an absurd offset-table count.
    {
        std::vector<std::uint8_t> bad = good;
        std::size_t offsetCountAt = 4 + 1 + 1 + 1 + 8 + 8 + 8;
        for (int i = 0; i < 4; ++i)
            bad.at(offsetCountAt + static_cast<std::size_t>(i)) = 0xff;
        expectRejected(bad, "offset table");
    }

    // The original still loads after all that slicing around.
    PackedOperand ok = PackedOperand::deserialize(good);
    EXPECT_EQ(ok.rows(), 4);
    EXPECT_EQ(ok.cols(), 64);
}

TEST(PackedOperandTest, TryDeserializeReportsInsteadOfExiting)
{
    // The non-fatal entry point (fault injection, servers that must
    // survive a bad blob): same validation as deserialize(), but the
    // outcome is a bool + message and the process keeps running.
    Rng rng(123);
    Session s;
    PackedOperand original =
        s.pack(randomMatrix(4, 64, rng),
               PackOptions{32, 3, PruneStrategy::ZeroPointShifting});
    std::vector<std::uint8_t> good = original.serialize();

    PackedOperand out;
    std::string error;

    std::vector<std::uint8_t> badMagic = good;
    badMagic[0] ^= 0xff;
    EXPECT_FALSE(PackedOperand::tryDeserialize(badMagic, out, &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    error.clear();
    EXPECT_FALSE(PackedOperand::tryDeserialize(
        std::span<const std::uint8_t>(good.data(), 9), out, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;

    // nullptr error is allowed (caller only wants the verdict).
    EXPECT_FALSE(PackedOperand::tryDeserialize(badMagic, out, nullptr));

    // The intact blob loads and reconstructs the original operand's
    // own (lossy-compression) reconstruction bit-exactly.
    ASSERT_TRUE(PackedOperand::tryDeserialize(good, out, &error)) << error;
    Int8Tensor round = out.unpack(), ref = original.unpack();
    ASSERT_EQ(round.numel(), ref.numel());
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        ASSERT_EQ(round.flat(i), ref.flat(i)) << "i=" << i;
}

TEST(PackedOperandTest, UnpackIsExact)
{
    Rng rng(66);
    Session s;
    Int8Tensor m = randomMatrix(5, 130, rng);
    Int8Tensor back = s.pack(m).unpack();
    for (std::int64_t i = 0; i < m.numel(); ++i)
        ASSERT_EQ(back.flat(i), m.flat(i));

    // Compressed unpack equals the compressor's own reconstruction
    // (whole-tensor packing needs groupSize | cols).
    Int8Tensor m2 = randomMatrix(5, 128, rng);
    CompressedTensor ct = CompressedTensor::compress(
        m2, 32, 4, PruneStrategy::RoundedAveraging);
    Int8Tensor viaOperand = s.pack(ct).unpack();
    Int8Tensor direct = ct.decompress();
    for (std::int64_t i = 0; i < direct.numel(); ++i)
        ASSERT_EQ(viaOperand.flat(i), direct.flat(i));
}

// -------------------------------------------------------- session config

TEST(SessionConfigTest, ScopedThreadCapAndSimdLevelRestore)
{
    Rng rng(77);
    Int8Tensor w = randomMatrix(5, 128, rng);
    Int8Tensor acts = randomMatrix(16, 128, rng);
    Int32Tensor ref = gemmReferenceBatch(acts, w);

    unsigned capBefore = maxWorkerThreads();
    SimdLevel levelBefore = activeSimdLevel();

    // A single-threaded, scalar-dispatch session: results identical, and
    // the process-wide knobs are restored after every call.
    engine::EngineConfig cfg;
    cfg.threadCap = 1;
    cfg.simdLevel = SimdLevel::Scalar;
    Session scoped(cfg);
    PackedOperand packed = scoped.pack(
        w, PackOptions{32, 3, PruneStrategy::ZeroPointShifting});
    Int32Tensor got =
        scoped.plan(packed).run(acts); // CompressedBatched at batch 16
    Int32Tensor refCompressed = gemmReferenceBatch(acts, packed.unpack());
    for (std::int64_t i = 0; i < refCompressed.numel(); ++i)
        ASSERT_EQ(got.flat(i), refCompressed.flat(i)) << "i=" << i;

    EXPECT_EQ(maxWorkerThreads(), capBefore);
    EXPECT_EQ(activeSimdLevel(), levelBefore);

    // Dense path under the same scoped config.
    Session plain;
    Int32Tensor dense = plain.plan(plain.pack(w)).run(acts);
    Int32Tensor denseScoped = scoped.plan(scoped.pack(w)).run(acts);
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
        ASSERT_EQ(dense.flat(i), ref.flat(i));
        ASSERT_EQ(denseScoped.flat(i), ref.flat(i));
    }
    EXPECT_EQ(maxWorkerThreads(), capBefore);
    EXPECT_EQ(activeSimdLevel(), levelBefore);
}

// ------------------------------------------------ nn policy equivalences

TEST(InferencePolicyTest, PoliciesMatchAcrossExecutionKinds)
{
    Dataset ds = makeClusterDataset(60, 3, 12, 4242);
    Rng rng(5);
    Network net;
    net.add(std::make_unique<Dense>(ds.features, 20, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(20, ds.numClasses, rng));
    TrainOptions opts;
    opts.epochs = 4;
    trainNetwork(net, ds.trainX, ds.trainY, opts);
    Int8Network engine = Int8Network::fromNetwork(
        net, 32, 3, PruneStrategy::ZeroPointShifting);

    for (std::int64_t rows : {std::int64_t{1}, std::int64_t{5}}) {
        Batch x(Shape{rows, ds.features});
        for (std::int64_t i = 0; i < x.numel(); ++i)
            x.flat(i) = ds.testX.flat(i);
        // Per-batch calibration: every execution kind bit-identical.
        Batch autoRun = engine.forward(x);
        Batch perDot = engine.forward(
            x, InferencePolicy{bbs::engine::Calibration::PerBatch,
                               bbs::engine::PlanKind::PerDot});
        Batch batched = engine.forward(
            x,
            InferencePolicy{bbs::engine::Calibration::PerBatch,
                            bbs::engine::PlanKind::CompressedBatched});
        for (std::int64_t i = 0; i < autoRun.numel(); ++i) {
            ASSERT_EQ(autoRun.flat(i), perDot.flat(i)) << "i=" << i;
            ASSERT_EQ(autoRun.flat(i), batched.flat(i)) << "i=" << i;
        }
        // Per-row calibration on one row == per-batch on that row.
        if (rows == 1) {
            Batch rowCal = engine.forward(
                x, InferencePolicy{bbs::engine::Calibration::PerRow,
                                   bbs::engine::PlanKind::Auto});
            for (std::int64_t i = 0; i < autoRun.numel(); ++i)
                ASSERT_EQ(rowCal.flat(i), autoRun.flat(i)) << "i=" << i;
        }
    }

#if BBS_LEGACY_WRAPPERS
    // The legacy method wrappers resolve to the same policies.
    Batch x(Shape{5, ds.features});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x.flat(i) = ds.testX.flat(i);
    Batch viaWrapper = engine.forwardRowCalibrated(x);
    Batch viaPolicy = engine.forward(
        x, InferencePolicy{bbs::engine::Calibration::PerRow,
                           bbs::engine::PlanKind::Auto});
    for (std::int64_t i = 0; i < viaWrapper.numel(); ++i)
        ASSERT_EQ(viaWrapper.flat(i), viaPolicy.flat(i)) << "i=" << i;
#endif
}

#if BBS_LEGACY_WRAPPERS
TEST(LegacyWrappersTest, GemmWrappersPinnedToEngine)
{
    // The legacy GEMM free functions delegate through default-Session
    // plans; fuzz them bit-identical against direct plan runs.
    Rng rng(88);
    for (int iter = 0; iter < 10; ++iter) {
        std::int64_t n = rng.uniformInt(1, 16);
        std::int64_t k = rng.uniformInt(1, 8);
        std::int64_t c = rng.uniformInt(1, 3) * 32;
        Int8Tensor acts = randomMatrix(n, c, rng);
        Int8Tensor w = randomMatrix(k, c, rng);

        BitSerialMatrix ap = BitSerialMatrix::pack(acts);
        BitSerialMatrix wp = BitSerialMatrix::pack(w);
        Int32Tensor viaWrapper = gemmBitSerial(ap, wp);
        Session s;
        Int32Tensor viaPlan =
            s.plan(PackedOperand::viewDense(wp)).run(acts);
        for (std::int64_t i = 0; i < viaPlan.numel(); ++i)
            ASSERT_EQ(viaWrapper.flat(i), viaPlan.flat(i)) << "i=" << i;

        CompressedTensor ct = CompressedTensor::compress(
            w, 32, 3, PruneStrategy::ZeroPointShifting);
        CompressedRowPlanes planes = CompressedRowPlanes::prepare(ct);
        Int32Tensor cWrapper = gemmCompressed(planes, ap);
        Int32Tensor cInto;
        gemmCompressedInto(planes, ap, cInto);
        Int32Tensor cPlan = s.plan(s.pack(ct)).run(acts);
        for (std::int64_t i = 0; i < cPlan.numel(); ++i) {
            ASSERT_EQ(cWrapper.flat(i), cPlan.flat(i)) << "i=" << i;
            ASSERT_EQ(cInto.flat(i), cPlan.flat(i)) << "i=" << i;
        }
    }
}
#endif // BBS_LEGACY_WRAPPERS

} // namespace
} // namespace bbs
