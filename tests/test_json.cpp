/**
 * @file
 * JsonWriter tests — the single escaper/nesting discipline every JSON
 * artifact in the project (bench --json, metric records, trace dumps,
 * soak timelines) flows through, so its edge cases are everyone's edge
 * cases.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/json_writer.hpp"

namespace bbs {
namespace {

TEST(JsonEscape, QuotesBackslashesAndControlCharacters)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(JsonWriter::escape("\b\f\r"), "\\b\\f\\r");
    // Control characters without a shorthand become \uXXXX.
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01\x1f", 2)),
              "\\u0001\\u001f");
    // UTF-8 passes through untouched.
    EXPECT_EQ(JsonWriter::escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonNumber, IntegralDecimalAndNonFinite)
{
    EXPECT_EQ(JsonWriter::number(3.0), "3");
    EXPECT_EQ(JsonWriter::number(-2.5), "-2.5");
    EXPECT_EQ(JsonWriter::number(0.1), "0.1"); // no %.17g noise tail
    // JSON cannot represent these; the writer clamps to 0 so consumers
    // doing arithmetic never see a parse error.
    EXPECT_EQ(JsonWriter::number(std::nan("")), "0");
    EXPECT_EQ(JsonWriter::number(INFINITY), "0");
    EXPECT_EQ(JsonWriter::number(-INFINITY), "0");
}

TEST(JsonWriter, NestedContainersWithCommaDiscipline)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.member("name", "x");
    w.member("n", std::int64_t{-4});
    w.member("ok", true);
    w.key("vals");
    w.beginArray();
    w.value(1.5);
    w.value("two");
    w.beginObject();
    w.member("k", std::uint64_t{7});
    w.endObject();
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(os.str(), "{\"name\": \"x\", \"n\": -4, \"ok\": true, "
                        "\"vals\": [1.5, \"two\", {\"k\": 7}]}");
}

TEST(JsonWriter, RawSplicesPreRenderedFragmentsAsValues)
{
    // The bench_common shape: records rendered earlier, spliced into the
    // flush-time document as array elements.
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("records");
    w.beginArray();
    w.raw("{\"a\": 1}");
    w.raw("{\"b\": 2}");
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(os.str(), "{\"records\": [{\"a\": 1}, {\"b\": 2}]}");
}

TEST(JsonWriter, TopLevelScalarAndCompleteness)
{
    {
        std::ostringstream os;
        JsonWriter w(os);
        EXPECT_FALSE(w.complete()); // nothing written yet
        w.value("solo");
        EXPECT_TRUE(w.complete());
        EXPECT_EQ(os.str(), "\"solo\"");
    }
    {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        EXPECT_FALSE(w.complete()); // open container
        w.endObject();
        EXPECT_TRUE(w.complete());
        EXPECT_EQ(os.str(), "{}");
    }
}

TEST(JsonWriter, EscapesKeysToo)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.member("we\"ird", std::int64_t{1});
    w.endObject();
    EXPECT_EQ(os.str(), "{\"we\\\"ird\": 1}");
}

} // namespace
} // namespace bbs
