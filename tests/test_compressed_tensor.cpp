/**
 * @file
 * Tests for whole-tensor BBS compression and the effective-bit accounting
 * that the paper's memory-footprint numbers rest on.
 */
#include <gtest/gtest.h>

#include "core/compressed_tensor.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"

namespace bbs {
namespace {

Int8Tensor
randomCodes(Shape shape, std::uint64_t seed)
{
    Rng rng(seed);
    WeightDistribution dist;
    FloatTensor w = generateWeights(shape, dist, rng);
    return quantizePerChannel(w, 8).values;
}

TEST(CompressedTensor, RoundTripIsIdempotent)
{
    Int8Tensor codes = randomCodes(Shape{8, 64}, 3);
    CompressedTensor ct = CompressedTensor::compress(
        codes, 32, 4, PruneStrategy::ZeroPointShifting);
    Int8Tensor rec = ct.decompress();
    EXPECT_TRUE(rec.shape() == codes.shape());

    // Compressing the reconstruction is lossless.
    CompressedTensor ct2 = CompressedTensor::compress(
        rec, 32, 4, PruneStrategy::ZeroPointShifting);
    Int8Tensor rec2 = ct2.decompress();
    for (std::int64_t i = 0; i < rec.numel(); ++i)
        EXPECT_EQ(rec2.flat(i), rec.flat(i));
}

TEST(CompressedTensor, EffectiveBitsMatchPaperArithmetic)
{
    // Group 32, 4 pruned columns: 4 bits/weight + 8/32 metadata = 4.25
    // (the paper's "moderate" effective weight precision).
    Int8Tensor codes = randomCodes(Shape{16, 128}, 7);
    CompressedTensor mod = CompressedTensor::compress(
        codes, 32, 4, PruneStrategy::ZeroPointShifting);
    EXPECT_NEAR(mod.effectiveBitsPerWeight(), 4.25, 1e-9);

    // Group 32, 2 pruned columns: 6.25.
    CompressedTensor cons = CompressedTensor::compress(
        codes, 32, 2, PruneStrategy::RoundedAveraging);
    EXPECT_NEAR(cons.effectiveBitsPerWeight(), 6.25, 1e-9);
}

TEST(CompressedTensor, StorageBitsSumOverGroups)
{
    Int8Tensor codes = randomCodes(Shape{4, 64}, 9);
    CompressedTensor ct = CompressedTensor::compress(
        codes, 32, 2, PruneStrategy::RoundedAveraging);
    // 256 weights / 32 = 8 groups, each 32*6 + 8 bits.
    EXPECT_EQ(ct.storageBits(), 8 * (32 * 6 + 8));
    EXPECT_EQ(static_cast<std::int64_t>(ct.groups().size()), 8);
}

TEST(CompressedTensor, MseImprovesWithFewerPrunedColumns)
{
    Int8Tensor codes = randomCodes(Shape{16, 256}, 11);
    auto sseOf = [&](int target) {
        Int8Tensor rec = binaryPruneTensor(
            codes, 32, target, PruneStrategy::ZeroPointShifting);
        double sse = 0.0;
        for (std::int64_t i = 0; i < codes.numel(); ++i) {
            double d = static_cast<double>(codes.flat(i)) - rec.flat(i);
            sse += d * d;
        }
        return sse;
    };
    double s2 = sseOf(2), s4 = sseOf(4), s6 = sseOf(6);
    EXPECT_LE(s2, s4);
    EXPECT_LE(s4, s6);
}

TEST(CompressedTensor, ShortTailGroupHandled)
{
    Int8Tensor codes = randomCodes(Shape{1, 40}, 13); // 32 + 8 tail
    CompressedTensor ct = CompressedTensor::compress(
        codes, 32, 2, PruneStrategy::RoundedAveraging);
    EXPECT_EQ(ct.groups().size(), 2u);
    EXPECT_EQ(ct.groups()[1].stored.size(), 8u);
    Int8Tensor rec = ct.decompress();
    EXPECT_EQ(rec.numel(), 40);
}

TEST(CompressedTensor, PreservesAllQuantizationLevelsInPrinciple)
{
    // Unlike zero-column pruning, BBS reconstruction values cover odd and
    // even levels (any bit may be 0 or 1). Check the reconstruction of a
    // diverse tensor spans many distinct values including odd ones.
    Int8Tensor codes = randomCodes(Shape{32, 512}, 15);
    Int8Tensor rec = binaryPruneTensor(codes, 32, 4,
                                       PruneStrategy::ZeroPointShifting);
    bool hasOdd = false;
    for (std::int64_t i = 0; i < rec.numel() && !hasOdd; ++i)
        hasOdd = (rec.flat(i) & 1) != 0;
    EXPECT_TRUE(hasOdd);
}

} // namespace
} // namespace bbs
