/**
 * @file
 * End-to-end integration tests: materialize -> prune -> simulate across
 * the full accelerator lineup, and the cross-module claims the paper's
 * headline numbers rest on.
 */
#include <gtest/gtest.h>

#include <chrono>

#include "accel/factory.hpp"
#include "core/bbs.hpp"
#include "metrics/kl_divergence.hpp"
#include "models/model_zoo.hpp"
#include "models/workload.hpp"
#include "quant/quantizer.hpp"
#include "sim/prepared_model.hpp"

namespace bbs {
namespace {

TEST(Integration, ResNet34EndToEndPipeline)
{
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 60000;
    MaterializedModel mm = materializeModel(buildResNet34(), opts);

    // Inherent sparsity has the Fig 3 shape.
    double bbsTotal = 0.0, twosTotal = 0.0;
    std::int64_t n = 0;
    for (const auto &l : mm.layers) {
        bbsTotal += bbsSparsity(l.weights.values, 8) *
                    static_cast<double>(l.weights.values.numel());
        twosTotal += bitSparsityTwosComplement(l.weights.values) *
                     static_cast<double>(l.weights.values.numel());
        n += l.weights.values.numel();
    }
    EXPECT_GE(bbsTotal / n, 0.5);
    EXPECT_GT(bbsTotal / n, twosTotal / n);

    // Global pruning compresses and keeps KL small. (The channel-sampled
    // layers inflate the CH-rounded sensitive fraction relative to the
    // full model, so the ratio bound here is looser than the paper's
    // full-model 1.66x.)
    GlobalPruneConfig mod = moderateConfig();
    PrunedModel pruned = globalBinaryPrune(mm.toPrunableLayers(), mod);
    EXPECT_GT(pruned.compressionRatio(), 1.25);
    for (std::size_t i = 0; i < mm.layers.size(); ++i) {
        double kl = klDivergence(mm.layers[i].weights.values,
                                 pruned.layers[i].codes);
        EXPECT_LT(kl, 0.1) << mm.layers[i].desc.name;
    }

    // Whole-lineup simulation: BitVert (mod) is the fastest bit-serial
    // design, and everything beats nothing.
    PreparedModel pm = prepareModel(mm, &mod);
    SimConfig cfg;
    double stripes = 0.0, bitvertMod = 0.0;
    for (auto &acc : evaluationLineup()) {
        ModelSim ms = acc->simulateModel(pm, cfg);
        EXPECT_GT(ms.totalCycles(), 0.0) << acc->name();
        if (acc->name() == "Stripes")
            stripes = ms.totalCycles();
        if (acc->name() == "BitVert (mod)")
            bitvertMod = ms.totalCycles();
    }
    double speedup = stripes / bitvertMod;
    // The paper reports 1.83x-3.03x across models; require the right
    // ballpark on the sampled ResNet-34.
    EXPECT_GT(speedup, 1.5);
    EXPECT_LT(speedup, 5.0);
}

TEST(Integration, KlOrderingAcrossCompressionSchemes)
{
    // Fig 6's ordering at 4 pruned columns: zero-point shifting < rounded
    // averaging < sign-magnitude zero-column pruning (KL, lower=better),
    // evaluated on a full synthetic ViT-Base layer.
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 300000;
    MaterializedModel vit = materializeModel(buildViTBase(), opts);
    const Int8Tensor &codes = vit.layers[2].weights.values; // a qkv layer

    Int8Tensor zp = binaryPruneTensor(codes, 32, 4,
                                      PruneStrategy::ZeroPointShifting);
    Int8Tensor ra = binaryPruneTensor(codes, 32, 4,
                                      PruneStrategy::RoundedAveraging);
    double klZp = klDivergence(codes, zp);
    double klRa = klDivergence(codes, ra);
    EXPECT_LT(klZp, klRa);

    // At 2 columns both strategies must stay low-distortion. (On real
    // DNN weights the paper's Fig 6 shows rounded averaging winning at 2
    // columns because within-group low bits are similar; i.i.d. synthetic
    // weights lack that similarity, so here zero-point shifting — whose
    // search mathematically dominates floor-rounding — wins at both
    // operating points. See EXPERIMENTS.md, "Known deviations".)
    Int8Tensor zp2 = binaryPruneTensor(codes, 32, 2,
                                       PruneStrategy::ZeroPointShifting);
    Int8Tensor ra2 = binaryPruneTensor(codes, 32, 2,
                                       PruneStrategy::RoundedAveraging);
    EXPECT_LT(klDivergence(codes, zp2), klDivergence(codes, zp) + 1e-9);
    EXPECT_LT(klDivergence(codes, ra2), klDivergence(codes, ra) + 1e-9);
}

TEST(Integration, EnergyOrderingMatchesPaperHeadline)
{
    // Fig 13: SparTen worst, BitVert (mod) best.
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 60000;
    MaterializedModel mm = materializeModel(buildBertMrpc(), opts);
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel pm = prepareModel(mm, &mod);
    SimConfig cfg;

    double sparten = 0.0, bitvertMod = 0.0;
    for (auto &acc : evaluationLineup()) {
        ModelSim ms = acc->simulateModel(pm, cfg);
        if (acc->name() == "SparTen")
            sparten = ms.totalEnergyPj();
        if (acc->name() == "BitVert (mod)")
            bitvertMod = ms.totalEnergyPj();
    }
    EXPECT_GT(sparten / bitvertMod, 1.5);
}

TEST(Integration, CompressionThroughputIsPractical)
{
    // §III-B: compressing a layer takes milliseconds-to-seconds. Verify a
    // 1M-weight layer compresses with zero-point shifting in < 30 s even
    // in debug-ish builds (it should be far faster).
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 1000000;
    ModelDesc desc;
    desc.name = "one-layer";
    LayerDesc l;
    l.name = "big";
    l.kind = LayerKind::Linear;
    l.weightShape = Shape{512, 2048};
    l.outputPositions = 1;
    desc.layers = {l};
    MaterializedModel mm = materializeModel(desc, opts);

    auto t0 = std::chrono::steady_clock::now();
    CompressedTensor ct = CompressedTensor::compress(
        mm.layers[0].weights.values, 32, 4,
        PruneStrategy::ZeroPointShifting);
    auto t1 = std::chrono::steady_clock::now();
    double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    EXPECT_LT(seconds, 30.0);
    EXPECT_NEAR(ct.effectiveBitsPerWeight(), 4.25, 1e-9);
}

} // namespace
} // namespace bbs
