/**
 * @file
 * Fuzz suite for the SIMD kernel layer: every vector level the host CPU
 * supports is pinned bit-identical to the scalar fallback across ragged
 * tails, all-zero / all-one words, misaligned spans, and the clean-plane
 * invariants the compressed kernels rely on. Also covers the dispatch
 * machinery itself (level names, CPUID ordering, runtime switching, the
 * BBS_SIMD env override's graceful degradation).
 *
 * CMake registers test_simd (and test_gemm / test_bitplane) once per
 * dispatch level via BBS_SIMD=scalar|avx2|avx512 on top of the default
 * run, so the whole GEMM/bitplane surface is exercised under every
 * installable table; the kernel-level cross-checks here additionally
 * compare every *supported* level in one process regardless of the env.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bit_utils.hpp"
#include "common/random.hpp"
#include "engine/engine.hpp"
#include "gemm/gemm.hpp"
#include "simd/simd.hpp"

namespace bbs {
namespace {

/** Every level this CPU can execute, scalar first. */
std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> out;
    for (SimdLevel l :
         {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512})
        if (simdLevelSupported(l))
            out.push_back(l);
    return out;
}

/** Interesting span lengths: empty, sub-vector, vector-straddling tails. */
const std::int64_t kLengths[] = {0,  1,  2,  3,  7,  8,  9,  15, 16,
                                 17, 31, 32, 33, 63, 64, 65, 100, 129,
                                 255, 256, 257, 511};

struct Buffers
{
    std::vector<std::uint64_t> a, b;
    std::vector<std::int8_t> bytes;
};

Buffers
makeBuffers(std::uint64_t seed, bool allZero = false, bool allOne = false)
{
    Rng rng(seed);
    Buffers buf;
    buf.a.resize(600);
    buf.b.resize(600);
    buf.bytes.resize(4800);
    for (auto &w : buf.a)
        w = allZero ? 0ull : (allOne ? ~0ull : rng.next());
    for (auto &w : buf.b)
        w = allZero ? 0ull : (allOne ? ~0ull : rng.next());
    for (auto &v : buf.bytes)
        v = allZero ? 0
                    : (allOne ? -1
                              : static_cast<std::int8_t>(
                                    rng.uniformInt(-128, 127)));
    // Guarantee the extremes appear in the byte fuzz.
    if (!allZero && !allOne) {
        buf.bytes[3] = -128;
        buf.bytes[5] = 127;
    }
    return buf;
}

/** Compare one level's kernels against scalar over a buffer set.
 *  @p wordOff / @p byteOff shift the span starts to cover misaligned
 *  pointers (the plane containers align, but the kernels must not
 *  require it). */
void
pinAgainstScalar(const SimdKernels &k, const Buffers &buf,
                 std::int64_t wordOff, std::int64_t byteOff)
{
    const SimdKernels &s = simdKernelsFor(SimdLevel::Scalar);
    const std::uint64_t *a = buf.a.data() + wordOff;
    const std::uint64_t *b = buf.b.data() + wordOff;
    const std::int8_t *bytes = buf.bytes.data() + byteOff;
    for (std::int64_t n : kLengths) {
        ASSERT_EQ(k.popcountSum(a, n), s.popcountSum(a, n)) << "n=" << n;
        ASSERT_EQ(k.andPopcountAccumulate(a, b, n),
                  s.andPopcountAccumulate(a, b, n))
            << "n=" << n;
        std::int64_t tk[4], ts[4];
        k.andPopcountTile(a, a + 50, b, b + 50, n, tk);
        s.andPopcountTile(a, a + 50, b, b + 50, n, ts);
        for (int i = 0; i < 4; ++i)
            ASSERT_EQ(tk[i], ts[i]) << "n=" << n << " lane " << i;
        ASSERT_EQ(k.effectualOpsSum(a, n, 64), s.effectualOpsSum(a, n, 64))
            << "n=" << n;
        ASSERT_EQ(k.sparseBitsSum(a, n, 64), s.sparseBitsSum(a, n, 64))
            << "n=" << n;
        // Byte kernels use the same lengths as byte counts (plus a few
        // longer, non-multiple-of-32/64 spans below).
        ASSERT_EQ(k.popcountSumBytes(bytes, n), s.popcountSumBytes(bytes, n))
            << "n=" << n;
        ASSERT_EQ(k.byteSum(bytes, n), s.byteSum(bytes, n)) << "n=" << n;
    }
    for (std::int64_t n : {1000, 1023, 1025, 4097}) {
        ASSERT_EQ(k.popcountSumBytes(bytes, n),
                  s.popcountSumBytes(bytes, n))
            << "n=" << n;
        ASSERT_EQ(k.byteSum(bytes, n), s.byteSum(bytes, n)) << "n=" << n;
    }
    // Window kernels: every 8-word window in the fuzz buffer.
    for (std::int64_t w = 0; w + 8 <= 128; ++w) {
        const std::uint64_t *aw = a + w;
        ASSERT_EQ(k.weightedPlaneSum(aw), s.weightedPlaneSum(aw))
            << "w=" << w;
        ASSERT_EQ(k.weightedPlaneDot(b[w], aw),
                  s.weightedPlaneDot(b[w], aw))
            << "w=" << w;
    }
    std::int64_t bk[64], bs[64];
    for (std::int64_t count : {0, 1, 2, 7, 8}) {
        k.weightedPlaneSumBatch(a, count, bk);
        s.weightedPlaneSumBatch(a, count, bs);
        for (std::int64_t i = 0; i < count; ++i)
            ASSERT_EQ(bk[i], bs[i]) << "count=" << count << " i=" << i;
    }
}

TEST(SimdKernels, AllLevelsMatchScalarOnFuzzedSpans)
{
    for (SimdLevel level : supportedLevels()) {
        const SimdKernels &k = simdKernelsFor(level);
        for (std::uint64_t seed : {1u, 2u, 3u}) {
            Buffers buf = makeBuffers(seed);
            SCOPED_TRACE(simdLevelName(level));
            pinAgainstScalar(k, buf, 0, 0);
        }
    }
}

TEST(SimdKernels, AllLevelsMatchScalarOnMisalignedSpans)
{
    for (SimdLevel level : supportedLevels()) {
        const SimdKernels &k = simdKernelsFor(level);
        Buffers buf = makeBuffers(7);
        SCOPED_TRACE(simdLevelName(level));
        // Word spans off the cache line; byte spans off the word.
        pinAgainstScalar(k, buf, 1, 1);
        pinAgainstScalar(k, buf, 3, 7);
        pinAgainstScalar(k, buf, 7, 13);
    }
}

TEST(SimdKernels, AllLevelsMatchScalarOnAllZeroAndAllOneWords)
{
    for (SimdLevel level : supportedLevels()) {
        const SimdKernels &k = simdKernelsFor(level);
        SCOPED_TRACE(simdLevelName(level));
        Buffers zeros = makeBuffers(0, /*allZero=*/true);
        Buffers ones = makeBuffers(0, false, /*allOne=*/true);
        pinAgainstScalar(k, zeros, 0, 0);
        pinAgainstScalar(k, ones, 0, 0);
        // Degenerate sanity: known closed forms.
        ASSERT_EQ(k.popcountSum(ones.a.data(), 10), 640);
        ASSERT_EQ(k.popcountSum(zeros.a.data(), 10), 0);
        ASSERT_EQ(k.byteSum(ones.bytes.data(), 100), -100);
    }
}

TEST(SimdKernels, EffectualAndSparseScansRespectGroupSize)
{
    // Plane words must satisfy popcount <= groupSize (the clean-plane
    // invariant); generate masked words for every group size.
    Rng rng(99);
    for (SimdLevel level : supportedLevels()) {
        const SimdKernels &k = simdKernelsFor(level);
        const SimdKernels &s = simdKernelsFor(SimdLevel::Scalar);
        SCOPED_TRACE(simdLevelName(level));
        for (int groupSize : {1, 2, 7, 16, 31, 32, 33, 63, 64}) {
            std::uint64_t mask = groupSize >= 64
                                     ? ~0ull
                                     : ((1ull << groupSize) - 1ull);
            std::vector<std::uint64_t> words(173);
            for (auto &w : words)
                w = rng.next() & mask;
            for (std::int64_t n : {0, 1, 7, 8, 9, 100, 173}) {
                ASSERT_EQ(k.effectualOpsSum(words.data(), n, groupSize),
                          s.effectualOpsSum(words.data(), n, groupSize))
                    << "gs=" << groupSize << " n=" << n;
                ASSERT_EQ(k.sparseBitsSum(words.data(), n, groupSize),
                          s.sparseBitsSum(words.data(), n, groupSize))
                    << "gs=" << groupSize << " n=" << n;
            }
        }
    }
}

TEST(SimdKernels, CompressedGroupDotMatchesScalarForEveryStoredWidth)
{
    Rng rng(123);
    for (SimdLevel level : supportedLevels()) {
        const SimdKernels &k = simdKernelsFor(level);
        const SimdKernels &s = simdKernelsFor(SimdLevel::Scalar);
        SCOPED_TRACE(simdLevelName(level));
        for (int bits = 1; bits <= kWeightBits; ++bits) {
            for (int rep = 0; rep < 50; ++rep) {
                std::uint64_t planes[kWeightBits] = {};
                for (int b = 0; b < bits; ++b) {
                    // Mix dense, sparse, empty and full planes.
                    switch (rng.uniformInt(0, 3)) {
                    case 0: planes[b] = 0; break;
                    case 1: planes[b] = ~0ull; break;
                    case 2: planes[b] = rng.next() & rng.next(); break;
                    default: planes[b] = rng.next(); break;
                    }
                }
                std::uint64_t aw[kWeightBits];
                for (auto &w : aw)
                    w = rng.next();
                ASSERT_EQ(k.compressedGroupDot(planes, bits, aw),
                          s.compressedGroupDot(planes, bits, aw))
                    << "bits=" << bits << " rep=" << rep;
            }
        }
    }
}

TEST(SimdDispatch, LevelNamesAndSupportOrdering)
{
    EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx512), "avx512");
    // Scalar is always supported, and support is downward-closed.
    EXPECT_TRUE(simdLevelSupported(SimdLevel::Scalar));
    if (simdLevelSupported(SimdLevel::Avx512))
        EXPECT_TRUE(simdLevelSupported(SimdLevel::Avx2));
    // The active level must itself be supported and tables self-report.
    EXPECT_TRUE(simdLevelSupported(activeSimdLevel()));
    for (SimdLevel l : supportedLevels())
        EXPECT_EQ(simdKernelsFor(l).level, l);
}

TEST(SimdDispatch, SetSimdLevelSwitchesTheActiveTable)
{
    SimdLevel original = activeSimdLevel();
    for (SimdLevel l : supportedLevels()) {
        setSimdLevel(l);
        EXPECT_EQ(activeSimdLevel(), l);
        EXPECT_EQ(simdKernels().level, l);
    }
    setSimdLevel(original);
    EXPECT_EQ(activeSimdLevel(), original);
}

TEST(SimdDispatch, GemmBitSerialIsBitIdenticalAcrossLevels)
{
    Rng rng(77);
    auto randomMatrix = [&](std::int64_t rows, std::int64_t cols) {
        Int8Tensor t(Shape{rows, cols});
        for (std::int64_t i = 0; i < t.numel(); ++i)
            t.flat(i) =
                static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        return t;
    };
    // Ragged depth: exercises padded plane words at every level.
    Int8Tensor acts = randomMatrix(5, 133);
    Int8Tensor weights = randomMatrix(7, 133);
    BitSerialMatrix ap = BitSerialMatrix::pack(acts);
    BitSerialMatrix wp = BitSerialMatrix::pack(weights);

    SimdLevel original = activeSimdLevel();
    setSimdLevel(SimdLevel::Scalar);
    Int32Tensor ref = engine::matmulBitSerial(ap, wp);
    for (SimdLevel l : supportedLevels()) {
        setSimdLevel(l);
        Int32Tensor got = engine::matmulBitSerial(ap, wp);
        for (std::int64_t i = 0; i < ref.numel(); ++i)
            ASSERT_EQ(got.flat(i), ref.flat(i))
                << simdLevelName(l) << " i=" << i;
    }
    setSimdLevel(original);
}

} // namespace
} // namespace bbs
