/**
 * @file
 * Tests for hardware-aware global binary pruning (paper Algorithm 2).
 */
#include <algorithm>

#include <gtest/gtest.h>

#include "core/global_pruning.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"

namespace bbs {
namespace {

std::vector<PrunableLayer>
makeModel(std::uint64_t seed, int layers = 3, std::int64_t channels = 256,
          std::int64_t cs = 128)
{
    Rng rng(seed);
    std::vector<PrunableLayer> model;
    for (int l = 0; l < layers; ++l) {
        WeightDistribution dist;
        dist.outlierChannelFraction = 0.1;
        FloatTensor w = generateWeights(Shape{channels, cs}, dist, rng);
        QuantizedTensor q = quantizePerChannel(w, 8);
        PrunableLayer pl;
        pl.name = "layer" + std::to_string(l);
        pl.codes = q.values;
        pl.scales = q.scales;
        model.push_back(std::move(pl));
    }
    return model;
}

TEST(GlobalPruning, SensitiveCountIsMultipleOfCh)
{
    auto model = makeModel(1);
    auto sens = selectSensitiveChannels(model, 0.1, 32);
    for (const auto &layer : sens) {
        auto count = std::count(layer.begin(), layer.end(), true);
        EXPECT_EQ(count % 32, 0) << "not a multiple of CH";
    }
}

TEST(GlobalPruning, BetaIsALowerBoundOnSensitiveFraction)
{
    auto model = makeModel(2);
    auto sens = selectSensitiveChannels(model, 0.2, 32);
    std::int64_t total = 0, sensitive = 0;
    for (const auto &layer : sens) {
        total += static_cast<std::int64_t>(layer.size());
        sensitive += std::count(layer.begin(), layer.end(), true);
    }
    EXPECT_GE(static_cast<double>(sensitive) /
                  static_cast<double>(total),
              0.2 - 1e-9);
}

TEST(GlobalPruning, SensitiveChannelsHaveHighestScales)
{
    auto model = makeModel(3, 1);
    auto sens = selectSensitiveChannels(model, 0.25, 16);
    const auto &layer = model[0];
    float minSensitive = 1e30f;
    float maxNormal = -1e30f;
    for (std::size_t k = 0; k < sens[0].size(); ++k) {
        if (sens[0][k])
            minSensitive = std::min(minSensitive, layer.scales[k]);
        else
            maxNormal = std::max(maxNormal, layer.scales[k]);
    }
    EXPECT_GE(minSensitive, maxNormal);
}

TEST(GlobalPruning, SensitiveChannelsKeptBitExact)
{
    auto model = makeModel(4);
    GlobalPruneConfig cfg = moderateConfig();
    PrunedModel pm = globalBinaryPrune(model, cfg);
    ASSERT_EQ(pm.layers.size(), model.size());
    for (std::size_t l = 0; l < model.size(); ++l) {
        const auto &orig = model[l].codes;
        const auto &pruned = pm.layers[l].codes;
        for (std::int64_t k = 0; k < orig.shape().dim(0); ++k) {
            if (!pm.layers[l].sensitive[static_cast<std::size_t>(k)])
                continue;
            auto a = orig.channel(k);
            auto b = pruned.channel(k);
            for (std::size_t i = 0; i < a.size(); ++i)
                EXPECT_EQ(a[i], b[i]);
        }
    }
}

TEST(GlobalPruning, EffectiveBitsBetweenPrunedAndFullPrecision)
{
    auto model = makeModel(5);
    GlobalPruneConfig cfg = moderateConfig(); // 4 columns -> 4.25 bits
    PrunedModel pm = globalBinaryPrune(model, cfg);
    double eff = pm.effectiveBits();
    EXPECT_GT(eff, 4.25);
    EXPECT_LT(eff, 8.0);
    EXPECT_GT(pm.compressionRatio(), 1.0);
}

TEST(GlobalPruning, ConservativeAndModerateMatchPaperConfigs)
{
    GlobalPruneConfig cons = conservativeConfig();
    EXPECT_DOUBLE_EQ(cons.beta, 0.1);
    EXPECT_EQ(cons.targetColumns, 2);
    EXPECT_EQ(cons.strategy, PruneStrategy::RoundedAveraging);

    GlobalPruneConfig mod = moderateConfig();
    EXPECT_DOUBLE_EQ(mod.beta, 0.2);
    EXPECT_EQ(mod.targetColumns, 4);
    EXPECT_EQ(mod.strategy, PruneStrategy::ZeroPointShifting);
}

TEST(GlobalPruning, ModerateCompressesMoreThanConservative)
{
    auto model = makeModel(6);
    PrunedModel cons = globalBinaryPrune(model, conservativeConfig());
    PrunedModel mod = globalBinaryPrune(model, moderateConfig());
    EXPECT_GT(mod.compressionRatio(), cons.compressionRatio());
    // The paper reports ~1.29x (cons) and ~1.66x (mod) on full models;
    // require the same ballpark ordering with slack for synthetic data.
    EXPECT_GT(cons.compressionRatio(), 1.1);
    EXPECT_GT(mod.compressionRatio(), 1.4);
}

TEST(GlobalPruning, BetaOneKeepsEverythingLossless)
{
    auto model = makeModel(7, 1, 32, 64);
    GlobalPruneConfig cfg = conservativeConfig();
    cfg.beta = 1.0;
    PrunedModel pm = globalBinaryPrune(model, cfg);
    for (std::int64_t i = 0; i < model[0].codes.numel(); ++i)
        EXPECT_EQ(pm.layers[0].codes.flat(i), model[0].codes.flat(i));
    EXPECT_NEAR(pm.effectiveBits(), 8.0, 1e-9);
}

} // namespace
} // namespace bbs
