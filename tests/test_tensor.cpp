/**
 * @file
 * Tests for shapes, tensors and the synthetic distribution generators.
 */
#include <gtest/gtest.h>

#include "tensor/distribution.hpp"
#include "tensor/tensor.hpp"

namespace bbs {
namespace {

TEST(Shape, RankAndNumel)
{
    Shape s{4, 3, 2, 2};
    EXPECT_EQ(s.rank(), 4);
    EXPECT_EQ(s.numel(), 48);
    EXPECT_EQ(s.channelSize(), 12);
    EXPECT_EQ(s.dim(0), 4);
}

TEST(Shape, RowMajorIndexing)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.index(0, 0, 0), 0);
    EXPECT_EQ(s.index(0, 0, 3), 3);
    EXPECT_EQ(s.index(0, 1, 0), 4);
    EXPECT_EQ(s.index(1, 0, 0), 12);
    EXPECT_EQ(s.index(1, 2, 3), 23);
}

TEST(Shape, Equality)
{
    EXPECT_TRUE((Shape{2, 3}) == (Shape{2, 3}));
    EXPECT_FALSE((Shape{2, 3}) == (Shape{3, 2}));
    EXPECT_FALSE((Shape{2, 3}) == (Shape{2, 3, 1}));
}

TEST(Tensor, ChannelViewsAreContiguousSlices)
{
    Int8Tensor t(Shape{3, 4});
    for (std::int64_t i = 0; i < 12; ++i)
        t.flat(i) = static_cast<std::int8_t>(i);
    auto ch1 = t.channel(1);
    ASSERT_EQ(ch1.size(), 4u);
    EXPECT_EQ(ch1[0], 4);
    EXPECT_EQ(ch1[3], 7);
}

TEST(Tensor, GroupViewsCoverTensorWithShortTail)
{
    Int8Tensor t(Shape{10});
    EXPECT_EQ(t.numGroups(4), 3);
    EXPECT_EQ(t.group(0, 4).size(), 4u);
    EXPECT_EQ(t.group(2, 4).size(), 2u);
}

TEST(Distribution, WeightsAreZeroMeanWithOutlierChannels)
{
    Rng rng(3);
    WeightDistribution dist;
    dist.outlierChannelFraction = 0.1;
    FloatTensor w = generateWeights(Shape{64, 256}, dist, rng);
    double sum = 0.0;
    for (std::int64_t i = 0; i < w.numel(); ++i)
        sum += w.flat(i);
    EXPECT_NEAR(sum / static_cast<double>(w.numel()), 0.0, 0.01);

    // Per-channel scales must differ (log-normal spread).
    double amax0 = 0.0, amax1 = 0.0;
    for (float v : w.channel(0))
        amax0 = std::max(amax0, static_cast<double>(std::abs(v)));
    for (float v : w.channel(1))
        amax1 = std::max(amax1, static_cast<double>(std::abs(v)));
    EXPECT_NE(amax0, amax1);
}

TEST(Distribution, DeterministicPerSeed)
{
    Rng r1(5), r2(5);
    WeightDistribution dist;
    FloatTensor a = generateWeights(Shape{8, 32}, dist, r1);
    FloatTensor b = generateWeights(Shape{8, 32}, dist, r2);
    for (std::int64_t i = 0; i < a.numel(); ++i)
        EXPECT_EQ(a.flat(i), b.flat(i));
}

TEST(Distribution, ReluActivationsAreHalfSparse)
{
    Rng rng(11);
    ActivationDistribution dist;
    dist.relu = true;
    FloatTensor a = generateActivations(Shape{1, 20000}, dist, rng);
    EXPECT_NEAR(valueSparsity(a), 0.5, 0.03);

    dist.relu = false;
    FloatTensor d = generateActivations(Shape{1, 20000}, dist, rng);
    EXPECT_LT(valueSparsity(d), 0.01);
}

TEST(Distribution, ValueSparsityKnob)
{
    Rng rng(13);
    WeightDistribution dist;
    dist.valueSparsity = 0.2;
    FloatTensor w = generateWeights(Shape{16, 1024}, dist, rng);
    EXPECT_NEAR(valueSparsity(w), 0.2, 0.03);
}

} // namespace
} // namespace bbs
