/**
 * @file
 * Tests for the NN substrate: gradient checks, training convergence, and
 * the compression-accuracy pipeline.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/compress_net.hpp"
#include "nn/dataset.hpp"
#include "nn/evaluate.hpp"
#include "nn/network.hpp"

namespace bbs {
namespace {

TEST(Activations, GradientsMatchFiniteDifferences)
{
    const float eps = 1e-3f;
    for (float x : {-2.0f, -0.5f, 0.3f, 1.7f}) {
        float numGelu = (gelu(x + eps) - gelu(x - eps)) / (2 * eps);
        EXPECT_NEAR(geluGrad(x), numGelu, 1e-2);
        if (std::abs(x) > 2 * eps) {
            float numRelu = (relu(x + eps) - relu(x - eps)) / (2 * eps);
            EXPECT_NEAR(reluGrad(x), numRelu, 1e-4);
        }
    }
}

TEST(Dense, GradientCheck)
{
    Rng rng(2);
    Dense dense(3, 2, rng);
    Batch x(Shape{2, 3});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x.flat(i) = static_cast<float>(rng.gaussian(0.0, 1.0));

    // Loss = sum of outputs; analytic dX = column sums of W.
    Batch y = dense.forward(x, /*train=*/true);
    Batch gradOut(y.shape());
    for (std::int64_t i = 0; i < gradOut.numel(); ++i)
        gradOut.flat(i) = 1.0f;
    Batch gradIn = dense.backward(gradOut);

    const float eps = 1e-3f;
    for (std::int64_t i = 0; i < 2; ++i) {
        for (std::int64_t j = 0; j < 3; ++j) {
            Batch xp = x, xm = x;
            xp.at(i, j) += eps;
            xm.at(i, j) -= eps;
            double lp = 0.0, lm = 0.0;
            Batch yp = dense.forward(xp, false);
            Batch ym = dense.forward(xm, false);
            for (std::int64_t k = 0; k < yp.numel(); ++k) {
                lp += yp.flat(k);
                lm += ym.flat(k);
            }
            double numeric = (lp - lm) / (2 * eps);
            EXPECT_NEAR(gradIn.at(i, j), numeric, 1e-2);
        }
    }
}

TEST(Conv2d, ForwardMatchesDirectConvolution)
{
    Rng rng(3);
    Conv2d conv(1, 1, 3, 5, 1, rng);
    Batch x(Shape{1, 25});
    for (std::int64_t i = 0; i < 25; ++i)
        x.flat(i) = static_cast<float>(i % 4 - 1);
    Batch y = conv.forward(x, false);
    ASSERT_EQ(y.shape().dim(1), 25); // 5x5 out with padding 1

    // Direct check of one interior output position (2, 2).
    const FloatTensor &w = *conv.weights();
    float expected = 0.0f;
    for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx)
            expected += w.at(0, 0, ky, kx) *
                        x.flat((2 + ky - 1) * 5 + (2 + kx - 1));
    EXPECT_NEAR(y.flat(2 * 5 + 2), expected, 1e-5);
}

TEST(Network, TrainingReducesLossOnClusters)
{
    Dataset ds = makeClusterDataset(80, 4, 16, 42);
    Rng rng(7);
    Network net;
    net.add(std::make_unique<Dense>(ds.features, 32, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(32, ds.numClasses, rng));

    double first = net.evalLoss(ds.trainX, ds.trainY);
    TrainOptions opts;
    opts.epochs = 10;
    trainNetwork(net, ds.trainX, ds.trainY, opts);
    double last = net.evalLoss(ds.trainX, ds.trainY);
    EXPECT_LT(last, first * 0.7);
}

TEST(Network, BeatsChanceOnHeldOutData)
{
    Dataset ds = makeClusterDataset(150, 4, 16, 43);
    Rng rng(9);
    Network net;
    net.add(std::make_unique<Dense>(ds.features, 48, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(48, ds.numClasses, rng));
    TrainOptions opts;
    opts.epochs = 15;
    trainNetwork(net, ds.trainX, ds.trainY, opts);
    EXPECT_GT(accuracyPercent(net, ds.testX, ds.testY), 60.0);
}

TEST(Dataset, ShapesAndDeterminism)
{
    Dataset a = makeClusterDataset(50, 3, 8, 1);
    Dataset b = makeClusterDataset(50, 3, 8, 1);
    EXPECT_EQ(a.trainX.numel(), b.trainX.numel());
    for (std::int64_t i = 0; i < a.trainX.numel(); ++i)
        EXPECT_EQ(a.trainX.flat(i), b.trainX.flat(i));
    EXPECT_EQ(a.trainY.size() + a.testY.size(), 150u);
}

TEST(Dataset, MarkovTextIsLearnable)
{
    TextDataset ds = makeMarkovTextDataset(4000, 1000, 8, 3, 5);
    EXPECT_EQ(ds.trainX.shape().dim(1), 24);
    Rng rng(5);
    Network lm;
    lm.add(std::make_unique<Dense>(24, 32, rng));
    lm.add(std::make_unique<ReluLayer>());
    lm.add(std::make_unique<Dense>(32, 8, rng));
    double before = perplexity(lm, ds.testX, ds.testY);
    TrainOptions opts;
    opts.epochs = 8;
    trainNetwork(lm, ds.trainX, ds.trainY, opts);
    double after = perplexity(lm, ds.testX, ds.testY);
    // Markov text with skewed transitions: well below uniform (8).
    EXPECT_LT(after, before);
    EXPECT_LT(after, 7.0);
}

class CompressionAccuracy : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ds_ = makeClusterDataset(120, 4, 16, 77);
        Rng rng(21);
        net_.add(std::make_unique<Dense>(ds_.features, 64, rng));
        net_.add(std::make_unique<ReluLayer>());
        net_.add(std::make_unique<Dense>(64, 32, rng));
        net_.add(std::make_unique<ReluLayer>());
        net_.add(std::make_unique<Dense>(32, ds_.numClasses, rng));
        TrainOptions opts;
        opts.epochs = 15;
        trainNetwork(net_, ds_.trainX, ds_.trainY, opts);
        baseAcc_ = accuracyPercent(net_, ds_.testX, ds_.testY);
    }

    double
    accuracyAfter(const CompressionSpec &spec, CompressionReport *rep =
                                                   nullptr)
    {
        // Work on a fresh copy of the trained weights each time.
        Network copy;
        Rng rng(21);
        copy.add(std::make_unique<Dense>(ds_.features, 64, rng));
        copy.add(std::make_unique<ReluLayer>());
        copy.add(std::make_unique<Dense>(64, 32, rng));
        copy.add(std::make_unique<ReluLayer>());
        copy.add(std::make_unique<Dense>(32, ds_.numClasses, rng));
        auto src = net_.weightTensors();
        auto dst = copy.weightTensors();
        for (std::size_t i = 0; i < src.size(); ++i)
            *dst[i] = *src[i];
        CompressionReport r = compressNetwork(copy, spec);
        if (rep)
            *rep = r;
        return accuracyPercent(copy, ds_.testX, ds_.testY);
    }

    Dataset ds_;
    Network net_;
    double baseAcc_ = 0.0;
};

TEST_F(CompressionAccuracy, Int8BaselineIsNearLossless)
{
    CompressionSpec spec;
    spec.method = CompressionMethod::None;
    double acc = accuracyAfter(spec);
    EXPECT_NEAR(acc, baseAcc_, 3.0);
}

TEST_F(CompressionAccuracy, BbsConservativeLosesLittle)
{
    CompressionSpec spec;
    spec.method = CompressionMethod::BbsPrune;
    spec.bbs = conservativeConfig();
    CompressionReport rep;
    double acc = accuracyAfter(spec, &rep);
    EXPECT_GT(acc, baseAcc_ - 5.0);
    EXPECT_LT(rep.effectiveBits, 8.0);
    EXPECT_GT(rep.effectiveBits, 6.0);
}

TEST_F(CompressionAccuracy, BbsBeatsNaivePtqAtEqualBudget)
{
    // The paper's central accuracy claim (Fig 11): at matched memory
    // budget, binary pruning preserves accuracy better than naive PTQ.
    CompressionSpec bbs;
    bbs.method = CompressionMethod::BbsPrune;
    bbs.bbs = moderateConfig();
    CompressionReport bbsRep;
    double bbsAcc = accuracyAfter(bbs, &bbsRep);

    CompressionSpec ptq;
    ptq.method = CompressionMethod::PtqClip;
    ptq.bits = 4; // same non-sensitive precision as moderate pruning
    ptq.bbs = moderateConfig();
    CompressionReport ptqRep;
    double ptqAcc = accuracyAfter(ptq, &ptqRep);

    // The KL ordering must hold (it is the mechanism behind Fig 6).
    EXPECT_LT(bbsRep.weightKl, ptqRep.weightKl);
    // Accuracy ordering with a small tolerance for run-to-run noise.
    EXPECT_GE(bbsAcc, ptqAcc - 2.0);
}

TEST_F(CompressionAccuracy, BbsBeatsBitwaveOnKl)
{
    CompressionSpec bbs;
    bbs.method = CompressionMethod::BbsPrune;
    bbs.bbs = moderateConfig();
    CompressionReport bbsRep;
    accuracyAfter(bbs, &bbsRep);

    CompressionSpec bw;
    bw.method = CompressionMethod::BitwaveFlip;
    bw.bbs = moderateConfig();
    CompressionReport bwRep;
    accuracyAfter(bw, &bwRep);

    EXPECT_LT(bbsRep.weightKl, bwRep.weightKl);
}

TEST_F(CompressionAccuracy, AllMethodsRunAndReport)
{
    for (CompressionMethod m :
         {CompressionMethod::PtqClip, CompressionMethod::NoisyPtq,
          CompressionMethod::Microscaling, CompressionMethod::AntAdaptive,
          CompressionMethod::OlivePairs, CompressionMethod::BitwaveFlip,
          CompressionMethod::BbsPrune}) {
        CompressionSpec spec;
        spec.method = m;
        spec.bits = 6;
        CompressionReport rep;
        double acc = accuracyAfter(spec, &rep);
        EXPECT_GE(acc, 0.0) << compressionMethodName(m);
        EXPECT_GT(rep.effectiveBits, 0.0) << compressionMethodName(m);
    }
}

} // namespace
} // namespace bbs
