/**
 * @file
 * Tests that all bit-serial dot-product forms (Eq. 1-3 and the
 * compressed-domain form) agree exactly with the dense reference —
 * through the engine facade (engine::dot / engine::dotCompressed), which
 * is the canonical route into the kernels. With the compatibility layer
 * enabled, the legacy free functions are additionally pinned
 * bit-identical to the facade.
 */
#include <gtest/gtest.h>

#include "common/bit_utils.hpp"
#include "common/random.hpp"
#include "core/bbs_dot.hpp"
#include "engine/engine.hpp"

namespace bbs {
namespace {

std::vector<std::int8_t>
randomVec(Rng &rng, std::size_t n)
{
    std::vector<std::int8_t> v(n);
    for (auto &x : v)
        x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return v;
}

class DotEquivalence : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(DotEquivalence, AllFormsMatchReference)
{
    std::size_t n = GetParam();
    Rng rng(0x5e7 + n);
    for (int iter = 0; iter < 200; ++iter) {
        auto w = randomVec(rng, n);
        auto a = randomVec(rng, n);
        std::int64_t ref =
            engine::dot(w, a, engine::DotMethod::Reference).value;
        EXPECT_EQ(engine::dot(w, a, engine::DotMethod::ZeroSkip).value,
                  ref);
        BbsDotResult bbs = engine::dot(w, a, engine::DotMethod::Bbs);
        EXPECT_EQ(bbs.value, ref);
        // BBS does at most half the total bit work.
        EXPECT_LE(bbs.effectualOps,
                  static_cast<std::int64_t>(n) * kWeightBits / 2);
    }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, DotEquivalence,
                         ::testing::Values(1, 2, 7, 8, 16, 32, 64));

TEST(DotBbs, InvertsColumnsWithDominantOnes)
{
    // All -1 weights: every column is all ones -> all 8 columns inverted
    // and zero effectual adds.
    std::vector<std::int8_t> w(16, -1);
    std::vector<std::int8_t> a(16, 3);
    BbsDotResult r = engine::dot(w, a);
    EXPECT_EQ(r.value,
              engine::dot(w, a, engine::DotMethod::Reference).value);
    EXPECT_EQ(r.invertedColumns, 8);
    EXPECT_EQ(r.effectualOps, 0);
}

TEST(DotBbs, NoInversionForSparseColumns)
{
    std::vector<std::int8_t> w(16, 0);
    w[0] = 1;
    std::vector<std::int8_t> a(16, 5);
    BbsDotResult r = engine::dot(w, a);
    EXPECT_EQ(r.value, 5);
    EXPECT_EQ(r.invertedColumns, 0);
    EXPECT_EQ(r.effectualOps, 1);
}

struct CompressedDotParam
{
    PruneStrategy strategy;
    int targetColumns;
};

class CompressedDot : public ::testing::TestWithParam<CompressedDotParam>
{
};

TEST_P(CompressedDot, EqualsReferenceOnDecompressedWeights)
{
    auto [strategy, target] = GetParam();
    Rng rng(0xd07 + target);
    for (int iter = 0; iter < 200; ++iter) {
        auto w = randomVec(rng, 32);
        auto a = randomVec(rng, 32);
        CompressedGroup cg = compressGroup(w, target, strategy);
        std::vector<std::int8_t> rec = cg.decompress();

        // The compressed-domain execution must match computing with the
        // reconstructed weights exactly — this is the correctness claim
        // behind the BitVert PE's step 4 constant multiplier.
        BbsDotResult r = engine::dotCompressed(cg, a);
        EXPECT_EQ(r.value,
                  engine::dot(rec, a, engine::DotMethod::Reference)
                      .value);
    }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndTargets, CompressedDot,
    ::testing::Values(
        CompressedDotParam{PruneStrategy::RoundedAveraging, 0},
        CompressedDotParam{PruneStrategy::RoundedAveraging, 2},
        CompressedDotParam{PruneStrategy::RoundedAveraging, 4},
        CompressedDotParam{PruneStrategy::ZeroPointShifting, 2},
        CompressedDotParam{PruneStrategy::ZeroPointShifting, 4},
        CompressedDotParam{PruneStrategy::ZeroPointShifting, 6}));

TEST(CompressedDot, FewerEffectualOpsThanUncompressedBbs)
{
    Rng rng(404);
    std::int64_t opsCompressed = 0, opsFull = 0;
    for (int iter = 0; iter < 100; ++iter) {
        auto w = randomVec(rng, 32);
        auto a = randomVec(rng, 32);
        CompressedGroup cg =
            compressGroup(w, 4, PruneStrategy::ZeroPointShifting);
        opsCompressed += engine::dotCompressed(cg, a).effectualOps;
        opsFull += engine::dot(w, a).effectualOps;
    }
    EXPECT_LT(opsCompressed, opsFull);
}

#if BBS_LEGACY_WRAPPERS
TEST(LegacyWrappers, DotZooPinnedBitIdenticalToEngine)
{
    // The pre-engine free functions are wrappers over the facade; fuzz
    // every form against the engine call it delegates to — value,
    // effectualOps and invertedColumns all identical.
    Rng rng(0x1e9);
    for (std::size_t n : {1u, 7u, 32u, 64u}) {
        for (int iter = 0; iter < 50; ++iter) {
            auto w = randomVec(rng, n);
            auto a = randomVec(rng, n);
            EXPECT_EQ(
                dotReference(w, a),
                engine::dot(w, a, engine::DotMethod::Reference).value);
            EXPECT_EQ(
                dotBitSerialZeroSkip(w, a),
                engine::dot(w, a, engine::DotMethod::ZeroSkip).value);
            EXPECT_EQ(
                dotBitSerialZeroSkipScalar(w, a),
                engine::dot(w, a, engine::DotMethod::ZeroSkipScalar)
                    .value);
            BbsDotResult lb = dotBitSerialBbs(w, a);
            BbsDotResult eb = engine::dot(w, a, engine::DotMethod::Bbs);
            EXPECT_EQ(lb.value, eb.value);
            EXPECT_EQ(lb.effectualOps, eb.effectualOps);
            EXPECT_EQ(lb.invertedColumns, eb.invertedColumns);
            BbsDotResult ls = dotBitSerialBbsScalar(w, a);
            BbsDotResult es =
                engine::dot(w, a, engine::DotMethod::BbsScalar);
            EXPECT_EQ(ls.value, es.value);
            EXPECT_EQ(ls.effectualOps, es.effectualOps);

            CompressedGroup cg = compressGroup(
                std::span<const std::int8_t>(w.data(),
                                             std::min<std::size_t>(n, 64)),
                4, PruneStrategy::ZeroPointShifting);
            std::span<const std::int8_t> aa(a.data(), cg.stored.size());
            BbsDotResult lc = dotCompressed(cg, aa);
            BbsDotResult ec = engine::dotCompressed(cg, aa);
            EXPECT_EQ(lc.value, ec.value);
            EXPECT_EQ(lc.effectualOps, ec.effectualOps);
            EXPECT_EQ(lc.invertedColumns, ec.invertedColumns);
            EXPECT_EQ(dotCompressedScalar(cg, aa).value,
                      engine::dotCompressed(cg, aa, true).value);
        }
    }
}
#endif // BBS_LEGACY_WRAPPERS

} // namespace
} // namespace bbs
