/**
 * @file
 * Tests for the common utilities: stats, tables, RNG determinism and the
 * parallel loop.
 */
#include <atomic>
#include <sstream>

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace bbs {
namespace {

TEST(Stats, MeanAndStddev)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stddev(xs), 1.118, 1e-3);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, GeomeanOfRatios)
{
    std::vector<double> xs = {2.0, 8.0};
    EXPECT_DOUBLE_EQ(geomean(xs), 4.0);
    std::vector<double> ones = {1.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(geomean(ones), 1.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Stats, AccumulatorTracksRange)
{
    Accumulator acc;
    acc.add(3.0);
    acc.add(-1.0);
    acc.add(5.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.min(), -1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    EXPECT_NEAR(acc.mean(), 7.0 / 3.0, 1e-12);
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"Model", "Speedup"});
    t.addRow({"ResNet-50", "3.03"});
    t.addRow({"VGG-16", "2.1"});
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream oss;
    t.print(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("Model"), std::string::npos);
    EXPECT_NE(s.find("ResNet-50"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(Format, PrintfStyle)
{
    EXPECT_EQ(format("%.2f x", 3.0305), "3.03 x");
    EXPECT_EQ(formatDouble(1.666, 1), "1.7");
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic)
{
    Rng a(9), b(9);
    Rng fa = a.fork();
    Rng fb = b.fork();
    EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, GaussianMomentsRoughlyCorrect)
{
    Rng rng(7);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian(1.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double m = sum / n;
    double var = sq / n - m * m;
    EXPECT_NEAR(m, 1.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, LaplaceIsSymmetricWithHeavyTails)
{
    Rng rng(7);
    int pos = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        pos += rng.laplace(0.0, 1.0) > 0.0;
    EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.03);
}

TEST(Parallel, CoversEveryIndexExactlyOnce)
{
    const std::int64_t n = 10007;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, [&](std::int64_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    }, 13);
    for (std::int64_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(Parallel, HandlesEmptyAndTiny)
{
    std::atomic<int> count{0};
    parallelFor(0, [&](std::int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 0);
    parallelFor(3, [&](std::int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3);
}

} // namespace
} // namespace bbs
