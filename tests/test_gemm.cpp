/**
 * @file
 * Tests for the bit-serial GEMM engine: BitSerialMatrix packing is a
 * lossless round-trip, and both GEMM kernels (dense bit-serial and
 * compressed-domain) are pinned row-by-row against dotReference over
 * fuzzed shapes — including ragged non-multiple-of-64 column tails and
 * all-pruned groups.
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/parallel.hpp"
#include "common/random.hpp"
#include "core/bbs_dot.hpp"
#include "engine/engine.hpp"
#include "gemm/compressed_gemm.hpp"
#include "gemm/gemm.hpp"

namespace bbs {
namespace {

Int8Tensor
randomMatrix(std::int64_t rows, std::int64_t cols, Rng &rng)
{
    Int8Tensor t(Shape{rows, cols});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return t;
}

/** Row span [begin, begin+len) of a rank-2 tensor. */
std::span<const std::int8_t>
rowSlice(const Int8Tensor &m, std::int64_t r, std::int64_t begin,
         std::int64_t len)
{
    return std::span<const std::int8_t>(&m.at(r, begin),
                                        static_cast<std::size_t>(len));
}

TEST(BitSerialMatrixTest, PackUnpackRoundTrip)
{
    Rng rng(101);
    for (auto [rows, cols] :
         {std::pair<std::int64_t, std::int64_t>{1, 1},
          {3, 64},
          {5, 70},
          {2, 63},
          {7, 129},
          {16, 256}}) {
        Int8Tensor m = randomMatrix(rows, cols, rng);
        Int8Tensor back = BitSerialMatrix::pack(m).unpack();
        ASSERT_TRUE(back.shape() == m.shape());
        for (std::int64_t i = 0; i < m.numel(); ++i)
            ASSERT_EQ(back.flat(i), m.flat(i)) << "i=" << i;
    }
}

TEST(BitSerialMatrixTest, WindowMatchesBits)
{
    Rng rng(202);
    Int8Tensor m = randomMatrix(3, 150, rng);
    BitSerialMatrix bsm = BitSerialMatrix::pack(m);
    // Windows at unaligned offsets, including ones straddling a word.
    for (std::int64_t begin : {0, 1, 31, 60, 63, 64, 100, 120}) {
        int len = static_cast<int>(
            std::min<std::int64_t>(40, m.shape().dim(1) - begin));
        for (std::int64_t r = 0; r < 3; ++r) {
            for (int b = 0; b < kWeightBits; ++b) {
                std::uint64_t w = bsm.window(b, r, begin, len);
                for (int i = 0; i < len; ++i)
                    ASSERT_EQ((w >> i) & 1ull,
                              static_cast<std::uint64_t>(
                                  bitOf(m.at(r, begin + i), b)))
                        << "r=" << r << " b=" << b << " begin=" << begin
                        << " i=" << i;
                // Bits above len must be masked off.
                if (len < 64)
                    ASSERT_EQ(w >> len, 0ull);
            }
        }
    }
}

TEST(BitSerialMatrixTest, RangeSumMatchesDirectSum)
{
    Rng rng(303);
    Int8Tensor m = randomMatrix(4, 130, rng);
    BitSerialMatrix bsm = BitSerialMatrix::pack(m);
    for (std::int64_t begin : {0, 5, 63, 64, 90}) {
        int len = static_cast<int>(
            std::min<std::int64_t>(41, m.shape().dim(1) - begin));
        for (std::int64_t r = 0; r < 4; ++r) {
            std::int64_t direct = 0;
            for (int i = 0; i < len; ++i)
                direct += m.at(r, begin + i);
            EXPECT_EQ(bsm.rangeSum(r, begin, len), direct)
                << "r=" << r << " begin=" << begin;
        }
    }
}

TEST(GemmBitSerialTest, MatchesReferencesOnFuzzedShapes)
{
    Rng rng(404);
    // Shapes chosen to hit 64-aligned, ragged-tail, tiny and odd cases.
    const std::int64_t shapes[][3] = {
        // {N, K, C}
        {1, 1, 1},   {1, 3, 64},  {2, 2, 63},   {5, 7, 65},
        {4, 8, 128}, {3, 5, 127}, {16, 11, 96}, {8, 16, 200},
    };
    for (const auto &s : shapes) {
        Int8Tensor acts = randomMatrix(s[0], s[2], rng);
        Int8Tensor weights = randomMatrix(s[1], s[2], rng);
        Int32Tensor got =
            engine::matmulBitSerial(BitSerialMatrix::pack(acts),
                                    BitSerialMatrix::pack(weights));
        Int32Tensor ref = gemmReferenceBatch(acts, weights);
        ASSERT_TRUE(got.shape() == ref.shape());
        for (std::int64_t r = 0; r < s[0]; ++r) {
            for (std::int64_t o = 0; o < s[1]; ++o) {
                // Row-by-row pin against the scalar dot reference too.
                std::int64_t dot =
                    engine::dot(rowSlice(weights, o, 0, s[2]),
                                rowSlice(acts, r, 0, s[2]),
                                engine::DotMethod::Reference)
                        .value;
                ASSERT_EQ(got.at(r, o), ref.at(r, o))
                    << "N" << s[0] << " K" << s[1] << " C" << s[2];
                ASSERT_EQ(static_cast<std::int64_t>(got.at(r, o)), dot);
            }
        }
    }
}

/** Compress each row of @p weights into flat groups + offsets. */
struct CompressedRows
{
    std::vector<CompressedGroup> groups;
    std::vector<std::int64_t> offsets;
};

CompressedRows
compressRows(const Int8Tensor &weights, std::int64_t groupSize,
             int targetColumns, PruneStrategy strategy)
{
    CompressedRows out;
    out.offsets.push_back(0);
    std::int64_t cols = weights.shape().dim(1);
    for (std::int64_t o = 0; o < weights.shape().dim(0); ++o) {
        for (std::int64_t begin = 0; begin < cols; begin += groupSize) {
            std::int64_t len = std::min(groupSize, cols - begin);
            out.groups.push_back(compressGroup(
                rowSlice(weights, o, begin, len), targetColumns,
                strategy));
        }
        out.offsets.push_back(
            static_cast<std::int64_t>(out.groups.size()));
    }
    return out;
}

/** gemmCompressed pinned against dotReference on decompressed groups. */
void
expectCompressedGemmExact(const Int8Tensor &weights,
                          const Int8Tensor &acts, std::int64_t groupSize,
                          int targetColumns, PruneStrategy strategy)
{
    std::int64_t cols = weights.shape().dim(1);
    CompressedRows rows =
        compressRows(weights, groupSize, targetColumns, strategy);
    CompressedRowPlanes planes = CompressedRowPlanes::prepare(
        rows.groups, rows.offsets, cols, groupSize);
    Int32Tensor got =
        engine::matmulCompressed(planes, BitSerialMatrix::pack(acts));

    for (std::int64_t r = 0; r < acts.shape().dim(0); ++r) {
        for (std::int64_t o = 0; o < weights.shape().dim(0); ++o) {
            std::int64_t want = 0;
            std::int64_t begin = 0;
            for (std::int64_t g = rows.offsets[o]; g < rows.offsets[o + 1];
                 ++g) {
                const CompressedGroup &cg =
                    rows.groups[static_cast<std::size_t>(g)];
                std::int64_t len =
                    static_cast<std::int64_t>(cg.stored.size());
                auto a = rowSlice(acts, r, begin, len);
                std::vector<std::int8_t> dec = cg.decompress();
                std::int64_t ref =
                    engine::dot(dec, a, engine::DotMethod::Reference)
                        .value;
                want += ref;
                // The per-sample kernel is the same arithmetic.
                ASSERT_EQ(engine::dotCompressed(cg, a).value, ref);
                begin += len;
            }
            ASSERT_EQ(static_cast<std::int64_t>(got.at(r, o)), want)
                << "r=" << r << " o=" << o << " gs=" << groupSize
                << " target=" << targetColumns;
        }
    }
}

TEST(GemmCompressedTest, MatchesDotReferenceOnFuzzedShapes)
{
    Rng rng(606);
    const std::int64_t shapes[][3] = {
        // {N, K, C} — C both multiples and non-multiples of groupSize/64
        {1, 2, 32},  {3, 4, 96},   {2, 5, 70},  {4, 3, 33},
        {6, 8, 128}, {5, 6, 200},  {2, 2, 31},  {7, 4, 65},
    };
    for (const auto &s : shapes) {
        for (std::int64_t gs : {16, 32, 64}) {
            for (int target : {0, 2, 4, 6}) {
                PruneStrategy strategy =
                    (target % 4) == 0 ? PruneStrategy::ZeroPointShifting
                                      : PruneStrategy::RoundedAveraging;
                Int8Tensor w = randomMatrix(s[1], s[2], rng);
                Int8Tensor a = randomMatrix(s[0], s[2], rng);
                expectCompressedGemmExact(w, a, gs, target, strategy);
            }
        }
    }
}

TEST(GemmCompressedTest, AllPrunedGroups)
{
    // Constant-valued rows compress to all-zero stored planes at high
    // pruning targets: the whole contribution must flow through the
    // BBS-constant x sum-of-activations term.
    Rng rng(707);
    Int8Tensor w(Shape{3, 64});
    for (std::int64_t o = 0; o < 3; ++o)
        for (std::int64_t i = 0; i < 64; ++i)
            w.at(o, i) = static_cast<std::int8_t>(8 * (o + 1));
    Int8Tensor a = randomMatrix(5, 64, rng);
    for (PruneStrategy strategy : {PruneStrategy::RoundedAveraging,
                                   PruneStrategy::ZeroPointShifting})
        expectCompressedGemmExact(w, a, 32, 6, strategy);

    // All-zero weights: every term (stored and constant) is zero.
    Int8Tensor zero(Shape{2, 48});
    expectCompressedGemmExact(zero, randomMatrix(3, 48, rng), 16, 4,
                              PruneStrategy::RoundedAveraging);
}

TEST(GemmCompressedTest, PrepareFromCompressedTensor)
{
    Rng rng(808);
    Int8Tensor w = randomMatrix(6, 96, rng);
    Int8Tensor a = randomMatrix(4, 96, rng);
    CompressedTensor ct = CompressedTensor::compress(
        w, 32, 3, PruneStrategy::RoundedAveraging);
    CompressedRowPlanes planes = CompressedRowPlanes::prepare(ct);
    Int32Tensor got =
        engine::matmulCompressed(planes, BitSerialMatrix::pack(a));
    Int8Tensor dec = ct.decompress();
    Int32Tensor ref = gemmReferenceBatch(a, dec);
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        EXPECT_EQ(got.flat(i), ref.flat(i)) << "i=" << i;
}

TEST(ParallelTest, ThreadCapParsing)
{
    // The pure parser behind the cached BBS_THREADS read — one parse
    // path, owned by engine::EngineConfig: only a positive integer
    // strictly below the hardware count clamps.
    using engine::EngineConfig;
    EXPECT_EQ(EngineConfig::parseThreadCap(nullptr, 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("1", 8), 1u);
    EXPECT_EQ(EngineConfig::parseThreadCap("7", 8), 7u);
    EXPECT_EQ(EngineConfig::parseThreadCap("8", 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("99", 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("0", 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("-3", 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("not-a-number", 8), 8u);
    EXPECT_EQ(EngineConfig::parseThreadCap("4x", 8), 8u);
}

TEST(ParallelTest, EnvReadOnceAndOverrideRespectedAndHarmless)
{
    // BBS_THREADS is cached on the first maxWorkerThreads() call, so
    // mutating the environment afterwards must be invisible...
    unsigned cached = maxWorkerThreads();
    ASSERT_EQ(setenv("BBS_THREADS", "1", 1), 0);
    EXPECT_EQ(maxWorkerThreads(), cached);
    ASSERT_EQ(unsetenv("BBS_THREADS"), 0);
    EXPECT_EQ(maxWorkerThreads(), cached);

    // ...while the runtime override caps workers without changing
    // results (the primitives are deterministic under any thread count).
    Rng rng(909);
    Int8Tensor w = randomMatrix(5, 128, rng);
    Int8Tensor a = randomMatrix(9, 128, rng);
    Int32Tensor ref = gemmReferenceBatch(a, w);

    setWorkerThreadCap(1);
    EXPECT_EQ(maxWorkerThreads(), 1u);
    Int32Tensor capped =
        engine::matmulBitSerial(BitSerialMatrix::pack(a),
                                BitSerialMatrix::pack(w));
    setWorkerThreadCap(0);
    EXPECT_EQ(maxWorkerThreads(), cached);

    for (std::int64_t i = 0; i < ref.numel(); ++i)
        ASSERT_EQ(capped.flat(i), ref.flat(i)) << "i=" << i;
}

} // namespace
} // namespace bbs
