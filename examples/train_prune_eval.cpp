/**
 * @file
 * End-to-end accuracy workflow on real trained weights: train a small
 * classifier, quantize to per-channel INT8, apply every compression
 * scheme the paper compares, and re-measure test accuracy.
 */
#include <iostream>

#include "common/table.hpp"
#include "engine/engine.hpp"
#include "nn/compress_net.hpp"
#include "nn/dataset.hpp"
#include "nn/evaluate.hpp"

int
main()
{
    using namespace bbs;

    std::cout << engine::runtimeSummary() << "\n\n";

    // Train.
    Dataset ds = makeClusterDataset(200, 6, 24, 314159);
    Rng rng(8);
    auto build = [&](Rng r) {
        Network net;
        net.add(std::make_unique<Dense>(ds.features, 96, r));
        net.add(std::make_unique<GeluLayer>());
        net.add(std::make_unique<Dense>(96, 48, r));
        net.add(std::make_unique<GeluLayer>());
        net.add(std::make_unique<Dense>(48, ds.numClasses, r));
        return net;
    };
    Network net = build(Rng(8));
    TrainOptions opts;
    opts.epochs = 20;
    trainNetwork(net, ds.trainX, ds.trainY, opts);
    double fp32Acc = accuracyPercent(net, ds.testX, ds.testY);
    std::cout << "FP32 test accuracy: " << format("%.2f", fp32Acc)
              << "%\n\n";

    // Compress with every scheme and re-measure.
    struct Scheme
    {
        const char *label;
        CompressionSpec spec;
    };
    std::vector<Scheme> schemes;
    {
        CompressionSpec s;
        s.method = CompressionMethod::None;
        schemes.push_back({"INT8 baseline", s});
        s.method = CompressionMethod::PtqClip;
        s.bits = 4;
        schemes.push_back({"PTQ 4-bit", s});
        s.method = CompressionMethod::Microscaling;
        s.bits = 6;
        schemes.push_back({"Microscaling 6-bit", s});
        s.method = CompressionMethod::AntAdaptive;
        s.bits = 6;
        schemes.push_back({"ANT 6-bit", s});
        s.method = CompressionMethod::OlivePairs;
        s.bits = 4;
        schemes.push_back({"OliVe 4-bit", s});
        s.method = CompressionMethod::BitwaveFlip;
        s.bbs = moderateConfig();
        schemes.push_back({"BitWave (4 cols)", s});
        s.method = CompressionMethod::BbsPrune;
        s.bbs = conservativeConfig();
        schemes.push_back({"BBS (cons)", s});
        s.bbs = moderateConfig();
        schemes.push_back({"BBS (mod)", s});
    }

    Table t({"Scheme", "Eff. bits", "Weight KL", "Accuracy %", "dAcc"});
    for (auto &scheme : schemes) {
        Network clone = build(Rng(8));
        auto src = net.weightTensors();
        auto dst = clone.weightTensors();
        for (std::size_t i = 0; i < src.size(); ++i)
            *dst[i] = *src[i];
        auto srcB = net.biasTensors();
        auto dstB = clone.biasTensors();
        for (std::size_t i = 0; i < srcB.size(); ++i)
            *dstB[i] = *srcB[i];

        CompressionReport rep = compressNetwork(clone, scheme.spec);
        double acc = accuracyPercent(clone, ds.testX, ds.testY);
        t.addRow({scheme.label, format("%.2f", rep.effectiveBits),
                  format("%.2e", rep.weightKl), format("%.2f", acc),
                  format("%+.2f", acc - fp32Acc)});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape (paper Fig 11 / Tables II-III): BBS "
                 "loses less accuracy than PTQ/BitWave at the same or "
                 "smaller footprint.\n";
    return 0;
}
