/**
 * @file
 * bbs_cli — a small command-line front end to the library, the shape of
 * tool a deployment flow would script against.
 *
 *   bbs_cli sparsity  --model ResNet-50
 *   bbs_cli compress  --model ViT-Base --columns 4 --strategy zp [--beta 0.2]
 *   bbs_cli simulate  --model Bert-MRPC [--accelerator "BitVert (mod)"]
 *
 * All workloads are the synthetic zoo (deterministic per seed); see
 * DESIGN.md for the substitution rationale.
 */
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "accel/factory.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/bbs.hpp"
#include "core/global_pruning.hpp"
#include "metrics/kl_divergence.hpp"
#include "models/model_zoo.hpp"
#include "models/workload.hpp"
#include "sim/prepared_model.hpp"
#include "tensor/distribution.hpp"

namespace {

using namespace bbs;

/** Tiny flag parser: --key value pairs after the subcommand. */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int first)
{
    std::map<std::string, std::string> flags;
    for (int i = first; i + 1 < argc; i += 2) {
        std::string key = argv[i];
        BBS_REQUIRE(key.rfind("--", 0) == 0, "expected --flag, got ", key);
        flags[key.substr(2)] = argv[i + 1];
    }
    return flags;
}

std::string
flagOr(const std::map<std::string, std::string> &flags,
       const std::string &key, const std::string &fallback)
{
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

MaterializedModel
load(const std::string &name)
{
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 1'000'000;
    return materializeModel(modelByName(name), opts);
}

int
cmdSparsity(const std::map<std::string, std::string> &flags)
{
    MaterializedModel mm = load(flagOr(flags, "model", "ResNet-50"));
    Table t({"Layer", "Value", "Bit (2's c)", "Sign-mag", "BBS(8)"});
    for (const auto &l : mm.layers) {
        const Int8Tensor &c = l.weights.values;
        t.addRow({l.desc.name, formatDouble(valueSparsity(c), 3),
                  formatDouble(bitSparsityTwosComplement(c), 3),
                  formatDouble(bitSparsitySignMagnitude(c), 3),
                  formatDouble(bbsSparsity(c, 8), 3)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdCompress(const std::map<std::string, std::string> &flags)
{
    MaterializedModel mm = load(flagOr(flags, "model", "ResNet-50"));
    GlobalPruneConfig cfg = moderateConfig();
    cfg.targetColumns = std::stoi(flagOr(flags, "columns", "4"));
    cfg.beta = std::stod(flagOr(flags, "beta", "0.2"));
    std::string strategy = flagOr(flags, "strategy", "zp");
    cfg.strategy = strategy == "ra" ? PruneStrategy::RoundedAveraging
                                    : PruneStrategy::ZeroPointShifting;

    PrunedModel pruned = globalBinaryPrune(mm.toPrunableLayers(), cfg);
    Table t({"Layer", "Sensitive", "Eff. bits", "KL"});
    for (std::size_t i = 0; i < pruned.layers.size(); ++i) {
        const PrunedLayer &pl = pruned.layers[i];
        t.addRow({pl.name, std::to_string(pl.numSensitive()),
                  formatDouble(pl.effectiveBits(), 2),
                  format("%.2e",
                         klDivergence(mm.layers[i].weights.values,
                                      pl.codes))});
    }
    t.print(std::cout);
    std::cout << "model: " << formatDouble(pruned.effectiveBits(), 2)
              << " bits/weight ("
              << formatDouble(pruned.compressionRatio(), 2)
              << "x compression)\n";
    return 0;
}

int
cmdSimulate(const std::map<std::string, std::string> &flags)
{
    MaterializedModel mm = load(flagOr(flags, "model", "ResNet-50"));
    std::string only = flagOr(flags, "accelerator", "");

    GlobalPruneConfig cons = conservativeConfig();
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel plain = prepareModel(mm);
    PreparedModel withCons = prepareModel(mm, &cons);
    PreparedModel withMod = prepareModel(mm, &mod);
    SimConfig cfg;

    Table t({"Accelerator", "Cycles (M)", "Energy (uJ)", "EDP (norm)"});
    double refEdp = 0.0;
    for (auto &acc : evaluationLineup()) {
        if (!only.empty() && acc->name() != only)
            continue;
        const PreparedModel *pm = &plain;
        if (acc->name() == "BitVert (cons)")
            pm = &withCons;
        else if (acc->name() == "BitVert (mod)")
            pm = &withMod;
        ModelSim ms = acc->simulateModel(*pm, cfg);
        if (refEdp == 0.0)
            refEdp = ms.edp();
        t.addRow({acc->name(), format("%.2f", ms.totalCycles() / 1e6),
                  format("%.1f", ms.totalEnergyPj() / 1e6),
                  format("%.3f", ms.edp() / refEdp)});
    }
    t.print(std::cout);
    return 0;
}

int
usage()
{
    std::cerr << "usage: bbs_cli <sparsity|compress|simulate> "
                 "[--model NAME] [--columns N] [--strategy zp|ra] "
                 "[--beta F] [--accelerator NAME]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    auto flags = parseFlags(argc, argv, 2);
    if (cmd == "sparsity")
        return cmdSparsity(flags);
    if (cmd == "compress")
        return cmdCompress(flags);
    if (cmd == "simulate")
        return cmdSimulate(flags);
    return usage();
}
