/**
 * @file
 * bbs_cli — a small command-line front end to the library, the shape of
 * tool a deployment flow would script against.
 *
 *   bbs_cli sparsity    --model ResNet-50
 *   bbs_cli compress    --model ViT-Base --columns 4 --strategy zp [--beta 0.2]
 *   bbs_cli simulate    --model Bert-MRPC [--accelerator "BitVert (mod)"]
 *   bbs_cli engine-info [--rows K --cols C --batch N --columns T]
 *   bbs_cli serve-stats [--requests N --clients M]
 *   bbs_cli autotune    --out tuning.json [--reps N --warmup N]
 *   bbs_cli store-pack  --out model.bbms [--in N --hidden N --classes N]
 *   bbs_cli store-info  --path model.bbms
 *
 * All workloads are the synthetic zoo (deterministic per seed); see
 * DESIGN.md for the substitution rationale.
 */
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "accel/factory.hpp"
#include "common/aligned.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/bbs.hpp"
#include "engine/engine.hpp"
#include "gemm/gemm.hpp"
#include "core/global_pruning.hpp"
#include "metrics/kl_divergence.hpp"
#include "models/model_zoo.hpp"
#include "models/workload.hpp"
#include "nn/layers.hpp"
#include "serve/server.hpp"
#include "sim/prepared_model.hpp"
#include "store/container.hpp"
#include "tensor/distribution.hpp"

namespace {

using namespace bbs;

/** Tiny flag parser: --key value pairs after the subcommand. */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int first)
{
    std::map<std::string, std::string> flags;
    for (int i = first; i + 1 < argc; i += 2) {
        std::string key = argv[i];
        BBS_REQUIRE(key.rfind("--", 0) == 0, "expected --flag, got ", key);
        flags[key.substr(2)] = argv[i + 1];
    }
    return flags;
}

std::string
flagOr(const std::map<std::string, std::string> &flags,
       const std::string &key, const std::string &fallback)
{
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

MaterializedModel
load(const std::string &name)
{
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 1'000'000;
    return materializeModel(modelByName(name), opts);
}

int
cmdSparsity(const std::map<std::string, std::string> &flags)
{
    MaterializedModel mm = load(flagOr(flags, "model", "ResNet-50"));
    Table t({"Layer", "Value", "Bit (2's c)", "Sign-mag", "BBS(8)"});
    for (const auto &l : mm.layers) {
        const Int8Tensor &c = l.weights.values;
        t.addRow({l.desc.name, formatDouble(valueSparsity(c), 3),
                  formatDouble(bitSparsityTwosComplement(c), 3),
                  formatDouble(bitSparsitySignMagnitude(c), 3),
                  formatDouble(bbsSparsity(c, 8), 3)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdCompress(const std::map<std::string, std::string> &flags)
{
    MaterializedModel mm = load(flagOr(flags, "model", "ResNet-50"));
    GlobalPruneConfig cfg = moderateConfig();
    cfg.targetColumns = std::stoi(flagOr(flags, "columns", "4"));
    cfg.beta = std::stod(flagOr(flags, "beta", "0.2"));
    std::string strategy = flagOr(flags, "strategy", "zp");
    cfg.strategy = strategy == "ra" ? PruneStrategy::RoundedAveraging
                                    : PruneStrategy::ZeroPointShifting;

    PrunedModel pruned = globalBinaryPrune(mm.toPrunableLayers(), cfg);
    Table t({"Layer", "Sensitive", "Eff. bits", "KL"});
    for (std::size_t i = 0; i < pruned.layers.size(); ++i) {
        const PrunedLayer &pl = pruned.layers[i];
        t.addRow({pl.name, std::to_string(pl.numSensitive()),
                  formatDouble(pl.effectiveBits(), 2),
                  format("%.2e",
                         klDivergence(mm.layers[i].weights.values,
                                      pl.codes))});
    }
    t.print(std::cout);
    std::cout << "model: " << formatDouble(pruned.effectiveBits(), 2)
              << " bits/weight ("
              << formatDouble(pruned.compressionRatio(), 2)
              << "x compression)\n";
    return 0;
}

int
cmdSimulate(const std::map<std::string, std::string> &flags)
{
    MaterializedModel mm = load(flagOr(flags, "model", "ResNet-50"));
    std::string only = flagOr(flags, "accelerator", "");

    GlobalPruneConfig cons = conservativeConfig();
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel plain = prepareModel(mm);
    PreparedModel withCons = prepareModel(mm, &cons);
    PreparedModel withMod = prepareModel(mm, &mod);
    SimConfig cfg;

    Table t({"Accelerator", "Cycles (M)", "Energy (uJ)", "EDP (norm)"});
    double refEdp = 0.0;
    for (auto &acc : evaluationLineup()) {
        if (!only.empty() && acc->name() != only)
            continue;
        const PreparedModel *pm = &plain;
        if (acc->name() == "BitVert (cons)")
            pm = &withCons;
        else if (acc->name() == "BitVert (mod)")
            pm = &withMod;
        ModelSim ms = acc->simulateModel(*pm, cfg);
        if (refEdp == 0.0)
            refEdp = ms.edp();
        t.addRow({acc->name(), format("%.2f", ms.totalCycles() / 1e6),
                  format("%.1f", ms.totalEnergyPj() / 1e6),
                  format("%.3f", ms.edp() / refEdp)});
    }
    t.print(std::cout);
    return 0;
}

/**
 * The engine/pool observability tallies from the process-global
 * registry: plan runs by kind (with per-kind latency), tune-cache
 * lookup outcomes, worker-pool utilization. Empty until something has
 * executed plans in THIS process (engine-info runs a probe first), and
 * compiled out entirely at BBS_OBS=0.
 */
void
printGlobalObs(std::ostream &os)
{
    std::vector<obs::MetricSnapshot> ms = obs::Registry::global().snapshot();
    if (ms.empty()) {
        os << "(no engine metrics: BBS_OBS=0 build, or nothing has "
              "executed yet)\n";
        return;
    }
    Table t({"engine/pool metric", "value"});
    for (const obs::MetricSnapshot &m : ms) {
        std::string name =
            m.labels.empty() ? m.name : m.name + "{" + m.labels + "}";
        switch (m.type) {
        case obs::MetricSnapshot::Type::Counter:
            t.addRow({name, std::to_string(m.counterValue)});
            break;
        case obs::MetricSnapshot::Type::Gauge:
            t.addRow({name, std::to_string(m.gaugeValue)});
            break;
        case obs::MetricSnapshot::Type::Histogram:
            t.addRow({name,
                      format("n=%llu mean=%.1f",
                             static_cast<unsigned long long>(m.count),
                             m.count > 0
                                 ? m.sum / static_cast<double>(m.count)
                                 : 0.0)});
            break;
        }
    }
    t.print(os);
}

/**
 * engine-info: what the engine facade resolved on this host — detected
 * SIMD level, worker-thread cap, the alignment guarantees the kernels
 * rely on — which plan kind a given (rows, cols, batch) shape would
 * select at a compression operating point, and the observability
 * tallies (plan-run counters, tune-cache hit/miss/fallback) after a
 * live probe of that shape.
 */
int
cmdEngineInfo(const std::map<std::string, std::string> &flags)
{
    std::int64_t rows = std::stoll(flagOr(flags, "rows", "64"));
    std::int64_t cols = std::stoll(flagOr(flags, "cols", "256"));
    std::int64_t batch = std::stoll(flagOr(flags, "batch", "8"));
    int columns = std::stoi(flagOr(flags, "columns", "4"));
    BBS_REQUIRE(rows > 0 && cols > 0 && batch > 0,
                "--rows/--cols/--batch must be positive");
    BBS_REQUIRE(columns >= 0 && columns <= kMaxPrunedColumns,
                "--columns must be 0..", kMaxPrunedColumns);

    // Show the raw environment values (an operator debugging a cap that
    // "isn't taking effect" needs to see a set-but-not-clamping value,
    // not "(unset)"); the resolved rows above them show the effect.
    const char *envThreads = std::getenv("BBS_THREADS");
    const char *envSimd = std::getenv("BBS_SIMD");
    Table rt({"engine runtime", "value"});
    rt.addRow({"active SIMD level", simdLevelName(activeSimdLevel())});
    rt.addRow({"max supported SIMD", simdLevelName(maxSupportedSimdLevel())});
    rt.addRow({"BBS_SIMD", envSimd ? envSimd : "(unset)"});
    rt.addRow({"worker-thread cap", std::to_string(maxWorkerThreads())});
    rt.addRow({"BBS_THREADS",
               envThreads ? envThreads : "(unset)"});
    rt.addRow({"plane alignment",
               std::to_string(kCacheLineBytes) + " B (64-byte bases)"});
    rt.addRow({"row-plane padding",
               std::to_string(kRowPlaneWordAlign) +
                   " words (whole cache lines)"});
    rt.addRow({"cache topology", engine::cacheTopologySummary()});
    rt.addRow({"GEMM depth block",
               std::to_string(
                   engine::EngineConfig{}.tuning
                       .resolvedDepthBlockWords()) +
                   " words"});
    const char *envCache = std::getenv("BBS_TUNE_CACHE");
    engine::Session probe; // loads BBS_TUNE_CACHE if deployed
    rt.addRow({"BBS_TUNE_CACHE", envCache ? envCache : "(unset)"});
    rt.addRow({"tuning cache",
               probe.tuningCache()
                   ? std::to_string(probe.tuningCache()->entries.size()) +
                         " measured shape classes"
                   : "(none: heuristic selection)"});
    rt.print(std::cout);

    // Plan selection for the requested shape: the stored-bit sparsity a
    // compressed operand would report is roughly 8 - targetColumns (the
    // compressor may do better via redundant columns).
    double storedBits = 8.0 - static_cast<double>(columns);
    Table plan({"operand", "batch", "plan kind"});
    for (std::int64_t b : {std::int64_t{1}, std::int64_t{2}, batch}) {
        plan.addRow({"dense", std::to_string(b),
                     planKindName(engine::MatmulPlan::selectKind(
                         rows, cols, b, false, 8.0))});
        plan.addRow({format("compressed (%d cols pruned)", columns),
                     std::to_string(b),
                     planKindName(engine::MatmulPlan::selectKind(
                         rows, cols, b, true, storedBits))});
    }
    plan.print(std::cout);
    std::cout << "shape: weights [" << rows << ", " << cols
              << "], activations [" << batch << ", " << cols << "]\n";

    // Live probe: execute the same shapes through the session so the
    // tallies below reflect this host's actual selections, not just the
    // static heuristic table above.
    if (rows * cols <= 4'000'000 && cols <= kMaxGemmDepth) {
        Rng rng(0x9e0be);
        Int8Tensor w(Shape{rows, cols});
        for (std::int64_t i = 0; i < w.numel(); ++i)
            w.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        engine::PackOptions popts;
        popts.targetColumns = columns;
        engine::PackedOperand dense = probe.pack(w);
        engine::PackedOperand comp = probe.pack(w, popts);
        Int32Tensor out;
        for (std::int64_t b : {std::int64_t{1}, std::int64_t{2}, batch}) {
            Int8Tensor x(Shape{b, cols});
            for (std::int64_t i = 0; i < x.numel(); ++i)
                x.flat(i) =
                    static_cast<std::int8_t>(rng.uniformInt(-128, 127));
            probe.plan(dense, {b}).run(x, out);
            probe.plan(comp, {b}).run(x, out);
        }
    }
    std::cout << "\nobservability (process-global registry, probe "
                 "included):\n";
    printGlobalObs(std::cout);
    return 0;
}

/**
 * serve-stats: stand up an InferenceServer, push a burst of closed-loop
 * traffic through it, and print the stats snapshot plus the full
 * Prometheus text exposition — the scrape surface a deployment wires a
 * collector to.
 */
int
cmdServeStats(const std::map<std::string, std::string> &flags)
{
    std::int64_t requests = std::stoll(flagOr(flags, "requests", "512"));
    int clients = std::stoi(flagOr(flags, "clients", "8"));
    BBS_REQUIRE(requests > 0 && clients > 0,
                "--requests/--clients must be positive");

    constexpr std::int64_t kFeatures = 64;
    Rng rng(0x5e77e);
    Network net;
    net.add(std::make_unique<Dense>(kFeatures, 32, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(32, 8, rng));
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("demo",
                  Int8Network::fromNetwork(
                      net, 32, 4, PruneStrategy::ZeroPointShifting));

    ServerConfig cfg;
    cfg.maxBatch = 16;
    cfg.maxDelayUs = 500;
    InferenceServer server(registry, cfg);

    std::vector<std::vector<float>> pool(16);
    Rng prng(0xf00d);
    for (auto &sample : pool) {
        sample.resize(static_cast<std::size_t>(kFeatures));
        for (float &v : sample)
            v = static_cast<float>(prng.uniformReal(-1.0, 1.0));
    }

    std::int64_t perClient = (requests + clients - 1) / clients;
    std::atomic<std::int64_t> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            for (std::int64_t i = 0; i < perClient; ++i) {
                std::size_t idx = static_cast<std::size_t>(
                    static_cast<std::int64_t>(t) + i) % pool.size();
                if (server.submit("demo", pool[idx]).get().status !=
                    ServeStatus::Ok)
                    failures.fetch_add(1);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    BBS_REQUIRE(failures.load() == 0, failures.load(),
                " requests failed to serve");

    StatsSnapshot s = server.stats();
    Table t({"metric", "value"});
    t.addRow({"completed", std::to_string(s.completed)});
    t.addRow({"batches", std::to_string(s.batches)});
    t.addRow({"mean batch rows", format("%.2f", s.meanBatchRows)});
    t.addRow({"p50 latency", format("%.2f ms", s.p50Us / 1e3)});
    t.addRow({"p99 latency", format("%.2f ms", s.p99Us / 1e3)});
    t.addRow({"latency window",
              format("%llu samples (%llu dropped)",
                     static_cast<unsigned long long>(s.latencyWindow),
                     static_cast<unsigned long long>(s.latencyDropped))});
    t.addRow({"throughput", format("%.0f req/s", s.throughputRps)});
    t.print(std::cout);

    std::cout << "\n" << server.metricsText();
    return 0;
}

/**
 * autotune: measure the plan-kind / kernel-parameter winners for the
 * default shape suite on THIS host and write the tuning cache JSON.
 * Deploy by pointing BBS_TUNE_CACHE (or EngineConfig::tuneCachePath) at
 * the file.
 */
int
cmdAutotune(const std::map<std::string, std::string> &flags)
{
    std::string out = flagOr(flags, "out", "tuning.json");
    engine::AutotuneOptions opts;
    opts.reps = std::stoi(flagOr(flags, "reps", "3"));
    opts.warmup = std::stoi(flagOr(flags, "warmup", "1"));
    BBS_REQUIRE(opts.reps >= 1, "--reps must be >= 1");

    std::cout << "autotuning on " << engine::runtimeSummary() << "\n"
              << "topology: " << engine::cacheTopologySummary() << "\n";
    engine::TuningCache cache = engine::autotuneSuite(opts);

    Table t({"shape (r x d)", "batch", "stored bits", "winner",
             "depth block", "tile", "best s"});
    for (const engine::TuneEntry &e : cache.entries)
        t.addRow({format("%lld x %lld", static_cast<long long>(e.rows),
                         static_cast<long long>(e.depth)),
                  std::to_string(e.batch),
                  formatDouble(e.storedBits, 2), planKindName(e.kind),
                  e.depthBlockWords == 0 ? "topo"
                                         : std::to_string(
                                               e.depthBlockWords),
                  format("%dx%d", e.tileRows, e.tileCols),
                  format("%.2e", e.seconds)});
    t.print(std::cout);

    BBS_REQUIRE(cache.save(out), "cannot write tuning cache to ", out);
    std::cout << "wrote " << cache.entries.size()
              << " shape classes to " << out
              << "\ndeploy: BBS_TUNE_CACHE=" << out << "\n";
    return 0;
}

/**
 * store-pack: build the demo MLP (deterministic per --seed), compress it
 * at the requested operating point, and write it as a BBMS model
 * container — the artifact `ModelStore` / `store::mapModel` serve
 * zero-copy. The written file is reopened and mapped before reporting
 * success, so a "wrote ..." line implies a loadable container.
 */
int
cmdStorePack(const std::map<std::string, std::string> &flags)
{
    std::string out = flagOr(flags, "out", "model.bbms");
    std::int64_t in = std::stoll(flagOr(flags, "in", "512"));
    std::int64_t hidden = std::stoll(flagOr(flags, "hidden", "256"));
    std::int64_t classes = std::stoll(flagOr(flags, "classes", "64"));
    int columns = std::stoi(flagOr(flags, "columns", "4"));
    std::uint64_t seed = std::stoull(flagOr(flags, "seed", "42"));
    BBS_REQUIRE(in % 32 == 0 && hidden % 32 == 0,
                "--in and --hidden must be multiples of the group size "
                "(32), got ",
                in, " and ", hidden);

    Rng rng(seed);
    Network net;
    net.add(std::make_unique<Dense>(in, hidden, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(hidden, classes, rng));
    Int8Network engine = Int8Network::fromNetwork(
        net, 32, columns, PruneStrategy::ZeroPointShifting);

    std::size_t bytes = store::writeModelContainer(engine, out);
    auto container = store::MappedContainer::open(out);
    Int8Network mapped = store::mapModel(container);
    std::cout << format("wrote %s: %zu bytes, %zu layers, "
                        "%.2f effective bits/weight (verified: mapped "
                        "%lld -> %lld network)\n",
                        out.c_str(), bytes, container->layerCount(),
                        engine.effectiveBits(),
                        static_cast<long long>(mapped.inputFeatures()),
                        static_cast<long long>(
                            mapped.layers().back().outFeatures()));
    return 0;
}

/** store-info: validate + map a BBMS container and describe it. */
int
cmdStoreInfo(const std::map<std::string, std::string> &flags)
{
    std::string path = flagOr(flags, "path", "model.bbms");
    std::shared_ptr<const store::MappedContainer> c;
    std::string error;
    if (!store::MappedContainer::tryOpen(path, c, &error)) {
        std::cerr << "store-info: " << path << ": " << error << "\n";
        return 1;
    }
    std::cout << path << ": " << c->bytes() << " bytes, "
              << c->layerCount() << " layers, " << c->operandCount()
              << " operands"
              << (c->hasModel() ? "" : " (bare operands, no model)")
              << "\n";
    if (flagOr(flags, "verify", "0") != "0") {
        if (!c->verifyChecksums(&error)) {
            std::cerr << "store-info: " << error << "\n";
            return 1;
        }
        std::cout << (c->hasChecksums()
                          ? "checksums: all sections verified\n"
                          : "checksums: none stored (pre-checksum "
                            "container)\n");
    }
    Table t({"layer", "shape", "group", "stored bits", "activation"});
    for (std::size_t i = 0; i < c->layerCount(); ++i) {
        const store::MappedContainer::Layer &l = c->layer(i);
        t.addRow({std::to_string(i),
                  format("%lld x %lld",
                         static_cast<long long>(l.meta.outFeatures),
                         static_cast<long long>(l.meta.inFeatures)),
                  std::to_string(l.meta.groupSize),
                  formatDouble(c->operandStoredBits(
                                   static_cast<std::size_t>(
                                       l.meta.operandIndex)),
                               2),
                  l.meta.reluAfter   ? "relu"
                  : l.meta.geluAfter ? "gelu"
                                     : "-"});
    }
    t.print(std::cout);
    return 0;
}

int
usage()
{
    std::cerr << "usage: bbs_cli "
                 "<sparsity|compress|simulate|engine-info|serve-stats|"
                 "autotune|store-pack|store-info> "
                 "[--model NAME] [--columns N] [--strategy zp|ra] "
                 "[--beta F] [--accelerator NAME] [--rows K] [--cols C] "
                 "[--batch N] [--requests N] [--clients M] [--out PATH] "
                 "[--reps N] [--warmup N] [--in N] [--hidden N] "
                 "[--classes N] [--seed N] [--path FILE] [--verify 1]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    auto flags = parseFlags(argc, argv, 2);
    if (cmd == "sparsity")
        return cmdSparsity(flags);
    if (cmd == "compress")
        return cmdCompress(flags);
    if (cmd == "simulate")
        return cmdSimulate(flags);
    if (cmd == "engine-info")
        return cmdEngineInfo(flags);
    if (cmd == "serve-stats")
        return cmdServeStats(flags);
    if (cmd == "autotune")
        return cmdAutotune(flags);
    if (cmd == "store-pack")
        return cmdStorePack(flags);
    if (cmd == "store-info")
        return cmdStoreInfo(flags);
    return usage();
}
