/**
 * @file
 * The serving runtime end to end: two BBS-compressed models hosted in
 * one InferenceServer, concurrent clients with mixed traffic and
 * deadlines, and the ServerStats block a deployment would scrape.
 *
 * Every response is produced through each model's per-layer
 * engine::MatmulPlan with per-row activation calibration, so each client
 * gets logits bit-identical to running its request alone — the demo
 * verifies that against the single-request per-dot-policy oracle while
 * the server is under load.
 *
 * The demo then puts the SAME server on the wire: a NetServer takes the
 * listener, a NetClient round-trips requests for both models plus a
 * Prometheus scrape over one TCP connection, and the logits are checked
 * against the same oracle — the socket path adds framing, not numerics.
 *
 * Flags: `--metrics-dump` prints the full Prometheus text exposition
 * (server registry + the process-global engine/pool series) after the
 * stats block; `--trace-dump` prints the per-request trace ring as JSON;
 * `--swap-model` hot-swaps a mapped BBMS copy of one model into the
 * registry repeatedly while the clients are in flight (the CI smoke for
 * zero failed requests across version bumps); `--generate` hosts a
 * synthetic transformer behind the same socket front-end and streams a
 * generation over the wire, each token checked byte-identical to the
 * unbatched reference (the CI smoke for the token-streaming path).
 */
#include <atomic>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>

#include <unistd.h>

#include "common/table.hpp"
#include "engine/engine.hpp"
#include "llm/transformer.hpp"
#include "net/net_client.hpp"
#include "net/net_server.hpp"
#include "nn/dataset.hpp"
#include "nn/evaluate.hpp"
#include "serve/generation.hpp"
#include "serve/server.hpp"
#include "store/container.hpp"

int
main(int argc, char **argv)
{
    using namespace bbs;

    bool metricsDump = false, traceDump = false, swapModel = false;
    bool generate = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics-dump") == 0)
            metricsDump = true;
        else if (std::strcmp(argv[i], "--trace-dump") == 0)
            traceDump = true;
        else if (std::strcmp(argv[i], "--swap-model") == 0)
            swapModel = true;
        else if (std::strcmp(argv[i], "--generate") == 0)
            generate = true;
    }

    std::cout << bbs::engine::runtimeSummary() << "\n";

    // Train two small classifiers and compress them at different
    // operating points: one conservative, one aggressive.
    Dataset ds = makeClusterDataset(120, 4, 20, 424242);
    Rng rng(7);
    Network net;
    net.add(std::make_unique<Dense>(ds.features, 48, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(48, ds.numClasses, rng));
    TrainOptions opts;
    opts.epochs = 10;
    trainNetwork(net, ds.trainX, ds.trainY, opts);

    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf-bbs2", Int8Network::fromNetwork(
                                  net, 32, 2,
                                  PruneStrategy::RoundedAveraging));
    registry->add("clf-bbs4", Int8Network::fromNetwork(
                                  net, 32, 4,
                                  PruneStrategy::ZeroPointShifting));
    for (const std::string &name : registry->names())
        std::cout << "hosted model: " << name << " ("
                  << format("%.2f", registry->find(name)->effectiveBits())
                  << " effective bits)\n";

    ServerConfig cfg;
    cfg.maxBatch = 16;
    cfg.maxDelayUs = 500;
    cfg.workers = 1;
    InferenceServer server(registry, cfg);

    // --swap-model: the aggressive model is packed into a BBMS
    // container up front; while the clients below are in flight, a
    // swapper thread repeatedly maps the container and atomically swaps
    // the mapped engine into the registry. The weights are identical,
    // so the per-request oracle checks double as the zero-divergence
    // proof — the gate is that no request fails or deviates across the
    // version bumps.
    std::string swapPath;
    std::atomic<bool> swapping{false};
    std::atomic<std::uint64_t> swapVersion{0};
    std::thread swapper;
    if (swapModel) {
        swapPath = "/tmp/bbs_serve_demo_swap_" +
                   std::to_string(::getpid()) + ".bbms";
        store::writeModelContainer(*registry->find("clf-bbs4"), swapPath);
        swapping.store(true);
        swapper = std::thread([&] {
            while (swapping.load(std::memory_order_relaxed)) {
                auto container = store::MappedContainer::open(swapPath);
                swapVersion.store(
                    registry->swap("clf-bbs4",
                                   std::make_shared<const Int8Network>(
                                       store::mapModel(container))),
                    std::memory_order_relaxed);
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
        });
    }

    // Four clients fire the whole test set at the server, alternating
    // models, each with a deadline; responses are checked against the
    // single-request oracle and scored.
    const std::int64_t n = ds.testX.shape().dim(0);
    const std::int64_t features = ds.testX.shape().dim(1);
    std::vector<std::string> models = registry->names();
    struct Tally
    {
        std::int64_t ok = 0, hits = 0, expired = 0, mismatches = 0;
    };
    std::vector<Tally> tallies(4);
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            Tally &tally = tallies[static_cast<std::size_t>(t)];
            for (std::int64_t i = t; i < n; i += 4) {
                const std::string &model =
                    models[static_cast<std::size_t>(i) % models.size()];
                std::vector<float> input(
                    static_cast<std::size_t>(features));
                for (std::int64_t c = 0; c < features; ++c)
                    input[static_cast<std::size_t>(c)] =
                        ds.testX.at(i, c);
                InferenceResponse resp =
                    server.submit(model, input, /*deadlineUs=*/200'000)
                        .get();
                if (resp.status == ServeStatus::DeadlineExpired) {
                    ++tally.expired;
                    continue;
                }
                if (resp.status != ServeStatus::Ok)
                    continue;
                ++tally.ok;
                // Oracle check under load: one sample through the
                // per-dot plan kind.
                Batch x(Shape{1, features});
                for (std::int64_t c = 0; c < features; ++c)
                    x.at(0, c) = ds.testX.at(i, c);
                Batch y = registry->find(model)->forward(
                    x, InferencePolicy{
                           bbs::engine::Calibration::PerBatch,
                           bbs::engine::PlanKind::PerDot});
                for (std::int64_t c = 0; c < y.shape().dim(1); ++c)
                    if (resp.logits[static_cast<std::size_t>(c)] !=
                        y.at(0, c))
                        ++tally.mismatches;
                if (resp.predicted ==
                    ds.testY[static_cast<std::size_t>(i)])
                    ++tally.hits;
            }
        });
    }
    for (auto &c : clients)
        c.join();
    if (swapper.joinable()) {
        swapping.store(false, std::memory_order_relaxed);
        swapper.join();
        std::remove(swapPath.c_str());
    }

    Tally total;
    for (const Tally &t : tallies) {
        total.ok += t.ok;
        total.hits += t.hits;
        total.expired += t.expired;
        total.mismatches += t.mismatches;
    }
    if (total.mismatches != 0) {
        std::cerr << total.mismatches
                  << " logits deviated from the single-request oracle!\n";
        return 1;
    }
    if (total.ok + total.expired != n) {
        std::cerr << "requests lost: served " << total.ok << " + expired "
                  << total.expired << " != " << n << "\n";
        return 1;
    }
    if (swapModel && swapVersion.load() < 2) {
        std::cerr << "--swap-model requested but no swap landed "
                     "(version "
                  << swapVersion.load() << ")\n";
        return 1;
    }

    // The same server over the wire: the socket front-end speaks the
    // length-prefixed binary protocol on an ephemeral port; one client
    // connection round-trips requests for both models and a Prometheus
    // scrape, each answer checked against the same oracle.
    std::int64_t wired = 0;
    std::size_t scrapeBytes = 0;
    std::uint16_t wirePort = 0;
    {
        net::NetServer netServer(server, net::NetServerConfig{});
        netServer.start();
        wirePort = netServer.port();
        net::NetClient client;
        bool netOk = client.connect("127.0.0.1", wirePort,
                                    /*recvTimeoutMs=*/10000);
        for (std::int64_t i = 0; netOk && i < 8; ++i) {
            const std::string &model =
                models[static_cast<std::size_t>(i) % models.size()];
            std::vector<float> input(static_cast<std::size_t>(features));
            for (std::int64_t c = 0; c < features; ++c)
                input[static_cast<std::size_t>(c)] = ds.testX.at(i, c);
            auto resp = client.request(model, input, /*deadlineUs=*/0,
                                       static_cast<std::uint64_t>(i));
            netOk = resp.has_value() &&
                    static_cast<ServeStatus>(resp->status) ==
                        ServeStatus::Ok &&
                    resp->tag == static_cast<std::uint64_t>(i);
            if (!netOk)
                break;
            Batch x(Shape{1, features});
            for (std::int64_t c = 0; c < features; ++c)
                x.at(0, c) = ds.testX.at(i, c);
            Batch y = registry->find(model)->forward(
                x, InferencePolicy{bbs::engine::Calibration::PerBatch,
                                   bbs::engine::PlanKind::PerDot});
            for (std::int64_t c = 0; c < y.shape().dim(1); ++c)
                if (resp->logits[static_cast<std::size_t>(c)] !=
                    y.at(0, c))
                    netOk = false;
            ++wired;
        }
        if (netOk) {
            auto scrape = client.stats();
            netOk = scrape.has_value() && !scrape->empty();
            if (netOk)
                scrapeBytes = scrape->size();
        }
        netServer.stop();
        if (!netOk) {
            std::cerr << "network front-end round-trip failed\n";
            return 1;
        }
    }

    // --generate: the token-streaming path end to end. A synthetic
    // transformer joins the classifiers behind a fresh socket front-end
    // (attachGeneration must precede start()); a prompt goes out as one
    // Generate frame and comes back as a StreamChunk per token, each
    // checked byte-identical to generateReference — the wire adds
    // framing, not tokens.
    std::size_t streamedTokens = 0;
    if (generate) {
        llm::TransformerConfig tcfg;
        tcfg.dModel = 64;
        tcfg.nHeads = 2;
        tcfg.dFf = 128;
        tcfg.nLayers = 2;
        tcfg.vocab = 96;
        tcfg.maxSeq = 96;
        tcfg.seed = 11;
        llm::TransformerModel lm(tcfg);
        serve::GenerationConfig gcfg;
        gcfg.workers = 1;
        serve::GenerationScheduler sched(lm, gcfg);

        net::NetServer netServer(server, net::NetServerConfig{});
        netServer.attachGeneration("llm", &sched);
        netServer.start();
        net::NetClient client;
        bool genOk = client.connect("127.0.0.1", netServer.port(),
                                    /*recvTimeoutMs=*/30000);
        std::vector<std::int32_t> prompt = {5, 40, 2, 17, 33, 8, 21};
        constexpr std::uint32_t kNew = 12;
        std::vector<std::int32_t> reference =
            lm.generateReference(prompt, kNew);
        if (genOk) {
            auto streamed =
                client.generateCollect("llm", prompt, kNew, /*tag=*/42);
            genOk = streamed.has_value() && *streamed == reference;
            if (genOk)
                streamedTokens = streamed->size();
        }
        netServer.stop();
        sched.stop();
        if (!genOk) {
            std::cerr << "streamed generation deviated from the "
                         "unbatched reference\n";
            return 1;
        }
    }

    StatsSnapshot s = server.stats();
    server.stop();

    std::cout << "\nserved " << total.ok << "/" << n << " requests ("
              << total.expired << " expired), accuracy "
              << format("%.2f",
                        100.0 * static_cast<double>(total.hits) /
                            static_cast<double>(total.ok))
              << "%, every response bit-identical to the "
                 "single-request oracle\n";
    if (swapModel)
        std::cout << "hot-swap: clf-bbs4 swapped to mapped version "
                  << swapVersion.load()
                  << " mid-traffic, zero failed or deviating requests\n";
    if (generate)
        std::cout << "token streaming: " << streamedTokens
                  << " tokens streamed over the wire, byte-identical to "
                     "the unbatched reference\n";
    std::cout << "network front-end on 127.0.0.1:" << wirePort
              << ": " << wired
              << " requests answered bit-identically over the wire, "
              << scrapeBytes << "-byte Prometheus scrape via the stats "
              << "frame\n\n";

    Table stats({"metric", "value"});
    stats.addRow({"completed", format("%llu", static_cast<unsigned long long>(
                                                  s.completed))});
    stats.addRow({"batches", format("%llu", static_cast<unsigned long long>(
                                                s.batches))});
    stats.addRow({"mean batch rows", format("%.2f", s.meanBatchRows)});
    stats.addRow({"p50 latency", format("%.2f ms", s.p50Us / 1e3)});
    stats.addRow({"p99 latency", format("%.2f ms", s.p99Us / 1e3)});
    stats.addRow({"mean queue wait", format("%.2f ms",
                                            s.meanQueueUs / 1e3)});
    stats.addRow({"throughput", format("%.0f req/s", s.throughputRps)});
    stats.print(std::cout);

    std::cout << "\nbatch-size histogram (rows: batches)\n";
    for (std::size_t b = 1; b < s.batchHist.size(); ++b)
        if (s.batchHist[b] > 0)
            std::cout << "  " << b << ": " << s.batchHist[b] << "\n";

    if (metricsDump)
        std::cout << "\n" << server.metricsText();
    if (traceDump)
        server.dumpTrace(std::cout);
    return 0;
}
