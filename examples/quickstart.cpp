/**
 * @file
 * Quickstart: the BBS engine API in one file.
 *
 * 1. Quantize a synthetic weight tensor to per-channel INT8.
 * 2. Measure its bi-directional bit sparsity.
 * 3. Open an engine Session, pack the layer at a BBS operating point
 *    (4 columns pruned, zero-point shifting), inspect the footprint, and
 *    verify the compressed-domain dot product is exact.
 * 4. Create a MatmulPlan for the packed weights and execute a whole
 *    activation batch, verified against the naive integer GEMM — then
 *    round-trip the operand through bytes and show the reloaded plan is
 *    bit-identical.
 */
#include <iostream>

#include "core/bbs.hpp"
#include "common/random.hpp"
#include "engine/engine.hpp"
#include "gemm/gemm.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"

int
main()
{
    using namespace bbs;

    engine::Session session; // the engine facade's root object
    std::cout << engine::runtimeSummary() << "\n";

    // 1. A synthetic layer: 64 output channels x 288 weights each.
    Rng rng(2024);
    WeightDistribution dist;
    FloatTensor fp32 = generateWeights(Shape{64, 288}, dist, rng);
    QuantizedTensor q = quantizePerChannel(fp32, 8);
    std::cout << "Layer " << q.values.shape().toString() << ", "
              << q.values.numel() << " INT8 weights\n";

    // 2. Inherent sparsity (paper Fig 3).
    std::cout << "  value sparsity:            "
              << valueSparsity(q.values) << "\n"
              << "  zero-bit sparsity (2's c): "
              << bitSparsityTwosComplement(q.values) << "\n"
              << "  BBS (vector size 8):       "
              << bbsSparsity(q.values, 8) << "  (always >= 0.5)\n";

    // 3. Pack at a BBS operating point: the Session chooses the
    // compressed row-plane representation and reports the footprint.
    // (Compress once; the pack(CompressedTensor) overload wraps an
    // existing compression, and pack(tensor, PackOptions) would do both
    // steps in one call.)
    CompressedTensor ct = CompressedTensor::compress(
        q.values, /*groupSize=*/32, /*targetColumns=*/4,
        PruneStrategy::ZeroPointShifting);
    engine::PackedOperand weights = session.pack(ct);
    std::cout << "Packed as " << packKindName(weights.kind()) << ": "
              << weights.meanStoredBits()
              << " stored bits/weight (8.0 before)\n";

    // The compressed form executes directly: stored columns bit-serially,
    // pruned columns via the BBS-constant x sum-of-activations term.
    std::vector<std::int8_t> activations(32);
    for (auto &a : activations)
        a = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    const CompressedGroup &g = ct.group(0);
    BbsDotResult compressed = session.dotCompressed(g, activations);
    std::int64_t reference =
        session.dot(g.decompress(), activations,
                    engine::DotMethod::Reference)
            .value;
    std::cout << "Compressed-domain dot product: " << compressed.value
              << " (reference " << reference << ", "
              << (compressed.value == reference ? "exact" : "MISMATCH")
              << "), effectual bit-ops: " << compressed.effectualOps
              << "\n";

    // 4. Batched inference through a plan: created once from the packed
    // weights, it picks the execution kind per batch — per-dot at one
    // row, the batched compressed-domain GEMM here.
    Int8Tensor batch(Shape{16, 288});
    for (std::int64_t i = 0; i < batch.numel(); ++i)
        batch.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    engine::MatmulPlan plan =
        session.plan(weights, engine::ShapeHints{16});
    std::cout << "Plan kind at batch 16: "
              << planKindName(plan.kindForBatch(16)) << " (batch 1: "
              << planKindName(plan.kindForBatch(1)) << ")\n";
    Int32Tensor product = plan.run(batch);
    Int32Tensor naive = gemmReferenceBatch(batch, weights.unpack());
    std::int64_t mismatches = 0;
    for (std::int64_t i = 0; i < product.numel(); ++i)
        mismatches += (product.flat(i) != naive.flat(i));
    std::cout << "Batched compressed-domain GEMM: "
              << batch.shape().dim(0) << " samples x "
              << q.values.shape().dim(0) << " channels, "
              << (mismatches == 0 ? "exact" : "MISMATCH")
              << " vs the naive integer GEMM\n";
    if (mismatches != 0)
        return 1; // let the CI smoke step gate the exactness claim

    // Serialize -> reload -> run: the operand's byte image (the DRAM
    // layout the accelerator streams) reproduces the plan bit-exactly.
    std::vector<std::uint8_t> bytes = weights.serialize();
    engine::PackedOperand reloaded =
        engine::PackedOperand::deserialize(bytes);
    Int32Tensor replay = session.plan(reloaded).run(batch);
    std::int64_t drift = 0;
    for (std::int64_t i = 0; i < product.numel(); ++i)
        drift += (replay.flat(i) != product.flat(i));
    std::cout << "Operand round-trip: " << bytes.size() << " B image, "
              << (drift == 0 ? "bit-identical replay" : "MISMATCH")
              << "\n";
    if (drift != 0)
        return 1;

    // Reconstruction error of the whole tensor.
    Int8Tensor rec = weights.unpack();
    double sse = 0.0;
    for (std::int64_t i = 0; i < rec.numel(); ++i) {
        double d = static_cast<double>(rec.flat(i)) - q.values.flat(i);
        sse += d * d;
    }
    std::cout << "Per-weight RMS error on the INT8 grid: "
              << std::sqrt(sse / static_cast<double>(rec.numel()))
              << " codes\n";
    return 0;
}
