/**
 * @file
 * Quickstart: the BBS public API in one file.
 *
 * 1. Quantize a synthetic weight tensor to per-channel INT8.
 * 2. Measure its bi-directional bit sparsity.
 * 3. Binary-prune it with the BBS encoding (4 columns, zero-point
 *    shifting), inspect the footprint, and verify the compressed-domain
 *    dot product is exact.
 * 4. Execute the whole compressed layer against an activation batch
 *    through the bit-serial GEMM engine and verify it against the naive
 *    integer GEMM.
 */
#include <iostream>

#include "core/bbs.hpp"
#include "core/bbs_dot.hpp"
#include "core/compressed_tensor.hpp"
#include "common/random.hpp"
#include "gemm/compressed_gemm.hpp"
#include "gemm/gemm.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"

int
main()
{
    using namespace bbs;

    // 1. A synthetic layer: 64 output channels x 288 weights each.
    Rng rng(2024);
    WeightDistribution dist;
    FloatTensor fp32 = generateWeights(Shape{64, 288}, dist, rng);
    QuantizedTensor q = quantizePerChannel(fp32, 8);
    std::cout << "Layer " << q.values.shape().toString() << ", "
              << q.values.numel() << " INT8 weights\n";

    // 2. Inherent sparsity (paper Fig 3).
    std::cout << "  value sparsity:            "
              << valueSparsity(q.values) << "\n"
              << "  zero-bit sparsity (2's c): "
              << bitSparsityTwosComplement(q.values) << "\n"
              << "  BBS (vector size 8):       "
              << bbsSparsity(q.values, 8) << "  (always >= 0.5)\n";

    // 3. Binary pruning with the BBS encoding.
    CompressedTensor ct = CompressedTensor::compress(
        q.values, /*groupSize=*/32, /*targetColumns=*/4,
        PruneStrategy::ZeroPointShifting);
    std::cout << "Compressed to " << ct.effectiveBitsPerWeight()
              << " bits/weight (8.0 before), "
              << ct.storageBits() / 8 / 1024 << " KiB total\n";

    // The compressed form executes directly: stored columns bit-serially,
    // pruned columns via the BBS-constant x sum-of-activations term.
    std::vector<std::int8_t> activations(32);
    for (auto &a : activations)
        a = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    const CompressedGroup &g = ct.group(0);
    BbsDotResult compressed = dotCompressed(g, activations);
    std::int64_t reference = dotReference(g.decompress(), activations);
    std::cout << "Compressed-domain dot product: " << compressed.value
              << " (reference " << reference << ", "
              << (compressed.value == reference ? "exact" : "MISMATCH")
              << "), effectual bit-ops: " << compressed.effectualOps
              << "\n";

    // 4. Batched inference: the compressed rows execute against a whole
    // activation batch at once. Weights are prepacked once
    // (CompressedRowPlanes), the batch is packed once (BitSerialMatrix),
    // and gemmCompressed runs surviving columns as AND+popcount products
    // and pruned columns through the constant x sum-of-activations term.
    Int8Tensor batch(Shape{16, 288});
    for (std::int64_t i = 0; i < batch.numel(); ++i)
        batch.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    CompressedRowPlanes rows = CompressedRowPlanes::prepare(ct);
    Int32Tensor product =
        gemmCompressed(rows, BitSerialMatrix::pack(batch));
    Int32Tensor naive = gemmReferenceBatch(batch, ct.decompress());
    std::int64_t mismatches = 0;
    for (std::int64_t i = 0; i < product.numel(); ++i)
        mismatches += (product.flat(i) != naive.flat(i));
    std::cout << "Batched compressed-domain GEMM: "
              << batch.shape().dim(0) << " samples x "
              << q.values.shape().dim(0) << " channels, "
              << (mismatches == 0 ? "exact" : "MISMATCH")
              << " vs the naive integer GEMM\n";
    if (mismatches != 0)
        return 1; // let the CI smoke step gate the exactness claim

    // Reconstruction error of the whole tensor.
    Int8Tensor rec = ct.decompress();
    double sse = 0.0;
    for (std::int64_t i = 0; i < rec.numel(); ++i) {
        double d = static_cast<double>(rec.flat(i)) - q.values.flat(i);
        sse += d * d;
    }
    std::cout << "Per-weight RMS error on the INT8 grid: "
              << std::sqrt(sse / static_cast<double>(rec.numel()))
              << " codes\n";
    return 0;
}
