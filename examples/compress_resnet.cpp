/**
 * @file
 * Compress a full (synthetic) ResNet-50 with hardware-aware global binary
 * pruning (paper Algorithm 2) at both operating points and report the
 * per-layer footprint, sensitive-channel counts and distribution
 * distortion — the workflow a deployment pipeline would run before
 * shipping weights to BitVert.
 */
#include <iostream>

#include "common/table.hpp"
#include "engine/engine.hpp"
#include "core/global_pruning.hpp"
#include "metrics/kl_divergence.hpp"
#include "models/model_zoo.hpp"
#include "models/workload.hpp"

int
main()
{
    using namespace bbs;

    std::cout << engine::runtimeSummary() << "\n\n";

    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 1'000'000; // sample huge layers (whole
                                         // channels, statistics unbiased)
    MaterializedModel resnet = materializeModel(buildResNet50(), opts);
    std::vector<PrunableLayer> layers = resnet.toPrunableLayers();

    for (bool moderate : {false, true}) {
        GlobalPruneConfig cfg =
            moderate ? moderateConfig() : conservativeConfig();
        PrunedModel pruned = globalBinaryPrune(layers, cfg);

        std::cout << "\n=== " << (moderate ? "Moderate" : "Conservative")
                  << " pruning: beta=" << cfg.beta << ", "
                  << cfg.targetColumns << " columns, "
                  << pruneStrategyName(cfg.strategy) << " ===\n";

        Table t({"Layer", "Channels", "Sensitive", "Eff. bits", "KL"});
        for (std::size_t i = 0; i < pruned.layers.size(); ++i) {
            const PrunedLayer &pl = pruned.layers[i];
            t.addRow({pl.name,
                      std::to_string(pl.codes.shape().dim(0)),
                      std::to_string(pl.numSensitive()),
                      format("%.2f", pl.effectiveBits()),
                      format("%.2e",
                             klDivergence(layers[i].codes, pl.codes))});
        }
        t.print(std::cout);
        std::cout << "Model: " << format("%.2f", pruned.effectiveBits())
                  << " bits/weight, "
                  << format("%.2fx", pruned.compressionRatio())
                  << " compression (paper: 1.29x cons / 1.66x mod)\n";
    }
    return 0;
}
