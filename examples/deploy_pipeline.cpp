/**
 * @file
 * End-to-end deployment pipeline, the full path weights travel in a real
 * BitVert deployment:
 *
 *   train -> per-channel INT8 PTQ -> BBS binary pruning -> bit-packed
 *   serialization (the DRAM image) -> deserialization -> batched integer
 *   inference through the bit-serial GEMM engine -> accuracy check.
 *
 * Everything downstream of training operates on the serialized bytes, so
 * this example also demonstrates that the wire format is self-sufficient.
 * Inference runs in serving-sized mini-batches: activations are packed
 * once per batch and every compressed weight row executes against the
 * whole batch (gemm/compressed_gemm), which is how a deployment would
 * amortize packing under load.
 */
#include <iostream>

#include "common/table.hpp"
#include "core/serialization.hpp"
#include "nn/dataset.hpp"
#include "nn/evaluate.hpp"
#include "nn/int8_infer.hpp"
#include "quant/quantizer.hpp"

int
main()
{
    using namespace bbs;

    // 1. Train a classifier.
    Dataset ds = makeClusterDataset(160, 5, 20, 271828);
    Rng rng(12);
    Network net;
    net.add(std::make_unique<Dense>(ds.features, 64, rng));
    net.add(std::make_unique<GeluLayer>());
    net.add(std::make_unique<Dense>(64, 32, rng));
    net.add(std::make_unique<GeluLayer>());
    net.add(std::make_unique<Dense>(32, ds.numClasses, rng));
    TrainOptions opts;
    opts.epochs = 18;
    trainNetwork(net, ds.trainX, ds.trainY, opts);
    double fp32Acc = accuracyPercent(net, ds.testX, ds.testY);
    std::cout << "FP32 accuracy: " << format("%.2f", fp32Acc) << "%\n\n";

    // 2. Quantize + compress + serialize each dense layer; count bytes.
    std::int64_t rawBytes = 0, packedBytes = 0;
    for (FloatTensor *w : net.weightTensors()) {
        QuantizedTensor q = quantizePerChannel(*w, 8);
        CompressedTensor ct = CompressedTensor::compress(
            q.values, 32, 4, PruneStrategy::ZeroPointShifting);
        SerializedTensor blob = serializeCompressed(ct);

        // 3. Deserialize and verify the DRAM image is self-sufficient.
        CompressedTensor back = deserializeCompressed(
            blob, q.values.shape(), 32, 4,
            PruneStrategy::ZeroPointShifting);
        Int8Tensor a = ct.decompress();
        Int8Tensor b = back.decompress();
        for (std::int64_t i = 0; i < a.numel(); ++i) {
            if (a.flat(i) != b.flat(i)) {
                std::cerr << "serialization mismatch!\n";
                return 1;
            }
        }
        rawBytes += q.values.numel();
        packedBytes += static_cast<std::int64_t>(blob.bytes.size());
    }
    std::cout << "Weight image: " << rawBytes << " B (INT8) -> "
              << packedBytes << " B (BBS packed, "
              << format("%.2fx", static_cast<double>(rawBytes) /
                                     static_cast<double>(packedBytes))
              << " smaller)\n";

    // 4. Batched integer inference through the GEMM engine, evaluated
    // in serving-sized mini-batches of 64.
    Table t({"Engine", "Eff. bits", "Accuracy %"});
    for (int target : {0, 2, 4}) {
        Int8Network engine = Int8Network::fromNetwork(
            net, 32, target,
            target == 2 ? PruneStrategy::RoundedAveraging
                        : PruneStrategy::ZeroPointShifting);
        double acc = accuracyPercent(engine, ds.testX, ds.testY,
                                     /*batchSize=*/64);
        std::string label =
            target == 0 ? "INT8 (no pruning)"
                        : format("BBS %d columns", target);
        t.addRow({label, format("%.2f", engine.effectiveBits()),
                  format("%.2f", acc)});
    }
    t.print(std::cout);
    std::cout << "\nAll inference above ran integer-only through "
                 "gemmCompressed() — the exact arithmetic the BitVert "
                 "PE performs, batched across each mini-batch (and "
                 "bit-identical to the per-sample dotCompressed loop).\n";
    return 0;
}
