/**
 * @file
 * End-to-end deployment pipeline, the full path weights travel in a real
 * BitVert deployment:
 *
 *   train -> per-channel INT8 PTQ -> engine Session::pack at a BBS
 *   operating point -> PackedOperand::serialize (the DRAM image) ->
 *   deserialize -> plan.run bit-identity check -> batched integer
 *   inference -> accuracy check -> the serving runtime hosting every
 *   operating point behind one queue.
 *
 * Everything downstream of training operates on the serialized bytes, so
 * this example also demonstrates that the wire format is self-sufficient:
 * the reloaded operand's plan replays the original bit-exactly. Offline
 * evaluation runs in serving-sized mini-batches; the final stage serves
 * live single-sample traffic through src/serve — request coalescing into
 * the same per-layer plans, with per-row calibration so batching never
 * changes a logit.
 */
#include <iostream>
#include <thread>

#include "common/table.hpp"
#include "engine/engine.hpp"
#include "nn/dataset.hpp"
#include "nn/evaluate.hpp"
#include "nn/int8_infer.hpp"
#include "quant/quantizer.hpp"
#include "serve/server.hpp"

int
main()
{
    using namespace bbs;

    engine::Session session;
    std::cout << engine::runtimeSummary() << "\n\n";

    // 1. Train a classifier.
    Dataset ds = makeClusterDataset(160, 5, 20, 271828);
    Rng rng(12);
    Network net;
    net.add(std::make_unique<Dense>(ds.features, 64, rng));
    net.add(std::make_unique<GeluLayer>());
    net.add(std::make_unique<Dense>(64, 32, rng));
    net.add(std::make_unique<GeluLayer>());
    net.add(std::make_unique<Dense>(32, ds.numClasses, rng));
    TrainOptions opts;
    opts.epochs = 18;
    trainNetwork(net, ds.trainX, ds.trainY, opts);
    double fp32Acc = accuracyPercent(net, ds.testX, ds.testY);
    std::cout << "FP32 accuracy: " << format("%.2f", fp32Acc) << "%\n\n";

    // 2. Quantize + pack + serialize each dense layer; count bytes.
    // Whole-tensor packing needs the group size to divide the channel
    // width (groups must not span output channels); pick the largest
    // divisor <= 32 per layer.
    auto groupSizeFor = [](std::int64_t cols) {
        for (std::int64_t g = std::min<std::int64_t>(32, cols); g > 1; --g)
            if (cols % g == 0)
                return g;
        return std::int64_t{1};
    };
    std::int64_t rawBytes = 0, packedBytes = 0;
    for (FloatTensor *w : net.weightTensors()) {
        QuantizedTensor q = quantizePerChannel(*w, 8);
        engine::PackOptions packOpts;
        packOpts.groupSize = groupSizeFor(q.values.shape().dim(1));
        packOpts.targetColumns = 4;
        packOpts.strategy = PruneStrategy::ZeroPointShifting;
        engine::PackedOperand packed = session.pack(q.values, packOpts);
        std::vector<std::uint8_t> blob = packed.serialize();

        // 3. Deserialize and verify the DRAM image is self-sufficient:
        // the reloaded operand reconstructs the same weights and its
        // plan replays the original bit-exactly.
        engine::PackedOperand back =
            engine::PackedOperand::deserialize(blob);
        Int8Tensor a = packed.unpack();
        Int8Tensor b = back.unpack();
        for (std::int64_t i = 0; i < a.numel(); ++i) {
            if (a.flat(i) != b.flat(i)) {
                std::cerr << "serialization mismatch!\n";
                return 1;
            }
        }
        Int8Tensor probe(Shape{4, a.shape().dim(1)});
        Rng prng(a.numel());
        for (std::int64_t i = 0; i < probe.numel(); ++i)
            probe.flat(i) =
                static_cast<std::int8_t>(prng.uniformInt(-128, 127));
        Int32Tensor y0 = session.plan(packed).run(probe);
        Int32Tensor y1 = session.plan(back).run(probe);
        for (std::int64_t i = 0; i < y0.numel(); ++i) {
            if (y0.flat(i) != y1.flat(i)) {
                std::cerr << "reloaded plan deviated!\n";
                return 1;
            }
        }
        rawBytes += q.values.numel();
        packedBytes += static_cast<std::int64_t>(blob.size());
    }
    std::cout << "Weight image: " << rawBytes << " B (INT8) -> "
              << packedBytes << " B (BBS packed, "
              << format("%.2fx", static_cast<double>(rawBytes) /
                                     static_cast<double>(packedBytes))
              << " smaller)\n";

    // 4. Batched integer inference through the GEMM engine, evaluated
    // in serving-sized mini-batches of 64; every operating point goes
    // into the serving registry for step 5.
    auto registry = std::make_shared<ModelRegistry>();
    Table t({"Engine", "Eff. bits", "Accuracy %"});
    for (int target : {0, 2, 4}) {
        Int8Network engine = Int8Network::fromNetwork(
            net, 32, target,
            target == 2 ? PruneStrategy::RoundedAveraging
                        : PruneStrategy::ZeroPointShifting);
        double acc = accuracyPercent(engine, ds.testX, ds.testY,
                                     /*batchSize=*/64);
        std::string label =
            target == 0 ? "INT8 (no pruning)"
                        : format("BBS %d columns", target);
        t.addRow({label, format("%.2f", engine.effectiveBits()),
                  format("%.2f", acc)});
        registry->add(target == 0 ? "int8" : format("bbs%d", target),
                      std::move(engine));
    }
    t.print(std::cout);
    std::cout << "\nAll inference above ran integer-only through each "
                 "layer's engine::MatmulPlan — the exact arithmetic the "
                 "BitVert PE performs, batched across each mini-batch "
                 "(and bit-identical to the per-dot plan kind).\n";

    // 5. Live serving: one InferenceServer hosts all three engines; a
    // few clients submit the test set as single-sample requests, which
    // the batcher coalesces back into GEMM batches.
    ServerConfig cfg;
    cfg.maxBatch = 32;
    cfg.maxDelayUs = 500;
    cfg.workers = 1;
    InferenceServer server(registry, cfg);

    const std::int64_t n = ds.testX.shape().dim(0);
    const std::int64_t features = ds.testX.shape().dim(1);
    std::vector<std::string> models = registry->names();
    std::vector<std::int64_t> hits(models.size(), 0);
    std::vector<std::int64_t> served(models.size(), 0);
    std::mutex tallyMutex;
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            for (std::int64_t i = c; i < n; i += 4) {
                std::vector<float> input(
                    static_cast<std::size_t>(features));
                for (std::int64_t f = 0; f < features; ++f)
                    input[static_cast<std::size_t>(f)] =
                        ds.testX.at(i, f);
                for (std::size_t m = 0; m < models.size(); ++m) {
                    InferenceResponse resp =
                        server.submit(models[m], input).get();
                    if (resp.status != ServeStatus::Ok)
                        continue;
                    std::lock_guard<std::mutex> lock(tallyMutex);
                    ++served[m];
                    hits[m] +=
                        resp.predicted ==
                        ds.testY[static_cast<std::size_t>(i)];
                }
            }
        });
    }
    for (auto &c : clients)
        c.join();
    StatsSnapshot s = server.stats();
    server.stop();

    std::cout << "\nServing the test set as concurrent single-sample "
                 "requests (4 clients, maxBatch=32, maxDelayUs=500):\n";
    Table st({"Model", "Served", "Accuracy %"});
    for (std::size_t m = 0; m < models.size(); ++m)
        st.addRow({models[m],
                   format("%lld", static_cast<long long>(served[m])),
                   format("%.2f", 100.0 * static_cast<double>(hits[m]) /
                                      static_cast<double>(served[m]))});
    st.print(std::cout);
    std::cout << "batches " << s.batches << ", mean batch "
              << format("%.1f", s.meanBatchRows) << " rows, p50 "
              << format("%.2f", s.p50Us / 1e3) << " ms, p99 "
              << format("%.2f", s.p99Us / 1e3) << " ms, "
              << format("%.0f", s.throughputRps) << " req/s\n";
    if (s.completed != static_cast<std::uint64_t>(3 * n)) {
        std::cerr << "serving lost requests: " << s.completed << " != "
                  << 3 * n << "\n";
        return 1;
    }
    return 0;
}
