/**
 * @file
 * Simulate ViT-Base inference on the full accelerator lineup and print
 * speedup, energy and stall breakdown — the paper's Fig 12/13/15 analysis
 * for a single model, as a user of the simulator API would run it.
 */
#include <iostream>

#include "accel/factory.hpp"
#include "common/table.hpp"
#include "engine/engine.hpp"
#include "models/model_zoo.hpp"
#include "models/workload.hpp"
#include "sim/prepared_model.hpp"

int
main()
{
    using namespace bbs;

    std::cout << engine::runtimeSummary() << "\n\n";

    MaterializeOptions opts;
    opts.maxWeightsPerLayer = 1'000'000;
    MaterializedModel vit = materializeModel(buildViTBase(), opts);

    GlobalPruneConfig cons = conservativeConfig();
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel plain = prepareModel(vit);
    PreparedModel withCons = prepareModel(vit, &cons);
    PreparedModel withMod = prepareModel(vit, &mod);

    SimConfig cfg;
    Table t({"Accelerator", "Cycles (M)", "Speedup vs Stripes",
             "Energy (uJ)", "Off-chip %", "PE util %"});

    double stripesCycles = 0.0;
    std::vector<ModelSim> results;
    for (auto &acc : evaluationLineup()) {
        const PreparedModel *pm = &plain;
        if (acc->name() == "BitVert (cons)")
            pm = &withCons;
        else if (acc->name() == "BitVert (mod)")
            pm = &withMod;
        ModelSim ms = acc->simulateModel(*pm, cfg);
        if (acc->name() == "Stripes")
            stripesCycles = ms.totalCycles();
        results.push_back(std::move(ms));
    }

    for (const ModelSim &ms : results) {
        double laneTotal = ms.usefulLaneCycles() +
                           ms.intraPeStallLaneCycles() +
                           ms.interPeStallLaneCycles();
        t.addRow({ms.acceleratorName,
                  format("%.1f", ms.totalCycles() / 1e6),
                  format("%.2fx", stripesCycles / ms.totalCycles()),
                  format("%.1f", ms.totalEnergyPj() / 1e6),
                  format("%.1f",
                         100.0 * ms.offChipEnergyPj() /
                             ms.totalEnergyPj()),
                  format("%.1f",
                         100.0 * ms.usefulLaneCycles() / laneTotal)});
    }
    t.print(std::cout);

    std::cout << "\nNote: transformers show no activation sparsity, so "
                 "SparTen gains little; BitVert's BBS needs none and "
                 "still skips >= 50% of bit work.\n";
    return 0;
}
