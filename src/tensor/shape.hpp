/**
 * @file
 * Tensor shape: a small value type holding up to 4 dimensions with
 * row-major stride computation.
 */
#ifndef BBS_TENSOR_SHAPE_HPP
#define BBS_TENSOR_SHAPE_HPP

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace bbs {

/**
 * Row-major tensor shape of rank 1..4.
 *
 * Convolution weights use [K, C, R, S] (output channels, input channels,
 * kernel height, kernel width); linear weights use [K, C]. The first
 * dimension is always the output-channel dimension the paper's per-channel
 * machinery (quantization scales, global pruning, channel reordering)
 * operates on.
 */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<std::int64_t> dims);

    int rank() const { return rank_; }
    std::int64_t dim(int i) const;
    std::int64_t operator[](int i) const { return dim(i); }

    /** Total element count. */
    std::int64_t numel() const;

    /** Elements per output channel (numel / dim(0)). */
    std::int64_t channelSize() const;

    /** Row-major linear index of up to 4 coordinates. */
    std::int64_t index(std::int64_t i0, std::int64_t i1 = 0,
                       std::int64_t i2 = 0, std::int64_t i3 = 0) const;

    bool operator==(const Shape &other) const;

    std::string toString() const;

  private:
    std::array<std::int64_t, 4> dims_{1, 1, 1, 1};
    int rank_ = 0;
};

} // namespace bbs

#endif // BBS_TENSOR_SHAPE_HPP
