/**
 * @file
 * Synthetic weight and activation generators.
 *
 * The paper's pre-trained FP32 models are substituted by tensors drawn from
 * the distribution family DNN weights are known (and assumed by the paper,
 * §II-B) to follow: per-channel Gaussian/Laplace with small means, a spread
 * of per-channel scales, and a minority of outlier channels with much larger
 * magnitude (§III-C). Every bit-level statistic the paper measures is a
 * function of these distributions.
 */
#ifndef BBS_TENSOR_DISTRIBUTION_HPP
#define BBS_TENSOR_DISTRIBUTION_HPP

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/** Family of the per-channel weight distribution. */
enum class WeightFamily
{
    Gaussian,  ///< typical convolutional / linear layers
    Laplace,   ///< heavier-tailed attention projections
};

/** Parameters of a synthetic weight tensor. */
struct WeightDistribution
{
    WeightFamily family = WeightFamily::Gaussian;
    /** Base standard deviation of a channel before per-channel scaling. */
    double baseStddev = 0.02;
    /** Log-normal sigma of the per-channel scale spread. */
    double channelScaleSigma = 0.35;
    /** Fraction of channels that are outlier (sensitive) channels. */
    double outlierChannelFraction = 0.05;
    /** Magnitude multiplier of outlier channels. */
    double outlierScale = 4.0;
    /** Fraction of exactly-zero weights (value sparsity; tiny post-PTQ). */
    double valueSparsity = 0.01;
    /**
     * Log-normal sigma of the *within-channel block* magnitude spread
     * (blocks of blockSize contiguous weights). Real DNN filters have
     * strong local magnitude structure — whole kernel regions are small —
     * which is what gives sign-magnitude formats their inherent zero bit
     * columns (paper §II-B); i.i.d. weights would underestimate it.
     */
    double blockScaleSigma = 0.6;
    std::int64_t blockSize = 32;
};

/**
 * Generate an FP32 weight tensor with per-channel statistics.
 *
 * @param shape  weight shape; dim 0 is the output-channel dimension
 * @param dist   distribution parameters
 * @param rng    seeded random source
 */
FloatTensor generateWeights(const Shape &shape,
                            const WeightDistribution &dist, Rng &rng);

/** Parameters of a synthetic activation tensor. */
struct ActivationDistribution
{
    /** True for post-ReLU activations (half-normal, ~50 % zeros). */
    bool relu = false;
    double stddev = 1.0;
};

/**
 * Generate an FP32 activation tensor.
 *
 * ReLU activations are half-normal with the configured zero fraction
 * (CNN-style); non-ReLU (GELU/softmax transformer-style) activations are
 * dense Gaussians, matching the paper's observation that transformers show
 * "limited or no activation sparsity".
 */
FloatTensor generateActivations(const Shape &shape,
                                const ActivationDistribution &dist,
                                Rng &rng);

/** Fraction of exactly-zero elements. */
double valueSparsity(const Int8Tensor &t);
double valueSparsity(const FloatTensor &t);

} // namespace bbs

#endif // BBS_TENSOR_DISTRIBUTION_HPP
