#include "tensor/distribution.hpp"

#include <cmath>

#include "common/parallel.hpp"

namespace bbs {

FloatTensor
generateWeights(const Shape &shape, const WeightDistribution &dist, Rng &rng)
{
    FloatTensor t(shape);
    std::int64_t channels = shape.dim(0);
    std::int64_t cs = shape.channelSize();

    // Derive per-channel parameters sequentially (deterministic), then fill
    // channels in parallel with independent forked streams.
    struct ChannelParams
    {
        double scale;
        Rng rng{0};
    };
    std::vector<ChannelParams> params(static_cast<std::size_t>(channels));
    for (std::int64_t k = 0; k < channels; ++k) {
        // Log-normal per-channel scale spread; a minority of channels are
        // outlier channels with much larger magnitude (paper §III-C).
        double scale =
            dist.baseStddev *
            std::exp(rng.gaussian(0.0, dist.channelScaleSigma));
        if (rng.bernoulli(dist.outlierChannelFraction))
            scale *= dist.outlierScale;
        params[static_cast<std::size_t>(k)] = {scale, rng.fork()};
    }

    parallelFor(channels, [&](std::int64_t k) {
        auto &[scale, crng] = params[static_cast<std::size_t>(k)];
        auto ch = t.channel(k);
        double blockScale = 1.0;
        for (std::int64_t i = 0; i < cs; ++i) {
            if (dist.blockSize > 0 && i % dist.blockSize == 0 &&
                dist.blockScaleSigma > 0.0) {
                blockScale = std::exp(
                    crng.gaussian(0.0, dist.blockScaleSigma));
            }
            if (dist.valueSparsity > 0.0 &&
                crng.bernoulli(dist.valueSparsity)) {
                ch[static_cast<std::size_t>(i)] = 0.0f;
                continue;
            }
            double s = scale * blockScale;
            double v = dist.family == WeightFamily::Gaussian
                           ? crng.gaussian(0.0, s)
                           : crng.laplace(0.0, s / std::sqrt(2.0));
            ch[static_cast<std::size_t>(i)] = static_cast<float>(v);
        }
    }, /*chunk=*/1);
    return t;
}

FloatTensor
generateActivations(const Shape &shape, const ActivationDistribution &dist,
                    Rng &rng)
{
    FloatTensor t(shape);
    auto data = t.data();
    for (auto &x : data) {
        double v = rng.gaussian(0.0, dist.stddev);
        if (dist.relu)
            v = v > 0.0 ? v : 0.0;
        x = static_cast<float>(v);
    }
    return t;
}

double
valueSparsity(const Int8Tensor &t)
{
    if (t.numel() == 0)
        return 0.0;
    std::int64_t zeros = 0;
    for (std::int8_t v : t.data())
        zeros += (v == 0);
    return static_cast<double>(zeros) / static_cast<double>(t.numel());
}

double
valueSparsity(const FloatTensor &t)
{
    if (t.numel() == 0)
        return 0.0;
    std::int64_t zeros = 0;
    for (float v : t.data())
        zeros += (v == 0.0f);
    return static_cast<double>(zeros) / static_cast<double>(t.numel());
}

} // namespace bbs
