/**
 * @file
 * A minimal row-major dense tensor. Header-only template; the project only
 * instantiates Tensor<float>, Tensor<std::int8_t> and Tensor<std::int32_t>.
 */
#ifndef BBS_TENSOR_TENSOR_HPP
#define BBS_TENSOR_TENSOR_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.hpp"
#include "tensor/shape.hpp"

namespace bbs {

/**
 * Dense row-major tensor owning its storage.
 *
 * The API is intentionally small: indexed access, flat access, per-channel
 * spans (the unit the paper's per-channel quantization and pruning work on),
 * and group spans (the unit BBS compression works on).
 */
template <typename T>
class Tensor
{
  public:
    Tensor() = default;

    explicit Tensor(Shape shape)
        : shape_(shape),
          data_(static_cast<std::size_t>(shape.numel()), T{})
    {}

    Tensor(Shape shape, std::vector<T> data)
        : shape_(shape), data_(std::move(data))
    {
        BBS_REQUIRE(static_cast<std::int64_t>(data_.size()) ==
                        shape_.numel(),
                    "data size ", data_.size(), " != shape numel ",
                    shape_.numel());
    }

    const Shape &shape() const { return shape_; }
    std::int64_t numel() const { return shape_.numel(); }

    /**
     * Take on @p shape in place, reusing the existing storage. Capacity
     * is grow-only (shrinking keeps the high-water allocation), so a
     * serving loop cycling through batch sizes allocates only until it
     * has seen its largest batch. Newly grown elements are
     * value-initialized; surviving elements keep their old values — the
     * kernels writing through this overwrite every element.
     */
    void
    resizeTo(Shape shape)
    {
        shape_ = shape;
        data_.resize(static_cast<std::size_t>(shape_.numel()));
    }

    T &at(std::int64_t i0, std::int64_t i1 = 0, std::int64_t i2 = 0,
          std::int64_t i3 = 0)
    {
        return data_[static_cast<std::size_t>(
            shape_.index(i0, i1, i2, i3))];
    }

    const T &at(std::int64_t i0, std::int64_t i1 = 0, std::int64_t i2 = 0,
                std::int64_t i3 = 0) const
    {
        return data_[static_cast<std::size_t>(
            shape_.index(i0, i1, i2, i3))];
    }

    T &flat(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
    const T &flat(std::int64_t i) const
    {
        return data_[static_cast<std::size_t>(i)];
    }

    std::span<T> data() { return data_; }
    std::span<const T> data() const { return data_; }

    /** Mutable view of output channel @p k (row-major slice). */
    std::span<T>
    channel(std::int64_t k)
    {
        std::int64_t cs = shape_.channelSize();
        return std::span<T>(data_.data() + k * cs,
                            static_cast<std::size_t>(cs));
    }

    std::span<const T>
    channel(std::int64_t k) const
    {
        std::int64_t cs = shape_.channelSize();
        return std::span<const T>(data_.data() + k * cs,
                                  static_cast<std::size_t>(cs));
    }

    /**
     * View of the @p g-th contiguous group of @p groupSize elements.
     * The final group may be shorter when numel is not a multiple.
     */
    std::span<const T>
    group(std::int64_t g, std::int64_t groupSize) const
    {
        std::int64_t begin = g * groupSize;
        std::int64_t end = std::min(begin + groupSize, numel());
        BBS_ASSERT(begin < numel());
        return std::span<const T>(data_.data() + begin,
                                  static_cast<std::size_t>(end - begin));
    }

    /** Number of groups of @p groupSize covering the tensor. */
    std::int64_t
    numGroups(std::int64_t groupSize) const
    {
        return (numel() + groupSize - 1) / groupSize;
    }

  private:
    Shape shape_;
    std::vector<T> data_;
};

using FloatTensor = Tensor<float>;
using Int8Tensor = Tensor<std::int8_t>;
using Int32Tensor = Tensor<std::int32_t>;

} // namespace bbs

#endif // BBS_TENSOR_TENSOR_HPP
