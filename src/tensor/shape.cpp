#include "tensor/shape.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace bbs {

Shape::Shape(std::initializer_list<std::int64_t> dims)
{
    BBS_REQUIRE(dims.size() >= 1 && dims.size() <= 4,
                "shape rank must be 1..4, got ", dims.size());
    rank_ = static_cast<int>(dims.size());
    int i = 0;
    for (std::int64_t d : dims) {
        BBS_REQUIRE(d > 0, "shape dimensions must be positive, got ", d);
        dims_[i++] = d;
    }
}

std::int64_t
Shape::dim(int i) const
{
    BBS_ASSERT(i >= 0 && i < rank_);
    return dims_[i];
}

std::int64_t
Shape::numel() const
{
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i)
        n *= dims_[i];
    return rank_ == 0 ? 0 : n;
}

std::int64_t
Shape::channelSize() const
{
    BBS_ASSERT(rank_ >= 1);
    return numel() / dims_[0];
}

std::int64_t
Shape::index(std::int64_t i0, std::int64_t i1, std::int64_t i2,
             std::int64_t i3) const
{
    // Unused trailing coordinates must be zero.
    std::int64_t idx = i0;
    if (rank_ > 1)
        idx = idx * dims_[1] + i1;
    if (rank_ > 2)
        idx = idx * dims_[2] + i2;
    if (rank_ > 3)
        idx = idx * dims_[3] + i3;
    return idx;
}

bool
Shape::operator==(const Shape &other) const
{
    if (rank_ != other.rank_)
        return false;
    for (int i = 0; i < rank_; ++i)
        if (dims_[i] != other.dims_[i])
            return false;
    return true;
}

std::string
Shape::toString() const
{
    std::ostringstream oss;
    oss << '[';
    for (int i = 0; i < rank_; ++i) {
        if (i)
            oss << ", ";
        oss << dims_[i];
    }
    oss << ']';
    return oss.str();
}

} // namespace bbs
