/**
 * @file
 * Processing-element area/power compositions for BitVert and every baseline
 * accelerator (Tables IV, V and VI of the paper).
 *
 * Each PE is built from the gate library in gates.hpp following the
 * datapath structure its paper describes; all bit-serial PEs contain 8
 * bit-serial multiplier lanes at 800 MHz, matching the paper's comparison
 * setup (§V-F).
 */
#ifndef BBS_HW_PE_MODEL_HPP
#define BBS_HW_PE_MODEL_HPP

#include <string>

#include "hw/gates.hpp"

namespace bbs {

/** Synthesized-PE summary mirroring the paper's Table V columns. */
struct PeCost
{
    std::string name;
    double multiplierArea = 0.0; ///< um^2, multiplier/datapath portion
    double othersArea = 0.0;     ///< um^2, muxes/shifters/control portion
    double powerMw = 0.0;

    double totalArea() const { return multiplierArea + othersArea; }
};

/** Dense bit-serial PE (Stripes): AND array + adder tree + accumulator. */
PeCost stripesPe();

/**
 * Pragmatic PE: essential-bit serial; adds per-lane variable shifters and
 * offset registers to synchronize bit significance.
 */
PeCost pragmaticPe();

/**
 * Bitlet PE: significance-parallel; each lane absorbs an essential bit from
 * an arbitrary weight through a wide activation crossbar mux.
 */
PeCost bitletPe();

/**
 * BitWave PE: bit-column serial over sign-magnitude weights; adds two's
 * complementers for partial-sum sign handling.
 */
PeCost bitwavePe();

/**
 * BitVert PE (Fig 7): term-select muxes sized by the sub-group, per
 * sub-group subtractor for Eq. 3, single shifter, BBS-constant multiplier
 * and accumulation.
 *
 * @param subGroup   sub-group size (16, 8 or 4; Table IV)
 * @param optimized  apply the paper's circuit optimizations: compact
 *                   (N/2+1):1 muxes and a time-multiplexed 3-bit BBS
 *                   multiplier
 */
PeCost bitvertPe(int subGroup = 8, bool optimized = true);

/** OliVe PE: one 4-bit x 8-bit bit-parallel MAC with outlier decoder. */
PeCost olivePe();

/**
 * SparTen PE: two 8-bit multipliers plus the sparse-pair front end
 * (prefix sums over bitmasks). Used for energy accounting only.
 */
PeCost spartenPe();

/** ANT PE: two 6-bit x 6-bit multipliers plus datatype decoders. */
PeCost antPe();

} // namespace bbs

#endif // BBS_HW_PE_MODEL_HPP
