#include "hw/pe_model.hpp"

#include "common/logging.hpp"

namespace bbs {

namespace {

/** Shared accumulation stage: 24-bit accumulate adder + output register. */
HwCost
accumulationStage()
{
    return adder(24) + reg(24);
}

/** Input operand registers shared by all bit-serial PEs. */
HwCost
operandRegisters()
{
    // Staged activations (8 x 8b, double-buffered at half rate) plus the
    // current weight bit column.
    return reg(32) + reg(8);
}

PeCost
makeCost(std::string name, const HwCost &mult, const HwCost &others)
{
    PeCost pe;
    pe.name = std::move(name);
    pe.multiplierArea = mult.areaUm2();
    pe.othersArea = others.areaUm2();
    pe.powerMw = (mult + others).powerMw();
    return pe;
}

} // namespace

PeCost
stripesPe()
{
    // 8 lanes of (8-bit activation x 1 weight bit) + 8-leaf adder tree.
    HwCost mult = andArray(8) * 8.0 + adderTree(8, 8);
    HwCost others = accumulationStage() + operandRegisters() +
                    variableShifter(20, 8); // serial significance shift
    return makeCost("Stripes", mult, others);
}

PeCost
pragmaticPe()
{
    // Essential-bit serial: every lane shifts its product by the bit's
    // significance before the (wider) adder tree.
    HwCost mult = andArray(8) * 8.0 + adderTree(8, 12);
    HwCost others = accumulationStage() + operandRegisters() +
                    variableShifter(12, 8) * 8.0 + // per-lane synchronizers
                    reg(4) * 8.0 +                 // per-lane offsets
                    priorityEncoder(8) * 8.0;      // essential-bit select
    return makeCost("Pragmatic", mult, others);
}

PeCost
bitletPe()
{
    // Significance-parallel: each of the 8 lanes absorbs an essential bit
    // from an arbitrary weight of the digested window through a wide
    // activation mux (the dominant cost Bitlet's own breakdown reports as
    // ~36% of PE area).
    HwCost mult = andArray(8) * 8.0 + adderTree(8, 10);
    // The crossbar reach is calibrated to Bitlet's published breakdown
    // (muxes ~36% of PE area): a banked version of its 64:1 selector.
    // The crossbar is large but its data path is operand-gated: only the
    // selected input toggles through, so switching is well below the
    // structural activity.
    HwCost others = accumulationStage() + operandRegisters() +
                    (mux(32, 8) * 8.0).derated(0.3) + // act crossbar
                    priorityEncoder(16) * 8.0 +       // per-lane arbiters
                    popcounter(16) +                  // sparsity distiller
                    reg(16) * 2.0;                    // window staging
    return makeCost("Bitlet", mult, others);
}

PeCost
bitwavePe()
{
    // Bit-column serial over sign-magnitude: Stripes-like datapath plus a
    // two's complementer per bit-serial multiplier for partial-sum sign
    // handling ("every bit-serial multiplier requires a 2's complementer",
    // §II-B) — the 1.32x area overhead of Table V.
    HwCost mult = andArray(8) * 8.0 + adderTree(8, 8);
    HwCost others = accumulationStage() + operandRegisters() +
                    variableShifter(20, 8) +
                    twosComplementer(10) * 8.0 + // per-lane sign handling
                    reg(8);                      // column index / sign regs
    return makeCost("BitWave", mult, others);
}

PeCost
bitvertPe(int subGroup, bool optimized)
{
    BBS_REQUIRE(subGroup == 4 || subGroup == 8 || subGroup == 16,
                "sub-group must be 4, 8 or 16");
    int numSubGroups = 16 / subGroup;
    int lanesPerSub = 8 / numSubGroups; // 8 bit-serial lanes total

    // Term-select muxes: BBS guarantees at most subGroup/2 effectual bits
    // per sub-group, so the optimized design needs only
    // (subGroup/2 + 1):1 muxes (Fig 7(b)); the baseline uses full
    // subGroup:1 muxes (Fig 7(a)).
    int muxInputs = optimized ? subGroup / 2 + 1 : subGroup;
    // Term-select muxes toggle only when the scheduler changes selections;
    // operand gating keeps their switching low. The optimized staggered
    // muxes share all but one input with their neighbour, so their select
    // trees fold (~40% logic sharing for the narrow 5:1/3:1 windows; wide
    // 9:1 windows are wiring-dominated and fold far less).
    HwCost muxes = (mux(muxInputs, 8) * 8.0).derated(0.5);
    if (optimized)
        muxes = muxes * (subGroup >= 16 ? 0.85 : 0.6);

    // Bit-serial multiplier: per-sub-group adder tree, subtractor for the
    // Eq. 3 inversion path, and the psum select.
    HwCost mult{};
    for (int s = 0; s < numSubGroups; ++s) {
        mult += adderTree(lanesPerSub, 8);
        mult += subtractor(11);
        mult += mux(2, 11);
    }
    if (numSubGroups > 1)
        mult += adderTree(numSubGroups, 11); // combine sub-group psums

    // BBS-constant multiplier (Fig 7 step 4): 6x12 full multiplier in the
    // baseline; time-multiplexed 3x12 plus an alignment shifter when
    // optimized (§IV-A). It fires once per weight group (not per cycle),
    // so its switching is heavily gated.
    HwCost bbsMult =
        optimized
            // Time-multiplexed 3 bits/cycle: booth-style add-shift over
            // two stages plus the alignment shifter.
            ? adder(12) * 2.0 + variableShifter(15, 8)
            : multiplier(6, 12) + reg(18);
    bbsMult = bbsMult.derated(0.3);

    HwCost others = muxes + bbsMult + accumulationStage() +
                    operandRegisters() +
                    variableShifter(16, 8); // single shift (step 3)
    return makeCost(optimized ? "BitVert" : "BitVert-unopt", mult, others);
}

PeCost
olivePe()
{
    // Bit-parallel 4-bit weight x 8-bit activation MAC; the outlier-victim
    // datatype needs a wider product path and an outlier decoder.
    HwCost mult = multiplier(6, 8); // extended range to absorb outliers
    HwCost others = accumulationStage() + reg(16) +
                    mux(4, 8) +       // outlier decode select
                    priorityEncoder(4);
    return makeCost("Olive", mult, others);
}

PeCost
spartenPe()
{
    // Two 8x8 multipliers consuming matched sparse pairs; the front end
    // computes prefix sums over 128-wide weight/activation bitmask chunks
    // to pair non-zeros, with local operand buffers per PE — SparTen's
    // dominant cost and the source of its poor energy efficiency on
    // near-dense 8-bit models (paper Fig 13).
    HwCost mult = multiplier(8, 8) * 2.0;
    // The prefix-sum front end scans full bitmask chunks every cycle
    // regardless of sparsity, so it runs at high activity on near-dense
    // 8-bit models.
    HwCost frontEnd = (popcounter(64) * 2.0 + priorityEncoder(64) * 2.0)
                          .derated(2.0);
    HwCost others = accumulationStage() + reg(128) + // local buffers
                    frontEnd +
                    mux(16, 8) * 2.0; // operand gather
    return makeCost("SparTen", mult, others);
}

PeCost
antPe()
{
    // Two 6-bit adaptive-datatype multipliers with per-operand decoders.
    HwCost mult = multiplier(6, 6) * 2.0;
    HwCost others = accumulationStage() + reg(24) +
                    mux(4, 8) * 2.0 +          // datatype decode
                    variableShifter(12, 4) * 2.0; // po2/flint alignment
    return makeCost("ANT", mult, others);
}

} // namespace bbs
