#include "hw/gates.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace bbs {

namespace {

/** ceil(log2(n)) for n >= 1. */
int
clog2(int n)
{
    int b = 0;
    while ((1 << b) < n)
        ++b;
    return b;
}

/** Typical switching activity factors by component class. */
constexpr double kActArith = 0.45;  ///< adders/subtractors/multipliers
constexpr double kActMux = 0.25;    ///< multiplexers (selects mostly stable)
constexpr double kActReg = 0.35;    ///< registers incl. clock load
constexpr double kActCtrl = 0.30;   ///< encoders and control logic

} // namespace

HwCost
adder(int bits)
{
    BBS_ASSERT(bits >= 1);
    // Full adder ~= 6.5 GE/bit plus lookahead overhead ~0.8 GE/bit.
    double ge = bits * 7.3;
    return {ge, ge * kActArith};
}

HwCost
subtractor(int bits)
{
    // Adder + per-bit XOR inversion (~1.2 GE/bit).
    double ge = bits * (7.3 + 1.2);
    return {ge, ge * kActArith};
}

HwCost
mux(int inputs, int bits)
{
    BBS_ASSERT(inputs >= 1);
    if (inputs <= 1)
        return {};
    // (inputs - 1) 2:1 muxes per bit; ~1.1 GE per transmission-gate 2:1.
    double ge = static_cast<double>(inputs - 1) * 1.1 * bits;
    return {ge, ge * kActMux};
}

HwCost
reg(int bits)
{
    double ge = bits * 4.5;
    return {ge, ge * kActReg};
}

HwCost
variableShifter(int bits, int positions)
{
    if (positions <= 1)
        return {};
    // log2(positions) levels of 2:1 muxes across the (widening) word.
    int levels = clog2(positions);
    double ge = static_cast<double>(levels) * 1.1 *
                (bits + positions / 2.0);
    return {ge, ge * kActMux};
}

HwCost
priorityEncoder(int width)
{
    // Find-first-one with mask feedback: ~2.6 GE per input.
    double ge = width * 2.6;
    return {ge, ge * kActCtrl};
}

HwCost
twosComplementer(int bits)
{
    // Inverters + increment (half-adder chain).
    double ge = bits * (1.0 + 4.4);
    return {ge, ge * kActArith};
}

HwCost
andArray(int n)
{
    // AND2 ~= 1.2 GE.
    double ge = n * 1.2;
    return {ge, ge * kActArith};
}

HwCost
multiplier(int aBits, int bBits)
{
    // Array multiplier: aBits x bBits partial-product AND matrix plus a
    // carry-save reduction of ~(aBits * bBits) full adders equivalent.
    double ge = static_cast<double>(aBits) * bBits * (1.2 + 5.2);
    return {ge, ge * kActArith};
}

HwCost
popcounter(int width)
{
    // Tree of small adders, ~3.4 GE per input bit.
    double ge = width * 3.4;
    return {ge, ge * kActCtrl};
}

HwCost
adderTree(int leaves, int bits)
{
    BBS_ASSERT(leaves >= 1);
    HwCost total{};
    int level = 0;
    int nodes = leaves / 2;
    while (nodes >= 1) {
        total += adder(bits + level) * static_cast<double>(nodes);
        if (nodes == 1)
            break;
        nodes /= 2;
        ++level;
    }
    return total;
}

} // namespace bbs
