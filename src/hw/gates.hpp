/**
 * @file
 * Analytical 28 nm gate-cost library.
 *
 * Substitutes the paper's Synopsys DC synthesis (§V-A "Implementation"):
 * every datapath component is expressed in NAND2 gate equivalents (GE) with
 * a switching-activity weight, and converted to um^2 / mW with constants
 * representative of a 28 nm standard-cell library at 800 MHz. The PE
 * comparisons of Tables IV-VI depend only on the *component composition*
 * of each design, which this model captures structurally.
 */
#ifndef BBS_HW_GATES_HPP
#define BBS_HW_GATES_HPP

namespace bbs {

/** Area/power conversion constants (28 nm, 800 MHz). */
inline constexpr double kAreaPerGe = 0.49;    ///< um^2 per NAND2 equivalent
inline constexpr double kPowerPerGe = 0.80e-3; ///< mW per switching GE

/**
 * Cost of a hardware component: raw gate equivalents for area, and
 * activity-weighted gate equivalents for dynamic power.
 */
struct HwCost
{
    double ge = 0.0;          ///< NAND2 equivalents (area)
    double switchingGe = 0.0; ///< activity-weighted GE (power)

    HwCost operator+(const HwCost &o) const
    {
        return {ge + o.ge, switchingGe + o.switchingGe};
    }
    HwCost &operator+=(const HwCost &o)
    {
        ge += o.ge;
        switchingGe += o.switchingGe;
        return *this;
    }
    HwCost operator*(double n) const { return {ge * n, switchingGe * n}; }

    /** Same area, reduced toggle rate (operand/clock gating). */
    HwCost
    derated(double activityScale) const
    {
        return {ge, switchingGe * activityScale};
    }

    double areaUm2() const { return ge * kAreaPerGe; }
    double powerMw() const { return switchingGe * kPowerPerGe; }
};

/** Ripple-free (carry-lookahead) adder of @p bits bits. */
HwCost adder(int bits);

/** Subtractor: adder plus operand inversion. */
HwCost subtractor(int bits);

/** N:1 multiplexer of @p bits-bit words (tree of 2:1 muxes). */
HwCost mux(int inputs, int bits);

/** D flip-flop register of @p bits bits. */
HwCost reg(int bits);

/**
 * Barrel shifter: @p bits-bit word shifted by up to @p positions
 * (log2(positions) mux levels).
 */
HwCost variableShifter(int bits, int positions);

/** Priority encoder over @p width inputs (with mask feedback). */
HwCost priorityEncoder(int width);

/** Two's complementer (inverter + increment). */
HwCost twosComplementer(int bits);

/** Array of @p n AND gates (bit-serial multiply). */
HwCost andArray(int n);

/** Array-style multiplier of aBits x bBits. */
HwCost multiplier(int aBits, int bBits);

/** Population counter over @p width bits. */
HwCost popcounter(int width);

/**
 * Balanced adder tree summing @p leaves words of @p bits bits
 * (widths grow one bit per level).
 */
HwCost adderTree(int leaves, int bits);

} // namespace bbs

#endif // BBS_HW_GATES_HPP
