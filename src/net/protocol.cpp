#include "net/protocol.hpp"

#include <cstring>

namespace bbs::net {

static_assert(sizeof(float) == 4, "wire floats are 4-byte IEEE f32");

namespace {

// LE scalar append/read helpers. memcpy-based: safe on any alignment,
// and compiles to plain moves on LE hosts.

template <typename T>
void
put(std::vector<std::uint8_t> &out, T v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    out.insert(out.end(), raw, raw + sizeof(T));
}

/** Bounds-checked read: false if fewer than sizeof(T) bytes remain. */
template <typename T>
bool
get(std::span<const std::uint8_t> body, std::size_t &pos, T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos > body.size() || body.size() - pos < sizeof(T))
        return false;
    std::memcpy(&v, body.data() + pos, sizeof(T));
    pos += sizeof(T);
    return true;
}

bool
validType(std::uint8_t t)
{
    switch (static_cast<FrameType>(t)) {
    case FrameType::Request:
    case FrameType::Response:
    case FrameType::Stats:
    case FrameType::StatsText:
    case FrameType::Generate:
    case FrameType::StreamChunk: return true;
    }
    return false;
}

} // namespace

bool
decodeHeader(std::span<const std::uint8_t> raw, FrameHeader &out)
{
    if (raw.size() < kHeaderBytes)
        return false;
    std::size_t pos = 0;
    std::uint8_t version = 0, type = 0;
    std::uint16_t reserved = 0;
    get(raw, pos, out.magic);
    get(raw, pos, version);
    get(raw, pos, type);
    get(raw, pos, reserved);
    get(raw, pos, out.bodyLen);
    if (out.magic != kMagic || version != kVersion || reserved != 0 ||
        !validType(type) || out.bodyLen > kMaxBody)
        return false;
    out.version = version;
    out.type = static_cast<FrameType>(type);
    return true;
}

void
encodeHeader(const FrameHeader &h, std::vector<std::uint8_t> &out)
{
    put(out, h.magic);
    put(out, h.version);
    put(out, static_cast<std::uint8_t>(h.type));
    put(out, std::uint16_t{0});
    put(out, h.bodyLen);
}

bool
decodeRequest(std::span<const std::uint8_t> body, RequestFrame &out)
{
    std::size_t pos = 0;
    std::uint16_t modelLen = 0;
    std::uint32_t floatCount = 0;
    if (!get(body, pos, out.tag) || !get(body, pos, out.deadlineUs) ||
        !get(body, pos, modelLen))
        return false;
    if (modelLen > kMaxModelName || body.size() - pos < modelLen)
        return false;
    out.model.assign(reinterpret_cast<const char *>(body.data() + pos),
                     modelLen);
    pos += modelLen;
    if (!get(body, pos, floatCount))
        return false;
    // The count must match the bytes actually present — a frame claiming
    // more floats than its body holds is hostile, and trailing junk
    // after the floats is a framing bug on the sender's side.
    if (body.size() - pos != std::size_t{floatCount} * sizeof(float))
        return false;
    out.input.resize(floatCount);
    if (floatCount > 0)
        std::memcpy(out.input.data(), body.data() + pos,
                    out.input.size() * sizeof(float));
    return true;
}

bool
decodeResponse(std::span<const std::uint8_t> body, ResponseFrame &out)
{
    std::size_t pos = 0;
    std::uint32_t floatCount = 0;
    if (!get(body, pos, out.tag) || !get(body, pos, out.status) ||
        !get(body, pos, out.predicted) || !get(body, pos, floatCount))
        return false;
    if (body.size() - pos != std::size_t{floatCount} * sizeof(float))
        return false;
    out.logits.resize(floatCount);
    if (floatCount > 0)
        std::memcpy(out.logits.data(), body.data() + pos,
                    out.logits.size() * sizeof(float));
    return true;
}

void
encodeRequest(const RequestFrame &r, std::vector<std::uint8_t> &out)
{
    FrameHeader h;
    h.type = FrameType::Request;
    h.bodyLen = static_cast<std::uint32_t>(
        sizeof(std::uint64_t) + sizeof(std::int64_t) +
        sizeof(std::uint16_t) + r.model.size() + sizeof(std::uint32_t) +
        r.input.size() * sizeof(float));
    out.reserve(out.size() + kHeaderBytes + h.bodyLen);
    encodeHeader(h, out);
    put(out, r.tag);
    put(out, r.deadlineUs);
    put(out, static_cast<std::uint16_t>(r.model.size()));
    out.insert(out.end(), r.model.begin(), r.model.end());
    put(out, static_cast<std::uint32_t>(r.input.size()));
    const auto *raw =
        reinterpret_cast<const std::uint8_t *>(r.input.data());
    out.insert(out.end(), raw, raw + r.input.size() * sizeof(float));
}

void
encodeResponse(std::uint64_t tag, std::uint8_t status,
               std::int32_t predicted, std::span<const float> logits,
               std::vector<std::uint8_t> &out)
{
    FrameHeader h;
    h.type = FrameType::Response;
    h.bodyLen = static_cast<std::uint32_t>(
        sizeof(std::uint64_t) + 1 + sizeof(std::int32_t) +
        sizeof(std::uint32_t) + logits.size() * sizeof(float));
    out.reserve(out.size() + kHeaderBytes + h.bodyLen);
    encodeHeader(h, out);
    put(out, tag);
    put(out, status);
    put(out, predicted);
    put(out, static_cast<std::uint32_t>(logits.size()));
    const auto *raw =
        reinterpret_cast<const std::uint8_t *>(logits.data());
    out.insert(out.end(), raw, raw + logits.size() * sizeof(float));
}

bool
decodeGenerate(std::span<const std::uint8_t> body, GenerateFrame &out)
{
    std::size_t pos = 0;
    std::uint16_t modelLen = 0;
    std::uint32_t tokenCount = 0;
    if (!get(body, pos, out.tag) || !get(body, pos, modelLen))
        return false;
    if (modelLen > kMaxModelName || body.size() - pos < modelLen)
        return false;
    out.model.assign(reinterpret_cast<const char *>(body.data() + pos),
                     modelLen);
    pos += modelLen;
    if (!get(body, pos, out.maxNewTokens) || !get(body, pos, tokenCount))
        return false;
    // Same hostile-length rule as Request: the count must account for
    // every remaining body byte exactly.
    if (body.size() - pos !=
        std::size_t{tokenCount} * sizeof(std::int32_t))
        return false;
    out.prompt.resize(tokenCount);
    if (tokenCount > 0)
        std::memcpy(out.prompt.data(), body.data() + pos,
                    out.prompt.size() * sizeof(std::int32_t));
    return true;
}

bool
decodeStreamChunk(std::span<const std::uint8_t> body, StreamChunkFrame &out)
{
    std::size_t pos = 0;
    std::uint8_t last = 0;
    if (!get(body, pos, out.tag) || !get(body, pos, out.status) ||
        !get(body, pos, last) || !get(body, pos, out.index) ||
        !get(body, pos, out.token))
        return false;
    out.last = last != 0;
    return pos == body.size();
}

void
encodeGenerate(const GenerateFrame &g, std::vector<std::uint8_t> &out)
{
    FrameHeader h;
    h.type = FrameType::Generate;
    h.bodyLen = static_cast<std::uint32_t>(
        sizeof(std::uint64_t) + sizeof(std::uint16_t) + g.model.size() +
        sizeof(std::uint32_t) + sizeof(std::uint32_t) +
        g.prompt.size() * sizeof(std::int32_t));
    out.reserve(out.size() + kHeaderBytes + h.bodyLen);
    encodeHeader(h, out);
    put(out, g.tag);
    put(out, static_cast<std::uint16_t>(g.model.size()));
    out.insert(out.end(), g.model.begin(), g.model.end());
    put(out, g.maxNewTokens);
    put(out, static_cast<std::uint32_t>(g.prompt.size()));
    const auto *raw =
        reinterpret_cast<const std::uint8_t *>(g.prompt.data());
    out.insert(out.end(), raw,
               raw + g.prompt.size() * sizeof(std::int32_t));
}

void
encodeStreamChunk(const StreamChunkFrame &s, std::vector<std::uint8_t> &out)
{
    FrameHeader h;
    h.type = FrameType::StreamChunk;
    h.bodyLen = static_cast<std::uint32_t>(
        sizeof(std::uint64_t) + 1 + 1 + sizeof(std::uint32_t) +
        sizeof(std::int32_t));
    out.reserve(out.size() + kHeaderBytes + h.bodyLen);
    encodeHeader(h, out);
    put(out, s.tag);
    put(out, s.status);
    put(out, static_cast<std::uint8_t>(s.last ? 1 : 0));
    put(out, s.index);
    put(out, s.token);
}

void
encodeStatsRequest(std::vector<std::uint8_t> &out)
{
    FrameHeader h;
    h.type = FrameType::Stats;
    h.bodyLen = 0;
    encodeHeader(h, out);
}

void
encodeStatsText(std::string_view text, std::vector<std::uint8_t> &out)
{
    FrameHeader h;
    h.type = FrameType::StatsText;
    h.bodyLen = static_cast<std::uint32_t>(text.size());
    out.reserve(out.size() + kHeaderBytes + text.size());
    encodeHeader(h, out);
    out.insert(out.end(),
               reinterpret_cast<const std::uint8_t *>(text.data()),
               reinterpret_cast<const std::uint8_t *>(text.data()) +
                   text.size());
}

} // namespace bbs::net
