/**
 * @file
 * Minimal blocking client for the socket front-end: one TCP connection,
 * synchronous request/response in protocol.hpp frames. This is the
 * counterpart the tests, the micro_serve_net bench and serve_demo use —
 * a production client would look the same, there just isn't one in this
 * repo's scope.
 *
 * The class is intentionally low-level enough to misbehave on purpose:
 * sendRaw() writes arbitrary bytes (the frame fuzzer's hammer), and
 * closing mid-frame is just close() after a partial sendRaw. One
 * NetClient is one connection and is not thread-safe; concurrency is N
 * clients.
 */
#ifndef BBS_NET_NET_CLIENT_HPP
#define BBS_NET_NET_CLIENT_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace bbs::net {

class NetClient
{
  public:
    NetClient() = default;
    ~NetClient(); ///< closes

    NetClient(const NetClient &) = delete;
    NetClient &operator=(const NetClient &) = delete;
    NetClient(NetClient &&other) noexcept;
    NetClient &operator=(NetClient &&other) noexcept;

    /** Connect (blocking). @p recvTimeoutMs > 0 arms SO_RCVTIMEO so a
     *  test against a wedged server fails instead of hanging. */
    bool connect(const std::string &host, std::uint16_t port,
                 int recvTimeoutMs = 0);
    void close();
    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Send one Request frame (blocking until fully written). */
    bool sendRequest(const RequestFrame &r);
    /** Read one Response frame (blocking). False on EOF, timeout, or a
     *  malformed/unexpected frame. */
    bool recvResponse(ResponseFrame &out);

    /** sendRequest + recvResponse. nullopt on any transport failure. */
    std::optional<ResponseFrame> request(const std::string &model,
                                         std::vector<float> input,
                                         std::int64_t deadlineUs = 0,
                                         std::uint64_t tag = 0);

    /** Send one Generate frame (blocking until fully written). */
    bool sendGenerate(const GenerateFrame &g);
    /** Read one StreamChunk frame (blocking). */
    bool recvStreamChunk(StreamChunkFrame &out);

    /**
     * Streaming generation: send a Generate, invoke @p onChunk for each
     * StreamChunk until the last one. False on transport failure
     * (callback already saw whatever arrived); true once a chunk with
     * last set was delivered — inspect its status for the outcome.
     */
    bool generate(const std::string &model,
                  std::span<const std::int32_t> prompt,
                  std::uint32_t maxNewTokens,
                  const std::function<void(const StreamChunkFrame &)>
                      &onChunk,
                  std::uint64_t tag = 0);

    /** generate() collecting the Ok tokens; nullopt on transport
     *  failure or a non-Ok terminal status. */
    std::optional<std::vector<std::int32_t>>
    generateCollect(const std::string &model,
                    std::span<const std::int32_t> prompt,
                    std::uint32_t maxNewTokens, std::uint64_t tag = 0);

    /** Fetch the Prometheus text exposition via a Stats frame. */
    std::optional<std::string> stats();

    /** Write arbitrary bytes (fuzzer / malformed-frame tests). */
    bool sendRaw(const void *data, std::size_t size);

  private:
    /** Read exactly @p size bytes; false on EOF/error/timeout. */
    bool recvExact(void *dst, std::size_t size);
    /** Read one frame of @p expect type into @p body. */
    bool recvFrame(FrameType expect, std::vector<std::uint8_t> &body);

    int fd_ = -1;
    std::vector<std::uint8_t> sendBuf_; ///< reused frame scratch
};

} // namespace bbs::net

#endif // BBS_NET_NET_CLIENT_HPP
