/**
 * @file
 * Wire format of the socket serving front-end: a length-prefixed binary
 * protocol, little-endian throughout (x86/ARM-LE native; this is an
 * engine-local protocol, not an internet standard).
 *
 * Every frame is a fixed 12-byte header followed by `bodyLen` body
 * bytes:
 *
 *   offset  size  field
 *   ------  ----  ------------------------------------------
 *        0     4  magic  0x4E534242 ("BBSN" as LE bytes)
 *        4     1  version (kVersion = 1)
 *        5     1  frame type (FrameType)
 *        6     2  reserved, must be 0
 *        8     4  bodyLen (bytes after the header; <= kMaxBody)
 *
 * Request body (FrameType::Request):
 *   u64 tag            client-chosen id, echoed in the response (lets a
 *                      client pipeline requests on one connection)
 *   i64 deadlineUs     relative deadline; <= 0 = none
 *   u16 modelLen       model-name bytes that follow (<= kMaxModelName)
 *   ..  model          raw bytes, NOT NUL-terminated
 *   u32 floatCount     input features that follow
 *   ..  floats         f32 LE payload
 *
 * Response body (FrameType::Response):
 *   u64 tag            echoed from the request
 *   u8  status         ServeStatus as u8
 *   i32 predicted      argmax (-1 when absent)
 *   u32 floatCount     logits that follow (0 unless status == Ok)
 *   ..  floats         f32 LE
 *
 * Stats body (FrameType::Stats): empty. The reply is
 * FrameType::StatsText whose body is the raw Prometheus text exposition
 * (the PR 7 scrape surface, served over the same listener).
 *
 * Generate body (FrameType::Generate):
 *   u64 tag            client-chosen id, echoed in every chunk
 *   u16 modelLen       model-name bytes that follow (<= kMaxModelName)
 *   ..  model          raw bytes, NOT NUL-terminated
 *   u32 maxNewTokens   continuation budget (0 = server default)
 *   u32 tokenCount     prompt tokens that follow
 *   ..  tokens         i32 LE token ids
 *
 * StreamChunk body (FrameType::StreamChunk) — the server answers one
 * Generate with a SEQUENCE of these on the same connection, one per
 * generated token, interleaved with whatever other frames the
 * connection's pipelined requests produce (the tag demultiplexes):
 *   u64 tag            echoed from the Generate
 *   u8  status         ServeStatus as u8 (non-Ok only on the last chunk)
 *   u8  last           1 = final chunk for this tag
 *   u32 index          0-based position in the continuation
 *   i32 token          generated token id (valid when status == Ok)
 *
 * Decoders treat every length field as hostile: a header that fails
 * magic/version/reserved/bodyLen validation is a protocol error (the
 * server closes the connection), and body decoders bound every
 * count-prefixed read against the actual body size — a frame claiming
 * more floats than its body holds is rejected, never over-read. The
 * frame fuzzer in tests/test_net.cpp drives exactly these paths.
 */
#ifndef BBS_NET_PROTOCOL_HPP
#define BBS_NET_PROTOCOL_HPP

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bbs::net {

constexpr std::uint32_t kMagic = 0x4E534242u; // "BBSN" little-endian
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 12;
/** Upper bound on bodyLen: large enough for any realistic input row or
 *  metrics page, small enough that a hostile length prefix cannot make
 *  the server allocate gigabytes. */
constexpr std::size_t kMaxBody = 16u << 20;
constexpr std::size_t kMaxModelName = 256;

enum class FrameType : std::uint8_t
{
    Request = 1,   ///< client -> server: one inference sample
    Response = 2,  ///< server -> client: the answer for one Request
    Stats = 3,     ///< client -> server: scrape request (empty body)
    StatsText = 4, ///< server -> client: Prometheus text exposition
    Generate = 5,  ///< client -> server: one token-generation request
    StreamChunk = 6, ///< server -> client: one streamed token
};

struct FrameHeader
{
    std::uint32_t magic = kMagic;
    std::uint8_t version = kVersion;
    FrameType type = FrameType::Request;
    std::uint32_t bodyLen = 0;
};

struct RequestFrame
{
    std::uint64_t tag = 0;
    std::int64_t deadlineUs = 0;
    std::string model;
    std::vector<float> input;
};

struct ResponseFrame
{
    std::uint64_t tag = 0;
    std::uint8_t status = 0; ///< ServeStatus as u8
    std::int32_t predicted = -1;
    std::vector<float> logits;
};

struct GenerateFrame
{
    std::uint64_t tag = 0;
    std::string model;
    std::uint32_t maxNewTokens = 0; ///< 0 = server default
    std::vector<std::int32_t> prompt;
};

struct StreamChunkFrame
{
    std::uint64_t tag = 0;
    std::uint8_t status = 0; ///< ServeStatus as u8
    bool last = false;
    std::uint32_t index = 0;
    std::int32_t token = 0;
};

/** Parse + validate a 12-byte header. @p raw must hold kHeaderBytes.
 *  False = protocol error (bad magic/version/reserved/oversize body). */
bool decodeHeader(std::span<const std::uint8_t> raw, FrameHeader &out);

/** Serialize a header into @p out (appended). */
void encodeHeader(const FrameHeader &h, std::vector<std::uint8_t> &out);

/** Parse a Request body. False on any bound violation. */
bool decodeRequest(std::span<const std::uint8_t> body, RequestFrame &out);

/** Parse a Response body. False on any bound violation. */
bool decodeResponse(std::span<const std::uint8_t> body, ResponseFrame &out);

/** Append a complete Request frame (header + body) to @p out. */
void encodeRequest(const RequestFrame &r, std::vector<std::uint8_t> &out);

/** Append a complete Response frame to @p out. @p logits may be empty. */
void encodeResponse(std::uint64_t tag, std::uint8_t status,
                    std::int32_t predicted, std::span<const float> logits,
                    std::vector<std::uint8_t> &out);

/** Parse a Generate body. False on any bound violation. */
bool decodeGenerate(std::span<const std::uint8_t> body, GenerateFrame &out);

/** Parse a StreamChunk body. False unless exactly one chunk. */
bool decodeStreamChunk(std::span<const std::uint8_t> body,
                       StreamChunkFrame &out);

/** Append a complete Generate frame (header + body) to @p out. */
void encodeGenerate(const GenerateFrame &g, std::vector<std::uint8_t> &out);

/** Append a complete StreamChunk frame to @p out. */
void encodeStreamChunk(const StreamChunkFrame &s,
                       std::vector<std::uint8_t> &out);

/** Append a complete Stats (scrape) request frame. */
void encodeStatsRequest(std::vector<std::uint8_t> &out);

/** Append a complete StatsText frame carrying @p text. */
void encodeStatsText(std::string_view text, std::vector<std::uint8_t> &out);

} // namespace bbs::net

#endif // BBS_NET_PROTOCOL_HPP
