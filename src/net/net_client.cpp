#include "net/net_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace bbs::net {

NetClient::~NetClient()
{
    close();
}

NetClient::NetClient(NetClient &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      sendBuf_(std::move(other.sendBuf_))
{
}

NetClient &
NetClient::operator=(NetClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        sendBuf_ = std::move(other.sendBuf_);
    }
    return *this;
}

bool
NetClient::connect(const std::string &host, std::uint16_t port,
                   int recvTimeoutMs)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        close();
        return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (recvTimeoutMs > 0) {
        timeval tv{};
        tv.tv_sec = recvTimeoutMs / 1000;
        tv.tv_usec = (recvTimeoutMs % 1000) * 1000;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }
    return true;
}

void
NetClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
NetClient::sendRaw(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < size) {
        ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
NetClient::sendRequest(const RequestFrame &r)
{
    sendBuf_.clear();
    encodeRequest(r, sendBuf_);
    return sendRaw(sendBuf_.data(), sendBuf_.size());
}

bool
NetClient::recvExact(void *dst, std::size_t size)
{
    auto *p = static_cast<std::uint8_t *>(dst);
    std::size_t got = 0;
    while (got < size) {
        ssize_t n = ::recv(fd_, p + got, size - got, 0);
        if (n == 0)
            return false; // EOF mid-frame
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false; // includes EAGAIN from SO_RCVTIMEO
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

bool
NetClient::recvFrame(FrameType expect, std::vector<std::uint8_t> &body)
{
    std::uint8_t raw[kHeaderBytes];
    FrameHeader h;
    if (!recvExact(raw, sizeof raw) || !decodeHeader(raw, h) ||
        h.type != expect)
        return false;
    body.resize(h.bodyLen);
    return h.bodyLen == 0 || recvExact(body.data(), body.size());
}

bool
NetClient::recvResponse(ResponseFrame &out)
{
    std::vector<std::uint8_t> body;
    return recvFrame(FrameType::Response, body) &&
           decodeResponse(body, out);
}

std::optional<ResponseFrame>
NetClient::request(const std::string &model, std::vector<float> input,
                   std::int64_t deadlineUs, std::uint64_t tag)
{
    RequestFrame r;
    r.tag = tag;
    r.deadlineUs = deadlineUs;
    r.model = model;
    r.input = std::move(input);
    if (!sendRequest(r))
        return std::nullopt;
    ResponseFrame resp;
    if (!recvResponse(resp))
        return std::nullopt;
    return resp;
}

bool
NetClient::sendGenerate(const GenerateFrame &g)
{
    sendBuf_.clear();
    encodeGenerate(g, sendBuf_);
    return sendRaw(sendBuf_.data(), sendBuf_.size());
}

bool
NetClient::recvStreamChunk(StreamChunkFrame &out)
{
    std::vector<std::uint8_t> body;
    return recvFrame(FrameType::StreamChunk, body) &&
           decodeStreamChunk(body, out);
}

bool
NetClient::generate(
    const std::string &model, std::span<const std::int32_t> prompt,
    std::uint32_t maxNewTokens,
    const std::function<void(const StreamChunkFrame &)> &onChunk,
    std::uint64_t tag)
{
    GenerateFrame g;
    g.tag = tag;
    g.model = model;
    g.maxNewTokens = maxNewTokens;
    g.prompt.assign(prompt.begin(), prompt.end());
    if (!sendGenerate(g))
        return false;
    for (;;) {
        StreamChunkFrame chunk;
        if (!recvStreamChunk(chunk) || chunk.tag != tag)
            return false;
        if (onChunk)
            onChunk(chunk);
        if (chunk.last)
            return true;
    }
}

std::optional<std::vector<std::int32_t>>
NetClient::generateCollect(const std::string &model,
                           std::span<const std::int32_t> prompt,
                           std::uint32_t maxNewTokens, std::uint64_t tag)
{
    std::vector<std::int32_t> tokens;
    bool failed = false;
    bool ok = generate(
        model, prompt, maxNewTokens,
        [&](const StreamChunkFrame &chunk) {
            if (chunk.status == 0)
                tokens.push_back(chunk.token);
            else
                failed = true;
        },
        tag);
    if (!ok || failed)
        return std::nullopt;
    return tokens;
}

std::optional<std::string>
NetClient::stats()
{
    sendBuf_.clear();
    encodeStatsRequest(sendBuf_);
    if (!sendRaw(sendBuf_.data(), sendBuf_.size()))
        return std::nullopt;
    std::vector<std::uint8_t> body;
    if (!recvFrame(FrameType::StatsText, body))
        return std::nullopt;
    return std::string(reinterpret_cast<const char *>(body.data()),
                       body.size());
}

} // namespace bbs::net
