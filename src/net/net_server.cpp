#include "net/net_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/logging.hpp"

namespace bbs::net {

namespace {

[[noreturn]] void
throwErrno(const char *what)
{
    throw std::runtime_error(std::string(what) + ": " +
                             std::strerror(errno));
}

} // namespace

void
NetServer::CompletionQueue::push(Completion &&comp)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (eventFd < 0)
        return; // server stopped; the response is dropped here
    items.push_back(std::move(comp));
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(eventFd, &one, sizeof one);
}

NetServer::NetServer(InferenceServer &server, NetServerConfig config)
    : server_(server),
      config_(std::move(config)),
      accepted_(server.metrics().counter(
          "bbs_net_connections_accepted_total", "Accepted connections")),
      rejected_(server.metrics().counter(
          "bbs_net_connections_rejected_total",
          "Connections closed at accept (slots exhausted)")),
      protoErrors_(server.metrics().counter(
          "bbs_net_protocol_errors_total",
          "Connections closed on malformed frames")),
      frames_(server.metrics().counter("bbs_net_frames_in_total",
                                       "Complete frames parsed")),
      responses_(server.metrics().counter("bbs_net_responses_out_total",
                                          "Response frames written")),
      chunks_(server.metrics().counter("bbs_net_stream_chunks_out_total",
                                       "StreamChunk frames written")),
      active_(server.metrics().gauge("bbs_net_connections_active",
                                     "Open connections"))
{
    BBS_REQUIRE(config_.maxConnections >= 1,
                "need at least one connection slot");
    cq_ = std::make_shared<CompletionQueue>();
    cq_->items.reserve(config_.completionReserve);
    compScratch_.reserve(config_.completionReserve);
}

NetServer::~NetServer()
{
    stop();
}

void
NetServer::attachGeneration(const std::string &model,
                            serve::GenerationScheduler *scheduler)
{
    BBS_REQUIRE(listenFd_ < 0,
                "attachGeneration must precede start(): the epoll "
                "thread reads the generator table without a lock");
    BBS_REQUIRE(scheduler != nullptr, "null generation scheduler");
    generators_[model] = scheduler;
}

void
NetServer::start()
{
    BBS_REQUIRE(listenFd_ < 0, "NetServer already started");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0)
        throwErrno("socket");
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("bad listen address: " + config_.host);
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd_, config_.backlog) != 0) {
        int saved = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        errno = saved;
        throwErrno("bind/listen");
    }
    socklen_t len = sizeof addr;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    eventFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epollFd_ < 0 || eventFd_ < 0)
        throwErrno("epoll_create1/eventfd");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    ev.data.fd = eventFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, eventFd_, &ev);

    {
        std::lock_guard<std::mutex> lock(cq_->mutex);
        cq_->eventFd = eventFd_;
        cq_->items.clear(); // stale completions from a previous run
    }
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { loop(); });
}

void
NetServer::stop()
{
    if (thread_.joinable()) {
        stop_.store(true, std::memory_order_relaxed);
        std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(eventFd_, &one, sizeof one); // wakes the epoll wait
        thread_.join();
    }
    // Park the completion channel BEFORE closing the eventfd: pushes
    // hold the queue mutex across their write(), so once this store is
    // visible no late callback can write to a recycled descriptor.
    {
        std::lock_guard<std::mutex> lock(cq_->mutex);
        cq_->eventFd = -1;
    }
    for (int fd : {listenFd_, epollFd_, eventFd_})
        if (fd >= 0)
            ::close(fd);
    listenFd_ = epollFd_ = eventFd_ = -1;
}

void
NetServer::loop()
{
    epoll_event events[64];
    while (!stop_.load(std::memory_order_relaxed)) {
        int n = ::epoll_wait(epollFd_, events, 64, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            int fd = events[i].data.fd;
            std::uint32_t flags = events[i].events;
            if (fd == listenFd_) {
                acceptReady();
                continue;
            }
            if (fd == eventFd_) {
                drainCompletions();
                continue;
            }
            // A connection. Look it up fresh per flag: an earlier flag's
            // handler may have closed it.
            if (flags & EPOLLIN) {
                auto it = conns_.find(fd);
                if (it != conns_.end())
                    readReady(it->second);
            }
            if (flags & EPOLLOUT) {
                auto it = conns_.find(fd);
                if (it != conns_.end() && !flushWrites(it->second))
                    closeConn(fd);
            }
            if (flags & (EPOLLHUP | EPOLLERR)) {
                if (conns_.count(fd))
                    closeConn(fd);
            } else if (flags & EPOLLRDHUP) {
                // Peer closed its write side; readReady above consumed
                // anything pending, so the conversation is over.
                if (conns_.count(fd))
                    closeConn(fd);
            }
        }
    }
    // Epoll thread owns the connection table; tear it down here so no
    // other thread ever touches a Conn.
    for (auto &[fd, c] : conns_)
        ::close(fd);
    conns_.clear();
    active_.set(0);
}

void
NetServer::acceptReady()
{
    for (;;) {
        int fd = ::accept4(listenFd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or transient accept failure: wait for epoll
        }
        if (conns_.size() >= config_.maxConnections) {
            ::close(fd);
            rejected_.inc();
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        Conn &c = conns_[fd];
        c.fd = fd;
        c.gen = nextGen_++;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP;
        ev.data.fd = fd;
        ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
        accepted_.inc();
        active_.set(static_cast<std::int64_t>(conns_.size()));
    }
}

void
NetServer::readReady(Conn &c)
{
    // Bounded reads per event: level-triggered epoll re-fires if more
    // bytes remain, so one slow-to-parse connection cannot monopolize
    // the loop.
    std::uint8_t buf[64 * 1024];
    for (int round = 0; round < 4; ++round) {
        ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
        if (n > 0) {
            c.inBuf.insert(c.inBuf.end(), buf, buf + n);
            if (!parseFrames(c)) {
                protoErrors_.inc();
                closeConn(c.fd);
                return;
            }
            if (static_cast<std::size_t>(n) < sizeof buf)
                return;
        } else if (n == 0) {
            closeConn(c.fd); // EOF; late completions drop at gen check
            return;
        } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return;
        } else if (errno != EINTR) {
            closeConn(c.fd);
            return;
        }
    }
}

bool
NetServer::parseFrames(Conn &c)
{
    std::size_t consumed = 0;
    for (;;) {
        if (!c.haveHeader) {
            if (c.inBuf.size() - consumed < kHeaderBytes)
                break;
            if (!decodeHeader({c.inBuf.data() + consumed, kHeaderBytes},
                              c.hdr))
                return false;
            consumed += kHeaderBytes;
            c.haveHeader = true;
        }
        if (c.inBuf.size() - consumed < c.hdr.bodyLen)
            break;
        frames_.inc();
        if (!handleFrame(c, {c.inBuf.data() + consumed, c.hdr.bodyLen}))
            return false;
        consumed += c.hdr.bodyLen;
        c.haveHeader = false;
    }
    // Drop the parsed prefix; the unparsed tail (a partial frame) slides
    // down and accumulates on the next read.
    if (consumed > 0)
        c.inBuf.erase(c.inBuf.begin(),
                      c.inBuf.begin() +
                          static_cast<std::ptrdiff_t>(consumed));
    return true;
}

bool
NetServer::handleFrame(Conn &c, std::span<const std::uint8_t> body)
{
    switch (c.hdr.type) {
    case FrameType::Request: {
        RequestFrame req;
        if (!decodeRequest(body, req))
            return false;
        // The callback runs on whichever thread completes the request
        // (usually a serving worker; this thread for immediate
        // rejections). It only moves the response into the completion
        // queue and signals — the worker never touches the socket.
        server_.submitAsync(
            req.model, std::move(req.input), req.deadlineUs,
            [cq = cq_, fd = c.fd, gen = c.gen,
             tag = req.tag](InferenceResponse &&resp) {
                Completion comp;
                comp.fd = fd;
                comp.gen = gen;
                comp.tag = tag;
                comp.resp = std::move(resp);
                cq->push(std::move(comp));
            });
        return true;
    }
    case FrameType::Stats: {
        encodeStatsText(server_.metricsText(), c.outBuf);
        return flushWrites(c);
    }
    case FrameType::Generate: {
        GenerateFrame gen;
        if (!decodeGenerate(body, gen))
            return false;
        auto git = generators_.find(gen.model);
        if (git == generators_.end()) {
            StreamChunkFrame chunk;
            chunk.tag = gen.tag;
            chunk.status =
                static_cast<std::uint8_t>(ServeStatus::UnknownModel);
            chunk.last = true;
            encodeStreamChunk(chunk, c.outBuf);
            chunks_.inc();
            return flushWrites(c);
        }
        // One callback per streamed token, each crossing back through
        // the completion queue exactly like an inference response.
        // Submit-time failures (BadInput/Overloaded/ShutDown) invoke
        // the callback synchronously on this thread — also fine: the
        // chunk just queues behind the eventfd like any other.
        git->second->submit(
            gen.prompt, static_cast<std::int64_t>(gen.maxNewTokens),
            [cq = cq_, fd = c.fd, gen2 = c.gen,
             tag = gen.tag](const serve::StreamToken &t) {
                Completion comp;
                comp.fd = fd;
                comp.gen = gen2;
                comp.tag = tag;
                comp.stream = true;
                comp.chunk.tag = tag;
                comp.chunk.status = static_cast<std::uint8_t>(t.status);
                comp.chunk.last = t.last;
                comp.chunk.index = t.index;
                comp.chunk.token = t.token;
                cq->push(std::move(comp));
            });
        return true;
    }
    case FrameType::Response:
    case FrameType::StatsText:
    case FrameType::StreamChunk:
        return false; // server-to-client types arriving here = hostile
    }
    return false;
}

void
NetServer::drainCompletions()
{
    std::uint64_t drained = 0;
    [[maybe_unused]] ssize_t n =
        ::read(eventFd_, &drained, sizeof drained);
    if (stop_.load(std::memory_order_relaxed))
        return;
    {
        std::lock_guard<std::mutex> lock(cq_->mutex);
        cq_->items.swap(compScratch_);
    }
    for (Completion &comp : compScratch_) {
        auto it = conns_.find(comp.fd);
        if (it == conns_.end() || it->second.gen != comp.gen)
            continue; // connection died first; drop the response
        Conn &c = it->second;
        if (comp.stream) {
            encodeStreamChunk(comp.chunk, c.outBuf);
            chunks_.inc();
        } else {
            encodeResponse(comp.tag,
                           static_cast<std::uint8_t>(comp.resp.status),
                           comp.resp.predicted, comp.resp.logits,
                           c.outBuf);
            responses_.inc();
        }
        if (!flushWrites(c))
            closeConn(comp.fd);
    }
    compScratch_.clear();
}

bool
NetServer::flushWrites(Conn &c)
{
    while (c.outPos < c.outBuf.size()) {
        ssize_t n = ::send(c.fd, c.outBuf.data() + c.outPos,
                           c.outBuf.size() - c.outPos, MSG_NOSIGNAL);
        if (n >= 0) {
            c.outPos += static_cast<std::size_t>(n);
        } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
        } else if (errno != EINTR) {
            return false;
        }
    }
    if (c.outPos == c.outBuf.size()) {
        c.outBuf.clear();
        c.outPos = 0;
    }
    updateWriteInterest(c);
    return true;
}

void
NetServer::updateWriteInterest(Conn &c)
{
    bool want = !c.outBuf.empty();
    if (want == c.wantWrite)
        return;
    c.wantWrite = want;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | (want ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void
NetServer::closeConn(int fd)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(it);
    active_.set(static_cast<std::int64_t>(conns_.size()));
}

std::uint64_t
NetServer::acceptedTotal() const
{
    return accepted_.value();
}

std::uint64_t
NetServer::rejectedTotal() const
{
    return rejected_.value();
}

std::uint64_t
NetServer::protocolErrors() const
{
    return protoErrors_.value();
}

std::uint64_t
NetServer::framesIn() const
{
    return frames_.value();
}

std::uint64_t
NetServer::responsesOut() const
{
    return responses_.value();
}

std::uint64_t
NetServer::streamChunksOut() const
{
    return chunks_.value();
}

std::size_t
NetServer::activeConnections() const
{
    return static_cast<std::size_t>(active_.value());
}

} // namespace bbs::net
