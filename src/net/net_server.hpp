/**
 * @file
 * Socket front-end of the serving runtime: one epoll thread accepts
 * connections, frames the byte stream into protocol.hpp frames, and
 * feeds requests to InferenceServer::submitAsync. Completions flow back
 * through a mutex-guarded completion queue + eventfd: the serving
 * worker that finishes a request just moves the response into the queue
 * and signals; the epoll thread wakes, encodes the response frame, and
 * writes it out. The epoll thread therefore never blocks on inference
 * and the workers never touch a socket.
 *
 *   client ──bytes──▶ epoll thread ──submitAsync──▶ shard queue
 *                         ▲                             │ worker
 *                         └── eventfd ◀── completion ◀──┘
 *
 * Robustness contract (pinned by the frame fuzzer in test_net):
 *  - a malformed header (bad magic/version/reserved, oversized length)
 *    or body closes THAT connection and counts a protocol error; the
 *    listener and every other connection are unaffected;
 *  - a connection stalled mid-frame just sits in its framing state —
 *    per-fd buffering means it cannot stall any other connection;
 *  - disconnecting mid-frame (or with responses in flight) releases the
 *    connection slot immediately; late completions for a dead
 *    connection are dropped by generation check, never written to a
 *    recycled fd.
 *
 * Backpressure: responses queue in a per-connection write buffer when
 * the socket is full (EPOLLOUT drains it); ADMISSION backpressure is
 * the server's job — an overloaded shard answers Overloaded in
 * microseconds, and that answer is just another response frame here.
 *
 * Linux-only (epoll + eventfd), like the soak harness's affinity tools.
 */
#ifndef BBS_NET_NET_SERVER_HPP
#define BBS_NET_NET_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "serve/generation.hpp"
#include "serve/server.hpp"

namespace bbs::net {

struct NetServerConfig
{
    /** Listen address. Loopback by default: this is an engine-local
     *  protocol; fronting it to the world is a proxy's job. */
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral; NetServer::port() tells
    int backlog = 128;
    /** Connection slots. An accept beyond this is closed immediately
     *  (counted in bbs_net_connections_rejected_total). */
    std::size_t maxConnections = 1024;
    /** Completion-queue capacity reserved up front, so serving workers
     *  pushing completions stay allocation-free up to this many
     *  in-flight responses (the queue still grows beyond it — growth
     *  costs one allocation, never a drop). */
    std::size_t completionReserve = 4096;
};

class NetServer
{
  public:
    /** Binds nothing yet; start() does. @p server must outlive this. */
    NetServer(InferenceServer &server, NetServerConfig config = {});
    ~NetServer(); ///< stop()s

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /**
     * Expose a token-generation scheduler under @p model for Generate
     * frames. Call before start(); @p scheduler must outlive this and
     * should run its own worker (workers = 1) — the epoll thread only
     * submits. Streamed tokens flow back through the same completion
     * queue as inference responses, one StreamChunk frame per token.
     */
    void attachGeneration(const std::string &model,
                          serve::GenerationScheduler *scheduler);

    /** Bind + listen + spawn the epoll thread. Returns with the socket
     *  accepting, so a caller may connect immediately. Throws
     *  std::runtime_error on bind/listen failure. */
    void start();

    /** Stop accepting, close every connection (in-flight inference
     *  completions are dropped at the generation check), join the epoll
     *  thread. Idempotent. Does NOT stop the InferenceServer. */
    void stop();

    /** The bound port (resolves an ephemeral request); 0 before
     *  start(). */
    std::uint16_t port() const { return port_; }

    // Test/diagnostic accessors (exact; the same values are exported as
    // bbs_net_* series in the server's metric registry).
    std::uint64_t acceptedTotal() const;
    std::uint64_t rejectedTotal() const;
    std::uint64_t protocolErrors() const;
    std::uint64_t framesIn() const;
    std::uint64_t responsesOut() const;
    std::uint64_t streamChunksOut() const;
    std::size_t activeConnections() const;

  private:
    struct Conn
    {
        std::uint64_t gen = 0; ///< guards completions against fd reuse
        int fd = -1;
        std::vector<std::uint8_t> inBuf; ///< unparsed received bytes
        FrameHeader hdr{};
        bool haveHeader = false;
        std::vector<std::uint8_t> outBuf; ///< pending response bytes
        std::size_t outPos = 0;
        bool wantWrite = false; ///< EPOLLOUT armed
    };

    /** One finished inference — or one streamed generation token —
     *  crossing back to the epoll thread. */
    struct Completion
    {
        int fd = -1;
        std::uint64_t gen = 0;
        std::uint64_t tag = 0;
        bool stream = false; ///< true: encode `chunk`, not `resp`
        InferenceResponse resp;
        StreamChunkFrame chunk;
    };

    /**
     * The worker→epoll completion channel, owned by shared_ptr: a
     * submitAsync callback may fire AFTER stop() (in-flight batches
     * complete while the listener is already down), so it must never
     * touch the NetServer or an fd the NetServer may have closed. The
     * callback captures this state; stop() parks eventFd at -1 under
     * the mutex, after which late completions are dropped here instead
     * of written to a recycled descriptor.
     */
    struct CompletionQueue
    {
        std::mutex mutex;
        std::vector<Completion> items; ///< guarded by mutex
        int eventFd = -1;              ///< -1 once the server stopped

        /** Worker side: enqueue + signal, or drop when stopped. The
         *  eventfd write happens under the mutex so it cannot straddle
         *  stop() closing the descriptor. */
        void push(Completion &&comp);
    };

    void loop();
    void acceptReady();
    void readReady(Conn &c);
    /** Parse every complete frame in c.inBuf; false = close conn. */
    bool parseFrames(Conn &c);
    /** Handle one complete frame body; false = close conn. */
    bool handleFrame(Conn &c, std::span<const std::uint8_t> body);
    void drainCompletions();
    /** Write as much of outBuf as the socket takes; false = close. */
    bool flushWrites(Conn &c);
    void closeConn(int fd);
    void updateWriteInterest(Conn &c);

    InferenceServer &server_;
    NetServerConfig config_;
    std::unordered_map<std::string, serve::GenerationScheduler *>
        generators_; ///< set before start(), read-only after

    int listenFd_ = -1;
    int epollFd_ = -1;
    int eventFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread thread_;

    std::unordered_map<int, Conn> conns_;
    std::uint64_t nextGen_ = 1;

    std::shared_ptr<CompletionQueue> cq_;
    std::vector<Completion> compScratch_; ///< epoll-side swap target

    // Counters live in the server's registry so one stats scrape covers
    // the whole vertical, net layer included.
    obs::Counter &accepted_;
    obs::Counter &rejected_;
    obs::Counter &protoErrors_;
    obs::Counter &frames_;
    obs::Counter &responses_;
    obs::Counter &chunks_;
    obs::Gauge &active_;
};

} // namespace bbs::net

#endif // BBS_NET_NET_SERVER_HPP
