/**
 * @file
 * Scalar fallback kernels: the exact per-word loops the hot paths ran
 * before the SIMD layer existed. They are the always-correct baseline
 * every vector level is fuzzed bit-identical to, and the timing baseline
 * the `BBS_SIMD=scalar` dispatch exposes — so this translation unit is
 * pinned non-auto-vectorized (CMake passes -fno-tree-vectorize here):
 * on hosts where the compiler could vectorize std::popcount loops itself
 * (e.g. -march=native with AVX512VPOPCNTDQ), the scalar level would
 * otherwise stop being a scalar baseline.
 */
#include "simd/simd.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/bit_utils.hpp"

namespace bbs {
namespace detail {

namespace {

std::int64_t
popcountSumScalar(const std::uint64_t *w, std::int64_t n)
{
    std::int64_t s = 0;
    for (std::int64_t i = 0; i < n; ++i)
        s += std::popcount(w[i]);
    return s;
}

std::int64_t
popcountSumBytesScalar(const std::int8_t *p, std::int64_t n)
{
    std::int64_t s = 0;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t word;
        std::memcpy(&word, p + i, 8);
        s += std::popcount(word);
    }
    for (; i < n; ++i)
        s += popcount8(p[i]);
    return s;
}

std::int64_t
byteSumScalar(const std::int8_t *p, std::int64_t n)
{
    std::int64_t s = 0;
    for (std::int64_t i = 0; i < n; ++i)
        s += p[i];
    return s;
}

std::int64_t
andPopcountAccumulateScalar(const std::uint64_t *a, const std::uint64_t *w,
                            std::int64_t n)
{
    std::int64_t s = 0;
    for (std::int64_t i = 0; i < n; ++i)
        s += std::popcount(a[i] & w[i]);
    return s;
}

void
andPopcountTileScalar(const std::uint64_t *a0, const std::uint64_t *a1,
                      const std::uint64_t *w0, const std::uint64_t *w1,
                      std::int64_t n, std::int64_t out[4])
{
    // The pre-SIMD 2x1x2 micro-kernel: one depth word per step, four
    // AND+popcounts sharing the four loads.
    std::int64_t p00 = 0, p01 = 0, p10 = 0, p11 = 0;
    for (std::int64_t d = 0; d < n; ++d) {
        std::uint64_t av0 = a0[d], av1 = a1[d];
        std::uint64_t wv0 = w0[d], wv1 = w1[d];
        p00 += std::popcount(av0 & wv0);
        p01 += std::popcount(av0 & wv1);
        p10 += std::popcount(av1 & wv0);
        p11 += std::popcount(av1 & wv1);
    }
    out[0] = p00;
    out[1] = p01;
    out[2] = p10;
    out[3] = p11;
}

std::int64_t
weightedPlaneDotScalar(std::uint64_t wb, const std::uint64_t *aw)
{
    std::int64_t s = static_cast<std::int64_t>(std::popcount(wb & aw[0]));
    s += static_cast<std::int64_t>(std::popcount(wb & aw[1])) << 1;
    s += static_cast<std::int64_t>(std::popcount(wb & aw[2])) << 2;
    s += static_cast<std::int64_t>(std::popcount(wb & aw[3])) << 3;
    s += static_cast<std::int64_t>(std::popcount(wb & aw[4])) << 4;
    s += static_cast<std::int64_t>(std::popcount(wb & aw[5])) << 5;
    s += static_cast<std::int64_t>(std::popcount(wb & aw[6])) << 6;
    s -= static_cast<std::int64_t>(std::popcount(wb & aw[7])) << 7;
    return s;
}

std::int64_t
weightedPlaneSumScalar(const std::uint64_t *aw)
{
    std::int64_t s = 0;
    for (int b = 0; b < kWeightBits; ++b)
        s += columnWeight(b, kWeightBits) * std::popcount(aw[b]);
    return s;
}

void
weightedPlaneSumBatchScalar(const std::uint64_t *aw, std::int64_t count,
                            std::int64_t *out)
{
    for (std::int64_t i = 0; i < count; ++i)
        out[i] = weightedPlaneSumScalar(aw + i * kWeightBits);
}

std::int64_t
compressedGroupDotScalar(const std::uint64_t *planes, int bits,
                         const std::uint64_t *aw)
{
    std::int64_t v = 0;
    for (int b = 0; b < bits; ++b) {
        std::uint64_t wb = planes[b];
        if (wb == 0)
            continue; // binary pruning leaves many empty planes
        v += columnWeight(b, bits) * weightedPlaneDotScalar(wb, aw);
    }
    return v;
}

std::int64_t
effectualOpsSumScalar(const std::uint64_t *w, std::int64_t n, int groupSize)
{
    std::int64_t s = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        int ones = std::popcount(w[i]);
        s += std::min(ones, groupSize - ones);
    }
    return s;
}

std::int64_t
sparseBitsSumScalar(const std::uint64_t *w, std::int64_t n, int groupSize)
{
    std::int64_t s = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        int ones = std::popcount(w[i]);
        s += std::max(ones, groupSize - ones);
    }
    return s;
}

} // namespace

const SimdKernels &
scalarKernels()
{
    static const SimdKernels table = {
        SimdLevel::Scalar,
        &popcountSumScalar,
        &popcountSumBytesScalar,
        &byteSumScalar,
        &andPopcountAccumulateScalar,
        &andPopcountTileScalar,
        &weightedPlaneDotScalar,
        &weightedPlaneSumScalar,
        &weightedPlaneSumBatchScalar,
        &compressedGroupDotScalar,
        &effectualOpsSumScalar,
        &sparseBitsSumScalar,
    };
    return table;
}

} // namespace detail
} // namespace bbs
