/**
 * @file
 * x86 vector kernels: AVX2 (Harley-Seal carry-save popcount over the
 * pshufb nibble lookup) and AVX-512 (VPOPCNTDQ). Every function carries
 * a `target` attribute, so this TU compiles with any global -march and
 * the dispatcher only installs a table after CPUID confirms the CPU can
 * execute it. All loads are unaligned-tolerant; the plane containers'
 * 64-byte alignment is a performance guarantee, not a correctness
 * requirement here.
 *
 * Each kernel accumulates exact integer popcounts, so results are
 * bit-identical to the scalar fallback for every input (fuzzed in
 * tests/test_simd.cpp). Per-lane popcounts never exceed 64, and the AVX2
 * byte accumulators are flushed to qwords every 31 blocks (31 * 8 < 256),
 * so no accumulator can saturate.
 *
 * The AVX2 table keeps the scalar weightedPlaneDot/weightedPlaneSum/
 * weightedPlaneSumBatch: an eight-word window is too small for a
 * 256-bit lookup popcount to beat eight scalar POPCNTs (measured
 * ~0.8-1.0x even batched), and an honest dispatch table should not
 * pretend otherwise — the per-group amortized form (compressedGroupDot)
 * is where AVX2 ekes out a win on that shape.
 */
#include "simd/simd.hpp"

#include <algorithm>
#include <bit>

#if defined(__x86_64__) && defined(__GNUC__)
#define BBS_SIMD_X86 1
#include <immintrin.h>
// GCC's _mm512_reduce_add_epi64 expands _mm256_undefined_si256(), whose
// deliberately-uninitialized temporary trips -Wuninitialized when inlined
// here — a header artifact, not a real read of uninitialized data. The
// suppression is necessarily TU-wide (the warning fires at the inline
// expansion point during optimization), so to keep it from masking real
// bugs every vector temporary in this file is explicitly initialized;
// do not declare uninitialized __m256i/__m512i locals here.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#else
#define BBS_SIMD_X86 0
#endif

namespace bbs {
namespace detail {

// Defined in simd_scalar.cpp; the AVX2 table borrows the shapes AVX2
// cannot accelerate.
const SimdKernels &scalarKernels();

#if BBS_SIMD_X86

#define BBS_TARGET_AVX2 __attribute__((target("avx2")))
#define BBS_TARGET_AVX512                                                    \
    __attribute__((target("avx512f,avx512bw,avx512vpopcntdq")))

namespace {

// ------------------------------------------------------------------ AVX2

/** Per-byte popcount of a 256-bit vector (pshufb nibble lookup). */
BBS_TARGET_AVX2 inline __m256i
popcntBytes256(__m256i v)
{
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    __m256i lo = _mm256_and_si256(v, low);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

/** Horizontal sum of four int64 lanes. */
BBS_TARGET_AVX2 inline std::int64_t
hsum64x4(__m256i v)
{
    __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi64(s, _mm_unpackhi_epi64(s, s));
    return _mm_cvtsi128_si64(s);
}

/** Popcount of one vector as a qword-lane vector. */
BBS_TARGET_AVX2 inline __m256i
popcnt64x4(__m256i v)
{
    return _mm256_sad_epu8(popcntBytes256(v), _mm256_setzero_si256());
}

/** Carry-save adder: (h, l) = a + b + c per bit position. */
BBS_TARGET_AVX2 inline void
csa256(__m256i &h, __m256i &l, __m256i a, __m256i b, __m256i c)
{
    __m256i u = _mm256_xor_si256(a, b);
    h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
    l = _mm256_xor_si256(u, c);
}

/** Loader functors: vector i of a word stream / an ANDed word-stream
 *  pair / a byte stream. operator() must carry the target attribute —
 *  it is instantiated inside the Harley-Seal template below. */
struct PlainLoader
{
    const std::uint64_t *p;
    BBS_TARGET_AVX2 __m256i
    operator()(std::int64_t i) const
    {
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + 4 * i));
    }
};

struct AndLoader
{
    const std::uint64_t *a;
    const std::uint64_t *w;
    BBS_TARGET_AVX2 __m256i
    operator()(std::int64_t i) const
    {
        return _mm256_and_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + 4 * i)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w + 4 * i)));
    }
};

struct ByteLoader
{
    const std::int8_t *p;
    BBS_TARGET_AVX2 __m256i
    operator()(std::int64_t i) const
    {
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + 32 * i));
    }
};

/**
 * Harley-Seal popcount over @p nVecs 256-bit vectors: carry-save adders
 * compress eight vectors into one "eights" vector per block, so the
 * lookup popcount runs once per eight vectors instead of once per
 * vector. Bytes of "eights" accumulate for up to 31 blocks (31 * 8 <
 * 256) before one psadbw flush.
 */
template <typename Loader>
BBS_TARGET_AVX2 std::int64_t
hsPopcountAvx2(const Loader &load, std::int64_t nVecs)
{
    const __m256i zero = _mm256_setzero_si256();
    __m256i ones = zero, twos = zero, fours = zero;
    __m256i eightsBytes = zero;
    __m256i total = zero; // qword totals of flushed eights (weight 8)
    __m256i twosA = zero, twosB = zero, foursA = zero, foursB = zero;
    __m256i eights = zero;
    std::int64_t i = 0;
    int blocks = 0;
    for (; i + 8 <= nVecs; i += 8) {
        csa256(twosA, ones, ones, load(i), load(i + 1));
        csa256(twosB, ones, ones, load(i + 2), load(i + 3));
        csa256(foursA, twos, twos, twosA, twosB);
        csa256(twosA, ones, ones, load(i + 4), load(i + 5));
        csa256(twosB, ones, ones, load(i + 6), load(i + 7));
        csa256(foursB, twos, twos, twosA, twosB);
        csa256(eights, fours, fours, foursA, foursB);
        eightsBytes = _mm256_add_epi8(eightsBytes, popcntBytes256(eights));
        if (++blocks == 31) {
            total = _mm256_add_epi64(total,
                                     _mm256_sad_epu8(eightsBytes, zero));
            eightsBytes = zero;
            blocks = 0;
        }
    }
    std::int64_t s = 0;
    if (i > 0) { // skip the residual flush when no CSA block ever ran
        total = _mm256_add_epi64(total,
                                 _mm256_sad_epu8(eightsBytes, zero));
        s = 8 * hsum64x4(total);
        s += 4 * hsum64x4(popcnt64x4(fours));
        s += 2 * hsum64x4(popcnt64x4(twos));
        s += hsum64x4(popcnt64x4(ones));
    }
    for (; i < nVecs; ++i)
        s += hsum64x4(popcnt64x4(load(i)));
    return s;
}

BBS_TARGET_AVX2 std::int64_t
popcountSumAvx2(const std::uint64_t *w, std::int64_t n)
{
    std::int64_t vecs = n / 4;
    std::int64_t s = hsPopcountAvx2(PlainLoader{w}, vecs);
    for (std::int64_t i = 4 * vecs; i < n; ++i)
        s += std::popcount(w[i]);
    return s;
}

BBS_TARGET_AVX2 std::int64_t
popcountSumBytesAvx2(const std::int8_t *p, std::int64_t n)
{
    std::int64_t vecs = n / 32;
    std::int64_t s = hsPopcountAvx2(ByteLoader{p}, vecs);
    for (std::int64_t i = 32 * vecs; i < n; ++i)
        s += std::popcount(static_cast<unsigned>(p[i]) & 0xffu);
    return s;
}

BBS_TARGET_AVX2 std::int64_t
byteSumAvx2(const std::int8_t *p, std::int64_t n)
{
    // psadbw sums unsigned bytes; xor 0x80 biases int8 v to v + 128, so
    // each 32-byte block contributes sum(v) + 32 * 128 exactly.
    const __m256i zero = _mm256_setzero_si256();
    const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
    __m256i acc = zero;
    std::int64_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + i));
        acc = _mm256_add_epi64(acc,
                               _mm256_sad_epu8(_mm256_xor_si256(x, bias),
                                               zero));
    }
    std::int64_t s = hsum64x4(acc) - 128 * i;
    for (; i < n; ++i)
        s += p[i];
    return s;
}

BBS_TARGET_AVX2 std::int64_t
andPopcountAccumulateAvx2(const std::uint64_t *a, const std::uint64_t *w,
                          std::int64_t n)
{
    std::int64_t vecs = n / 4;
    std::int64_t s = hsPopcountAvx2(AndLoader{a, w}, vecs);
    for (std::int64_t i = 4 * vecs; i < n; ++i)
        s += std::popcount(a[i] & w[i]);
    return s;
}

BBS_TARGET_AVX2 void
andPopcountTileAvx2(const std::uint64_t *a0, const std::uint64_t *a1,
                    const std::uint64_t *w0, const std::uint64_t *w1,
                    std::int64_t n, std::int64_t out[4])
{
    // Four AND streams share every load; each stream runs a shallow
    // carry-save tree (to "fours") so the lookup popcount runs once per
    // four vectors per stream. Deeper trees win nothing here: registers
    // are the binding constraint with four parallel streams.
    const __m256i zero = _mm256_setzero_si256();
    __m256i ones00 = zero, twos00 = zero, acc00 = zero;
    __m256i ones01 = zero, twos01 = zero, acc01 = zero;
    __m256i ones10 = zero, twos10 = zero, acc10 = zero;
    __m256i ones11 = zero, twos11 = zero, acc11 = zero;
    __m256i tA = zero, tB = zero, f = zero;
    std::int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const std::uint64_t *pa0 = a0 + i, *pa1 = a1 + i;
        const std::uint64_t *pw0 = w0 + i, *pw1 = w1 + i;
        __m256i va0[4], va1[4], vw0[4], vw1[4];
        for (int v = 0; v < 4; ++v) {
            va0[v] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(pa0 + 4 * v));
            va1[v] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(pa1 + 4 * v));
            vw0[v] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(pw0 + 4 * v));
            vw1[v] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(pw1 + 4 * v));
        }
        csa256(tA, ones00, ones00, _mm256_and_si256(va0[0], vw0[0]),
               _mm256_and_si256(va0[1], vw0[1]));
        csa256(tB, ones00, ones00, _mm256_and_si256(va0[2], vw0[2]),
               _mm256_and_si256(va0[3], vw0[3]));
        csa256(f, twos00, twos00, tA, tB);
        acc00 = _mm256_add_epi64(acc00, popcnt64x4(f));
        csa256(tA, ones01, ones01, _mm256_and_si256(va0[0], vw1[0]),
               _mm256_and_si256(va0[1], vw1[1]));
        csa256(tB, ones01, ones01, _mm256_and_si256(va0[2], vw1[2]),
               _mm256_and_si256(va0[3], vw1[3]));
        csa256(f, twos01, twos01, tA, tB);
        acc01 = _mm256_add_epi64(acc01, popcnt64x4(f));
        csa256(tA, ones10, ones10, _mm256_and_si256(va1[0], vw0[0]),
               _mm256_and_si256(va1[1], vw0[1]));
        csa256(tB, ones10, ones10, _mm256_and_si256(va1[2], vw0[2]),
               _mm256_and_si256(va1[3], vw0[3]));
        csa256(f, twos10, twos10, tA, tB);
        acc10 = _mm256_add_epi64(acc10, popcnt64x4(f));
        csa256(tA, ones11, ones11, _mm256_and_si256(va1[0], vw1[0]),
               _mm256_and_si256(va1[1], vw1[1]));
        csa256(tB, ones11, ones11, _mm256_and_si256(va1[2], vw1[2]),
               _mm256_and_si256(va1[3], vw1[3]));
        csa256(f, twos11, twos11, tA, tB);
        acc11 = _mm256_add_epi64(acc11, popcnt64x4(f));
    }
    // Residuals: "fours" accumulators carry weight 4, twos 2, ones 1.
    // Skipped entirely for depths below one 16-word block — a shallow
    // GEMM depth must not pay vector flushes on empty accumulators.
    std::int64_t p00 = 0, p01 = 0, p10 = 0, p11 = 0;
    if (i > 0) {
        p00 = 4 * hsum64x4(acc00) + 2 * hsum64x4(popcnt64x4(twos00)) +
              hsum64x4(popcnt64x4(ones00));
        p01 = 4 * hsum64x4(acc01) + 2 * hsum64x4(popcnt64x4(twos01)) +
              hsum64x4(popcnt64x4(ones01));
        p10 = 4 * hsum64x4(acc10) + 2 * hsum64x4(popcnt64x4(twos10)) +
              hsum64x4(popcnt64x4(ones10));
        p11 = 4 * hsum64x4(acc11) + 2 * hsum64x4(popcnt64x4(twos11)) +
              hsum64x4(popcnt64x4(ones11));
    }
    for (; i < n; ++i) {
        std::uint64_t av0 = a0[i], av1 = a1[i];
        std::uint64_t wv0 = w0[i], wv1 = w1[i];
        p00 += std::popcount(av0 & wv0);
        p01 += std::popcount(av0 & wv1);
        p10 += std::popcount(av1 & wv0);
        p11 += std::popcount(av1 & wv1);
    }
    out[0] = p00;
    out[1] = p01;
    out[2] = p10;
    out[3] = p11;
}

BBS_TARGET_AVX2 std::int64_t
compressedGroupDotAvx2(const std::uint64_t *planes, int bits,
                       const std::uint64_t *aw)
{
    // Lane c of (accLo, accHi) collects sum over weight planes b of
    // columnWeight(b, bits) * popcount(planes[b] & aw[c]); the final
    // activation-significance weighting (shift by c, sign lane negates)
    // runs once per group instead of once per weight plane.
    const __m256i zero = _mm256_setzero_si256();
    __m256i awLo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(aw));
    __m256i awHi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(aw + 4));
    __m256i accLo = zero, accHi = zero;
    for (int b = 0; b < bits; ++b) {
        std::uint64_t wb = planes[b];
        if (wb == 0)
            continue; // binary pruning leaves many empty planes
        __m256i vb = _mm256_set1_epi64x(static_cast<long long>(wb));
        __m256i pcLo = _mm256_slli_epi64(
            popcnt64x4(_mm256_and_si256(awLo, vb)), b);
        __m256i pcHi = _mm256_slli_epi64(
            popcnt64x4(_mm256_and_si256(awHi, vb)), b);
        if (b == bits - 1) { // stored sign column weighs -2^b
            accLo = _mm256_sub_epi64(accLo, pcLo);
            accHi = _mm256_sub_epi64(accHi, pcHi);
        } else {
            accLo = _mm256_add_epi64(accLo, pcLo);
            accHi = _mm256_add_epi64(accHi, pcHi);
        }
    }
    __m256i shLo = _mm256_sllv_epi64(accLo, _mm256_setr_epi64x(0, 1, 2, 3));
    __m256i shHi = _mm256_sllv_epi64(accHi, _mm256_setr_epi64x(4, 5, 6, 7));
    // Lane 3 of shHi is the activation sign plane: subtract it.
    __m256i neg = _mm256_sub_epi64(zero, shHi);
    __m256i signedHi = _mm256_blend_epi32(shHi, neg, 0xC0);
    return hsum64x4(_mm256_add_epi64(shLo, signedHi));
}

BBS_TARGET_AVX2 std::int64_t
effectualOpsSumAvx2(const std::uint64_t *w, std::int64_t n, int groupSize)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i full = _mm256_set1_epi64x(groupSize);
    __m256i acc0 = zero, acc1 = zero;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) { // two streams hide the psadbw latency
        __m256i pc0 = popcnt64x4(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i)));
        __m256i pc1 = popcnt64x4(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i + 4)));
        __m256i o0 = _mm256_sub_epi64(full, pc0);
        __m256i o1 = _mm256_sub_epi64(full, pc1);
        acc0 = _mm256_add_epi64(
            acc0, _mm256_blendv_epi8(pc0, o0,
                                     _mm256_cmpgt_epi64(pc0, o0)));
        acc1 = _mm256_add_epi64(
            acc1, _mm256_blendv_epi8(pc1, o1,
                                     _mm256_cmpgt_epi64(pc1, o1)));
    }
    std::int64_t s = hsum64x4(_mm256_add_epi64(acc0, acc1));
    for (; i < n; ++i) {
        int ones = std::popcount(w[i]);
        s += std::min(ones, groupSize - ones);
    }
    return s;
}

BBS_TARGET_AVX2 std::int64_t
sparseBitsSumAvx2(const std::uint64_t *w, std::int64_t n, int groupSize)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i full = _mm256_set1_epi64x(groupSize);
    __m256i acc0 = zero, acc1 = zero;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i pc0 = popcnt64x4(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i)));
        __m256i pc1 = popcnt64x4(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i + 4)));
        __m256i o0 = _mm256_sub_epi64(full, pc0);
        __m256i o1 = _mm256_sub_epi64(full, pc1);
        acc0 = _mm256_add_epi64(
            acc0, _mm256_blendv_epi8(o0, pc0,
                                     _mm256_cmpgt_epi64(pc0, o0)));
        acc1 = _mm256_add_epi64(
            acc1, _mm256_blendv_epi8(o1, pc1,
                                     _mm256_cmpgt_epi64(pc1, o1)));
    }
    std::int64_t s = hsum64x4(_mm256_add_epi64(acc0, acc1));
    for (; i < n; ++i) {
        int ones = std::popcount(w[i]);
        s += std::max(ones, groupSize - ones);
    }
    return s;
}

// ---------------------------------------------------------------- AVX-512

BBS_TARGET_AVX512 inline __mmask8
tailMask8(std::int64_t rem)
{
    return static_cast<__mmask8>((1u << rem) - 1u);
}

BBS_TARGET_AVX512 std::int64_t
popcountSumAvx512(const std::uint64_t *w, std::int64_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_loadu_si512(w + i)));
    if (i < n)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(
                     _mm512_maskz_loadu_epi64(tailMask8(n - i), w + i)));
    return _mm512_reduce_add_epi64(acc);
}

BBS_TARGET_AVX512 std::int64_t
popcountSumBytesAvx512(const std::int8_t *p, std::int64_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::int64_t i = 0;
    for (; i + 64 <= n; i += 64)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_loadu_si512(p + i)));
    if (i < n) {
        __mmask64 m = (~0ull) >> (64 - (n - i));
        acc = _mm512_add_epi64(
            acc,
            _mm512_popcnt_epi64(_mm512_maskz_loadu_epi8(m, p + i)));
    }
    return _mm512_reduce_add_epi64(acc);
}

BBS_TARGET_AVX512 std::int64_t
byteSumAvx512(const std::int8_t *p, std::int64_t n)
{
    const __m512i zero = _mm512_setzero_si512();
    const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
    __m512i acc = zero;
    std::int64_t i = 0;
    for (; i + 64 <= n; i += 64) {
        __m512i x = _mm512_loadu_si512(p + i);
        acc = _mm512_add_epi64(acc,
                               _mm512_sad_epu8(_mm512_xor_si512(x, bias),
                                               zero));
    }
    std::int64_t s = _mm512_reduce_add_epi64(acc) - 128 * i;
    for (; i < n; ++i)
        s += p[i];
    return s;
}

BBS_TARGET_AVX512 std::int64_t
andPopcountAccumulateAvx512(const std::uint64_t *a, const std::uint64_t *w,
                            std::int64_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_and_si512(
                     _mm512_loadu_si512(a + i), _mm512_loadu_si512(w + i))));
    if (i < n) {
        __mmask8 m = tailMask8(n - i);
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_and_si512(
                     _mm512_maskz_loadu_epi64(m, a + i),
                     _mm512_maskz_loadu_epi64(m, w + i))));
    }
    return _mm512_reduce_add_epi64(acc);
}

BBS_TARGET_AVX512 void
andPopcountTileAvx512(const std::uint64_t *a0, const std::uint64_t *a1,
                      const std::uint64_t *w0, const std::uint64_t *w1,
                      std::int64_t n, std::int64_t out[4])
{
    const __m512i zero = _mm512_setzero_si512();
    __m512i acc00 = zero, acc01 = zero, acc10 = zero, acc11 = zero;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i va0 = _mm512_loadu_si512(a0 + i);
        __m512i va1 = _mm512_loadu_si512(a1 + i);
        __m512i vw0 = _mm512_loadu_si512(w0 + i);
        __m512i vw1 = _mm512_loadu_si512(w1 + i);
        acc00 = _mm512_add_epi64(
            acc00, _mm512_popcnt_epi64(_mm512_and_si512(va0, vw0)));
        acc01 = _mm512_add_epi64(
            acc01, _mm512_popcnt_epi64(_mm512_and_si512(va0, vw1)));
        acc10 = _mm512_add_epi64(
            acc10, _mm512_popcnt_epi64(_mm512_and_si512(va1, vw0)));
        acc11 = _mm512_add_epi64(
            acc11, _mm512_popcnt_epi64(_mm512_and_si512(va1, vw1)));
    }
    if (i < n) {
        __mmask8 m = tailMask8(n - i);
        __m512i va0 = _mm512_maskz_loadu_epi64(m, a0 + i);
        __m512i va1 = _mm512_maskz_loadu_epi64(m, a1 + i);
        __m512i vw0 = _mm512_maskz_loadu_epi64(m, w0 + i);
        __m512i vw1 = _mm512_maskz_loadu_epi64(m, w1 + i);
        acc00 = _mm512_add_epi64(
            acc00, _mm512_popcnt_epi64(_mm512_and_si512(va0, vw0)));
        acc01 = _mm512_add_epi64(
            acc01, _mm512_popcnt_epi64(_mm512_and_si512(va0, vw1)));
        acc10 = _mm512_add_epi64(
            acc10, _mm512_popcnt_epi64(_mm512_and_si512(va1, vw0)));
        acc11 = _mm512_add_epi64(
            acc11, _mm512_popcnt_epi64(_mm512_and_si512(va1, vw1)));
    }
    out[0] = _mm512_reduce_add_epi64(acc00);
    out[1] = _mm512_reduce_add_epi64(acc01);
    out[2] = _mm512_reduce_add_epi64(acc10);
    out[3] = _mm512_reduce_add_epi64(acc11);
}

/** All eight planes in one vector: popcount, shift by lane, sign lane
 *  subtracts. */
BBS_TARGET_AVX512 inline std::int64_t
weightedPlaneReduceAvx512(__m512i v)
{
    __m512i pc = _mm512_popcnt_epi64(v);
    __m512i sh = _mm512_sllv_epi64(
        pc, _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
    __m512i sgn = _mm512_mask_sub_epi64(sh, static_cast<__mmask8>(0x80),
                                        _mm512_setzero_si512(), sh);
    return _mm512_reduce_add_epi64(sgn);
}

BBS_TARGET_AVX512 std::int64_t
weightedPlaneDotAvx512(std::uint64_t wb, const std::uint64_t *aw)
{
    return weightedPlaneReduceAvx512(
        _mm512_and_si512(_mm512_loadu_si512(aw),
                         _mm512_set1_epi64(static_cast<long long>(wb))));
}

BBS_TARGET_AVX512 std::int64_t
weightedPlaneSumAvx512(const std::uint64_t *aw)
{
    return weightedPlaneReduceAvx512(_mm512_loadu_si512(aw));
}

BBS_TARGET_AVX512 void
weightedPlaneSumBatchAvx512(const std::uint64_t *aw, std::int64_t count,
                            std::int64_t *out)
{
    const __m512i shifts = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
    const __m512i zero = _mm512_setzero_si512();
    for (std::int64_t i = 0; i < count; ++i) {
        __m512i pc = _mm512_popcnt_epi64(_mm512_loadu_si512(aw + i * 8));
        __m512i sh = _mm512_sllv_epi64(pc, shifts);
        __m512i sgn = _mm512_mask_sub_epi64(
            sh, static_cast<__mmask8>(0x80), zero, sh);
        out[i] = _mm512_reduce_add_epi64(sgn);
    }
}

BBS_TARGET_AVX512 std::int64_t
compressedGroupDotAvx512(const std::uint64_t *planes, int bits,
                         const std::uint64_t *aw)
{
    // Lane c of acc collects sum over weight planes b of
    // columnWeight(b, bits) * popcount(planes[b] & aw[c]); one weighted
    // reduce (shift by c, sign lane negates) per group.
    __m512i va = _mm512_loadu_si512(aw);
    __m512i acc = _mm512_setzero_si512();
    for (int b = 0; b < bits; ++b) {
        std::uint64_t wb = planes[b];
        if (wb == 0)
            continue; // binary pruning leaves many empty planes
        __m512i pc = _mm512_popcnt_epi64(_mm512_and_si512(
            va, _mm512_set1_epi64(static_cast<long long>(wb))));
        pc = _mm512_slli_epi64(pc, static_cast<unsigned>(b));
        acc = (b == bits - 1) ? _mm512_sub_epi64(acc, pc)
                              : _mm512_add_epi64(acc, pc);
    }
    __m512i sh = _mm512_sllv_epi64(
        acc, _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
    __m512i sgn = _mm512_mask_sub_epi64(sh, static_cast<__mmask8>(0x80),
                                        _mm512_setzero_si512(), sh);
    return _mm512_reduce_add_epi64(sgn);
}

BBS_TARGET_AVX512 std::int64_t
effectualOpsSumAvx512(const std::uint64_t *w, std::int64_t n, int groupSize)
{
    const __m512i full = _mm512_set1_epi64(groupSize);
    __m512i acc = _mm512_setzero_si512();
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i pc = _mm512_popcnt_epi64(_mm512_loadu_si512(w + i));
        acc = _mm512_add_epi64(
            acc, _mm512_min_epi64(pc, _mm512_sub_epi64(full, pc)));
    }
    std::int64_t s = _mm512_reduce_add_epi64(acc);
    for (; i < n; ++i) {
        int ones = std::popcount(w[i]);
        s += std::min(ones, groupSize - ones);
    }
    return s;
}

BBS_TARGET_AVX512 std::int64_t
sparseBitsSumAvx512(const std::uint64_t *w, std::int64_t n, int groupSize)
{
    const __m512i full = _mm512_set1_epi64(groupSize);
    __m512i acc = _mm512_setzero_si512();
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i pc = _mm512_popcnt_epi64(_mm512_loadu_si512(w + i));
        acc = _mm512_add_epi64(
            acc, _mm512_max_epi64(pc, _mm512_sub_epi64(full, pc)));
    }
    std::int64_t s = _mm512_reduce_add_epi64(acc);
    for (; i < n; ++i) {
        int ones = std::popcount(w[i]);
        s += std::max(ones, groupSize - ones);
    }
    return s;
}

const SimdKernels avx512Table = {
    SimdLevel::Avx512,
    &popcountSumAvx512,
    &popcountSumBytesAvx512,
    &byteSumAvx512,
    &andPopcountAccumulateAvx512,
    &andPopcountTileAvx512,
    &weightedPlaneDotAvx512,
    &weightedPlaneSumAvx512,
    &weightedPlaneSumBatchAvx512,
    &compressedGroupDotAvx512,
    &effectualOpsSumAvx512,
    &sparseBitsSumAvx512,
};

} // namespace

bool
cpuHasAvx2()
{
    return __builtin_cpu_supports("avx2");
}

bool
cpuHasAvx512()
{
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vpopcntdq");
}

const SimdKernels *
avx2KernelsOrNull()
{
    // weightedPlaneDot/Sum stay scalar: a single 8-word window loses to
    // eight scalar POPCNTs on AVX2 (no vector popcount instruction), so
    // the table says so instead of dispatching a pessimization. The
    // benches gate only kernels whose pointer differs from the scalar
    // table's.
    static const SimdKernels table = [] {
        SimdKernels t = {
            SimdLevel::Avx2,
            &popcountSumAvx2,
            &popcountSumBytesAvx2,
            &byteSumAvx2,
            &andPopcountAccumulateAvx2,
            &andPopcountTileAvx2,
            scalarKernels().weightedPlaneDot,
            scalarKernels().weightedPlaneSum,
            scalarKernels().weightedPlaneSumBatch,
            &compressedGroupDotAvx2,
            &effectualOpsSumAvx2,
            &sparseBitsSumAvx2,
        };
        return t;
    }();
    return &table;
}

const SimdKernels *
avx512KernelsOrNull()
{
    return &avx512Table;
}

#else // !BBS_SIMD_X86 — no vector tables on this architecture/compiler.

bool
cpuHasAvx2()
{
    return false;
}

bool
cpuHasAvx512()
{
    return false;
}

const SimdKernels *
avx2KernelsOrNull()
{
    return nullptr;
}

const SimdKernels *
avx512KernelsOrNull()
{
    return nullptr;
}

#endif

} // namespace detail
} // namespace bbs
