/**
 * @file
 * Runtime-dispatched SIMD kernels for the bitwise AND+popcount substrate.
 *
 * Every hot path of the library — the dense 2x1x2 GEMM tile, the
 * compressed-domain plane products, the BBS sparsity / effectual-ops
 * scans, and the sum-of-activations reductions — bottoms out in a handful
 * of word-level kernel shapes. This layer provides those shapes as
 * function-pointer tables with three implementations:
 *
 *  - **scalar**: the pre-SIMD per-word loops, kept as the always-correct
 *    fallback (and pinned non-auto-vectorized so speedup comparisons
 *    measure vectorization, not compiler mood);
 *  - **avx2**: 256-bit kernels using the nibble-lookup (pshufb) popcount
 *    with deferred byte->qword reduction (Harley-Seal-style accumulation);
 *  - **avx512**: 512-bit kernels using VPOPCNTDQ where the CPU has it.
 *
 * The active level is resolved once at startup: the highest level the CPU
 * supports, optionally lowered by the `BBS_SIMD=scalar|avx2|avx512`
 * environment variable (a request *above* what the CPU supports falls
 * back to the best supported level with a warning, so CI matrices degrade
 * gracefully on older runners). Tests and benches switch levels at
 * runtime via setSimdLevel().
 *
 * Every kernel computes an exact integer, so all three levels are
 * bit-identical by construction; tests/test_simd.cpp fuzzes that pin.
 * Kernels tolerate any pointer alignment (vector paths use unaligned
 * loads); the plane containers guarantee 64-byte alignment so the loads
 * never straddle cache lines in the hot paths.
 */
#ifndef BBS_SIMD_SIMD_HPP
#define BBS_SIMD_SIMD_HPP

#include <cstdint>

namespace bbs {

/** Dispatch levels, ordered by capability. */
enum class SimdLevel
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/**
 * One implementation of every kernel shape. All sums are exact int64
 * arithmetic — identical across levels for identical inputs.
 */
struct SimdKernels
{
    SimdLevel level = SimdLevel::Scalar;

    /** Sum of popcount(w[i]) over @p n words. */
    std::int64_t (*popcountSum)(const std::uint64_t *w, std::int64_t n);

    /** Sum of popcount over @p n bytes (any alignment, any length). */
    std::int64_t (*popcountSumBytes)(const std::int8_t *p, std::int64_t n);

    /** Sum of @p n signed bytes (the sum-of-activations reduction). */
    std::int64_t (*byteSum)(const std::int8_t *p, std::int64_t n);

    /** Sum of popcount(a[i] & w[i]) over @p n words. */
    std::int64_t (*andPopcountAccumulate)(const std::uint64_t *a,
                                          const std::uint64_t *w,
                                          std::int64_t n);

    /**
     * The dense GEMM register tile: out[0..3] = sum over i of
     * popcount(a0[i]&w0[i]), (a0&w1), (a1&w0), (a1&w1) — four AND+popcount
     * streams sharing the four loads.
     */
    void (*andPopcountTile)(const std::uint64_t *a0, const std::uint64_t *a1,
                            const std::uint64_t *w0, const std::uint64_t *w1,
                            std::int64_t n, std::int64_t out[4]);

    /**
     * The 8-plane weighted window reduction against a weight-plane word:
     * sum over activation planes c of 2^c * popcount(wb & aw[c]), the
     * sign plane (c = 7) weighing -2^7. The single-window building
     * block: the library's hot paths run its amortized forms
     * (compressedGroupDot over a group's planes, weightedPlaneSumBatch
     * over a row of windows), while this slot stays dispatched as the
     * reference shape the tests and benches pin those forms against.
     */
    std::int64_t (*weightedPlaneDot)(std::uint64_t wb,
                                     const std::uint64_t *aw);

    /**
     * weightedPlaneDot with wb = all-ones: the value sum encoded by eight
     * aligned window planes (bit_serial_matrix's planeWindowSum).
     */
    std::int64_t (*weightedPlaneSum)(const std::uint64_t *aw);

    /**
     * weightedPlaneSum over @p count consecutive 8-word windows:
     * out[i] = weightedPlaneSum(aw + 8 * i). The compressed GEMM's
     * stage 1 computes a whole row of sum-of-activation terms per call,
     * amortizing the call and reduction overhead a single 8-word window
     * cannot.
     */
    void (*weightedPlaneSumBatch)(const std::uint64_t *aw,
                                  std::int64_t count, std::int64_t *out);

    /**
     * Whole compressed-group dot: sum over stored weight planes b <
     * @p bits of columnWeight(b, bits) * weightedPlaneDot(planes[b], aw)
     * — the complete stored-column contribution of one BBS group to one
     * sample. One kernel call per (group, sample) amortizes the weighted
     * reduction across every weight plane, which is what makes the
     * compressed GEMM's stage 2 vectorizable at all (a single 8-word
     * window is too small to win on by itself).
     */
    std::int64_t (*compressedGroupDot)(const std::uint64_t *planes,
                                       int bits, const std::uint64_t *aw);

    /**
     * BBS effectual-ops scan: sum over words of min(ones, groupSize -
     * ones). Plane words must respect the clean-planes invariant
     * (popcount <= groupSize).
     */
    std::int64_t (*effectualOpsSum)(const std::uint64_t *w, std::int64_t n,
                                    int groupSize);

    /** BBS sparse-bits scan: sum over words of max(ones, groupSize - ones). */
    std::int64_t (*sparseBitsSum)(const std::uint64_t *w, std::int64_t n,
                                  int groupSize);
};

/** "scalar" / "avx2" / "avx512". */
const char *simdLevelName(SimdLevel level);

/** Highest level this CPU can execute (detected once via CPUID). */
SimdLevel maxSupportedSimdLevel();

/** True when @p level is at or below maxSupportedSimdLevel(). */
bool simdLevelSupported(SimdLevel level);

/**
 * The level the kernel table currently dispatches to. Initially the
 * highest supported level, lowered by BBS_SIMD when set (an unsupported
 * request falls back to the best supported level with a warning).
 */
SimdLevel activeSimdLevel();

/**
 * Switch the active kernel table (tests/benches comparing levels).
 * Requires simdLevelSupported(level). Takes effect for subsequent
 * simdKernels() calls; not intended to race in-flight kernels.
 */
void setSimdLevel(SimdLevel level);

/** The active kernel table (one relaxed atomic load). */
const SimdKernels &simdKernels();

/** A specific level's table; requires simdLevelSupported(level). */
const SimdKernels &simdKernelsFor(SimdLevel level);

} // namespace bbs

#endif // BBS_SIMD_SIMD_HPP
