/**
 * @file
 * SIMD dispatch: CPUID detection and runtime level switching. The
 * BBS_SIMD environment override is parsed by the engine's single parse
 * path (engine::EngineConfig::simdLevelFromEnv), read once here
 * (thread-safe magic static); runtime changes go through setSimdLevel().
 */
#include "simd/simd.hpp"

#include <atomic>

#include "common/logging.hpp"
#include "engine/engine_config.hpp"

namespace bbs {

namespace detail {

// Defined in simd_scalar.cpp / simd_x86.cpp.
const SimdKernels &scalarKernels();
const SimdKernels *avx2KernelsOrNull();
const SimdKernels *avx512KernelsOrNull();
bool cpuHasAvx2();
bool cpuHasAvx512();

namespace {

/** Table for a supported level (never null for supported levels). */
const SimdKernels *
tableFor(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar: return &scalarKernels();
    case SimdLevel::Avx2: return avx2KernelsOrNull();
    case SimdLevel::Avx512: return avx512KernelsOrNull();
    }
    return nullptr;
}

std::atomic<const SimdKernels *> &
activeTable()
{
    static std::atomic<const SimdKernels *> table{
        tableFor(engine::EngineConfig::simdLevelFromEnv())};
    return table;
}

} // namespace
} // namespace detail

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
    case SimdLevel::Avx512: return "avx512";
    }
    return "?";
}

SimdLevel
maxSupportedSimdLevel()
{
    static const SimdLevel best = [] {
        if (detail::cpuHasAvx512() &&
            detail::avx512KernelsOrNull() != nullptr)
            return SimdLevel::Avx512;
        if (detail::cpuHasAvx2() && detail::avx2KernelsOrNull() != nullptr)
            return SimdLevel::Avx2;
        return SimdLevel::Scalar;
    }();
    return best;
}

bool
simdLevelSupported(SimdLevel level)
{
    return static_cast<int>(level) <=
           static_cast<int>(maxSupportedSimdLevel());
}

SimdLevel
activeSimdLevel()
{
    return detail::activeTable().load(std::memory_order_relaxed)->level;
}

void
setSimdLevel(SimdLevel level)
{
    BBS_REQUIRE(simdLevelSupported(level), "SIMD level ",
                simdLevelName(level), " is not supported by this CPU "
                "(max: ", simdLevelName(maxSupportedSimdLevel()), ")");
    detail::activeTable().store(detail::tableFor(level),
                                std::memory_order_relaxed);
}

const SimdKernels &
simdKernels()
{
    return *detail::activeTable().load(std::memory_order_relaxed);
}

const SimdKernels &
simdKernelsFor(SimdLevel level)
{
    BBS_REQUIRE(simdLevelSupported(level), "SIMD level ",
                simdLevelName(level), " is not supported by this CPU "
                "(max: ", simdLevelName(maxSupportedSimdLevel()), ")");
    return *detail::tableFor(level);
}

} // namespace bbs
