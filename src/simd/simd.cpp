/**
 * @file
 * SIMD dispatch: CPUID detection, BBS_SIMD env override, runtime level
 * switching. The environment is read once (thread-safe magic static);
 * runtime changes go through setSimdLevel().
 */
#include "simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.hpp"

namespace bbs {

namespace detail {

// Defined in simd_scalar.cpp / simd_x86.cpp.
const SimdKernels &scalarKernels();
const SimdKernels *avx2KernelsOrNull();
const SimdKernels *avx512KernelsOrNull();
bool cpuHasAvx2();
bool cpuHasAvx512();

namespace {

/** Parse a BBS_SIMD value; nullopt-like -1 for "not set / unknown". */
int
parseLevel(const char *env)
{
    if (env == nullptr)
        return -1;
    std::string v(env);
    if (v == "scalar")
        return static_cast<int>(SimdLevel::Scalar);
    if (v == "avx2")
        return static_cast<int>(SimdLevel::Avx2);
    if (v == "avx512")
        return static_cast<int>(SimdLevel::Avx512);
    warn("BBS_SIMD=", v, " is not one of scalar|avx2|avx512; using the "
         "detected default");
    return -1;
}

/** Table for a supported level (never null for supported levels). */
const SimdKernels *
tableFor(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar: return &scalarKernels();
    case SimdLevel::Avx2: return avx2KernelsOrNull();
    case SimdLevel::Avx512: return avx512KernelsOrNull();
    }
    return nullptr;
}

/**
 * Startup resolution: highest CPU-supported level, lowered (never
 * raised) by BBS_SIMD. A request above what the CPU supports degrades
 * to the best supported level with a warning so CI matrices that pin
 * BBS_SIMD=avx2 still pass on runners without the ISA.
 */
SimdLevel
resolveStartupLevel()
{
    SimdLevel best = maxSupportedSimdLevel();
    int requested = parseLevel(std::getenv("BBS_SIMD"));
    if (requested < 0)
        return best;
    auto level = static_cast<SimdLevel>(requested);
    if (!simdLevelSupported(level)) {
        warn("BBS_SIMD=", simdLevelName(level),
             " is not supported by this CPU; falling back to ",
             simdLevelName(best));
        return best;
    }
    return level;
}

std::atomic<const SimdKernels *> &
activeTable()
{
    static std::atomic<const SimdKernels *> table{
        tableFor(resolveStartupLevel())};
    return table;
}

} // namespace
} // namespace detail

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
    case SimdLevel::Avx512: return "avx512";
    }
    return "?";
}

SimdLevel
maxSupportedSimdLevel()
{
    static const SimdLevel best = [] {
        if (detail::cpuHasAvx512() &&
            detail::avx512KernelsOrNull() != nullptr)
            return SimdLevel::Avx512;
        if (detail::cpuHasAvx2() && detail::avx2KernelsOrNull() != nullptr)
            return SimdLevel::Avx2;
        return SimdLevel::Scalar;
    }();
    return best;
}

bool
simdLevelSupported(SimdLevel level)
{
    return static_cast<int>(level) <=
           static_cast<int>(maxSupportedSimdLevel());
}

SimdLevel
activeSimdLevel()
{
    return detail::activeTable().load(std::memory_order_relaxed)->level;
}

void
setSimdLevel(SimdLevel level)
{
    BBS_REQUIRE(simdLevelSupported(level), "SIMD level ",
                simdLevelName(level), " is not supported by this CPU "
                "(max: ", simdLevelName(maxSupportedSimdLevel()), ")");
    detail::activeTable().store(detail::tableFor(level),
                                std::memory_order_relaxed);
}

const SimdKernels &
simdKernels()
{
    return *detail::activeTable().load(std::memory_order_relaxed);
}

const SimdKernels &
simdKernelsFor(SimdLevel level)
{
    BBS_REQUIRE(simdLevelSupported(level), "SIMD level ",
                simdLevelName(level), " is not supported by this CPU "
                "(max: ", simdLevelName(maxSupportedSimdLevel()), ")");
    return *detail::tableFor(level);
}

} // namespace bbs
