/**
 * @file
 * OliVe-style outlier-victim pair quantization (ISCA'23), the paper's LLM
 * compression baseline (Fig 17, Table VI).
 *
 * OliVe quantizes to a low uniform precision (4-bit in the paper's
 * comparison) but gives outliers an extended power-of-two range by
 * sacrificing ("victimizing") the adjacent element: the victim is forced to
 * zero and its code space re-used to mark and extend the outlier.
 */
#ifndef BBS_QUANT_OLIVE_HPP
#define BBS_QUANT_OLIVE_HPP

#include <cstdint>

#include "tensor/tensor.hpp"

namespace bbs {

/** Configuration of OliVe quantization. */
struct OliveConfig
{
    int bits = 4;                 ///< uniform precision of normal values
    double outlierThresholdSigma = 3.0; ///< |w| > k*sigma marks an outlier
    std::int64_t groupSize = 32;  ///< per-group scale granularity
};

/** Result of OliVe quantization. */
struct OliveResult
{
    FloatTensor dequantized; ///< fake-quantized weights
    double outlierFraction = 0.0;
    double victimFraction = 0.0;

    /** Bits per weight (uniform; outlier marking reuses victim codes). */
    double effectiveBits = 4.0;
};

/** Quantize with outlier-victim pairing and dequantize back to FP32. */
OliveResult oliveQuantize(const FloatTensor &weights,
                          const OliveConfig &cfg = {});

} // namespace bbs

#endif // BBS_QUANT_OLIVE_HPP
