#include "quant/microscaling.hpp"

#include <algorithm>
#include <cmath>

#include "common/bit_utils.hpp"
#include "common/logging.hpp"

namespace bbs {

namespace {

/**
 * Shared scale of one group: 2^e with e chosen so the max magnitude fits in
 * the element mantissa range.
 */
double
groupScale(std::span<const float> group, int elementBits)
{
    float amax = 0.0f;
    for (float v : group)
        amax = std::max(amax, std::abs(v));
    if (amax == 0.0f)
        return 0.0;
    // Largest representable mantissa magnitude.
    double qmax = static_cast<double>((1 << (elementBits - 1)) - 1);
    int e = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(amax) / qmax)));
    return std::ldexp(1.0, e);
}

} // namespace

FloatTensor
mxQuantizeDequantize(const FloatTensor &weights, const MxConfig &cfg)
{
    BBS_REQUIRE(cfg.elementBits >= 2 && cfg.elementBits <= 8,
                "MX element bits must be in [2, 8]");
    FloatTensor out(weights.shape());
    std::int64_t groups = weights.numGroups(cfg.groupSize);
    std::int32_t qmax = (1 << (cfg.elementBits - 1)) - 1;

    for (std::int64_t g = 0; g < groups; ++g) {
        auto span = weights.group(g, cfg.groupSize);
        double scale = groupScale(span, cfg.elementBits);
        std::int64_t base = g * cfg.groupSize;
        for (std::size_t i = 0; i < span.size(); ++i) {
            double q = 0.0;
            if (scale > 0.0) {
                q = std::nearbyint(static_cast<double>(span[i]) / scale);
                q = std::clamp(q, static_cast<double>(-qmax - 1),
                               static_cast<double>(qmax));
            }
            out.flat(base + static_cast<std::int64_t>(i)) =
                static_cast<float>(q * scale);
        }
    }
    return out;
}

double
mxUnderflowFraction(const FloatTensor &weights, const MxConfig &cfg)
{
    FloatTensor deq = mxQuantizeDequantize(weights, cfg);
    std::int64_t zeroed = 0;
    std::int64_t nonzero = 0;
    for (std::int64_t i = 0; i < weights.numel(); ++i) {
        if (weights.flat(i) != 0.0f) {
            ++nonzero;
            if (deq.flat(i) == 0.0f)
                ++zeroed;
        }
    }
    return nonzero ? static_cast<double>(zeroed) /
                         static_cast<double>(nonzero)
                   : 0.0;
}

} // namespace bbs
