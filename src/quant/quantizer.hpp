/**
 * @file
 * Post-training quantization (PTQ).
 *
 * The baseline for every experiment in the paper is a per-channel
 * symmetrically quantized INT8 model (§III-C); lower-precision PTQ with
 * MSE-optimal clipping is the "naive PTQ" comparison of Figs 1 and 11.
 */
#ifndef BBS_QUANT_QUANTIZER_HPP
#define BBS_QUANT_QUANTIZER_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace bbs {

/** Result of per-channel quantization: codes plus per-channel scales. */
struct QuantizedTensor
{
    Int8Tensor values;           ///< quantized codes
    std::vector<float> scales;   ///< per-output-channel scale factors
    int bits = 8;                ///< precision of the codes

    /** Dequantize back to FP32 (per-channel scale multiply). */
    FloatTensor dequantize() const;
};

/**
 * Per-channel symmetric quantization to @p bits bits.
 *
 * The scale of channel k is max|W_k| / (2^(bits-1) - 1), the standard
 * TensorRT-style symmetric per-channel scheme the paper builds on.
 */
QuantizedTensor quantizePerChannel(const FloatTensor &weights, int bits = 8);

/**
 * Per-channel PTQ with MSE-optimal clipping.
 *
 * For each channel a grid of clipping ratios is searched and the one
 * minimizing quantization MSE is kept — the paper's "naive PTQ" comparison
 * point for sub-8-bit compression. Returns codes in @p bits bits.
 */
QuantizedTensor quantizePerChannelMseClip(const FloatTensor &weights,
                                          int bits);

/**
 * Requantize already-INT8 codes to fewer bits with MSE-optimal clipping,
 * then express the result back on the INT8 grid (so it can be compared
 * level-for-level against the original, as the paper's Fig 1 does).
 *
 * The result has at most 2^bits distinct levels.
 */
Int8Tensor requantizeInt8(const Int8Tensor &codes, int bits);

/**
 * NoisyQuant-style PTQ (Table III comparison): uniform quantization with an
 * additive pre-quantization noise bias that linearizes the rounding error.
 * Implemented as MSE-clipped PTQ with a fixed uniform noise dither.
 */
QuantizedTensor quantizeNoisy(const FloatTensor &weights, int bits,
                              std::uint64_t seed = 7);

} // namespace bbs

#endif // BBS_QUANT_QUANTIZER_HPP
