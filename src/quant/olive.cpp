#include "quant/olive.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace bbs {

OliveResult
oliveQuantize(const FloatTensor &weights, const OliveConfig &cfg)
{
    BBS_REQUIRE(cfg.bits >= 3 && cfg.bits <= 8, "OliVe bits out of range");
    OliveResult res;
    res.dequantized = FloatTensor(weights.shape());
    res.effectiveBits = cfg.bits;

    // Global sigma for outlier detection.
    double acc = 0.0;
    for (std::int64_t i = 0; i < weights.numel(); ++i)
        acc += static_cast<double>(weights.flat(i)) * weights.flat(i);
    double sigma = std::sqrt(acc / std::max<std::int64_t>(1,
                                                          weights.numel()));
    double outlierThresh = cfg.outlierThresholdSigma * sigma;

    std::int32_t qmax = (1 << (cfg.bits - 1)) - 1;
    std::int64_t outliers = 0;
    std::int64_t victims = 0;
    std::int64_t groups = weights.numGroups(cfg.groupSize);

    for (std::int64_t g = 0; g < groups; ++g) {
        auto span = weights.group(g, cfg.groupSize);
        std::int64_t base = g * cfg.groupSize;

        // Per-group scale from non-outlier values only: outliers do not
        // stretch the normal grid (that is the whole point of OliVe).
        float amaxNormal = 0.0f;
        for (float v : span)
            if (std::abs(v) <= outlierThresh)
                amaxNormal = std::max(amaxNormal, std::abs(v));
        double s = amaxNormal > 0.0f
                       ? static_cast<double>(amaxNormal) / qmax
                       : 1.0;

        for (std::size_t i = 0; i < span.size(); ++i) {
            double v = span[i];
            std::int64_t idx = base + static_cast<std::int64_t>(i);
            if (std::abs(v) > outlierThresh) {
                // Outlier: power-of-two magnitude (adaptive exponent code),
                // victimizing the pair neighbour.
                ++outliers;
                double mag = std::abs(v);
                double q = std::ldexp(
                    1.0, static_cast<int>(std::nearbyint(std::log2(mag))));
                res.dequantized.flat(idx) =
                    static_cast<float>(v < 0 ? -q : q);
                // Victim: the even/odd partner within the pair is zeroed
                // (unless it is itself an outlier, handled when visited).
                std::size_t pi = (i % 2 == 0) ? i + 1 : i - 1;
                if (pi < span.size() &&
                    std::abs(span[pi]) <= outlierThresh) {
                    std::int64_t vidx =
                        base + static_cast<std::int64_t>(pi);
                    res.dequantized.flat(vidx) = 0.0f;
                    ++victims;
                }
            } else {
                // Normal value: uniform grid (skip if already victimized
                // by a preceding outlier partner).
                std::size_t pi = (i % 2 == 0) ? i + 1 : i - 1;
                bool victimized =
                    pi < span.size() && std::abs(span[pi]) > outlierThresh;
                if (victimized)
                    continue; // stays zero
                double q = std::nearbyint(v / s);
                q = std::clamp(q, static_cast<double>(-qmax - 1),
                               static_cast<double>(qmax));
                res.dequantized.flat(idx) = static_cast<float>(q * s);
            }
        }
    }

    double n = static_cast<double>(std::max<std::int64_t>(1,
                                                          weights.numel()));
    res.outlierFraction = static_cast<double>(outliers) / n;
    res.victimFraction = static_cast<double>(victims) / n;
    return res;
}

} // namespace bbs
