#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/bit_utils.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"

namespace bbs {

namespace {

/** Round-to-nearest-even quantization of one value with a given scale. */
inline std::int32_t
quantizeValue(float v, float scale, int bits)
{
    if (scale <= 0.0f)
        return 0;
    std::int32_t q = static_cast<std::int32_t>(
        std::nearbyint(static_cast<double>(v) / scale));
    return clampToBits(q, bits);
}

/** Quantization MSE of one channel with a given scale. */
double
channelMse(std::span<const float> ch, float scale, int bits)
{
    double acc = 0.0;
    for (float v : ch) {
        std::int32_t q = quantizeValue(v, scale, bits);
        double r = static_cast<double>(q) * scale;
        acc += (r - v) * (r - v);
    }
    return acc;
}

float
channelAbsMax(std::span<const float> ch)
{
    float m = 0.0f;
    for (float v : ch)
        m = std::max(m, std::abs(v));
    return m;
}

} // namespace

FloatTensor
QuantizedTensor::dequantize() const
{
    FloatTensor out(values.shape());
    std::int64_t channels = values.shape().dim(0);
    std::int64_t cs = values.shape().channelSize();
    for (std::int64_t k = 0; k < channels; ++k) {
        float s = scales[static_cast<std::size_t>(k)];
        auto src = values.channel(k);
        auto dst = out.channel(k);
        for (std::int64_t i = 0; i < cs; ++i)
            dst[static_cast<std::size_t>(i)] =
                static_cast<float>(src[static_cast<std::size_t>(i)]) * s;
    }
    return out;
}

QuantizedTensor
quantizePerChannel(const FloatTensor &weights, int bits)
{
    BBS_REQUIRE(bits >= 2 && bits <= 8, "bits must be in [2, 8], got ",
                bits);
    QuantizedTensor out;
    out.bits = bits;
    out.values = Int8Tensor(weights.shape());
    std::int64_t channels = weights.shape().dim(0);
    out.scales.resize(static_cast<std::size_t>(channels));

    std::int32_t qmax = (1 << (bits - 1)) - 1;
    for (std::int64_t k = 0; k < channels; ++k) {
        auto ch = weights.channel(k);
        float s = channelAbsMax(ch) / static_cast<float>(qmax);
        if (s == 0.0f)
            s = 1.0f;
        out.scales[static_cast<std::size_t>(k)] = s;
        auto dst = out.values.channel(k);
        for (std::size_t i = 0; i < ch.size(); ++i)
            dst[i] = static_cast<std::int8_t>(
                quantizeValue(ch[i], s, bits));
    }
    return out;
}

QuantizedTensor
quantizePerChannelMseClip(const FloatTensor &weights, int bits)
{
    BBS_REQUIRE(bits >= 2 && bits <= 8, "bits must be in [2, 8], got ",
                bits);
    QuantizedTensor out;
    out.bits = bits;
    out.values = Int8Tensor(weights.shape());
    std::int64_t channels = weights.shape().dim(0);
    out.scales.resize(static_cast<std::size_t>(channels));

    std::int32_t qmax = (1 << (bits - 1)) - 1;
    for (std::int64_t k = 0; k < channels; ++k) {
        auto ch = weights.channel(k);
        float amax = channelAbsMax(ch);
        if (amax == 0.0f) {
            out.scales[static_cast<std::size_t>(k)] = 1.0f;
            continue;
        }
        // Search clip ratios; finer precision benefits from tighter clips.
        float bestScale = amax / static_cast<float>(qmax);
        double bestMse = channelMse(ch, bestScale, bits);
        for (double ratio = 0.40; ratio < 1.0; ratio += 0.05) {
            float s = static_cast<float>(ratio) * amax /
                      static_cast<float>(qmax);
            double e = channelMse(ch, s, bits);
            if (e < bestMse) {
                bestMse = e;
                bestScale = s;
            }
        }
        out.scales[static_cast<std::size_t>(k)] = bestScale;
        auto dst = out.values.channel(k);
        for (std::size_t i = 0; i < ch.size(); ++i)
            dst[i] = static_cast<std::int8_t>(
                quantizeValue(ch[i], bestScale, bits));
    }
    return out;
}

Int8Tensor
requantizeInt8(const Int8Tensor &codes, int bits)
{
    BBS_REQUIRE(bits >= 2 && bits < 8, "requantize bits must be in [2, 8)");
    Int8Tensor out(codes.shape());
    std::int64_t channels = codes.shape().dim(0);
    std::int32_t qmax = (1 << (bits - 1)) - 1;

    for (std::int64_t k = 0; k < channels; ++k) {
        auto ch = codes.channel(k);
        std::int32_t amax = 0;
        for (std::int8_t v : ch)
            amax = std::max(amax, std::abs(static_cast<std::int32_t>(v)));
        if (amax == 0)
            continue;

        // Search clipping on the integer grid: step = clip / qmax.
        double bestErr = 1e300;
        double bestStep = static_cast<double>(amax) / qmax;
        for (double ratio = 0.40; ratio <= 1.0001; ratio += 0.05) {
            double step = ratio * static_cast<double>(amax) / qmax;
            if (step < 1.0)
                step = 1.0; // never below the INT8 grid itself
            double err = 0.0;
            for (std::int8_t v : ch) {
                double q = std::nearbyint(static_cast<double>(v) / step);
                q = std::clamp(q, static_cast<double>(-qmax - 1),
                               static_cast<double>(qmax));
                double r = q * step;
                err += (r - v) * (r - v);
            }
            if (err < bestErr) {
                bestErr = err;
                bestStep = step;
            }
        }

        auto dst = out.channel(k);
        for (std::size_t i = 0; i < ch.size(); ++i) {
            double q = std::nearbyint(
                static_cast<double>(ch[i]) / bestStep);
            q = std::clamp(q, static_cast<double>(-qmax - 1),
                           static_cast<double>(qmax));
            double r = std::nearbyint(q * bestStep);
            r = std::clamp(r, -128.0, 127.0);
            dst[i] = static_cast<std::int8_t>(r);
        }
    }
    return out;
}

QuantizedTensor
quantizeNoisy(const FloatTensor &weights, int bits, std::uint64_t seed)
{
    // NoisyQuant adds a fixed uniform dither before rounding; the dither
    // spreads rounding error across levels. We reuse the MSE-clipped search
    // for the scale, then quantize with dither.
    QuantizedTensor base = quantizePerChannelMseClip(weights, bits);
    Rng rng(seed);
    QuantizedTensor out;
    out.bits = bits;
    out.scales = base.scales;
    out.values = Int8Tensor(weights.shape());
    std::int64_t channels = weights.shape().dim(0);
    std::int32_t qmax = (1 << (bits - 1)) - 1;

    for (std::int64_t k = 0; k < channels; ++k) {
        auto ch = weights.channel(k);
        float s = out.scales[static_cast<std::size_t>(k)];
        auto dst = out.values.channel(k);
        for (std::size_t i = 0; i < ch.size(); ++i) {
            double noise = rng.uniformReal(-0.5, 0.5) * 0.5 * s;
            std::int32_t q = static_cast<std::int32_t>(std::nearbyint(
                (static_cast<double>(ch[i]) + noise) / s));
            q = std::clamp(q, -qmax - 1, qmax);
            dst[i] = static_cast<std::int8_t>(q);
        }
    }
    return out;
}

} // namespace bbs
