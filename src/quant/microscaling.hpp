/**
 * @file
 * Microscaling (MX) block data format (Table III comparison).
 *
 * A group of 32 elements shares one 8-bit power-of-two exponent derived from
 * the group's maximum magnitude; each element stores a low-precision
 * two's-complement mantissa. Small values aligned against a large shared
 * exponent underflow to zero — the failure mode the paper contrasts BBS
 * against (§V-B).
 */
#ifndef BBS_QUANT_MICROSCALING_HPP
#define BBS_QUANT_MICROSCALING_HPP

#include <cstdint>

#include "tensor/tensor.hpp"

namespace bbs {

/** Configuration of an MX block format. */
struct MxConfig
{
    int elementBits = 6;        ///< per-element mantissa precision (incl. sign)
    std::int64_t groupSize = 32;

    /** Effective bits per weight including the shared exponent. */
    double
    effectiveBits() const
    {
        return elementBits + 8.0 / static_cast<double>(groupSize);
    }
};

/**
 * Quantize to MX and dequantize back to FP32 ("fake quantization"), so the
 * distortion can be compared against other schemes.
 */
FloatTensor mxQuantizeDequantize(const FloatTensor &weights,
                                 const MxConfig &cfg);

/** Fraction of elements that underflow to zero under the MX format. */
double mxUnderflowFraction(const FloatTensor &weights, const MxConfig &cfg);

} // namespace bbs

#endif // BBS_QUANT_MICROSCALING_HPP
