#include "quant/bitwave.hpp"

#include <algorithm>
#include <array>

#include "common/bit_utils.hpp"
#include "common/logging.hpp"

namespace bbs {

namespace {

/** Magnitude-column occupancy of a sign-magnitude encoded group. */
std::array<bool, 7>
zeroMagnitudeColumns(std::span<const std::uint32_t> sm)
{
    std::array<bool, 7> zero{};
    for (int b = 0; b < 7; ++b) {
        zero[static_cast<std::size_t>(b)] = true;
        for (std::uint32_t v : sm) {
            if ((v >> b) & 1u) {
                zero[static_cast<std::size_t>(b)] = false;
                break;
            }
        }
    }
    return zero;
}

} // namespace

BitwaveGroupResult
bitwavePruneGroup(std::span<const std::int8_t> group, int targetColumns,
                  bool inherentCountsTowardTarget)
{
    BBS_REQUIRE(targetColumns >= 0 && targetColumns <= 7,
                "can prune 0..7 magnitude columns, got ", targetColumns);

    std::vector<std::uint32_t> sm(group.size());
    for (std::size_t i = 0; i < group.size(); ++i)
        sm[i] = toSignMagnitude(group[i]);

    auto zero = zeroMagnitudeColumns(sm);
    BitwaveGroupResult res;
    res.inherentZeroColumns =
        static_cast<int>(std::count(zero.begin(), zero.end(), true));

    // Flip columns from the LSB upward until the target is met.
    int pruned = inherentCountsTowardTarget ? res.inherentZeroColumns : 0;
    int flipped = 0;
    for (int b = 0; b < 7 && pruned < targetColumns; ++b) {
        if (zero[static_cast<std::size_t>(b)])
            continue;
        for (std::uint32_t &v : sm)
            v &= ~(1u << b);
        zero[static_cast<std::size_t>(b)] = true;
        ++pruned;
        ++flipped;
    }

    res.zeroColumns =
        std::min(res.inherentZeroColumns + flipped, 7);
    res.values.resize(group.size());
    for (std::size_t i = 0; i < group.size(); ++i)
        res.values[i] =
            static_cast<std::int8_t>(fromSignMagnitude(sm[i]));
    return res;
}

Int8Tensor
bitwavePrune(const Int8Tensor &codes, std::int64_t groupSize,
             int pruneColumns)
{
    Int8Tensor out(codes.shape());
    std::int64_t groups = codes.numGroups(groupSize);
    for (std::int64_t g = 0; g < groups; ++g) {
        auto span = codes.group(g, groupSize);
        BitwaveGroupResult r = bitwavePruneGroup(span, pruneColumns);
        std::int64_t base = g * groupSize;
        for (std::size_t i = 0; i < r.values.size(); ++i)
            out.flat(base + static_cast<std::int64_t>(i)) = r.values[i];
    }
    return out;
}

double
bitwaveInherentZeroColumns(const Int8Tensor &codes, std::int64_t groupSize)
{
    std::int64_t groups = codes.numGroups(groupSize);
    if (groups == 0)
        return 0.0;
    double total = 0.0;
    for (std::int64_t g = 0; g < groups; ++g) {
        auto span = codes.group(g, groupSize);
        std::vector<std::uint32_t> sm(span.size());
        for (std::size_t i = 0; i < span.size(); ++i)
            sm[i] = toSignMagnitude(span[i]);
        auto zero = zeroMagnitudeColumns(sm);
        total += static_cast<double>(
            std::count(zero.begin(), zero.end(), true));
    }
    return total / static_cast<double>(groups);
}

} // namespace bbs
