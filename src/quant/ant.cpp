#include "quant/ant.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace bbs {

const char *
antTypeName(AntType t)
{
    switch (t) {
      case AntType::Int:
        return "int";
      case AntType::Po2:
        return "po2";
      case AntType::Flint:
        return "flint";
    }
    return "?";
}

std::vector<double>
antCodebook(AntType t, int bits)
{
    BBS_REQUIRE(bits >= 3 && bits <= 8, "ANT bits must be in [3, 8]");
    // One bit is the sign; the rest encode magnitude.
    int magBits = bits - 1;
    int levels = 1 << magBits;
    std::vector<double> cb;
    cb.reserve(static_cast<std::size_t>(levels));

    switch (t) {
      case AntType::Int:
        for (int i = 0; i < levels; ++i)
            cb.push_back(static_cast<double>(i));
        break;
      case AntType::Po2:
        cb.push_back(0.0);
        for (int i = 0; i < levels - 1; ++i)
            cb.push_back(std::ldexp(1.0, i));
        break;
      case AntType::Flint: {
        // Flint: split the code space between an exponent part and a
        // mantissa part; small codes behave like ints (dense), large codes
        // like floats (exponentially spaced). We follow ANT's published
        // flint construction: for each exponent e, 2^(magBits - 1 - e')
        // mantissa steps, approximated here with a 1-mantissa-bit float
        // beyond the dense region.
        int dense = levels / 2;
        for (int i = 0; i < dense; ++i)
            cb.push_back(static_cast<double>(i));
        double v = static_cast<double>(dense);
        for (int i = dense; i < levels; ++i) {
            cb.push_back(v);
            // Exponential spacing with one mantissa bit: x, 1.5x, 2x, 3x...
            double exp2 = std::ldexp(1.0, static_cast<int>(
                std::floor(std::log2(v))));
            v += exp2 / 2.0;
        }
        break;
      }
    }
    return cb;
}

namespace {

/** Quantize one channel to the nearest codebook entry under scale s. */
double
quantizeChannelToCodebook(std::span<const float> ch,
                          const std::vector<double> &cb, double s,
                          std::span<float> out)
{
    double err = 0.0;
    for (std::size_t i = 0; i < ch.size(); ++i) {
        double mag = std::abs(static_cast<double>(ch[i])) / s;
        // Binary search the nearest entry (codebook sorted ascending).
        auto it = std::lower_bound(cb.begin(), cb.end(), mag);
        double best;
        if (it == cb.begin()) {
            best = *it;
        } else if (it == cb.end()) {
            best = cb.back();
        } else {
            double hi = *it, lo = *(it - 1);
            best = (mag - lo <= hi - mag) ? lo : hi;
        }
        double q = (ch[i] < 0 ? -best : best) * s;
        out[i] = static_cast<float>(q);
        err += (q - ch[i]) * (q - ch[i]);
    }
    return err;
}

} // namespace

AntResult
antQuantize(const FloatTensor &weights, int bits)
{
    AntResult res;
    res.bits = bits;
    res.dequantized = FloatTensor(weights.shape());
    std::int64_t channels = weights.shape().dim(0);
    res.perChannel.resize(static_cast<std::size_t>(channels), AntType::Int);

    const AntType types[] = {AntType::Int, AntType::Po2, AntType::Flint};
    std::vector<std::vector<double>> codebooks;
    for (AntType t : types)
        codebooks.push_back(antCodebook(t, bits));

    std::vector<float> scratch;
    for (std::int64_t k = 0; k < channels; ++k) {
        auto ch = weights.channel(k);
        float amax = 0.0f;
        for (float v : ch)
            amax = std::max(amax, std::abs(v));
        if (amax == 0.0f)
            continue;

        scratch.resize(ch.size());
        double bestErr = 1e300;
        for (std::size_t t = 0; t < 3; ++t) {
            const auto &cb = codebooks[t];
            double s = static_cast<double>(amax) / cb.back();
            double err = quantizeChannelToCodebook(ch, cb, s, scratch);
            if (err < bestErr) {
                bestErr = err;
                res.perChannel[static_cast<std::size_t>(k)] = types[t];
                auto dst = res.dequantized.channel(k);
                std::copy(scratch.begin(), scratch.end(), dst.begin());
            }
        }
    }
    return res;
}

} // namespace bbs
