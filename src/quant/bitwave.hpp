/**
 * @file
 * BitWave-style sign-magnitude zero-bit-column pruning (the paper's main
 * bit-sparsity baseline, Figs 1(b), 2(d), 6, 11, 12).
 *
 * BitWave stores weights in sign-magnitude format, skips bit columns that
 * are entirely zero across a group, and enhances sparsity by flipping the
 * remaining one-bits of selected low-significance columns to zero until the
 * target number of pruned columns is reached.
 */
#ifndef BBS_QUANT_BITWAVE_HPP
#define BBS_QUANT_BITWAVE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace bbs {

/** Outcome of pruning one sign-magnitude weight group. */
struct BitwaveGroupResult
{
    /** Modified weights (decoded back to two's complement INT8). */
    std::vector<std::int8_t> values;
    /** Columns (significances) that are zero after pruning, sign excluded. */
    int zeroColumns = 0;
    /** Columns that were already zero before any flip. */
    int inherentZeroColumns = 0;
};

/**
 * Prune @p targetColumns bit columns of a group in sign-magnitude format.
 *
 * With @p inherentCountsTowardTarget (the memory-budget interpretation used
 * by the accuracy comparisons), magnitude columns that are already all-zero
 * count toward the target for free. Without it (BitWave's
 * performance-oriented schedule), @p targetColumns additional columns are
 * flipped beyond the inherent zeros. Flips proceed from the lowest
 * significance upward (flipping high columns would change values by more,
 * see paper Fig 1(b)).
 */
BitwaveGroupResult bitwavePruneGroup(std::span<const std::int8_t> group,
                                     int targetColumns,
                                     bool inherentCountsTowardTarget = true);

/**
 * Apply BitWave pruning to a whole tensor with contiguous groups.
 *
 * @param codes        INT8 weight codes
 * @param groupSize    weights per group (32 in the paper's evaluation)
 * @param pruneColumns bit columns to prune per group
 * @return tensor with flipped bits (still INT8 two's complement)
 */
Int8Tensor bitwavePrune(const Int8Tensor &codes, std::int64_t groupSize,
                        int pruneColumns);

/**
 * Average number of zero magnitude bit-columns per group in sign-magnitude
 * format (no modification), used to size BitWave's memory savings.
 */
double bitwaveInherentZeroColumns(const Int8Tensor &codes,
                                  std::int64_t groupSize);

} // namespace bbs

#endif // BBS_QUANT_BITWAVE_HPP
