/**
 * @file
 * ANT-style adaptive-datatype quantization (MICRO'22), the paper's
 * value-precision baseline (Table II, Figs 12/13/16).
 *
 * ANT picks, per tensor region, the best of several low-bit datatypes:
 * plain integer, power-of-two ("po2") and "flint" (a float-int hybrid whose
 * precision is dense near zero and sparse at large magnitudes). This
 * implementation selects the MSE-best datatype per channel at a fixed bit
 * width — the granularity the paper's comparison (6-bit ANT, no retraining)
 * exercises.
 */
#ifndef BBS_QUANT_ANT_HPP
#define BBS_QUANT_ANT_HPP

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace bbs {

/** Datatypes ANT adaptively selects between. */
enum class AntType
{
    Int,    ///< uniform integer
    Po2,    ///< power-of-two (log) levels
    Flint,  ///< float-int hybrid: exponent bits grow with magnitude
};

const char *antTypeName(AntType t);

/** Result of ANT quantization. */
struct AntResult
{
    FloatTensor dequantized;        ///< fake-quantized weights
    std::vector<AntType> perChannel; ///< selected datatype per channel
    int bits = 6;
};

/**
 * Quantize with the per-channel MSE-best ANT datatype at @p bits precision
 * and dequantize back to FP32.
 */
AntResult antQuantize(const FloatTensor &weights, int bits = 6);

/**
 * The codebook (representable magnitudes, positive half) of an ANT datatype
 * at @p bits precision on a unit scale. Exposed for tests.
 */
std::vector<double> antCodebook(AntType t, int bits);

} // namespace bbs

#endif // BBS_QUANT_ANT_HPP
