/**
 * @file
 * BBMS — the page-aligned, mmap-backed model container ("BOP2"): a
 * fixed 64-byte header, a directory of typed (kind, index, offset,
 * length) extents, and page-aligned payload sections whose byte layout
 * matches the in-memory cache-line-aligned packings EXACTLY —
 * BitSerialMatrix plane words for dense operands, PackedGroup /
 * shift / constant arrays for compressed rows, raw float arrays for the
 * per-layer scales and biases.
 *
 * Because the payload IS the in-memory layout, loading a model is
 * `mmap` + directory validation + pointer fixup: zero deserialization,
 * zero copying, and — the multi-tenant point — N server processes
 * mapping the same container share ONE set of physical pages
 * (MAP_SHARED read-only file pages; bench/micro_store.cpp pins the
 * sharing via /proc/self/smaps Pss accounting and gates the load
 * speedup against PackedOperand::deserialize).
 *
 * `MappedContainer::tryOpen` carries the same contract as
 * `PackedOperand::tryDeserialize`: the container is UNTRUSTED INPUT,
 * and every malformed shape — truncated directory, overlapping or
 * out-of-bounds extents, misaligned offsets, bad magic/version,
 * hostile PackedGroup fields (bits > 8 would index past the 8-plane
 * array inside the SIMD dot kernels; shifts outside 0..8 would be
 * shift-UB in decompress) — is rejected with a diagnostic, never UB
 * (tests/test_store.cpp fuzzes this). Validation reads only the
 * directory and the small metadata sections plus one pass over the
 * group descriptor fields; it never touches the dense plane words, so
 * open cost stays page-fault-bound, not size-bound.
 *
 * The writer (`writeModelContainer` / `writeOperandContainer`, surfaced
 * as `bbs_cli store-pack`) converts in-memory networks or BOP1 operand
 * images into containers. A container holds either one Int8Network
 * (layer sections referencing operand sections) or a bare list of
 * operands (layerCount == 0).
 */
#ifndef BBS_STORE_CONTAINER_HPP
#define BBS_STORE_CONTAINER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/packed_operand.hpp"
#include "nn/int8_infer.hpp"

namespace bbs::store {

/** "BBMS" little-endian. */
inline constexpr std::uint32_t kContainerMagic = 0x534d4242u;
inline constexpr std::uint32_t kContainerVersion = 1;
/** Payload sections start on multiples of this (one page: the mmap
 *  granularity, and a multiple of the 64-byte alignment every kernel
 *  pointer guarantee needs). */
inline constexpr std::uint32_t kContainerAlign = 4096;

/**
 * Fingerprint of the in-memory layout the payload bytes mirror. A
 * container written by a build whose PackedGroup layout (or weight bit
 * width) differs is rejected at open instead of being reinterpreted.
 */
std::uint64_t containerLayoutTag();

/** Directory section kinds. */
enum class SectionKind : std::uint32_t
{
    LayerMeta = 1,   ///< LayerMetaSection, index = layer
    WScales = 2,     ///< float[outFeatures], index = layer
    Bias = 3,        ///< float[outFeatures], index = layer
    OperandMeta = 4, ///< OperandMetaSection, index = operand
    DenseWords = 5,  ///< uint64[8 * rows * colWords], index = operand
    Groups = 6,      ///< PackedGroup[rows * groupsPerRow], index = operand
    Shifts = 7,      ///< int8[rows * groupsPerRow], index = operand
    Constants = 8,   ///< int32[rows * groupsPerRow], index = operand
};

/** Fixed 64-byte file header (all fields little-endian). */
struct FileHeader
{
    std::uint32_t magic = kContainerMagic;
    std::uint32_t version = kContainerVersion;
    std::uint32_t headerBytes = sizeof(FileHeader);
    std::uint32_t entryCount = 0;
    std::uint64_t fileBytes = 0;
    std::uint32_t payloadAlign = kContainerAlign;
    std::uint32_t layerCount = 0;   ///< 0 = bare operand container
    std::uint32_t operandCount = 0;
    std::uint32_t reserved0 = 0;
    std::uint64_t layoutTag = 0;
    std::uint64_t reserved1 = 0;
    std::uint64_t reserved2 = 0;
};
static_assert(sizeof(FileHeader) == 64, "header must stay 64 bytes");

/** DirEntry::reserved bit marking that the low 32 bits hold a CRC-32
 *  of the section payload. Writers since this flag existed always set
 *  it; a clear flag (older containers) means "no checksum stored". */
inline constexpr std::uint64_t kDirHasCrc = 1ull << 32;

/** One directory extent, immediately after the header. */
struct DirEntry
{
    std::uint32_t kind = 0;
    std::uint32_t index = 0;   ///< layer or operand ordinal
    std::uint64_t offset = 0;  ///< absolute, multiple of payloadAlign
    std::uint64_t length = 0;  ///< bytes
    /** Checksum word: bit 32 (kDirHasCrc) says the low 32 bits are the
     *  IEEE CRC-32 of the section payload; bits 33..63 must be zero.
     *  With the flag clear the whole word must be zero (pre-checksum
     *  containers). Open validates the ENCODING only; recomputing the
     *  CRCs is the opt-in verifyChecksums() pass, so open cost stays
     *  page-fault-bound. */
    std::uint64_t reserved = 0;
};
static_assert(sizeof(DirEntry) == 32, "directory entry must stay 32 bytes");

/** Fixed-size payload of a LayerMeta section. */
struct LayerMetaSection
{
    std::int64_t inFeatures = 0;
    std::int64_t outFeatures = 0;
    std::int64_t groupSize = 0;
    std::uint32_t operandIndex = 0;
    std::uint32_t reluAfter = 0;
    std::uint32_t geluAfter = 0;
    std::uint32_t reserved = 0;
};
static_assert(sizeof(LayerMetaSection) == 40);

/** Fixed-size payload of an OperandMeta section. */
struct OperandMetaSection
{
    std::uint32_t packKind = 0; ///< engine::PackKind
    std::uint32_t reserved = 0;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t colWords = 0;     ///< dense only
    std::int64_t groupSize = 0;    ///< compressed only
    std::int64_t groupsPerRow = 0; ///< compressed only
    /** Precomputed so mapping never scans the group payload (the scan
     *  would fault in every page, defeating lazy loading). */
    double meanStoredBits = 0.0;
};
static_assert(sizeof(OperandMetaSection) == 56);

/**
 * A read-only mmap of one container, validated at open. Owns the
 * mapping; unmapped when the last shared_ptr drops — which, through the
 * aliasing shared_ptrs `mapOperand` hands out, is after the last plan
 * or network built over the mapping is gone (the hot-swap drain
 * contract: flip the registry pointer, let in-flight batches finish,
 * the old mapping unmaps itself).
 */
class MappedContainer
{
  public:
    /**
     * Open + validate + map @p path. Returns false (with a diagnostic
     * in @p error when non-null) on any I/O failure or malformed
     * container — same non-fatal contract as tryDeserialize. On
     * success @p out owns the mapping and all sections are validated:
     * every accessor below is then safe.
     */
    static bool tryOpen(const std::string &path,
                        std::shared_ptr<const MappedContainer> &out,
                        std::string *error = nullptr);

    /** tryOpen or BBS_FATAL (deployment-error form). */
    static std::shared_ptr<const MappedContainer>
    open(const std::string &path);

    ~MappedContainer();
    MappedContainer(const MappedContainer &) = delete;
    MappedContainer &operator=(const MappedContainer &) = delete;

    const std::string &path() const { return path_; }
    std::size_t bytes() const { return bytes_; }
    std::size_t layerCount() const { return layers_.size(); }
    std::size_t operandCount() const { return operands_.size(); }
    bool hasModel() const { return !layers_.empty(); }

    /** Advise the kernel to read ahead the whole payload (cold-start
     *  latency) or that it can drop the pages (eviction). */
    void adviseWillNeed() const;
    void adviseDontNeed() const;

    /** Validated layer metadata + per-layer float sections. */
    struct Layer
    {
        LayerMetaSection meta;
        const float *wScales = nullptr; ///< [outFeatures]
        const float *bias = nullptr;    ///< [outFeatures]
    };

    const Layer &layer(std::size_t i) const { return layers_[i]; }

    /** The in-place view packing of operand @p i (points into the
     *  mapping; valid for the container's lifetime). */
    const engine::PackedOperand &operandView(std::size_t i) const
    {
        return operandViews_[i];
    }

    /** Stored meanStoredBits of operand @p i (OperandMeta). */
    double operandStoredBits(std::size_t i) const
    {
        return operands_[i].meanStoredBits;
    }

    /** True when every directory entry carries a stored CRC (kDirHasCrc
     *  set). Containers written before checksums existed report false
     *  and verifyChecksums() skips their sections. */
    bool hasChecksums() const;

    /**
     * Recompute each checksummed section's CRC-32 over the mapped
     * payload and compare with the stored value. This is the one
     * deliberate full-payload read in the store path: it faults in
     * every section it checks, so it is opt-in (store-info --verify,
     * StoreConfig::verifyChecksums) rather than part of tryOpen.
     * Returns false (with a diagnostic in @p error when non-null) on
     * the first mismatch.
     */
    bool verifyChecksums(std::string *error = nullptr) const;

  private:
    MappedContainer() = default;

    friend engine::PackedOperand
    mapOperand(const std::shared_ptr<const MappedContainer> &c,
               std::size_t i);
    friend Int8Network
    mapModel(const std::shared_ptr<const MappedContainer> &c);

    std::string path_;
    const std::uint8_t *base_ = nullptr;
    std::size_t bytes_ = 0;
    /** Validated directory, kept for verifyChecksums(). */
    std::vector<DirEntry> dir_;
    std::vector<OperandMetaSection> operands_;
    std::vector<Layer> layers_;
    /** View objects the aliasing shared_ptrs in mapOperand point at:
     *  BitSerialMatrix / CompressedRowPlanes in view mode over the
     *  mapping, one per operand, built once at open. */
    std::vector<BitSerialMatrix> denseViews_;
    std::vector<CompressedRowPlanes> rowViews_;
    std::vector<engine::PackedOperand> operandViews_;
};

/**
 * Mapped-view PackedOperand over operand @p i of @p c: non-owning plane
 * pointers into the mapping, with the container's lifetime captured in
 * the operand's shared payload (the operand — and any MatmulPlan built
 * over it — keeps the mapping alive). Plan runs over it are
 * bit-identical to the owned path (tests/test_store.cpp pins this).
 */
engine::PackedOperand
mapOperand(const std::shared_ptr<const MappedContainer> &c, std::size_t i);

/**
 * Build the container's Int8Network over mapped planes: each layer's
 * CompressedRowPlanes is a view into the mapping (shared with its
 * MatmulPlan), wScales/bias are copied (tiny), and the network's layers
 * keep the mapping alive. Requires hasModel().
 */
Int8Network mapModel(const std::shared_ptr<const MappedContainer> &c);

/**
 * Pack @p net into a BBMS container at @p path (atomic: written to a
 * temp file then renamed). Returns the container size in bytes.
 */
std::size_t writeModelContainer(const Int8Network &net,
                                const std::string &path);

/** Pack bare operands (no network structure) into a container. */
std::size_t
writeOperandContainer(const std::vector<engine::PackedOperand> &ops,
                      const std::string &path);

} // namespace bbs::store

#endif // BBS_STORE_CONTAINER_HPP
