#include "store/container.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/bit_utils.hpp"
#include "common/logging.hpp"
#include "engine/session.hpp"

namespace bbs::store {

// The payload sections are reinterpreted in place, so the file format
// is pinned to these layouts; containerLayoutTag() rejects containers
// written by a build where any of them moved.
static_assert(sizeof(PackedGroup) == 2 * kCacheLineBytes,
              "PackedGroup layout is part of the container format");
static_assert(offsetof(PackedGroup, planes) == 0);
static_assert(offsetof(PackedGroup, size) == 64);
static_assert(offsetof(PackedGroup, bits) == 68);
static_assert(kWeightBits == 8);

std::uint64_t
containerLayoutTag()
{
    return (static_cast<std::uint64_t>(sizeof(PackedGroup)) << 32) |
           (static_cast<std::uint64_t>(offsetof(PackedGroup, size)) << 24) |
           (static_cast<std::uint64_t>(offsetof(PackedGroup, bits)) << 16) |
           (static_cast<std::uint64_t>(kRowPlaneWordAlign) << 8) |
           static_cast<std::uint64_t>(kWeightBits);
}

namespace {

/** Overflow-checked a * b. */
bool
mulOk(std::uint64_t a, std::uint64_t b, std::uint64_t &out)
{
    if (b != 0 && a > UINT64_MAX / b)
        return false;
    out = a * b;
    return true;
}

std::uint64_t
alignUp(std::uint64_t v, std::uint64_t a)
{
    return (v + a - 1) / a * a;
}

// ------------------------------------------------------------------ writer

/** One pending payload section: descriptor + source bytes. */
struct PendingSection
{
    SectionKind kind;
    std::uint32_t index;
    const void *data;
    std::uint64_t length;
};

/**
 * Lay out and stream @p sections after the header + directory, each on
 * a payloadAlign boundary, to @p path atomically (temp file + rename).
 * The small metadata structs referenced by @p sections must stay alive
 * across the call (the caller keeps them in deques/vectors).
 */
std::size_t
writeContainer(std::vector<PendingSection> &sections,
               std::uint32_t layerCount, std::uint32_t operandCount,
               const std::string &path)
{
    FileHeader header;
    header.entryCount = static_cast<std::uint32_t>(sections.size());
    header.layerCount = layerCount;
    header.operandCount = operandCount;
    header.layoutTag = containerLayoutTag();

    std::vector<DirEntry> dir(sections.size());
    std::uint64_t cursor = alignUp(
        sizeof(FileHeader) + sections.size() * sizeof(DirEntry),
        kContainerAlign);
    for (std::size_t i = 0; i < sections.size(); ++i) {
        dir[i].kind = static_cast<std::uint32_t>(sections[i].kind);
        dir[i].index = sections[i].index;
        dir[i].offset = cursor;
        dir[i].length = sections[i].length;
        dir[i].reserved =
            kDirHasCrc |
            crc32(sections[i].data, sections[i].length);
        cursor = alignUp(cursor + sections[i].length, kContainerAlign);
    }
    header.fileBytes = cursor;

    std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    BBS_REQUIRE(out.good(), "cannot open ", tmp, " for writing");
    auto pad = [&](std::uint64_t upto) {
        static const char zeros[4096] = {};
        std::uint64_t at = static_cast<std::uint64_t>(out.tellp());
        while (at < upto) {
            std::uint64_t n = std::min<std::uint64_t>(upto - at,
                                                      sizeof(zeros));
            out.write(zeros, static_cast<std::streamsize>(n));
            at += n;
        }
    };
    out.write(reinterpret_cast<const char *>(&header), sizeof(header));
    out.write(reinterpret_cast<const char *>(dir.data()),
              static_cast<std::streamsize>(dir.size() * sizeof(DirEntry)));
    for (std::size_t i = 0; i < sections.size(); ++i) {
        pad(dir[i].offset);
        out.write(reinterpret_cast<const char *>(sections[i].data),
                  static_cast<std::streamsize>(sections[i].length));
    }
    pad(header.fileBytes);
    out.close();
    BBS_REQUIRE(out.good(), "write to ", tmp, " failed");
    BBS_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot rename ", tmp, " to ", path, ": ",
                std::strerror(errno));
    return static_cast<std::size_t>(header.fileBytes);
}

/** Append the sections describing one operand (meta + payload). */
void
appendOperandSections(const engine::PackedOperand &op, std::uint32_t index,
                      std::vector<OperandMetaSection> &metas,
                      std::vector<PendingSection> &sections)
{
    BBS_REQUIRE(!op.empty(), "cannot pack an empty operand");
    OperandMetaSection meta;
    meta.packKind = static_cast<std::uint32_t>(op.kind());
    meta.rows = op.rows();
    meta.cols = op.cols();
    meta.meanStoredBits = op.meanStoredBits();
    if (op.kind() == engine::PackKind::DenseBitPlanes) {
        const BitSerialMatrix &m = op.dense();
        meta.colWords = m.colWords();
        metas.push_back(meta);
        sections.push_back({SectionKind::OperandMeta, index,
                            &metas.back(), sizeof(OperandMetaSection)});
        std::span<const std::uint64_t> words = m.planeWords();
        sections.push_back({SectionKind::DenseWords, index, words.data(),
                            words.size_bytes()});
        return;
    }
    const CompressedRowPlanes &p = op.compressedRows();
    meta.groupSize = p.groupSize();
    meta.groupsPerRow = p.groupsPerRow();
    metas.push_back(meta);
    sections.push_back({SectionKind::OperandMeta, index, &metas.back(),
                        sizeof(OperandMetaSection)});
    sections.push_back({SectionKind::Groups, index,
                        p.packedGroups().data(),
                        p.packedGroups().size_bytes()});
    sections.push_back({SectionKind::Shifts, index, p.shifts().data(),
                        p.shifts().size_bytes()});
    sections.push_back({SectionKind::Constants, index,
                        p.constants().data(),
                        p.constants().size_bytes()});
}

} // namespace

std::size_t
writeModelContainer(const Int8Network &net, const std::string &path)
{
    const auto &layers = net.layers();
    BBS_REQUIRE(!layers.empty(), "network has no layers to pack");
    std::vector<PendingSection> sections;
    // Reserved up front: PendingSection keeps raw pointers into these.
    std::vector<OperandMetaSection> operandMetas;
    std::vector<LayerMetaSection> layerMetas;
    operandMetas.reserve(layers.size());
    layerMetas.reserve(layers.size());

    for (std::size_t i = 0; i < layers.size(); ++i) {
        const Int8LinearLayer &l = layers[i];
        LayerMetaSection meta;
        meta.inFeatures = l.inFeatures;
        meta.outFeatures = l.outFeatures();
        meta.groupSize = l.groupSize;
        meta.operandIndex = static_cast<std::uint32_t>(i);
        meta.reluAfter = l.reluAfter ? 1 : 0;
        meta.geluAfter = l.geluAfter ? 1 : 0;
        layerMetas.push_back(meta);
        std::uint32_t index = static_cast<std::uint32_t>(i);
        sections.push_back({SectionKind::LayerMeta, index,
                            &layerMetas.back(),
                            sizeof(LayerMetaSection)});
        sections.push_back({SectionKind::WScales, index, l.wScales.data(),
                            l.wScales.size() * sizeof(float)});
        sections.push_back({SectionKind::Bias, index, l.bias.data().data(),
                            l.bias.data().size() * sizeof(float)});
        appendOperandSections(
            engine::PackedOperand::fromPrepared(l.planes), index,
            operandMetas, sections);
    }
    return writeContainer(sections,
                          static_cast<std::uint32_t>(layers.size()),
                          static_cast<std::uint32_t>(layers.size()), path);
}

std::size_t
writeOperandContainer(const std::vector<engine::PackedOperand> &ops,
                      const std::string &path)
{
    BBS_REQUIRE(!ops.empty(), "no operands to pack");
    std::vector<PendingSection> sections;
    std::vector<OperandMetaSection> operandMetas;
    operandMetas.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        appendOperandSections(ops[i], static_cast<std::uint32_t>(i),
                              operandMetas, sections);
    return writeContainer(sections, 0,
                          static_cast<std::uint32_t>(ops.size()), path);
}

// ------------------------------------------------------------------ reader

MappedContainer::~MappedContainer()
{
    if (base_ != nullptr)
        ::munmap(const_cast<std::uint8_t *>(base_), bytes_);
}

void
MappedContainer::adviseWillNeed() const
{
    if (base_ != nullptr)
        ::madvise(const_cast<std::uint8_t *>(base_), bytes_,
                  MADV_WILLNEED);
}

void
MappedContainer::adviseDontNeed() const
{
    if (base_ != nullptr)
        ::madvise(const_cast<std::uint8_t *>(base_), bytes_,
                  MADV_DONTNEED);
}

bool
MappedContainer::tryOpen(const std::string &path,
                         std::shared_ptr<const MappedContainer> &out,
                         std::string *error)
{
    auto fail = [error](auto &&...parts) {
        if (error != nullptr)
            *error = bbs::detail::concatMessage(
                std::forward<decltype(parts)>(parts)...);
        return false;
    };

    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return fail("cannot open ", path, ": ", std::strerror(errno));
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return fail(path, " is not a regular file");
    }
    auto bytes = static_cast<std::size_t>(st.st_size);
    if (bytes < sizeof(FileHeader)) {
        ::close(fd);
        return fail(path, " is too small to hold a container header");
    }
    // MAP_SHARED + PROT_READ: file-backed read-only pages, so every
    // process mapping this container shares one physical copy.
    void *base = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED)
        return fail("mmap of ", path, " failed: ", std::strerror(errno));

    // The mapping is owned from here on: any validation failure below
    // destroys `c`, which munmaps.
    std::shared_ptr<MappedContainer> c(new MappedContainer);
    c->path_ = path;
    c->base_ = static_cast<const std::uint8_t *>(base);
    c->bytes_ = bytes;

    FileHeader header;
    std::memcpy(&header, c->base_, sizeof(header));
    if (header.magic != kContainerMagic)
        return fail("not a BBMS container (bad magic)");
    if (header.version != kContainerVersion)
        return fail("unsupported container version ", header.version);
    if (header.headerBytes != sizeof(FileHeader))
        return fail("corrupt container: bad header size");
    if (header.fileBytes != bytes)
        return fail("corrupt container: header says ", header.fileBytes,
                    " bytes, file holds ", bytes);
    if (header.layoutTag != containerLayoutTag())
        return fail("container written for an incompatible in-memory "
                    "layout (layout tag mismatch)");
    std::uint64_t align = header.payloadAlign;
    if (align < kCacheLineBytes || align > (1u << 20) ||
        (align & (align - 1)) != 0)
        return fail("corrupt container: bad payload alignment ", align);

    // Directory bounds before touching any entry: entryCount is
    // attacker-controlled.
    std::uint64_t dirBytes;
    if (header.entryCount > (1u << 20) ||
        !mulOk(header.entryCount, sizeof(DirEntry), dirBytes) ||
        sizeof(FileHeader) + dirBytes > bytes)
        return fail("corrupt container: directory exceeds the file");
    std::uint64_t dirEnd = sizeof(FileHeader) + dirBytes;

    std::vector<DirEntry> dir(header.entryCount);
    std::memcpy(dir.data(), c->base_ + sizeof(FileHeader), dirBytes);

    // Per-extent validation, overflow-safe: length first, then offset
    // against the remaining room (offset + length could wrap).
    for (const DirEntry &e : dir) {
        if (e.kind < static_cast<std::uint32_t>(SectionKind::LayerMeta) ||
            e.kind > static_cast<std::uint32_t>(SectionKind::Constants))
            return fail("corrupt container: unknown section kind ",
                        e.kind);
        if (e.length == 0 || e.length > bytes ||
            e.offset > bytes - e.length)
            return fail("corrupt container: section extent out of "
                        "bounds");
        if (e.offset < dirEnd)
            return fail("corrupt container: section overlaps the "
                        "directory");
        if (e.offset % align != 0)
            return fail("corrupt container: misaligned section offset ",
                        e.offset);
        // Checksum-word encoding (cheap, structural — the CRCs
        // themselves are only recomputed by verifyChecksums()): with
        // kDirHasCrc set only the low 32 bits may be non-zero; with it
        // clear the whole word must be zero.
        if ((e.reserved & kDirHasCrc) != 0
                ? (e.reserved >> 33) != 0
                : e.reserved != 0)
            return fail("corrupt container: malformed directory "
                        "checksum word");
    }

    // No two extents may overlap: a directory aliasing one payload
    // under two types would let a validated-as-groups extent be
    // reinterpreted as something else.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
    extents.reserve(dir.size());
    for (const DirEntry &e : dir)
        extents.emplace_back(e.offset, e.length);
    std::sort(extents.begin(), extents.end());
    for (std::size_t i = 1; i < extents.size(); ++i)
        if (extents[i].first <
            extents[i - 1].first + extents[i - 1].second)
            return fail("corrupt container: overlapping sections");

    auto findSection = [&](SectionKind kind,
                           std::uint32_t index) -> const DirEntry * {
        const DirEntry *found = nullptr;
        for (const DirEntry &e : dir) {
            if (e.kind != static_cast<std::uint32_t>(kind) ||
                e.index != index)
                continue;
            if (found != nullptr)
                return nullptr; // duplicates are corruption
            found = &e;
        }
        return found;
    };

    // ---------------------------------------------------- operands
    if (header.operandCount > header.entryCount)
        return fail("corrupt container: operand count exceeds the "
                    "directory");
    c->operands_.reserve(header.operandCount);
    c->denseViews_.resize(header.operandCount);
    c->rowViews_.resize(header.operandCount);
    c->operandViews_.resize(header.operandCount);
    for (std::uint32_t i = 0; i < header.operandCount; ++i) {
        const DirEntry *metaEntry = findSection(SectionKind::OperandMeta,
                                                i);
        if (metaEntry == nullptr ||
            metaEntry->length != sizeof(OperandMetaSection))
            return fail("corrupt container: operand ", i,
                        " metadata missing or malformed");
        OperandMetaSection meta;
        std::memcpy(&meta, c->base_ + metaEntry->offset, sizeof(meta));
        if (meta.rows <= 0 || meta.cols <= 0)
            return fail("corrupt container: operand ", i,
                        " has a non-positive shape");

        if (meta.packKind ==
            static_cast<std::uint32_t>(engine::PackKind::DenseBitPlanes)) {
            if (meta.colWords !=
                BitSerialMatrix::paddedColWords(meta.cols))
                return fail("corrupt container: operand ", i,
                            " dense col-word count mismatch");
            const DirEntry *words = findSection(SectionKind::DenseWords,
                                                i);
            std::uint64_t wordCount, wordBytes;
            if (words == nullptr ||
                !mulOk(static_cast<std::uint64_t>(meta.rows) *
                           static_cast<std::uint64_t>(kWeightBits),
                       static_cast<std::uint64_t>(meta.colWords),
                       wordCount) ||
                !mulOk(wordCount, sizeof(std::uint64_t), wordBytes) ||
                words->length != wordBytes)
                return fail("corrupt container: operand ", i,
                            " dense plane extent mismatch");
            c->denseViews_[i] = BitSerialMatrix::viewExternal(
                reinterpret_cast<const std::uint64_t *>(c->base_ +
                                                        words->offset),
                meta.rows, meta.cols);
            c->operandViews_[i] = engine::PackedOperand::mappedDense(
                std::shared_ptr<const BitSerialMatrix>(
                    std::shared_ptr<void>(), &c->denseViews_[i]));
        } else if (meta.packKind ==
                   static_cast<std::uint32_t>(
                       engine::PackKind::CompressedRows)) {
            if (meta.groupSize < 1 || meta.groupSize > 64 ||
                meta.groupsPerRow !=
                    (meta.cols + meta.groupSize - 1) / meta.groupSize)
                return fail("corrupt container: operand ", i,
                            " group structure mismatch");
            if (!(meta.meanStoredBits >= 0.0 &&
                  meta.meanStoredBits <= 8.0))
                return fail("corrupt container: operand ", i,
                            " stored-bit mean out of range");
            std::uint64_t count, groupBytes, constBytes;
            if (!mulOk(static_cast<std::uint64_t>(meta.rows),
                       static_cast<std::uint64_t>(meta.groupsPerRow),
                       count) ||
                !mulOk(count, sizeof(PackedGroup), groupBytes) ||
                !mulOk(count, sizeof(std::int32_t), constBytes))
                return fail("corrupt container: operand ", i,
                            " group count overflows");
            const DirEntry *groups = findSection(SectionKind::Groups, i);
            const DirEntry *shifts = findSection(SectionKind::Shifts, i);
            const DirEntry *constants =
                findSection(SectionKind::Constants, i);
            if (groups == nullptr || groups->length != groupBytes ||
                shifts == nullptr || shifts->length != count ||
                constants == nullptr || constants->length != constBytes)
                return fail("corrupt container: operand ", i,
                            " compressed extents mismatch");

            // Hostile payload scan — the two fields the kernels index
            // and shift by. bits > 8 would read past the 8-plane array
            // inside compressedGroupDot; a group size differing from
            // the column tiling would make decompress() write out of
            // bounds; shifts outside 0..8 are shift-UB. This pass
            // touches only the 128-byte group descriptors and the
            // shift bytes, not the dense plane words.
            const auto *pg = reinterpret_cast<const PackedGroup *>(
                c->base_ + groups->offset);
            const auto *sh = reinterpret_cast<const std::int8_t *>(
                c->base_ + shifts->offset);
            std::int64_t groupsPerRow = meta.groupsPerRow;
            for (std::uint64_t g = 0; g < count; ++g) {
                std::int64_t inRow =
                    static_cast<std::int64_t>(g) % groupsPerRow;
                std::int64_t members = std::min<std::int64_t>(
                    meta.groupSize, meta.cols - inRow * meta.groupSize);
                if (pg[g].size != members)
                    return fail("corrupt container: operand ", i,
                                " group ", g, " size ", pg[g].size,
                                " does not tile the columns");
                if (pg[g].bits < 0 || pg[g].bits > kWeightBits)
                    return fail("corrupt container: operand ", i,
                                " group ", g, " claims ", pg[g].bits,
                                " stored bit planes");
                if (sh[g] < 0 || sh[g] > kWeightBits)
                    return fail("corrupt container: operand ", i,
                                " group ", g, " shift ",
                                static_cast<int>(sh[g]),
                                " out of range");
            }
            c->rowViews_[i] = CompressedRowPlanes::viewExternal(
                pg, sh,
                reinterpret_cast<const std::int32_t *>(
                    c->base_ + constants->offset),
                meta.rows, meta.cols, meta.groupSize);
            c->operandViews_[i] = engine::PackedOperand::mappedCompressed(
                std::shared_ptr<const CompressedRowPlanes>(
                    std::shared_ptr<void>(), &c->rowViews_[i]),
                meta.meanStoredBits);
        } else {
            return fail("corrupt container: operand ", i,
                        " has unknown pack kind ", meta.packKind);
        }
        c->operands_.push_back(meta);
    }

    // ------------------------------------------------------ layers
    if (header.layerCount > header.entryCount)
        return fail("corrupt container: layer count exceeds the "
                    "directory");
    c->layers_.reserve(header.layerCount);
    for (std::uint32_t i = 0; i < header.layerCount; ++i) {
        const DirEntry *metaEntry = findSection(SectionKind::LayerMeta, i);
        if (metaEntry == nullptr ||
            metaEntry->length != sizeof(LayerMetaSection))
            return fail("corrupt container: layer ", i,
                        " metadata missing or malformed");
        Layer layer;
        std::memcpy(&layer.meta, c->base_ + metaEntry->offset,
                    sizeof(LayerMetaSection));
        const LayerMetaSection &m = layer.meta;
        if (m.operandIndex >= header.operandCount)
            return fail("corrupt container: layer ", i,
                        " references operand ", m.operandIndex,
                        " of ", header.operandCount);
        const OperandMetaSection &op = c->operands_[m.operandIndex];
        if (op.packKind != static_cast<std::uint32_t>(
                               engine::PackKind::CompressedRows) ||
            m.inFeatures != op.cols || m.outFeatures != op.rows ||
            m.groupSize != op.groupSize)
            return fail("corrupt container: layer ", i,
                        " shape disagrees with its operand");
        if (m.reluAfter > 1 || m.geluAfter > 1 ||
            (m.reluAfter == 1 && m.geluAfter == 1))
            return fail("corrupt container: layer ", i,
                        " activation flags malformed");
        if (i > 0 &&
            c->layers_.back().meta.outFeatures != m.inFeatures)
            return fail("corrupt container: layer ", i,
                        " input width breaks the layer chain");
        std::uint64_t floatBytes;
        if (!mulOk(static_cast<std::uint64_t>(m.outFeatures),
                   sizeof(float), floatBytes))
            return fail("corrupt container: layer ", i,
                        " feature count overflows");
        const DirEntry *wScales = findSection(SectionKind::WScales, i);
        const DirEntry *bias = findSection(SectionKind::Bias, i);
        if (wScales == nullptr || wScales->length != floatBytes ||
            bias == nullptr || bias->length != floatBytes)
            return fail("corrupt container: layer ", i,
                        " scale/bias extents mismatch");
        layer.wScales = reinterpret_cast<const float *>(c->base_ +
                                                        wScales->offset);
        layer.bias = reinterpret_cast<const float *>(c->base_ +
                                                     bias->offset);
        c->layers_.push_back(layer);
    }

    c->dir_ = std::move(dir);
    out = std::move(c);
    return true;
}

bool
MappedContainer::hasChecksums() const
{
    for (const DirEntry &e : dir_)
        if ((e.reserved & kDirHasCrc) == 0)
            return false;
    return !dir_.empty();
}

bool
MappedContainer::verifyChecksums(std::string *error) const
{
    for (std::size_t i = 0; i < dir_.size(); ++i) {
        const DirEntry &e = dir_[i];
        if ((e.reserved & kDirHasCrc) == 0)
            continue; // pre-checksum container
        std::uint32_t stored = static_cast<std::uint32_t>(e.reserved);
        std::uint32_t actual = crc32(base_ + e.offset, e.length);
        if (stored != actual) {
            if (error != nullptr)
                *error = bbs::detail::concatMessage(
                    path_, ": section ", i, " (kind ", e.kind,
                    ", index ", e.index, ") checksum mismatch: stored ",
                    stored, ", payload hashes to ", actual);
            return false;
        }
    }
    return true;
}

std::shared_ptr<const MappedContainer>
MappedContainer::open(const std::string &path)
{
    std::shared_ptr<const MappedContainer> c;
    std::string error;
    if (!tryOpen(path, c, &error))
        BBS_FATAL(error);
    return c;
}

engine::PackedOperand
mapOperand(const std::shared_ptr<const MappedContainer> &c, std::size_t i)
{
    BBS_REQUIRE(c != nullptr && i < c->operandCount(),
                "operand index out of range");
    const OperandMetaSection &meta = c->operands_[i];
    if (meta.packKind ==
        static_cast<std::uint32_t>(engine::PackKind::DenseBitPlanes))
        // Aliasing shared_ptr: shares the container's control block but
        // points at the view object, so the operand (and every plan
        // built on it) keeps the mapping alive.
        return engine::PackedOperand::mappedDense(
            std::shared_ptr<const BitSerialMatrix>(c,
                                                   &c->denseViews_[i]));
    return engine::PackedOperand::mappedCompressed(
        std::shared_ptr<const CompressedRowPlanes>(c, &c->rowViews_[i]),
        meta.meanStoredBits);
}

Int8Network
mapModel(const std::shared_ptr<const MappedContainer> &c)
{
    BBS_REQUIRE(c != nullptr && c->hasModel(),
                "container holds no model layers");
    std::vector<Int8LinearLayer> layers;
    layers.reserve(c->layerCount());
    for (std::size_t i = 0; i < c->layerCount(); ++i) {
        const MappedContainer::Layer &src = c->layer(i);
        const std::size_t opIdx = src.meta.operandIndex;
        Int8LinearLayer layer;
        layer.planes = std::shared_ptr<const CompressedRowPlanes>(
            c, &c->rowViews_[opIdx]);
        layer.plan = engine::defaultSession().plan(mapOperand(c, opIdx));
        layer.inFeatures = src.meta.inFeatures;
        layer.groupSize = src.meta.groupSize;
        auto outF = static_cast<std::size_t>(src.meta.outFeatures);
        // Scales and bias are copied out of the mapping: per-output-
        // channel floats, tiny next to the planes, and keeping them
        // owned means the float tensors need no view machinery.
        layer.wScales.assign(src.wScales, src.wScales + outF);
        layer.bias = FloatTensor(
            Shape{src.meta.outFeatures},
            std::vector<float>(src.bias, src.bias + outF));
        layer.reluAfter = src.meta.reluAfter == 1;
        layer.geluAfter = src.meta.geluAfter == 1;
        layers.push_back(std::move(layer));
    }
    return Int8Network::fromLayers(std::move(layers));
}

} // namespace bbs::store
