/**
 * @file
 * ModelStore — the process's resident-model cache over BBMS containers:
 * open/verify/map on first request, refcounted mapped models shared by
 * every caller, and LRU eviction of unpinned models under a configurable
 * byte budget.
 *
 * A loaded model is a `MappedModel`: the mapped Int8Network plus the
 * container whose pages back it. The store hands out
 * `shared_ptr<const MappedModel>`; while any caller (a ModelRegistry
 * entry, an in-flight batch's plan) holds one, the model is PINNED —
 * eviction skips it, because unmapping pages under a running kernel is
 * exactly the use-after-free the refcounting exists to prevent. Eviction
 * drops the store's own reference and advises the kernel the pages can
 * go; physical reclamation is the kernel's business (and pages shared
 * with another process mapping the same container stay resident there).
 *
 * The budget comes from StoreConfig::budgetBytes, or — when that is 0 —
 * the `BBS_STORE_BUDGET` environment variable ("512M", "2G", "800K",
 * plain bytes otherwise; unset or unparsable means unlimited). The
 * budget bounds CACHED residency, not a single load: a model larger
 * than the whole budget still loads (it must serve), it just evicts
 * everything else unpinned.
 *
 * Load/hit/eviction/failure counts, resident bytes/models and load
 * latency are published to an obs::Registry (global() by default) under
 * `bbs_store_*`.
 */
#ifndef BBS_STORE_MODEL_STORE_HPP
#define BBS_STORE_MODEL_STORE_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "store/container.hpp"

namespace bbs::store {

/**
 * Parse a byte-size string: a non-negative integer with an optional
 * K/M/G suffix (binary multiples, case-insensitive). Returns 0 on empty
 * or malformed input — which the store reads as "unlimited".
 */
std::uint64_t parseByteSize(const std::string &text);

struct StoreConfig
{
    /** Resident-byte budget; 0 = take BBS_STORE_BUDGET from the
     *  environment (unset/unparsable = unlimited). */
    std::uint64_t budgetBytes = 0;
    /** madvise(WILLNEED) each freshly mapped container, prefaulting the
     *  payload ahead of first use (cold-start latency over lazy
     *  faulting). */
    bool willNeed = false;
    /** Recompute every section's CRC-32 against the directory on first
     *  map and reject the container on mismatch. Opt-in: it reads the
     *  full payload, trading the lazy-fault open for end-to-end
     *  corruption detection at load time. */
    bool verifyChecksums = false;
    /** Metrics sink; nullptr = obs::Registry::global(). */
    obs::Registry *registry = nullptr;
};

/** One resident model: the mapped network + the mapping backing it. */
struct MappedModel
{
    std::string path;
    std::shared_ptr<const Int8Network> network;
    std::shared_ptr<const MappedContainer> container;
    std::size_t bytes = 0; ///< container file bytes (budget accounting)
};

class ModelStore
{
  public:
    explicit ModelStore(StoreConfig config = {});
    ModelStore(const ModelStore &) = delete;
    ModelStore &operator=(const ModelStore &) = delete;

    /**
     * Get @p path's model, mapping it on first request (non-fatal
     * tryOpen contract: a malformed container returns false with a
     * diagnostic). A cache hit bumps the entry's recency; a miss maps,
     * inserts, then evicts LRU unpinned entries while over budget.
     */
    bool tryLoad(const std::string &path,
                 std::shared_ptr<const MappedModel> &out,
                 std::string *error = nullptr);

    /** tryLoad or BBS_FATAL. */
    std::shared_ptr<const MappedModel> load(const std::string &path);

    /** Drop every unpinned entry regardless of budget. */
    void evictUnpinned();

    std::uint64_t budgetBytes() const { return budget_; }
    std::size_t residentBytes() const;
    std::size_t residentModels() const;

  private:
    struct Entry
    {
        std::string path;
        std::shared_ptr<const MappedModel> model;
        std::uint64_t lastUse = 0;
    };

    /** Evict LRU unpinned entries until within budget (mutex_ held). */
    void evictOverBudget();
    void publishResidency();

    mutable std::mutex mutex_;
    std::uint64_t budget_ = 0;
    bool willNeed_ = false;
    bool verifyChecksums_ = false;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;

    obs::Counter &loads_;
    obs::Counter &loadFailures_;
    obs::Counter &hits_;
    obs::Counter &evictions_;
    obs::Gauge &residentBytes_;
    obs::Gauge &residentModels_;
    obs::Histogram &loadLatencyUs_;
};

} // namespace bbs::store

#endif // BBS_STORE_MODEL_STORE_HPP
