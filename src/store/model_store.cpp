#include "store/model_store.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>

#include "common/logging.hpp"

namespace bbs::store {

std::uint64_t
parseByteSize(const std::string &text)
{
    if (text.empty())
        return 0;
    std::size_t pos = 0;
    std::uint64_t value = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
        std::uint64_t digit =
            static_cast<std::uint64_t>(text[pos] - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return 0;
        value = value * 10 + digit;
        ++pos;
    }
    if (pos == 0)
        return 0;
    if (pos == text.size())
        return value;
    if (pos + 1 != text.size())
        return 0;
    std::uint64_t shift = 0;
    switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
    case 'K': shift = 10; break;
    case 'M': shift = 20; break;
    case 'G': shift = 30; break;
    default: return 0;
    }
    if (value != 0 && value > (UINT64_MAX >> shift))
        return 0;
    return value << shift;
}

namespace {

std::uint64_t
resolveBudget(std::uint64_t configured)
{
    if (configured != 0)
        return configured;
    const char *env = std::getenv("BBS_STORE_BUDGET");
    return env != nullptr ? parseByteSize(env) : 0;
}

obs::Registry &
resolveRegistry(obs::Registry *r)
{
    return r != nullptr ? *r : obs::Registry::global();
}

} // namespace

ModelStore::ModelStore(StoreConfig config)
    : budget_(resolveBudget(config.budgetBytes)),
      willNeed_(config.willNeed),
      verifyChecksums_(config.verifyChecksums),
      loads_(resolveRegistry(config.registry)
                 .counter("bbs_store_loads",
                          "Containers mapped by the model store")),
      loadFailures_(resolveRegistry(config.registry)
                        .counter("bbs_store_load_failures",
                                 "Rejected or unreadable containers")),
      hits_(resolveRegistry(config.registry)
                .counter("bbs_store_hits",
                         "Loads served from a resident mapping")),
      evictions_(resolveRegistry(config.registry)
                     .counter("bbs_store_evictions",
                              "Resident models dropped by the LRU")),
      residentBytes_(resolveRegistry(config.registry)
                         .gauge("bbs_store_resident_bytes",
                                "Mapped container bytes held resident")),
      residentModels_(resolveRegistry(config.registry)
                          .gauge("bbs_store_resident_models",
                                 "Models held resident")),
      loadLatencyUs_(resolveRegistry(config.registry)
                         .histogram("bbs_store_load_latency_us",
                                    obs::Histogram::latencyBoundsUs(),
                                    "Cold container map latency"))
{
}

void
ModelStore::publishResidency()
{
    std::int64_t bytes = 0;
    for (const Entry &e : entries_)
        bytes += static_cast<std::int64_t>(e.model->bytes);
    residentBytes_.set(bytes);
    residentModels_.set(static_cast<std::int64_t>(entries_.size()));
}

void
ModelStore::evictOverBudget()
{
    if (budget_ == 0)
        return;
    for (;;) {
        std::uint64_t resident = 0;
        for (const Entry &e : entries_)
            resident += e.model->bytes;
        if (resident <= budget_)
            return;
        // Oldest unpinned entry. use_count == 1 means the store holds
        // the only reference: no registry entry, no in-flight plan.
        // Pinned models are untouchable — their pages are under live
        // kernels — so an all-pinned store can legitimately sit over
        // budget until callers let go.
        Entry *victim = nullptr;
        for (Entry &e : entries_) {
            if (e.model.use_count() > 1)
                continue;
            if (victim == nullptr || e.lastUse < victim->lastUse)
                victim = &e;
        }
        if (victim == nullptr)
            return;
        victim->model->container->adviseDontNeed();
        evictions_.inc();
        entries_.erase(entries_.begin() + (victim - entries_.data()));
    }
}

bool
ModelStore::tryLoad(const std::string &path,
                    std::shared_ptr<const MappedModel> &out,
                    std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Entry &e : entries_) {
        if (e.path != path)
            continue;
        e.lastUse = ++useClock_;
        hits_.inc();
        out = e.model;
        return true;
    }

    auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<const MappedContainer> container;
    if (!MappedContainer::tryOpen(path, container, error)) {
        loadFailures_.inc();
        return false;
    }
    if (!container->hasModel()) {
        loadFailures_.inc();
        if (error != nullptr)
            *error = bbs::detail::concatMessage(
                path, " is an operand container, not a model");
        return false;
    }
    if (verifyChecksums_ && !container->verifyChecksums(error)) {
        loadFailures_.inc();
        return false;
    }
    if (willNeed_)
        container->adviseWillNeed();
    auto model = std::make_shared<MappedModel>();
    model->path = path;
    model->network =
        std::make_shared<const Int8Network>(mapModel(container));
    model->container = container;
    model->bytes = container->bytes();
    auto t1 = std::chrono::steady_clock::now();
    loadLatencyUs_.observe(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    loads_.inc();

    entries_.push_back(Entry{path, model, ++useClock_});
    evictOverBudget();
    publishResidency();
    out = std::move(model);
    return true;
}

std::shared_ptr<const MappedModel>
ModelStore::load(const std::string &path)
{
    std::shared_ptr<const MappedModel> model;
    std::string error;
    if (!tryLoad(path, model, &error))
        BBS_FATAL(error);
    return model;
}

void
ModelStore::evictUnpinned()
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto keep = entries_.begin();
    for (Entry &e : entries_) {
        if (e.model.use_count() > 1) {
            *keep++ = std::move(e);
        } else {
            e.model->container->adviseDontNeed();
            evictions_.inc();
        }
    }
    entries_.erase(keep, entries_.end());
    publishResidency();
}

std::size_t
ModelStore::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t bytes = 0;
    for (const Entry &e : entries_)
        bytes += e.model->bytes;
    return bytes;
}

std::size_t
ModelStore::residentModels() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace bbs::store
