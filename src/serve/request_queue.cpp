#include "serve/request_queue.hpp"

#include <algorithm>

namespace bbs {

void
RequestQueue::decrementLive(const std::string &model, std::int64_t n)
{
    auto it = liveByModel_.find(model);
    if (it == liveByModel_.end())
        return; // markCompleted for a request this queue never counted
    it->second -= n;
    if (it->second <= 0)
        liveByModel_.erase(it);
}

void
RequestQueue::observe(obs::Gauge *depth, obs::TraceRing *trace,
                      std::chrono::steady_clock::time_point epoch,
                      obs::Counter *expired, obs::Counter *shutdownRejected)
{
    std::lock_guard<std::mutex> lock(mutex_);
    depthGauge_ = depth;
    trace_ = trace;
    epoch_ = epoch;
    expiredCounter_ = expired;
    shutdownCounter_ = shutdownRejected;
    if (depthGauge_)
        depthGauge_->set(static_cast<std::int64_t>(queue_.size()));
}

void
RequestQueue::publishDepth()
{
    if (depthGauge_)
        depthGauge_->set(static_cast<std::int64_t>(queue_.size()));
}

void
RequestQueue::reject(InferenceRequest &r, ServeStatus status)
{
    if (status == ServeStatus::DeadlineExpired && expiredCounter_)
        expiredCounter_->inc();
    else if (status == ServeStatus::ShutDown && shutdownCounter_)
        shutdownCounter_->inc();
    InferenceResponse resp;
    resp.status = status;
    auto now = std::chrono::steady_clock::now();
    resp.queueUs = microsBetween(r.enqueued, now);
    resp.totalUs = resp.queueUs;
    r.promise.set_value(std::move(resp));
    if (trace_) {
        obs::TraceSpan span;
        span.id = r.id;
        span.setModel(r.model);
        span.status = static_cast<int>(status);
        span.submitUs = microsBetween(epoch_, r.enqueued);
        span.doneUs = microsBetween(epoch_, now);
        trace_->record(span);
    }
}

bool
RequestQueue::push(InferenceRequest r)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_) {
            ++shutdownRejected_;
            reject(r, ServeStatus::ShutDown);
            return false;
        }
        ++liveByModel_[r.model];
        queue_.push_back(std::move(r));
        ++arrivals_;
        publishDepth();
    }
    cv_.notify_all();
    return true;
}

std::optional<InferenceRequest>
RequestQueue::waitFront()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
        auto now = std::chrono::steady_clock::now();
        while (!queue_.empty() && queue_.front().deadline <= now) {
            ++expired_;
            decrementLive(queue_.front().model, 1);
            reject(queue_.front(), ServeStatus::DeadlineExpired);
            queue_.pop_front();
        }
        if (!queue_.empty()) {
            InferenceRequest r = std::move(queue_.front());
            queue_.pop_front();
            publishDepth();
            r.claimed = now;
            return r;
        }
        publishDepth(); // expiry pops above may have drained it
        if (shutdown_)
            return std::nullopt;
        // Everything queued had expired; wait for fresh work.
    }
}

std::vector<InferenceRequest>
RequestQueue::popModel(const std::string &model, std::int64_t maxCount,
                       std::uint64_t &version)
{
    std::vector<InferenceRequest> out;
    popModelInto(model, maxCount, version, out);
    return out;
}

std::int64_t
RequestQueue::popModelInto(const std::string &model, std::int64_t maxCount,
                           std::uint64_t &version,
                           std::vector<InferenceRequest> &out)
{
    std::int64_t appended = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    version = arrivals_;
    if (maxCount <= 0)
        return appended;
    auto now = std::chrono::steady_clock::now();
    for (auto it = queue_.begin();
         it != queue_.end() && appended < maxCount;) {
        if (it->deadline <= now) {
            ++expired_;
            decrementLive(it->model, 1);
            reject(*it, ServeStatus::DeadlineExpired);
            it = queue_.erase(it);
        } else if (it->model == model) {
            it->claimed = now;
            out.push_back(std::move(*it));
            ++appended;
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }
    publishDepth();
    return appended;
}

bool
RequestQueue::waitArrival(std::uint64_t version,
                          std::chrono::steady_clock::time_point until)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_until(lock, until,
                   [&] { return shutdown_ || arrivals_ > version; });
    return !shutdown_ && arrivals_ > version;
}

void
RequestQueue::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
        shutdownRejected_ += queue_.size();
        for (InferenceRequest &r : queue_) {
            decrementLive(r.model, 1);
            reject(r, ServeStatus::ShutDown);
        }
        queue_.clear();
        publishDepth();
    }
    cv_.notify_all();
}

std::int64_t
RequestQueue::liveCount(const std::string &model) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = liveByModel_.find(model);
    return it == liveByModel_.end() ? 0 : it->second;
}

void
RequestQueue::markCompleted(const std::string &model, std::int64_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    decrementLive(model, n);
}

bool
RequestQueue::isShutdown() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shutdown_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::uint64_t
RequestQueue::expiredCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return expired_;
}

std::uint64_t
RequestQueue::shutdownCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shutdownRejected_;
}

} // namespace bbs
