#include "serve/request_queue.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bbs {

std::vector<RequestQueue::Rejection> &
RequestQueue::rejectionScratch()
{
    static thread_local std::vector<Rejection> scratch;
    return scratch;
}

void
RequestQueue::decrementLive(const std::string &model, std::int64_t n)
{
    auto it = liveByModel_.find(model);
    if (it == liveByModel_.end())
        return; // markCompleted for a request this queue never counted
    it->second -= n;
    if (it->second <= 0)
        liveByModel_.erase(it);
}

void
RequestQueue::observe(obs::Gauge *depth, obs::TraceRing *trace,
                      std::chrono::steady_clock::time_point epoch,
                      obs::Counter *expired, obs::Counter *shutdownRejected,
                      obs::Counter *overloaded)
{
    std::lock_guard<std::mutex> lock(mutex_);
    depthGauge_ = depth;
    trace_ = trace;
    epoch_ = epoch;
    expiredCounter_ = expired;
    shutdownCounter_ = shutdownRejected;
    overloadedCounter_ = overloaded;
    if (depthGauge_)
        depthGauge_->set(static_cast<std::int64_t>(queue_.size()));
}

void
RequestQueue::setMaxDepth(std::int64_t maxDepth)
{
    BBS_REQUIRE(maxDepth >= 0, "maxDepth must be >= 0, got ", maxDepth);
    std::lock_guard<std::mutex> lock(mutex_);
    maxDepth_ = maxDepth;
}

void
RequestQueue::publishDepth()
{
    if (depthGauge_)
        depthGauge_->set(static_cast<std::int64_t>(queue_.size()));
}

void
RequestQueue::completeRejections(std::vector<Rejection> &rejected)
{
    // mutex_ is NOT held here: set_value/onComplete wakes waiters and
    // the trace ring takes its own mutex — neither nests inside the
    // queue lock (see file comment). The shared counters are relaxed
    // atomics, safe from any thread.
    //
    // An onComplete callback may call back into a queue on this thread
    // (submit-on-completion), which would land new rejections in the
    // same thread_local scratch — steal the buffer first so nested
    // pushes never mutate the vector being iterated. The capacity is
    // handed back afterwards, keeping the steady state allocation-free.
    if (rejected.empty())
        return;
    std::vector<Rejection> local;
    local.swap(rejected);
    for (Rejection &rej : local) {
        if (rej.status == ServeStatus::DeadlineExpired && expiredCounter_)
            expiredCounter_->inc();
        else if (rej.status == ServeStatus::ShutDown && shutdownCounter_)
            shutdownCounter_->inc();
        else if (rej.status == ServeStatus::Overloaded &&
                 overloadedCounter_)
            overloadedCounter_->inc();
        InferenceResponse resp;
        resp.status = rej.status;
        auto now = std::chrono::steady_clock::now();
        resp.queueUs = microsBetween(rej.r.enqueued, now);
        resp.totalUs = resp.queueUs;
        rej.r.complete(std::move(resp));
        if (trace_) {
            obs::TraceSpan span;
            span.id = rej.r.id;
            span.setModel(rej.r.model);
            span.status = static_cast<int>(rej.status);
            span.submitUs = microsBetween(epoch_, rej.r.enqueued);
            span.doneUs = microsBetween(epoch_, now);
            trace_->record(span);
        }
    }
    rejected.clear();
}

PushResult
RequestQueue::tryPush(InferenceRequest r)
{
    std::vector<Rejection> &rejected = rejectionScratch();
    PushResult result = PushResult::Ok;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_) {
            ++shutdownRejected_;
            rejected.push_back({std::move(r), ServeStatus::ShutDown});
            result = PushResult::ShutDown;
        } else if (maxDepth_ > 0 &&
                   static_cast<std::int64_t>(queue_.size()) >= maxDepth_) {
            ++overloaded_;
            rejected.push_back({std::move(r), ServeStatus::Overloaded});
            result = PushResult::Overloaded;
        } else {
            ++liveByModel_[r.model];
            queue_.push_back(std::move(r));
            ++arrivals_;
            publishDepth();
        }
    }
    if (result == PushResult::Ok)
        cv_.notify_all();
    else
        completeRejections(rejected);
    return result;
}

bool
RequestQueue::push(InferenceRequest r)
{
    return tryPush(std::move(r)) == PushResult::Ok;
}

std::optional<InferenceRequest>
RequestQueue::waitFront()
{
    std::vector<Rejection> &rejected = rejectionScratch();
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
        auto now = std::chrono::steady_clock::now();
        while (!queue_.empty() && queue_.front().deadline <= now) {
            ++expired_;
            decrementLive(queue_.front().model, 1);
            rejected.push_back(
                {std::move(queue_.front()), ServeStatus::DeadlineExpired});
            queue_.pop_front();
        }
        if (!queue_.empty()) {
            InferenceRequest r = std::move(queue_.front());
            queue_.pop_front();
            publishDepth();
            r.claimed = now;
            if (!rejected.empty()) {
                lock.unlock();
                completeRejections(rejected);
            }
            return r;
        }
        publishDepth(); // expiry pops above may have drained it
        if (shutdown_) {
            if (!rejected.empty()) {
                lock.unlock();
                completeRejections(rejected);
            }
            return std::nullopt;
        }
        // Everything queued had expired: complete those rejections with
        // the lock dropped, then wait for fresh work.
        if (!rejected.empty()) {
            lock.unlock();
            completeRejections(rejected);
            lock.lock();
        }
    }
}

std::vector<InferenceRequest>
RequestQueue::popModel(const std::string &model, std::int64_t maxCount,
                       std::uint64_t &version)
{
    std::vector<InferenceRequest> out;
    popModelInto(model, maxCount, version, out);
    return out;
}

std::int64_t
RequestQueue::popModelInto(const std::string &model, std::int64_t maxCount,
                           std::uint64_t &version,
                           std::vector<InferenceRequest> &out)
{
    std::vector<Rejection> &rejected = rejectionScratch();
    std::int64_t appended = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        version = arrivals_;
        if (maxCount <= 0)
            return appended;
        auto now = std::chrono::steady_clock::now();
        for (auto it = queue_.begin();
             it != queue_.end() && appended < maxCount;) {
            if (it->deadline <= now) {
                ++expired_;
                decrementLive(it->model, 1);
                rejected.push_back(
                    {std::move(*it), ServeStatus::DeadlineExpired});
                it = queue_.erase(it);
            } else if (it->model == model) {
                it->claimed = now;
                out.push_back(std::move(*it));
                ++appended;
                it = queue_.erase(it);
            } else {
                ++it;
            }
        }
        publishDepth();
    }
    if (!rejected.empty())
        completeRejections(rejected);
    return appended;
}

bool
RequestQueue::waitArrival(std::uint64_t version,
                          std::chrono::steady_clock::time_point until)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_until(lock, until,
                   [&] { return shutdown_ || arrivals_ > version; });
    return !shutdown_ && arrivals_ > version;
}

void
RequestQueue::shutdown()
{
    std::vector<Rejection> &rejected = rejectionScratch();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
        shutdownRejected_ += queue_.size();
        for (InferenceRequest &r : queue_) {
            decrementLive(r.model, 1);
            rejected.push_back({std::move(r), ServeStatus::ShutDown});
        }
        queue_.clear();
        publishDepth();
    }
    cv_.notify_all();
    completeRejections(rejected);
}

std::int64_t
RequestQueue::liveCount(const std::string &model) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = liveByModel_.find(model);
    return it == liveByModel_.end() ? 0 : it->second;
}

void
RequestQueue::markCompleted(const std::string &model, std::int64_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    decrementLive(model, n);
}

void
RequestQueue::markExpired(const std::string &model, std::int64_t n)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        expired_ += static_cast<std::uint64_t>(n);
        decrementLive(model, n);
    }
    if (expiredCounter_)
        expiredCounter_->inc(static_cast<std::uint64_t>(n));
}

bool
RequestQueue::isShutdown() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shutdown_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::uint64_t
RequestQueue::expiredCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return expired_;
}

std::uint64_t
RequestQueue::shutdownCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shutdownRejected_;
}

std::uint64_t
RequestQueue::overloadedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return overloaded_;
}

} // namespace bbs
