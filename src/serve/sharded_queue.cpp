#include "serve/sharded_queue.hpp"

#include <functional>

#include "common/logging.hpp"

namespace bbs {

ShardedQueue::ShardedQueue(std::size_t shards)
{
    BBS_REQUIRE(shards >= 1, "need at least one shard, got ", shards);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<RequestQueue>());
}

std::size_t
ShardedQueue::indexFor(std::string_view model) const
{
    if (shards_.size() == 1)
        return 0;
    return std::hash<std::string_view>{}(model) % shards_.size();
}

void
ShardedQueue::setMaxDepth(std::int64_t maxDepth)
{
    for (auto &s : shards_)
        s->setMaxDepth(maxDepth);
}

void
ShardedQueue::shutdown()
{
    for (auto &s : shards_)
        s->shutdown();
}

bool
ShardedQueue::isShutdown() const
{
    return shards_.front()->isShutdown();
}

std::size_t
ShardedQueue::size() const
{
    std::size_t total = 0;
    for (const auto &s : shards_)
        total += s->size();
    return total;
}

std::uint64_t
ShardedQueue::expiredCount() const
{
    std::uint64_t total = 0;
    for (const auto &s : shards_)
        total += s->expiredCount();
    return total;
}

std::uint64_t
ShardedQueue::shutdownCount() const
{
    std::uint64_t total = 0;
    for (const auto &s : shards_)
        total += s->shutdownCount();
    return total;
}

std::uint64_t
ShardedQueue::overloadedCount() const
{
    std::uint64_t total = 0;
    for (const auto &s : shards_)
        total += s->overloadedCount();
    return total;
}

} // namespace bbs
