/**
 * @file
 * Named collection of prepacked Int8Networks so one server hosts several
 * compressed models (operating points, different architectures) behind
 * one queue. Engines are shared immutably: a lookup hands out a
 * shared_ptr<const>, so replacing a model mid-flight never invalidates
 * requests already resolved against the old engine.
 *
 * Replacement is a versioned atomic hot-swap: `swap()` flips the
 * registered pointer under the registry mutex and bumps the entry's
 * version. Batches already holding the old engine drain against it —
 * per-request `find()` means no request ever observes a half-swapped
 * model — and when the last in-flight reference drops, the old engine
 * (and, for store-mapped models, the mmap behind it) is released
 * automatically. Registration never copies weight payloads: an
 * Int8Network's layers share their planes/plan state via shared_ptr, so
 * moving a network in (or registering an already-shared one) costs
 * pointers, not plane buffers (tests/test_serve.cpp pins this with the
 * allocation counter).
 */
#ifndef BBS_SERVE_MODEL_REGISTRY_HPP
#define BBS_SERVE_MODEL_REGISTRY_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/int8_infer.hpp"

namespace bbs {

class ModelRegistry
{
  public:
    /** Register (or hot-swap) @p name. Move-only on purpose: passing an
     *  lvalue network would copy its layer vector (the planes themselves
     *  are shared), and every real caller either just built the network
     *  or should be sharing it via the shared_ptr overload. */
    void add(const std::string &name, Int8Network &&engine);
    void add(const std::string &name,
             std::shared_ptr<const Int8Network> engine);

    /**
     * Atomically replace (or first-register) @p name and return the
     * entry's new version: 1 on first registration, previous + 1 on
     * every swap. In-flight batches keep the engine they resolved; new
     * lookups see the new engine immediately.
     */
    std::uint64_t swap(const std::string &name,
                       std::shared_ptr<const Int8Network> engine);

    /** Current version of @p name; 0 when not registered. */
    std::uint64_t version(const std::string &name) const;

    /** nullptr when @p name is not registered. */
    std::shared_ptr<const Int8Network> find(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    std::size_t size() const;

  private:
    struct Entry
    {
        std::shared_ptr<const Int8Network> engine;
        std::uint64_t version = 0;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Entry> models_;
};

} // namespace bbs

#endif // BBS_SERVE_MODEL_REGISTRY_HPP
