/**
 * @file
 * Named collection of prepacked Int8Networks so one server hosts several
 * compressed models (operating points, different architectures) behind
 * one queue. Engines are shared immutably: a lookup hands out a
 * shared_ptr<const>, so replacing a model mid-flight never invalidates
 * requests already resolved against the old engine.
 */
#ifndef BBS_SERVE_MODEL_REGISTRY_HPP
#define BBS_SERVE_MODEL_REGISTRY_HPP

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/int8_infer.hpp"

namespace bbs {

class ModelRegistry
{
  public:
    /** Register (or replace) @p name. The engine is moved into shared
     *  immutable ownership. */
    void add(const std::string &name, Int8Network engine);
    void add(const std::string &name,
             std::shared_ptr<const Int8Network> engine);

    /** nullptr when @p name is not registered. */
    std::shared_ptr<const Int8Network> find(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const Int8Network>> models_;
};

} // namespace bbs

#endif // BBS_SERVE_MODEL_REGISTRY_HPP
