/**
 * @file
 * GenerationScheduler — continuous-batching token generation over a
 * TransformerModel.
 *
 * One request is a prompt plus a token budget: many *dependent* decode
 * steps, unlike the one-shot requests InferenceServer batches. The
 * scheduler keeps an active set of sequences and, each step, coalesces
 * one decode row per decoding sequence into a single batched
 * `forward()` call — so a model's matmuls run at the step-batch size
 * even though every individual sequence produces one token at a time.
 * Remaining step-row budget is filled with chunk-wise prefill: long
 * prompts are consumed `prefillChunk` tokens per step, decode rows
 * always come first (admission never starves decoders), and at least
 * one prefill chunk rides every step when prompts are waiting (decoders
 * never starve admission either).
 *
 * Tokens stream to the caller via a per-request callback as they are
 * produced. Bit-identity: a sequence's token stream is byte-identical
 * to `TransformerModel::generateReference` on the same prompt,
 * regardless of what it was co-batched with — per-row numerics
 * (transformer.hpp) plus the exact integer kernels make batch
 * composition unobservable.
 *
 * Threading: `submit()` is safe from any thread. With `workers == 0`
 * the owner drives `stepOnce()` manually (deterministic tests); with
 * `workers == 1` a background thread steps whenever sequences are
 * active. Callbacks run on the stepping thread with no scheduler lock
 * held; a callback may call submit(), but must not call stepOnce().
 *
 * Steady-state decode steps allocate nothing: step buffers, the
 * workspace and each sequence's KV cache are sized at admission, and
 * completions only release memory.
 */
#ifndef BBS_SERVE_GENERATION_HPP
#define BBS_SERVE_GENERATION_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "llm/transformer.hpp"
#include "serve/request.hpp"

namespace bbs::serve {

/** Scheduler knobs. */
struct GenerationConfig
{
    std::int64_t maxStepRows = 32;   ///< step-batch row budget
    std::int64_t maxActiveSeqs = 16; ///< beyond this, admissions queue
    std::int64_t prefillChunk = 16;  ///< prompt tokens per seq per step
    std::int64_t maxQueuedSeqs = 256; ///< beyond this, Overloaded
    std::int64_t defaultMaxNewTokens = 32; ///< when submit passes 0
    int workers = 0; ///< 0 = manual stepOnce(); 1 = background thread
};

/** One streamed token (or the terminal failure) of a generation. */
struct StreamToken
{
    std::uint64_t id = 0;    ///< request id (submit's return value)
    std::int32_t token = 0;  ///< generated token; valid when status Ok
    std::uint32_t index = 0; ///< 0-based position in the continuation
    bool last = false;       ///< no further callbacks for this id
    ServeStatus status = ServeStatus::Ok;
};

using StreamFn = std::function<void(const StreamToken &)>;

class GenerationScheduler
{
  public:
    GenerationScheduler(const llm::TransformerModel &model,
                        GenerationConfig config = {},
                        obs::Registry *registry = nullptr);
    ~GenerationScheduler();

    GenerationScheduler(const GenerationScheduler &) = delete;
    GenerationScheduler &operator=(const GenerationScheduler &) = delete;

    /**
     * Enqueue a generation: @p maxNewTokens greedy tokens (0 = config
     * default), streamed through @p onToken. Returns the request id.
     * Invalid prompts, overload and shutdown fail synchronously: the
     * callback fires once with the failure status and last = true
     * before submit returns.
     */
    std::uint64_t submit(std::span<const std::int32_t> prompt,
                         std::int64_t maxNewTokens, StreamFn onToken);

    /**
     * Run one scheduling step: admit queued sequences, coalesce the
     * step batch, forward, stream the produced tokens. Returns false
     * when there was nothing to do. Single-threaded: the owner (or the
     * worker thread) is the only caller.
     */
    bool stepOnce();

    /** Stop stepping; in-flight and queued sequences fail with
     *  ShutDown. Idempotent; the destructor calls it. */
    void stop();

    std::int64_t activeSequences() const { return activeGauge_.value(); }
    std::int64_t queuedSequences() const { return queued_.value(); }
    std::uint64_t tokensGenerated() const { return tokens_.value(); }
    std::int64_t kvResidentBytes() const { return kvBytes_.value(); }

  private:
    struct Sequence
    {
        std::uint64_t id = 0;
        std::vector<std::int32_t> prompt;
        std::int64_t prefillPos = 0; ///< prompt tokens consumed
        std::int64_t maxNew = 0;
        std::int64_t produced = 0;
        std::int32_t nextInput = 0; ///< token feeding the next decode row
        bool decoding = false;      ///< prefill complete
        bool done = false;
        std::unique_ptr<llm::KvCache> cache; ///< set at admission
        StreamFn onToken;
    };

    void workerLoop();
    void failSequence(Sequence &seq, ServeStatus status);

    const llm::TransformerModel &model_;
    GenerationConfig config_;

    std::mutex mutex_; ///< guards pending_, stopping_ handshake
    std::condition_variable cv_;
    std::deque<std::unique_ptr<Sequence>> pending_;
    bool stopping_ = false;
    std::atomic<std::uint64_t> nextId_{1};

    // Step-thread-owned state (never touched by submit()).
    std::vector<std::unique_ptr<Sequence>> activeSeqs_;
    std::vector<llm::StepRow> rows_;
    std::vector<Sequence *> rowSeq_;
    struct Emission
    {
        Sequence *seq;
        StreamToken token;
    };
    std::vector<Emission> emissions_;
    llm::TransformerModel::Workspace ws_;
    std::int64_t prefillCursor_ = 0; ///< round-robin over prefilling seqs

    // Metrics (stable refs into the registry).
    obs::Counter &steps_;
    obs::Counter &tokens_;
    obs::Counter &decodeRows_;
    obs::Counter &prefillRows_;
    obs::Gauge &activeGauge_;
    obs::Gauge &queued_;
    obs::Gauge &kvBytes_;
    obs::Histogram &stepLatencyUs_;

    std::thread worker_;
};

} // namespace bbs::serve

#endif // BBS_SERVE_GENERATION_HPP
