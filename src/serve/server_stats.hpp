/**
 * @file
 * Serving telemetry: per-request latency percentiles, the batch-size
 * histogram (did batching actually happen?), rejection counters, and
 * sustained throughput. Percentiles/means come from common/stats.hpp so
 * the serving numbers use the same estimators as every benchmark table.
 */
#ifndef BBS_SERVE_SERVER_STATS_HPP
#define BBS_SERVE_SERVER_STATS_HPP

#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace bbs {

/** One consistent reading of the counters (taken under the lock). */
struct StatsSnapshot
{
    std::uint64_t completed = 0;        ///< requests served Ok
    std::uint64_t expired = 0;          ///< DeadlineExpired rejections
    std::uint64_t shutdownRejected = 0; ///< ShutDown rejections
    std::uint64_t badRequests = 0;      ///< UnknownModel + BadInput
    std::uint64_t batches = 0;          ///< gemmCompressed calls

    /** Latency estimators cover a sliding window of the most recent
     *  completions (kLatencyWindow); the counters above are exact. */
    double p50Us = 0.0; ///< median submit->completion latency
    double p99Us = 0.0;
    double meanUs = 0.0;
    double maxUs = 0.0;
    double meanQueueUs = 0.0;

    /** batchHist[n] = how many batches held exactly n requests
     *  (index 0 unused; size maxBatch + 1). */
    std::vector<std::uint64_t> batchHist;
    double meanBatchRows = 0.0;

    double elapsedS = 0.0;       ///< since construction / reset()
    double throughputRps = 0.0;  ///< completed / elapsedS
};

class ServerStats
{
  public:
    /** Latency samples kept for the percentile estimators: a ring over
     *  the most recent completions, so a long-lived server's memory and
     *  snapshot cost stay bounded no matter how many requests it has
     *  served. */
    static constexpr std::size_t kLatencyWindow = 1 << 16;

    explicit ServerStats(std::int64_t maxBatch);

    /** Record one Ok completion. */
    void recordCompletion(double queueUs, double totalUs);
    /** Record one executed batch of @p rows requests. */
    void recordBatch(std::int64_t rows);
    /** Record a rejection (terminal non-Ok status). */
    void recordRejection(ServeStatus status);

    StatsSnapshot snapshot() const;

    /** Zero everything and restart the throughput clock. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::chrono::steady_clock::time_point start_;
    /** Ring buffers over the last kLatencyWindow Ok completions; the
     *  write position is completed_ % kLatencyWindow. */
    std::vector<double> latenciesUs_;
    std::vector<double> queueUs_;
    std::vector<std::uint64_t> batchHist_;
    std::uint64_t completed_ = 0;
    std::uint64_t expired_ = 0;
    std::uint64_t shutdownRejected_ = 0;
    std::uint64_t badRequests_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t batchRowsTotal_ = 0;
};

} // namespace bbs

#endif // BBS_SERVE_SERVER_STATS_HPP
