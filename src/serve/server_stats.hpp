/**
 * @file
 * Serving telemetry: per-request latency percentiles, the batch-size
 * histogram (did batching actually happen?), rejection counters, and
 * sustained throughput.
 *
 * Since the observability PR the counters and fixed-bucket histograms
 * live in an obs::Registry (relaxed atomics, Prometheus-exposable —
 * see common/metrics.hpp); ServerStats is the serving-layer facade
 * that registers them, keeps the sliding latency ring the percentile
 * estimators need (percentiles want raw samples, not buckets), and
 * still answers the original snapshot() API — callers of
 * InferenceServer::stats() see exactly the fields they always did,
 * plus the estimator-saturation fields below.
 */
#ifndef BBS_SERVE_SERVER_STATS_HPP
#define BBS_SERVE_SERVER_STATS_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.hpp"
#include "serve/request.hpp"

namespace bbs {

/** One consistent reading of the counters. */
struct StatsSnapshot
{
    std::uint64_t completed = 0;        ///< requests served Ok
    std::uint64_t expired = 0;          ///< DeadlineExpired rejections
    std::uint64_t shutdownRejected = 0; ///< ShutDown rejections
    std::uint64_t badRequests = 0;      ///< UnknownModel + BadInput
    std::uint64_t overloaded = 0;       ///< Overloaded admission sheds
    std::uint64_t batches = 0;          ///< gemmCompressed calls

    /**
     * Latency estimators cover a sliding window of the most recent Ok
     * completions; the counters above are exact for the server's whole
     * lifetime. The split matters for long soaks: p50/p99/mean/max
     * describe the last `latencyWindow` completions only, so a latency
     * excursion older than the window has aged out of the percentiles
     * while still being counted in `completed`.
     */
    double p50Us = 0.0; ///< median submit->completion latency
    double p99Us = 0.0;
    double meanUs = 0.0;
    double maxUs = 0.0;
    double meanQueueUs = 0.0;

    /**
     * The same percentiles estimated from the bbs_serve_latency_us
     * histogram buckets (obs::histogramQuantile, linear interpolation
     * within the owning bucket). Bucket-resolution rather than exact,
     * but computed over EVERY completion since start — the full-run
     * complement when latencyDropped shows the raw ring has saturated.
     */
    double p50HistUs = 0.0;
    double p99HistUs = 0.0;

    /** Capacity of the sliding latency window (ServerStats::
     *  kLatencyWindow). */
    std::uint64_t latencyWindow = 0;
    /** Completions whose latency samples have been overwritten (aged
     *  out of the window): completed - min(completed, latencyWindow).
     *  Nonzero means the percentile estimators are saturated — they
     *  describe recent behavior, not the full run. */
    std::uint64_t latencyDropped = 0;

    /** batchHist[n] = how many batches held exactly n requests
     *  (index 0 unused; size maxBatch + 1). */
    std::vector<std::uint64_t> batchHist;
    double meanBatchRows = 0.0;

    /** Requests sitting in the queue when the snapshot was taken (set
     *  by InferenceServer::stats(); 0 for a bare ServerStats). */
    std::uint64_t queueDepth = 0;

    double elapsedS = 0.0;       ///< since construction / reset()
    double throughputRps = 0.0;  ///< completed / elapsedS
};

class ServerStats
{
  public:
    /** Latency samples kept for the percentile estimators: a ring over
     *  the most recent completions, so a long-lived server's memory and
     *  snapshot cost stay bounded no matter how many requests it has
     *  served. Snapshot consumers can detect saturation through
     *  StatsSnapshot::latencyDropped. */
    static constexpr std::size_t kLatencyWindow = 1 << 16;

    /**
     * Registers the serving metrics in @p registry (the owning server's
     * instance registry, so multi-server processes keep exact per-server
     * series); with nullptr a private registry is created (bare
     * ServerStats in tests).
     */
    explicit ServerStats(std::int64_t maxBatch,
                         obs::Registry *registry = nullptr);

    /** Record one Ok completion. */
    void recordCompletion(double queueUs, double totalUs);
    /** Record one executed batch of @p rows requests. */
    void recordBatch(std::int64_t rows);
    /** Record a rejection (terminal non-Ok status). */
    void recordRejection(ServeStatus status);

    StatsSnapshot snapshot() const;

    /** Zero everything and restart the throughput clock. */
    void reset();

  private:
    std::unique_ptr<obs::Registry> owned_; ///< when none was passed in
    obs::Registry &registry_;

    // Registered metrics (stable refs; the registry outlives us).
    obs::Counter &completed_;
    obs::Counter &expired_;
    obs::Counter &shutdownRejected_;
    obs::Counter &badRequests_;
    obs::Counter &overloaded_;
    obs::Counter &batches_;
    obs::Histogram &batchRows_;  ///< unit buckets 1..maxBatch (exact)
    obs::Histogram &latencyUs_;
    obs::Histogram &queueWaitUs_;

    /** Guards the percentile rings and the throughput clock only; the
     *  counters/histograms above are lock-free. */
    mutable std::mutex mutex_;
    std::chrono::steady_clock::time_point start_;
    /** Ring buffers over the last kLatencyWindow Ok completions; the
     *  write position is ringWrites_ % kLatencyWindow. */
    std::vector<double> latenciesUs_;
    std::vector<double> queueUs_;
    std::uint64_t ringWrites_ = 0;
};

} // namespace bbs

#endif // BBS_SERVE_SERVER_STATS_HPP
