/**
 * @file
 * Lock + condition-variable request queue feeding the batcher.
 *
 * Single FIFO shared by every model: arrival order is preserved per
 * model, and the batcher pops same-model runs without disturbing other
 * models' ordering. Deadline-expired requests are rejected (future
 * completed with DeadlineExpired) whenever a pop scan encounters them, so
 * an expired request never consumes GEMM work. shutdown() completes every
 * still-queued future with ShutDown — no submitter is ever left hanging.
 */
#ifndef BBS_SERVE_REQUEST_QUEUE_HPP
#define BBS_SERVE_REQUEST_QUEUE_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/request.hpp"

namespace bbs {

class RequestQueue
{
  public:
    /**
     * Attach observability sinks (all optional; call before serving
     * starts): a depth gauge updated under the queue lock on every
     * push/pop/shutdown (so it is exact), a trace ring + steady-clock
     * epoch for the spans of requests the QUEUE rejects (expiry noticed
     * during a pop scan, shutdown) — the server records everything else
     * — and shared expiry/shutdown counters so queue-side rejections
     * land in the same registry series as server-side ones
     * (expiredCount()/shutdownCount() keep the queue-only tallies).
     */
    void observe(obs::Gauge *depth, obs::TraceRing *trace,
                 std::chrono::steady_clock::time_point epoch,
                 obs::Counter *expired = nullptr,
                 obs::Counter *shutdownRejected = nullptr);

    /**
     * Enqueue. Returns false — completing the promise with ShutDown —
     * when the queue is already shut down.
     */
    bool push(InferenceRequest r);

    /**
     * Block until a request is available (or shutdown), then pop the
     * oldest live one. Expired requests skipped over are rejected.
     * nullopt means shut down: no more work will ever arrive.
     */
    std::optional<InferenceRequest> waitFront();

    /**
     * Non-blocking: pop up to @p maxCount oldest live requests for
     * @p model, leaving other models' requests untouched (in order).
     * Expired requests of ANY model encountered during the scan are
     * rejected. @p version receives the queue's arrival counter observed
     * under the same lock — pass it to waitArrival so a push racing with
     * this scan cannot be missed.
     */
    std::vector<InferenceRequest> popModel(const std::string &model,
                                           std::int64_t maxCount,
                                           std::uint64_t &version);

    /**
     * popModel() appending into a caller-kept vector (the batcher's
     * zero-allocation form); returns the number appended. When @p model
     * aliases an element of @p out (the batcher passes its own
     * batch.front().model), @p out must already have capacity for the
     * appended requests — a reallocation would move the string out from
     * under the scan.
     */
    std::int64_t popModelInto(const std::string &model,
                              std::int64_t maxCount,
                              std::uint64_t &version,
                              std::vector<InferenceRequest> &out);

    /**
     * Block until a push lands after the scan that observed @p version,
     * the deadline @p until passes, or shutdown. True means "new arrivals
     * exist — scan again"; false means flush what you have.
     */
    bool waitArrival(std::uint64_t version,
                     std::chrono::steady_clock::time_point until);

    /**
     * Reject every queued request with ShutDown and refuse future pushes.
     * Idempotent; wakes all waiters.
     */
    void shutdown();

    bool isShutdown() const;
    std::size_t size() const;

    /**
     * Requests for @p model alive anywhere in the system: accepted by
     * push() and not yet answered — still queued, claimed into a batch,
     * or executing. The batcher's all-aboard flush compares its batch
     * size against this: when the batch already holds every live
     * same-model request, no co-rider can possibly arrive from the
     * current clients (any client able to submit one is blocked on us),
     * so waiting out maxDelayUs would buy pure latency. Counted per
     * model — other models' requests can never join this batch, so they
     * must not hold it open. (Same-model requests executing on another
     * worker still count: their clients might resubmit, and holding the
     * batch open for them preserves the pre-all-aboard behavior.)
     * Executors must call markCompleted() once per promise they fulfil.
     */
    std::int64_t liveCount(const std::string &model) const;

    /** Record @p n claimed @p model requests whose promises are now
     *  fulfilled. */
    void markCompleted(const std::string &model, std::int64_t n);

    /** Requests rejected because their deadline expired while queued. */
    std::uint64_t expiredCount() const;
    /** Requests rejected by shutdown() (or pushed after it). */
    std::uint64_t shutdownCount() const;

  private:
    /** Complete @p r's future with a non-Ok terminal status (and leave
     *  a trace span when a ring is attached). */
    void reject(InferenceRequest &r, ServeStatus status);

    /** Drop @p n from @p model's live count; requires mutex_ held. */
    void decrementLive(const std::string &model, std::int64_t n);

    /** Publish queue_.size() to the depth gauge; requires mutex_ held. */
    void publishDepth();

    obs::Gauge *depthGauge_ = nullptr;
    obs::TraceRing *trace_ = nullptr;
    obs::Counter *expiredCounter_ = nullptr;
    obs::Counter *shutdownCounter_ = nullptr;
    std::chrono::steady_clock::time_point epoch_{};

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<InferenceRequest> queue_;
    std::uint64_t arrivals_ = 0; ///< total pushes (the waitArrival clock)
    std::uint64_t expired_ = 0;
    std::uint64_t shutdownRejected_ = 0;
    bool shutdown_ = false;
    /** Accepted minus answered per model (queue-side rejects and
     *  markCompleted); entries are erased at zero so retired model
     *  names do not accumulate. */
    std::unordered_map<std::string, std::int64_t> liveByModel_;
};

} // namespace bbs

#endif // BBS_SERVE_REQUEST_QUEUE_HPP
