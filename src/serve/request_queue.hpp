/**
 * @file
 * Lock + condition-variable request queue feeding the batcher.
 *
 * Since the sharding PR one RequestQueue is one SHARD: the server owns
 * several (serve/sharded_queue.hpp) and routes by model name, so this
 * class stays a single FIFO shared by the models that hash onto it:
 * arrival order is preserved per model, and the batcher pops same-model
 * runs without disturbing other models' ordering. Deadline-expired
 * requests are rejected (future completed with DeadlineExpired) whenever
 * a pop scan encounters them, so an expired request never consumes GEMM
 * work. shutdown() completes every still-queued future with ShutDown —
 * no submitter is ever left hanging.
 *
 * Locking discipline: promises are fulfilled and trace spans recorded
 * OUTSIDE mutex_. Completing a promise wakes futures' waiters and the
 * trace ring takes its own mutex; neither may nest inside the queue lock
 * (a submitter woken by set_value could immediately call back into
 * push() on another thread — holding mutex_ across the wake serializes
 * that submitter against the whole scan, and nesting the ring mutex
 * creates a lock-order edge the net layer's completion path would have
 * to respect forever). Every scan collects its rejections under the
 * lock and completes them after releasing it.
 */
#ifndef BBS_SERVE_REQUEST_QUEUE_HPP
#define BBS_SERVE_REQUEST_QUEUE_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/request.hpp"

namespace bbs {

/** What push admission decided (see tryPush). */
enum class PushResult
{
    Ok,         ///< enqueued
    ShutDown,   ///< queue already shut down; promise completed ShutDown
    Overloaded, ///< depth bound hit; promise completed Overloaded
};

class RequestQueue
{
  public:
    /**
     * Attach observability sinks (all optional; call before serving
     * starts): a depth gauge updated under the queue lock on every
     * push/pop/shutdown (so it is exact), a trace ring + steady-clock
     * epoch for the spans of requests the QUEUE rejects (expiry noticed
     * during a pop scan, shutdown) — the server records everything else
     * — and shared expiry/shutdown/overload counters so queue-side
     * rejections land in the same registry series as server-side ones
     * (expiredCount()/shutdownCount() keep the queue's own tallies).
     */
    void observe(obs::Gauge *depth, obs::TraceRing *trace,
                 std::chrono::steady_clock::time_point epoch,
                 obs::Counter *expired = nullptr,
                 obs::Counter *shutdownRejected = nullptr,
                 obs::Counter *overloaded = nullptr);

    /**
     * Admission bound: tryPush rejects with Overloaded once the queue
     * holds @p maxDepth requests. 0 (the default) = unbounded, which is
     * the pre-admission-control behavior. Set before serving starts.
     */
    void setMaxDepth(std::int64_t maxDepth);

    /**
     * Enqueue, enforcing the depth bound. On ShutDown/Overloaded the
     * request's terminal state is delivered before returning (promise or
     * onComplete callback), so the caller only inspects the result. The
     * depth check and the insert happen under one lock acquisition: the
     * bound is exact, not best-effort.
     */
    PushResult tryPush(InferenceRequest r);

    /** tryPush, compressed to the legacy bool shape: true iff enqueued.
     *  (With no depth bound configured the two are equivalent.) */
    bool push(InferenceRequest r);

    /**
     * Block until a request is available (or shutdown), then pop the
     * oldest live one. Expired requests skipped over are rejected.
     * nullopt means shut down: no more work will ever arrive.
     */
    std::optional<InferenceRequest> waitFront();

    /**
     * Non-blocking: pop up to @p maxCount oldest live requests for
     * @p model, leaving other models' requests untouched (in order).
     * Expired requests of ANY model encountered during the scan are
     * rejected. @p version receives the queue's arrival counter observed
     * under the same lock — pass it to waitArrival so a push racing with
     * this scan cannot be missed.
     */
    std::vector<InferenceRequest> popModel(const std::string &model,
                                           std::int64_t maxCount,
                                           std::uint64_t &version);

    /**
     * popModel() appending into a caller-kept vector (the batcher's
     * zero-allocation form); returns the number appended. When @p model
     * aliases an element of @p out (the batcher passes its own
     * batch.front().model), @p out must already have capacity for the
     * appended requests — a reallocation would move the string out from
     * under the scan.
     */
    std::int64_t popModelInto(const std::string &model,
                              std::int64_t maxCount,
                              std::uint64_t &version,
                              std::vector<InferenceRequest> &out);

    /**
     * Block until a push lands after the scan that observed @p version,
     * the deadline @p until passes, or shutdown. True means "new arrivals
     * exist — scan again"; false means flush what you have.
     */
    bool waitArrival(std::uint64_t version,
                     std::chrono::steady_clock::time_point until);

    /**
     * Reject every queued request with ShutDown and refuse future pushes.
     * Idempotent; wakes all waiters.
     */
    void shutdown();

    bool isShutdown() const;
    std::size_t size() const;

    /**
     * Requests for @p model alive anywhere in the system: accepted by
     * push() and not yet answered — still queued, claimed into a batch,
     * or executing. The batcher's all-aboard flush compares its batch
     * size against this: when the batch already holds every live
     * same-model request, no co-rider can possibly arrive from the
     * current clients (any client able to submit one is blocked on us),
     * so waiting out maxDelayUs would buy pure latency. Counted per
     * model — other models' requests can never join this batch, so they
     * must not hold it open. (Same-model requests executing on another
     * worker still count: their clients might resubmit, and holding the
     * batch open for them preserves the pre-all-aboard behavior.)
     * Executors must call markCompleted() once per promise they fulfil.
     */
    std::int64_t liveCount(const std::string &model) const;

    /** Record @p n claimed @p model requests whose promises are now
     *  fulfilled. */
    void markCompleted(const std::string &model, std::int64_t n);

    /**
     * Record @p n claimed @p model requests rejected as DeadlineExpired
     * AFTER they left the queue (the server's flush-time re-check). This
     * is the ONE counting path for every expiry regardless of where it
     * was noticed: it feeds the same internal tally as the pop-scan
     * rejections and the same shared registry counter, so
     * expiredCount(), StatsSnapshot::expired and the Prometheus series
     * can never disagree. Also drops the live count (the executor must
     * NOT additionally call markCompleted for these).
     */
    void markExpired(const std::string &model, std::int64_t n);

    /** Requests rejected because their deadline expired — queued-side
     *  scans AND executor flush-time re-checks (see markExpired). */
    std::uint64_t expiredCount() const;
    /** Requests rejected by shutdown() (or pushed after it). */
    std::uint64_t shutdownCount() const;
    /** Requests shed at admission by the depth bound. */
    std::uint64_t overloadedCount() const;

  private:
    /** A request pulled out of the queue for rejection; completed after
     *  mutex_ is released (see the file comment). */
    struct Rejection
    {
        InferenceRequest r;
        ServeStatus status;
    };

    /** Fulfil promises / run callbacks and record trace spans for
     *  @p rejected. MUST be called with mutex_ NOT held. Clears the
     *  vector (capacity is kept — the drain path stays allocation-free
     *  once the per-thread scratch has seen its high-water mark). */
    void completeRejections(std::vector<Rejection> &rejected);

    /** Per-thread rejection scratch: scans move doomed requests here
     *  under the lock and complete them after unlocking, without a
     *  per-call allocation. */
    static std::vector<Rejection> &rejectionScratch();

    /** Drop @p n from @p model's live count; requires mutex_ held. */
    void decrementLive(const std::string &model, std::int64_t n);

    /** Publish queue_.size() to the depth gauge; requires mutex_ held. */
    void publishDepth();

    obs::Gauge *depthGauge_ = nullptr;
    obs::TraceRing *trace_ = nullptr;
    obs::Counter *expiredCounter_ = nullptr;
    obs::Counter *shutdownCounter_ = nullptr;
    obs::Counter *overloadedCounter_ = nullptr;
    std::chrono::steady_clock::time_point epoch_{};

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<InferenceRequest> queue_;
    std::int64_t maxDepth_ = 0;  ///< 0 = unbounded
    std::uint64_t arrivals_ = 0; ///< total pushes (the waitArrival clock)
    std::uint64_t expired_ = 0;
    std::uint64_t shutdownRejected_ = 0;
    std::uint64_t overloaded_ = 0;
    bool shutdown_ = false;
    /** Accepted minus answered per model (queue-side rejects and
     *  markCompleted); entries are erased at zero so retired model
     *  names do not accumulate. */
    std::unordered_map<std::string, std::int64_t> liveByModel_;
};

} // namespace bbs

#endif // BBS_SERVE_REQUEST_QUEUE_HPP
