#include "serve/model_registry.hpp"

namespace bbs {

void
ModelRegistry::add(const std::string &name, Int8Network engine)
{
    add(name, std::make_shared<const Int8Network>(std::move(engine)));
}

void
ModelRegistry::add(const std::string &name,
                   std::shared_ptr<const Int8Network> engine)
{
    std::lock_guard<std::mutex> lock(mutex_);
    models_[name] = std::move(engine);
}

std::shared_ptr<const Int8Network>
ModelRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    return it == models_.end() ? nullptr : it->second;
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto &[name, engine] : models_)
        out.push_back(name);
    return out;
}

std::size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return models_.size();
}

} // namespace bbs
