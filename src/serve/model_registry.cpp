#include "serve/model_registry.hpp"

#include "common/metrics.hpp"

namespace bbs {

void
ModelRegistry::add(const std::string &name, Int8Network &&engine)
{
    swap(name, std::make_shared<const Int8Network>(std::move(engine)));
}

void
ModelRegistry::add(const std::string &name,
                   std::shared_ptr<const Int8Network> engine)
{
    swap(name, std::move(engine));
}

std::uint64_t
ModelRegistry::swap(const std::string &name,
                    std::shared_ptr<const Int8Network> engine)
{
    std::shared_ptr<const Int8Network> retired;
    std::uint64_t version = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry &entry = models_[name];
        // Swap out under the lock, release after: dropping the last
        // reference can unmap a store-backed model's container, and
        // that teardown has no business inside the registry mutex.
        retired = std::move(entry.engine);
        entry.engine = std::move(engine);
        version = ++entry.version;
    }
    if (retired != nullptr)
        obs::Registry::global()
            .counter("bbs_registry_swaps",
                     "Model hot-swaps (re-registrations of a live name)")
            .inc();
    return version;
}

std::uint64_t
ModelRegistry::version(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    return it == models_.end() ? 0 : it->second.version;
}

std::shared_ptr<const Int8Network>
ModelRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    return it == models_.end() ? nullptr : it->second.engine;
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto &[name, entry] : models_)
        out.push_back(name);
    return out;
}

std::size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return models_.size();
}

} // namespace bbs
