/**
 * @file
 * Dynamic micro-batching policy: coalesce queued single-sample requests
 * for one model into a GEMM-sized batch.
 *
 * A batch opens when the oldest live request is popped, and closes when
 * (a) it holds maxBatch requests, (b) it holds every request currently
 * live in the system (the "all-aboard" flush: every client is blocked on
 * this batch, so waiting longer can only add latency), or (c) maxDelayUs
 * microseconds have passed since it opened — the flush-on-timeout bound
 * on the latency cost any request pays for riding a batch. Requests for
 * other models stay queued, in order, for subsequent batches; a GEMM
 * batch never mixes models.
 */
#ifndef BBS_SERVE_BATCHER_HPP
#define BBS_SERVE_BATCHER_HPP

#include <cstdint>
#include <vector>

#include "serve/request_queue.hpp"

namespace bbs {

/** Batch-formation knobs (see README "Serving"). */
struct BatcherConfig
{
    /** Largest batch one gemmCompressed call executes. */
    std::int64_t maxBatch = 32;
    /**
     * Longest a batch waits for co-riders after its first request, in
     * microseconds. 0 = never wait: serve whatever is queued right now.
     */
    std::int64_t maxDelayUs = 2000;
};

class Batcher
{
  public:
    Batcher(RequestQueue &queue, BatcherConfig config);

    /**
     * Block for the next batch: 1..maxBatch same-model requests, oldest
     * first. An empty vector means the queue is shut down and drained —
     * the caller's serve loop should exit. Requests already claimed into
     * a batch when shutdown lands are still returned (and should be
     * served): only unclaimed queue contents are rejected.
     */
    std::vector<InferenceRequest> nextBatch();

    /**
     * nextBatch() into a caller-kept vector (cleared first, reserved to
     * maxBatch) — the serving worker's zero-allocation form: once the
     * vector has seen maxBatch capacity, forming further batches
     * allocates nothing.
     */
    void nextBatch(std::vector<InferenceRequest> &out);

    const BatcherConfig &config() const { return config_; }

  private:
    RequestQueue &queue_;
    BatcherConfig config_;
};

} // namespace bbs

#endif // BBS_SERVE_BATCHER_HPP
