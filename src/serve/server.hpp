/**
 * @file
 * The concurrent inference runtime tying the serving layer together:
 *
 *   submit() -> RequestQueue -> Batcher (coalesce <= maxBatch, flush
 *   after maxDelayUs) -> worker pool -> one engine::MatmulPlan run per
 *   layer per batch -> per-request futures.
 *
 * The server holds per-model plans through the registry: every hosted
 * Int8Network prepares one MatmulPlan per layer at construction, and
 * execution is forward() with the per-row calibration policy — so every
 * response is bit-identical to running that request alone, and the
 * batch-of-1 fast path is the plan's Auto decision (per-dot at one row),
 * not batcher special-casing. Workers are plain threads; the GEMM inside
 * each batch additionally uses parallelFor, whose worker count honours
 * BBS_THREADS (resolved once through engine::EngineConfig) /
 * setWorkerThreadCap — with one server worker (the default), batches
 * execute sequentially with full intra-GEMM parallelism, which is the
 * throughput-optimal shape on a dedicated box.
 */
#ifndef BBS_SERVE_SERVER_HPP
#define BBS_SERVE_SERVER_HPP

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/server_stats.hpp"

namespace bbs {

struct ServerConfig
{
    std::int64_t maxBatch = 32;   ///< requests per gemmCompressed call
    std::int64_t maxDelayUs = 2000; ///< flush-on-timeout bound
    /** Serving threads. 0 = none: drive manually with drainOnce()
     *  (deterministic tests). */
    int workers = 1;
};

class InferenceServer
{
  public:
    /** Workers (if any) start immediately; the registry is shared so
     *  models can be added while serving. */
    explicit InferenceServer(std::shared_ptr<ModelRegistry> registry,
                             ServerConfig config = {});
    ~InferenceServer(); ///< stop()s

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Submit one sample for @p model. UnknownModel/BadInput resolve the
     * future immediately; otherwise it resolves when the request is
     * served, expires past @p deadlineUs (relative, <= 0 = none), or the
     * server stops.
     */
    std::future<InferenceResponse> submit(const std::string &model,
                                          std::vector<float> input,
                                          std::int64_t deadlineUs = 0);

    /**
     * Serve one batch synchronously on the calling thread (blocks for
     * the first request; honours the batching knobs). Returns rows
     * served — 0 means the queue shut down. Test/embedding hook; safe
     * alongside running workers, though normally used with workers == 0.
     */
    std::int64_t drainOnce();

    /**
     * Shut down: pending (unclaimed) requests are rejected with
     * ShutDown, in-flight batches complete normally, workers join.
     * Idempotent. Submissions after stop() resolve with ShutDown.
     */
    void stop();

    /** Execution stats merged with the queue's rejection counters. */
    StatsSnapshot stats() const;
    const ServerConfig &config() const { return config_; }
    const ModelRegistry &registry() const { return *registry_; }

  private:
    void workerLoop();
    /**
     * Execute one formed batch and complete its futures. Consumes the
     * batch in place (the caller's reusable vector — entries are
     * moved-from afterwards): together with the per-thread forward
     * scratch and the presized response buffers, a warm worker completes
     * a request with zero heap allocations.
     */
    void execute(std::vector<InferenceRequest> &batch);

    std::shared_ptr<ModelRegistry> registry_;
    ServerConfig config_;
    RequestQueue queue_;
    Batcher batcher_;
    ServerStats stats_;
    std::vector<std::thread> workers_;
};

} // namespace bbs

#endif // BBS_SERVE_SERVER_HPP
