/**
 * @file
 * The concurrent inference runtime tying the serving layer together:
 *
 *   submit() -> ShardedQueue (route by model hash) -> per-shard Batcher
 *   (coalesce <= maxBatch, flush after maxDelayUs) -> worker pool -> one
 *   engine::MatmulPlan run per layer per batch -> per-request futures
 *   (or the submitAsync completion callback).
 *
 * The server holds per-model plans through the registry: every hosted
 * Int8Network prepares one MatmulPlan per layer at construction, and
 * execution is forward() with the per-row calibration policy — so every
 * response is bit-identical to running that request alone, and the
 * batch-of-1 fast path is the plan's Auto decision (per-dot at one row),
 * not batcher special-casing. Workers are plain threads; the GEMM inside
 * each batch additionally uses parallelFor, whose worker count honours
 * BBS_THREADS (resolved once through engine::EngineConfig) /
 * setWorkerThreadCap — with one server worker (the default), batches
 * execute sequentially with full intra-GEMM parallelism, which is the
 * throughput-optimal shape on a dedicated box.
 *
 * Sharding (the network-serving PR): the queue+batcher pair is
 * replicated `shards` times and requests route by hash of the model
 * name, so one hot model saturating its shard neither blocks other
 * models' submitters on its queue mutex nor consumes their admission
 * budget. shards = 1 (the default) is byte-for-byte the old single
 * queue. Admission control is opt-in via maxShardDepth: submit()
 * rejects with ServeStatus::Overloaded when the target shard is at its
 * depth bound, or — for deadline-carrying requests — when the shard's
 * observed service rate says the request would expire before a worker
 * reached it. Both reject-at-the-door paths keep an overloaded shard's
 * queue wait bounded instead of letting every accepted request pay the
 * full wait and then expire (deadline churn).
 */
#ifndef BBS_SERVE_SERVER_HPP
#define BBS_SERVE_SERVER_HPP

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/sharded_queue.hpp"
#include "serve/server_stats.hpp"

namespace bbs {

struct ServerConfig
{
    std::int64_t maxBatch = 32;   ///< requests per gemmCompressed call
    std::int64_t maxDelayUs = 2000; ///< flush-on-timeout bound
    /** Serving threads. 0 = none: drive manually with drainOnce()
     *  (deterministic tests). When > 0 the count is raised to at least
     *  `shards` so every shard has a dedicated drain thread (worker w
     *  drains shard w % shards). */
    int workers = 1;
    /** Queue+batcher shards (requests route by hash of the model name).
     *  1 = the classic single-queue server. */
    int shards = 1;
    /** Per-shard admission bound: a submit targeting a shard already
     *  holding this many queued requests is rejected with Overloaded
     *  instead of enqueued. 0 (default) = unbounded — no admission
     *  control, the pre-PR behavior. Enabling it also arms the
     *  deadline-aware shed (see InferenceServer::submit). */
    std::int64_t maxShardDepth = 0;
};

class InferenceServer
{
  public:
    /** Completion callback type of submitAsync (see
     *  InferenceRequest::onComplete for the threading contract). */
    using CompletionFn = std::function<void(InferenceResponse &&)>;

    /** Workers (if any) start immediately; the registry is shared so
     *  models can be added while serving. */
    explicit InferenceServer(std::shared_ptr<ModelRegistry> registry,
                             ServerConfig config = {});
    ~InferenceServer(); ///< stop()s

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Submit one sample for @p model. UnknownModel/BadInput resolve the
     * future immediately (as does an Overloaded admission rejection);
     * otherwise it resolves when the request is served, expires past
     * @p deadlineUs (relative, <= 0 = none), or the server stops.
     */
    std::future<InferenceResponse> submit(const std::string &model,
                                          std::vector<float> input,
                                          std::int64_t deadlineUs = 0);

    /**
     * submit() with callback delivery instead of a future: @p onComplete
     * receives the terminal response exactly once, from whichever thread
     * completes the request — immediately on the calling thread for
     * admission rejections (UnknownModel/BadInput/Overloaded/ShutDown),
     * else later from a serving worker or the shutdown path. This is the
     * socket front-end's entry point: an epoll loop cannot block on
     * futures, so the callback must be cheap and non-blocking (the net
     * layer just moves the response into a completion queue and signals
     * an eventfd).
     */
    void submitAsync(const std::string &model, std::vector<float> input,
                     std::int64_t deadlineUs, CompletionFn onComplete);

    /**
     * Serve one batch from @p shard synchronously on the calling thread
     * (blocks for the first request; honours the batching knobs).
     * Returns rows served — 0 means the queue shut down. Test/embedding
     * hook; safe alongside running workers, though normally used with
     * workers == 0.
     */
    std::int64_t drainOnce(std::size_t shard = 0);

    /**
     * Shut down: pending (unclaimed) requests are rejected with
     * ShutDown, in-flight batches complete normally, workers join.
     * Idempotent. Submissions after stop() resolve with ShutDown.
     */
    void stop();

    /** Execution stats merged with the queues' rejection counters. */
    StatsSnapshot stats() const;
    const ServerConfig &config() const { return config_; }
    const ModelRegistry &registry() const { return *registry_; }

    /** The sharded queue (shard routing, per-shard depth/tallies).
     *  Tests use this to claim requests and pin counting invariants;
     *  production code should not pop from it directly. */
    ShardedQueue &queues() { return shards_; }
    const ShardedQueue &queues() const { return shards_; }

    /** This server's metric registry (serving-layer series; the
     *  engine/pool series live in obs::Registry::global()). */
    obs::Registry &metrics() { return metrics_; }
    const obs::Registry &metrics() const { return metrics_; }

    /**
     * Prometheus text exposition of this server's registry, with the
     * process-global (engine/pool) series appended when
     * @p includeGlobal — one scrape shows the whole vertical.
     */
    std::string metricsText(bool includeGlobal = true) const;

    /** The per-request trace ring (submit → claimed → execute →
     *  complete spans for the most recent requests). */
    const obs::TraceRing &trace() const { return trace_; }

    /** Dump the trace ring as one JSON document (serve_demo
     *  --trace-dump, the soak harness). */
    void dumpTrace(std::ostream &out) const;

  private:
    /** Per-shard mutable hot state, cache-line isolated so one shard's
     *  drain loop never false-shares with another's. */
    struct alignas(64) ShardState
    {
        /** EMA of observed per-row service time (µs) on this shard; 0
         *  until the first batch completes. Written by drain threads
         *  (plain store — a lost update only delays the estimate by one
         *  batch), read by submitters for the deadline-aware shed. */
        std::atomic<double> emaRowUs{0.0};
    };

    /** Common tail of submit()/submitAsync(): validate, route, admit. */
    void submitImpl(InferenceRequest r);

    void workerLoop(std::size_t shard);
    /**
     * Execute one formed batch from @p shard and complete its requests.
     * Consumes the batch in place (the caller's reusable vector —
     * entries are moved-from afterwards): together with the per-thread
     * forward scratch and the presized response buffers, a warm worker
     * completes a request with zero heap allocations.
     */
    void execute(std::vector<InferenceRequest> &batch, std::size_t shard);

    /** Trace span for a request reaching its terminal state in the
     *  server (submit-side rejects, flush-time expiry, Ok). */
    void recordSpan(const InferenceRequest &r, ServeStatus status,
                    std::int32_t batchRows,
                    std::chrono::steady_clock::time_point execStart,
                    std::chrono::steady_clock::time_point done);

    std::shared_ptr<ModelRegistry> registry_;
    ServerConfig config_;
    /** Declared before stats_/shards_: they register metrics here. */
    obs::Registry metrics_;
    obs::TraceRing trace_;
    /** steady-clock zero of every trace-span timestamp. */
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<std::uint64_t> nextId_{1};
    ShardedQueue shards_;
    /** One batcher per shard (a batcher wraps exactly one queue). */
    std::vector<std::unique_ptr<Batcher>> batchers_;
    std::unique_ptr<ShardState[]> shardState_;
    ServerStats stats_;
    obs::Counter &submitted_; ///< all submit() calls, pre-validation
    std::vector<std::thread> workers_;
};

} // namespace bbs

#endif // BBS_SERVE_SERVER_HPP
