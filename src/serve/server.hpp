/**
 * @file
 * The concurrent inference runtime tying the serving layer together:
 *
 *   submit() -> RequestQueue -> Batcher (coalesce <= maxBatch, flush
 *   after maxDelayUs) -> worker pool -> one engine::MatmulPlan run per
 *   layer per batch -> per-request futures.
 *
 * The server holds per-model plans through the registry: every hosted
 * Int8Network prepares one MatmulPlan per layer at construction, and
 * execution is forward() with the per-row calibration policy — so every
 * response is bit-identical to running that request alone, and the
 * batch-of-1 fast path is the plan's Auto decision (per-dot at one row),
 * not batcher special-casing. Workers are plain threads; the GEMM inside
 * each batch additionally uses parallelFor, whose worker count honours
 * BBS_THREADS (resolved once through engine::EngineConfig) /
 * setWorkerThreadCap — with one server worker (the default), batches
 * execute sequentially with full intra-GEMM parallelism, which is the
 * throughput-optimal shape on a dedicated box.
 */
#ifndef BBS_SERVE_SERVER_HPP
#define BBS_SERVE_SERVER_HPP

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/server_stats.hpp"

namespace bbs {

struct ServerConfig
{
    std::int64_t maxBatch = 32;   ///< requests per gemmCompressed call
    std::int64_t maxDelayUs = 2000; ///< flush-on-timeout bound
    /** Serving threads. 0 = none: drive manually with drainOnce()
     *  (deterministic tests). */
    int workers = 1;
};

class InferenceServer
{
  public:
    /** Workers (if any) start immediately; the registry is shared so
     *  models can be added while serving. */
    explicit InferenceServer(std::shared_ptr<ModelRegistry> registry,
                             ServerConfig config = {});
    ~InferenceServer(); ///< stop()s

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Submit one sample for @p model. UnknownModel/BadInput resolve the
     * future immediately; otherwise it resolves when the request is
     * served, expires past @p deadlineUs (relative, <= 0 = none), or the
     * server stops.
     */
    std::future<InferenceResponse> submit(const std::string &model,
                                          std::vector<float> input,
                                          std::int64_t deadlineUs = 0);

    /**
     * Serve one batch synchronously on the calling thread (blocks for
     * the first request; honours the batching knobs). Returns rows
     * served — 0 means the queue shut down. Test/embedding hook; safe
     * alongside running workers, though normally used with workers == 0.
     */
    std::int64_t drainOnce();

    /**
     * Shut down: pending (unclaimed) requests are rejected with
     * ShutDown, in-flight batches complete normally, workers join.
     * Idempotent. Submissions after stop() resolve with ShutDown.
     */
    void stop();

    /** Execution stats merged with the queue's rejection counters. */
    StatsSnapshot stats() const;
    const ServerConfig &config() const { return config_; }
    const ModelRegistry &registry() const { return *registry_; }

    /** This server's metric registry (serving-layer series; the
     *  engine/pool series live in obs::Registry::global()). */
    obs::Registry &metrics() { return metrics_; }
    const obs::Registry &metrics() const { return metrics_; }

    /**
     * Prometheus text exposition of this server's registry, with the
     * process-global (engine/pool) series appended when
     * @p includeGlobal — one scrape shows the whole vertical.
     */
    std::string metricsText(bool includeGlobal = true) const;

    /** The per-request trace ring (submit → claimed → execute →
     *  complete spans for the most recent requests). */
    const obs::TraceRing &trace() const { return trace_; }

    /** Dump the trace ring as one JSON document (serve_demo
     *  --trace-dump, the soak harness). */
    void dumpTrace(std::ostream &out) const;

  private:
    void workerLoop();
    /**
     * Execute one formed batch and complete its futures. Consumes the
     * batch in place (the caller's reusable vector — entries are
     * moved-from afterwards): together with the per-thread forward
     * scratch and the presized response buffers, a warm worker completes
     * a request with zero heap allocations.
     */
    void execute(std::vector<InferenceRequest> &batch);

    /** Trace span for a request reaching its terminal state in the
     *  server (submit-side rejects, flush-time expiry, Ok). */
    void recordSpan(const InferenceRequest &r, ServeStatus status,
                    std::int32_t batchRows,
                    std::chrono::steady_clock::time_point execStart,
                    std::chrono::steady_clock::time_point done);

    std::shared_ptr<ModelRegistry> registry_;
    ServerConfig config_;
    /** Declared before stats_/queue_: they register metrics here. */
    obs::Registry metrics_;
    obs::TraceRing trace_;
    /** steady-clock zero of every trace-span timestamp. */
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<std::uint64_t> nextId_{1};
    RequestQueue queue_;
    Batcher batcher_;
    ServerStats stats_;
    obs::Counter &submitted_; ///< all submit() calls, pre-validation
    std::vector<std::thread> workers_;
};

} // namespace bbs

#endif // BBS_SERVE_SERVER_HPP
