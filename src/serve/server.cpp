#include "serve/server.hpp"

#include "common/logging.hpp"
#include "nn/network.hpp"
#include "obs/exposition.hpp"

namespace bbs {

InferenceServer::InferenceServer(std::shared_ptr<ModelRegistry> registry,
                                 ServerConfig config)
    : registry_(std::move(registry)),
      config_(config),
      epoch_(std::chrono::steady_clock::now()),
      batcher_(queue_, BatcherConfig{config.maxBatch, config.maxDelayUs}),
      stats_(config.maxBatch, &metrics_),
      submitted_(metrics_.counter("bbs_serve_requests_submitted_total",
                                  "submit() calls, before validation"))
{
    BBS_REQUIRE(registry_ != nullptr, "server needs a model registry");
    BBS_REQUIRE(config_.workers >= 0, "workers must be >= 0, got ",
                config_.workers);
    // The rejection counters were registered by stats_; get-or-create
    // hands the queue the same instances, so queue-side and server-side
    // rejections accumulate into one series each.
    queue_.observe(&metrics_.gauge("bbs_serve_queue_depth",
                                   "Requests currently queued"),
                   &trace_, epoch_,
                   &metrics_.counter("bbs_serve_requests_expired_total"),
                   &metrics_.counter("bbs_serve_requests_shutdown_total"));
    workers_.reserve(static_cast<std::size_t>(config_.workers));
    for (int w = 0; w < config_.workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

InferenceServer::~InferenceServer()
{
    stop();
}

std::future<InferenceResponse>
InferenceServer::submit(const std::string &model, std::vector<float> input,
                        std::int64_t deadlineUs)
{
    InferenceRequest r;
    r.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    r.model = model;
    r.input = std::move(input);
    r.enqueued = std::chrono::steady_clock::now();
    r.deadline = deadlineUs > 0
                     ? r.enqueued + std::chrono::microseconds(deadlineUs)
                     : std::chrono::steady_clock::time_point::max();
    std::future<InferenceResponse> fut = r.promise.get_future();
    submitted_.inc();

    r.engine = registry_->find(model);
    ServeStatus bad = ServeStatus::Ok;
    if (!r.engine)
        bad = ServeStatus::UnknownModel;
    else if (static_cast<std::int64_t>(r.input.size()) !=
             r.engine->inputFeatures())
        bad = ServeStatus::BadInput;
    if (bad != ServeStatus::Ok) {
        stats_.recordRejection(bad);
        recordSpan(r, bad, 0, std::chrono::steady_clock::time_point::min(),
                   std::chrono::steady_clock::now());
        InferenceResponse resp;
        resp.status = bad;
        r.promise.set_value(std::move(resp));
        return fut;
    }

    // Per-model admission counter. Registered only for KNOWN model names
    // (bounded label cardinality); the registry's get-or-create makes
    // repeat submits one mutex-guarded hash lookup, which is noise on
    // the submit side — the drain side touches no registry.
    metrics_
        .counter("bbs_serve_model_requests_total",
                 "Accepted requests per model",
                 "model=\"" + model + "\"")
        .inc();

    // Response storage is allocated HERE, on the submitting thread: the
    // executor moves it into the response and fills it in place, so the
    // worker's per-request cost contains no allocation.
    r.logitsBuffer.resize(
        static_cast<std::size_t>(r.engine->outputFeatures()));

    queue_.push(std::move(r)); // completes with ShutDown if stopped
    return fut;
}

std::int64_t
InferenceServer::drainOnce()
{
    // Per-thread batch vector, kept at maxBatch capacity: a warm worker
    // forms and executes every batch without allocating.
    static thread_local std::vector<InferenceRequest> batch;
    batcher_.nextBatch(batch);
    std::int64_t rows = static_cast<std::int64_t>(batch.size());
    if (rows > 0)
        execute(batch);
    return rows;
}

void
InferenceServer::workerLoop()
{
    while (drainOnce() > 0) {
    }
}

void
InferenceServer::execute(std::vector<InferenceRequest> &batch)
{
    // Deadlines re-checked at flush time: a request claimed as batch
    // leader may have sat out the whole maxDelayUs wait, and the
    // contract is "expired requests are rejected, never executed".
    // Compacted in place — the live requests slide down, nothing is
    // copied out.
    {
        auto now = std::chrono::steady_clock::now();
        std::size_t keep = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            InferenceRequest &r = batch[i];
            if (r.deadline <= now) {
                stats_.recordRejection(ServeStatus::DeadlineExpired);
                queue_.markCompleted(r.model, 1);
                InferenceResponse resp;
                resp.status = ServeStatus::DeadlineExpired;
                resp.queueUs = microsBetween(r.enqueued, now);
                resp.totalUs = resp.queueUs;
                r.promise.set_value(std::move(resp));
                recordSpan(r, ServeStatus::DeadlineExpired, 0,
                           std::chrono::steady_clock::time_point::min(),
                           now);
            } else {
                if (keep != i)
                    batch[keep] = std::move(batch[i]);
                ++keep;
            }
        }
        batch.resize(keep); // shrink: never reallocates
    }

    // The batcher keys on the model NAME; if the registry replaced a
    // model while requests were queued, two engine instances can share a
    // name. Split into per-engine runs so each GEMM stays homogeneous:
    // each run is partitioned to the front of the unprocessed tail by
    // swapping (requests are independent, so reordering is invisible).
    // All intermediates live in per-thread buffers kept at high-water
    // size — a warm worker executes the whole path allocation-free.
    static thread_local Batch x;
    static thread_local Batch logits;
    std::size_t done = 0;
    while (done < batch.size()) {
        const Int8Network *engine = batch[done].engine.get();
        std::size_t runEnd = done + 1;
        for (std::size_t i = runEnd; i < batch.size(); ++i) {
            if (batch[i].engine.get() == engine) {
                if (i != runEnd)
                    std::swap(batch[i], batch[runEnd]);
                ++runEnd;
            }
        }

        std::int64_t n = static_cast<std::int64_t>(runEnd - done);
        std::int64_t in = engine->inputFeatures();
        const std::string &runModel = batch[done].model; // shared by run
        auto execStart = std::chrono::steady_clock::now();

        x.resizeTo(Shape{n, in});
        for (std::int64_t r = 0; r < n; ++r)
            for (std::int64_t c = 0; c < in; ++c)
                x.at(r, c) =
                    batch[done + static_cast<std::size_t>(r)]
                        .input[static_cast<std::size_t>(c)];

        // One plan run per layer for the whole batch; per-row calibration
        // keeps each response independent of its co-riders. Batch-of-1 is
        // a PLAN decision now, not batcher special-casing: each layer's
        // MatmulPlan resolves Auto to the per-dot loop at one row
        // (nothing amortizes the GEMM staging) and to the batched
        // compressed GEMM otherwise — bit-identical either way.
        engine->forwardInto(
            x, InferencePolicy{engine::Calibration::PerRow,
                               engine::PlanKind::Auto}, logits);

        auto doneAt = std::chrono::steady_clock::now();
        std::int64_t width = logits.shape().dim(1);
        stats_.recordBatch(n);
        for (std::int64_t r = 0; r < n; ++r) {
            InferenceRequest &req =
                batch[done + static_cast<std::size_t>(r)];
            InferenceResponse resp;
            resp.status = ServeStatus::Ok;
            // The response's storage was allocated at submit time;
            // steal it and fill it in place.
            resp.logits = std::move(req.logitsBuffer);
            resp.logits.resize(static_cast<std::size_t>(width));
            int best = 0;
            for (std::int64_t c = 0; c < width; ++c) {
                float v = logits.at(r, c);
                resp.logits[static_cast<std::size_t>(c)] = v;
                if (v > resp.logits[static_cast<std::size_t>(best)])
                    best = static_cast<int>(c);
            }
            resp.predicted = best;
            resp.batchRows = n;
            resp.queueUs = microsBetween(req.enqueued, execStart);
            resp.totalUs = microsBetween(req.enqueued, doneAt);
            stats_.recordCompletion(resp.queueUs, resp.totalUs);
            req.promise.set_value(std::move(resp));
            // Trace span: a stack POD copied under the ring's mutex —
            // the drain path's zero-allocation invariant holds.
            recordSpan(req, ServeStatus::Ok, static_cast<std::int32_t>(n),
                       execStart, doneAt);
        }
        queue_.markCompleted(runModel, n);
        done = runEnd;
    }
}

void
InferenceServer::stop()
{
    queue_.shutdown();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
}

StatsSnapshot
InferenceServer::stats() const
{
    // Rejections happen on both sides: in the queue (expiry noticed at
    // pop, shutdown) and in the server (expiry noticed at flush, bad
    // submissions). Both sides increment the SAME registry counters
    // (see the queue_.observe call in the constructor), so the snapshot
    // already carries the merged totals.
    StatsSnapshot s = stats_.snapshot();
    s.queueDepth = queue_.size();
    return s;
}

void
InferenceServer::recordSpan(const InferenceRequest &r, ServeStatus status,
                            std::int32_t batchRows,
                            std::chrono::steady_clock::time_point execStart,
                            std::chrono::steady_clock::time_point done)
{
    constexpr auto kNever = std::chrono::steady_clock::time_point::min();
    obs::TraceSpan span;
    span.id = r.id;
    span.setModel(r.model);
    span.status = static_cast<int>(status);
    span.batchRows = batchRows;
    span.submitUs = microsBetween(epoch_, r.enqueued);
    if (r.claimed != kNever)
        span.claimedUs = microsBetween(epoch_, r.claimed);
    if (execStart != kNever)
        span.execStartUs = microsBetween(epoch_, execStart);
    span.doneUs = microsBetween(epoch_, done);
    trace_.record(span);
}

std::string
InferenceServer::metricsText(bool includeGlobal) const
{
    std::string text = obs::prometheusText(metrics_.snapshot());
    if (includeGlobal)
        text += obs::prometheusText(obs::Registry::global().snapshot());
    return text;
}

void
InferenceServer::dumpTrace(std::ostream &out) const
{
    trace_.dumpJson(out, [](int s) {
        return serveStatusName(static_cast<ServeStatus>(s));
    });
}

const char *
serveStatusName(ServeStatus s)
{
    switch (s) {
    case ServeStatus::Ok: return "Ok";
    case ServeStatus::DeadlineExpired: return "DeadlineExpired";
    case ServeStatus::ShutDown: return "ShutDown";
    case ServeStatus::UnknownModel: return "UnknownModel";
    case ServeStatus::BadInput: return "BadInput";
    }
    return "?";
}

} // namespace bbs
