#include "serve/server.hpp"

#include "common/logging.hpp"
#include "nn/network.hpp"
#include "obs/exposition.hpp"

namespace bbs {

InferenceServer::InferenceServer(std::shared_ptr<ModelRegistry> registry,
                                 ServerConfig config)
    : registry_(std::move(registry)),
      config_(config),
      epoch_(std::chrono::steady_clock::now()),
      shards_(static_cast<std::size_t>(config.shards > 0 ? config.shards
                                                         : 1)),
      shardState_(std::make_unique<ShardState[]>(shards_.shardCount())),
      stats_(config.maxBatch, &metrics_),
      submitted_(metrics_.counter("bbs_serve_requests_submitted_total",
                                  "submit() calls, before validation"))
{
    BBS_REQUIRE(registry_ != nullptr, "server needs a model registry");
    BBS_REQUIRE(config_.workers >= 0, "workers must be >= 0, got ",
                config_.workers);
    BBS_REQUIRE(config_.shards >= 1, "shards must be >= 1, got ",
                config_.shards);
    BBS_REQUIRE(config_.maxShardDepth >= 0,
                "maxShardDepth must be >= 0, got ", config_.maxShardDepth);

    // The rejection counters were registered by stats_; get-or-create
    // hands the queues the same instances, so queue-side and server-side
    // rejections accumulate into one series each.
    obs::Counter &expired =
        metrics_.counter("bbs_serve_requests_expired_total");
    obs::Counter &shutdownRejected =
        metrics_.counter("bbs_serve_requests_shutdown_total");
    obs::Counter &overloaded =
        metrics_.counter("bbs_serve_requests_overloaded_total");
    std::size_t nShards = shards_.shardCount();
    for (std::size_t i = 0; i < nShards; ++i) {
        // With one shard the depth gauge keeps its classic unlabelled
        // name (dashboards and the soak harness match on it); with
        // several, each shard gets its own labelled series.
        obs::Gauge &depth =
            nShards == 1
                ? metrics_.gauge("bbs_serve_queue_depth",
                                 "Requests currently queued")
                : metrics_.gauge("bbs_serve_queue_depth",
                                 "Requests currently queued",
                                 "shard=\"" + std::to_string(i) + "\"");
        shards_.shard(i).observe(&depth, &trace_, epoch_, &expired,
                                 &shutdownRejected, &overloaded);
        batchers_.push_back(std::make_unique<Batcher>(
            shards_.shard(i),
            BatcherConfig{config_.maxBatch, config_.maxDelayUs}));
    }
    if (config_.maxShardDepth > 0)
        shards_.setMaxDepth(config_.maxShardDepth);

    // Every shard needs a drain thread, else requests routed to an
    // undrained shard would sit forever: raise the worker count to the
    // shard count when threads were requested at all (workers == 0 stays
    // manual-drain for tests, which pick the shard explicitly).
    int workers = config_.workers;
    if (workers > 0 && workers < static_cast<int>(nShards))
        workers = static_cast<int>(nShards);
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        workers_.emplace_back(
            [this, shard = static_cast<std::size_t>(w) % nShards] {
                workerLoop(shard);
            });
}

InferenceServer::~InferenceServer()
{
    stop();
}

std::future<InferenceResponse>
InferenceServer::submit(const std::string &model, std::vector<float> input,
                        std::int64_t deadlineUs)
{
    InferenceRequest r;
    r.model = model;
    r.input = std::move(input);
    r.enqueued = std::chrono::steady_clock::now();
    r.deadline = deadlineUs > 0
                     ? r.enqueued + std::chrono::microseconds(deadlineUs)
                     : std::chrono::steady_clock::time_point::max();
    std::future<InferenceResponse> fut = r.promise.get_future();
    submitImpl(std::move(r));
    return fut;
}

void
InferenceServer::submitAsync(const std::string &model,
                             std::vector<float> input,
                             std::int64_t deadlineUs,
                             CompletionFn onComplete)
{
    BBS_REQUIRE(onComplete != nullptr, "submitAsync needs a callback");
    InferenceRequest r;
    r.model = model;
    r.input = std::move(input);
    r.enqueued = std::chrono::steady_clock::now();
    r.deadline = deadlineUs > 0
                     ? r.enqueued + std::chrono::microseconds(deadlineUs)
                     : std::chrono::steady_clock::time_point::max();
    r.onComplete = std::move(onComplete);
    submitImpl(std::move(r));
}

void
InferenceServer::submitImpl(InferenceRequest r)
{
    r.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    submitted_.inc();

    r.engine = registry_->find(r.model);
    ServeStatus bad = ServeStatus::Ok;
    if (!r.engine)
        bad = ServeStatus::UnknownModel;
    else if (static_cast<std::int64_t>(r.input.size()) !=
             r.engine->inputFeatures())
        bad = ServeStatus::BadInput;
    if (bad != ServeStatus::Ok) {
        stats_.recordRejection(bad);
        recordSpan(r, bad, 0, std::chrono::steady_clock::time_point::min(),
                   std::chrono::steady_clock::now());
        InferenceResponse resp;
        resp.status = bad;
        r.complete(std::move(resp));
        return;
    }

    // Per-model admission counter. Registered only for KNOWN model names
    // (bounded label cardinality); the registry's get-or-create makes
    // repeat submits one mutex-guarded hash lookup, which is noise on
    // the submit side — the drain side touches no registry. The name is
    // ESCAPED into the label value: model names are caller-controlled
    // strings, and an unescaped quote would corrupt every series in the
    // exposition after this one.
    metrics_
        .counter("bbs_serve_model_requests_total",
                 "Accepted requests per model",
                 "model=\"" + obs::escapeLabelValue(r.model) + "\"")
        .inc();

    std::size_t shard = shards_.indexFor(r.model);

    // Deadline-aware shed, armed only with admission control on: if the
    // shard's observed service rate says this request would expire
    // before a worker reached it, reject NOW — the submitter gets the
    // Overloaded answer in microseconds instead of a DeadlineExpired
    // answer after the full queue wait it was doomed to pay.
    if (config_.maxShardDepth > 0 &&
        r.deadline != std::chrono::steady_clock::time_point::max()) {
        double rowUs =
            shardState_[shard].emaRowUs.load(std::memory_order_relaxed);
        if (rowUs > 0.0) {
            double queued = static_cast<double>(shards_.shard(shard).size());
            // Everything ahead of us, plus ourselves, plus one flush
            // delay (a fresh request rides at most one maxDelayUs wait).
            double estWaitUs =
                (queued + 1.0) * rowUs +
                static_cast<double>(config_.maxDelayUs);
            auto eta = r.enqueued +
                       std::chrono::microseconds(
                           static_cast<std::int64_t>(estWaitUs));
            if (eta > r.deadline) {
                stats_.recordRejection(ServeStatus::Overloaded);
                auto now = std::chrono::steady_clock::now();
                recordSpan(r, ServeStatus::Overloaded, 0,
                           std::chrono::steady_clock::time_point::min(),
                           now);
                InferenceResponse resp;
                resp.status = ServeStatus::Overloaded;
                resp.queueUs = microsBetween(r.enqueued, now);
                resp.totalUs = resp.queueUs;
                r.complete(std::move(resp));
                return;
            }
        }
    }

    // Response storage is allocated HERE, on the submitting thread: the
    // executor moves it into the response and fills it in place, so the
    // worker's per-request cost contains no allocation.
    r.logitsBuffer.resize(
        static_cast<std::size_t>(r.engine->outputFeatures()));

    // tryPush delivers the terminal state itself on ShutDown/Overloaded
    // (and increments the shared registry counters), so there is nothing
    // to do with the result here.
    shards_.shard(shard).tryPush(std::move(r));
}

std::int64_t
InferenceServer::drainOnce(std::size_t shard)
{
    BBS_REQUIRE(shard < batchers_.size(), "shard ", shard,
                " out of range (", batchers_.size(), " shards)");
    // Per-thread batch vector, kept at maxBatch capacity: a warm worker
    // forms and executes every batch without allocating.
    static thread_local std::vector<InferenceRequest> batch;
    batchers_[shard]->nextBatch(batch);
    std::int64_t rows = static_cast<std::int64_t>(batch.size());
    if (rows > 0)
        execute(batch, shard);
    return rows;
}

void
InferenceServer::workerLoop(std::size_t shard)
{
    while (drainOnce(shard) > 0) {
    }
}

void
InferenceServer::execute(std::vector<InferenceRequest> &batch,
                         std::size_t shard)
{
    RequestQueue &queue = shards_.shard(shard);

    // Deadlines re-checked at flush time: a request claimed as batch
    // leader may have sat out the whole maxDelayUs wait, and the
    // contract is "expired requests are rejected, never executed".
    // Compacted in place — the live requests slide down, nothing is
    // copied out. Counting goes through queue.markExpired — the ONE
    // path every expiry takes, wherever it was noticed — so the queue's
    // tally, StatsSnapshot::expired and the Prometheus series all move
    // together (test_serve asserts the equality).
    {
        auto now = std::chrono::steady_clock::now();
        std::size_t keep = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            InferenceRequest &r = batch[i];
            if (r.deadline <= now) {
                queue.markExpired(r.model, 1);
                InferenceResponse resp;
                resp.status = ServeStatus::DeadlineExpired;
                resp.queueUs = microsBetween(r.enqueued, now);
                resp.totalUs = resp.queueUs;
                r.complete(std::move(resp));
                recordSpan(r, ServeStatus::DeadlineExpired, 0,
                           std::chrono::steady_clock::time_point::min(),
                           now);
            } else {
                if (keep != i)
                    batch[keep] = std::move(batch[i]);
                ++keep;
            }
        }
        batch.resize(keep); // shrink: never reallocates
    }

    // The batcher keys on the model NAME; if the registry replaced a
    // model while requests were queued, two engine instances can share a
    // name. Split into per-engine runs so each GEMM stays homogeneous:
    // each run is partitioned to the front of the unprocessed tail by
    // swapping (requests are independent, so reordering is invisible).
    // All intermediates live in per-thread buffers kept at high-water
    // size — a warm worker executes the whole path allocation-free.
    static thread_local Batch x;
    static thread_local Batch logits;
    std::size_t done = 0;
    while (done < batch.size()) {
        const Int8Network *engine = batch[done].engine.get();
        std::size_t runEnd = done + 1;
        for (std::size_t i = runEnd; i < batch.size(); ++i) {
            if (batch[i].engine.get() == engine) {
                if (i != runEnd)
                    std::swap(batch[i], batch[runEnd]);
                ++runEnd;
            }
        }

        std::int64_t n = static_cast<std::int64_t>(runEnd - done);
        std::int64_t in = engine->inputFeatures();
        const std::string &runModel = batch[done].model; // shared by run
        auto execStart = std::chrono::steady_clock::now();

        x.resizeTo(Shape{n, in});
        for (std::int64_t r = 0; r < n; ++r)
            for (std::int64_t c = 0; c < in; ++c)
                x.at(r, c) =
                    batch[done + static_cast<std::size_t>(r)]
                        .input[static_cast<std::size_t>(c)];

        // One plan run per layer for the whole batch; per-row calibration
        // keeps each response independent of its co-riders. Batch-of-1 is
        // a PLAN decision now, not batcher special-casing: each layer's
        // MatmulPlan resolves Auto to the per-dot loop at one row
        // (nothing amortizes the GEMM staging) and to the batched
        // compressed GEMM otherwise — bit-identical either way.
        engine->forwardInto(
            x, InferencePolicy{engine::Calibration::PerRow,
                               engine::PlanKind::Auto}, logits);

        auto doneAt = std::chrono::steady_clock::now();
        std::int64_t width = logits.shape().dim(1);
        stats_.recordBatch(n);

        // Feed the deadline-shed estimator: per-row service time of this
        // run, exponentially smoothed. Plain store — concurrent drains
        // of one shard may drop an update, which only delays the
        // estimate by a batch.
        {
            double runUs = microsBetween(execStart, doneAt);
            double rowUs = runUs / static_cast<double>(n);
            std::atomic<double> &ema = shardState_[shard].emaRowUs;
            double prev = ema.load(std::memory_order_relaxed);
            ema.store(prev == 0.0 ? rowUs : 0.8 * prev + 0.2 * rowUs,
                      std::memory_order_relaxed);
        }

        for (std::int64_t r = 0; r < n; ++r) {
            InferenceRequest &req =
                batch[done + static_cast<std::size_t>(r)];
            InferenceResponse resp;
            resp.status = ServeStatus::Ok;
            // The response's storage was allocated at submit time;
            // steal it and fill it in place.
            resp.logits = std::move(req.logitsBuffer);
            resp.logits.resize(static_cast<std::size_t>(width));
            for (std::int64_t c = 0; c < width; ++c)
                resp.logits[static_cast<std::size_t>(c)] =
                    logits.at(r, c);
            // argmaxLogits guards the zero-width case: predicted stays
            // -1 instead of indexing logits[0] of an empty vector.
            resp.predicted = argmaxLogits(resp.logits);
            resp.batchRows = n;
            resp.queueUs = microsBetween(req.enqueued, execStart);
            resp.totalUs = microsBetween(req.enqueued, doneAt);
            stats_.recordCompletion(resp.queueUs, resp.totalUs);
            req.complete(std::move(resp));
            // Trace span: a stack POD copied under the ring's mutex —
            // the drain path's zero-allocation invariant holds.
            recordSpan(req, ServeStatus::Ok, static_cast<std::int32_t>(n),
                       execStart, doneAt);
        }
        queue.markCompleted(runModel, n);
        done = runEnd;
    }
}

void
InferenceServer::stop()
{
    shards_.shutdown();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
}

StatsSnapshot
InferenceServer::stats() const
{
    // Rejections happen on both sides: in the queues (expiry noticed at
    // pop, depth-bound overload, shutdown) and in the server (expiry
    // noticed at flush via markExpired, bad submissions, deadline
    // sheds). Both sides increment the SAME registry counters (see the
    // observe calls in the constructor), so the snapshot already carries
    // the merged totals.
    StatsSnapshot s = stats_.snapshot();
    s.queueDepth = shards_.size();
    return s;
}

void
InferenceServer::recordSpan(const InferenceRequest &r, ServeStatus status,
                            std::int32_t batchRows,
                            std::chrono::steady_clock::time_point execStart,
                            std::chrono::steady_clock::time_point done)
{
    constexpr auto kNever = std::chrono::steady_clock::time_point::min();
    obs::TraceSpan span;
    span.id = r.id;
    span.setModel(r.model);
    span.status = static_cast<int>(status);
    span.batchRows = batchRows;
    span.submitUs = microsBetween(epoch_, r.enqueued);
    if (r.claimed != kNever)
        span.claimedUs = microsBetween(epoch_, r.claimed);
    if (execStart != kNever)
        span.execStartUs = microsBetween(epoch_, execStart);
    span.doneUs = microsBetween(epoch_, done);
    trace_.record(span);
}

std::string
InferenceServer::metricsText(bool includeGlobal) const
{
    std::string text = obs::prometheusText(metrics_.snapshot());
    if (includeGlobal)
        text += obs::prometheusText(obs::Registry::global().snapshot());
    return text;
}

void
InferenceServer::dumpTrace(std::ostream &out) const
{
    trace_.dumpJson(out, [](int s) {
        return serveStatusName(static_cast<ServeStatus>(s));
    });
}

const char *
serveStatusName(ServeStatus s)
{
    switch (s) {
    case ServeStatus::Ok: return "Ok";
    case ServeStatus::DeadlineExpired: return "DeadlineExpired";
    case ServeStatus::ShutDown: return "ShutDown";
    case ServeStatus::UnknownModel: return "UnknownModel";
    case ServeStatus::BadInput: return "BadInput";
    case ServeStatus::Overloaded: return "Overloaded";
    }
    return "?";
}

} // namespace bbs
