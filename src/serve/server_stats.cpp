#include "serve/server_stats.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace bbs {

ServerStats::ServerStats(std::int64_t maxBatch)
    : start_(std::chrono::steady_clock::now()),
      batchHist_(static_cast<std::size_t>(maxBatch) + 1, 0)
{
    BBS_REQUIRE(maxBatch >= 1, "maxBatch must be >= 1, got ", maxBatch);
    // The full window up front (~1 MiB): recordCompletion's push_back
    // then never reallocates, keeping the serving hot path
    // allocation-free from the very first request instead of only after
    // the window fills.
    latenciesUs_.reserve(kLatencyWindow);
    queueUs_.reserve(kLatencyWindow);
}

void
ServerStats::recordCompletion(double queueUs, double totalUs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t pos = static_cast<std::size_t>(completed_) %
                      kLatencyWindow;
    ++completed_;
    if (pos < latenciesUs_.size()) { // window full: overwrite oldest
        latenciesUs_[pos] = totalUs;
        queueUs_[pos] = queueUs;
    } else {
        latenciesUs_.push_back(totalUs);
        queueUs_.push_back(queueUs);
    }
}

void
ServerStats::recordBatch(std::int64_t rows)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_;
    batchRowsTotal_ += static_cast<std::uint64_t>(rows);
    std::size_t bucket =
        std::min(static_cast<std::size_t>(rows), batchHist_.size() - 1);
    ++batchHist_[bucket];
}

void
ServerStats::recordRejection(ServeStatus status)
{
    std::lock_guard<std::mutex> lock(mutex_);
    switch (status) {
    case ServeStatus::DeadlineExpired: ++expired_; break;
    case ServeStatus::ShutDown: ++shutdownRejected_; break;
    case ServeStatus::UnknownModel:
    case ServeStatus::BadInput: ++badRequests_; break;
    case ServeStatus::Ok: break; // not a rejection; ignore
    }
}

StatsSnapshot
ServerStats::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StatsSnapshot s;
    s.completed = completed_;
    s.expired = expired_;
    s.shutdownRejected = shutdownRejected_;
    s.badRequests = badRequests_;
    s.batches = batches_;
    s.batchHist = batchHist_;
    if (!latenciesUs_.empty()) {
        s.p50Us = percentile(latenciesUs_, 50.0);
        s.p99Us = percentile(latenciesUs_, 99.0);
        s.meanUs = mean(latenciesUs_);
        s.maxUs = *std::max_element(latenciesUs_.begin(),
                                    latenciesUs_.end());
        s.meanQueueUs = mean(queueUs_);
    }
    if (batches_ > 0)
        s.meanBatchRows = static_cast<double>(batchRowsTotal_) /
                          static_cast<double>(batches_);
    s.elapsedS = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
    if (s.elapsedS > 0.0)
        s.throughputRps = static_cast<double>(completed_) / s.elapsedS;
    return s;
}

void
ServerStats::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    start_ = std::chrono::steady_clock::now();
    latenciesUs_.clear();
    queueUs_.clear();
    std::fill(batchHist_.begin(), batchHist_.end(), 0);
    completed_ = expired_ = shutdownRejected_ = badRequests_ = 0;
    batches_ = batchRowsTotal_ = 0;
}

} // namespace bbs
