#include "serve/server_stats.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "obs/exposition.hpp"

namespace bbs {

namespace {

/** Unit bucket bounds 1..maxBatch: batch sizes are small integers, so
 *  exact buckets reproduce the classic batchHist losslessly. */
std::vector<double>
unitBounds(std::int64_t maxBatch)
{
    std::vector<double> b(static_cast<std::size_t>(maxBatch));
    std::iota(b.begin(), b.end(), 1.0);
    return b;
}

} // namespace

ServerStats::ServerStats(std::int64_t maxBatch, obs::Registry *registry)
    : owned_(registry ? nullptr : new obs::Registry),
      registry_(registry ? *registry : *owned_),
      completed_(registry_.counter("bbs_serve_requests_completed_total",
                                   "Requests served Ok")),
      expired_(registry_.counter("bbs_serve_requests_expired_total",
                                 "DeadlineExpired rejections")),
      shutdownRejected_(registry_.counter(
          "bbs_serve_requests_shutdown_total", "ShutDown rejections")),
      badRequests_(registry_.counter(
          "bbs_serve_requests_bad_total",
          "UnknownModel and BadInput rejections")),
      overloaded_(registry_.counter(
          "bbs_serve_requests_overloaded_total",
          "Overloaded admission rejections (depth bound or deadline "
          "shed)")),
      batches_(registry_.counter("bbs_serve_batches_total",
                                 "Executed GEMM batches")),
      batchRows_(registry_.histogram("bbs_serve_batch_rows",
                                     unitBounds(maxBatch),
                                     "Requests per executed batch")),
      latencyUs_(registry_.histogram("bbs_serve_latency_us",
                                     obs::Histogram::latencyBoundsUs(),
                                     "Submit to completion, microseconds")),
      queueWaitUs_(registry_.histogram(
          "bbs_serve_queue_wait_us", obs::Histogram::latencyBoundsUs(),
          "Submit to batch execution start, microseconds")),
      start_(std::chrono::steady_clock::now())
{
    BBS_REQUIRE(maxBatch >= 1, "maxBatch must be >= 1, got ", maxBatch);
    // The full window up front (~1 MiB): recordCompletion's push_back
    // then never reallocates, keeping the serving hot path
    // allocation-free from the very first request instead of only after
    // the window fills.
    latenciesUs_.reserve(kLatencyWindow);
    queueUs_.reserve(kLatencyWindow);
}

void
ServerStats::recordCompletion(double queueUs, double totalUs)
{
    completed_.inc();
    latencyUs_.observe(totalUs);
    queueWaitUs_.observe(queueUs);

    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t pos = static_cast<std::size_t>(ringWrites_) %
                      kLatencyWindow;
    ++ringWrites_;
    if (pos < latenciesUs_.size()) { // window full: overwrite oldest
        latenciesUs_[pos] = totalUs;
        queueUs_[pos] = queueUs;
    } else {
        latenciesUs_.push_back(totalUs);
        queueUs_.push_back(queueUs);
    }
}

void
ServerStats::recordBatch(std::int64_t rows)
{
    batches_.inc();
    batchRows_.observe(static_cast<double>(rows));
}

void
ServerStats::recordRejection(ServeStatus status)
{
    switch (status) {
    case ServeStatus::DeadlineExpired: expired_.inc(); break;
    case ServeStatus::ShutDown: shutdownRejected_.inc(); break;
    case ServeStatus::UnknownModel:
    case ServeStatus::BadInput: badRequests_.inc(); break;
    case ServeStatus::Overloaded: overloaded_.inc(); break;
    case ServeStatus::Ok: break; // not a rejection; ignore
    }
}

StatsSnapshot
ServerStats::snapshot() const
{
    StatsSnapshot s;
    s.completed = completed_.value();
    s.expired = expired_.value();
    s.shutdownRejected = shutdownRejected_.value();
    s.badRequests = badRequests_.value();
    s.overloaded = overloaded_.value();
    s.batches = batches_.value();

    // batchHist reconstructed from the unit-bucket histogram: bound n
    // (inclusive) is bucket index n-1, so hist[n] = bucketCount(n-1).
    // rows is always within 1..maxBatch, so the +Inf tail stays empty.
    std::size_t maxBatch = batchRows_.bounds().size();
    s.batchHist.assign(maxBatch + 1, 0);
    for (std::size_t n = 1; n <= maxBatch; ++n)
        s.batchHist[n] = batchRows_.bucketCount(n - 1);
    std::uint64_t batchCount = batchRows_.count();
    if (batchCount > 0)
        s.meanBatchRows = batchRows_.sum() /
                          static_cast<double>(batchCount);

    // Bucket-derived percentiles over the full run (the ring below is
    // exact but windowed). One snapshot struct, read bucket by bucket
    // like a scrape would.
    {
        obs::MetricSnapshot hist;
        hist.type = obs::MetricSnapshot::Type::Histogram;
        hist.bounds = latencyUs_.bounds();
        hist.bucketCounts.resize(hist.bounds.size() + 1);
        for (std::size_t i = 0; i < hist.bucketCounts.size(); ++i)
            hist.bucketCounts[i] = latencyUs_.bucketCount(i);
        hist.count = latencyUs_.count();
        hist.sum = latencyUs_.sum();
        s.p50HistUs = obs::histogramQuantile(hist, 0.50);
        s.p99HistUs = obs::histogramQuantile(hist, 0.99);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    s.latencyWindow = kLatencyWindow;
    s.latencyDropped = ringWrites_ > kLatencyWindow
                           ? ringWrites_ - kLatencyWindow
                           : 0;
    if (!latenciesUs_.empty()) {
        s.p50Us = percentile(latenciesUs_, 50.0);
        s.p99Us = percentile(latenciesUs_, 99.0);
        s.meanUs = mean(latenciesUs_);
        s.maxUs = *std::max_element(latenciesUs_.begin(),
                                    latenciesUs_.end());
        s.meanQueueUs = mean(queueUs_);
    }
    s.elapsedS = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
    if (s.elapsedS > 0.0)
        s.throughputRps = static_cast<double>(s.completed) / s.elapsedS;
    return s;
}

void
ServerStats::reset()
{
    completed_.reset();
    expired_.reset();
    shutdownRejected_.reset();
    badRequests_.reset();
    overloaded_.reset();
    batches_.reset();
    batchRows_.reset();
    latencyUs_.reset();
    queueWaitUs_.reset();

    std::lock_guard<std::mutex> lock(mutex_);
    start_ = std::chrono::steady_clock::now();
    latenciesUs_.clear();
    queueUs_.clear();
    ringWrites_ = 0;
}

} // namespace bbs
