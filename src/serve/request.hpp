/**
 * @file
 * Request/response types of the serving runtime.
 *
 * A request is one sample for one named model, with an optional absolute
 * deadline. The runtime coalesces concurrent requests into GEMM batches
 * (serve/batcher.hpp), but every response is computed with per-row
 * activation calibration (Int8Network::forwardRowCalibrated), so a
 * request's logits are bit-identical to running it alone through
 * forwardPerDot() — batching is invisible except in latency/throughput.
 */
#ifndef BBS_SERVE_REQUEST_HPP
#define BBS_SERVE_REQUEST_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "nn/int8_infer.hpp"

namespace bbs {

/** Terminal state of a request. */
enum class ServeStatus
{
    Ok,              ///< executed; logits/predicted are valid
    DeadlineExpired, ///< still queued past its deadline; never executed
    ShutDown,        ///< server stopped before the request was scheduled
    UnknownModel,    ///< no registered model under that name
    BadInput,        ///< input width != the model's inputFeatures()
    /** Shed at admission: the target shard's queue was at its depth
     *  bound, or the estimated queueing delay already exceeded the
     *  request's deadline. Rejecting HERE — before the request consumes
     *  queue space — is what keeps an overloaded shard's latency bounded
     *  instead of letting every queued request expire after paying the
     *  full wait (see README "Network serving"). */
    Overloaded,
};

/** Human-readable status name (logs, test failure messages). */
const char *serveStatusName(ServeStatus s);

/** Microseconds between two steady_clock readings (latency fields). */
inline double
microsBetween(std::chrono::steady_clock::time_point from,
              std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

/**
 * Argmax over logits, first max wins; -1 when empty. The empty case is
 * the zero-width-output guard: InferenceResponse::predicted must never
 * come from indexing logits[0] of a model with no output classes.
 */
inline int
argmaxLogits(const std::vector<float> &logits)
{
    int best = -1;
    for (std::size_t i = 0; i < logits.size(); ++i)
        if (best < 0 || logits[i] > logits[static_cast<std::size_t>(best)])
            best = static_cast<int>(i);
    return best;
}

/** What the submitter's future resolves to. */
struct InferenceResponse
{
    ServeStatus status = ServeStatus::Ok;
    std::vector<float> logits; ///< empty unless status == Ok
    int predicted = -1;        ///< argmax over logits (first max wins)
    std::int64_t batchRows = 0; ///< size of the batch this request rode in
    double queueUs = 0.0;  ///< submit -> batch execution start
    double totalUs = 0.0;  ///< submit -> response completion
};

/**
 * A queued request (internal to the runtime; submitters only see the
 * future). The engine pointer is resolved from the ModelRegistry at
 * submit time so a batch never needs the registry lock, and so a model
 * replaced mid-flight keeps serving in-queue requests consistently.
 */
struct InferenceRequest
{
    /** Per-server monotonically increasing id (trace-span correlation). */
    std::uint64_t id = 0;
    std::string model;
    std::vector<float> input;
    /**
     * Response logits storage, sized to the model's outputFeatures() on
     * the SUBMITTING thread (submit() knows the engine by then). The
     * executor moves it into the response and fills it in place, so the
     * serving worker allocates nothing per request.
     */
    std::vector<float> logitsBuffer;
    std::shared_ptr<const Int8Network> engine;
    std::chrono::steady_clock::time_point enqueued;
    /** When the queue handed this request to a batch; min() until then
     *  (trace spans show queued-but-never-claimed as claimed_us = -1). */
    std::chrono::steady_clock::time_point claimed =
        std::chrono::steady_clock::time_point::min();
    /** steady_clock::time_point::max() means "no deadline". */
    std::chrono::steady_clock::time_point deadline;
    std::promise<InferenceResponse> promise;
    /**
     * When set, the terminal state is delivered by CALLING this instead
     * of fulfilling `promise` — the asynchronous completion path the
     * socket front-end uses (an epoll loop cannot block on futures).
     * Invoked exactly once, from whichever thread completes the request
     * (a serving worker, the submitting thread for immediate rejections,
     * or the thread driving shutdown); it must be cheap and non-blocking
     * — the net layer's callback just moves the response into a
     * completion queue and signals an eventfd.
     */
    std::function<void(InferenceResponse &&)> onComplete;

    /** Deliver the terminal state: through onComplete when set, else
     *  through the promise. Every completion site in the runtime goes
     *  through here so both delivery paths see identical semantics. */
    void
    complete(InferenceResponse &&resp)
    {
        if (onComplete)
            onComplete(std::move(resp));
        else
            promise.set_value(std::move(resp));
    }
};

} // namespace bbs

#endif // BBS_SERVE_REQUEST_HPP
