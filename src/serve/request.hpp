/**
 * @file
 * Request/response types of the serving runtime.
 *
 * A request is one sample for one named model, with an optional absolute
 * deadline. The runtime coalesces concurrent requests into GEMM batches
 * (serve/batcher.hpp), but every response is computed with per-row
 * activation calibration (Int8Network::forwardRowCalibrated), so a
 * request's logits are bit-identical to running it alone through
 * forwardPerDot() — batching is invisible except in latency/throughput.
 */
#ifndef BBS_SERVE_REQUEST_HPP
#define BBS_SERVE_REQUEST_HPP

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "nn/int8_infer.hpp"

namespace bbs {

/** Terminal state of a request. */
enum class ServeStatus
{
    Ok,              ///< executed; logits/predicted are valid
    DeadlineExpired, ///< still queued past its deadline; never executed
    ShutDown,        ///< server stopped before the request was scheduled
    UnknownModel,    ///< no registered model under that name
    BadInput,        ///< input width != the model's inputFeatures()
};

/** Human-readable status name (logs, test failure messages). */
const char *serveStatusName(ServeStatus s);

/** Microseconds between two steady_clock readings (latency fields). */
inline double
microsBetween(std::chrono::steady_clock::time_point from,
              std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

/** What the submitter's future resolves to. */
struct InferenceResponse
{
    ServeStatus status = ServeStatus::Ok;
    std::vector<float> logits; ///< empty unless status == Ok
    int predicted = -1;        ///< argmax over logits (first max wins)
    std::int64_t batchRows = 0; ///< size of the batch this request rode in
    double queueUs = 0.0;  ///< submit -> batch execution start
    double totalUs = 0.0;  ///< submit -> response completion
};

/**
 * A queued request (internal to the runtime; submitters only see the
 * future). The engine pointer is resolved from the ModelRegistry at
 * submit time so a batch never needs the registry lock, and so a model
 * replaced mid-flight keeps serving in-queue requests consistently.
 */
struct InferenceRequest
{
    /** Per-server monotonically increasing id (trace-span correlation). */
    std::uint64_t id = 0;
    std::string model;
    std::vector<float> input;
    /**
     * Response logits storage, sized to the model's outputFeatures() on
     * the SUBMITTING thread (submit() knows the engine by then). The
     * executor moves it into the response and fills it in place, so the
     * serving worker allocates nothing per request.
     */
    std::vector<float> logitsBuffer;
    std::shared_ptr<const Int8Network> engine;
    std::chrono::steady_clock::time_point enqueued;
    /** When the queue handed this request to a batch; min() until then
     *  (trace spans show queued-but-never-claimed as claimed_us = -1). */
    std::chrono::steady_clock::time_point claimed =
        std::chrono::steady_clock::time_point::min();
    /** steady_clock::time_point::max() means "no deadline". */
    std::chrono::steady_clock::time_point deadline;
    std::promise<InferenceResponse> promise;
};

} // namespace bbs

#endif // BBS_SERVE_REQUEST_HPP
