/**
 * @file
 * Model-name-sharded request queue: K independent RequestQueues with a
 * stable hash route, so concurrent submitters for different models stop
 * contending on one queue mutex and one overloaded model cannot fill
 * the admission budget of every other model.
 *
 * A model's requests always land on the same shard (route = hash of the
 * name), which preserves the per-model FIFO ordering the batcher's
 * correctness argument relies on: same-model runs are still popped from
 * ONE deque in arrival order. Different models sharing a shard is fine
 * (that is exactly the pre-sharding world); a model spanning shards
 * would not be.
 *
 * The aggregate accessors (size/expired/shutdown/overloaded counts) sum
 * over shards without a global lock — each term is exact, the sum is a
 * statistically consistent reading like any multi-counter scrape.
 */
#ifndef BBS_SERVE_SHARDED_QUEUE_HPP
#define BBS_SERVE_SHARDED_QUEUE_HPP

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "serve/request_queue.hpp"

namespace bbs {

class ShardedQueue
{
  public:
    /** @p shards independent queues; 1 reproduces the unsharded server
     *  exactly (same queue, same mutex, same ordering). */
    explicit ShardedQueue(std::size_t shards);

    std::size_t shardCount() const { return shards_.size(); }

    /** Stable shard route for @p model (hash % shardCount). */
    std::size_t indexFor(std::string_view model) const;

    RequestQueue &shard(std::size_t i) { return *shards_[i]; }
    const RequestQueue &shard(std::size_t i) const { return *shards_[i]; }

    RequestQueue &shardFor(std::string_view model)
    {
        return *shards_[indexFor(model)];
    }

    /** Apply one admission depth bound to every shard (the bound is
     *  per shard, not global — see RequestQueue::setMaxDepth). */
    void setMaxDepth(std::int64_t maxDepth);

    /** Shut every shard down (each completes its queued requests with
     *  ShutDown). Idempotent. */
    void shutdown();

    /** True once shutdown() ran (shards shut down together). */
    bool isShutdown() const;

    // Aggregates over all shards.
    std::size_t size() const;
    std::uint64_t expiredCount() const;
    std::uint64_t shutdownCount() const;
    std::uint64_t overloadedCount() const;

  private:
    /** unique_ptr because RequestQueue owns a mutex/condvar and is
     *  neither movable nor copyable. */
    std::vector<std::unique_ptr<RequestQueue>> shards_;
};

} // namespace bbs

#endif // BBS_SERVE_SHARDED_QUEUE_HPP
