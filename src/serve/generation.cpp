#include "serve/generation.hpp"

#include <algorithm>
#include <chrono>

#include "common/logging.hpp"

namespace bbs::serve {

namespace {

obs::Registry &
resolveRegistry(obs::Registry *registry)
{
    return registry != nullptr ? *registry : obs::Registry::global();
}

} // namespace

GenerationScheduler::GenerationScheduler(const llm::TransformerModel &model,
                                         GenerationConfig config,
                                         obs::Registry *registry)
    : model_(model), config_(config),
      steps_(resolveRegistry(registry).counter(
          "bbs_llm_steps_total", "generation scheduling steps executed")),
      tokens_(resolveRegistry(registry).counter(
          "bbs_llm_tokens_total", "tokens generated across all sequences")),
      decodeRows_(resolveRegistry(registry).counter(
          "bbs_llm_decode_rows_total", "decode rows batched into steps")),
      prefillRows_(resolveRegistry(registry).counter(
          "bbs_llm_prefill_rows_total", "prefill rows batched into steps")),
      activeGauge_(resolveRegistry(registry).gauge(
          "bbs_llm_active_sequences", "sequences currently generating")),
      queued_(resolveRegistry(registry).gauge(
          "bbs_llm_queued_sequences", "sequences awaiting admission")),
      kvBytes_(resolveRegistry(registry).gauge(
          "bbs_llm_kv_resident_bytes",
          "bytes resident in active KV caches")),
      stepLatencyUs_(resolveRegistry(registry).histogram(
          "bbs_llm_step_latency_us", obs::Histogram::latencyBoundsUs(),
          "wall time of one generation step"))
{
    BBS_REQUIRE(config_.maxStepRows >= 1 && config_.maxActiveSeqs >= 1 &&
                    config_.prefillChunk >= 1 && config_.maxQueuedSeqs >= 1,
                "degenerate GenerationConfig");
    BBS_REQUIRE(config_.workers == 0 || config_.workers == 1,
                "GenerationScheduler runs 0 or 1 worker threads, got ",
                config_.workers);
    activeSeqs_.reserve(static_cast<std::size_t>(config_.maxActiveSeqs));
    std::size_t maxRows = static_cast<std::size_t>(
        config_.maxStepRows + config_.maxActiveSeqs + config_.prefillChunk);
    rows_.reserve(maxRows);
    rowSeq_.reserve(maxRows);
    emissions_.reserve(maxRows);
    if (config_.workers == 1)
        worker_ = std::thread([this] { workerLoop(); });
}

GenerationScheduler::~GenerationScheduler() { stop(); }

std::uint64_t
GenerationScheduler::submit(std::span<const std::int32_t> prompt,
                            std::int64_t maxNewTokens, StreamFn onToken)
{
    BBS_REQUIRE(onToken != nullptr, "submit needs a stream callback");
    std::uint64_t id = nextId_.fetch_add(1, std::memory_order_relaxed);
    std::int64_t maxNew = maxNewTokens > 0 ? maxNewTokens
                                           : config_.defaultMaxNewTokens;
    auto fail = [&](ServeStatus status) {
        StreamToken t;
        t.id = id;
        t.last = true;
        t.status = status;
        onToken(t);
        return id;
    };

    const llm::TransformerConfig &cfg = model_.config();
    if (prompt.empty() ||
        static_cast<std::int64_t>(prompt.size()) + maxNew - 1 > cfg.maxSeq)
        return fail(ServeStatus::BadInput);
    for (std::int32_t t : prompt)
        if (t < 0 || t >= cfg.vocab)
            return fail(ServeStatus::BadInput);

    auto seq = std::make_unique<Sequence>();
    seq->id = id;
    seq->prompt.assign(prompt.begin(), prompt.end());
    seq->maxNew = maxNew;
    seq->onToken = std::move(onToken);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            onToken = std::move(seq->onToken);
            return fail(ServeStatus::ShutDown);
        }
        if (static_cast<std::int64_t>(pending_.size()) >=
            config_.maxQueuedSeqs) {
            onToken = std::move(seq->onToken);
            return fail(ServeStatus::Overloaded);
        }
        pending_.push_back(std::move(seq));
        queued_.set(static_cast<std::int64_t>(pending_.size()));
    }
    cv_.notify_one();
    return id;
}

bool
GenerationScheduler::stepOnce()
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();

    // Admissions: pull queued sequences into the active set. The KV
    // cache (the sequence's only large allocation) is created here,
    // sized for the whole generation — decode steps never allocate.
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_)
            return false;
        while (static_cast<std::int64_t>(activeSeqs_.size()) <
                   config_.maxActiveSeqs &&
               !pending_.empty()) {
            std::unique_ptr<Sequence> seq = std::move(pending_.front());
            pending_.pop_front();
            lock.unlock();
            seq->cache = model_.makeCache(
                static_cast<std::int64_t>(seq->prompt.size()) +
                seq->maxNew);
            kvBytes_.add(seq->cache->residentBytes());
            activeSeqs_.push_back(std::move(seq));
            lock.lock();
        }
        queued_.set(static_cast<std::int64_t>(pending_.size()));
    }
    activeGauge_.set(static_cast<std::int64_t>(activeSeqs_.size()));
    if (activeSeqs_.empty())
        return false;

    // Coalesce the step batch: one decode row per decoding sequence
    // first (decode is never starved), then round-robin prefill chunks
    // into the remaining budget — with a one-chunk floor so a wall of
    // decoders cannot starve admission either.
    rows_.clear();
    rowSeq_.clear();
    for (auto &seqPtr : activeSeqs_) {
        Sequence &seq = *seqPtr;
        if (!seq.decoding)
            continue;
        llm::StepRow row;
        row.cache = seq.cache.get();
        row.token = seq.nextInput;
        row.pos = seq.cache->length();
        row.wantLogits = true;
        rows_.push_back(row);
        rowSeq_.push_back(&seq);
    }
    std::int64_t decodeRows = static_cast<std::int64_t>(rows_.size());
    std::int64_t prefillBudget =
        std::max(config_.maxStepRows - decodeRows, std::int64_t{0});
    std::int64_t nPrefill = 0;
    for (auto &seqPtr : activeSeqs_)
        if (!seqPtr->decoding)
            ++nPrefill;
    if (nPrefill > 0 && prefillBudget == 0)
        prefillBudget = config_.prefillChunk; // the admission floor
    std::int64_t nActive = static_cast<std::int64_t>(activeSeqs_.size());
    for (std::int64_t scan = 0; scan < nActive && prefillBudget > 0;
         ++scan) {
        Sequence &seq =
            *activeSeqs_[static_cast<std::size_t>((prefillCursor_ + scan) %
                                                  nActive)];
        if (seq.decoding)
            continue;
        std::int64_t promptLen =
            static_cast<std::int64_t>(seq.prompt.size());
        std::int64_t chunk = std::min(
            {config_.prefillChunk, prefillBudget,
             promptLen - seq.prefillPos});
        for (std::int64_t i = 0; i < chunk; ++i) {
            std::int64_t p = seq.prefillPos + i;
            llm::StepRow row;
            row.cache = seq.cache.get();
            row.token = seq.prompt[static_cast<std::size_t>(p)];
            row.pos = p;
            row.wantLogits = p + 1 == promptLen;
            rows_.push_back(row);
            rowSeq_.push_back(&seq);
        }
        prefillBudget -= chunk;
    }
    prefillCursor_ = nActive > 0 ? (prefillCursor_ + 1) % nActive : 0;
    std::int64_t prefillRows =
        static_cast<std::int64_t>(rows_.size()) - decodeRows;
    if (rows_.empty())
        return false;

    model_.forward({rows_.data(), rows_.size()}, ws_);

    // Bookkeeping + emission staging (callbacks run after, lock-free).
    emissions_.clear();
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        llm::StepRow &row = rows_[i];
        Sequence &seq = *rowSeq_[i];
        bool isPrefill = !seq.decoding;
        if (isPrefill)
            ++seq.prefillPos;
        if (!row.wantLogits)
            continue;
        // A logits row produced the sequence's next token: the last
        // prompt row yields token 0, decode rows the ones after it.
        seq.decoding = true;
        std::int64_t idx = seq.produced++;
        seq.nextInput = row.next;
        bool last = seq.produced == seq.maxNew;
        seq.done = last;
        Emission e;
        e.seq = &seq;
        e.token.id = seq.id;
        e.token.token = row.next;
        e.token.index = static_cast<std::uint32_t>(idx);
        e.token.last = last;
        e.token.status = ServeStatus::Ok;
        emissions_.push_back(e);
    }

    steps_.inc();
    tokens_.inc(static_cast<std::uint64_t>(emissions_.size()));
    decodeRows_.inc(static_cast<std::uint64_t>(decodeRows));
    prefillRows_.inc(static_cast<std::uint64_t>(prefillRows));
    stepLatencyUs_.observe(
        std::chrono::duration<double, std::micro>(clock::now() - t0)
            .count());

    for (const Emission &e : emissions_)
        e.seq->onToken(e.token);

    // Release completed sequences (their caches) after the callbacks.
    for (auto it = activeSeqs_.begin(); it != activeSeqs_.end();) {
        if ((*it)->done) {
            kvBytes_.add(-(*it)->cache->residentBytes());
            it = activeSeqs_.erase(it);
        } else {
            ++it;
        }
    }
    activeGauge_.set(static_cast<std::int64_t>(activeSeqs_.size()));
    return true;
}

void
GenerationScheduler::failSequence(Sequence &seq, ServeStatus status)
{
    if (seq.done || seq.onToken == nullptr)
        return;
    StreamToken t;
    t.id = seq.id;
    t.index = static_cast<std::uint32_t>(seq.produced);
    t.last = true;
    t.status = status;
    seq.done = true;
    seq.onToken(t);
}

void
GenerationScheduler::workerLoop()
{
    while (true) {
        bool did = stepOnce();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (stopping_)
                return;
            if (!did)
                cv_.wait(lock, [this] {
                    return stopping_ || !pending_.empty();
                });
        }
    }
}

void
GenerationScheduler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
    // Step thread is gone (or never existed): fail what's left.
    std::deque<std::unique_ptr<Sequence>> pending;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending.swap(pending_);
        queued_.set(0);
    }
    for (auto &seq : pending)
        failSequence(*seq, ServeStatus::ShutDown);
    for (auto &seq : activeSeqs_) {
        kvBytes_.add(-seq->cache->residentBytes());
        failSequence(*seq, ServeStatus::ShutDown);
    }
    activeSeqs_.clear();
    activeGauge_.set(0);
}

} // namespace bbs::serve
