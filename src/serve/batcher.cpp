#include "serve/batcher.hpp"

#include "common/logging.hpp"

namespace bbs {

Batcher::Batcher(RequestQueue &queue, BatcherConfig config)
    : queue_(queue), config_(config)
{
    BBS_REQUIRE(config_.maxBatch >= 1, "maxBatch must be >= 1, got ",
                config_.maxBatch);
    BBS_REQUIRE(config_.maxDelayUs >= 0, "maxDelayUs must be >= 0, got ",
                config_.maxDelayUs);
}

std::vector<InferenceRequest>
Batcher::nextBatch()
{
    std::vector<InferenceRequest> batch;
    nextBatch(batch);
    return batch;
}

void
Batcher::nextBatch(std::vector<InferenceRequest> &batch)
{
    batch.clear();
    std::optional<InferenceRequest> first = queue_.waitFront();
    if (!first)
        return; // shut down and drained
    // Reserved BEFORE the claims below: popModelInto scans against
    // batch.front().model, and the capacity guarantee is what keeps that
    // reference stable while it appends.
    batch.reserve(static_cast<std::size_t>(config_.maxBatch));
    batch.push_back(std::move(*first));

    auto flushAt = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(config_.maxDelayUs);
    while (static_cast<std::int64_t>(batch.size()) < config_.maxBatch) {
        std::uint64_t version = 0;
        queue_.popModelInto(
            batch.front().model,
            config_.maxBatch - static_cast<std::int64_t>(batch.size()),
            version, batch);
        if (static_cast<std::int64_t>(batch.size()) >= config_.maxBatch)
            break;
        // All-aboard flush: when this batch already holds every live
        // request for ITS model, any client able to submit a co-rider
        // is blocked on us and no co-rider can arrive — waiting out
        // maxDelayUs would buy pure latency. Counted per model: other
        // models' requests can never join this batch, so they must not
        // hold it open. This is what keeps low-concurrency closed-loop
        // clients near the per-request baseline instead of paying the
        // flush delay on every request.
        if (static_cast<std::int64_t>(batch.size()) >=
            queue_.liveCount(batch.front().model))
            break;
        // Nothing more to claim right now: sleep until a push, the
        // flush deadline, or shutdown. Timeout/shutdown => flush what we
        // have — claimed requests are served even mid-shutdown.
        if (!queue_.waitArrival(version, flushAt))
            break;
    }
}

} // namespace bbs
