#include "obs/exposition.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/json_writer.hpp"

namespace bbs::obs {

namespace {

const char *
typeName(MetricSnapshot::Type t)
{
    switch (t) {
    case MetricSnapshot::Type::Counter: return "counter";
    case MetricSnapshot::Type::Gauge: return "gauge";
    case MetricSnapshot::Type::Histogram: return "histogram";
    }
    return "untyped";
}

/** `name{labels}` or just `name`, with extra labels appended. */
void
writeSeries(std::ostream &out, const std::string &name,
            const std::string &labels, std::string_view extra = "")
{
    out << name;
    if (!labels.empty() || !extra.empty()) {
        out << '{' << labels;
        if (!labels.empty() && !extra.empty())
            out << ',';
        out << extra << '}';
    }
}

std::string
formatLe(double bound)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", bound);
    return buf;
}

} // namespace

void
writePrometheus(const std::vector<MetricSnapshot> &metrics, std::ostream &out)
{
    // HELP/TYPE are per metric family; emit them once even when several
    // label sets share a name (snapshot order groups them by
    // registration, which registers label sets of one family together
    // in practice — duplicates are harmless to Prometheus anyway, but
    // stay clean for the common case).
    std::string lastFamily;
    for (const MetricSnapshot &m : metrics) {
        if (m.name != lastFamily) {
            if (!m.help.empty())
                out << "# HELP " << m.name << ' ' << m.help << '\n';
            out << "# TYPE " << m.name << ' ' << typeName(m.type) << '\n';
            lastFamily = m.name;
        }
        switch (m.type) {
        case MetricSnapshot::Type::Counter:
            writeSeries(out, m.name, m.labels);
            out << ' ' << m.counterValue << '\n';
            break;
        case MetricSnapshot::Type::Gauge:
            writeSeries(out, m.name, m.labels);
            out << ' ' << m.gaugeValue << '\n';
            break;
        case MetricSnapshot::Type::Histogram: {
            // Cumulative buckets, per the exposition format.
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < m.bounds.size(); ++i) {
                cum += m.bucketCounts[i];
                writeSeries(out, m.name + "_bucket", m.labels,
                            "le=\"" + formatLe(m.bounds[i]) + "\"");
                out << ' ' << cum << '\n';
            }
            cum += m.bucketCounts[m.bounds.size()];
            writeSeries(out, m.name + "_bucket", m.labels, "le=\"+Inf\"");
            out << ' ' << cum << '\n';
            writeSeries(out, m.name + "_sum", m.labels);
            out << ' ' << JsonWriter::number(m.sum) << '\n';
            writeSeries(out, m.name + "_count", m.labels);
            out << ' ' << m.count << '\n';
            break;
        }
        }
    }
}

std::string
prometheusText(const std::vector<MetricSnapshot> &metrics)
{
    std::ostringstream oss;
    writePrometheus(metrics, oss);
    return oss.str();
}

void
writeJsonRecords(const std::vector<MetricSnapshot> &metrics, JsonWriter &w)
{
    w.beginObject();
    w.key("metrics");
    w.beginArray();
    for (const MetricSnapshot &m : metrics) {
        w.beginObject();
        w.member("name", m.name);
        if (!m.labels.empty())
            w.member("labels", m.labels);
        w.member("type", typeName(m.type));
        switch (m.type) {
        case MetricSnapshot::Type::Counter:
            w.member("value", m.counterValue);
            break;
        case MetricSnapshot::Type::Gauge:
            w.member("value", m.gaugeValue);
            break;
        case MetricSnapshot::Type::Histogram:
            w.member("count", m.count);
            w.member("sum", m.sum);
            w.key("bounds");
            w.beginArray();
            for (double b : m.bounds)
                w.value(b);
            w.endArray();
            w.key("buckets");
            w.beginArray();
            for (std::uint64_t c : m.bucketCounts)
                w.value(c);
            w.endArray();
            break;
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

// -------------------------------------------------------------- estimation

double
histogramQuantile(const MetricSnapshot &h, double q)
{
    if (h.type != MetricSnapshot::Type::Histogram || h.count == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    // The observation whose value we estimate: rank in [1, count].
    double rank = q * static_cast<double>(h.count);
    if (rank < 1.0)
        rank = 1.0;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bucketCounts.size(); ++i) {
        std::uint64_t inBucket = h.bucketCounts[i];
        if (inBucket == 0)
            continue;
        double below = static_cast<double>(cumulative);
        cumulative += inBucket;
        if (rank > static_cast<double>(cumulative))
            continue;
        if (i >= h.bounds.size()) // +Inf tail: unbounded above
            return h.bounds.empty() ? 0.0 : h.bounds.back();
        double lower = i == 0 ? 0.0 : h.bounds[i - 1];
        double upper = h.bounds[i];
        double frac = (rank - below) / static_cast<double>(inBucket);
        return lower + (upper - lower) * frac;
    }
    return h.bounds.empty() ? 0.0 : h.bounds.back();
}

// ------------------------------------------------------------------ parser

const ParsedSample *
ParsedExposition::find(std::string_view name, std::string_view labels) const
{
    for (const ParsedSample &s : samples) {
        if (s.name != name)
            continue;
        if (!labels.empty() && s.labels.find(labels) == std::string::npos)
            continue;
        return &s;
    }
    return nullptr;
}

bool
parsePrometheusText(std::string_view text, ParsedExposition &out)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        std::string_view line = text.substr(
            pos, eol == std::string_view::npos ? std::string_view::npos
                                               : eol - pos);
        pos = eol == std::string_view::npos ? text.size() : eol + 1;

        // Trim trailing CR / surrounding spaces.
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.remove_suffix(1);
        while (!line.empty() && line.front() == ' ')
            line.remove_prefix(1);
        if (line.empty())
            continue;

        if (line.front() == '#') {
            // "# TYPE name kind" is the only comment we retain.
            constexpr std::string_view kType = "# TYPE ";
            if (line.substr(0, kType.size()) == kType) {
                std::string_view rest = line.substr(kType.size());
                std::size_t sp = rest.find(' ');
                if (sp == std::string_view::npos)
                    return false;
                out.types[std::string(rest.substr(0, sp))] =
                    std::string(rest.substr(sp + 1));
            }
            continue;
        }

        ParsedSample s;
        // name[{labels}] value
        std::size_t brace = line.find('{');
        std::size_t nameEnd;
        if (brace != std::string_view::npos) {
            // The closing brace must be found OUTSIDE quoted label
            // values: a value may legally contain `}` (and `\"` escaped
            // quotes), so a plain find('}') would truncate the label
            // body of any series whose label carries those characters.
            std::size_t close = std::string_view::npos;
            bool inQuote = false, escaped = false;
            for (std::size_t i = brace + 1; i < line.size(); ++i) {
                char c = line[i];
                if (escaped) {
                    escaped = false;
                } else if (inQuote) {
                    if (c == '\\')
                        escaped = true;
                    else if (c == '"')
                        inQuote = false;
                } else if (c == '"') {
                    inQuote = true;
                } else if (c == '}') {
                    close = i;
                    break;
                }
            }
            if (close == std::string_view::npos)
                return false;
            s.name = std::string(line.substr(0, brace));
            s.labels = std::string(line.substr(brace + 1, close - brace - 1));
            nameEnd = close + 1;
        } else {
            std::size_t sp = line.find(' ');
            if (sp == std::string_view::npos)
                return false;
            s.name = std::string(line.substr(0, sp));
            nameEnd = sp;
        }
        std::string_view rest = line.substr(nameEnd);
        while (!rest.empty() && rest.front() == ' ')
            rest.remove_prefix(1);
        if (rest.empty())
            return false;
        if (rest == "+Inf") {
            s.value = std::numeric_limits<double>::infinity();
        } else {
            auto [p, ec] =
                std::from_chars(rest.data(), rest.data() + rest.size(),
                                s.value);
            if (ec != std::errc())
                return false;
            // Ignore an optional trailing timestamp (we never emit one,
            // but the format allows it).
            (void)p;
        }
        out.samples.push_back(std::move(s));
    }
    return true;
}

} // namespace bbs::obs
