/**
 * @file
 * Per-request trace spans. Each completed (or rejected) request leaves
 * one fixed-size TraceSpan — the submit → claimed → execute → complete
 * timeline plus outcome — in a bounded ring buffer that can be dumped
 * as JSON on demand (serve_demo --trace-dump, the soak harness, tests).
 *
 * The span is a POD with an inline fixed-width model-name buffer, so
 * record() copies a struct under a short mutex and allocates nothing:
 * the serving drain path's zero-allocation invariant holds with tracing
 * permanently on. A mutex (not a seqlock) keeps the ring TSAN-clean —
 * at serving rates (~1 record per request against micro-second request
 * service times) contention is unmeasurable.
 *
 * obs/ does not depend on serve/: spans carry the raw status code and
 * the dumper takes a status-name function, so engine-level users could
 * trace with their own vocabularies.
 */
#ifndef BBS_OBS_TRACE_HPP
#define BBS_OBS_TRACE_HPP

#include <cstdint>
#include <cstring>
#include <mutex>
#include <ostream>
#include <string_view>
#include <vector>

namespace bbs {
class JsonWriter;
}

namespace bbs::obs {

/** One request's life, timestamps in microseconds on the owner's
 *  steady-clock epoch. A stage that never happened (e.g. execStartUs of
 *  an expired request) stays negative. */
struct TraceSpan
{
    static constexpr std::size_t kModelChars = 24;

    std::uint64_t id = 0;     ///< per-server monotonically increasing
    char model[kModelChars] = {}; ///< NUL-terminated, truncated to fit
    int status = 0;           ///< owner's status code (ServeStatus)
    std::int32_t batchRows = 0; ///< batch this request rode in (0 = none)

    double submitUs = -1.0;    ///< submit() accepted the request
    double claimedUs = -1.0;   ///< popped from the queue into a batch
    double execStartUs = -1.0; ///< batch execution began
    double doneUs = -1.0;      ///< future resolved

    void
    setModel(std::string_view name)
    {
        std::size_t n = name.size() < kModelChars - 1 ? name.size()
                                                      : kModelChars - 1;
        std::memcpy(model, name.data(), n);
        model[n] = '\0';
    }
};

/**
 * Bounded ring of the most recent spans. `dropped()` counts spans that
 * were overwritten, so a dump can say how much history it covers.
 *
 * Sampling: at high request rates even a copy-under-mutex per request
 * is worth shedding. `BBS_TRACE_SAMPLE=N` keeps 1-in-N spans (the
 * first of every N offered; N <= 1 or unset keeps all). Spans shed by
 * sampling are counted in `sampledOut()` — deliberately separate from
 * `dropped()`, which counts recorded history lost to ring overwrite:
 * one is a knob, the other is a capacity symptom.
 */
class TraceRing
{
  public:
    /** @p sampleEvery 0 = read BBS_TRACE_SAMPLE from the environment;
     *  otherwise keep 1-in-@p sampleEvery spans. */
    explicit TraceRing(std::size_t capacity = 4096,
                       std::uint64_t sampleEvery = 0);

    /** Copy @p span into the ring (no allocation; see file comment) —
     *  or shed it when sampling says so. */
    void record(const TraceSpan &span);

    std::size_t capacity() const { return spans_.size(); }
    /** Spans currently held (<= capacity). */
    std::size_t size() const;
    /** Spans lost to overwrite since construction / clear(). */
    std::uint64_t dropped() const;
    /** Spans shed by the sampling knob (never entered the ring). */
    std::uint64_t sampledOut() const;
    /** The effective 1-in-N sampling period (>= 1). */
    std::uint64_t sampleEvery() const { return sampleEvery_; }

    void clear();

    /**
     * Dump held spans oldest-first as a JSON object
     * `{"dropped": n, "spans": [...]}` through @p w. @p statusName maps
     * the owner's status codes to strings (e.g. serveStatusName cast to
     * int); pass nullptr to emit numeric codes.
     */
    void dumpJson(JsonWriter &w, const char *(*statusName)(int)) const;

    /** dumpJson to a stream as a standalone document. */
    void dumpJson(std::ostream &out, const char *(*statusName)(int)) const;

  private:
    mutable std::mutex mutex_;
    std::vector<TraceSpan> spans_;
    std::uint64_t written_ = 0;    ///< spans actually recorded
    std::uint64_t offered_ = 0;    ///< record() calls, pre-sampling
    std::uint64_t sampledOut_ = 0; ///< shed by sampling
    std::uint64_t sampleEvery_ = 1;
};

} // namespace bbs::obs

#endif // BBS_OBS_TRACE_HPP
