/**
 * @file
 * Metric exposition: turn a Registry snapshot into the two wire shapes
 * the project speaks — Prometheus text format (for scraping / the
 * `--metrics-dump` flags) and the bench `--json` record shape (so soak
 * timelines land next to BENCH_*.json artifacts and tooling that reads
 * one reads both).
 *
 * Also a small Prometheus text parser: enough of the format to
 * round-trip our own exposition (HELP/TYPE comments, counters, gauges,
 * histogram _bucket/_sum/_count series with `le` labels). It exists so
 * tests and the soak harness can assert on scraped values instead of
 * string-matching, not to ingest arbitrary third-party expositions.
 */
#ifndef BBS_OBS_EXPOSITION_HPP
#define BBS_OBS_EXPOSITION_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.hpp"

namespace bbs {
class JsonWriter;
}

namespace bbs::obs {

/**
 * Write @p metrics in Prometheus text exposition format (version 0.0.4):
 * `# HELP` / `# TYPE` comment pairs, `name{labels} value` samples,
 * histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
 * `_count`. Counters keep whatever `_total` suffix their registered
 * name carries (naming is the registrant's job).
 */
void writePrometheus(const std::vector<MetricSnapshot> &metrics,
                     std::ostream &out);

/** writePrometheus into a string (CLI / demo dump convenience). */
std::string prometheusText(const std::vector<MetricSnapshot> &metrics);

/**
 * Write @p metrics as one JSON object in the bench record shape:
 * `{"name": ..., "labels": ..., "type": ..., value fields}` entries in a
 * `"metrics"` array, emitted through @p w (the caller owns the
 * enclosing document, so a soak timeline can embed one scrape per
 * window). `w` must be positioned where a value is legal.
 */
void writeJsonRecords(const std::vector<MetricSnapshot> &metrics,
                      JsonWriter &w);

/**
 * Estimate the @p q quantile (q in [0, 1]) of a histogram snapshot by
 * linear interpolation within the owning bucket — the standard
 * Prometheus `histogram_quantile` estimator. The rank is interpolated
 * between the bucket's lower bound (the previous bound, or 0 for the
 * first bucket) and its upper bound by the rank's position among the
 * bucket's observations. A quantile landing in the +Inf tail returns
 * the last finite bound (the estimator cannot see past it). Returns 0
 * for an empty histogram or a snapshot that is not a histogram.
 *
 * This is the bucket-resolution complement to the raw-sample ring in
 * ServerStats: the ring is exact but covers a sliding window, the
 * histogram covers the full run but quantizes to bucket bounds.
 * test_obs cross-checks the two against each other.
 */
double histogramQuantile(const MetricSnapshot &h, double q);

/** One sample parsed back out of Prometheus text. */
struct ParsedSample
{
    std::string name;   ///< full series name (incl. _bucket/_sum/_count)
    std::string labels; ///< raw label body without braces, "" if none
    double value = 0.0;
};

/** A parsed exposition: samples in document order plus TYPE map. */
struct ParsedExposition
{
    std::vector<ParsedSample> samples;
    /** metric family name -> declared TYPE (counter/gauge/histogram). */
    std::map<std::string, std::string> types;

    /** First sample matching @p name (and @p labels if non-empty);
     *  returns nullptr when absent. */
    const ParsedSample *find(std::string_view name,
                             std::string_view labels = "") const;
};

/**
 * Parse Prometheus text exposition. Returns false (and leaves @p out in
 * an unspecified state) on a line that is neither a comment, blank, nor
 * a `name[{labels}] value` sample.
 */
bool parsePrometheusText(std::string_view text, ParsedExposition &out);

} // namespace bbs::obs

#endif // BBS_OBS_EXPOSITION_HPP
