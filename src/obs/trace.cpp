#include "obs/trace.hpp"

#include <cstdlib>

#include "common/json_writer.hpp"
#include "common/logging.hpp"

namespace bbs::obs {

namespace {

/** BBS_TRACE_SAMPLE parsed defensively: absent, unparsable, or < 1 all
 *  mean "keep every span" — a bad knob must never silence tracing. */
std::uint64_t
envSampleEvery()
{
    const char *env = std::getenv("BBS_TRACE_SAMPLE");
    if (env == nullptr)
        return 1;
    char *end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 1)
        return 1;
    return static_cast<std::uint64_t>(v);
}

} // namespace

TraceRing::TraceRing(std::size_t capacity, std::uint64_t sampleEvery)
    : spans_(capacity),
      sampleEvery_(sampleEvery > 0 ? sampleEvery : envSampleEvery())
{
    BBS_ASSERT(capacity > 0, "trace ring needs at least one slot");
}

void
TraceRing::record(const TraceSpan &span)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Keep the first of every sampleEvery_ offered spans: a dump taken
    // at any moment then covers the full time range at 1/N density
    // rather than an aligned burst.
    if (offered_++ % sampleEvery_ != 0) {
        ++sampledOut_;
        return;
    }
    spans_[written_ % spans_.size()] = span;
    ++written_;
}

std::size_t
TraceRing::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return written_ < spans_.size() ? static_cast<std::size_t>(written_)
                                    : spans_.size();
}

std::uint64_t
TraceRing::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return written_ < spans_.size() ? 0 : written_ - spans_.size();
}

std::uint64_t
TraceRing::sampledOut() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sampledOut_;
}

void
TraceRing::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    written_ = 0;
    offered_ = 0;
    sampledOut_ = 0;
}

void
TraceRing::dumpJson(JsonWriter &w, const char *(*statusName)(int)) const
{
    // Copy out under the lock, render outside it: rendering goes through
    // an ostream and must not stall writers.
    std::vector<TraceSpan> copy;
    std::uint64_t droppedCount = 0;
    std::uint64_t sampledOutCount = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sampledOutCount = sampledOut_;
        std::size_t held = written_ < spans_.size()
                               ? static_cast<std::size_t>(written_)
                               : spans_.size();
        droppedCount = written_ - held;
        copy.reserve(held);
        // Oldest-first: the slot after the write cursor is the oldest
        // once the ring has wrapped.
        std::size_t start =
            written_ < spans_.size() ? 0 : written_ % spans_.size();
        for (std::size_t i = 0; i < held; ++i)
            copy.push_back(spans_[(start + i) % spans_.size()]);
    }

    w.beginObject();
    w.member("dropped", droppedCount);
    w.member("sampled_out", sampledOutCount);
    w.member("sample_every", sampleEvery_);
    w.key("spans");
    w.beginArray();
    for (const TraceSpan &s : copy) {
        w.beginObject();
        w.member("id", s.id);
        w.member("model", std::string_view(s.model));
        if (statusName)
            w.member("status", statusName(s.status));
        else
            w.member("status", static_cast<std::int64_t>(s.status));
        w.member("batch_rows", static_cast<std::int64_t>(s.batchRows));
        w.member("submit_us", s.submitUs);
        w.member("claimed_us", s.claimedUs);
        w.member("exec_start_us", s.execStartUs);
        w.member("done_us", s.doneUs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
TraceRing::dumpJson(std::ostream &out, const char *(*statusName)(int)) const
{
    JsonWriter w(out);
    dumpJson(w, statusName);
    out << '\n';
}

} // namespace bbs::obs
