/**
 * @file
 * Apply a weight-compression method to a trained network, in place.
 *
 * This is where every scheme the paper compares (naive PTQ, NoisyQuant,
 * Microscaling, ANT, OliVe, BitWave bit-flip, BBS binary pruning) meets
 * real trained weights: each method transforms the per-channel-quantized
 * INT8 codes (or the FP32 weights, for the float-format schemes) and the
 * dequantized result is written back for accuracy re-measurement.
 */
#ifndef BBS_NN_COMPRESS_NET_HPP
#define BBS_NN_COMPRESS_NET_HPP

#include <string>

#include "core/global_pruning.hpp"
#include "nn/network.hpp"

namespace bbs {

/** Weight-compression methods the accuracy experiments compare. */
enum class CompressionMethod
{
    None,         ///< baseline INT8 (per-channel PTQ only)
    PtqClip,      ///< naive PTQ to `bits` with MSE-optimal clipping
    NoisyPtq,     ///< NoisyQuant-style dithered PTQ
    Microscaling, ///< MX block format
    AntAdaptive,  ///< ANT adaptive datatypes
    OlivePairs,   ///< OliVe outlier-victim pairs
    BitwaveFlip,  ///< sign-magnitude zero-column bit-flip
    BbsPrune,     ///< BBS binary pruning (Algorithm 2 on the network)
};

const char *compressionMethodName(CompressionMethod m);

/** Full specification of one compression run. */
struct CompressionSpec
{
    CompressionMethod method = CompressionMethod::None;
    /** Target precision for the PTQ-family methods. */
    int bits = 8;
    /** BBS configuration (also supplies beta/columns for BitWave/PTQ so
     *  all methods share the same sensitive-channel setting, §V-B). */
    GlobalPruneConfig bbs = conservativeConfig();
    /** Group size for group-wise schemes. */
    std::int64_t groupSize = 32;
};

/** What a compression run did to the weights. */
struct CompressionReport
{
    double effectiveBits = 8.0; ///< mean storage bits per weight
    double weightMse = 0.0;     ///< INT8-grid MSE vs baseline codes
    double weightKl = 0.0;      ///< INT8-grid KL vs baseline codes
};

/**
 * Compress all weight layers of @p net in place and report the distortion.
 * The network must already be trained; weights are replaced by their
 * compressed-then-dequantized values ("fake quantization").
 */
CompressionReport compressNetwork(Network &net,
                                  const CompressionSpec &spec);

} // namespace bbs

#endif // BBS_NN_COMPRESS_NET_HPP
