/**
 * @file
 * Integer inference through the *actual* BBS compressed-domain kernels.
 *
 * compress_net.hpp measures accuracy with fake quantization (dequantized
 * weights, float compute). This engine instead executes every dense layer
 * with INT8 operands and the exact compressed-domain dot product
 * (core/bbs_dot) BitVert computes — integer accumulation, per-channel
 * weight scales, per-layer activation scales — demonstrating that the
 * hardware path itself preserves accuracy, not just the weight transform.
 */
#ifndef BBS_NN_INT8_INFER_HPP
#define BBS_NN_INT8_INFER_HPP

#include <memory>
#include <vector>

#include "core/compressed_tensor.hpp"
#include "nn/network.hpp"

namespace bbs {

/** One dense layer prepared for integer execution. */
struct Int8LinearLayer
{
    /** Per output channel: the row's BBS-compressed weight groups. */
    std::vector<std::vector<CompressedGroup>> rowGroups;
    std::int64_t inFeatures = 0;
    std::int64_t groupSize = 32;
    std::vector<float> wScales; ///< per-output-channel weight scales
    FloatTensor bias;           ///< float bias (applied post-dequant)
    bool geluAfter = false;
    bool reluAfter = false;
};

/** An integer inference engine mirroring a trained dense Network. */
class Int8Network
{
  public:
    /**
     * Build from a trained float network (Dense/ReLU/GELU layers only):
     * per-channel INT8 weight quantization followed by BBS compression at
     * the given operating point.
     *
     * @param groupSize/targetColumns/strategy  BBS compression config;
     *        targetColumns 0 reproduces plain INT8 inference
     */
    static Int8Network fromNetwork(Network &net, std::int64_t groupSize,
                                   int targetColumns,
                                   PruneStrategy strategy);

    /**
     * Integer forward pass: activations are quantized per layer to INT8
     * (symmetric, max-calibrated per batch), each dot product runs through
     * dotCompressed(), and the INT32 accumulators are rescaled to float
     * for the next layer's nonlinearity.
     */
    Batch forward(const Batch &x) const;

    /** Argmax predictions. */
    std::vector<int> predict(const Batch &x) const;

    /** Mean effective weight bits across layers. */
    double effectiveBits() const;

  private:
    std::vector<Int8LinearLayer> layers_;
};

} // namespace bbs

#endif // BBS_NN_INT8_INFER_HPP
