/**
 * @file
 * Integer inference through the *actual* BBS compressed-domain kernels.
 *
 * compress_net.hpp measures accuracy with fake quantization (dequantized
 * weights, float compute). This engine instead executes every dense layer
 * with INT8 operands and the exact compressed-domain arithmetic BitVert
 * computes — integer accumulation, per-channel weight scales, per-layer
 * activation scales — demonstrating that the hardware path itself
 * preserves accuracy, not just the weight transform.
 *
 * Every layer holds an engine::MatmulPlan over its prepacked compressed
 * rows (built once at construction through the default Session), and
 * `forward(x, InferencePolicy)` is the single entry point: the
 * calibration axis (per-batch vs per-row activation scales) times the
 * execution axis (the plan's kind — Auto lets it pick per-dot at batch 1
 * and the batched compressed GEMM otherwise). The pre-engine
 * forwardPerDot()/forwardRowCalibrated() variants are compatibility
 * wrappers over specific policies, pinned bit-identical by the tests.
 */
#ifndef BBS_NN_INT8_INFER_HPP
#define BBS_NN_INT8_INFER_HPP

#include <memory>
#include <vector>

#include "common/compat.hpp"
#include "core/compressed_tensor.hpp"
#include "engine/plan.hpp"
#include "gemm/compressed_gemm.hpp"
#include "nn/network.hpp"

namespace bbs {

/**
 * How a forward pass quantizes activations and executes its per-layer
 * matmuls — the two axes the three pre-engine forward* variants varied.
 */
struct InferencePolicy
{
    /** PerBatch: one shared activation scale per batch (offline
     *  evaluation). PerRow: each sample quantizes against its own max,
     *  so a row's logits never depend on co-batched rows (the serving
     *  contract). */
    engine::Calibration calibration = engine::Calibration::PerBatch;
    /** Execution override for every layer's plan; Auto lets each plan
     *  decide from the batch size (per-dot at batch 1, batched
     *  compressed GEMM otherwise). */
    engine::PlanKind execution = engine::PlanKind::Auto;
};

/** One dense layer prepared for integer execution. */
struct Int8LinearLayer
{
    /**
     * Every output channel's BBS-compressed weight rows, prepacked once
     * (stored-column planes + pruned-column shift + BBS constant per
     * group) — the ONLY weight copy the layer keeps: both the batched
     * GEMM and the per-dot plan kind execute these planes directly.
     * Shared with the layer's plan, so copies of the network stay cheap
     * and alias-safe.
     */
    std::shared_ptr<const CompressedRowPlanes> planes;
    /** The layer's execution plan (default Session, Auto kind). */
    engine::MatmulPlan plan;
    std::int64_t inFeatures = 0;
    std::int64_t groupSize = 32;
    std::vector<float> wScales; ///< per-output-channel weight scales
    FloatTensor bias;           ///< float bias (applied post-dequant)
    bool geluAfter = false;
    bool reluAfter = false;

    std::int64_t
    outFeatures() const
    {
        return planes ? planes->rows() : 0;
    }
};

/** An integer inference engine mirroring a trained dense Network. */
class Int8Network
{
  public:
    /**
     * Build from a trained float network (Dense/ReLU/GELU layers only):
     * per-channel INT8 weight quantization followed by BBS compression at
     * the given operating point.
     *
     * @param groupSize/targetColumns/strategy  BBS compression config;
     *        targetColumns 0 reproduces plain INT8 inference
     */
    static Int8Network fromNetwork(Network &net, std::int64_t groupSize,
                                   int targetColumns,
                                   PruneStrategy strategy);

    /**
     * Assemble from already-prepared layers (the model store's entry
     * point: each layer's planes are a mapped view into a container and
     * its plan was built over the mapped operand). Layers must be
     * non-empty and width-chained (layer i's outFeatures == layer
     * i+1's inFeatures) with a valid plan each.
     */
    static Int8Network fromLayers(std::vector<Int8LinearLayer> layers);

    /**
     * The unified integer forward pass: quantize activations per
     * @p policy.calibration, run every layer's MatmulPlan (kind per
     * @p policy.execution), rescale the INT32 accumulators to float for
     * the next layer's nonlinearity. All policy combinations are
     * bit-identical per row on identical per-row scales; the per-row
     * calibration of a one-row batch equals the per-batch one, which is
     * what makes serving responses batch-invariant.
     */
    Batch forward(const Batch &x, const InferencePolicy &policy) const;

    /**
     * forward() into a caller-kept output buffer — the serving hot-path
     * form. All intermediates (quantized activations, INT32
     * accumulators, row scales, layer ping-pong buffers) live in a
     * per-thread scratch kept at its high-water size, and @p out is
     * reshaped in place, so a worker draining batch after batch performs
     * ZERO heap allocations once warm (tests/test_hotpath.cpp asserts
     * this with the instrumented allocator). @p out must not alias @p x.
     */
    void forwardInto(const Batch &x, const InferencePolicy &policy,
                     Batch &out) const;

    /** forward() with the default policy (per-batch calibration, Auto
     *  execution) — the offline-evaluation entry point. */
    Batch
    forward(const Batch &x) const
    {
        return forward(x, InferencePolicy{});
    }

#if BBS_LEGACY_WRAPPERS
    /** @deprecated Compatibility wrapper: per-batch calibration forced
     *  through the per-dot plan kind (the original per-(sample, channel)
     *  compressed-dot loop; the micro_gemm baseline). Like every plan
     *  run it now enforces inFeatures <= kMaxGemmDepth (the INT32
     *  accumulator guarantee the batched path always had); within that
     *  domain — which any network usable with forward() satisfies — it
     *  is bit-identical to the pre-engine loop. */
    Batch
    forwardPerDot(const Batch &x) const
    {
        return forward(x, InferencePolicy{engine::Calibration::PerBatch,
                                          engine::PlanKind::PerDot});
    }

    /** @deprecated Compatibility wrapper: per-row calibration, Auto
     *  execution (the serving policy). Row r of the result is
     *  bit-identical to a one-row forward pass on row r alone. */
    Batch
    forwardRowCalibrated(const Batch &x) const
    {
        return forward(x, InferencePolicy{engine::Calibration::PerRow,
                                          engine::PlanKind::Auto});
    }
#endif // BBS_LEGACY_WRAPPERS

    /** Argmax predictions (default policy). */
    std::vector<int> predict(const Batch &x) const;

    /** Mean effective weight bits across layers. */
    double effectiveBits() const;

    /** Feature width the first layer expects (serving input validation). */
    std::int64_t
    inputFeatures() const
    {
        return layers_.front().inFeatures;
    }

    /** Logit width the last layer produces. */
    std::int64_t
    outputFeatures() const
    {
        return layers_.back().outFeatures();
    }

    const std::vector<Int8LinearLayer> &layers() const { return layers_; }

  private:
    std::vector<Int8LinearLayer> layers_;
};

} // namespace bbs

#endif // BBS_NN_INT8_INFER_HPP
