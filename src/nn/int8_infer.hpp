/**
 * @file
 * Integer inference through the *actual* BBS compressed-domain kernels.
 *
 * compress_net.hpp measures accuracy with fake quantization (dequantized
 * weights, float compute). This engine instead executes every dense layer
 * with INT8 operands and the exact compressed-domain arithmetic BitVert
 * computes — integer accumulation, per-channel weight scales, per-layer
 * activation scales — demonstrating that the hardware path itself
 * preserves accuracy, not just the weight transform.
 *
 * Batches run through the bit-serial GEMM engine (gemm/compressed_gemm):
 * activations are packed once per layer and every compressed weight row
 * executes against the whole batch. The original per-sample
 * dotCompressed() loop is preserved as forwardPerDot(), the pinned
 * reference the tests hold the GEMM path bit-identical to.
 */
#ifndef BBS_NN_INT8_INFER_HPP
#define BBS_NN_INT8_INFER_HPP

#include <memory>
#include <vector>

#include "core/compressed_tensor.hpp"
#include "gemm/compressed_gemm.hpp"
#include "nn/network.hpp"

namespace bbs {

/** One dense layer prepared for integer execution. */
struct Int8LinearLayer
{
    /**
     * All output channels' BBS-compressed weight groups, row-major flat:
     * channel o's groups are groups[rowOffsets[o] .. rowOffsets[o+1]).
     * Flat storage keeps row tiles cache-linear for the GEMM engine.
     */
    std::vector<CompressedGroup> groups;
    std::vector<std::int64_t> rowOffsets; ///< outFeatures()+1 entries
    /** The same rows prepacked for gemmCompressed (planes + metadata). */
    CompressedRowPlanes planes;
    std::int64_t inFeatures = 0;
    std::int64_t groupSize = 32;
    std::vector<float> wScales; ///< per-output-channel weight scales
    FloatTensor bias;           ///< float bias (applied post-dequant)
    bool geluAfter = false;
    bool reluAfter = false;

    std::int64_t
    outFeatures() const
    {
        return static_cast<std::int64_t>(rowOffsets.size()) - 1;
    }

    /** Channel @p o's compressed groups. */
    std::span<const CompressedGroup>
    rowGroups(std::int64_t o) const
    {
        std::size_t begin =
            static_cast<std::size_t>(rowOffsets[static_cast<std::size_t>(o)]);
        std::size_t end = static_cast<std::size_t>(
            rowOffsets[static_cast<std::size_t>(o) + 1]);
        return std::span<const CompressedGroup>(groups.data() + begin,
                                                end - begin);
    }
};

/** An integer inference engine mirroring a trained dense Network. */
class Int8Network
{
  public:
    /**
     * Build from a trained float network (Dense/ReLU/GELU layers only):
     * per-channel INT8 weight quantization followed by BBS compression at
     * the given operating point.
     *
     * @param groupSize/targetColumns/strategy  BBS compression config;
     *        targetColumns 0 reproduces plain INT8 inference
     */
    static Int8Network fromNetwork(Network &net, std::int64_t groupSize,
                                   int targetColumns,
                                   PruneStrategy strategy);

    /**
     * Integer forward pass through the batched GEMM engine: activations
     * are quantized per layer to INT8 (symmetric, max-calibrated per
     * batch) and packed once, every layer runs gemmCompressed(), and the
     * INT32 accumulators are rescaled to float for the next layer's
     * nonlinearity. Bit-identical to forwardPerDot().
     */
    Batch forward(const Batch &x) const;

    /**
     * Pinned reference: the original per-(sample, channel) loop over
     * dotCompressed(). Kept for tests and the micro_gemm baseline.
     */
    Batch forwardPerDot(const Batch &x) const;

    /**
     * Batched forward with PER-ROW activation calibration: each sample's
     * activation scale is its own row max at every layer, so a row's
     * logits depend only on that row — never on which other requests the
     * serving batcher happened to coalesce with it. Row r of the result
     * is bit-identical to forwardPerDot() (equivalently forward()) on a
     * one-row batch holding row r alone; the serving runtime relies on
     * this to stay bit-exact against its single-request oracle. forward()
     * keeps per-batch calibration: one shared scale is the right
     * semantics when the batch is one logical workload (evaluation).
     */
    Batch forwardRowCalibrated(const Batch &x) const;

    /** Argmax predictions (through the GEMM path). */
    std::vector<int> predict(const Batch &x) const;

    /** Mean effective weight bits across layers. */
    double effectiveBits() const;

    /** Feature width the first layer expects (serving input validation). */
    std::int64_t
    inputFeatures() const
    {
        return layers_.front().inFeatures;
    }

    /** Logit width the last layer produces. */
    std::int64_t
    outputFeatures() const
    {
        return layers_.back().outFeatures();
    }

    const std::vector<Int8LinearLayer> &layers() const { return layers_; }

  private:
    std::vector<Int8LinearLayer> layers_;
};

} // namespace bbs

#endif // BBS_NN_INT8_INFER_HPP
