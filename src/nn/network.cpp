#include "nn/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace bbs {

void
Network::add(std::unique_ptr<NnLayer> layer)
{
    layers_.push_back(std::move(layer));
}

Batch
Network::forward(const Batch &x, bool train)
{
    Batch cur = x;
    for (auto &layer : layers_)
        cur = layer->forward(cur, train);
    return cur;
}

Batch
softmaxRows(const Batch &logits)
{
    std::int64_t n = logits.shape().dim(0);
    std::int64_t c = logits.shape().dim(1);
    Batch out(logits.shape());
    for (std::int64_t i = 0; i < n; ++i) {
        float maxv = logits.at(i, 0);
        for (std::int64_t j = 1; j < c; ++j)
            maxv = std::max(maxv, logits.at(i, j));
        double sum = 0.0;
        for (std::int64_t j = 0; j < c; ++j) {
            float e = std::exp(logits.at(i, j) - maxv);
            out.at(i, j) = e;
            sum += e;
        }
        for (std::int64_t j = 0; j < c; ++j)
            out.at(i, j) = static_cast<float>(out.at(i, j) / sum);
    }
    return out;
}

namespace {

double
crossEntropy(const Batch &probs, const std::vector<int> &labels)
{
    double loss = 0.0;
    std::int64_t n = probs.shape().dim(0);
    for (std::int64_t i = 0; i < n; ++i) {
        float p = probs.at(i, labels[static_cast<std::size_t>(i)]);
        loss += -std::log(std::max(p, 1e-12f));
    }
    return loss / static_cast<double>(n);
}

} // namespace

double
Network::trainBatch(const Batch &x, const std::vector<int> &labels,
                    float lr, float momentum)
{
    BBS_REQUIRE(static_cast<std::int64_t>(labels.size()) ==
                    x.shape().dim(0),
                "label count != batch size");
    Batch logits = forward(x, /*train=*/true);
    Batch probs = softmaxRows(logits);
    double loss = crossEntropy(probs, labels);

    // dL/dlogits = (softmax - onehot) / N
    Batch grad = probs;
    std::int64_t n = grad.shape().dim(0);
    for (std::int64_t i = 0; i < n; ++i)
        grad.at(i, labels[static_cast<std::size_t>(i)]) -= 1.0f;
    for (std::int64_t i = 0; i < grad.numel(); ++i)
        grad.flat(i) /= static_cast<float>(n);

    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        grad = (*it)->backward(grad);
    for (auto &layer : layers_)
        layer->step(lr, momentum);
    return loss;
}

std::vector<int>
Network::predict(const Batch &x)
{
    return argmaxRows(forward(x, /*train=*/false));
}

std::vector<int>
argmaxRows(const Batch &logits)
{
    std::int64_t n = logits.shape().dim(0);
    std::int64_t c = logits.shape().dim(1);
    std::vector<int> out(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        int best = 0;
        for (std::int64_t j = 1; j < c; ++j)
            if (logits.at(i, j) > logits.at(i, best))
                best = static_cast<int>(j);
        out[static_cast<std::size_t>(i)] = best;
    }
    return out;
}

double
Network::evalLoss(const Batch &x, const std::vector<int> &labels)
{
    Batch probs = softmaxRows(forward(x, /*train=*/false));
    return crossEntropy(probs, labels);
}

std::vector<FloatTensor *>
Network::weightTensors()
{
    std::vector<FloatTensor *> out;
    for (auto &layer : layers_)
        if (FloatTensor *w = layer->weights())
            out.push_back(w);
    return out;
}

std::vector<FloatTensor *>
Network::biasTensors()
{
    std::vector<FloatTensor *> out;
    for (auto &layer : layers_)
        if (FloatTensor *b = layer->bias())
            out.push_back(b);
    return out;
}

} // namespace bbs
