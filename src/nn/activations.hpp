/**
 * @file
 * Scalar activation functions and their derivatives for the small NN stack
 * used by the accuracy experiments (ReLU for CNN-style nets, GELU for
 * transformer-style nets — the distinction the paper draws for activation
 * sparsity, §I).
 */
#ifndef BBS_NN_ACTIVATIONS_HPP
#define BBS_NN_ACTIVATIONS_HPP

namespace bbs {

float relu(float x);
float reluGrad(float x);

/** tanh-approximation GELU (the form used by BERT/ViT). */
float gelu(float x);
float geluGrad(float x);

} // namespace bbs

#endif // BBS_NN_ACTIVATIONS_HPP
