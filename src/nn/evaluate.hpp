/**
 * @file
 * Accuracy and perplexity evaluation of (possibly compressed) networks —
 * float networks and the integer GEMM engine alike.
 */
#ifndef BBS_NN_EVALUATE_HPP
#define BBS_NN_EVALUATE_HPP

#include "nn/dataset.hpp"
#include "nn/int8_infer.hpp"
#include "nn/network.hpp"

namespace bbs {

/** Top-1 accuracy in percent. */
double accuracyPercent(Network &net, const FloatTensor &x,
                       const std::vector<int> &y);

/** Perplexity = exp(mean cross-entropy), the LM metric of Fig 17. */
double perplexity(Network &net, const FloatTensor &x,
                  const std::vector<int> &y);

/**
 * Top-1 accuracy of the integer engine, evaluated in mini-batches so
 * every batch flows through the batched compressed-domain GEMM (and
 * activation calibration sees serving-sized batches, as deployment
 * would).
 */
double accuracyPercent(const Int8Network &engine, const FloatTensor &x,
                       const std::vector<int> &y,
                       std::int64_t batchSize = 256);

/** Perplexity of the integer engine over mini-batched GEMM logits. */
double perplexity(const Int8Network &engine, const FloatTensor &x,
                  const std::vector<int> &y,
                  std::int64_t batchSize = 256);

/** Standard training loop: epochs of shuffled mini-batches. */
struct TrainOptions
{
    int epochs = 12;
    std::int64_t batchSize = 64;
    float lr = 0.05f;
    float momentum = 0.9f;
    std::uint64_t seed = 11;
};

/** Train @p net on the given data; returns the final epoch's mean loss. */
double trainNetwork(Network &net, const FloatTensor &x,
                    const std::vector<int> &y, const TrainOptions &opts);

} // namespace bbs

#endif // BBS_NN_EVALUATE_HPP
