/**
 * @file
 * Accuracy and perplexity evaluation of (possibly compressed) networks.
 */
#ifndef BBS_NN_EVALUATE_HPP
#define BBS_NN_EVALUATE_HPP

#include "nn/dataset.hpp"
#include "nn/network.hpp"

namespace bbs {

/** Top-1 accuracy in percent. */
double accuracyPercent(Network &net, const FloatTensor &x,
                       const std::vector<int> &y);

/** Perplexity = exp(mean cross-entropy), the LM metric of Fig 17. */
double perplexity(Network &net, const FloatTensor &x,
                  const std::vector<int> &y);

/** Standard training loop: epochs of shuffled mini-batches. */
struct TrainOptions
{
    int epochs = 12;
    std::int64_t batchSize = 64;
    float lr = 0.05f;
    float momentum = 0.9f;
    std::uint64_t seed = 11;
};

/** Train @p net on the given data; returns the final epoch's mean loss. */
double trainNetwork(Network &net, const FloatTensor &x,
                    const std::vector<int> &y, const TrainOptions &opts);

} // namespace bbs

#endif // BBS_NN_EVALUATE_HPP
