/**
 * @file
 * Trainable layers of the small NN stack: dense, 2-D convolution (im2col)
 * and element-wise activations, each with forward/backward/SGD-step. This
 * substrate exists so compression accuracy is measured on *real trained
 * weights* through the identical BBS/PTQ/BitWave code paths (DESIGN.md §1).
 */
#ifndef BBS_NN_LAYERS_HPP
#define BBS_NN_LAYERS_HPP

#include <memory>
#include <string>

#include "common/random.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/** Batch-first 2-D data: [batch, features]. */
using Batch = FloatTensor;

/** Abstract trainable layer. */
class NnLayer
{
  public:
    virtual ~NnLayer() = default;

    virtual std::string kind() const = 0;

    /** Forward pass; caches what backward needs. */
    virtual Batch forward(const Batch &x, bool train) = 0;

    /** Backward pass: input = dL/dout, returns dL/din, accumulates grads. */
    virtual Batch backward(const Batch &gradOut) = 0;

    /** SGD with momentum parameter update; no-op for stateless layers. */
    virtual void step(float lr, float momentum) { (void)lr; (void)momentum; }

    /** Weight matrix access for compression (nullptr if stateless). */
    virtual FloatTensor *weights() { return nullptr; }

    /** Bias vector access (nullptr if stateless); never compressed. */
    virtual FloatTensor *bias() { return nullptr; }
};

/** Fully connected layer: y = x W^T + b, W is [out, in]. */
class Dense : public NnLayer
{
  public:
    Dense(std::int64_t inFeatures, std::int64_t outFeatures, Rng &rng);

    std::string kind() const override { return "dense"; }
    Batch forward(const Batch &x, bool train) override;
    Batch backward(const Batch &gradOut) override;
    void step(float lr, float momentum) override;
    FloatTensor *weights() override { return &w_; }
    FloatTensor *bias() override { return &b_; }

    std::int64_t inFeatures() const { return w_.shape().dim(1); }
    std::int64_t outFeatures() const { return w_.shape().dim(0); }

  private:
    FloatTensor w_;     ///< [out, in]
    FloatTensor b_;     ///< [out]
    FloatTensor gradW_;
    FloatTensor gradB_;
    FloatTensor velW_;
    FloatTensor velB_;
    Batch cachedInput_;
};

/**
 * 2-D convolution via im2col. Input batches are flattened [N, C*H*W];
 * geometry is fixed at construction. Stride 1, symmetric zero padding.
 */
class Conv2d : public NnLayer
{
  public:
    Conv2d(std::int64_t inChannels, std::int64_t outChannels,
           std::int64_t kernel, std::int64_t imageHw, std::int64_t pad,
           Rng &rng);

    std::string kind() const override { return "conv2d"; }
    Batch forward(const Batch &x, bool train) override;
    Batch backward(const Batch &gradOut) override;
    void step(float lr, float momentum) override;
    FloatTensor *weights() override { return &w_; }
    FloatTensor *bias() override { return &b_; }

    std::int64_t outHw() const { return outHw_; }
    std::int64_t outChannels() const { return w_.shape().dim(0); }

  private:
    FloatTensor w_; ///< [K, C, R, R]
    FloatTensor b_; ///< [K]
    FloatTensor gradW_;
    FloatTensor gradB_;
    FloatTensor velW_;
    FloatTensor velB_;
    std::int64_t inChannels_, kernel_, imageHw_, pad_, outHw_;
    Batch cachedCols_; ///< im2col matrix of the last forward
    std::int64_t cachedBatch_ = 0;
};

/** Element-wise ReLU. */
class ReluLayer : public NnLayer
{
  public:
    std::string kind() const override { return "relu"; }
    Batch forward(const Batch &x, bool train) override;
    Batch backward(const Batch &gradOut) override;

  private:
    Batch cachedInput_;
};

/** Element-wise GELU. */
class GeluLayer : public NnLayer
{
  public:
    std::string kind() const override { return "gelu"; }
    Batch forward(const Batch &x, bool train) override;
    Batch backward(const Batch &gradOut) override;

  private:
    Batch cachedInput_;
};

} // namespace bbs

#endif // BBS_NN_LAYERS_HPP
