#include "nn/layers.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "nn/activations.hpp"

namespace bbs {

namespace {

/** y[N, out] = x[N, in] * wT[in, out] given w[out, in]. */
Batch
matmulXWt(const Batch &x, const FloatTensor &w)
{
    std::int64_t n = x.shape().dim(0);
    std::int64_t in = x.shape().dim(1);
    std::int64_t out = w.shape().dim(0);
    BBS_ASSERT(w.shape().dim(1) == in);
    Batch y(Shape{n, out});
    parallelFor(n, [&](std::int64_t i) {
        for (std::int64_t o = 0; o < out; ++o) {
            float acc = 0.0f;
            const float *xr = &x.at(i, 0);
            const float *wr = &w.at(o, 0);
            for (std::int64_t k = 0; k < in; ++k)
                acc += xr[k] * wr[k];
            y.at(i, o) = acc;
        }
    }, 128);
    return y;
}

float
heInit(Rng &rng, std::int64_t fanIn)
{
    return static_cast<float>(
        rng.gaussian(0.0, std::sqrt(2.0 / static_cast<double>(fanIn))));
}

void
sgdUpdate(FloatTensor &param, FloatTensor &grad, FloatTensor &vel, float lr,
          float momentum)
{
    for (std::int64_t i = 0; i < param.numel(); ++i) {
        vel.flat(i) = momentum * vel.flat(i) - lr * grad.flat(i);
        param.flat(i) += vel.flat(i);
        grad.flat(i) = 0.0f;
    }
}

} // namespace

Dense::Dense(std::int64_t inFeatures, std::int64_t outFeatures, Rng &rng)
    : w_(Shape{outFeatures, inFeatures}),
      b_(Shape{outFeatures}),
      gradW_(Shape{outFeatures, inFeatures}),
      gradB_(Shape{outFeatures}),
      velW_(Shape{outFeatures, inFeatures}),
      velB_(Shape{outFeatures})
{
    for (std::int64_t i = 0; i < w_.numel(); ++i)
        w_.flat(i) = heInit(rng, inFeatures);
}

Batch
Dense::forward(const Batch &x, bool train)
{
    if (train)
        cachedInput_ = x;
    Batch y = matmulXWt(x, w_);
    std::int64_t n = y.shape().dim(0);
    std::int64_t out = y.shape().dim(1);
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t o = 0; o < out; ++o)
            y.at(i, o) += b_.flat(o);
    return y;
}

Batch
Dense::backward(const Batch &gradOut)
{
    std::int64_t n = gradOut.shape().dim(0);
    std::int64_t out = w_.shape().dim(0);
    std::int64_t in = w_.shape().dim(1);

    // dW[o, k] += sum_i g[i, o] * x[i, k]; dB[o] += sum_i g[i, o]
    parallelFor(out, [&](std::int64_t o) {
        for (std::int64_t i = 0; i < n; ++i) {
            float g = gradOut.at(i, o);
            gradB_.flat(o) += g;
            const float *xr = &cachedInput_.at(i, 0);
            float *gw = &gradW_.at(o, 0);
            for (std::int64_t k = 0; k < in; ++k)
                gw[k] += g * xr[k];
        }
    }, 128);

    // dX[i, k] = sum_o g[i, o] * w[o, k]
    Batch gradIn(Shape{n, in});
    parallelFor(n, [&](std::int64_t i) {
        for (std::int64_t o = 0; o < out; ++o) {
            float g = gradOut.at(i, o);
            const float *wr = &w_.at(o, 0);
            float *gi = &gradIn.at(i, 0);
            for (std::int64_t k = 0; k < in; ++k)
                gi[k] += g * wr[k];
        }
    }, 128);
    return gradIn;
}

void
Dense::step(float lr, float momentum)
{
    sgdUpdate(w_, gradW_, velW_, lr, momentum);
    sgdUpdate(b_, gradB_, velB_, lr, momentum);
}

Conv2d::Conv2d(std::int64_t inChannels, std::int64_t outChannels,
               std::int64_t kernel, std::int64_t imageHw, std::int64_t pad,
               Rng &rng)
    : w_(Shape{outChannels, inChannels, kernel, kernel}),
      b_(Shape{outChannels}),
      gradW_(Shape{outChannels, inChannels, kernel, kernel}),
      gradB_(Shape{outChannels}),
      velW_(Shape{outChannels, inChannels, kernel, kernel}),
      velB_(Shape{outChannels}),
      inChannels_(inChannels), kernel_(kernel), imageHw_(imageHw),
      pad_(pad), outHw_(imageHw + 2 * pad - kernel + 1)
{
    BBS_REQUIRE(outHw_ >= 1, "conv output collapses to nothing");
    std::int64_t fanIn = inChannels * kernel * kernel;
    for (std::int64_t i = 0; i < w_.numel(); ++i)
        w_.flat(i) = heInit(rng, fanIn);
}

Batch
Conv2d::forward(const Batch &x, bool train)
{
    std::int64_t n = x.shape().dim(0);
    std::int64_t patch = inChannels_ * kernel_ * kernel_;
    std::int64_t positions = outHw_ * outHw_;

    // im2col: [N * positions, patch]
    Batch cols(Shape{n * positions, patch});
    parallelFor(n, [&](std::int64_t img) {
        const float *src = &x.at(img, 0);
        for (std::int64_t oy = 0; oy < outHw_; ++oy) {
            for (std::int64_t ox = 0; ox < outHw_; ++ox) {
                float *dst = &cols.at(img * positions + oy * outHw_ + ox, 0);
                std::int64_t p = 0;
                for (std::int64_t c = 0; c < inChannels_; ++c) {
                    for (std::int64_t ky = 0; ky < kernel_; ++ky) {
                        std::int64_t iy = oy + ky - pad_;
                        for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                            std::int64_t ix = ox + kx - pad_;
                            bool inside = iy >= 0 && iy < imageHw_ &&
                                          ix >= 0 && ix < imageHw_;
                            dst[p++] = inside
                                ? src[(c * imageHw_ + iy) * imageHw_ + ix]
                                : 0.0f;
                        }
                    }
                }
            }
        }
    }, 1);

    if (train) {
        cachedCols_ = cols;
        cachedBatch_ = n;
    }

    // Weights as a [K, patch] matrix (same memory layout).
    std::int64_t k = w_.shape().dim(0);
    Batch y(Shape{n, k * positions});
    parallelFor(n * positions, [&](std::int64_t rc) {
        std::int64_t img = rc / positions;
        std::int64_t pos = rc % positions;
        const float *col = &cols.at(rc, 0);
        for (std::int64_t o = 0; o < k; ++o) {
            const float *wr = &w_.flat(o * patch);
            float acc = b_.flat(o);
            for (std::int64_t q = 0; q < patch; ++q)
                acc += wr[q] * col[q];
            y.at(img, o * positions + pos) = acc;
        }
    }, 64);
    return y;
}

Batch
Conv2d::backward(const Batch &gradOut)
{
    std::int64_t n = cachedBatch_;
    std::int64_t k = w_.shape().dim(0);
    std::int64_t patch = inChannels_ * kernel_ * kernel_;
    std::int64_t positions = outHw_ * outHw_;

    // dW[o, q] = sum over (img, pos) g[img, o, pos] * col[img*pos, q]
    parallelFor(k, [&](std::int64_t o) {
        float *gw = &gradW_.flat(o * patch);
        for (std::int64_t img = 0; img < n; ++img) {
            for (std::int64_t pos = 0; pos < positions; ++pos) {
                float g = gradOut.at(img, o * positions + pos);
                gradB_.flat(o) += g;
                const float *col = &cachedCols_.at(img * positions + pos, 0);
                for (std::int64_t q = 0; q < patch; ++q)
                    gw[q] += g * col[q];
            }
        }
    }, 1);

    // dX via col2im of (g^T W).
    Batch gradIn(Shape{n, inChannels_ * imageHw_ * imageHw_});
    parallelFor(n, [&](std::int64_t img) {
        float *gx = &gradIn.at(img, 0);
        for (std::int64_t pos = 0; pos < positions; ++pos) {
            std::int64_t oy = pos / outHw_;
            std::int64_t ox = pos % outHw_;
            for (std::int64_t o = 0; o < k; ++o) {
                float g = gradOut.at(img, o * positions + pos);
                if (g == 0.0f)
                    continue;
                const float *wr = &w_.flat(o * patch);
                std::int64_t q = 0;
                for (std::int64_t c = 0; c < inChannels_; ++c) {
                    for (std::int64_t ky = 0; ky < kernel_; ++ky) {
                        std::int64_t iy = oy + ky - pad_;
                        for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                            std::int64_t ix = ox + kx - pad_;
                            if (iy >= 0 && iy < imageHw_ && ix >= 0 &&
                                ix < imageHw_) {
                                gx[(c * imageHw_ + iy) * imageHw_ + ix] +=
                                    g * wr[q];
                            }
                            ++q;
                        }
                    }
                }
            }
        }
    }, 1);
    return gradIn;
}

void
Conv2d::step(float lr, float momentum)
{
    sgdUpdate(w_, gradW_, velW_, lr, momentum);
    sgdUpdate(b_, gradB_, velB_, lr, momentum);
}

Batch
ReluLayer::forward(const Batch &x, bool train)
{
    if (train)
        cachedInput_ = x;
    Batch y = x;
    for (std::int64_t i = 0; i < y.numel(); ++i)
        y.flat(i) = relu(y.flat(i));
    return y;
}

Batch
ReluLayer::backward(const Batch &gradOut)
{
    Batch g = gradOut;
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g.flat(i) *= reluGrad(cachedInput_.flat(i));
    return g;
}

Batch
GeluLayer::forward(const Batch &x, bool train)
{
    if (train)
        cachedInput_ = x;
    Batch y = x;
    for (std::int64_t i = 0; i < y.numel(); ++i)
        y.flat(i) = gelu(y.flat(i));
    return y;
}

Batch
GeluLayer::backward(const Batch &gradOut)
{
    Batch g = gradOut;
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g.flat(i) *= geluGrad(cachedInput_.flat(i));
    return g;
}

} // namespace bbs
