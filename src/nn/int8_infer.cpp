#include "nn/int8_infer.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "core/bbs_dot.hpp"
#include "nn/activations.hpp"
#include "quant/quantizer.hpp"

namespace bbs {

Int8Network
Int8Network::fromNetwork(Network &net, std::int64_t groupSize,
                         int targetColumns, PruneStrategy strategy)
{
    Int8Network out;
    auto &layers = net.layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
        if (layers[i]->kind() != "dense")
            continue;
        FloatTensor *w = layers[i]->weights();
        FloatTensor *b = layers[i]->bias();
        BBS_ASSERT(w && b);

        Int8LinearLayer layer;
        QuantizedTensor q = quantizePerChannel(*w, 8);
        layer.inFeatures = q.values.shape().dim(1);
        layer.groupSize = groupSize;
        std::int64_t channels = q.values.shape().dim(0);
        layer.rowGroups.resize(static_cast<std::size_t>(channels));
        for (std::int64_t k = 0; k < channels; ++k) {
            auto row = q.values.channel(k);
            auto &groups =
                layer.rowGroups[static_cast<std::size_t>(k)];
            for (std::size_t begin = 0; begin < row.size();
                 begin += static_cast<std::size_t>(groupSize)) {
                std::size_t len = std::min<std::size_t>(
                    static_cast<std::size_t>(groupSize),
                    row.size() - begin);
                groups.push_back(compressGroup(
                    std::span<const std::int8_t>(row.data() + begin,
                                                 len),
                    targetColumns, strategy));
            }
        }
        layer.wScales = q.scales;
        layer.bias = *b;
        // Fuse the following activation, if any.
        if (i + 1 < layers.size()) {
            layer.reluAfter = layers[i + 1]->kind() == "relu";
            layer.geluAfter = layers[i + 1]->kind() == "gelu";
        }
        out.layers_.push_back(std::move(layer));
    }
    BBS_REQUIRE(!out.layers_.empty(),
                "network has no dense layers to quantize");
    return out;
}

Batch
Int8Network::forward(const Batch &x) const
{
    Batch cur = x;
    for (const Int8LinearLayer &layer : layers_) {
        std::int64_t n = cur.shape().dim(0);
        std::int64_t in = cur.shape().dim(1);
        std::int64_t out =
            static_cast<std::int64_t>(layer.rowGroups.size());
        BBS_REQUIRE(layer.inFeatures == in,
                    "activation width mismatch");

        // Per-batch symmetric activation quantization (max calibration).
        float amax = 0.0f;
        for (std::int64_t i = 0; i < cur.numel(); ++i)
            amax = std::max(amax, std::abs(cur.flat(i)));
        float sA = amax > 0.0f ? amax / 127.0f : 1.0f;
        Int8Tensor qx(Shape{n, in});
        for (std::int64_t i = 0; i < cur.numel(); ++i) {
            float q = std::nearbyint(cur.flat(i) / sA);
            qx.flat(i) = static_cast<std::int8_t>(
                std::clamp(q, -128.0f, 127.0f));
        }

        // Integer GEMM: each (row, out-channel) dot runs group by group
        // through the compressed-domain kernel.
        Batch next(Shape{n, out});
        parallelFor(out, [&](std::int64_t o) {
            float scale = layer.wScales[static_cast<std::size_t>(o)];
            const auto &groups =
                layer.rowGroups[static_cast<std::size_t>(o)];
            for (std::int64_t row = 0; row < n; ++row) {
                std::int64_t acc = 0;
                std::int64_t begin = 0;
                for (const CompressedGroup &cg : groups) {
                    std::span<const std::int8_t> acts(
                        &qx.at(row, begin), cg.stored.size());
                    acc += dotCompressed(cg, acts).value;
                    begin += static_cast<std::int64_t>(
                        cg.stored.size());
                }
                float v = static_cast<float>(acc) * scale * sA +
                          layer.bias.flat(o);
                if (layer.reluAfter)
                    v = relu(v);
                else if (layer.geluAfter)
                    v = gelu(v);
                next.at(row, o) = v;
            }
        }, 2);
        cur = std::move(next);
    }
    return cur;
}

std::vector<int>
Int8Network::predict(const Batch &x) const
{
    Batch logits = forward(x);
    std::int64_t n = logits.shape().dim(0);
    std::int64_t c = logits.shape().dim(1);
    std::vector<int> out(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        int best = 0;
        for (std::int64_t j = 1; j < c; ++j)
            if (logits.at(i, j) > logits.at(i, best))
                best = static_cast<int>(j);
        out[static_cast<std::size_t>(i)] = best;
    }
    return out;
}

double
Int8Network::effectiveBits() const
{
    double bits = 0.0, weights = 0.0;
    for (const auto &l : layers_) {
        for (const auto &row : l.rowGroups) {
            for (const CompressedGroup &g : row) {
                bits += static_cast<double>(g.storageBits());
                weights += static_cast<double>(g.stored.size());
            }
        }
    }
    return bits / weights;
}

} // namespace bbs
