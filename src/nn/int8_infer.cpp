#include "nn/int8_infer.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "engine/session.hpp"
#include "nn/activations.hpp"
#include "quant/quantizer.hpp"

namespace bbs {

namespace {

/** Per-batch symmetric activation quantization (max calibration). */
float
quantizeActivations(const Batch &cur, Int8Tensor &qx)
{
    float amax = 0.0f;
    for (std::int64_t i = 0; i < cur.numel(); ++i)
        amax = std::max(amax, std::abs(cur.flat(i)));
    float sA = amax > 0.0f ? amax / 127.0f : 1.0f;
    for (std::int64_t i = 0; i < cur.numel(); ++i) {
        float q = std::nearbyint(cur.flat(i) / sA);
        qx.flat(i) =
            static_cast<std::int8_t>(std::clamp(q, -128.0f, 127.0f));
    }
    return sA;
}

/**
 * Symmetric max-calibrated quantization of one row of @p cur, scale from
 * that row alone. On a one-row batch this is exactly quantizeActivations,
 * which is what makes the row-calibrated policy bit-identical to a
 * single-sample pass.
 */
float
quantizeRow(const Batch &cur, std::int64_t row, Int8Tensor &qx)
{
    std::int64_t in = cur.shape().dim(1);
    float amax = 0.0f;
    for (std::int64_t c = 0; c < in; ++c)
        amax = std::max(amax, std::abs(cur.at(row, c)));
    float sA = amax > 0.0f ? amax / 127.0f : 1.0f;
    for (std::int64_t c = 0; c < in; ++c) {
        float q = std::nearbyint(cur.at(row, c) / sA);
        qx.at(row, c) =
            static_cast<std::int8_t>(std::clamp(q, -128.0f, 127.0f));
    }
    return sA;
}

/**
 * Dequantize one INT32 accumulator and apply the fused nonlinearity.
 * Every policy funnels through this exact expression, which is what
 * keeps their logits bit-identical.
 */
inline float
dequantize(std::int64_t acc, float scale, float sA, float bias,
           bool reluAfter, bool geluAfter)
{
    float v = static_cast<float>(acc) * scale * sA + bias;
    if (reluAfter)
        return relu(v);
    if (geluAfter)
        return gelu(v);
    return v;
}

} // namespace

Int8Network
Int8Network::fromNetwork(Network &net, std::int64_t groupSize,
                         int targetColumns, PruneStrategy strategy)
{
    Int8Network out;
    auto &layers = net.layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
        if (layers[i]->kind() != "dense")
            continue;
        FloatTensor *w = layers[i]->weights();
        FloatTensor *b = layers[i]->bias();
        BBS_ASSERT(w && b);

        Int8LinearLayer layer;
        QuantizedTensor q = quantizePerChannel(*w, 8);
        layer.inFeatures = q.values.shape().dim(1);
        layer.groupSize = groupSize;
        std::int64_t channels = q.values.shape().dim(0);
        std::int64_t groupsPerRow =
            (layer.inFeatures + groupSize - 1) / groupSize;
        // The CompressedGroup forms are staging only: once prepared into
        // row planes (which cache the same packed columns, shifts and
        // constants), the layer keeps a single weight copy.
        std::vector<CompressedGroup> groups;
        std::vector<std::int64_t> rowOffsets;
        groups.reserve(static_cast<std::size_t>(channels * groupsPerRow));
        rowOffsets.reserve(static_cast<std::size_t>(channels) + 1);
        rowOffsets.push_back(0);
        for (std::int64_t k = 0; k < channels; ++k) {
            auto row = q.values.channel(k);
            for (std::size_t begin = 0; begin < row.size();
                 begin += static_cast<std::size_t>(groupSize)) {
                std::size_t len = std::min<std::size_t>(
                    static_cast<std::size_t>(groupSize),
                    row.size() - begin);
                groups.push_back(compressGroup(
                    std::span<const std::int8_t>(row.data() + begin,
                                                 len),
                    targetColumns, strategy));
            }
            rowOffsets.push_back(
                static_cast<std::int64_t>(groups.size()));
        }
        layer.planes = std::make_shared<const CompressedRowPlanes>(
            CompressedRowPlanes::prepare(groups, rowOffsets,
                                         layer.inFeatures, groupSize));
        // The layer's plan: shared prepacked rows behind a default-
        // Session plan; Auto resolves per-dot vs batched per call.
        layer.plan = engine::defaultSession().plan(
            engine::PackedOperand::fromPrepared(layer.planes));
        layer.wScales = q.scales;
        layer.bias = *b;
        // Fuse the following activation, if any.
        if (i + 1 < layers.size()) {
            layer.reluAfter = layers[i + 1]->kind() == "relu";
            layer.geluAfter = layers[i + 1]->kind() == "gelu";
        }
        out.layers_.push_back(std::move(layer));
    }
    BBS_REQUIRE(!out.layers_.empty(),
                "network has no dense layers to quantize");
    return out;
}

Int8Network
Int8Network::fromLayers(std::vector<Int8LinearLayer> layers)
{
    BBS_REQUIRE(!layers.empty(), "a network needs at least one layer");
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const Int8LinearLayer &l = layers[i];
        BBS_REQUIRE(l.planes != nullptr && l.plan.valid(),
                    "layer ", i, " is missing its planes or plan");
        BBS_REQUIRE(static_cast<std::int64_t>(l.wScales.size()) ==
                            l.outFeatures() &&
                        l.bias.numel() == l.outFeatures(),
                    "layer ", i, " scale/bias width != outFeatures");
        if (i + 1 < layers.size())
            BBS_REQUIRE(l.outFeatures() == layers[i + 1].inFeatures,
                        "layer ", i, " outputs ", l.outFeatures(),
                        " features but layer ", i + 1, " expects ",
                        layers[i + 1].inFeatures);
    }
    Int8Network out;
    out.layers_ = std::move(layers);
    return out;
}

namespace {

/**
 * Per-thread forward-pass intermediates, kept at their high-water size:
 * the quantized activations, the INT32 accumulators, the per-row scales
 * and the two layer ping-pong buffers. A serving worker's steady-state
 * forwardInto touches only these (plus the engine's scratch arena), so
 * it allocates nothing once the largest batch has been seen.
 */
struct ForwardScratch
{
    Int8Tensor qx;
    Int32Tensor prod;
    std::vector<float> rowScales;
    Batch ping;
    Batch pong;

    static ForwardScratch &
    forThisThread()
    {
        static thread_local ForwardScratch scratch;
        return scratch;
    }
};

} // namespace

void
Int8Network::forwardInto(const Batch &x, const InferencePolicy &policy,
                         Batch &out) const
{
    BBS_REQUIRE(&out != &x, "forwardInto output must not alias input");
    const bool perRow = policy.calibration == engine::Calibration::PerRow;
    ForwardScratch &s = ForwardScratch::forThisThread();
    const Batch *cur = &x;
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        const Int8LinearLayer &layer = layers_[li];
        std::int64_t n = cur->shape().dim(0);
        std::int64_t in = cur->shape().dim(1);
        std::int64_t outF = layer.outFeatures();
        BBS_REQUIRE(layer.inFeatures == in,
                    "activation width mismatch");

        Int8Tensor &qx = s.qx;
        qx.resizeTo(Shape{n, in});
        float sA = 1.0f;
        if (perRow) {
            // Per-row scales: each sample quantizes against its own max,
            // so batch composition cannot perturb any sample's
            // arithmetic.
            s.rowScales.resize(static_cast<std::size_t>(n));
            const Batch &curRef = *cur;
            parallelFor(n, [&](std::int64_t row) {
                s.rowScales[static_cast<std::size_t>(row)] =
                    quantizeRow(curRef, row, qx);
            }, 8);
        } else {
            sA = quantizeActivations(*cur, qx);
        }

        // The layer's plan executes the matmul: Auto picks the per-dot
        // loop at batch 1 and the batched compressed GEMM otherwise; an
        // explicit policy.execution overrides it.
        if (policy.execution == engine::PlanKind::Auto)
            layer.plan.run(qx, s.prod);
        else
            layer.plan.runAs(policy.execution, qx, s.prod);

        // The last layer dequantizes straight into the caller's buffer;
        // inner layers ping-pong between the two scratch batches.
        Batch &next = li + 1 == layers_.size()
                          ? out
                          : (cur == &s.ping ? s.pong : s.ping);
        next.resizeTo(Shape{n, outF});
        Int32Tensor &prod = s.prod;
        parallelFor(n, [&](std::int64_t row) {
            float rowScale =
                perRow ? s.rowScales[static_cast<std::size_t>(row)] : sA;
            for (std::int64_t o = 0; o < outF; ++o)
                next.at(row, o) = dequantize(
                    prod.at(row, o),
                    layer.wScales[static_cast<std::size_t>(o)], rowScale,
                    layer.bias.flat(o), layer.reluAfter,
                    layer.geluAfter);
        }, 16);
        cur = &next;
    }
}

Batch
Int8Network::forward(const Batch &x, const InferencePolicy &policy) const
{
    Batch out;
    forwardInto(x, policy, out);
    return out;
}

std::vector<int>
Int8Network::predict(const Batch &x) const
{
    return argmaxRows(forward(x));
}

double
Int8Network::effectiveBits() const
{
    // storageBits of a group == storedBits * size + the metadata byte;
    // the prepacked planes carry exactly those fields.
    double bits = 0.0, weights = 0.0;
    for (const auto &l : layers_) {
        const CompressedRowPlanes &p = *l.planes;
        for (std::int64_t o = 0; o < p.rows(); ++o) {
            for (std::int64_t g = 0; g < p.groupsPerRow(); ++g) {
                const PackedGroup &pg = p.packedGroup(o, g);
                bits += static_cast<double>(pg.bits) * pg.size + 8.0;
                weights += static_cast<double>(pg.size);
            }
        }
    }
    return bits / weights;
}

} // namespace bbs
