#include "nn/compress_net.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "metrics/error.hpp"
#include "metrics/kl_divergence.hpp"
#include "quant/ant.hpp"
#include "quant/bitwave.hpp"
#include "quant/microscaling.hpp"
#include "quant/olive.hpp"
#include "quant/quantizer.hpp"

namespace bbs {

const char *
compressionMethodName(CompressionMethod m)
{
    switch (m) {
      case CompressionMethod::None:
        return "INT8";
      case CompressionMethod::PtqClip:
        return "PTQ";
      case CompressionMethod::NoisyPtq:
        return "NoisyQuant";
      case CompressionMethod::Microscaling:
        return "Microscaling";
      case CompressionMethod::AntAdaptive:
        return "ANT";
      case CompressionMethod::OlivePairs:
        return "OliVe";
      case CompressionMethod::BitwaveFlip:
        return "BitWave";
      case CompressionMethod::BbsPrune:
        return "BBS";
    }
    return "?";
}

namespace {

/** Write per-channel dequantized codes back into a weight tensor. */
void
writeBack(FloatTensor &w, const Int8Tensor &codes,
          const std::vector<float> &scales)
{
    std::int64_t channels = w.shape().dim(0);
    std::int64_t cs = w.shape().channelSize();
    for (std::int64_t k = 0; k < channels; ++k) {
        auto src = codes.channel(k);
        auto dst = w.channel(k);
        float s = scales[static_cast<std::size_t>(k)];
        for (std::int64_t i = 0; i < cs; ++i)
            dst[static_cast<std::size_t>(i)] =
                static_cast<float>(src[static_cast<std::size_t>(i)]) * s;
    }
}

} // namespace

CompressionReport
compressNetwork(Network &net, const CompressionSpec &spec)
{
    CompressionReport report;
    std::vector<FloatTensor *> weights = net.weightTensors();
    BBS_REQUIRE(!weights.empty(), "network has no weight layers");

    // Baseline: per-channel INT8 of every layer (the paper's baseline
    // models). All codes-level methods start from these.
    std::vector<QuantizedTensor> baseline;
    baseline.reserve(weights.size());
    for (FloatTensor *w : weights)
        baseline.push_back(quantizePerChannel(*w, 8));

    // Sensitive channels shared by PTQ / BitWave / BBS (§V-B: "the same
    // setting as BBS").
    std::vector<PrunableLayer> prunable;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        PrunableLayer pl;
        pl.name = "layer" + std::to_string(i);
        pl.codes = baseline[i].values;
        pl.scales = baseline[i].scales;
        prunable.push_back(std::move(pl));
    }
    // Small stand-in networks have few channels; use a CH of 1 so the
    // sensitive fraction tracks beta instead of rounding to whole tiles.
    int ch = 1;
    auto sensitive =
        selectSensitiveChannels(prunable, spec.bbs.beta, ch);

    // Layers are independent: each iteration touches only weights[i] and
    // its per-layer accumulators, so the model-level loop fans out across
    // threads; partials are reduced in layer order afterwards.
    struct LayerOutcome
    {
        double bits = 0.0, weights = 0.0, mse = 0.0, kl = 0.0;
    };
    std::vector<LayerOutcome> outcomes(weights.size());

    parallelFor(static_cast<std::int64_t>(weights.size()),
                [&](std::int64_t li) {
        std::size_t i = static_cast<std::size_t>(li);
        FloatTensor &w = *weights[i];
        const QuantizedTensor &base = baseline[i];
        std::int64_t channels = w.shape().dim(0);
        std::int64_t cs = w.shape().channelSize();
        std::int64_t n = w.numel();
        Int8Tensor newCodes = base.values;
        double layerBits = 8.0 * static_cast<double>(n);
        bool codesLevel = true;

        switch (spec.method) {
          case CompressionMethod::None:
            break;

          case CompressionMethod::PtqClip: {
            // Requantize non-sensitive channels to the target precision.
            int bits = spec.bits;
            Int8Tensor req = requantizeInt8(base.values, bits);
            layerBits = 0.0;
            for (std::int64_t k = 0; k < channels; ++k) {
                bool sens = sensitive[i][static_cast<std::size_t>(k)];
                layerBits += static_cast<double>(cs) * (sens ? 8 : bits);
                if (sens)
                    continue;
                auto src = req.channel(k);
                auto dst = newCodes.channel(k);
                std::copy(src.begin(), src.end(), dst.begin());
            }
            break;
          }

          case CompressionMethod::NoisyPtq: {
            // NoisyQuant: dithered PTQ on the FP32 weights.
            QuantizedTensor nq = quantizeNoisy(w, spec.bits, 0xd17e + i);
            w = nq.dequantize();
            layerBits = static_cast<double>(spec.bits) *
                        static_cast<double>(n);
            codesLevel = false;
            break;
          }

          case CompressionMethod::Microscaling: {
            MxConfig cfg;
            cfg.elementBits = spec.bits;
            cfg.groupSize = spec.groupSize;
            FloatTensor deq = mxQuantizeDequantize(w, cfg);
            w = deq;
            layerBits = cfg.effectiveBits() * static_cast<double>(n);
            codesLevel = false;
            break;
          }

          case CompressionMethod::AntAdaptive: {
            AntResult r = antQuantize(w, spec.bits);
            w = r.dequantized;
            layerBits = static_cast<double>(spec.bits) *
                        static_cast<double>(n);
            codesLevel = false;
            break;
          }

          case CompressionMethod::OlivePairs: {
            OliveConfig cfg;
            cfg.bits = spec.bits;
            cfg.groupSize = spec.groupSize;
            OliveResult r = oliveQuantize(w, cfg);
            w = r.dequantized;
            layerBits = r.effectiveBits * static_cast<double>(n);
            codesLevel = false;
            break;
          }

          case CompressionMethod::BitwaveFlip: {
            layerBits = 0.0;
            for (std::int64_t k = 0; k < channels; ++k) {
                bool sens = sensitive[i][static_cast<std::size_t>(k)];
                if (sens) {
                    layerBits += static_cast<double>(cs) * 8.0;
                    continue;
                }
                // Flip within the channel at the shared group size.
                Int8Tensor chT(Shape{cs});
                auto src = base.values.channel(k);
                std::copy(src.begin(), src.end(), chT.data().begin());
                Int8Tensor pruned =
                    bitwavePrune(chT, spec.groupSize,
                                 spec.bbs.targetColumns);
                auto dst = newCodes.channel(k);
                std::copy(pruned.data().begin(), pruned.data().end(),
                          dst.begin());
                layerBits += static_cast<double>(cs) *
                             (8.0 - spec.bbs.targetColumns) +
                             static_cast<double>(chT.numGroups(
                                 spec.groupSize)) * 8.0;
            }
            break;
          }

          case CompressionMethod::BbsPrune: {
            layerBits = 0.0;
            for (std::int64_t k = 0; k < channels; ++k) {
                bool sens = sensitive[i][static_cast<std::size_t>(k)];
                if (sens) {
                    layerBits += static_cast<double>(cs) * 8.0;
                    continue;
                }
                Int8Tensor chT(Shape{cs});
                auto src = base.values.channel(k);
                std::copy(src.begin(), src.end(), chT.data().begin());
                CompressedTensor ct = CompressedTensor::compress(
                    chT, spec.bbs.groupSize, spec.bbs.targetColumns,
                    spec.bbs.strategy);
                Int8Tensor rec = ct.decompress();
                auto dst = newCodes.channel(k);
                std::copy(rec.data().begin(), rec.data().end(),
                          dst.begin());
                layerBits += static_cast<double>(ct.storageBits());
            }
            break;
          }
        }

        LayerOutcome &out = outcomes[i];
        if (codesLevel) {
            out.mse = mse(base.values, newCodes) * static_cast<double>(n);
            out.kl = klDivergence(base.values, newCodes) *
                     static_cast<double>(n);
            writeBack(w, newCodes, base.scales);
        } else {
            // Float-format methods: re-express on the INT8 grid for a
            // comparable KL (the paper's Fig 1 methodology).
            QuantizedTensor requant = quantizePerChannel(w, 8);
            out.mse = mse(base.values, requant.values) *
                      static_cast<double>(n);
            out.kl = klDivergence(base.values, requant.values) *
                     static_cast<double>(n);
        }
        out.bits = layerBits;
        out.weights = static_cast<double>(n);
    }, /*chunk=*/1);

    double totalBits = 0.0;
    double totalWeights = 0.0;
    double mseAcc = 0.0;
    double klAcc = 0.0;
    for (const LayerOutcome &out : outcomes) {
        totalBits += out.bits;
        totalWeights += out.weights;
        mseAcc += out.mse;
        klAcc += out.kl;
    }

    report.effectiveBits = totalBits / totalWeights;
    report.weightMse = mseAcc / totalWeights;
    report.weightKl = klAcc / totalWeights;
    return report;
}

} // namespace bbs
