#include "nn/activations.hpp"

#include <cmath>

namespace bbs {

float
relu(float x)
{
    return x > 0.0f ? x : 0.0f;
}

float
reluGrad(float x)
{
    return x > 0.0f ? 1.0f : 0.0f;
}

namespace {

constexpr float kSqrt2OverPi = 0.7978845608028654f;

} // namespace

float
gelu(float x)
{
    float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

float
geluGrad(float x)
{
    float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
    float t = std::tanh(inner);
    float dInner = kSqrt2OverPi * (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dInner;
}

} // namespace bbs
