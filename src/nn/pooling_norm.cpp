#include "nn/pooling_norm.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace bbs {

MaxPool2d::MaxPool2d(std::int64_t channels, std::int64_t imageHw)
    : channels_(channels), imageHw_(imageHw)
{
    BBS_REQUIRE(imageHw % 2 == 0, "max pool needs even image size");
}

Batch
MaxPool2d::forward(const Batch &x, bool train)
{
    std::int64_t n = x.shape().dim(0);
    BBS_REQUIRE(x.shape().dim(1) == channels_ * imageHw_ * imageHw_,
                "maxpool input size mismatch");
    std::int64_t oh = imageHw_ / 2;
    Batch y(Shape{n, channels_ * oh * oh});
    if (train) {
        argmax_.assign(static_cast<std::size_t>(y.numel()), 0);
        cachedBatch_ = n;
    }

    for (std::int64_t img = 0; img < n; ++img) {
        const float *src = &x.at(img, 0);
        float *dst = &y.at(img, 0);
        for (std::int64_t c = 0; c < channels_; ++c) {
            for (std::int64_t oy = 0; oy < oh; ++oy) {
                for (std::int64_t ox = 0; ox < oh; ++ox) {
                    std::int64_t best = -1;
                    float bestV = 0.0f;
                    for (int dy = 0; dy < 2; ++dy) {
                        for (int dx = 0; dx < 2; ++dx) {
                            std::int64_t idx =
                                (c * imageHw_ + oy * 2 + dy) * imageHw_ +
                                ox * 2 + dx;
                            if (best < 0 || src[idx] > bestV) {
                                best = idx;
                                bestV = src[idx];
                            }
                        }
                    }
                    std::int64_t o = (c * oh + oy) * oh + ox;
                    dst[o] = bestV;
                    if (train)
                        argmax_[static_cast<std::size_t>(
                            img * channels_ * oh * oh + o)] = best;
                }
            }
        }
    }
    return y;
}

Batch
MaxPool2d::backward(const Batch &gradOut)
{
    std::int64_t n = cachedBatch_;
    Batch gradIn(Shape{n, channels_ * imageHw_ * imageHw_});
    std::int64_t outPerImg = gradOut.shape().dim(1);
    for (std::int64_t img = 0; img < n; ++img) {
        for (std::int64_t o = 0; o < outPerImg; ++o) {
            std::int64_t src = argmax_[static_cast<std::size_t>(
                img * outPerImg + o)];
            gradIn.at(img, src) += gradOut.at(img, o);
        }
    }
    return gradIn;
}

LayerNorm::LayerNorm(std::int64_t features, float epsilon)
    : features_(features), epsilon_(epsilon),
      gamma_(Shape{features}), beta_(Shape{features}),
      gradGamma_(Shape{features}), gradBeta_(Shape{features}),
      velGamma_(Shape{features}), velBeta_(Shape{features})
{
    for (std::int64_t i = 0; i < features; ++i)
        gamma_.flat(i) = 1.0f;
}

Batch
LayerNorm::forward(const Batch &x, bool train)
{
    std::int64_t n = x.shape().dim(0);
    BBS_REQUIRE(x.shape().dim(1) == features_, "layernorm size mismatch");
    Batch y(x.shape());
    if (train) {
        cachedNorm_ = Batch(x.shape());
        cachedInvStd_.assign(static_cast<std::size_t>(n), 0.0f);
    }

    for (std::int64_t i = 0; i < n; ++i) {
        double mean = 0.0;
        for (std::int64_t j = 0; j < features_; ++j)
            mean += x.at(i, j);
        mean /= static_cast<double>(features_);
        double var = 0.0;
        for (std::int64_t j = 0; j < features_; ++j) {
            double d = x.at(i, j) - mean;
            var += d * d;
        }
        var /= static_cast<double>(features_);
        float invStd =
            static_cast<float>(1.0 / std::sqrt(var + epsilon_));
        for (std::int64_t j = 0; j < features_; ++j) {
            float norm = (x.at(i, j) - static_cast<float>(mean)) * invStd;
            y.at(i, j) = norm * gamma_.flat(j) + beta_.flat(j);
            if (train)
                cachedNorm_.at(i, j) = norm;
        }
        if (train)
            cachedInvStd_[static_cast<std::size_t>(i)] = invStd;
    }
    return y;
}

Batch
LayerNorm::backward(const Batch &gradOut)
{
    std::int64_t n = gradOut.shape().dim(0);
    Batch gradIn(gradOut.shape());
    double f = static_cast<double>(features_);

    for (std::int64_t i = 0; i < n; ++i) {
        // dGamma/dBeta.
        for (std::int64_t j = 0; j < features_; ++j) {
            gradGamma_.flat(j) +=
                gradOut.at(i, j) * cachedNorm_.at(i, j);
            gradBeta_.flat(j) += gradOut.at(i, j);
        }
        // dX via the standard layer-norm backward identity.
        double sumG = 0.0, sumGN = 0.0;
        for (std::int64_t j = 0; j < features_; ++j) {
            double g = gradOut.at(i, j) * gamma_.flat(j);
            sumG += g;
            sumGN += g * cachedNorm_.at(i, j);
        }
        float invStd = cachedInvStd_[static_cast<std::size_t>(i)];
        for (std::int64_t j = 0; j < features_; ++j) {
            double g = gradOut.at(i, j) * gamma_.flat(j);
            gradIn.at(i, j) = static_cast<float>(
                invStd * (g - sumG / f -
                          cachedNorm_.at(i, j) * sumGN / f));
        }
    }
    return gradIn;
}

void
LayerNorm::step(float lr, float momentum)
{
    for (std::int64_t j = 0; j < features_; ++j) {
        velGamma_.flat(j) =
            momentum * velGamma_.flat(j) - lr * gradGamma_.flat(j);
        gamma_.flat(j) += velGamma_.flat(j);
        gradGamma_.flat(j) = 0.0f;
        velBeta_.flat(j) =
            momentum * velBeta_.flat(j) - lr * gradBeta_.flat(j);
        beta_.flat(j) += velBeta_.flat(j);
        gradBeta_.flat(j) = 0.0f;
    }
}

} // namespace bbs
