#include "nn/evaluate.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace bbs {

double
accuracyPercent(Network &net, const FloatTensor &x,
                const std::vector<int> &y)
{
    std::vector<int> pred = net.predict(x);
    BBS_REQUIRE(pred.size() == y.size(), "label size mismatch");
    std::int64_t hits = 0;
    for (std::size_t i = 0; i < y.size(); ++i)
        hits += (pred[i] == y[i]);
    return 100.0 * static_cast<double>(hits) /
           static_cast<double>(y.size());
}

double
perplexity(Network &net, const FloatTensor &x, const std::vector<int> &y)
{
    return std::exp(net.evalLoss(x, y));
}

namespace {

/** Copy rows [begin, end) of @p x into a fresh batch. */
Batch
sliceRows(const FloatTensor &x, std::int64_t begin, std::int64_t end)
{
    std::int64_t f = x.shape().dim(1);
    Batch b(Shape{end - begin, f});
    for (std::int64_t i = begin; i < end; ++i)
        for (std::int64_t j = 0; j < f; ++j)
            b.at(i - begin, j) = x.at(i, j);
    return b;
}

/**
 * Run @p x through the engine in mini-batches and fold each batch's
 * logits with @p fold(batchLogits, firstRowIndex).
 */
template <typename Fold>
void
forEachBatchLogits(const Int8Network &engine, const FloatTensor &x,
                   std::int64_t batchSize, const Fold &fold)
{
    BBS_REQUIRE(batchSize > 0, "batch size must be positive");
    std::int64_t n = x.shape().dim(0);
    for (std::int64_t begin = 0; begin < n; begin += batchSize) {
        std::int64_t end = std::min(begin + batchSize, n);
        fold(engine.forward(sliceRows(x, begin, end)), begin);
    }
}

} // namespace

double
accuracyPercent(const Int8Network &engine, const FloatTensor &x,
                const std::vector<int> &y, std::int64_t batchSize)
{
    BBS_REQUIRE(static_cast<std::size_t>(x.shape().dim(0)) == y.size(),
                "label size mismatch");
    std::int64_t hits = 0;
    forEachBatchLogits(engine, x, batchSize,
                       [&](const Batch &logits, std::int64_t first) {
        std::vector<int> pred = argmaxRows(logits);
        for (std::size_t i = 0; i < pred.size(); ++i)
            hits += (pred[i] ==
                     y[static_cast<std::size_t>(first) + i]);
    });
    return 100.0 * static_cast<double>(hits) /
           static_cast<double>(y.size());
}

double
perplexity(const Int8Network &engine, const FloatTensor &x,
           const std::vector<int> &y, std::int64_t batchSize)
{
    BBS_REQUIRE(static_cast<std::size_t>(x.shape().dim(0)) == y.size(),
                "label size mismatch");
    double lossSum = 0.0;
    forEachBatchLogits(engine, x, batchSize,
                       [&](const Batch &logits, std::int64_t first) {
        Batch probs = softmaxRows(logits);
        for (std::int64_t i = 0; i < probs.shape().dim(0); ++i) {
            float p = probs.at(
                i, y[static_cast<std::size_t>(first + i)]);
            lossSum -= std::log(std::max(p, 1e-12f));
        }
    });
    return std::exp(lossSum / static_cast<double>(y.size()));
}

double
trainNetwork(Network &net, const FloatTensor &x, const std::vector<int> &y,
             const TrainOptions &opts)
{
    std::int64_t n = x.shape().dim(0);
    std::int64_t f = x.shape().dim(1);
    Rng rng(opts.seed);
    std::vector<std::int64_t> order(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        order[static_cast<std::size_t>(i)] = i;

    double lastLoss = 0.0;
    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        rng.shuffle(order);
        double epochLoss = 0.0;
        std::int64_t batches = 0;
        for (std::int64_t begin = 0; begin < n;
             begin += opts.batchSize) {
            std::int64_t end =
                std::min<std::int64_t>(begin + opts.batchSize, n);
            std::int64_t bs = end - begin;
            Batch bx(Shape{bs, f});
            std::vector<int> by(static_cast<std::size_t>(bs));
            for (std::int64_t i = 0; i < bs; ++i) {
                std::int64_t src =
                    order[static_cast<std::size_t>(begin + i)];
                for (std::int64_t j = 0; j < f; ++j)
                    bx.at(i, j) = x.at(src, j);
                by[static_cast<std::size_t>(i)] =
                    y[static_cast<std::size_t>(src)];
            }
            // Cosine-free simple decay keeps the loop dependency-light.
            float lr = opts.lr /
                       (1.0f + 0.15f * static_cast<float>(epoch));
            epochLoss += net.trainBatch(bx, by, lr, opts.momentum);
            ++batches;
        }
        lastLoss = epochLoss / static_cast<double>(batches);
    }
    return lastLoss;
}

} // namespace bbs
