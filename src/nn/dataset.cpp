#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace bbs {

namespace {

/** Split shuffled rows into train/test halves. */
Dataset
splitDataset(FloatTensor x, std::vector<int> y, std::int64_t numClasses,
             Rng &rng)
{
    std::int64_t n = x.shape().dim(0);
    std::int64_t f = x.shape().dim(1);
    std::vector<std::int64_t> order(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        order[static_cast<std::size_t>(i)] = i;
    rng.shuffle(order);

    std::int64_t trainN = n * 3 / 4;
    Dataset ds;
    ds.numClasses = numClasses;
    ds.features = f;
    ds.trainX = FloatTensor(Shape{trainN, f});
    ds.testX = FloatTensor(Shape{n - trainN, f});
    ds.trainY.resize(static_cast<std::size_t>(trainN));
    ds.testY.resize(static_cast<std::size_t>(n - trainN));
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t src = order[static_cast<std::size_t>(i)];
        bool isTrain = i < trainN;
        std::int64_t dst = isTrain ? i : i - trainN;
        auto &dstX = isTrain ? ds.trainX : ds.testX;
        for (std::int64_t j = 0; j < f; ++j)
            dstX.at(dst, j) = x.at(src, j);
        (isTrain ? ds.trainY : ds.testY)[static_cast<std::size_t>(dst)] =
            y[static_cast<std::size_t>(src)];
    }
    return ds;
}

} // namespace

Dataset
makeClusterDataset(std::int64_t samplesPerClass, std::int64_t numClasses,
                   std::int64_t features, std::uint64_t seed)
{
    Rng rng(seed);
    std::int64_t n = samplesPerClass * numClasses;
    std::int64_t latent = features / 2;

    // Class means on a sphere in latent space.
    std::vector<std::vector<double>> means(
        static_cast<std::size_t>(numClasses));
    for (auto &m : means) {
        m.resize(static_cast<std::size_t>(latent));
        double norm = 0.0;
        for (auto &v : m) {
            v = rng.gaussian(0.0, 1.0);
            norm += v * v;
        }
        norm = std::sqrt(norm);
        for (auto &v : m)
            v = v / norm * 3.0;
    }

    // Fixed random warp matrix latent -> features.
    std::vector<double> warp(
        static_cast<std::size_t>(latent * features));
    for (auto &v : warp)
        v = rng.gaussian(0.0, 1.0 / std::sqrt(
            static_cast<double>(latent)));

    FloatTensor x(Shape{n, features});
    std::vector<int> y(static_cast<std::size_t>(n));
    std::vector<double> z(static_cast<std::size_t>(latent));
    for (std::int64_t i = 0; i < n; ++i) {
        int cls = static_cast<int>(i % numClasses);
        y[static_cast<std::size_t>(i)] = cls;
        for (std::int64_t l = 0; l < latent; ++l)
            z[static_cast<std::size_t>(l)] =
                means[static_cast<std::size_t>(cls)]
                     [static_cast<std::size_t>(l)] +
                rng.gaussian(0.0, 1.0);
        // Nonlinear warp: tanh of a random projection + quadratic cross
        // terms so a linear model cannot solve the task.
        for (std::int64_t f = 0; f < features; ++f) {
            double acc = 0.0;
            for (std::int64_t l = 0; l < latent; ++l)
                acc += z[static_cast<std::size_t>(l)] *
                       warp[static_cast<std::size_t>(l * features + f)];
            double quad =
                z[static_cast<std::size_t>(f % latent)] *
                z[static_cast<std::size_t>((f + 1) % latent)] * 0.15;
            x.at(i, f) = static_cast<float>(std::tanh(acc) + quad);
        }
    }
    return splitDataset(std::move(x), std::move(y), numClasses, rng);
}

Dataset
makeShapeDataset(std::int64_t samplesPerClass, std::int64_t hw,
                 std::uint64_t seed)
{
    Rng rng(seed);
    const std::int64_t numClasses = 4;
    std::int64_t n = samplesPerClass * numClasses;
    FloatTensor x(Shape{n, hw * hw});
    std::vector<int> y(static_cast<std::size_t>(n));

    for (std::int64_t i = 0; i < n; ++i) {
        int cls = static_cast<int>(i % numClasses);
        y[static_cast<std::size_t>(i)] = cls;
        // Noisy background.
        for (std::int64_t p = 0; p < hw * hw; ++p)
            x.at(i, p) = static_cast<float>(rng.gaussian(0.0, 0.25));

        std::int64_t cx = rng.uniformInt(hw / 4, 3 * hw / 4);
        std::int64_t cy = rng.uniformInt(hw / 4, 3 * hw / 4);
        std::int64_t r = rng.uniformInt(2, hw / 4);
        auto paint = [&](std::int64_t px, std::int64_t py) {
            if (px >= 0 && px < hw && py >= 0 && py < hw)
                x.at(i, py * hw + px) += 1.0f;
        };
        switch (cls) {
          case 0: // filled rectangle
            for (std::int64_t dy = -r; dy <= r; ++dy)
                for (std::int64_t dx = -r; dx <= r; ++dx)
                    paint(cx + dx, cy + dy);
            break;
          case 1: // cross
            for (std::int64_t d = -r; d <= r; ++d) {
                paint(cx + d, cy);
                paint(cx, cy + d);
            }
            break;
          case 2: // circle outline
            for (int a = 0; a < 64; ++a) {
                double ang = a * 2.0 * 3.14159265 / 64.0;
                paint(cx + static_cast<std::int64_t>(
                          std::lround(r * std::cos(ang))),
                      cy + static_cast<std::int64_t>(
                          std::lround(r * std::sin(ang))));
            }
            break;
          default: // diagonal stripe
            for (std::int64_t d = -r; d <= r; ++d)
                paint(cx + d, cy + d);
            break;
        }
    }
    return splitDataset(std::move(x), std::move(y), numClasses, rng);
}

TextDataset
makeMarkovTextDataset(std::int64_t trainChars, std::int64_t testChars,
                      int alphabet, int context, std::uint64_t seed)
{
    BBS_REQUIRE(alphabet >= 2 && context >= 1, "bad LM dataset parameters");
    Rng rng(seed);

    // Order-2 transition table with skewed (Zipf-ish) probabilities.
    std::int64_t states = static_cast<std::int64_t>(alphabet) * alphabet;
    std::vector<std::vector<double>> table(
        static_cast<std::size_t>(states));
    for (auto &row : table) {
        row.resize(static_cast<std::size_t>(alphabet));
        double sum = 0.0;
        for (auto &p : row) {
            p = std::pow(rng.uniformReal(0.0, 1.0), 3.0);
            sum += p;
        }
        for (auto &p : row)
            p /= sum;
    }

    auto sampleNext = [&](int a, int b) {
        const auto &row =
            table[static_cast<std::size_t>(a * alphabet + b)];
        double u = rng.uniformReal(0.0, 1.0);
        double acc = 0.0;
        for (int c = 0; c < alphabet; ++c) {
            acc += row[static_cast<std::size_t>(c)];
            if (u <= acc)
                return c;
        }
        return alphabet - 1;
    };

    auto generate = [&](std::int64_t chars) {
        std::vector<int> text(static_cast<std::size_t>(chars));
        int a = 0, b = 1;
        for (std::int64_t i = 0; i < chars; ++i) {
            int c = sampleNext(a, b);
            text[static_cast<std::size_t>(i)] = c;
            a = b;
            b = c;
        }
        return text;
    };

    auto windows = [&](const std::vector<int> &text, FloatTensor &x,
                       std::vector<int> &y) {
        std::int64_t count =
            static_cast<std::int64_t>(text.size()) - context;
        x = FloatTensor(Shape{count,
                              static_cast<std::int64_t>(context) *
                                  alphabet});
        y.resize(static_cast<std::size_t>(count));
        for (std::int64_t i = 0; i < count; ++i) {
            for (int k = 0; k < context; ++k) {
                int ch = text[static_cast<std::size_t>(i + k)];
                x.at(i, static_cast<std::int64_t>(k) * alphabet + ch) =
                    1.0f;
            }
            y[static_cast<std::size_t>(i)] =
                text[static_cast<std::size_t>(i + context)];
        }
    };

    TextDataset ds;
    ds.alphabet = alphabet;
    ds.context = context;
    std::vector<int> trainText = generate(trainChars);
    std::vector<int> testText = generate(testChars);
    windows(trainText, ds.trainX, ds.trainY);
    windows(testText, ds.testX, ds.testY);
    return ds;
}

} // namespace bbs
