/**
 * @file
 * Procedurally generated datasets: a nonlinearly-warped Gaussian-cluster
 * classification task (MLP stand-in), a synthetic shape-image task (CNN
 * stand-in), and Markov-chain character text (LM stand-in for the Llama
 * perplexity study, §V-H). All deterministic per seed.
 */
#ifndef BBS_NN_DATASET_HPP
#define BBS_NN_DATASET_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/** A labelled classification dataset split into train/test halves. */
struct Dataset
{
    FloatTensor trainX; ///< [N, features]
    std::vector<int> trainY;
    FloatTensor testX;
    std::vector<int> testY;
    std::int64_t numClasses = 0;
    std::int64_t features = 0;
};

/**
 * Warped Gaussian clusters: class means on a hypersphere, per-class
 * covariance, then a fixed random nonlinear feature warp so the task
 * actually requires the hidden layers.
 */
Dataset makeClusterDataset(std::int64_t samplesPerClass,
                           std::int64_t numClasses, std::int64_t features,
                           std::uint64_t seed);

/**
 * Shape images: filled rectangles, crosses, circles and diagonal stripes
 * on a noisy background; channels-first [1, hw, hw] flattened.
 */
Dataset makeShapeDataset(std::int64_t samplesPerClass, std::int64_t hw,
                         std::uint64_t seed);

/** Character LM data: next-char prediction over Markov-chain text. */
struct TextDataset
{
    /** Context windows, one-hot-concatenated: [N, context * alphabet]. */
    FloatTensor trainX;
    std::vector<int> trainY; ///< next character index
    FloatTensor testX;
    std::vector<int> testY;
    int alphabet = 0;
    int context = 0;
};

/**
 * Markov text: a random order-2 transition table with skewed probabilities
 * produces text with learnable structure; windows of @p context chars
 * predict the next.
 */
TextDataset makeMarkovTextDataset(std::int64_t trainChars,
                                  std::int64_t testChars, int alphabet,
                                  int context, std::uint64_t seed);

} // namespace bbs

#endif // BBS_NN_DATASET_HPP
