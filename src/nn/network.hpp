/**
 * @file
 * Sequential network container with softmax cross-entropy training. Enough
 * to train the small classifier/LM stand-ins the accuracy experiments
 * compress (DESIGN.md §1).
 */
#ifndef BBS_NN_NETWORK_HPP
#define BBS_NN_NETWORK_HPP

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace bbs {

/** A sequential feed-forward network ending in logits. */
class Network
{
  public:
    Network() = default;

    void add(std::unique_ptr<NnLayer> layer);

    /** Forward to logits. */
    Batch forward(const Batch &x, bool train = false);

    /**
     * One SGD step on a batch with softmax cross-entropy.
     * @return mean loss over the batch
     */
    double trainBatch(const Batch &x, const std::vector<int> &labels,
                      float lr, float momentum = 0.9f);

    /** Argmax class predictions. */
    std::vector<int> predict(const Batch &x);

    /** Mean softmax cross-entropy without updating (for perplexity). */
    double evalLoss(const Batch &x, const std::vector<int> &labels);

    /** All trainable weight tensors, network order. */
    std::vector<FloatTensor *> weightTensors();

    /** All bias tensors, network order. */
    std::vector<FloatTensor *> biasTensors();

    std::vector<std::unique_ptr<NnLayer>> &layers() { return layers_; }

  private:
    std::vector<std::unique_ptr<NnLayer>> layers_;
};

/** Softmax over the last dimension, row-wise, numerically stable. */
Batch softmaxRows(const Batch &logits);

/**
 * Row-wise argmax of a logits batch (first maximum wins). The single
 * prediction rule every engine and evaluator shares.
 */
std::vector<int> argmaxRows(const Batch &logits);

} // namespace bbs

#endif // BBS_NN_NETWORK_HPP
