/**
 * @file
 * Pooling and normalization layers completing the small NN stack: 2x2 max
 * pooling (CNN stand-ins) and layer normalization (transformer
 * stand-ins). Both with exact backward passes.
 */
#ifndef BBS_NN_POOLING_NORM_HPP
#define BBS_NN_POOLING_NORM_HPP

#include "nn/layers.hpp"

namespace bbs {

/**
 * 2x2 max pooling with stride 2 over channels-first [C, H, W] images
 * flattened into batch rows. H and W must be even.
 */
class MaxPool2d : public NnLayer
{
  public:
    MaxPool2d(std::int64_t channels, std::int64_t imageHw);

    std::string kind() const override { return "maxpool"; }
    Batch forward(const Batch &x, bool train) override;
    Batch backward(const Batch &gradOut) override;

    std::int64_t outHw() const { return imageHw_ / 2; }

  private:
    std::int64_t channels_, imageHw_;
    /** argmax input index per output element of the last forward. */
    std::vector<std::int64_t> argmax_;
    std::int64_t cachedBatch_ = 0;
};

/**
 * Layer normalization over the feature dimension with learned gain/bias.
 */
class LayerNorm : public NnLayer
{
  public:
    explicit LayerNorm(std::int64_t features, float epsilon = 1e-5f);

    std::string kind() const override { return "layernorm"; }
    Batch forward(const Batch &x, bool train) override;
    Batch backward(const Batch &gradOut) override;
    void step(float lr, float momentum) override;

    /** Gain (gamma); exposed like a weight but never compressed. */
    FloatTensor *bias() override { return &beta_; }

  private:
    std::int64_t features_;
    float epsilon_;
    FloatTensor gamma_, beta_;
    FloatTensor gradGamma_, gradBeta_;
    FloatTensor velGamma_, velBeta_;
    Batch cachedNorm_;    ///< normalized activations of the last forward
    std::vector<float> cachedInvStd_;
};

} // namespace bbs

#endif // BBS_NN_POOLING_NORM_HPP
