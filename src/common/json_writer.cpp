#include "common/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "common/logging.hpp"

namespace bbs {

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    return out;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "0"; // JSON has no Inf/NaN; 0 keeps consumers arithmetic
    char buf[32];
    // %.12g: enough digits that metric values round-trip, without the
    // %.17g noise tail on decimals like 0.1.
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        BBS_ASSERT(!wroteTop_, "second top-level JSON value");
        return;
    }
    if (stack_.back() == Frame::Object) {
        BBS_ASSERT(keyPending_, "object member value without a key()");
        keyPending_ = false;
        return;
    }
    // Array element.
    if (!first_.back())
        out_ << ", ";
    first_.back() = false;
}

void
JsonWriter::key(std::string_view name)
{
    BBS_ASSERT(!stack_.empty() && stack_.back() == Frame::Object,
               "key() outside an object");
    BBS_ASSERT(!keyPending_, "two key() calls without a value");
    if (!first_.back())
        out_ << ", ";
    first_.back() = false;
    out_ << '"' << escape(name) << "\": ";
    keyPending_ = true;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    stack_.push_back(Frame::Object);
    first_.push_back(true);
    out_ << '{';
}

void
JsonWriter::endObject()
{
    BBS_ASSERT(!stack_.empty() && stack_.back() == Frame::Object,
               "endObject() without beginObject()");
    BBS_ASSERT(!keyPending_, "endObject() with a dangling key()");
    stack_.pop_back();
    first_.pop_back();
    out_ << '}';
    if (stack_.empty())
        wroteTop_ = true;
}

void
JsonWriter::beginArray()
{
    beforeValue();
    stack_.push_back(Frame::Array);
    first_.push_back(true);
    out_ << '[';
}

void
JsonWriter::endArray()
{
    BBS_ASSERT(!stack_.empty() && stack_.back() == Frame::Array,
               "endArray() without beginArray()");
    stack_.pop_back();
    first_.pop_back();
    out_ << ']';
    if (stack_.empty())
        wroteTop_ = true;
}

void
JsonWriter::value(std::string_view s)
{
    beforeValue();
    out_ << '"' << escape(s) << '"';
    if (stack_.empty())
        wroteTop_ = true;
}

void
JsonWriter::value(double v)
{
    beforeValue();
    out_ << number(v);
    if (stack_.empty())
        wroteTop_ = true;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    out_ << v;
    if (stack_.empty())
        wroteTop_ = true;
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    out_ << v;
    if (stack_.empty())
        wroteTop_ = true;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    out_ << (v ? "true" : "false");
    if (stack_.empty())
        wroteTop_ = true;
}

void
JsonWriter::raw(std::string_view fragment)
{
    beforeValue();
    out_ << fragment;
    if (stack_.empty())
        wroteTop_ = true;
}

} // namespace bbs
