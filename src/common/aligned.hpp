/**
 * @file
 * Cache-line-aligned allocation for the plane containers.
 *
 * The SIMD kernel layer streams bit planes with 256/512-bit loads; a
 * 64-byte-aligned base (plus 64-byte-padded row strides where the
 * container guarantees them) means a vector load never straddles two
 * cache lines. Alignment is a performance guarantee only — the kernels
 * use unaligned loads and stay correct for any pointer.
 */
#ifndef BBS_COMMON_ALIGNED_HPP
#define BBS_COMMON_ALIGNED_HPP

#include <cstddef>
#include <new>
#include <vector>

namespace bbs {

/** Cache line / widest vector register width in bytes. */
inline constexpr std::size_t kCacheLineBytes = 64;

/**
 * Minimal std::allocator drop-in returning @p Align-aligned storage via
 * C++17 aligned operator new. Interoperates with std::vector; two
 * instances always compare equal.
 */
template <typename T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "alignment must be a power of two covering alignof(T)");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    friend bool
    operator==(const AlignedAllocator &, const AlignedAllocator &) noexcept
    {
        return true;
    }
};

/** std::vector whose data() is 64-byte aligned. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

} // namespace bbs

#endif // BBS_COMMON_ALIGNED_HPP
