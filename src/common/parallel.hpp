/**
 * @file
 * Minimal data-parallel loop used by the compressor, the GEMM kernels and
 * the simulators. Deterministic: iteration i always does the same work
 * regardless of the thread count; only wall-clock time changes.
 *
 * Allocation discipline (the serving hot path's zero-allocation
 * guarantee rests on this file):
 *
 *  - The body is passed as a non-owning ParallelBody (function_ref), not
 *    a std::function — no small-buffer spill to the heap for lambdas
 *    with several captures. parallelFor is fully synchronous, so the
 *    referenced temporary outlives every worker.
 *  - Workers come from a lazily-started persistent pool
 *    (common/parallel.cpp) instead of a fresh std::thread team per call:
 *    after the pool's first run, steady-state parallel loops perform
 *    zero heap allocations. Concurrent parallelFor calls from distinct
 *    threads fall back to the legacy spawn-per-call path (the pool runs
 *    one job at a time), which keeps them correct at the old cost.
 */
#ifndef BBS_COMMON_PARALLEL_HPP
#define BBS_COMMON_PARALLEL_HPP

#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

namespace bbs {

/**
 * Non-owning reference to a `void(std::int64_t)` callable. Safe here
 * because every parallel primitive in this header is synchronous: the
 * referenced callable (usually a lambda temporary at the call site)
 * outlives the call. Trivially copyable — worker threads receive it by
 * value with no heap traffic.
 */
class ParallelBody
{
  public:
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, ParallelBody>>>
    ParallelBody(const F &f) // NOLINT: implicit by design
        : obj_(&f), invoke_([](const void *o, std::int64_t i) {
              (*static_cast<const F *>(o))(i);
          })
    {
    }

    void operator()(std::int64_t i) const { invoke_(obj_, i); }

  private:
    const void *obj_;
    void (*invoke_)(const void *, std::int64_t);
};

namespace detail {

/** True while the current thread is a parallelFor worker. */
inline bool &
insideParallelWorker()
{
    thread_local bool inside = false;
    return inside;
}

/**
 * The startup worker cap (hardware concurrency clamped by BBS_THREADS),
 * resolved through the engine's single env parse path
 * (engine::EngineConfig::threadCapFromEnv, engine/engine_config.cpp).
 * This header no longer reads the environment itself.
 */
unsigned resolvedEnvThreadCap();

/** Runtime worker-cap override slot; 0 means "no override". */
inline std::atomic<unsigned> &
workerThreadCapOverride()
{
    static std::atomic<unsigned> cap{0};
    return cap;
}

/**
 * Run chunks of [0, n) on the persistent worker pool with @p helpers
 * pool threads assisting the calling thread. Returns false when the
 * pool is busy with another caller's job (fall back to spawning).
 * Defined in common/parallel.cpp.
 */
bool poolRun(std::int64_t n, std::int64_t chunk, ParallelBody fn,
             unsigned helpers);

} // namespace detail

/**
 * Worker-count cap for every parallel primitive: hardware concurrency,
 * clamped by the BBS_THREADS environment variable when set to a positive
 * integer. BBS_THREADS is the deployment knob for co-located serving.
 *
 * The environment is read ONCE, on the first call (a thread-safe magic
 * static): the serving runtime hits this per batch, and getenv on that
 * hot path is both a needless syscall-ish cost and unsafe against
 * concurrent environment mutation. Runtime changes go through
 * setWorkerThreadCap() instead of the environment; scoped changes go
 * through an engine::Session's EngineConfig.
 */
inline unsigned
maxWorkerThreads()
{
    static const unsigned fromEnv = detail::resolvedEnvThreadCap();
    unsigned cap =
        detail::workerThreadCapOverride().load(std::memory_order_relaxed);
    if (cap > 0 && cap < fromEnv)
        return cap;
    return fromEnv;
}

/**
 * Cap the worker count at runtime (0 restores the cached BBS_THREADS /
 * hardware default). This replaces the old "flip BBS_THREADS between
 * calls" affordance the per-call getenv provided: tests and benchmarks
 * that want a temporary cap (e.g. a per-request baseline with intra-op
 * parallelism off) set it here, thread-safely, without touching the
 * environment.
 */
inline void
setWorkerThreadCap(unsigned cap)
{
    detail::workerThreadCapOverride().store(cap, std::memory_order_relaxed);
}

/**
 * Run fn(i) for i in [0, n) across hardware threads.
 *
 * Work is handed out in chunks via an atomic counter, so uneven iteration
 * costs (e.g. different layer sizes) still balance. Nested calls (a
 * parallel loop body invoking another parallel primitive) run serially:
 * a thread team per inner call would oversubscribe quadratically.
 *
 * @param n      iteration count
 * @param fn     body; must be safe to run concurrently for distinct i
 * @param chunk  iterations claimed per atomic fetch
 */
inline void
parallelFor(std::int64_t n, ParallelBody fn, std::int64_t chunk = 64)
{
    if (n <= 0)
        return;
    unsigned threads = maxWorkerThreads();
    if (threads <= 1 || n <= chunk || detail::insideParallelWorker()) {
        for (std::int64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    unsigned count = std::min<unsigned>(
        threads, static_cast<unsigned>((n + chunk - 1) / chunk));
    // The persistent pool serves one job at a time with the caller
    // participating; count - 1 pool threads assist.
    if (detail::poolRun(n, chunk, fn, count - 1))
        return;

    // Pool busy (another thread's parallelFor is in flight): spawn a
    // one-shot team, exactly like the pre-pool implementation.
    std::atomic<std::int64_t> next{0};
    auto worker = [&]() {
        detail::insideParallelWorker() = true;
        for (;;) {
            std::int64_t begin = next.fetch_add(chunk);
            if (begin >= n)
                break;
            std::int64_t end = std::min(begin + chunk, n);
            for (std::int64_t i = begin; i < end; ++i)
                fn(i);
        }
        detail::insideParallelWorker() = false;
    };
    std::vector<std::thread> team;
    team.reserve(count);
    for (unsigned t = 0; t < count; ++t)
        team.emplace_back(worker);
    for (auto &th : team)
        th.join();
}

/**
 * Deterministic parallel reduction over [0, n).
 *
 * The range is split into fixed chunks of @p chunk iterations;
 * chunkFn(begin, end) computes each chunk's partial, and partials are
 * combined **in chunk order**, so the result is bitwise identical for any
 * thread count (unlike a naive atomic-accumulate of floating point).
 *
 * @param chunkFn  partial over [begin, end); safe to run concurrently
 * @param combine  associative combine of two partials
 */
template <typename T, typename ChunkFn, typename Combine>
T
parallelReduce(std::int64_t n, std::int64_t chunk, T init,
               const ChunkFn &chunkFn, const Combine &combine)
{
    if (n <= 0)
        return init;
    std::int64_t numChunks = (n + chunk - 1) / chunk;
    std::vector<T> partials(static_cast<std::size_t>(numChunks), init);
    parallelFor(numChunks, [&](std::int64_t ci) {
        std::int64_t begin = ci * chunk;
        std::int64_t end = std::min(begin + chunk, n);
        partials[static_cast<std::size_t>(ci)] = chunkFn(begin, end);
    }, /*chunk=*/1);
    T acc = init;
    for (const T &p : partials)
        acc = combine(acc, p);
    return acc;
}

} // namespace bbs

#endif // BBS_COMMON_PARALLEL_HPP
