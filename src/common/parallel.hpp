/**
 * @file
 * Minimal data-parallel loop used by the compressor and simulators.
 * Deterministic: iteration i always does the same work regardless of the
 * thread count; only wall-clock time changes.
 */
#ifndef BBS_COMMON_PARALLEL_HPP
#define BBS_COMMON_PARALLEL_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace bbs {

/**
 * Run fn(i) for i in [0, n) across hardware threads.
 *
 * Work is handed out in chunks via an atomic counter, so uneven iteration
 * costs (e.g. different layer sizes) still balance.
 *
 * @param n      iteration count
 * @param fn     body; must be safe to run concurrently for distinct i
 * @param chunk  iterations claimed per atomic fetch
 */
inline void
parallelFor(std::int64_t n, const std::function<void(std::int64_t)> &fn,
            std::int64_t chunk = 64)
{
    if (n <= 0)
        return;
    unsigned threads = std::thread::hardware_concurrency();
    if (threads <= 1 || n <= chunk) {
        for (std::int64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::int64_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::int64_t begin = next.fetch_add(chunk);
            if (begin >= n)
                return;
            std::int64_t end = std::min(begin + chunk, n);
            for (std::int64_t i = begin; i < end; ++i)
                fn(i);
        }
    };

    std::vector<std::thread> pool;
    unsigned count = std::min<unsigned>(
        threads, static_cast<unsigned>((n + chunk - 1) / chunk));
    pool.reserve(count);
    for (unsigned t = 0; t < count; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
}

} // namespace bbs

#endif // BBS_COMMON_PARALLEL_HPP
