#include "common/bit_utils.hpp"

#include "common/logging.hpp"

namespace bbs {

std::uint32_t
toSignMagnitude(std::int32_t v, int bits)
{
    BBS_ASSERT(bits >= 2 && bits <= 31);
    std::uint32_t magMask = (1u << (bits - 1)) - 1u;
    std::uint32_t sign = v < 0 ? (1u << (bits - 1)) : 0u;
    std::uint32_t mag = static_cast<std::uint32_t>(v < 0 ? -(v + 0) : v);
    if (mag > magMask) {
        // -2^(bits-1) has no sign-magnitude encoding; saturate.
        mag = magMask;
    }
    return sign | mag;
}

std::int32_t
fromSignMagnitude(std::uint32_t sm, int bits)
{
    BBS_ASSERT(bits >= 2 && bits <= 31);
    std::uint32_t magMask = (1u << (bits - 1)) - 1u;
    std::int32_t mag = static_cast<std::int32_t>(sm & magMask);
    return (sm >> (bits - 1)) & 1u ? -mag : mag;
}

int
essentialBitsSignMagnitude(std::int32_t v, int bits)
{
    return std::popcount(toSignMagnitude(v, bits));
}

BitColumn
extractColumn(std::span<const std::int8_t> group, int b)
{
    BBS_ASSERT(group.size() <= 64);
    BBS_ASSERT(b >= 0 && b < kWeightBits);
    BitColumn col = 0;
    for (std::size_t i = 0; i < group.size(); ++i) {
        col |= static_cast<BitColumn>(bitOf(group[i], b)) << i;
    }
    return col;
}

int
countRedundantColumns(std::span<const std::int8_t> group, int maxCount)
{
    // A column at significance b (b < MSB) is redundant iff for every
    // member it equals the member's sign bit, and all columns above it
    // (below the MSB) are also redundant.
    int count = 0;
    for (int b = kWeightBits - 2; b >= 0 && count < maxCount; --b) {
        bool redundant = true;
        for (std::int8_t w : group) {
            if (bitOf(w, b) != bitOf(w, kWeightBits - 1)) {
                redundant = false;
                break;
            }
        }
        if (!redundant)
            break;
        ++count;
    }
    return count;
}

namespace {

/** Byte-at-a-time CRC-32 table, built once. */
struct Crc32Table
{
    std::uint32_t entries[256];

    Crc32Table()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            entries[i] = c;
        }
    }
};

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    static const Crc32Table table;
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = table.entries[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace bbs
