/**
 * @file
 * Small statistics helpers shared by metrics, benchmarks and simulators:
 * mean, geometric mean, standard deviation, percentile, and a running
 * accumulator.
 */
#ifndef BBS_COMMON_STATS_HPP
#define BBS_COMMON_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace bbs {

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> xs);

/** Geometric mean; requires strictly positive entries. */
double geomean(std::span<const double> xs);

/** Population standard deviation. */
double stddev(std::span<const double> xs);

/** Linear-interpolated percentile, p in [0, 100]. */
double percentile(std::vector<double> xs, double p);

/**
 * Streaming accumulator for count/sum/min/max/mean without storing samples.
 */
class Accumulator
{
  public:
    void add(double x);

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace bbs

#endif // BBS_COMMON_STATS_HPP
