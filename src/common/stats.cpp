#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace bbs {

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    BBS_REQUIRE(!xs.empty(), "geomean of empty set");
    double logSum = 0.0;
    for (double x : xs) {
        BBS_REQUIRE(x > 0.0, "geomean requires positive values, got ", x);
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    BBS_REQUIRE(!xs.empty(), "percentile of empty set");
    BBS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of range: ", p);
    std::sort(xs.begin(), xs.end());
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void
Accumulator::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
}

} // namespace bbs
