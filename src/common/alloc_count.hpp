/**
 * @file
 * Allocation-counting hook proving the serving hot path's
 * zero-allocation guarantee.
 *
 * Linking this translation unit (any binary referencing one of the
 * functions below pulls it from the static library) replaces the global
 * operator new/delete family with counting forwarders over
 * malloc/aligned_alloc:
 *
 *  - a plain thread_local counter, always on (one POD increment per
 *    allocation — cheap enough to leave in benchmark builds);
 *  - a process-wide atomic counter, gated by the BBS_COUNT_ALLOCS
 *    environment variable or setAllocCounting(true), covering every
 *    thread (the serving measurement: worker + pool threads together).
 *
 * Binaries that never reference these symbols (the default tests, the
 * examples, TSAN builds with their own interceptors) are unaffected —
 * the override TU simply isn't linked.
 */
#ifndef BBS_COMMON_ALLOC_COUNT_HPP
#define BBS_COMMON_ALLOC_COUNT_HPP

#include <cstdint>

namespace bbs {

/** Allocations (all operator new forms) made by the calling thread
 *  since it started. Always counted once this TU is linked. */
std::uint64_t threadAllocCount();

/** Allocations made process-wide while counting was enabled
 *  (BBS_COUNT_ALLOCS set at startup, or setAllocCounting(true)). */
std::uint64_t processAllocCount();

/** Enable/disable the process-wide counter at runtime. */
void setAllocCounting(bool on);

/** True when the process-wide counter is accumulating. */
bool allocCountingEnabled();

} // namespace bbs

#endif // BBS_COMMON_ALLOC_COUNT_HPP
