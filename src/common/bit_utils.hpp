/**
 * @file
 * Bit-manipulation primitives for bit-serial arithmetic.
 *
 * DNN weights in this project are 8-bit two's-complement integers. The BBS
 * algorithm and all bit-serial accelerator models reason about individual
 * bit significances ("bit columns") of groups of weights, so this header
 * centralizes the two's-complement / sign-magnitude conversions, bit-column
 * extraction, and popcount helpers they share.
 */
#ifndef BBS_COMMON_BIT_UTILS_HPP
#define BBS_COMMON_BIT_UTILS_HPP

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace bbs {

/** Number of bits in the fixed weight precision used across the project. */
inline constexpr int kWeightBits = 8;

/** Extract bit @p b (0 = LSB) of the two's-complement encoding of @p v. */
inline int
bitOf(std::int32_t v, int b)
{
    return (static_cast<std::uint32_t>(v) >> b) & 1u;
}

/** Population count of an 8-bit two's complement value. */
inline int
popcount8(std::int32_t v)
{
    return std::popcount(static_cast<std::uint32_t>(v) & 0xffu);
}

/**
 * Number of essential (non-zero) bits in the two's-complement encoding of
 * @p v restricted to @p bits bits.
 */
inline int
essentialBits(std::int32_t v, int bits = kWeightBits)
{
    std::uint32_t mask = (bits >= 32) ? 0xffffffffu : ((1u << bits) - 1u);
    return std::popcount(static_cast<std::uint32_t>(v) & mask);
}

/**
 * Sign-magnitude encoding of a value representable in @p bits bits.
 *
 * Bit (bits-1) is the sign; the remaining bits hold |v|. The most negative
 * two's-complement value (e.g. -128 for 8 bits) cannot be represented and is
 * saturated to the largest representable magnitude, matching how
 * sign-magnitude accelerators such as BitWave handle quantized weights.
 */
std::uint32_t toSignMagnitude(std::int32_t v, int bits = kWeightBits);

/** Inverse of toSignMagnitude. */
std::int32_t fromSignMagnitude(std::uint32_t sm, int bits = kWeightBits);

/** Essential bits of the sign-magnitude encoding (sign bit included). */
int essentialBitsSignMagnitude(std::int32_t v, int bits = kWeightBits);

/**
 * A bit column: the bits at one significance across a group of values,
 * packed LSB-first into a 64-bit word (group sizes up to 64 supported).
 */
using BitColumn = std::uint64_t;

/**
 * Extract bit column @p b from a group of two's-complement values.
 *
 * @param group  the weight group (each value must fit in @p bits bits)
 * @param b      bit significance, 0 = LSB
 * @return packed column; bit i of the result is bit b of group[i]
 */
BitColumn extractColumn(std::span<const std::int8_t> group, int b);

/** Popcount of a column restricted to a group of @p n values. */
inline int
columnPopcount(BitColumn col, int n)
{
    std::uint64_t mask =
        (n >= 64) ? ~0ULL : ((1ULL << n) - 1ULL);
    return std::popcount(col & mask);
}

/**
 * Bi-directional effectual-bit count of a column (the paper's Eq. 2/3):
 * the scheduler processes whichever of {ones, zeros} is fewer, so the
 * effectual work is min(popcount, n - popcount). Always <= n/2.
 */
inline int
bbsEffectualBits(BitColumn col, int n)
{
    int ones = columnPopcount(col, n);
    return ones <= n - ones ? ones : n - ones;
}

/**
 * Significance weight of bit column @p b in @p bits-bit two's complement:
 * 2^b, except the MSB column which carries -2^(bits-1). Shared by every
 * bit-serial kernel (dots and the GEMM engine) so sign handling cannot
 * drift between them.
 */
inline std::int64_t
columnWeight(int b, int bits)
{
    std::int64_t w = 1ll << b;
    return b == bits - 1 ? -w : w;
}

/** Sign-extend the low @p bits bits of @p v to a full int32. */
inline std::int32_t
signExtend(std::uint32_t v, int bits)
{
    std::uint32_t m = 1u << (bits - 1);
    std::uint32_t x = v & ((bits >= 32) ? 0xffffffffu : ((1u << bits) - 1u));
    return static_cast<std::int32_t>((x ^ m) - m);
}

/** Clamp @p v into the representable range of @p bits-bit two's complement. */
inline std::int32_t
clampToBits(std::int32_t v, int bits)
{
    std::int32_t lo = -(1 << (bits - 1));
    std::int32_t hi = (1 << (bits - 1)) - 1;
    return v < lo ? lo : (v > hi ? hi : v);
}

/**
 * Number of redundant sign-extension columns of an 8-bit group: the count of
 * columns directly below the MSB column that are identical to it for every
 * member (paper Fig. 4 step 1). Removing them keeps all values intact when
 * the remaining MSB is reinterpreted as the sign.
 *
 * @param group  weight group
 * @param maxCount  cap on the reported count (the BBS encoding stores 2 bits,
 *                  so at most 3)
 */
int countRedundantColumns(std::span<const std::int8_t> group,
                          int maxCount = 3);

/**
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant) of
 * @p len bytes at @p data. Chainable: pass a previous result as
 * @p seed to extend it over a further range; 0 starts a fresh sum.
 * Used for the BBMS container's per-section payload checksums.
 */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

} // namespace bbs

#endif // BBS_COMMON_BIT_UTILS_HPP
