/**
 * @file
 * Compatibility-layer switch.
 *
 * `BBS_LEGACY_WRAPPERS` gates the pre-engine free-function entry points
 * (`dot*`, `gemm*`, `Int8Network::forward*` variants). Since the engine
 * facade (engine/engine.hpp: Session / PackedOperand / MatmulPlan) became
 * the library's compute API, those functions are thin header-level
 * wrappers delegating to the internal default Session — kept bit-identical
 * to their pre-redesign behavior by the test suite.
 *
 * Build with CMake `-DBBS_LEGACY_WRAPPERS=OFF` to compile the library,
 * tests and examples against the engine API alone (the CI `legacy-off`
 * job proves this configuration). Without CMake the wrappers default ON.
 */
#ifndef BBS_COMMON_COMPAT_HPP
#define BBS_COMMON_COMPAT_HPP

#ifndef BBS_LEGACY_WRAPPERS
#define BBS_LEGACY_WRAPPERS 1
#endif

#endif // BBS_COMMON_COMPAT_HPP
