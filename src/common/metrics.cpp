#include "common/metrics.hpp"

#include "common/logging.hpp"

namespace bbs::obs {

std::string
escapeLabelValue(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      counts_(new std::atomic<std::uint64_t>[bounds.size() + 1])
{
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        BBS_ASSERT(bounds_[i - 1] < bounds_[i],
                   "histogram bounds must be strictly ascending");
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        total += counts_[i].load(std::memory_order_relaxed);
    return total;
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

std::span<const double>
Histogram::latencyBoundsUs()
{
    // 1/2/5 ladder from 1us to 5s; +Inf is implicit.
    static const double kBounds[] = {
        1.0,     2.0,     5.0,      10.0,     20.0,      50.0,
        100.0,   200.0,   500.0,    1000.0,   2000.0,    5000.0,
        10000.0, 20000.0, 50000.0,  100000.0, 200000.0,  500000.0,
        1e6,     2e6,     5e6,
    };
    return kBounds;
}

// ----------------------------------------------------------------- Registry

Registry &
Registry::global()
{
    static Registry r;
    return r;
}

/** Lookup-or-insert; the caller must hold mutex_ (and keep holding it
 *  while constructing the metric object, so two threads racing to
 *  register the same series never double-construct it). */
Registry::Entry &
Registry::getOrCreate(std::string_view name, std::string_view help,
                      std::string_view labels, MetricSnapshot::Type type)
{
    std::string key;
    key.reserve(name.size() + 1 + labels.size());
    key.append(name);
    key.push_back('\x01');
    key.append(labels);

    auto it = index_.find(key);
    if (it != index_.end()) {
        BBS_REQUIRE(it->second->type == type,
                    "metric re-registered with a different type: ",
                    std::string(name));
        return *it->second;
    }
    auto entry = std::make_unique<Entry>();
    entry->type = type;
    entry->name = std::string(name);
    entry->help = std::string(help);
    entry->labels = std::string(labels);
    Entry &ref = *entry;
    entries_.push_back(std::move(entry));
    index_.emplace(std::move(key), &ref);
    return ref;
}

Counter &
Registry::counter(std::string_view name, std::string_view help,
                  std::string_view labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = getOrCreate(name, help, labels, MetricSnapshot::Type::Counter);
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
Registry::gauge(std::string_view name, std::string_view help,
                std::string_view labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = getOrCreate(name, help, labels, MetricSnapshot::Type::Gauge);
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
Registry::histogram(std::string_view name, std::span<const double> bounds,
                    std::string_view help, std::string_view labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = getOrCreate(name, help, labels,
                           MetricSnapshot::Type::Histogram);
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>(bounds);
    return *e.histogram;
}

std::vector<MetricSnapshot>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSnapshot> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_) {
        MetricSnapshot s;
        s.name = e->name;
        s.help = e->help;
        s.labels = e->labels;
        s.type = e->type;
        switch (e->type) {
        case MetricSnapshot::Type::Counter:
            s.counterValue = e->counter->value();
            break;
        case MetricSnapshot::Type::Gauge:
            s.gaugeValue = e->gauge->value();
            break;
        case MetricSnapshot::Type::Histogram: {
            const Histogram &h = *e->histogram;
            s.bounds = h.bounds();
            s.bucketCounts.resize(s.bounds.size() + 1);
            std::uint64_t total = 0;
            for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
                s.bucketCounts[i] = h.bucketCount(i);
                total += s.bucketCounts[i];
            }
            // Count from the SAME bucket reads as the exposition, so
            // a scraper can never see count != sum(buckets).
            s.count = total;
            s.sum = h.sum();
            break;
        }
        }
        out.push_back(std::move(s));
    }
    return out;
}

void
Registry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &e : entries_) {
        if (e->counter)
            e->counter->reset();
        if (e->gauge)
            e->gauge->reset();
        if (e->histogram)
            e->histogram->reset();
    }
}

} // namespace bbs::obs
