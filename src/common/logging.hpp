/**
 * @file
 * Error-reporting and status-message helpers in the spirit of gem5's
 * logging.hh: `fatal` for user errors, `panic` for internal invariant
 * violations, `warn`/`inform` for status messages.
 */
#ifndef BBS_COMMON_LOGGING_HPP
#define BBS_COMMON_LOGGING_HPP

#include <cstdlib>
#include <sstream>
#include <string>

namespace bbs {

namespace detail {

/** Assemble a message from streamable parts. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/** Print and exit(1): the condition is the user's fault. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print and abort(): the condition is a library bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Terminate with an error message for conditions caused by invalid input or
 * configuration (analogous to gem5's fatal()).
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line,
                      detail::concatMessage(std::forward<Args>(args)...));
}

/**
 * Terminate with an error message for conditions that indicate a bug in this
 * library (analogous to gem5's panic()).
 */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line,
                      detail::concatMessage(std::forward<Args>(args)...));
}

} // namespace bbs

#define BBS_FATAL(...) ::bbs::fatal(__FILE__, __LINE__, __VA_ARGS__)
#define BBS_PANIC(...) ::bbs::panic(__FILE__, __LINE__, __VA_ARGS__)

/** Check an internal invariant; on failure report expression and message. */
#define BBS_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::bbs::panic(__FILE__, __LINE__, "assertion failed: " #cond " ", \
                         ##__VA_ARGS__);                                     \
        }                                                                    \
    } while (0)

/** Validate user-provided arguments; on failure report the message. */
#define BBS_REQUIRE(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::bbs::fatal(__FILE__, __LINE__, "requirement failed: " #cond    \
                         " ", ##__VA_ARGS__);                                \
        }                                                                    \
    } while (0)

namespace bbs {

/** Non-fatal warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concatMessage(std::forward<Args>(args)...));
}

/** Informational status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concatMessage(std::forward<Args>(args)...));
}

} // namespace bbs

#endif // BBS_COMMON_LOGGING_HPP
