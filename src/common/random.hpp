/**
 * @file
 * Deterministic random-number generation used throughout the library.
 *
 * All synthetic workloads are seeded so every benchmark and test is exactly
 * reproducible run to run. A light wrapper around std::mt19937_64 exposes
 * the handful of distributions the project needs.
 */
#ifndef BBS_COMMON_RANDOM_HPP
#define BBS_COMMON_RANDOM_HPP

#include <cstdint>
#include <random>
#include <vector>

namespace bbs {

/**
 * Seeded random source. One instance per independent stream; derive
 * sub-streams with fork() so adding a consumer does not perturb others.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Gaussian with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Laplace(mu, b): heavier tails than Gaussian, common for DNN weights. */
    double laplace(double mu, double b);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** A fresh generator whose stream is independent of this one. */
    Rng fork();

    /** Raw 64-bit draw. */
    std::uint64_t next() { return engine_(); }

    /** Fisher-Yates shuffle of an index vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::mt19937_64 engine_;
};

} // namespace bbs

#endif // BBS_COMMON_RANDOM_HPP
