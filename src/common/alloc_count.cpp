#include "common/alloc_count.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace bbs {

namespace {

// Trivially-constructed/destructed counters only: operator new runs
// before main, after static destructors, and during TLS teardown, so
// nothing here may have a dynamic initializer.
thread_local std::uint64_t tlAllocs = 0;
std::atomic<std::uint64_t> gAllocs{0};
std::atomic<bool> gCounting{false};

inline void
noteAlloc() noexcept
{
    ++tlAllocs;
    if (gCounting.load(std::memory_order_relaxed))
        gAllocs.fetch_add(1, std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size) noexcept
{
    noteAlloc();
    return std::malloc(size != 0 ? size : 1);
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align) noexcept
{
    noteAlloc();
    if (align < sizeof(void *))
        align = sizeof(void *);
    std::size_t rounded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, rounded != 0 ? rounded : align);
}

// Reads the env var during static init; allocations before this runs
// are simply not globally counted (the thread counter still sees them).
struct EnvGate
{
    EnvGate()
    {
        const char *v = std::getenv("BBS_COUNT_ALLOCS");
        if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0'))
            setAllocCounting(true);
    }
} envGate;

} // namespace

std::uint64_t
threadAllocCount()
{
    return tlAllocs;
}

std::uint64_t
processAllocCount()
{
    return gAllocs.load(std::memory_order_relaxed);
}

void
setAllocCounting(bool on)
{
    gCounting.store(on, std::memory_order_relaxed);
}

bool
allocCountingEnabled()
{
    return gCounting.load(std::memory_order_relaxed);
}

} // namespace bbs

// ---------------------------------------------------------------- global
// operator new/delete replacements. Every allocating form funnels through
// malloc/aligned_alloc (both free()-compatible), every delete through
// free() — so mixed pairs (e.g. sized delete for a nothrow new) stay
// consistent.

void *
operator new(std::size_t size)
{
    void *p = bbs::countedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = bbs::countedAlignedAlloc(size,
                                       static_cast<std::size_t>(align));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return bbs::countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return bbs::countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return bbs::countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return bbs::countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t,
                  const std::nothrow_t &) noexcept
{
    std::free(p);
}
