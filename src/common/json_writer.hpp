/**
 * @file
 * The one JSON writer in the codebase. bench_common's `--json` records,
 * the obs metrics exposition, the trace-ring dump and the soak harness's
 * timeline all emit through this class, so there is exactly one tested
 * escaper and one nesting/comma discipline instead of per-caller
 * hand-rolled string assembly.
 *
 * Streaming, allocation-light: the writer tracks nesting in a small
 * stack and emits directly to the ostream. Emission order is the call
 * order; the writer validates nesting (key before value inside objects,
 * no keys inside arrays) with BBS_ASSERT, so a malformed emission is a
 * bug caught at the call site, not a corrupt artifact discovered by a
 * downstream jq.
 */
#ifndef BBS_COMMON_JSON_WRITER_HPP
#define BBS_COMMON_JSON_WRITER_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace bbs {

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out_(out) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    // ---- containers
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Object member name; must be followed by a value or container. */
    void key(std::string_view name);

    // ---- scalar values
    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(double v);
    void value(std::int64_t v);
    void value(std::uint64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool v);

    /** key() + value() in one call. */
    template <typename T>
    void
    member(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    /**
     * Splice an already-rendered JSON fragment as one value (bench_common
     * keeps records as pre-rendered strings between jsonAdd and
     * jsonFlush). The caller vouches that @p fragment is valid JSON.
     */
    void raw(std::string_view fragment);

    /** True once every container opened has been closed. */
    bool complete() const { return stack_.empty() && wroteTop_; }

    /**
     * Escape @p s for a JSON string literal (quotes, backslash, and all
     * control characters below 0x20 as \uXXXX; UTF-8 passes through).
     * Returns the escaped body WITHOUT surrounding quotes.
     */
    static std::string escape(std::string_view s);

    /**
     * Format @p v as a JSON number: round-trip precision, integral
     * values without a trailing ".0" surprise, and non-finite values
     * (which JSON cannot represent) clamped to 0.
     */
    static std::string number(double v);

  private:
    enum class Frame : std::uint8_t
    {
        Object,
        Array,
    };

    /** Comma/validity bookkeeping before emitting a value/container. */
    void beforeValue();

    std::ostream &out_;
    std::vector<Frame> stack_;
    std::vector<bool> first_;   ///< first element at each depth
    bool keyPending_ = false;   ///< key() emitted, value expected
    bool wroteTop_ = false;     ///< a top-level value has been written
};

} // namespace bbs

#endif // BBS_COMMON_JSON_WRITER_HPP
