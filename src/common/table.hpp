/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harness to print the
 * rows/series of every reproduced paper table and figure.
 */
#ifndef BBS_COMMON_TABLE_HPP
#define BBS_COMMON_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace bbs {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Model", "Speedup"});
 *   t.addRow({"ResNet-50", format("%.2f", 3.03)});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a separator under the header. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (header first). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...);

/** Format a double with @p digits significant decimal places. */
std::string formatDouble(double v, int digits = 2);

} // namespace bbs

#endif // BBS_COMMON_TABLE_HPP
