/**
 * @file
 * The persistent worker pool behind parallelFor.
 *
 * parallelFor used to spawn (and join) a fresh std::thread team on every
 * call — correct, but each call paid thread creation *allocations* and
 * latency, which is exactly what the serving hot path's zero-allocation
 * guarantee forbids. The pool here is created lazily on the first
 * parallel run, grows to the worker cap high-water mark, and then serves
 * every subsequent job allocation-free: jobs are published under a mutex
 * (a ParallelBody is two raw pointers), chunks are claimed from an
 * atomic counter by the workers AND the calling thread, and completion
 * is signalled back over a condition variable.
 *
 * One job runs at a time. A parallelFor arriving while another thread's
 * job is in flight gets `false` from poolRun and falls back to the old
 * spawn-per-call path — correct, just at the historical cost. Memory
 * ordering: the job publication and the finished-count handshake both go
 * through the pool mutex, so everything the caller wrote before
 * parallelFor happens-before the workers' reads, and the workers' output
 * writes happen-before the caller's return.
 */
#include "common/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>

#include "common/metrics.hpp"

namespace bbs::detail {

namespace {

#if BBS_OBS
// Pool utilization series in the global registry (compiled out at
// BBS_OBS=0). Magic-static refs: registration allocates once, every job
// after that pays relaxed RMWs only — the pool serves the serving
// drain path, which must stay allocation-free.
struct PoolMetrics
{
    bbs::obs::Counter &jobs;
    bbs::obs::Counter &helpers;
    bbs::obs::Counter &fallbacks;
    bbs::obs::Gauge &threads;
};

PoolMetrics &
poolMetrics()
{
    auto &reg = bbs::obs::Registry::global();
    static PoolMetrics m{
        reg.counter("bbs_pool_jobs_total",
                    "parallelFor jobs served by the persistent pool"),
        reg.counter("bbs_pool_helpers_total",
                    "Helper threads summed over pool jobs (mean "
                    "helpers = helpers / jobs)"),
        reg.counter("bbs_pool_fallback_total",
                    "parallelFor calls that found the pool busy and "
                    "fell back to spawn-per-call"),
        reg.gauge("bbs_pool_threads", "Persistent pool size "
                  "(high-water mark; the pool never shrinks)"),
    };
    return m;
}
#endif // BBS_OBS

class WorkerPool
{
  public:
    static WorkerPool &
    instance()
    {
        static WorkerPool pool;
        return pool;
    }

    bool
    run(std::int64_t n, std::int64_t chunk, ParallelBody fn,
        unsigned helpers)
    {
        if (helpers == 0) {
            for (std::int64_t i = 0; i < n; ++i)
                fn(i);
            return true;
        }
        // One job at a time; a busy pool sends the caller to the
        // spawn-per-call fallback instead of queueing behind a job of
        // unknown length.
        if (!jobMutex_.try_lock()) {
#if BBS_OBS
            poolMetrics().fallbacks.inc();
#endif
            return false;
        }
        std::lock_guard<std::mutex> jobLock(jobMutex_, std::adopt_lock);

        {
            std::lock_guard<std::mutex> lk(m_);
            ensureThreadsLocked(helpers);
            helpers = std::min<unsigned>(
                helpers, static_cast<unsigned>(threads_.size()));
#if BBS_OBS
            poolMetrics().threads.set(
                static_cast<std::int64_t>(threads_.size()));
#endif
            if (helpers == 0) { // thread creation failed entirely
                for (std::int64_t i = 0; i < n; ++i)
                    fn(i);
                return true;
            }
            body_.emplace(fn);
            n_ = n;
            chunk_ = chunk;
            next_.store(0, std::memory_order_relaxed);
            active_ = helpers;
            finished_ = 0;
            ++generation_;
        }
        cv_.notify_all();

        // The calling thread is a full participant: it claims chunks
        // alongside the pool (flagged as a worker so nested parallel
        // calls in the body stay serial).
        bool wasInside = insideParallelWorker();
        insideParallelWorker() = true;
        claimChunks(fn, n, chunk);
        insideParallelWorker() = wasInside;

        {
            std::unique_lock<std::mutex> lk(m_);
            doneCv_.wait(lk, [&] { return finished_ == active_; });
            body_.reset();
        }
#if BBS_OBS
        poolMetrics().jobs.inc();
        poolMetrics().helpers.inc(helpers);
#endif
        return true;
    }

  private:
    WorkerPool() = default;

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            shutdown_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    /** Grow the pool to @p want threads; requires m_ held. The pool
     *  never shrinks — its high-water mark is the allocation paid once. */
    void
    ensureThreadsLocked(unsigned want)
    {
        while (threads_.size() < want && !shutdown_)
            threads_.emplace_back([this] { workerLoop(); });
    }

    static void
    claimChunks(const ParallelBody &fn, std::int64_t n, std::int64_t chunk,
                std::atomic<std::int64_t> &next)
    {
        for (;;) {
            std::int64_t begin =
                next.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= n)
                return;
            std::int64_t end = std::min(begin + chunk, n);
            for (std::int64_t i = begin; i < end; ++i)
                fn(i);
        }
    }

    void
    claimChunks(const ParallelBody &fn, std::int64_t n, std::int64_t chunk)
    {
        claimChunks(fn, n, chunk, next_);
    }

    void
    workerLoop()
    {
        std::unique_lock<std::mutex> lk(m_);
        unsigned index = nextWorkerIndex_++;
        // Start at generation 0, not the current one: a worker spawned
        // mid-publication is already counted in the job's active_ set and
        // must run that job, or the caller would wait forever.
        std::uint64_t seen = 0;
        for (;;) {
            cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
            if (shutdown_)
                return;
            seen = generation_;
            if (index >= active_)
                continue; // this job wants fewer helpers
            ParallelBody fn = *body_;
            std::int64_t n = n_, chunk = chunk_;
            lk.unlock();
            insideParallelWorker() = true;
            claimChunks(fn, n, chunk, next_);
            insideParallelWorker() = false;
            lk.lock();
            if (++finished_ == active_)
                doneCv_.notify_all();
        }
    }

    std::mutex jobMutex_; ///< serializes whole jobs (try_lock gate)

    std::mutex m_; ///< guards all job/pool state below
    std::condition_variable cv_;     ///< workers wait for a generation
    std::condition_variable doneCv_; ///< caller waits for completion
    std::vector<std::thread> threads_;
    unsigned nextWorkerIndex_ = 0;
    bool shutdown_ = false;

    std::uint64_t generation_ = 0;
    std::optional<ParallelBody> body_;
    std::int64_t n_ = 0;
    std::int64_t chunk_ = 0;
    unsigned active_ = 0;   ///< helpers participating in this job
    unsigned finished_ = 0; ///< helpers done with this job
    std::atomic<std::int64_t> next_{0};
};

} // namespace

bool
poolRun(std::int64_t n, std::int64_t chunk, ParallelBody fn,
        unsigned helpers)
{
    return WorkerPool::instance().run(n, chunk, fn, helpers);
}

} // namespace bbs::detail
