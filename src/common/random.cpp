#include "common/random.hpp"

#include <cmath>

namespace bbs {

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::uniformReal(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

double
Rng::gaussian(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

double
Rng::laplace(double mu, double b)
{
    // Inverse-CDF sampling: u in (-1/2, 1/2).
    double u = uniformReal(-0.5, 0.5);
    double sign = (u >= 0.0) ? 1.0 : -1.0;
    return mu - b * sign * std::log(1.0 - 2.0 * std::abs(u));
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

Rng
Rng::fork()
{
    // Mix the next draw so forked streams decorrelate from the parent.
    std::uint64_t s = engine_();
    s ^= s >> 33;
    s *= 0xff51afd7ed558ccdULL;
    s ^= s >> 33;
    return Rng(s);
}

} // namespace bbs
