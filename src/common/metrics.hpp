/**
 * @file
 * Lock-cheap metrics primitives: monotonic counters, gauges and
 * fixed-bucket histograms on relaxed atomics, collected in named
 * registries and scraped without stopping writers.
 *
 * Design rules (the serving hot path's zero-allocation and sub-3%%
 * overhead budgets rest on these):
 *
 *  - A metric is registered ONCE (registration takes the registry mutex
 *    and allocates); the hot path holds a `Counter&`/`Histogram&` and
 *    pays one relaxed RMW per event. Names follow Prometheus
 *    conventions (`bbs_<layer>_<what>[_total|_us]`, labels as a
 *    preformatted `key="value"` list).
 *  - Snapshots are per-metric consistent under concurrent writers: every
 *    atomic is read individually, so a counter read during a scrape is
 *    monotone across scrapes, and a histogram's total (the sum of its
 *    bucket reads) can only grow — there is no separately-stored total
 *    to tear against the buckets (tests/test_obs.cpp stresses this
 *    under TSAN).
 *  - Registries are instantiable: `Registry::global()` carries the
 *    process-wide engine/pool metrics, while an InferenceServer owns a
 *    private registry so per-server snapshots stay exact when several
 *    servers live in one process (tests). Exposition (Prometheus text,
 *    bench-JSON records) lives in src/obs/exposition.hpp.
 *
 * The `BBS_OBS` compile-time toggle (CMake option, default ON) gates
 * the *engine-layer* instrumentation (per-run plan counters and latency
 * clocks in hot kernels): at BBS_OBS=0 those sites compile to nothing.
 * The serving-layer metrics are always on — they are the product
 * surface that replaced the old lock-guarded ServerStats fields.
 */
#ifndef BBS_COMMON_METRICS_HPP
#define BBS_COMMON_METRICS_HPP

#ifndef BBS_OBS
#define BBS_OBS 1
#endif

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bbs::obs {

/**
 * Escape @p raw for use as a Prometheus label VALUE: `\` -> `\\`,
 * `"` -> `\"`, newline -> `\n` (exposition text format escaping rules).
 * Every label list built from externally-supplied strings (model names
 * arriving over the wire, file paths) MUST pass through this at
 * registration time — the exposition writer emits label bodies verbatim,
 * so an unescaped quote or newline would produce text the round-trip
 * parser (and any real scraper) rejects.
 */
std::string escapeLabelValue(std::string_view raw);

/** Monotonic event counter. Exposed with a `_total` name suffix. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

    /** Test/bench affordance; never reset a scraped production metric
     *  (scrapers assume counters are monotone). */
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    /** Own cache line: two hot counters updated by different threads
     *  must not false-share. */
    alignas(64) std::atomic<std::uint64_t> v_{0};
};

/** Point-in-time signed value (queue depth, pool size). */
class Gauge
{
  public:
    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { set(0); }

  private:
    alignas(64) std::atomic<std::int64_t> v_{0};
};

/**
 * Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds;
 * an implicit +Inf bucket catches the tail, so `observe()` always lands
 * somewhere. There is no separately-stored observation count — the
 * count IS the sum of the bucket reads, which keeps scrapes torn-free
 * by construction. The sum accumulates in an atomic<double> (C++20
 * fetch_add), monotone for the non-negative values metrics record.
 */
class Histogram
{
  public:
    explicit Histogram(std::span<const double> bounds);

    void
    observe(double v)
    {
        // Branchy upper_bound over <= ~32 bounds: tens of cycles, no
        // allocation, called per batch / per plan run — noise next to
        // the work being measured.
        std::size_t lo = 0, hi = bounds_.size();
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (v <= bounds_[mid])
                hi = mid;
            else
                lo = mid + 1;
        }
        counts_[lo].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    const std::vector<double> &bounds() const { return bounds_; }

    /** Bucket count at @p i (i == bounds().size() is the +Inf bucket). */
    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }

    /** Total observations: the sum of one atomic read per bucket
     *  (monotone across scrapes — see file comment). */
    std::uint64_t count() const;

    double sum() const { return sum_.load(std::memory_order_relaxed); }

    void reset();

    /**
     * The default latency bucket ladder, in microseconds: 1us .. 5s in
     * 1/2/5 steps — wide enough for a per-dot microsecond run and a
     * multi-second stalled batch on one scale.
     */
    static std::span<const double> latencyBoundsUs();

  private:
    std::vector<double> bounds_;
    /** bounds_.size() + 1 relaxed counters (the +Inf tail is last). */
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
    std::atomic<double> sum_{0.0};
};

/** What a metric reads as at one scrape (exposition input). */
struct MetricSnapshot
{
    enum class Type
    {
        Counter,
        Gauge,
        Histogram,
    };

    std::string name;
    std::string help;
    /** Preformatted Prometheus label list, e.g. `model="clf"`; empty
     *  for unlabelled metrics. */
    std::string labels;
    Type type = Type::Counter;

    std::uint64_t counterValue = 0;
    std::int64_t gaugeValue = 0;

    std::vector<double> bounds;            ///< histogram upper bounds
    std::vector<std::uint64_t> bucketCounts; ///< per-bucket (+Inf last)
    std::uint64_t count = 0;               ///< histogram total
    double sum = 0.0;                      ///< histogram value sum
};

/**
 * A named collection of metrics. get-or-create semantics: asking for an
 * existing (name, labels) pair returns the same instance (so two
 * subsystems can share a series), asking with a mismatched type is a
 * bug (BBS_PANIC). References returned are stable for the registry's
 * lifetime.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry (engine, worker pool, anything not
     *  owned by a specific server instance). */
    static Registry &global();

    Counter &counter(std::string_view name, std::string_view help = "",
                     std::string_view labels = "");
    Gauge &gauge(std::string_view name, std::string_view help = "",
                 std::string_view labels = "");
    Histogram &histogram(std::string_view name,
                         std::span<const double> bounds,
                         std::string_view help = "",
                         std::string_view labels = "");

    /** One consistent-per-metric reading of everything registered, in
     *  registration order (stable exposition output). */
    std::vector<MetricSnapshot> snapshot() const;

    /** Reset every metric (bench/test runs that reuse the process-wide
     *  registry between phases). */
    void resetAll();

  private:
    struct Entry
    {
        MetricSnapshot::Type type;
        std::string name, help, labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &getOrCreate(std::string_view name, std::string_view help,
                       std::string_view labels, MetricSnapshot::Type type);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Entry>> entries_;
    std::unordered_map<std::string, Entry *> index_; ///< name \x01 labels
};

} // namespace bbs::obs

#endif // BBS_COMMON_METRICS_HPP
