#include "common/table.hpp"

#include <cstdarg>
#include <cstdio>
#include <ostream>

#include "common/logging.hpp"

namespace bbs {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    BBS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    BBS_REQUIRE(cells.size() == header_.size(),
                "row arity ", cells.size(), " != header arity ",
                header_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

std::string
formatDouble(double v, int digits)
{
    return format("%.*f", digits, v);
}

} // namespace bbs
