/**
 * @file
 * Bitlet (MICRO'21): significance-parallel bit skipping. Eight lanes each
 * own one bit significance of the digested weight window and absorb one
 * essential bit per cycle; latency is set by the significance with the most
 * one-bits, the lane crossbar muxes dominate PE area.
 */
#ifndef BBS_ACCEL_BITLET_HPP
#define BBS_ACCEL_BITLET_HPP

#include "accel/accelerator.hpp"

namespace bbs {

class BitletAccelerator : public Accelerator
{
  public:
    std::string name() const override { return "Bitlet"; }
    int lanesPerPe() const override { return 8; }
    PeCost peCost() const override { return bitletPe(); }

  protected:
    LayerWork buildWork(const PreparedLayer &layer,
                        const SimConfig &cfg) const override;
};

} // namespace bbs

#endif // BBS_ACCEL_BITLET_HPP
