#include "accel/stripes.hpp"

#include "common/bit_utils.hpp"
#include "sim/dataflow.hpp"

namespace bbs {

Accelerator::LayerWork
StripesAccelerator::buildWork(const PreparedLayer &layer,
                              const SimConfig &) const
{
    LayerWork work;
    const BitPlaneTensor &planes = layerPlanes(layer);
    std::int64_t channels = planes.numChannels();
    std::int64_t groupsPerChannel = planes.groupsPerChannel();

    work.perChannel.resize(static_cast<std::size_t>(channels));
    for (std::int64_t c = 0; c < channels; ++c) {
        auto &vec = work.perChannel[static_cast<std::size_t>(c)];
        vec.reserve(static_cast<std::size_t>(groupsPerChannel));
        for (std::int64_t g = 0; g < groupsPerChannel; ++g) {
            GroupWork gw;
            gw.latency = kWeightBits; // dense: one cycle per bit column
            gw.usefulLaneCycles = gw.latency * lanesPerPe();
            gw.intraStallLaneCycles = 0.0;
            vec.push_back(gw);
        }
    }
    work.weightStorageBits = denseWeightStorageBits(layer);
    return work;
}

} // namespace bbs
