/**
 * @file
 * BitWave (HPCA'24): bit-column-serial over sign-magnitude weights. Bit
 * columns that are entirely zero across the group are skipped (and not
 * stored), giving balanced workload but leaving all one-bits inside
 * surviving columns ineffectual — the gap BBS closes.
 */
#ifndef BBS_ACCEL_BITWAVE_HPP
#define BBS_ACCEL_BITWAVE_HPP

#include "accel/accelerator.hpp"

namespace bbs {

class BitwaveAccelerator : public Accelerator
{
  public:
    /**
     * @param pruneColumns  bit-flip enhanced zero columns per group. The
     *        paper notes BitWave must stay at light pruning (moderate
     *        pruning loses > 1% accuracy on several models), so the
     *        performance comparison uses 2.
     */
    explicit BitwaveAccelerator(int pruneColumns = 2)
        : pruneColumns_(pruneColumns)
    {}

    std::string name() const override { return "BitWave"; }
    int lanesPerPe() const override { return 16; }
    PeCost peCost() const override { return bitwavePe(); }

  protected:
    LayerWork buildWork(const PreparedLayer &layer,
                        const SimConfig &cfg) const override;

  private:
    int pruneColumns_;
};

} // namespace bbs

#endif // BBS_ACCEL_BITWAVE_HPP
