/**
 * @file
 * Pragmatic (MICRO'17): essential-bit serial. Each lane processes only the
 * non-zero bits of its weight; lanes within a PE synchronize on the weight
 * with the most essential bits (intra-PE stall), and columns synchronize on
 * the slowest PE (inter-PE stall) — the load-imbalance failure mode the
 * paper's Figs 14/15 quantify.
 */
#ifndef BBS_ACCEL_PRAGMATIC_HPP
#define BBS_ACCEL_PRAGMATIC_HPP

#include "accel/accelerator.hpp"

namespace bbs {

class PragmaticAccelerator : public Accelerator
{
  public:
    std::string name() const override { return "Pragmatic"; }
    int lanesPerPe() const override { return 16; }
    PeCost peCost() const override { return pragmaticPe(); }

  protected:
    LayerWork buildWork(const PreparedLayer &layer,
                        const SimConfig &cfg) const override;
};

} // namespace bbs

#endif // BBS_ACCEL_PRAGMATIC_HPP
