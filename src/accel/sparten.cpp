#include "accel/sparten.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/parallel.hpp"
#include "sim/dataflow.hpp"

namespace bbs {

Accelerator::LayerWork
SpartenAccelerator::buildWork(const PreparedLayer &layer,
                              const SimConfig &) const
{
    LayerWork work;
    const BitPlaneTensor &planes = layerPlanes(layer);
    std::int64_t channels = planes.numChannels();
    std::int64_t groupsPerChannel = planes.groupsPerChannel();
    double actDensity = layer.activationDensity;

    work.perChannel.resize(static_cast<std::size_t>(channels));
    std::atomic<std::int64_t> nnzTotal{0};

    parallelFor(channels, [&](std::int64_t c) {
        auto &vec = work.perChannel[static_cast<std::size_t>(c)];
        vec.reserve(static_cast<std::size_t>(groupsPerChannel));
        std::int64_t localNnz = 0;
        for (std::int64_t g = 0; g < groupsPerChannel; ++g) {
            // A weight is non-zero iff any of its plane bits is set.
            int nnz = packedNonZeroValues(
                planes.group(planes.groupIndex(c, g)));
            localNnz += nnz;

            // Two 8-bit multipliers per PE consume the effectual
            // (weight, activation) pairs of the group.
            double pairs = nnz * actDensity;
            GroupWork gw;
            gw.latency = std::max(1.0, std::ceil(pairs / 2.0));
            gw.usefulLaneCycles = pairs * 8.0; // bit-op equivalents
            gw.intraStallLaneCycles =
                gw.latency * lanesPerPe() - gw.usefulLaneCycles;
            vec.push_back(gw);
        }
        nnzTotal.fetch_add(localNnz, std::memory_order_relaxed);
    }, /*chunk=*/1);

    // Sparse encoding: 8 bits per non-zero value + 1-bit occupancy mask per
    // element (the 12.5% overhead the paper cites at 8-bit precision).
    work.weightStorageBits =
        static_cast<double>(nnzTotal.load()) * 8.0 +
        static_cast<double>(layer.codes.numel());
    return work;
}

double
SpartenAccelerator::activationBitsScale(const PreparedLayer &layer) const
{
    // Activations stored sparse: density * 8b values + 1b masks.
    return layer.activationDensity + 1.0 / 8.0;
}

} // namespace bbs
