/**
 * @file
 * Accelerator factory: the line-up of the paper's Fig 12/13 comparison in
 * presentation order, plus lookup by name.
 */
#ifndef BBS_ACCEL_FACTORY_HPP
#define BBS_ACCEL_FACTORY_HPP

#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"

namespace bbs {

/**
 * The eight accelerators of the main evaluation, in the paper's order:
 * SparTen, ANT, Stripes, Pragmatic, Bitlet, BitWave, BitVert (cons),
 * BitVert (mod).
 */
std::vector<std::unique_ptr<Accelerator>> evaluationLineup();

/** Construct one accelerator by its display name; fatal on unknown. */
std::unique_ptr<Accelerator> makeAccelerator(const std::string &name);

} // namespace bbs

#endif // BBS_ACCEL_FACTORY_HPP
