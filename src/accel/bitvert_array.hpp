/**
 * @file
 * Functional simulation of the whole BitVert accelerator (Fig 10) on a
 * linear layer: global binary pruning, channel reordering, group-wise
 * execution on the cycle-accurate PE (Fig 7(b)/Fig 8), accumulation, and
 * output unshuffling on write-back (Fig 9(c)).
 *
 * Unlike the throughput model in bitvert.hpp, this computes *values*: the
 * produced outputs are bit-exact against an integer GEMM reference over
 * the pruned weights, and the cycle count comes from the same PE model the
 * unit tests validate. It exists to demonstrate end-to-end functional
 * correctness of the architecture, including the residual-block
 * unshuffling argument of §IV-C.
 */
#ifndef BBS_ACCEL_BITVERT_ARRAY_HPP
#define BBS_ACCEL_BITVERT_ARRAY_HPP

#include <cstdint>
#include <vector>

#include "core/channel_reorder.hpp"
#include "core/global_pruning.hpp"
#include "gemm/gemm.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/** Result of a functional BitVert layer execution. */
struct BitVertArrayResult
{
    /** Outputs [K, N] in the ORIGINAL channel order (unshuffled). */
    Int32Tensor outputs;
    /** Total PE cycles (max over lock-step columns, summed over waves). */
    std::int64_t cycles = 0;
    /** Weight storage streamed, in bits (compressed + metadata). */
    std::int64_t weightBits = 0;
};

/**
 * Execute a linear layer on the functional BitVert array.
 *
 * @param weights      INT8 weight codes [K, C]
 * @param scales       per-channel scales (sensitivity proxy)
 * @param activations  INT8 activations [C, N] (N input vectors)
 * @param cfg          binary-pruning operating point (Algorithm 2 is run
 *                     on this single layer with the configured beta/CH)
 */
BitVertArrayResult runBitVertArray(const Int8Tensor &weights,
                                   const std::vector<float> &scales,
                                   const Int8Tensor &activations,
                                   const GlobalPruneConfig &cfg);

/**
 * Execute a stride-1 conv layer on the functional array via im2col:
 * weights [K, C, R, S], input [C, H, W] with symmetric zero padding
 * producing output positions (H+2p-R+1)^2. Internally lowers to the
 * linear path (the dataflow BitVert uses for convs, §IV-D).
 *
 * @return outputs [K, OH*OW] plus cycles/weight bits as for the linear
 *         path
 */
BitVertArrayResult runBitVertArrayConv(const Int8Tensor &weights,
                                       const std::vector<float> &scales,
                                       const Int8Tensor &input,
                                       std::int64_t pad,
                                       const GlobalPruneConfig &cfg);

/** im2col lowering used by the conv path; exposed for tests. */
Int8Tensor im2colInt8(const Int8Tensor &input, std::int64_t kernel,
                      std::int64_t pad);

/** Direct conv reference: outputs [K, OH*OW]. */
Int32Tensor convReference(const Int8Tensor &weights,
                          const Int8Tensor &input, std::int64_t pad);

} // namespace bbs

#endif // BBS_ACCEL_BITVERT_ARRAY_HPP
