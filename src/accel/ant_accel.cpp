#include "accel/ant_accel.hpp"

#include "common/bit_utils.hpp"
#include "sim/dataflow.hpp"

namespace bbs {

Accelerator::LayerWork
AntAccelerator::buildWork(const PreparedLayer &layer,
                          const SimConfig &) const
{
    LayerWork work;
    const BitPlaneTensor &planes = layerPlanes(layer);
    std::int64_t channels = planes.numChannels();
    std::int64_t groupsPerChannel = planes.groupsPerChannel();

    work.perChannel.resize(static_cast<std::size_t>(channels));
    for (std::int64_t c = 0; c < channels; ++c) {
        auto &vec = work.perChannel[static_cast<std::size_t>(c)];
        vec.reserve(static_cast<std::size_t>(groupsPerChannel));
        for (std::int64_t g = 0; g < groupsPerChannel; ++g) {
            GroupWork gw;
            // Bit-parallel at reduced precision: dense latency scales with
            // the datatype width (6/8 of the 8-bit serial baseline).
            gw.latency = bits_;
            gw.usefulLaneCycles = gw.latency * lanesPerPe();
            gw.intraStallLaneCycles = 0.0;
            vec.push_back(gw);
        }
    }

    // 6-bit weights plus a 4-bit datatype tag per group of 16. Tags are
    // counted over flat storage groups (which may span channels),
    // matching the encoded stream rather than the per-channel schedule.
    work.weightStorageBits =
        static_cast<double>(layer.codes.numel()) * bits_ +
        static_cast<double>(layer.codes.numGroups(weightsPerPe())) * 4.0;
    return work;
}

double
AntAccelerator::activationBitsScale(const PreparedLayer &) const
{
    // ANT quantizes activations to the same adaptive 6-bit types.
    return static_cast<double>(bits_) / 8.0;
}

} // namespace bbs
