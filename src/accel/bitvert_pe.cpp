#include "accel/bitvert_pe.hpp"

#include <bit>

#include "common/bit_utils.hpp"
#include "common/logging.hpp"
#include "core/bitplane.hpp"

namespace bbs {

SubGroupSchedule
scheduleSubGroupColumn(std::uint32_t columnBits, int n)
{
    BBS_REQUIRE(n >= 1 && n <= 8, "sub-group size must be 1..8");
    std::uint32_t mask = (n >= 32) ? ~0u : ((1u << n) - 1u);
    std::uint32_t col = columnBits & mask;

    SubGroupSchedule sched;
    // Inversion decision (Fig 8): when ones dominate, the inverted column
    // is scheduled and the PE subtracts from the sub-group's sum of
    // activations (Eq. 3).
    int ones = std::popcount(col);
    if (ones > n - ones) {
        sched.inverted = true;
        col = ~col & mask;
    }

    // Four masking priority encoders: encoder j sees positions j..j+4 of
    // the (possibly inverted) column, takes the first un-masked one-bit,
    // and masks it for the following encoders.
    std::uint32_t remaining = col;
    for (int j = 0; j < 4; ++j) {
        int lo = j;
        int hi = std::min(j + 4, n - 1);
        for (int p = lo; p <= hi; ++p) {
            if ((remaining >> p) & 1u) {
                sched.lanes[static_cast<std::size_t>(j)].valid = true;
                sched.lanes[static_cast<std::size_t>(j)].select = p;
                remaining &= ~(1u << p);
                break;
            }
        }
    }
    // BBS guarantees <= n/2 effectual bits, so the staggered windows can
    // always cover all of them; anything left over is a scheduler bug.
    BBS_ASSERT(remaining == 0,
               "scheduler failed to cover all effectual bits");
    return sched;
}

PeRunResult
runBitVertPe(std::span<const std::int8_t> stored, int storedBits,
             int prunedColumns, std::int32_t constant,
             std::span<const std::int8_t> activations)
{
    BBS_REQUIRE(stored.size() == activations.size(),
                "operand size mismatch");
    BBS_REQUIRE(stored.size() <= 16, "PE covers at most 16 weights");
    const int subGroupSize = 8;

    // Sum of activations per sub-group (the SumA generator feeds these).
    std::int64_t subSumA[2] = {0, 0};
    for (std::size_t i = 0; i < activations.size(); ++i)
        subSumA[i / subGroupSize] += activations[i];
    std::int64_t sumA = subSumA[0] + subSumA[1];

    PeRunResult res;
    std::int64_t acc = 0;

    // The slice's bit planes are packed once; each cycle's sub-group
    // column is a plane segment instead of a per-member re-extraction.
    PackedGroup pg = packGroup(stored, storedBits);

    // col_idx starts at the highest stored significance and decrements
    // every cycle (Fig 8, shift control). Stored bit b of a stored value
    // contributes at significance b + prunedColumns of the reconstructed
    // weight; the MSB column carries negative significance.
    for (int b = storedBits - 1; b >= 0; --b) {
        std::int64_t colPartial = 0;
        for (int sg = 0; sg * subGroupSize <
             static_cast<int>(stored.size()); ++sg) {
            int base = sg * subGroupSize;
            int n = std::min<int>(subGroupSize,
                                  static_cast<int>(stored.size()) - base);
            std::uint32_t col = static_cast<std::uint32_t>(
                (pg.planes[static_cast<std::size_t>(b)] >> base) &
                0xffull);

            SubGroupSchedule sched = scheduleSubGroupColumn(col, n);
            // Step 1/2: term-select muxes feed the 4-leaf adder tree.
            std::int64_t treeSum = 0;
            for (const LaneSelect &lane : sched.lanes)
                if (lane.valid)
                    treeSum += activations[static_cast<std::size_t>(
                        base + lane.select)];
            // psum_sel: Eq. 2 direct, or Eq. 3 subtract-from-sum.
            std::int64_t psum =
                sched.inverted ? subSumA[sg] - treeSum : treeSum;
            colPartial += psum;
        }
        // Step 3: single shift by the column index; the MSB stored column
        // is negative (two's complement).
        std::int64_t colWeight = 1ll << (b + prunedColumns);
        if (b == storedBits - 1)
            colWeight = -colWeight;
        acc += colWeight * colPartial;
        ++res.cycles;
    }

    // Step 4: BBS multiplier, time-multiplexed at 3 bits per cycle over
    // the (up to) 6-bit constant — fits in the >= 2 column cycles.
    acc += static_cast<std::int64_t>(constant) * sumA;

    res.value = acc;
    return res;
}

PeRunResult
runBitVertPe(const CompressedGroup &cg,
             std::span<const std::int8_t> activations)
{
    return runBitVertPe(cg.stored, cg.storedBits, cg.prunedColumns,
                        cg.meta.constant, activations);
}

} // namespace bbs
