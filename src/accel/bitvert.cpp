#include "accel/bitvert.hpp"

#include <algorithm>
#include <atomic>

#include "common/bit_utils.hpp"
#include "common/parallel.hpp"
#include "core/channel_reorder.hpp"
#include "sim/dataflow.hpp"

namespace bbs {

BitVertAccelerator::BitVertAccelerator(GlobalPruneConfig cfg,
                                       std::string label)
    : cfg_(cfg), label_(std::move(label))
{}

Accelerator::LayerWork
BitVertAccelerator::buildWork(const PreparedLayer &layer,
                              const SimConfig &) const
{
    LayerWork work;
    std::int64_t channels = layer.codes.shape().dim(0);
    std::int64_t cs = layer.codes.shape().channelSize();
    const int wpp = weightsPerPe(); // 16 weights per PE pass

    // Channel reordering (§IV-C): same-precision channels are stored and
    // scheduled contiguously, so lock-step tiles are precision-homogeneous.
    ChannelOrder order = buildChannelOrder(layer.sensitive);

    work.perChannel.resize(static_cast<std::size_t>(channels));
    std::atomic<std::int64_t> storageBitsTimes16{0};

    parallelFor(channels, [&](std::int64_t pos) {
        std::int64_t c =
            order.originalIndex[static_cast<std::size_t>(pos)];
        bool sens = layer.sensitive[static_cast<std::size_t>(c)];
        auto ch = layer.codes.channel(c);
        auto &vec = work.perChannel[static_cast<std::size_t>(pos)];
        vec.reserve(static_cast<std::size_t>(ceilDiv(cs, wpp)));
        double localBits = 0.0;

        // Walk compression groups (32 weights) and emit one PE pass per
        // 16-weight half.
        for (std::int64_t gBegin = 0; gBegin < cs;
             gBegin += cfg_.groupSize) {
            std::int64_t gEnd =
                std::min<std::int64_t>(gBegin + cfg_.groupSize, cs);
            std::span<const std::int8_t> grp(
                ch.data() + gBegin,
                static_cast<std::size_t>(gEnd - gBegin));

            int storedCols;
            std::vector<std::int8_t> storedVals;
            const std::int8_t *passData;
            if (sens) {
                // Sensitive channels stay 8-bit; BBS skipping still holds
                // (>= 50% per column), so one cycle per column.
                storedCols = kWeightBits;
                passData = grp.data();
                localBits +=
                    static_cast<double>(grp.size()) * kWeightBits;
            } else {
                CompressedGroup cg =
                    compressGroup(grp, cfg_.targetColumns, cfg_.strategy);
                storedCols = cg.storedBits;
                storedVals = std::move(cg.stored);
                passData = storedVals.data();
                localBits += static_cast<double>(cg.storageBits());
            }

            for (std::size_t off = 0; off < grp.size();
                 off += static_cast<std::size_t>(wpp)) {
                std::size_t len = std::min<std::size_t>(
                    static_cast<std::size_t>(wpp), grp.size() - off);
                std::span<const std::int8_t> slice(passData + off, len);
                GroupWork gw;
                // One cycle per stored column; the time-multiplexed BBS
                // multiplier needs >= 2 cycles, always satisfied since at
                // most 6 columns are pruned.
                gw.latency = std::max(storedCols, 2);
                gw.usefulLaneCycles = sliceEffectualOps(slice, storedCols);
                gw.intraStallLaneCycles =
                    gw.latency * lanesPerPe() - gw.usefulLaneCycles;
                vec.push_back(gw);
            }
        }
        storageBitsTimes16.fetch_add(
            static_cast<std::int64_t>(localBits * 16.0),
            std::memory_order_relaxed);
    }, /*chunk=*/1);

    // Add the channel-index buffer for output unshuffling: one 16-bit
    // original index per channel (trivial, §IV-C).
    work.weightStorageBits =
        static_cast<double>(storageBitsTimes16.load()) / 16.0 +
        static_cast<double>(channels) * 16.0;
    return work;
}

} // namespace bbs
