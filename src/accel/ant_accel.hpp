/**
 * @file
 * ANT (MICRO'22): adaptive-numerical-datatype acceleration at 6-bit
 * precision (the configuration the paper evaluates, §V-A). Bit-parallel:
 * benefits from reduced precision in both compute and memory but exploits
 * no bit-level sparsity.
 */
#ifndef BBS_ACCEL_ANT_HPP
#define BBS_ACCEL_ANT_HPP

#include "accel/accelerator.hpp"

namespace bbs {

class AntAccelerator : public Accelerator
{
  public:
    explicit AntAccelerator(int bits = 6) : bits_(bits) {}

    std::string name() const override { return "ANT"; }
    int lanesPerPe() const override { return 16; }
    PeCost peCost() const override { return antPe(); }
    /** antPe() already covers the full 16-lane-equivalent PE. */
    double peCostScale() const override { return 1.0; }

  protected:
    LayerWork buildWork(const PreparedLayer &layer,
                        const SimConfig &cfg) const override;
    double activationBitsScale(const PreparedLayer &layer) const override;

  private:
    int bits_;
};

} // namespace bbs

#endif // BBS_ACCEL_ANT_HPP
