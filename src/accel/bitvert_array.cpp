#include "accel/bitvert_array.hpp"

#include <algorithm>

#include "accel/bitvert_pe.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace bbs {

BitVertArrayResult
runBitVertArray(const Int8Tensor &weights,
                const std::vector<float> &scales,
                const Int8Tensor &activations,
                const GlobalPruneConfig &cfg)
{
    std::int64_t k = weights.shape().dim(0);
    std::int64_t c = weights.shape().dim(1);
    std::int64_t n = activations.shape().dim(1);
    BBS_REQUIRE(activations.shape().dim(0) == c, "shape mismatch");

    // Algorithm 2 on this layer: sensitive split + per-channel pruning.
    std::vector<PrunableLayer> model(1);
    model[0].name = "layer";
    model[0].codes = weights;
    model[0].scales = scales;
    auto sensitive =
        selectSensitiveChannels(model, cfg.beta, cfg.channelsParallel);

    // Channel reordering: same-precision channels contiguous (Fig 9(a)).
    ChannelOrder order = buildChannelOrder(sensitive[0]);

    BitVertArrayResult res;
    Int32Tensor reordered(Shape{k, n});
    std::vector<std::int64_t> channelCycles(static_cast<std::size_t>(k));
    std::vector<std::int64_t> channelBits(static_cast<std::size_t>(k));

    const int wpp = 16; // weights per PE pass

    parallelFor(k, [&](std::int64_t pos) {
        std::int64_t ch =
            order.originalIndex[static_cast<std::size_t>(pos)];
        bool sens = sensitive[0][static_cast<std::size_t>(ch)];
        auto wRow = weights.channel(ch);
        std::int64_t cyc = 0;
        std::int64_t bits = 0;

        // Accumulators for all N input vectors (output stationary).
        std::vector<std::int64_t> acc(static_cast<std::size_t>(n), 0);
        std::vector<std::int8_t> actSlice(static_cast<std::size_t>(wpp));

        for (std::int64_t gBegin = 0; gBegin < c;
             gBegin += cfg.groupSize) {
            std::int64_t gEnd =
                std::min<std::int64_t>(gBegin + cfg.groupSize, c);
            std::span<const std::int8_t> grp(
                wRow.data() + gBegin,
                static_cast<std::size_t>(gEnd - gBegin));

            CompressedGroup cg;
            if (sens) {
                // Sensitive channel: uncompressed pass-through group.
                cg.meta = GroupMetadata{0, 0};
                cg.prunedColumns = 0;
                cg.storedBits = 8;
                cg.stored.assign(grp.begin(), grp.end());
                bits += static_cast<std::int64_t>(grp.size()) * 8 + 8;
            } else {
                cg = compressGroup(grp, cfg.targetColumns, cfg.strategy);
                bits += cg.storageBits();
            }

            // Execute the group's 16-weight slices on the functional PE
            // for every input vector; cycles accrue once per slice (the
            // 16 array rows process 16 input vectors in parallel, so the
            // vector loop costs no extra cycles for n <= rows).
            for (std::size_t off = 0; off < cg.stored.size();
                 off += static_cast<std::size_t>(wpp)) {
                std::size_t len = std::min<std::size_t>(
                    static_cast<std::size_t>(wpp),
                    cg.stored.size() - off);
                std::span<const std::int8_t> slice(
                    cg.stored.data() + off, len);
                int sliceCycles = 0;
                for (std::int64_t col = 0; col < n; ++col) {
                    for (std::size_t i = 0; i < len; ++i)
                        actSlice[i] = activations.at(
                            gBegin + static_cast<std::int64_t>(off + i),
                            col);
                    PeRunResult pe = runBitVertPe(
                        slice, cg.storedBits, cg.prunedColumns,
                        cg.meta.constant,
                        std::span<const std::int8_t>(actSlice.data(),
                                                     len));
                    acc[static_cast<std::size_t>(col)] += pe.value;
                    sliceCycles = pe.cycles;
                }
                cyc += sliceCycles;
            }
        }
        for (std::int64_t col = 0; col < n; ++col)
            reordered.at(pos, col) = static_cast<std::int32_t>(
                acc[static_cast<std::size_t>(col)]);
        channelCycles[static_cast<std::size_t>(pos)] = cyc;
        channelBits[static_cast<std::size_t>(pos)] = bits;
    }, 1);

    // Lock-step columns: 32 channels per tile, wavefront = slowest.
    // Precision-homogeneous tiles (thanks to reordering) make this the
    // per-channel cycle count of any member.
    const std::int64_t cols = 32;
    for (std::int64_t tile = 0; tile < k; tile += cols) {
        std::int64_t tileEnd = std::min(tile + cols, k);
        std::int64_t wave = 0;
        for (std::int64_t p = tile; p < tileEnd; ++p)
            wave = std::max(wave,
                            channelCycles[static_cast<std::size_t>(p)]);
        res.cycles += wave;
    }
    for (std::int64_t p = 0; p < k; ++p)
        res.weightBits += channelBits[static_cast<std::size_t>(p)];

    // Output unshuffle on write-back (Fig 9(c)).
    res.outputs = unshuffleOutput(reordered, order);
    return res;
}

Int8Tensor
im2colInt8(const Int8Tensor &input, std::int64_t kernel, std::int64_t pad)
{
    BBS_REQUIRE(input.shape().rank() == 3, "input must be [C, H, W]");
    std::int64_t c = input.shape().dim(0);
    std::int64_t h = input.shape().dim(1);
    std::int64_t w = input.shape().dim(2);
    std::int64_t oh = h + 2 * pad - kernel + 1;
    std::int64_t ow = w + 2 * pad - kernel + 1;
    BBS_REQUIRE(oh >= 1 && ow >= 1, "conv output collapses");

    // Columns [C*R*S, OH*OW]: patch-major rows, position-major columns.
    Int8Tensor cols(Shape{c * kernel * kernel, oh * ow});
    for (std::int64_t ch = 0; ch < c; ++ch) {
        for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
                std::int64_t row = (ch * kernel + ky) * kernel + kx;
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                    std::int64_t iy = oy + ky - pad;
                    for (std::int64_t ox = 0; ox < ow; ++ox) {
                        std::int64_t ix = ox + kx - pad;
                        bool inside =
                            iy >= 0 && iy < h && ix >= 0 && ix < w;
                        cols.at(row, oy * ow + ox) =
                            inside ? input.at(ch, iy, ix)
                                   : static_cast<std::int8_t>(0);
                    }
                }
            }
        }
    }
    return cols;
}

Int32Tensor
convReference(const Int8Tensor &weights, const Int8Tensor &input,
              std::int64_t pad)
{
    BBS_REQUIRE(weights.shape().rank() == 4, "weights must be [K,C,R,S]");
    std::int64_t k = weights.shape().dim(0);
    std::int64_t c = weights.shape().dim(1);
    std::int64_t r = weights.shape().dim(2);
    std::int64_t h = input.shape().dim(1);
    std::int64_t w = input.shape().dim(2);
    std::int64_t oh = h + 2 * pad - r + 1;
    std::int64_t ow = w + 2 * pad - r + 1;

    Int32Tensor out(Shape{k, oh * ow});
    for (std::int64_t f = 0; f < k; ++f) {
        for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
                std::int64_t acc = 0;
                for (std::int64_t ch = 0; ch < c; ++ch) {
                    for (std::int64_t ky = 0; ky < r; ++ky) {
                        std::int64_t iy = oy + ky - pad;
                        if (iy < 0 || iy >= h)
                            continue;
                        for (std::int64_t kx = 0; kx < r; ++kx) {
                            std::int64_t ix = ox + kx - pad;
                            if (ix < 0 || ix >= w)
                                continue;
                            acc += static_cast<std::int64_t>(
                                       weights.at(f, ch, ky, kx)) *
                                   input.at(ch, iy, ix);
                        }
                    }
                }
                out.at(f, oy * ow + ox) =
                    static_cast<std::int32_t>(acc);
            }
        }
    }
    return out;
}

BitVertArrayResult
runBitVertArrayConv(const Int8Tensor &weights,
                    const std::vector<float> &scales,
                    const Int8Tensor &input, std::int64_t pad,
                    const GlobalPruneConfig &cfg)
{
    BBS_REQUIRE(weights.shape().rank() == 4, "weights must be [K,C,R,S]");
    std::int64_t k = weights.shape().dim(0);
    std::int64_t patch = weights.shape().channelSize();

    // Lower to a GEMM: flatten filters and im2col the input.
    Int8Tensor wFlat(Shape{k, patch});
    std::copy(weights.data().begin(), weights.data().end(),
              wFlat.data().begin());
    Int8Tensor cols =
        im2colInt8(input, weights.shape().dim(2), pad);
    return runBitVertArray(wFlat, scales, cols, cfg);
}

} // namespace bbs
