#include "accel/factory.hpp"

#include "accel/ant_accel.hpp"
#include "accel/bitlet.hpp"
#include "accel/bitvert.hpp"
#include "accel/bitwave.hpp"
#include "accel/pragmatic.hpp"
#include "accel/sparten.hpp"
#include "accel/stripes.hpp"
#include "common/logging.hpp"

namespace bbs {

std::vector<std::unique_ptr<Accelerator>>
evaluationLineup()
{
    std::vector<std::unique_ptr<Accelerator>> v;
    v.push_back(std::make_unique<SpartenAccelerator>());
    v.push_back(std::make_unique<AntAccelerator>());
    v.push_back(std::make_unique<StripesAccelerator>());
    v.push_back(std::make_unique<PragmaticAccelerator>());
    v.push_back(std::make_unique<BitletAccelerator>());
    v.push_back(std::make_unique<BitwaveAccelerator>());
    v.push_back(std::make_unique<BitVertAccelerator>(
        conservativeConfig(), "BitVert (cons)"));
    v.push_back(std::make_unique<BitVertAccelerator>(
        moderateConfig(), "BitVert (mod)"));
    return v;
}

std::unique_ptr<Accelerator>
makeAccelerator(const std::string &name)
{
    for (auto &a : evaluationLineup())
        if (a->name() == name)
            return std::move(a);
    BBS_FATAL("unknown accelerator: ", name);
}

} // namespace bbs
