#include "accel/bitwave.hpp"

#include <algorithm>
#include <atomic>

#include "common/bit_utils.hpp"
#include "common/parallel.hpp"
#include "quant/bitwave.hpp"
#include "sim/dataflow.hpp"

namespace bbs {

Accelerator::LayerWork
BitwaveAccelerator::buildWork(const PreparedLayer &layer,
                              const SimConfig &) const
{
    LayerWork work;
    const BitPlaneTensor &planes = layerPlanes(layer);
    std::int64_t channels = planes.numChannels();
    std::int64_t cs = layer.codes.shape().channelSize();
    std::int64_t groupsPerChannel = planes.groupsPerChannel();

    work.perChannel.resize(static_cast<std::size_t>(channels));
    std::atomic<std::int64_t> storageBits{0};

    // Pass 1: mean inherent zero-column count. BitWave's per-layer
    // dynamic-programming pass picks one column budget for the whole
    // layer, so every group is flipped to (at least) the same number of
    // zero columns — this uniformity is what makes its workload balanced
    // (paper Fig 14). We reproduce it as budget = mean inherent + the
    // configured flip count.
    double meanInherent =
        bitwaveInherentZeroColumns(layer.codes, weightsPerPe());
    int columnBudget = std::min(
        6, static_cast<int>(meanInherent + 0.5) + pruneColumns_);

    parallelFor(channels, [&](std::int64_t c) {
        auto ch = layer.codes.channel(c);
        auto &vec = work.perChannel[static_cast<std::size_t>(c)];
        vec.reserve(static_cast<std::size_t>(groupsPerChannel));
        std::int64_t localBits = 0;
        for (std::int64_t g = 0; g < groupsPerChannel; ++g) {
            std::int64_t begin = g * weightsPerPe();
            std::int64_t end = std::min<std::int64_t>(
                begin + weightsPerPe(), cs);
            std::span<const std::int8_t> grp(
                ch.data() + begin,
                static_cast<std::size_t>(end - begin));
            int n = static_cast<int>(grp.size());

            // Apply BitWave's bit-flip pruning at the processing-group
            // granularity against the uniform per-layer budget, then
            // count surviving non-zero sign-magnitude columns (sign
            // column included) from the packed planes.
            BitwaveGroupResult pr = bitwavePruneGroup(grp, columnBudget);
            PackedGroup sm = packGroupSignMagnitude(pr.values);
            int nonZeroCols = 0;
            int ones = 0;
            for (int b = 0; b < kWeightBits; ++b) {
                int pop = packedColumnOnes(sm, b);
                if (pop > 0) {
                    ++nonZeroCols;
                    ones += pop;
                }
            }

            GroupWork gw;
            gw.latency = std::max(1, nonZeroCols);
            gw.usefulLaneCycles = ones;
            gw.intraStallLaneCycles = gw.latency * lanesPerPe() - ones;
            vec.push_back(gw);

            // Storage: one 8-bit column mask per group plus the surviving
            // columns (this is how BitWave reduces DRAM traffic).
            localBits += 8 + nonZeroCols * n;
        }
        storageBits.fetch_add(localBits, std::memory_order_relaxed);
    }, /*chunk=*/1);

    work.weightStorageBits = static_cast<double>(storageBits.load());
    return work;
}

} // namespace bbs
