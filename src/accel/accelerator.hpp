/**
 * @file
 * Abstract accelerator cycle model plus the shared layer-simulation
 * skeleton (tiling, wavefront aggregation, memory traffic and energy), the
 * common methodology of §V-A: every accelerator gets the same bit-serial
 * multiplier budget and the same SRAM/DRAM system.
 */
#ifndef BBS_ACCEL_ACCELERATOR_HPP
#define BBS_ACCEL_ACCELERATOR_HPP

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/bitplane.hpp"
#include "hw/pe_model.hpp"
#include "sim/config.hpp"
#include "sim/dataflow.hpp"
#include "sim/prepared_model.hpp"
#include "sim/result.hpp"

namespace bbs {

/**
 * Base class of all accelerator cycle models.
 *
 * A derived class describes its PE shape (lanes, weights covered) and
 * produces per-group work items from the actual weight bit patterns; the
 * base class runs the lock-step schedule, sizes memory traffic, and
 * converts to cycles and energy.
 */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    virtual std::string name() const = 0;

    /** Bit-serial multiplier lanes per PE. */
    virtual int lanesPerPe() const = 0;

    /** Weights a PE covers per group (16 for every modeled design). */
    virtual int weightsPerPe() const { return 16; }

    /** Synthesized PE cost (area/power) for energy accounting. */
    virtual PeCost peCost() const = 0;

    /**
     * How many peCost() units one cycle-model PE represents. The Table V
     * PEs hold 8 bit-serial multipliers, so a 16-lane cycle-model PE is
     * two of them; designs whose PE cost already covers 16 lane
     * equivalents (SparTen/ANT bit-parallel multipliers) override to 1.
     */
    virtual double
    peCostScale() const
    {
        return static_cast<double>(lanesPerPe()) / 8.0;
    }

    /** Simulate one prepared layer. */
    LayerSim simulateLayer(const PreparedLayer &layer,
                           const SimConfig &cfg) const;

    /** Simulate a whole prepared model. */
    ModelSim simulateModel(const PreparedModel &model,
                           const SimConfig &cfg) const;

    /** PE columns: override or derived from the multiplier budget. */
    int peColumns(const SimConfig &cfg) const;

  protected:
    /** Per-layer work produced by the derived model. */
    struct LayerWork
    {
        /** [channel][groupIdx] group work items (reordered if desired). */
        std::vector<std::vector<GroupWork>> perChannel;
        /** Encoded weight footprint in bits (for DRAM traffic). */
        double weightStorageBits = 0.0;
    };

    /** Build the per-group work items for a layer. */
    virtual LayerWork buildWork(const PreparedLayer &layer,
                                const SimConfig &cfg) const = 0;

    /**
     * The layer's packed bit planes at this PE's group size — packed once
     * per layer and shared across all accelerator models (the substrate
     * every buildWork consumes instead of re-extracting columns).
     */
    const BitPlaneTensor &
    layerPlanes(const PreparedLayer &layer) const
    {
        return layer.packedPlanes(weightsPerPe());
    }

    /** Dense encoded weight footprint: every bit is fetched from DRAM. */
    static double
    denseWeightStorageBits(const PreparedLayer &layer)
    {
        return static_cast<double>(layer.codes.numel()) * kWeightBits;
    }

    /** BBS effectual lane-ops of a weight slice over @p bits columns. */
    static double
    sliceEffectualOps(std::span<const std::int8_t> slice, int bits)
    {
        return static_cast<double>(
            packedEffectualOps(packGroup(slice, bits)));
    }

    /** Activation precision scale vs INT8 (ANT quantizes to 6 bits). */
    virtual double activationBitsScale(const PreparedLayer &) const
    {
        return 1.0;
    }

    /**
     * Multiplier on SRAM traffic relative to the single-shared-buffer
     * baseline. SparTen overrides it: its per-PE local buffers are filled
     * from the shared buffer and re-read per matched pair, multiplying
     * on-chip data movement.
     */
    virtual double sramBytesScale() const { return 1.0; }
};

} // namespace bbs

#endif // BBS_ACCEL_ACCELERATOR_HPP
