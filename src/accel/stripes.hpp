/**
 * @file
 * Stripes (MICRO'16): the dense bit-serial baseline. Every weight's 8 bits
 * are processed serially with no sparsity exploitation; performance scales
 * only with precision. All speedups in the paper's Fig 12 are normalized to
 * this model.
 */
#ifndef BBS_ACCEL_STRIPES_HPP
#define BBS_ACCEL_STRIPES_HPP

#include "accel/accelerator.hpp"

namespace bbs {

class StripesAccelerator : public Accelerator
{
  public:
    std::string name() const override { return "Stripes"; }
    int lanesPerPe() const override { return 16; }
    PeCost peCost() const override { return stripesPe(); }

  protected:
    LayerWork buildWork(const PreparedLayer &layer,
                        const SimConfig &cfg) const override;
};

} // namespace bbs

#endif // BBS_ACCEL_STRIPES_HPP
