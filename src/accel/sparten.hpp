/**
 * @file
 * SparTen (MICRO'19): two-sided *value* sparsity. Effectual work is the
 * product of non-zero weights and non-zero activations; on 8-bit PTQ models
 * weight value sparsity is < 5% and transformer activations are dense, so
 * SparTen degenerates to near-dense with bitmask overhead — the paper's
 * motivating observation (§II-B).
 */
#ifndef BBS_ACCEL_SPARTEN_HPP
#define BBS_ACCEL_SPARTEN_HPP

#include "accel/accelerator.hpp"

namespace bbs {

class SpartenAccelerator : public Accelerator
{
  public:
    std::string name() const override { return "SparTen"; }
    /** Two 8-bit multipliers per PE = 16 bit-serial equivalents. */
    int lanesPerPe() const override { return 16; }
    PeCost peCost() const override { return spartenPe(); }
    /** spartenPe() already covers the full 16-lane-equivalent PE. */
    double peCostScale() const override { return 1.0; }
    /**
     * Per-PE local buffers: operands move shared-buffer -> local buffer ->
     * matched pair, and greedy balancing re-shuffles chunks, multiplying
     * on-chip traffic (the overhead the paper's Fig 13 attributes to
     * SparTen's "expensive hardware required to exploit sparsity").
     */
    double sramBytesScale() const override { return 6.0; }

  protected:
    LayerWork buildWork(const PreparedLayer &layer,
                        const SimConfig &cfg) const override;
    double activationBitsScale(const PreparedLayer &layer) const override;
};

} // namespace bbs

#endif // BBS_ACCEL_SPARTEN_HPP
