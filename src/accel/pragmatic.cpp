#include "accel/pragmatic.hpp"

#include <algorithm>

#include "common/bit_utils.hpp"
#include "common/parallel.hpp"
#include "sim/dataflow.hpp"

namespace bbs {

Accelerator::LayerWork
PragmaticAccelerator::buildWork(const PreparedLayer &layer,
                                const SimConfig &) const
{
    LayerWork work;
    const BitPlaneTensor &planes = layerPlanes(layer);
    std::int64_t channels = planes.numChannels();
    std::int64_t groupsPerChannel = planes.groupsPerChannel();

    // Pragmatic's dispatcher keeps per-lane essential-bit FIFOs, so a lane
    // streams into following groups while a slow neighbour finishes: lanes
    // synchronize once per FIFO window of groups, not per group. The
    // window latency is the largest per-lane sum of essential bits.
    const std::int64_t window = 4;
    work.perChannel.resize(static_cast<std::size_t>(channels));
    parallelFor(channels, [&](std::int64_t c) {
        auto &vec = work.perChannel[static_cast<std::size_t>(c)];
        vec.reserve(static_cast<std::size_t>(groupsPerChannel));
        for (std::int64_t g0 = 0; g0 < groupsPerChannel; g0 += window) {
            std::int64_t gEnd =
                std::min(g0 + window, groupsPerChannel);
            int lanePop[16] = {};
            int sumPop = 0;
            for (std::int64_t g = g0; g < gEnd; ++g) {
                // A lane's essential bits are its member's one-bits across
                // the planes; iterating set plane bits touches only the
                // essential ones.
                PackedGroup pg = planes.group(planes.groupIndex(c, g));
                BitColumn m = pg.mask();
                for (int b = 0; b < kWeightBits; ++b) {
                    BitColumn word = pg.planes[
                        static_cast<std::size_t>(b)] & m;
                    sumPop += std::popcount(word);
                    while (word != 0) {
                        int i = std::countr_zero(word);
                        word &= word - 1;
                        ++lanePop[i];
                    }
                }
            }
            int maxPop = 0;
            for (int pop : lanePop)
                maxPop = std::max(maxPop, pop);
            double groupsInWindow = static_cast<double>(gEnd - g0);
            double latency =
                std::max(1.0, static_cast<double>(maxPop)) /
                groupsInWindow;
            double useful =
                static_cast<double>(sumPop) / groupsInWindow;
            for (std::int64_t g = g0; g < gEnd; ++g) {
                GroupWork gw;
                gw.latency = latency;
                gw.usefulLaneCycles = useful;
                gw.intraStallLaneCycles =
                    latency * lanesPerPe() - useful;
                vec.push_back(gw);
            }
        }
    }, /*chunk=*/1);

    // All weight bits are fetched from DRAM: zero-bit skipping happens
    // on-chip only (§I drawback 2).
    work.weightStorageBits = denseWeightStorageBits(layer);
    return work;
}

} // namespace bbs
