#include "accel/pragmatic.hpp"

#include <algorithm>

#include "common/bit_utils.hpp"
#include "common/parallel.hpp"
#include "sim/dataflow.hpp"

namespace bbs {

Accelerator::LayerWork
PragmaticAccelerator::buildWork(const PreparedLayer &layer,
                                const SimConfig &) const
{
    LayerWork work;
    std::int64_t channels = layer.codes.shape().dim(0);
    std::int64_t cs = layer.codes.shape().channelSize();
    std::int64_t groupsPerChannel = ceilDiv(cs, weightsPerPe());

    // Pragmatic's dispatcher keeps per-lane essential-bit FIFOs, so a lane
    // streams into following groups while a slow neighbour finishes: lanes
    // synchronize once per FIFO window of groups, not per group. The
    // window latency is the largest per-lane sum of essential bits.
    const std::int64_t window = 4;
    work.perChannel.resize(static_cast<std::size_t>(channels));
    parallelFor(channels, [&](std::int64_t c) {
        auto ch = layer.codes.channel(c);
        auto &vec = work.perChannel[static_cast<std::size_t>(c)];
        vec.reserve(static_cast<std::size_t>(groupsPerChannel));
        for (std::int64_t g0 = 0; g0 < groupsPerChannel; g0 += window) {
            std::int64_t gEnd =
                std::min(g0 + window, groupsPerChannel);
            int lanePop[16] = {};
            int sumPop = 0;
            for (std::int64_t g = g0; g < gEnd; ++g) {
                std::int64_t begin = g * weightsPerPe();
                std::int64_t end = std::min<std::int64_t>(
                    begin + weightsPerPe(), cs);
                for (std::int64_t i = begin; i < end; ++i) {
                    int pop =
                        popcount8(ch[static_cast<std::size_t>(i)]);
                    lanePop[i - begin] += pop;
                    sumPop += pop;
                }
            }
            int maxPop = 0;
            for (int pop : lanePop)
                maxPop = std::max(maxPop, pop);
            double groupsInWindow = static_cast<double>(gEnd - g0);
            double latency =
                std::max(1.0, static_cast<double>(maxPop)) /
                groupsInWindow;
            double useful =
                static_cast<double>(sumPop) / groupsInWindow;
            for (std::int64_t g = g0; g < gEnd; ++g) {
                GroupWork gw;
                gw.latency = latency;
                gw.usefulLaneCycles = useful;
                gw.intraStallLaneCycles =
                    latency * lanesPerPe() - useful;
                vec.push_back(gw);
            }
        }
    }, /*chunk=*/1);

    // All weight bits are fetched from DRAM: zero-bit skipping happens
    // on-chip only (§I drawback 2).
    work.weightStorageBits =
        static_cast<double>(layer.codes.numel()) * kWeightBits;
    return work;
}

} // namespace bbs
