/**
 * @file
 * BitVert (this paper): the BBS bit-serial accelerator. Normal channels are
 * binary-pruned, so every compressed group takes exactly
 * (8 - prunedColumns) cycles — one per stored bit column, since BBS bounds
 * the effectual bits per 8-weight sub-group at 4 and the PE provides 4
 * staggered 5:1 muxes (Fig 7(b)). The resulting latency is *deterministic*,
 * which is why BitVert shows near-zero inter-PE stall in Fig 15.
 */
#ifndef BBS_ACCEL_BITVERT_HPP
#define BBS_ACCEL_BITVERT_HPP

#include "accel/accelerator.hpp"
#include "core/global_pruning.hpp"

namespace bbs {

class BitVertAccelerator : public Accelerator
{
  public:
    /**
     * @param cfg    binary-pruning operating point. Must match the config
     *               used in prepareModel() so the sensitive-channel split
     *               is consistent.
     * @param label  display name (e.g. "BitVert (mod)")
     */
    explicit BitVertAccelerator(GlobalPruneConfig cfg,
                                std::string label = "BitVert");

    std::string name() const override { return label_; }
    int lanesPerPe() const override { return 8; }
    PeCost peCost() const override { return bitvertPe(8, true); }

    const GlobalPruneConfig &config() const { return cfg_; }

  protected:
    LayerWork buildWork(const PreparedLayer &layer,
                        const SimConfig &cfg) const override;

  private:
    GlobalPruneConfig cfg_;
    std::string label_;
};

} // namespace bbs

#endif // BBS_ACCEL_BITVERT_HPP
