#include "accel/accelerator.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "sim/memory_model.hpp"

namespace bbs {

int
Accelerator::peColumns(const SimConfig &cfg) const
{
    if (cfg.peColumnsOverride > 0)
        return cfg.peColumnsOverride;
    int cols = cfg.totalBitSerialMultipliers / (cfg.rows * lanesPerPe());
    BBS_REQUIRE(cols >= 1, "multiplier budget too small for ", name());
    return cols;
}

LayerSim
Accelerator::simulateLayer(const PreparedLayer &layer,
                           const SimConfig &cfg) const
{
    LayerWork work = buildWork(layer, cfg);
    int cols = peColumns(cfg);
    int lanes = lanesPerPe();

    WavefrontAggregate agg =
        aggregateWavefronts(work.perChannel, cols, lanes);

    // Output-stationary tiling: `rows` output positions per pass; the whole
    // channel/group schedule repeats once per position tile. Weights are
    // identical across position tiles, so per-tile latencies are too.
    double positionTiles = static_cast<double>(
        ceilDiv(layer.desc.outputPositions, cfg.rows));
    // Scale for sampled channels and collapsed layer repeats.
    double scale = layer.channelScale * layer.desc.repeat;
    double tileScale = positionTiles * scale;

    LayerSim sim;
    sim.layerName = layer.desc.name;
    sim.computeCycles = agg.cycles * tileScale;
    sim.usefulLaneCycles = agg.usefulLaneCycles * tileScale;
    sim.intraPeStallLaneCycles = agg.intraStallLaneCycles * tileScale;
    sim.interPeStallLaneCycles = agg.interStallLaneCycles * tileScale;

    // Memory traffic. Weights are fetched from DRAM once per layer (the
    // position loop reuses them from SRAM); activations stream in/out.
    MemoryTraffic mem;
    mem.weightBits = work.weightStorageBits * scale;
    double actScale = activationBitsScale(layer);
    // Input footprint ~ C x output positions (stride-1 approximation for
    // convs; exact for linears).
    double inputElems =
        static_cast<double>(layer.desc.weightShape.dim(1)) *
        static_cast<double>(layer.desc.outputPositions);
    double outputElems =
        static_cast<double>(layer.desc.weightShape.dim(0)) *
        static_cast<double>(layer.desc.outputPositions);
    mem.inputActBits = inputElems * 8.0 * actScale * layer.desc.repeat;
    mem.outputActBits = outputElems * 8.0 * actScale * layer.desc.repeat;

    // SRAM: weights re-read once per position tile; activations staged per
    // channel tile; outputs written once.
    std::int64_t channels = layer.desc.weightShape.dim(0);
    double channelTiles = static_cast<double>(ceilDiv(channels, cols));
    mem.sramBytes = (mem.weightBits / 8.0 * positionTiles +
                     mem.inputActBits / 8.0 * channelTiles +
                     mem.outputActBits / 8.0) *
                    sramBytesScale();

    sim.dramBits = mem.totalDramBits();
    sim.sramBytes = mem.sramBytes;
    sim.dramCycles = dramCycles(mem, cfg);
    sim.totalCycles = std::max(sim.computeCycles, sim.dramCycles);

    sim.dramEnergyPj = dramEnergyPj(mem, cfg);
    sim.sramEnergyPj = sramEnergyPj(mem, cfg);
    // Core: PE power at 800 MHz converted to pJ/cycle, over the active
    // compute cycles of the whole array.
    double pePjPerCycle =
        peCost().powerMw * peCostScale() / cfg.frequencyGhz;
    sim.coreEnergyPj =
        pePjPerCycle * sim.computeCycles * cfg.rows * peColumns(cfg);
    return sim;
}

ModelSim
Accelerator::simulateModel(const PreparedModel &model,
                           const SimConfig &cfg) const
{
    ModelSim ms;
    ms.acceleratorName = name();
    ms.modelName = model.desc.name;
    for (const auto &layer : model.layers)
        ms.layers.push_back(simulateLayer(layer, cfg));
    return ms;
}

} // namespace bbs
