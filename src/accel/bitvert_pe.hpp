/**
 * @file
 * Functional, cycle-accurate model of the BitVert PE and scheduler
 * (Fig 7(b) and Fig 8): per cycle, the scheduler inverts dominant-ones
 * sub-group columns, drives four staggered 5:1 term-select muxes per
 * sub-group through masking priority encoders, and the PE accumulates the
 * shifted partial sums plus the time-multiplexed BBS-constant product.
 *
 * This model computes *values*, not just latencies; tests verify it against
 * the mathematical dot product bit-for-bit.
 */
#ifndef BBS_ACCEL_BITVERT_PE_HPP
#define BBS_ACCEL_BITVERT_PE_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/group_compressor.hpp"

namespace bbs {

/** One lane's mux selection for a cycle. */
struct LaneSelect
{
    bool valid = false; ///< val signal: lane has an effectual bit
    int select = 0;     ///< position within the sub-group (absolute index)
};

/**
 * The Fig 8 scheduler for one 8-bit sub-group column: decides inversion,
 * then assigns up to 4 effectual bits to the staggered 5:1 muxes
 * (mux j selects among positions {j, ..., j+4}).
 */
struct SubGroupSchedule
{
    bool inverted = false; ///< ones dominated; Eq. 3 path selected
    std::array<LaneSelect, 4> lanes{};
};

/**
 * Schedule one sub-group bit column.
 *
 * @param columnBits  sub-group bit column, bit i = weight i's current bit
 * @param n           sub-group size (8 in the shipped design)
 * @return the schedule; guaranteed to cover every effectual bit because
 *         BBS bounds them at n/2 = 4
 */
SubGroupSchedule scheduleSubGroupColumn(std::uint32_t columnBits, int n);

/** Result of a cycle-accurate PE execution. */
struct PeRunResult
{
    std::int64_t value = 0; ///< accumulated dot product
    int cycles = 0;         ///< cycles consumed (== stored columns)
};

/**
 * Cycle-accurate BitVert PE (16 weights, two sub-groups of 8).
 *
 * Executes the bit-serial dot product of a compressed 16-weight slice
 * against 16 activations: one stored column per cycle through the
 * scheduler/mux/subtract path, the BBS constant through the 3-bit/cycle
 * multiplier, matching Fig 7(b) steps 1-5.
 *
 * @param stored         the 16 stored (high-column) weight values
 * @param storedBits     bits per stored value
 * @param prunedColumns  low columns pruned (shift applied in step 3)
 * @param constant       BBS constant (metadata)
 * @param activations    16 activation values
 */
PeRunResult runBitVertPe(std::span<const std::int8_t> stored,
                         int storedBits, int prunedColumns,
                         std::int32_t constant,
                         std::span<const std::int8_t> activations);

/** Convenience: run the PE on a 16-weight compressed group directly. */
PeRunResult runBitVertPe(const CompressedGroup &cg,
                         std::span<const std::int8_t> activations);

} // namespace bbs

#endif // BBS_ACCEL_BITVERT_PE_HPP
