#include "accel/bitlet.hpp"

#include <algorithm>

#include "common/bit_utils.hpp"
#include "common/parallel.hpp"
#include "sim/dataflow.hpp"

namespace bbs {

Accelerator::LayerWork
BitletAccelerator::buildWork(const PreparedLayer &layer,
                             const SimConfig &) const
{
    LayerWork work;
    const BitPlaneTensor &planes = layerPlanes(layer);
    std::int64_t channels = planes.numChannels();
    std::int64_t groupsPerChannel = planes.groupsPerChannel();

    // Bitlet's "distiller" digests a window of weights per lane, so the
    // significance lanes synchronize per pair of groups (the sparsity-
    // parallelism buffering its paper describes), not per group.
    const std::int64_t window = 2;
    work.perChannel.resize(static_cast<std::size_t>(channels));
    parallelFor(channels, [&](std::int64_t c) {
        auto &vec = work.perChannel[static_cast<std::size_t>(c)];
        vec.reserve(static_cast<std::size_t>(groupsPerChannel));
        for (std::int64_t g0 = 0; g0 < groupsPerChannel; g0 += window) {
            std::int64_t gEnd =
                std::min(g0 + window, groupsPerChannel);
            int colPop[kWeightBits] = {};
            int sumPop = 0;
            for (std::int64_t g = g0; g < gEnd; ++g) {
                PackedGroup pg = planes.group(planes.groupIndex(c, g));
                // One lane per significance; each absorbs one essential
                // bit per cycle, so latency is the densest bit column.
                for (int b = 0; b < kWeightBits; ++b) {
                    int pop = packedColumnOnes(pg, b);
                    colPop[b] += pop;
                    sumPop += pop;
                }
            }
            int maxColPop = 0;
            for (int pop : colPop)
                maxColPop = std::max(maxColPop, pop);
            double groupsInWindow = static_cast<double>(gEnd - g0);
            double latency =
                std::max(1.0, static_cast<double>(maxColPop)) /
                groupsInWindow;
            double useful =
                static_cast<double>(sumPop) / groupsInWindow;
            for (std::int64_t g = g0; g < gEnd; ++g) {
                GroupWork gw;
                gw.latency = latency;
                gw.usefulLaneCycles = useful;
                gw.intraStallLaneCycles =
                    latency * lanesPerPe() - useful;
                vec.push_back(gw);
            }
        }
    }, /*chunk=*/1);

    // Like Pragmatic, all bits are fetched; skipping is on-chip only.
    work.weightStorageBits = denseWeightStorageBits(layer);
    return work;
}

} // namespace bbs
