#include "models/workload.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "tensor/distribution.hpp"

namespace bbs {

double
layerBaseStddev(const LayerDesc &layer)
{
    double fanIn = static_cast<double>(layer.weightShape.numel()) /
                   static_cast<double>(layer.weightShape.dim(0));
    return std::sqrt(2.0 / fanIn);
}

std::vector<PrunableLayer>
MaterializedModel::toPrunableLayers() const
{
    std::vector<PrunableLayer> out;
    out.reserve(layers.size());
    for (const auto &l : layers) {
        PrunableLayer pl;
        pl.name = l.desc.name;
        pl.codes = l.weights.values;
        pl.scales = l.weights.scales;
        out.push_back(std::move(pl));
    }
    return out;
}

MaterializedModel
materializeModel(const ModelDesc &model, const MaterializeOptions &opts)
{
    MaterializedModel out;
    out.desc = model;
    Rng rng(opts.seed);

    for (const auto &layer : model.layers) {
        // Fork before any capping decision so the stream layout is stable.
        Rng lrng = rng.fork();

        Shape shape = layer.weightShape;
        if (opts.maxWeightsPerLayer > 0 &&
            shape.numel() > opts.maxWeightsPerLayer) {
            // Keep whole channels: reduce the output-channel dimension.
            std::int64_t cs = shape.channelSize();
            std::int64_t keep =
                std::max<std::int64_t>(1, opts.maxWeightsPerLayer / cs);
            keep = std::min(keep, shape.dim(0));
            if (shape.rank() == 2) {
                shape = Shape{keep, shape.dim(1)};
            } else {
                BBS_ASSERT(shape.rank() == 4);
                shape = Shape{keep, shape.dim(1), shape.dim(2),
                              shape.dim(3)};
            }
        }

        WeightDistribution dist;
        dist.family = layer.family;
        dist.baseStddev = layerBaseStddev(layer);
        FloatTensor fp32 = generateWeights(shape, dist, lrng);

        MaterializedLayer ml;
        ml.desc = layer;
        ml.weights = quantizePerChannel(fp32, 8);
        out.layers.push_back(std::move(ml));
    }
    return out;
}

} // namespace bbs
