/**
 * @file
 * Layer and model descriptors for the seven DNN benchmarks of the paper's
 * evaluation (Table I) plus Llama-3-8B (§V-H).
 */
#ifndef BBS_MODELS_LAYER_HPP
#define BBS_MODELS_LAYER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/distribution.hpp"
#include "tensor/shape.hpp"

namespace bbs {

/** Kind of weight layer (only layers with weights are simulated). */
enum class LayerKind
{
    Conv,   ///< 2-D convolution, weight shape [K, C, R, S]
    Linear, ///< matrix multiply, weight shape [K, C]
};

/** One weight layer of a DNN benchmark. */
struct LayerDesc
{
    std::string name;
    LayerKind kind = LayerKind::Linear;
    Shape weightShape;
    /**
     * Output positions each weight is reused across: OH*OW for a conv,
     * token count for a transformer linear, 1 for a classifier head.
     */
    std::int64_t outputPositions = 1;
    /** True when the layer's *input* activations are post-ReLU (sparse). */
    bool reluActivations = false;
    /** Identical repetitions of this layer in the network. */
    int repeat = 1;
    /** Weight distribution family used by the synthetic materializer. */
    WeightFamily family = WeightFamily::Gaussian;

    /** Output channels. */
    std::int64_t channels() const { return weightShape.dim(0); }
    /** Weights in one instance. */
    std::int64_t weightCount() const { return weightShape.numel(); }
    /** MACs of one instance: every weight fires once per output position. */
    std::int64_t macs() const
    {
        return weightShape.numel() * outputPositions;
    }
};

/** A DNN benchmark: a list of weight layers plus reference metadata. */
struct ModelDesc
{
    std::string name;
    std::string dataset;
    std::vector<LayerDesc> layers;
    /** Paper Table I reference accuracies (FP32 / INT8), for reporting. */
    double fp32Accuracy = 0.0;
    double int8Accuracy = 0.0;

    std::int64_t totalWeights() const;
    std::int64_t totalMacs() const;
};

} // namespace bbs

#endif // BBS_MODELS_LAYER_HPP
