#include "models/layer.hpp"

namespace bbs {

std::int64_t
ModelDesc::totalWeights() const
{
    std::int64_t n = 0;
    for (const auto &l : layers)
        n += l.weightCount() * l.repeat;
    return n;
}

std::int64_t
ModelDesc::totalMacs() const
{
    std::int64_t n = 0;
    for (const auto &l : layers)
        n += l.macs() * l.repeat;
    return n;
}

} // namespace bbs
